// Extension benchmarks: the database-system substrates layered on the
// analysis core — persistent storage engine, CQL query engine, search
// index, cuisine classifier and HTTP API. Kept separate from
// bench_test.go, which covers the paper's tables and figures.
package culinary

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"culinary/internal/classify"
	"culinary/internal/flavor"
	"culinary/internal/query"
	"culinary/internal/recipedb"
	"culinary/internal/recommend"
	"culinary/internal/search"
	"culinary/internal/server"
	"culinary/internal/storage"
)

// BenchmarkStoragePut measures appending fresh keys to the log.
func BenchmarkStoragePut(b *testing.B) {
	db, err := storage.Open(b.TempDir(), storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(fmt.Sprintf("key%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageGet measures random point reads through the keydir.
func BenchmarkStorageGet(b *testing.B) {
	db, err := storage.Open(b.TempDir(), storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 4096
	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < n; i++ {
		if err := db.Put(fmt.Sprintf("key%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(fmt.Sprintf("key%09d", i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageSnapshot measures persisting and reloading the corpus
// through the storage engine — the server's -db startup path.
func BenchmarkStorageSnapshot(b *testing.B) {
	b.Run("Save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := storage.Open(b.TempDir(), storage.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := storage.SaveCorpus(db, benchEnv.Store); err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
	})
	b.Run("Load", func(b *testing.B) {
		db, err := storage.Open(b.TempDir(), storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		if err := storage.SaveCorpus(db, benchEnv.Store); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store, err := storage.LoadCorpus(db, benchEnv.Catalog)
			if err != nil {
				b.Fatal(err)
			}
			if store.Len() != benchEnv.Store.Len() {
				b.Fatal("size mismatch")
			}
		}
	})
}

// BenchmarkQueryEngine measures representative CQL statements,
// including the region-index fast path vs the full scan.
func BenchmarkQueryEngine(b *testing.B) {
	engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
	cases := map[string]string{
		"FullScanFilter":  "SELECT name FROM recipes WHERE size >= 12",
		"RegionIndexScan": "SELECT name FROM recipes WHERE region = 'ITA' AND size >= 12",
		"GroupByRegion":   "SELECT region, count(*), avg(size) FROM recipes GROUP BY region",
		"HasIngredient":   "SELECT count(*) FROM recipes WHERE has('garlic')",
		"OrderByLimit":    "SELECT name, size FROM recipes ORDER BY size DESC LIMIT 10",
	}
	for name, stmt := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIngredientIndex compares the planner's posting-list
// scan for has() against the equivalent full scan (the planner cannot
// use the index when has() sits under NOT(NOT ...)).
func BenchmarkAblationIngredientIndex(b *testing.B) {
	engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
	b.Run("PostingList", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run("SELECT count(*) FROM recipes WHERE has('saffron')"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run("SELECT count(*) FROM recipes WHERE NOT (NOT has('saffron'))"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryParse isolates parsing from execution.
func BenchmarkQueryParse(b *testing.B) {
	const stmt = "SELECT region, count(*), avg(size) FROM recipes WHERE (size >= 4 AND has('garlic')) OR category('Spice') > 2 GROUP BY region ORDER BY count(*) DESC LIMIT 5"
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearch measures index construction and querying.
func BenchmarkSearch(b *testing.B) {
	idx := search.Build(benchEnv.Store)
	b.Run("Build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if search.Build(benchEnv.Store).DocCount() == 0 {
				b.Fatal("empty index")
			}
		}
	})
	b.Run("QueryAny", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Search("tomato garlic basil", search.Options{Limit: 10})
		}
	})
	b.Run("QueryAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Search("tomato garlic", search.Options{Mode: search.ModeAll, Limit: 10})
		}
	})
	b.Run("QueryFuzzy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Search("tomatto garlik", search.Options{Fuzzy: true, Limit: 10})
		}
	})
}

// BenchmarkClassify measures training and prediction of the cuisine
// classifier.
func BenchmarkClassify(b *testing.B) {
	train, test, err := classify.Split(benchEnv.Store, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := classify.New()
			if err := c.Train(benchEnv.Store, train); err != nil {
				b.Fatal(err)
			}
		}
	})
	c := classify.New()
	if err := c.Train(benchEnv.Store, train); err != nil {
		b.Fatal(err)
	}
	b.Run("Predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := benchEnv.Store.Recipe(test[i%len(test)])
			if _, err := c.PredictRegion(rec.Ingredients); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fingerprints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if fp := classify.Fingerprints(benchEnv.Store, 3); len(fp) == 0 {
				b.Fatal("no fingerprints")
			}
		}
	})
}

// BenchmarkRecommend measures recipe completion and ingredient
// substitution — the food-design kernels.
func BenchmarkRecommend(b *testing.B) {
	r := recommend.New(benchEnv.Analyzer, benchEnv.Store)
	tomato, ok := benchEnv.Catalog.Lookup("tomato")
	if !ok {
		b.Fatal("no tomato")
	}
	garlic, _ := benchEnv.Catalog.Lookup("garlic")
	basil, _ := benchEnv.Catalog.Lookup("basil")
	b.Run("Complete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Complete(recipedb.Italy, []flavor.ID{tomato, garlic, basil},
				recommend.CompleteOptions{K: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Substitutes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Substitutes(basil, recommend.SubstituteOptions{K: 5, RequireSameCategory: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerAPI measures request handling through the full HTTP
// stack (mux, middleware, JSON encoding) for cheap and expensive
// endpoints.
func BenchmarkServerAPI(b *testing.B) {
	srv, err := server.New(server.Config{
		Store:       benchEnv.Store,
		Analyzer:    benchEnv.Analyzer,
		NullRecipes: 500,
		Seed:        7,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	get := func(b *testing.B, path string) {
		req := httptest.NewRequest("GET", path, nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("%s -> %d", path, rr.Code)
		}
	}
	b.Run("Health", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			get(b, "/api/health")
		}
	})
	b.Run("RecipeByID", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			get(b, fmt.Sprintf("/api/recipes/%d", i%benchEnv.Store.Len()))
		}
	})
	b.Run("Search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			get(b, "/api/search?q=tomato+garlic&limit=5")
		}
	})
	b.Run("Classify", func(b *testing.B) {
		body, _ := json.Marshal(map[string][]string{
			"ingredients": {"soy sauce", "tofu", "ginger", "scallion"},
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/api/classify", bytes.NewReader(body))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != http.StatusOK {
				b.Fatalf("classify -> %d", rr.Code)
			}
		}
	})
}
