package culinary

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

// Writer fan-in benchmarks. The CI mutation gate runs these and
// compares ns/op against BENCH_baseline.json:
//
//	go test -bench 'MutationFanIn|BulkIngest' -benchtime 2000x .
//
// Serial reproduces the pre-fan-in write path — every mutation's whole
// lifecycle (validate, encode, fsync, index) behind one external mutex,
// so writers cannot overlap and every op pays its own group commit.
// FanIn submits the same concurrent load straight to the store, where
// the fan-in coalesces queued writers into shared critical sections and
// shared fsyncs. The "ops/batch" metric reports the measured
// coalescing factor; it must exceed 1 for the multi-writer FanIn rows.

// benchMutationStore builds a storage-backed store over a bounded slot
// window so replace-heavy benchmark loops do not grow the corpus.
func benchMutationStore(b *testing.B, window int) *recipedb.Store {
	b.Helper()
	store := recipedb.NewStore(benchEnv.Store.Catalog())
	db, err := storage.Open(b.TempDir(), storage.Options{SyncEveryPut: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	store.SetBackend(db)
	for i := 0; i < window; i++ {
		if _, _, _, err := store.Upsert(i, fmt.Sprintf("seed %d", i), recipedb.Italy,
			recipedb.AllRecipes, []flavor.ID{flavor.ID(i % 40), flavor.ID(40 + i%40)}); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

func benchMutationWriters(b *testing.B, writers int, serialize bool) {
	const window = 512
	store := benchMutationStore(b, window)
	before := store.BatchStats()
	var serialMu sync.Mutex
	var ctr atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		share := b.N / writers
		if w < b.N%writers {
			share++
		}
		wg.Add(1)
		go func(share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				n := ctr.Add(1)
				slot := int(n % window)
				ing := []flavor.ID{flavor.ID(n % 40), flavor.ID(40 + (n+1)%40)}
				if serialize {
					serialMu.Lock()
				}
				_, _, _, err := store.Upsert(slot, fmt.Sprintf("bench %d", n),
					recipedb.France, recipedb.AllRecipes, ing)
				if serialize {
					serialMu.Unlock()
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(share)
	}
	wg.Wait()
	b.StopTimer()
	after := store.BatchStats()
	if batches := after.Batches - before.Batches; batches > 0 {
		b.ReportMetric(float64(after.Ops-before.Ops)/float64(batches), "ops/batch")
	}
}

func BenchmarkMutationFanIn(b *testing.B) {
	for _, mode := range []struct {
		name      string
		serialize bool
	}{{"Serial", true}, {"FanIn", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, w := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
					benchMutationWriters(b, w, mode.serialize)
				})
			}
		})
	}
}

// BenchmarkBulkIngest measures per-recipe cost of ApplyBatch chunks —
// the POST /api/recipes/batch hot path: one group commit and one
// critical section per 64 recipes. ns/op is per recipe, not per batch.
func BenchmarkBulkIngest(b *testing.B) {
	const window = 4096
	const chunk = 64
	store := benchMutationStore(b, 1) // seed one slot; batches grow the window
	b.ResetTimer()
	applied := 0
	for applied < b.N {
		n := chunk
		if b.N-applied < n {
			n = b.N - applied
		}
		items := make([]recipedb.BatchItem, n)
		for j := range items {
			k := applied + j
			items[j] = recipedb.BatchItem{
				ID:     k % window,
				Name:   fmt.Sprintf("bulk %d", k),
				Region: recipedb.USA,
				Source: recipedb.AllRecipes,
				Ingredients: []flavor.ID{
					flavor.ID(k % 40), flavor.ID(40 + (k+1)%40),
				},
			}
		}
		for j, res := range store.ApplyBatch(items) {
			if res.Err != nil {
				b.Fatalf("item %d: %v", j, res.Err)
			}
		}
		applied += n
	}
}
