module culinary

go 1.22
