// Command query runs CQL statements against the synthetic corpus.
//
// Usage:
//
//	query [-scale f] [-seed s] "SELECT region, count(*) FROM recipes GROUP BY region"
//	query -i            # interactive: one statement per line on stdin
//	query -db DIR ...   # load the corpus from a storage snapshot
//	query [-query-result-cache-bytes n] ...  # size the result cache (0 disables)
//
// Interactive sessions accept meta commands alongside statements:
// ":stats" prints one unified view of the plan cache and the result
// cache. The same view is printed when the session ends.
//
// The grammar is documented in internal/query; examples:
//
//	SELECT name, size FROM recipes WHERE region = 'ITA' AND has('garlic') ORDER BY size DESC LIMIT 10
//	SELECT region, count(*), avg(score) FROM recipes GROUP BY region ORDER BY avg(score) DESC
//	SELECT name FROM recipes WHERE category('Spice') >= 4 AND NOT has('salt') LIMIT 5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
	"culinary/internal/synth"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.25, "corpus scale factor")
		seed        = flag.Uint64("seed", 20180416, "master seed")
		interactive = flag.Bool("i", false, "read one statement per line from stdin")
		dbDir       = flag.String("db", "", "load the corpus from a storage snapshot directory")
		resCache    = flag.Int64("query-result-cache-bytes", query.DefaultResultCacheBytes,
			"result cache byte budget, keyed by (statement, corpus version) (0 disables)")
	)
	flag.Parse()
	if !*interactive && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "query: need a statement argument or -i; see -help")
		os.Exit(2)
	}

	t0 := time.Now()
	var catalog *flavor.Catalog
	var store *recipedb.Store
	var analyzer *pairing.Analyzer
	if *dbDir != "" {
		db, err := storage.Open(*dbDir, storage.Options{})
		if err != nil {
			fatal(err)
		}
		cfg, err := storage.LoadCatalogConfig(db)
		if err != nil {
			db.Close()
			fatal(err)
		}
		catalog, err = flavor.Build(cfg)
		if err != nil {
			db.Close()
			fatal(err)
		}
		analyzer = pairing.NewAnalyzer(catalog)
		store, err = storage.LoadCorpus(db, catalog)
		db.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		fcfg := flavor.DefaultConfig()
		fcfg.Seed = *seed
		var err error
		catalog, err = flavor.Build(fcfg)
		if err != nil {
			fatal(err)
		}
		analyzer = pairing.NewAnalyzer(catalog)
		scfg := synth.DefaultConfig()
		scfg.Seed = *seed
		scfg.Scale = *scale
		store, err = synth.Generate(analyzer, scfg)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "corpus: %d recipes (built in %v)\n",
		store.Len(), time.Since(t0).Round(time.Millisecond))
	engine := query.NewEngine(store, analyzer)
	if *resCache != 0 {
		engine.EnableResultCache(*resCache)
	}

	if !*interactive {
		run(engine, strings.Join(flag.Args(), " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(os.Stderr, "cql> ")
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		switch {
		case stmt == "" || strings.HasPrefix(stmt, "--"):
		case strings.HasPrefix(stmt, ":"):
			metaCommand(engine, stmt)
		default:
			run(engine, stmt)
		}
		fmt.Fprint(os.Stderr, "cql> ")
	}
	// Repeated dashboard statements skip Parse+bind via the plan cache
	// and — when the result cache is on — the corpus scan entirely;
	// report how often both paid off for this session.
	fmt.Fprintf(os.Stderr, "\n%s", formatStats(engine.CacheStats(), engine.ResultCacheStats()))
}

// metaCommand handles ":"-prefixed interactive commands.
func metaCommand(engine *query.Engine, cmd string) {
	switch cmd {
	case ":stats":
		fmt.Fprint(os.Stderr, formatStats(engine.CacheStats(), engine.ResultCacheStats()))
	default:
		fmt.Fprintf(os.Stderr, "query: unknown command %s (try :stats)\n", cmd)
	}
}

// formatStats renders the unified cache view the interactive ":stats"
// command and the session summary share: one line per cache tier.
func formatStats(plan query.CacheStats, res query.ResultCacheStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan cache:   %d hits, %d misses, %d entries (cap %d)\n",
		plan.Hits, plan.Misses, plan.Entries, plan.Capacity)
	if !res.Enabled {
		b.WriteString("result cache: disabled\n")
		return b.String()
	}
	fmt.Fprintf(&b, "result cache: %d hits, %d misses, %d entries, %d/%d bytes, %d evicted, %d invalidated\n",
		res.Hits, res.Misses, res.Entries, res.Bytes, res.Capacity, res.Evicted, res.Invalidated)
	return b.String()
}

// run executes one statement, printing the result table or the error
// without exiting (so interactive sessions survive typos).
func run(engine *query.Engine, stmt string) {
	t0 := time.Now()
	res, err := engine.Run(stmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		return
	}
	title := fmt.Sprintf("%d rows (scanned %d recipes in %v)",
		len(res.Rows), res.Scanned, time.Since(t0).Round(time.Microsecond))
	if err := res.Table(title).Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "query:", err)
	os.Exit(1)
}
