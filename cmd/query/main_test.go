package main

import (
	"strings"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/synth"
)

// testEngine builds an engine with the result cache enabled over the
// small-scale synthetic corpus.
func testEngine(t *testing.T) *query.Engine {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	analyzer := pairing.NewAnalyzer(catalog)
	store, err := synth.Generate(analyzer, synth.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	engine := query.NewEngine(store, analyzer)
	engine.EnableResultCache(query.DefaultResultCacheBytes)
	return engine
}

// TestFormatStatsUnifiedView pins the ":stats" output format: one line
// per cache tier, plan cache first, result cache second — the view the
// interactive command and the session summary share. Dashboards scrape
// these lines, so the shape is a contract.
func TestFormatStatsUnifiedView(t *testing.T) {
	plan := query.CacheStats{Hits: 12, Misses: 3, Entries: 3, Capacity: 256}
	res := query.ResultCacheStats{
		Enabled: true, Hits: 7, Misses: 8, Entries: 5,
		Bytes: 4096, Capacity: 16777216, Evicted: 2, Invalidated: 1,
	}
	got := formatStats(plan, res)
	want := "plan cache:   12 hits, 3 misses, 3 entries (cap 256)\n" +
		"result cache: 7 hits, 8 misses, 5 entries, 4096/16777216 bytes, 2 evicted, 1 invalidated\n"
	if got != want {
		t.Errorf("formatStats:\n got: %q\nwant: %q", got, want)
	}
}

// TestFormatStatsDisabledResultCache checks the view still renders both
// tiers when the result cache is off.
func TestFormatStatsDisabledResultCache(t *testing.T) {
	got := formatStats(query.CacheStats{Capacity: 256}, query.ResultCacheStats{})
	if !strings.Contains(got, "result cache: disabled\n") {
		t.Errorf("disabled result cache not reported: %q", got)
	}
	if !strings.HasPrefix(got, "plan cache:   0 hits, 0 misses, 0 entries (cap 256)\n") {
		t.Errorf("plan cache line malformed: %q", got)
	}
}

// TestStatsThroughEngine runs real statements through an engine and
// checks the rendered stats reflect both tiers' counters.
func TestStatsThroughEngine(t *testing.T) {
	engine := testEngine(t)
	const stmt = "SELECT region, count(*) FROM recipes GROUP BY region"
	for i := 0; i < 3; i++ {
		if _, err := engine.Run(stmt); err != nil {
			t.Fatal(err)
		}
	}
	out := formatStats(engine.CacheStats(), engine.ResultCacheStats())
	// First run misses both caches, the two replays hit the result
	// cache without touching the plan cache.
	if !strings.Contains(out, "plan cache:   0 hits, 1 misses") {
		t.Errorf("plan line: %q", out)
	}
	if !strings.Contains(out, "result cache: 2 hits, 1 misses, 1 entries") {
		t.Errorf("result line: %q", out)
	}
}
