// Command alias runs the §IV.A ingredient-aliasing pipeline over phrase
// input: one ingredient phrase per line on stdin (or a file), one
// resolution per line on stdout, followed by a curation report of
// recurring unmatched n-grams.
//
// Usage:
//
//	alias [-in phrases.txt] [-budget 1] [-mincount 2] [-demo n]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"culinary/internal/alias"
	"culinary/internal/flavor"
	"culinary/internal/report"
	"culinary/internal/synth"
)

func main() {
	var (
		in       = flag.String("in", "", "phrase file (default stdin)")
		budget   = flag.Int("budget", 1, "fuzzy-match edit budget (0 disables)")
		minCount = flag.Int("mincount", 2, "minimum count for curation candidates")
		demo     = flag.Int("demo", 0, "instead of reading input, synthesize n noisy phrases and evaluate accuracy")
		seed     = flag.Uint64("seed", 20180416, "catalog/phrase seed")
	)
	flag.Parse()

	fcfg := flavor.DefaultConfig()
	fcfg.Seed = *seed
	catalog, err := flavor.Build(fcfg)
	if err != nil {
		fatal(err)
	}
	al := alias.New(catalog, alias.WithEditBudget(*budget))

	if *demo > 0 {
		runDemo(catalog, al, *demo, *seed)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var matches []alias.Match
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		m := al.Resolve(line)
		matches = append(matches, m)
		name := "-"
		if m.Ingredient != flavor.Invalid {
			name = catalog.Ingredient(m.Ingredient).Name
		}
		fuzzy := ""
		if m.Fuzzy {
			fuzzy = " (fuzzy)"
		}
		fmt.Printf("%-14s %-28s %s%s\n", m.Status, name, line, fuzzy)
	}
	if err := scanner.Err(); err != nil {
		fatal(err)
	}

	rep := alias.Curate(matches, *minCount)
	fmt.Printf("\n%d phrases: %d matched, %d partial, %d unrecognized (%d fuzzy); match rate %.1f%%\n",
		rep.TotalPhrases, rep.Matched, rep.Partial, rep.Unrecognized, rep.Fuzzy,
		100*rep.MatchRate())
	if len(rep.Candidates) > 0 {
		t := report.NewTable("Curation candidates (recurring unmatched n-grams)",
			"NGram", "Count")
		for _, c := range rep.Candidates {
			t.AddRow(c.NGram, c.Count)
		}
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func runDemo(catalog *flavor.Catalog, al *alias.Aliaser, n int, seed uint64) {
	pcfg := synth.DefaultPhraseConfig()
	pcfg.Seed = seed + 77
	ps := synth.NewPhraseSynthesizer(catalog, pcfg)
	batch := ps.RenderBatch(n)
	correct, resolved := 0, 0
	for _, lp := range batch {
		m := al.Resolve(lp.Phrase)
		if m.Status == alias.Unrecognized {
			continue
		}
		resolved++
		if m.Ingredient == lp.Truth {
			correct++
		}
	}
	fmt.Printf("synthesized %d phrases: resolve rate %.3f, precision %.3f\n",
		n, float64(resolved)/float64(n), float64(correct)/float64(resolved))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alias:", err)
	os.Exit(1)
}
