// Command benchjson converts `go test -bench` output into the unified
// JSON schema the CI bench artifacts use, and compares two such files
// for the bench-regression gate.
//
// Convert (default mode):
//
//	go test -bench X ./... | benchjson -out BENCH_x.json
//	benchjson -in bench.txt -out BENCH_x.json
//
// Each benchmark line becomes one flat JSON object: "name" (with the
// trailing -GOMAXPROCS suffix stripped), "iterations", "ns_per_op",
// and one key per extra metric using the metric's unit verbatim
// ("B/op", "allocs/op", "p99-ns", "hit-ratio", ...). Lines that are
// not benchmark results (goos/pkg/PASS/ok) are ignored.
//
// Compare (regression gate):
//
//	benchjson -compare -baseline BENCH_baseline.json \
//	    [-threshold 0.25] [-match 'regex'] current.json...
//
// Benchmarks present in the baseline and in any current file (and
// matching -match, when given) are diffed on ns_per_op. A slowdown
// beyond the threshold prints a GitHub Actions ::warning annotation; a
// speedup beyond it prints a ::notice suggesting a baseline refresh.
// The exit status stays 0 either way — the gate is loud, not blocking
// — so noisy CI hardware cannot hold releases hostage. Only I/O and
// usage errors exit non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result row: name, iteration count, then the
// measurement columns ("1234 ns/op  56 B/op ...").
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// procSuffix is the -GOMAXPROCS tail go test appends to parallel
// benchmark names; stripped so runs on different machines compare.
var procSuffix = regexp.MustCompile(`-\d+$`)

// row is one converted benchmark. Extra metrics live beside the fixed
// fields keyed by their unit, so the schema stays flat and the compare
// mode (and jq) can address any metric uniformly.
type row map[string]interface{}

// parseBench converts go test -bench output into rows, in input order.
func parseBench(r io.Reader) ([]row, error) {
	var rows []row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		metrics, ok := parseMetrics(m[3])
		if !ok {
			continue
		}
		rw := row{
			"name":       procSuffix.ReplaceAllString(m[1], ""),
			"iterations": iters,
		}
		for unit, v := range metrics {
			if unit == "ns/op" {
				rw["ns_per_op"] = v
			} else {
				rw[unit] = v
			}
		}
		if _, ok := rw["ns_per_op"]; !ok {
			continue // not a timing row (e.g. a benchmark that only ReportMetrics)
		}
		rows = append(rows, rw)
	}
	return rows, sc.Err()
}

// parseMetrics reads the "value unit" pairs of one result line.
func parseMetrics(s string) (map[string]float64, bool) {
	fields := strings.Fields(s)
	if len(fields)%2 != 0 {
		return nil, false
	}
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		out[fields[i+1]] = v
	}
	return out, len(out) > 0
}

// nsPerOp extracts the timing from a row, tolerating json.Unmarshal's
// float64 and parseBench's native types.
func nsPerOp(r row) (float64, bool) {
	v, ok := r["ns_per_op"]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

// delta is one baseline/current comparison.
type delta struct {
	name       string
	base, cur  float64
	ratio      float64 // (cur-base)/base; positive = slower
	regression bool
	improved   bool
}

// compare diffs current rows against the baseline on ns_per_op.
// missing returns the gated baseline benchmarks the current run never
// produced — a renamed bench or a drifted -bench regex would otherwise
// silently shrink the gate to a no-op.
func compare(baseline, current []row, match *regexp.Regexp, threshold float64) (deltas []delta, missing []string) {
	base := make(map[string]float64, len(baseline))
	for _, r := range baseline {
		if ns, ok := nsPerOp(r); ok {
			if name, ok := r["name"].(string); ok {
				base[name] = ns
			}
		}
	}
	seen := make(map[string]bool, len(current))
	for _, r := range current {
		name, ok := r["name"].(string)
		if !ok {
			continue
		}
		seen[name] = true
		if match != nil && !match.MatchString(name) {
			continue
		}
		cur, ok := nsPerOp(r)
		if !ok {
			continue
		}
		b, ok := base[name]
		if !ok || b <= 0 {
			continue
		}
		d := delta{name: name, base: b, cur: cur, ratio: (cur - b) / b}
		d.regression = d.ratio > threshold
		d.improved = d.ratio < -threshold
		deltas = append(deltas, d)
	}
	for name := range base {
		if !seen[name] && (match == nil || match.MatchString(name)) {
			missing = append(missing, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].ratio > deltas[j].ratio })
	sort.Strings(missing)
	return deltas, missing
}

// annotate renders the gate's report: one line per compared bench,
// GitHub annotations for deltas beyond the threshold, and a warning
// per gated baseline bench the current run failed to produce.
func annotate(w io.Writer, deltas []delta, missing []string, threshold float64) (regressions int) {
	for _, d := range deltas {
		fmt.Fprintf(w, "%-60s %12.1f -> %12.1f ns/op  %+6.1f%%\n", d.name, d.base, d.cur, d.ratio*100)
	}
	for _, d := range deltas {
		switch {
		case d.regression:
			regressions++
			fmt.Fprintf(w, "::warning title=bench regression::%s is %.0f%% slower than baseline (%.1f -> %.1f ns/op, gate %.0f%%)\n",
				d.name, d.ratio*100, d.base, d.cur, threshold*100)
		case d.improved:
			fmt.Fprintf(w, "::notice title=bench improvement::%s is %.0f%% faster than baseline (%.1f -> %.1f ns/op); consider refreshing BENCH_baseline.json\n",
				d.name, -d.ratio*100, d.base, d.cur)
		}
	}
	for _, name := range missing {
		fmt.Fprintf(w, "::warning title=bench missing::%s is in BENCH_baseline.json but absent from this run — renamed bench or drifted -bench regex? The gate no longer covers it\n", name)
	}
	return regressions
}

func readRows(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func main() {
	var (
		in        = flag.String("in", "", "bench output file to convert (default stdin)")
		out       = flag.String("out", "", "JSON destination (default stdout)")
		doCompare = flag.Bool("compare", false, "compare current JSON files (args) against -baseline instead of converting")
		baseline  = flag.String("baseline", "", "baseline JSON for -compare")
		threshold = flag.Float64("threshold", 0.25, "ns/op delta fraction that triggers an annotation")
		match     = flag.String("match", "", "regexp restricting -compare to matching benchmark names")
	)
	flag.Parse()

	if *doCompare {
		if *baseline == "" || flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs -baseline FILE and at least one current JSON file")
			os.Exit(2)
		}
		var matchRe *regexp.Regexp
		if *match != "" {
			re, err := regexp.Compile(*match)
			if err != nil {
				fatal(err)
			}
			matchRe = re
		}
		base, err := readRows(*baseline)
		if err != nil {
			fatal(err)
		}
		var current []row
		for _, path := range flag.Args() {
			rows, err := readRows(path)
			if err != nil {
				fatal(err)
			}
			current = append(current, rows...)
		}
		deltas, missing := compare(base, current, matchRe, *threshold)
		n := annotate(os.Stdout, deltas, missing, *threshold)
		fmt.Printf("benchjson: compared %d benchmarks, %d regression(s) beyond %.0f%%, %d missing from this run (non-blocking)\n",
			len(deltas), n, *threshold*100, len(missing))
		return
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rows, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if rows == nil {
		rows = []row{} // empty input still emits a valid artifact
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
