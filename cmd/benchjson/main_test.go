package main

import (
	"regexp"
	"strings"
	"testing"
)

// sample mirrors real `go test -bench` output: headers, parallel-name
// suffixes, -benchmem columns, ReportMetric extras, and trailer lines.
const sample = `goos: linux
goarch: amd64
pkg: culinary/internal/storage
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReadPathHotGet/Pread         	  317802	       661.4 ns/op
BenchmarkReadPathHotGet/MmapCache-4   	 1535702	       154.8 ns/op	         1.000 hit-ratio
BenchmarkStoreConcurrentWrite/Sharded/syncEveryPut-8  	    61910	     19329 ns/op	     312 B/op	       7 allocs/op
BenchmarkCompactionGetP99/compacting-2  	  120000	      1500 ns/op	      2100 p99-ns	       900 p50-ns
PASS
ok  	culinary/internal/storage	1.726s
`

func TestParseBench(t *testing.T) {
	rows, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("parsed %d rows, want 4", len(rows))
	}
	byName := make(map[string]row)
	for _, r := range rows {
		byName[r["name"].(string)] = r
	}
	if _, ok := byName["BenchmarkReadPathHotGet/MmapCache"]; !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", byName)
	}
	r := byName["BenchmarkReadPathHotGet/MmapCache"]
	if ns, _ := nsPerOp(r); ns != 154.8 {
		t.Errorf("ns_per_op = %v, want 154.8", r["ns_per_op"])
	}
	if hr := r["hit-ratio"]; hr != 1.0 {
		t.Errorf("hit-ratio = %v, want 1", hr)
	}
	mem := byName["BenchmarkStoreConcurrentWrite/Sharded/syncEveryPut"]
	if mem["B/op"] != 312.0 || mem["allocs/op"] != 7.0 {
		t.Errorf("benchmem columns = %v / %v, want 312 / 7", mem["B/op"], mem["allocs/op"])
	}
	p99 := byName["BenchmarkCompactionGetP99/compacting"]
	if p99["p99-ns"] != 2100.0 || p99["p50-ns"] != 900.0 {
		t.Errorf("extra metrics = %v / %v, want 2100 / 900", p99["p99-ns"], p99["p50-ns"])
	}
	if r["iterations"] != 1535702 {
		t.Errorf("iterations = %v, want 1535702", r["iterations"])
	}
}

func TestCompareFlagsRegressionsOnly(t *testing.T) {
	base := []row{
		{"name": "BenchmarkA", "ns_per_op": 100.0},
		{"name": "BenchmarkB", "ns_per_op": 100.0},
		{"name": "BenchmarkC", "ns_per_op": 100.0},
		{"name": "BenchmarkBaselineOnly", "ns_per_op": 100.0},
	}
	cur := []row{
		{"name": "BenchmarkA", "ns_per_op": 130.0}, // +30%: regression
		{"name": "BenchmarkB", "ns_per_op": 110.0}, // +10%: within gate
		{"name": "BenchmarkC", "ns_per_op": 60.0},  // -40%: improvement
		{"name": "BenchmarkNewThisRun", "ns_per_op": 5.0},
	}
	deltas, missing := compare(base, cur, nil, 0.25)
	if len(deltas) != 3 {
		t.Fatalf("compared %d benchmarks, want 3 (intersection only)", len(deltas))
	}
	if len(missing) != 1 || missing[0] != "BenchmarkBaselineOnly" {
		t.Fatalf("missing = %v, want [BenchmarkBaselineOnly]", missing)
	}
	var sb strings.Builder
	n := annotate(&sb, deltas, missing, 0.25)
	if n != 1 {
		t.Fatalf("flagged %d regressions, want 1:\n%s", n, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "::warning title=bench regression::BenchmarkA") {
		t.Errorf("missing warning for BenchmarkA:\n%s", out)
	}
	if strings.Contains(out, "::warning title=bench regression::BenchmarkB") {
		t.Errorf("within-gate delta was flagged:\n%s", out)
	}
	if !strings.Contains(out, "::notice title=bench improvement::BenchmarkC") {
		t.Errorf("missing improvement notice for BenchmarkC:\n%s", out)
	}
	if !strings.Contains(out, "::warning title=bench missing::BenchmarkBaselineOnly") {
		t.Errorf("gated baseline bench vanished without a warning:\n%s", out)
	}
}

func TestCompareMatchRestricts(t *testing.T) {
	base := []row{
		{"name": "BenchmarkHotPath", "ns_per_op": 100.0},
		{"name": "BenchmarkCold", "ns_per_op": 100.0},
	}
	cur := []row{
		{"name": "BenchmarkHotPath", "ns_per_op": 200.0},
		{"name": "BenchmarkCold", "ns_per_op": 200.0},
	}
	deltas, missing := compare(base, cur, regexp.MustCompile(`HotPath`), 0.25)
	if len(deltas) != 1 || deltas[0].name != "BenchmarkHotPath" {
		t.Fatalf("match filter kept %v, want only BenchmarkHotPath", deltas)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none (BenchmarkCold is outside -match)", missing)
	}
}
