// Command culinarydb builds the synthetic CulinaryDB corpus and exports,
// summarizes, or persists it.
//
// Usage:
//
//	culinarydb -out corpus.csv [-format csv|json] [-scale f] [-seed s]
//	culinarydb -stats [-region CODE]
//	culinarydb -query "SELECT ..." [-query-result-cache-bytes n]   # run CQL against the corpus
//	culinarydb -savedb DIR [-db-shards n] [-db-sync]   # persist a storage-engine snapshot
//	           [-db-mmap] [-db-read-cache-bytes n]
//	           [-db-compact-interval d] [-db-compact-garbage-ratio f]
//	culinarydb -dbinfo DIR                             # inspect a snapshot directory
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/recipedb"
	"culinary/internal/report"
	"culinary/internal/stats"
	"culinary/internal/storage"
	"culinary/internal/synth"
)

func main() {
	var (
		out       = flag.String("out", "", "output file for corpus export ('-' for stdout)")
		format    = flag.String("format", "csv", "export format: csv or json")
		scale     = flag.Float64("scale", 1.0, "corpus scale factor")
		seed      = flag.Uint64("seed", 20180416, "master seed")
		stats     = flag.Bool("stats", false, "print per-region statistics instead of exporting")
		region    = flag.String("region", "", "restrict -stats to one region code")
		queryStmt = flag.String("query", "", "run one CQL statement against the generated corpus")
		resCache  = flag.Int64("query-result-cache-bytes", query.DefaultResultCacheBytes,
			"result cache byte budget for -query (0 disables)")
		savedb    = flag.String("savedb", "", "persist the corpus into a storage snapshot directory")
		dbinfo    = flag.String("dbinfo", "", "print statistics of a snapshot directory and exit")
		dbShards  = flag.Int("db-shards", 64, "keydir shard count for the storage engine (rounded up to a power of two)")
		dbSync    = flag.Bool("db-sync", false, "fsync every write while saving (group-committed)")
		dbMmap    = flag.Bool("db-mmap", true, "mmap sealed segments for zero-syscall point reads")
		dbCache   = flag.Int64("db-read-cache-bytes", 0, "hot-key value cache byte budget (0 disables; saving is write-mostly)")
		dbCompact = flag.Duration("db-compact-interval", 0, "background incremental compaction period while saving (0 = compact once at the end)")
		dbGarbage = flag.Float64("db-compact-garbage-ratio", 0.5, "dead-byte fraction at which a sealed segment is compacted")
	)
	flag.Parse()

	if *dbinfo != "" {
		printDBInfo(*dbinfo)
		return
	}
	if *out == "" && !*stats && *savedb == "" && *queryStmt == "" {
		fmt.Fprintln(os.Stderr, "culinarydb: need -out FILE, -stats, -query STMT, -savedb DIR or -dbinfo DIR; see -help")
		os.Exit(2)
	}

	t0 := time.Now()
	fcfg := flavor.DefaultConfig()
	fcfg.Seed = *seed
	catalog, err := flavor.Build(fcfg)
	if err != nil {
		fatal(err)
	}
	analyzer := pairing.NewAnalyzer(catalog)
	scfg := synth.DefaultConfig()
	scfg.Seed = *seed
	scfg.Scale = *scale
	store, err := synth.Generate(analyzer, scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d recipes in %v\n",
		store.Len(), time.Since(t0).Round(time.Millisecond))

	if *savedb != "" {
		db, err := storage.Open(*savedb, storage.Options{
			Shards:              *dbShards,
			SyncEveryPut:        *dbSync,
			Mmap:                *dbMmap,
			ReadCacheBytes:      *dbCache,
			CompactInterval:     *dbCompact,
			CompactGarbageRatio: *dbGarbage,
		})
		if err != nil {
			fatal(err)
		}
		if err := storage.SaveCorpus(db, store); err != nil {
			db.Close()
			fatal(err)
		}
		if db.NeedsCompaction() {
			if err := db.Compact(); err != nil {
				db.Close()
				fatal(err)
			}
		}
		st := db.Stats()
		if err := db.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved %d keys (%d bytes live, %d segments) to %s\n",
			st.Keys, st.LiveBytes, st.Segments, *savedb)
		if *out == "" && !*stats {
			return
		}
	}

	if *stats {
		printStats(store, *region)
		return
	}

	if *queryStmt != "" {
		runQuery(store, analyzer, *queryStmt, *resCache)
		return
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	switch *format {
	case "csv":
		err = store.WriteCSV(w)
	case "json":
		err = store.WriteJSON(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// runQuery executes one CQL statement against the corpus and prints
// the result table plus the engine's cache counters.
func runQuery(store *recipedb.Store, analyzer *pairing.Analyzer, stmt string, resCacheBytes int64) {
	engine := query.NewEngine(store, analyzer)
	if resCacheBytes != 0 {
		engine.EnableResultCache(resCacheBytes)
	}
	t0 := time.Now()
	res, err := engine.Run(stmt)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("%d rows (scanned %d recipes in %v, corpus version %d)",
		len(res.Rows), res.Scanned, time.Since(t0).Round(time.Microsecond), res.Version)
	if err := res.Table(title).Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func printStats(store *recipedb.Store, regionCode string) {
	regions := recipedb.MajorRegions()
	if regionCode != "" {
		r, err := recipedb.ParseRegion(regionCode)
		if err != nil {
			fatal(err)
		}
		regions = []recipedb.Region{r}
	}
	t := report.NewTable("Corpus statistics",
		"Region", "Recipes", "UniqueIngredients", "MeanSize", "Gini")
	for _, r := range regions {
		c := store.BuildCuisine(r)
		h := c.SizeHistogram()
		t.AddRow(r.Code(), c.NumRecipes(), c.NumUniqueIngredients(), h.Mean(),
			giniOf(c))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func giniOf(c *recipedb.Cuisine) float64 {
	return stats.Gini(c.FrequencyVector())
}

// printDBInfo summarizes a snapshot directory: storage-level stats plus
// the recorded catalog configuration.
func printDBInfo(dir string) {
	db, err := storage.Open(dir, storage.Options{})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	st := db.Stats()
	fmt.Printf("snapshot %s: %d keys, %d segments, %d keydir shards, %d live bytes, %d dead bytes\n",
		dir, st.Keys, st.Segments, st.Shards, st.LiveBytes, st.DeadBytes)
	cfg, err := storage.LoadCatalogConfig(db)
	if err != nil {
		fmt.Println("no corpus snapshot metadata:", err)
		return
	}
	fmt.Printf("catalog: seed=%d molecules=%d themes=%d\n",
		cfg.Seed, cfg.NumMolecules, cfg.NumThemes)
	fmt.Printf("recipes: %d\n", len(db.KeysWithPrefix("recipe/")))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "culinarydb:", err)
	os.Exit(1)
}
