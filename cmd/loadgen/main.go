// Command loadgen is a closed-loop HTTP load generator for the culinary
// API server: the standing "heavy traffic" harness the ROADMAP calls
// for. Each worker issues one request at a time (closed loop — offered
// load adapts to server latency, so overload manifests as shed 429/503
// responses, not an unbounded client backlog) drawn from a weighted mix
// of traffic shapes: CQL queries, recipe/region reads, full-text
// searches, recipe mutations (upsert + delete), mutation-then-search
// freshness probes (searchmut), recommender completions (recommend),
// and random-size bulk ingests through POST /api/recipes/batch with
// per-item result validation and a freshness probe on the last item
// (batch).
//
//	loadgen [-addr http://localhost:8080] [-read-addr http://localhost:8081]
//	        [-duration 60s] [-concurrency 16]
//	        [-mix query=35,read=25,search=15,mutation=10,searchmut=5,recommend=5,batch=5]
//	        [-seed 1] [-out BENCH_load.json] [-name LoadSoak/mixed] [-strict]
//
// With -read-addr the run becomes a replication soak: mutations still
// go to -addr (the primary) while every read shape targets the read
// address (a follower). Freshness probes then route their follow-up
// search with the write's acked corpus version as an X-Min-Version
// token, so the follower must either serve read-your-writes state or
// answer 503 replica_lagging — never a stale read. One lag-and-retry
// round trip per probe is within contract and lands in the
// replicaLagging503 bucket; a probe still lagging after the retry is
// a freshness violation (unbounded lag).
//
// The run records p50/p99 latency over successful requests, throughput,
// error rate and shed rate, and writes them as rows in the unified
// cmd/benchjson schema (ns_per_op = the percentile) so the CI
// bench-regression gate diffs soak results like any other benchmark.
//
// Every non-2xx response is checked against the structured error
// envelope {"error":{"code","message"}}; with -strict the process
// exits 1 when any 4xx/5xx body violates the contract, when any 5xx
// other than a deliberate 503 shed appears, when /api/health fails
// to report the traffic block the soak asserts on, or when a derived
// read model serves stale state: a searchmut probe whose acked upsert
// is missing from the immediately following search, or a recommend
// response whose modelVersion moves backwards within one worker. That
// makes a short soak a pass/fail regression test, not just a
// measurement.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "server base URL (the primary: mutations always go here)")
		readAddr    = flag.String("read-addr", "", "base URL for read traffic (a follower); empty reads from -addr. Setting it makes 503 replica_lagging an expected probe outcome")
		duration    = flag.Duration("duration", 60*time.Second, "soak length")
		concurrency = flag.Int("concurrency", 16, "closed-loop workers")
		mixSpec     = flag.String("mix", "query=35,read=25,search=15,mutation=10,searchmut=5,recommend=5,batch=5", "traffic mix weights")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		out         = flag.String("out", "", "benchjson rows destination (default stdout)")
		name        = flag.String("name", "LoadSoak/mixed", "benchmark row name prefix")
		strict      = flag.Bool("strict", true, "exit 1 on contract violations (unexpected 5xx, malformed error envelopes, missing health traffic block)")
		tolerate    = flag.Bool("tolerate-degraded", false, "accept 503 storage_unavailable responses as expected read-only degradation (envelope and Retry-After still enforced); without it any storage_unavailable is a contract violation")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	rep, err := runLoad(loadConfig{
		BaseURL:          strings.TrimRight(*addr, "/"),
		ReadBaseURL:      strings.TrimRight(*readAddr, "/"),
		Duration:         *duration,
		Concurrency:      *concurrency,
		Mix:              mix,
		Seed:             *seed,
		TolerateDegraded: *tolerate,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, rep.summary(*name))

	rows, err := rep.benchRows(*name)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(rows)
	} else if err := os.WriteFile(*out, rows, 0o644); err != nil {
		fatal(err)
	}

	if *strict {
		if msgs := rep.violations(); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "loadgen: VIOLATION:", m)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: contract clean (no unexpected 5xx, all error bodies enveloped)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// shape names index the mix weights.
const (
	shapeQuery     = "query"
	shapeRead      = "read"
	shapeSearch    = "search"
	shapeMutation  = "mutation"
	shapeSearchMut = "searchmut" // upsert, then assert the ack is searchable
	shapeRecommend = "recommend" // completion with modelVersion monotonicity
	shapeBatch     = "batch"     // bulk ingest with per-item results + freshness probe
)

var shapeOrder = []string{shapeQuery, shapeRead, shapeSearch, shapeMutation, shapeSearchMut, shapeRecommend, shapeBatch}

// parseMix reads "query=40,read=30,...". Unknown shapes are errors;
// omitted shapes get weight 0; the total must be positive.
func parseMix(spec string) (map[string]int, error) {
	mix := map[string]int{
		shapeQuery: 0, shapeRead: 0, shapeSearch: 0, shapeMutation: 0,
		shapeSearchMut: 0, shapeRecommend: 0, shapeBatch: 0,
	}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want shape=weight)", part)
		}
		if _, known := mix[k]; !known {
			return nil, fmt.Errorf("unknown traffic shape %q (shapes: %s)", k, strings.Join(shapeOrder, ", "))
		}
		var w int
		if _, err := fmt.Sscanf(v, "%d", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight %q for shape %q", v, k)
		}
		mix[k] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", spec)
	}
	return mix, nil
}

// loadConfig parameterizes one soak run.
type loadConfig struct {
	BaseURL string
	// ReadBaseURL, when non-empty and different from BaseURL, receives
	// every read-shaped request (a follower in a replication soak);
	// mutations still go to BaseURL. Freshness probes then carry the
	// write's corpus version as an X-Min-Version token, and one 503
	// replica_lagging + retry per probe becomes an expected outcome.
	ReadBaseURL string
	Duration    time.Duration
	Concurrency int
	Mix         map[string]int
	Seed        int64
	// TolerateDegraded accepts 503 storage_unavailable as an expected
	// outcome (the server's disk is being faulted deliberately, e.g.
	// the CI ENOSPC soak). The envelope and Retry-After contracts are
	// still enforced on those responses.
	TolerateDegraded bool
}

// report aggregates one run's outcome.
type report struct {
	Duration           time.Duration
	Succeeded          int64 // 2xx
	Expected4          int64 // 4xx carrying a valid envelope (incl. 413/429)
	Shed429            int64
	Shed503            int64
	Degraded503        int64 // 503 storage_unavailable under -tolerate-degraded
	ReplicaLagging503  int64 // 503 replica_lagging on version-token reads in a replica soak
	Timeout504         int64
	Unexpected5        int64 // 5xx other than 503 sheds
	EnvelopeViolations int64
	// FreshnessViolations counts derived-state staleness observed on
	// the wire: an acked upsert missing from the immediately following
	// search, or a recommender modelVersion regressing within a worker.
	FreshnessViolations int64
	violationSamples    []string

	latencies []time.Duration // successful requests only

	HealthTraffic map[string]interface{} // /api/health "traffic" block, post-run
}

// percentile returns the pth percentile (0..100) of successful-request
// latency; 0 with no samples. Callers sort r.latencies first.
func (r *report) percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(r.latencies)-1))
	return r.latencies[idx]
}

func (r *report) total() int64 {
	// Shed429 already rides inside Expected4; the 503 variants are
	// their own buckets.
	return r.Succeeded + r.Expected4 + r.Shed503 + r.Degraded503 + r.ReplicaLagging503 + r.Unexpected5 + r.EnvelopeViolations + r.Timeout504
}

// benchRows renders the run in the cmd/benchjson flat schema: one row
// per gated percentile, extra metrics riding on the p50 row.
func (r *report) benchRows(name string) ([]byte, error) {
	total := r.total()
	qps := 0.0
	if r.Duration > 0 {
		qps = float64(total) / r.Duration.Seconds()
	}
	shedRate, errRate := 0.0, 0.0
	if total > 0 {
		shedRate = float64(r.Shed429+r.Shed503) / float64(total)
		errRate = float64(r.Unexpected5+r.EnvelopeViolations) / float64(total)
	}
	rows := []map[string]interface{}{
		{
			"name":       name + "/p50",
			"iterations": total,
			"ns_per_op":  float64(r.percentile(50).Nanoseconds()),
			"qps":        qps,
			"error-rate": errRate,
			"shed-rate":  shedRate,
		},
		{
			"name":       name + "/p99",
			"iterations": total,
			"ns_per_op":  float64(r.percentile(99).Nanoseconds()),
		},
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// summary renders the human-readable run report.
func (r *report) summary(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen %s: %d requests in %v (%.0f req/s)\n",
		name, r.total(), r.Duration.Round(time.Millisecond), float64(r.total())/r.Duration.Seconds())
	fmt.Fprintf(&b, "  ok=%d expected4xx=%d (429=%d) shed503=%d degraded503=%d replicaLagging503=%d timeout504=%d unexpected5xx=%d envelopeViolations=%d freshnessViolations=%d\n",
		r.Succeeded, r.Expected4, r.Shed429, r.Shed503, r.Degraded503, r.ReplicaLagging503, r.Timeout504, r.Unexpected5, r.EnvelopeViolations, r.FreshnessViolations)
	fmt.Fprintf(&b, "  latency p50=%v p99=%v (over %d successes)\n",
		r.percentile(50).Round(time.Microsecond), r.percentile(99).Round(time.Microsecond), len(r.latencies))
	if r.HealthTraffic != nil {
		if tj, err := json.Marshal(r.HealthTraffic); err == nil {
			fmt.Fprintf(&b, "  health traffic: %s\n", tj)
		}
	}
	return b.String()
}

// violations lists the strict-mode contract failures.
func (r *report) violations() []string {
	var out []string
	if r.Succeeded == 0 {
		out = append(out, "no request succeeded")
	}
	if r.Unexpected5 > 0 {
		out = append(out, fmt.Sprintf("%d unexpected 5xx responses (only deliberate 503 sheds are allowed)", r.Unexpected5))
	}
	if r.EnvelopeViolations > 0 {
		out = append(out, fmt.Sprintf("%d error responses without a valid {\"error\":{\"code\",\"message\"}} envelope", r.EnvelopeViolations))
	}
	if r.FreshnessViolations > 0 {
		out = append(out, fmt.Sprintf("%d derived-state freshness violations (stale search after acked mutation, or regressing modelVersion)", r.FreshnessViolations))
	}
	for _, s := range r.violationSamples {
		out = append(out, "  sample: "+s)
	}
	if r.HealthTraffic == nil {
		out = append(out, "/api/health reported no \"traffic\" block")
	}
	return out
}

// corpusInfo is the workload vocabulary harvested at bootstrap.
type corpusInfo struct {
	ingredients []string
	regions     []string
	sources     []string
	slots       int
}

// waitHealthy polls /api/health until the server at base answers 200
// or the 30s patience runs out.
func waitHealthy(client *http.Client, base string) error {
	var lastErr error
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/api/health")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("health: status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy: %w", base, lastErr)
}

// bootstrap waits for the server and harvests ingredient names, region
// codes and source labels to parameterize the workload.
func bootstrap(client *http.Client, base string) (*corpusInfo, error) {
	if err := waitHealthy(client, base); err != nil {
		return nil, err
	}

	resp, err := client.Get(base + "/api/recipes?limit=100")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Total   int `json:"total"`
		Recipes []struct {
			ID          int      `json:"id"`
			Region      string   `json:"region"`
			Source      string   `json:"source"`
			Ingredients []string `json:"ingredients"`
		} `json:"recipes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("harvesting corpus vocabulary: %w", err)
	}
	info := &corpusInfo{slots: body.Total}
	seenIng := map[string]bool{}
	seenReg := map[string]bool{}
	seenSrc := map[string]bool{}
	for _, rec := range body.Recipes {
		if !seenReg[rec.Region] {
			seenReg[rec.Region] = true
			info.regions = append(info.regions, rec.Region)
		}
		if !seenSrc[rec.Source] {
			seenSrc[rec.Source] = true
			info.sources = append(info.sources, rec.Source)
		}
		for _, ing := range rec.Ingredients {
			if !seenIng[ing] {
				seenIng[ing] = true
				info.ingredients = append(info.ingredients, ing)
			}
		}
	}
	if len(info.ingredients) < 5 || len(info.regions) == 0 || len(info.sources) == 0 {
		return nil, fmt.Errorf("corpus vocabulary too small (ingredients=%d regions=%d sources=%d)",
			len(info.ingredients), len(info.regions), len(info.sources))
	}
	return info, nil
}

// runLoad executes one closed-loop soak and aggregates the report.
func runLoad(cfg loadConfig) (*report, error) {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}
	info, err := bootstrap(client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	readBase := cfg.ReadBaseURL
	if readBase == "" {
		readBase = cfg.BaseURL
	}
	if readBase != cfg.BaseURL {
		// A follower bootstraps asynchronously; wait until it serves.
		if err := waitHealthy(client, readBase); err != nil {
			return nil, err
		}
	}

	var picks []string
	for _, s := range shapeOrder {
		for i := 0; i < cfg.Mix[s]; i++ {
			picks = append(picks, s)
		}
	}

	stop := time.Now().Add(cfg.Duration)
	reports := make([]*report, cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		w := &worker{
			id:               i,
			rng:              rand.New(rand.NewSource(cfg.Seed + int64(i))),
			client:           client,
			base:             cfg.BaseURL,
			readBase:         readBase,
			info:             info,
			picks:            picks,
			rep:              &report{},
			tolerateDegraded: cfg.TolerateDegraded,
			expectLagging:    readBase != cfg.BaseURL,
		}
		reports[i] = w.rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(stop)
		}()
	}
	start := time.Now()
	wg.Wait()

	total := &report{Duration: time.Since(start)}
	for _, r := range reports {
		total.Succeeded += r.Succeeded
		total.Expected4 += r.Expected4
		total.Shed429 += r.Shed429
		total.Shed503 += r.Shed503
		total.Degraded503 += r.Degraded503
		total.ReplicaLagging503 += r.ReplicaLagging503
		total.Timeout504 += r.Timeout504
		total.Unexpected5 += r.Unexpected5
		total.EnvelopeViolations += r.EnvelopeViolations
		total.FreshnessViolations += r.FreshnessViolations
		total.latencies = append(total.latencies, r.latencies...)
		if len(total.violationSamples) < 5 {
			total.violationSamples = append(total.violationSamples, r.violationSamples...)
		}
	}
	if len(total.violationSamples) > 5 {
		total.violationSamples = total.violationSamples[:5]
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	// Post-run health snapshot: the soak asserts the traffic block is
	// present so /api/health stays a valid overload dashboard.
	if resp, err := client.Get(cfg.BaseURL + "/api/health"); err == nil {
		var health map[string]interface{}
		if json.NewDecoder(resp.Body).Decode(&health) == nil {
			if tb, ok := health["traffic"].(map[string]interface{}); ok {
				total.HealthTraffic = tb
			}
		}
		resp.Body.Close()
	}
	return total, nil
}

// worker is one closed-loop client.
type worker struct {
	id     int
	rng    *rand.Rand
	client *http.Client
	// base receives mutations (the primary); readBase receives read
	// shapes and freshness follow-ups (a follower in a replica soak,
	// otherwise the same URL).
	base             string
	readBase         string
	info             *corpusInfo
	picks            []string
	rep              *report
	tolerateDegraded bool
	// expectLagging marks a replica soak: version-token reads may
	// legitimately answer 503 replica_lagging while the follower
	// catches up.
	expectLagging bool

	created []int // recipe IDs this worker upserted and may delete
	seq     int
	// lastModelVersion is the highest recommender modelVersion this
	// worker has observed; it must never regress.
	lastModelVersion uint64
}

func (w *worker) run(stop time.Time) {
	for time.Now().Before(stop) {
		switch w.picks[w.rng.Intn(len(w.picks))] {
		case shapeQuery:
			w.query()
		case shapeRead:
			w.read()
		case shapeSearch:
			w.search()
		case shapeMutation:
			w.mutate()
		case shapeSearchMut:
			w.searchMut()
		case shapeRecommend:
			w.recommend()
		case shapeBatch:
			w.batchIngest()
		}
	}
}

func (w *worker) ingredient() string {
	return w.info.ingredients[w.rng.Intn(len(w.info.ingredients))]
}

func (w *worker) region() string {
	return w.info.regions[w.rng.Intn(len(w.info.regions))]
}

// query issues one CQL statement: a rotating blend of the hot
// dashboard aggregate (result-cache friendly) and parameterized
// statements that force real scans.
func (w *worker) query() {
	var q string
	switch w.rng.Intn(4) {
	case 0:
		q = "SELECT region, count(*) FROM recipes GROUP BY region"
	case 1:
		q = fmt.Sprintf("SELECT name, size FROM recipes WHERE region = '%s' LIMIT 10", w.region())
	case 2:
		q = fmt.Sprintf("SELECT count(*) FROM recipes WHERE has('%s')", w.ingredient())
	default:
		q = fmt.Sprintf("SELECT avg(size) FROM recipes WHERE region = '%s'", w.region())
	}
	w.doRead("POST", "/api/query", map[string]interface{}{"q": q}, 0)
}

func (w *worker) read() {
	switch w.rng.Intn(3) {
	case 0:
		w.doRead("GET", fmt.Sprintf("/api/recipes?limit=20&offset=%d", w.rng.Intn(200)), nil, 0)
	case 1:
		w.doRead("GET", "/api/regions", nil, 0)
	default:
		if w.info.slots > 0 {
			w.doRead("GET", fmt.Sprintf("/api/recipes/%d", w.rng.Intn(w.info.slots)), nil, 0)
		}
	}
}

func (w *worker) search() {
	q := w.ingredient()
	if w.rng.Intn(2) == 0 {
		q += " " + w.ingredient()
	}
	w.doRead("GET", "/api/search?q="+strings.ReplaceAll(q, " ", "+")+"&limit=10", nil, 0)
}

// mutate upserts a small synthetic recipe, occasionally deleting one
// of this worker's own earlier creations so tombstone churn (and the
// result-cache invalidation it causes) stays in the mix.
func (w *worker) mutate() {
	if len(w.created) > 4 && w.rng.Intn(3) == 0 {
		id := w.created[len(w.created)-1]
		w.created = w.created[:len(w.created)-1]
		w.do("DELETE", fmt.Sprintf("/api/recipes/%d", id), nil)
		return
	}
	n := 2 + w.rng.Intn(4)
	seen := map[string]bool{}
	var ings []string
	for len(ings) < n {
		ing := w.ingredient()
		if !seen[ing] {
			seen[ing] = true
			ings = append(ings, ing)
		}
	}
	w.seq++
	status, body := w.do("POST", "/api/recipes", map[string]interface{}{
		"name":        fmt.Sprintf("loadgen w%d #%d", w.id, w.seq),
		"region":      w.region(),
		"source":      w.info.sources[w.rng.Intn(len(w.info.sources))],
		"ingredients": ings,
	})
	if status == http.StatusCreated {
		var resp struct {
			ID int `json:"id"`
		}
		if json.Unmarshal(body, &resp) == nil {
			w.created = append(w.created, resp.ID)
		}
	}
}

// alphaToken encodes n in base-26 letters, so workload-generated
// search tokens survive the tokenizer (purely alphabetic, >= 2 chars).
func alphaToken(n int) string {
	buf := []byte{'a' + byte(n%26)}
	for n /= 26; n > 0; n /= 26 {
		buf = append(buf, 'a'+byte(n%26))
	}
	return string(buf)
}

// searchMut is the mutation-visibility probe: upsert a recipe whose
// name carries a token unique to this (worker, sequence) pair, then —
// if the mutation was acked 2xx — assert the very next /api/search for
// that token returns the acked recipe ID. The follow-up read carries
// the ack's corpus version as an X-Min-Version token, so when reads
// target a follower the probe asserts read-your-writes across the
// replication hop: the follower either serves the write or answers
// 503 replica_lagging (one retry allowed) — never a stale hit list.
// A shed mutation (429/503) acks nothing, so there is nothing to
// assert; a shed search leaves freshness unobservable that round. A
// successful search missing the acked ID is a freshness violation:
// the synchronous-index contract broke on the wire.
func (w *worker) searchMut() {
	w.seq++
	token := "zzfresh" + alphaToken(w.id) + "q" + alphaToken(w.seq)
	n := 2 + w.rng.Intn(3)
	seen := map[string]bool{}
	var ings []string
	for len(ings) < n {
		ing := w.ingredient()
		if !seen[ing] {
			seen[ing] = true
			ings = append(ings, ing)
		}
	}
	status, body, hdr := w.doAt(w.base, "POST", "/api/recipes", map[string]interface{}{
		"name":        token + " probe",
		"region":      w.region(),
		"source":      w.info.sources[w.rng.Intn(len(w.info.sources))],
		"ingredients": ings,
	}, 0)
	if status != http.StatusCreated && status != http.StatusOK {
		return // not acked; nothing to assert
	}
	var ack struct {
		ID int `json:"id"`
	}
	if json.Unmarshal(body, &ack) != nil {
		return
	}
	w.created = append(w.created, ack.ID)

	ids, ok := w.probeSearch("searchmut", token, ackVersion(hdr))
	if !ok {
		return // search shed or still lagging; already classified
	}
	for _, id := range ids {
		if id == ack.ID {
			return
		}
	}
	w.rep.FreshnessViolations++
	w.note("searchmut: acked recipe %d missing from next search for %q (%d hits)", ack.ID, token, len(ids))
}

// ackVersion extracts the corpus version a mutation response was
// stamped with; 0 (no token) when the header is absent or unparseable,
// which degrades the probe to an unversioned read.
func ackVersion(hdr http.Header) uint64 {
	v, _ := strconv.ParseUint(hdr.Get("X-Corpus-Version"), 10, 64)
	return v
}

// retryAfterDelay honors a 503's Retry-After hint (capped at 5s so a
// misbehaving server cannot stall the soak), defaulting to 1s.
func retryAfterDelay(hdr http.Header) time.Duration {
	if s, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && s > 0 && s <= 5 {
		return time.Duration(s) * time.Second
	}
	return time.Second
}

// probeSearch issues a freshness follow-up /api/search with the
// write's version token and returns the hit IDs. A 503 replica_lagging
// answer earns exactly one retry after the Retry-After hint — the
// contract the replica soak enforces end to end; a probe still lagging
// after the retry is a freshness violation (lag is supposed to be
// bounded). Any other non-200 leaves freshness unobservable this
// round (ok=false without a violation).
func (w *worker) probeSearch(shape, token string, minVersion uint64) ([]int, bool) {
	path := "/api/search?q=" + token + "&limit=50"
	for attempt := 0; ; attempt++ {
		st, raw, hdr := w.doRead("GET", path, nil, minVersion)
		if st == http.StatusOK {
			var sr struct {
				Hits []struct {
					Recipe struct {
						ID int `json:"id"`
					} `json:"recipe"`
				} `json:"hits"`
			}
			if err := json.Unmarshal(raw, &sr); err != nil {
				w.rep.FreshnessViolations++
				w.note("%s: unparseable search body for %q: %.200s", shape, token, raw)
				return nil, false
			}
			ids := make([]int, 0, len(sr.Hits))
			for _, h := range sr.Hits {
				ids = append(ids, h.Recipe.ID)
			}
			return ids, true
		}
		if st == http.StatusServiceUnavailable && envelopeCode(raw) == "replica_lagging" {
			if attempt == 0 {
				time.Sleep(retryAfterDelay(hdr))
				continue
			}
			w.rep.FreshnessViolations++
			w.note("%s: follower still lagging after retry (minVersion=%d, token %q)", shape, minVersion, token)
		}
		return nil, false
	}
}

// recommend issues one completion and asserts the stamped modelVersion
// never moves backwards within this worker: background rebuilds must
// install strictly newer model epochs. A 422 (the drawn region may
// have emptied out under mutation churn) carries no version to check.
func (w *worker) recommend() {
	status, raw, _ := w.doRead("POST", "/api/complete", map[string]interface{}{
		"region":      w.region(),
		"ingredients": []string{w.ingredient(), w.ingredient()},
		"k":           5,
	}, 0)
	if status != http.StatusOK {
		return
	}
	var resp struct {
		ModelVersion uint64 `json:"modelVersion"`
	}
	if json.Unmarshal(raw, &resp) != nil {
		return
	}
	if resp.ModelVersion < w.lastModelVersion {
		w.rep.FreshnessViolations++
		w.note("recommend: modelVersion went backwards: %d after %d", resp.ModelVersion, w.lastModelVersion)
		return
	}
	w.lastModelVersion = resp.ModelVersion
}

// batchIngest POSTs a random-size bulk ingest and validates the
// per-item result contract: one result per request item, every status
// from the documented set, applied items carrying an id — any drift is
// an envelope violation. Since every generated item is valid, a
// rejected item is a violation too. The last item's name carries a
// unique token, and — like searchmut — if the batch was acked, the very
// next search for that token must return the acked ID: the synchronous
// freshness contract covers coalesced batches exactly as it covers
// single upserts.
func (w *worker) batchIngest() {
	size := 2 + w.rng.Intn(7)
	recipes := make([]map[string]interface{}, size)
	var token string
	for i := range recipes {
		w.seq++
		n := 2 + w.rng.Intn(3)
		seen := map[string]bool{}
		var ings []string
		for len(ings) < n {
			ing := w.ingredient()
			if !seen[ing] {
				seen[ing] = true
				ings = append(ings, ing)
			}
		}
		name := fmt.Sprintf("loadgen bulk w%d #%d", w.id, w.seq)
		if i == size-1 {
			token = "zzbulk" + alphaToken(w.id) + "q" + alphaToken(w.seq)
			name = token + " probe"
		}
		recipes[i] = map[string]interface{}{
			"name":        name,
			"region":      w.region(),
			"source":      w.info.sources[w.rng.Intn(len(w.info.sources))],
			"ingredients": ings,
		}
	}
	status, raw, hdr := w.doAt(w.base, "POST", "/api/recipes/batch", map[string]interface{}{"recipes": recipes}, 0)
	if status != http.StatusOK {
		return // shed or degraded; already classified by do
	}
	var resp struct {
		Applied int `json:"applied"`
		Results []struct {
			Index   int    `json:"index"`
			Status  string `json:"status"`
			ID      *int   `json:"id"`
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		w.rep.EnvelopeViolations++
		w.note("batch: unparseable response: %.200s", raw)
		return
	}
	if len(resp.Results) != size {
		w.rep.EnvelopeViolations++
		w.note("batch: %d items answered with %d results", size, len(resp.Results))
		return
	}
	probeID := -1
	for i, res := range resp.Results {
		switch res.Status {
		case "created", "replaced", "kept":
			if res.ID == nil {
				w.rep.EnvelopeViolations++
				w.note("batch: %s result %d lacks an id", res.Status, i)
				continue
			}
			if res.Status == "created" {
				w.created = append(w.created, *res.ID)
			}
			if i == size-1 {
				probeID = *res.ID
			}
		case "rejected":
			w.rep.EnvelopeViolations++
			w.note("batch: valid item %d rejected: %s %s", i, res.Code, res.Message)
		default:
			w.rep.EnvelopeViolations++
			w.note("batch: result %d has unknown status %q", i, res.Status)
		}
	}
	if probeID < 0 {
		return
	}

	ids, ok := w.probeSearch("batch", token, ackVersion(hdr))
	if !ok {
		return // search shed or still lagging; already classified
	}
	for _, id := range ids {
		if id == probeID {
			return
		}
	}
	w.rep.FreshnessViolations++
	w.note("batch: acked recipe %d missing from next search for %q (%d hits)", probeID, token, len(ids))
}

// do issues one mutation-side request against the primary base URL.
func (w *worker) do(method, path string, body interface{}) (int, []byte) {
	status, raw, _ := w.doAt(w.base, method, path, body, 0)
	return status, raw
}

// doRead issues one read-shaped request against the read base (the
// follower in a replica soak); minVersion > 0 stamps the X-Min-Version
// token so a lagging follower must refuse rather than serve stale.
func (w *worker) doRead(method, path string, body interface{}, minVersion uint64) (int, []byte, http.Header) {
	return w.doAt(w.readBase, method, path, body, minVersion)
}

// doAt issues one request, classifies the response, and validates the
// envelope contract on every error status.
func (w *worker) doAt(base, method, path string, body interface{}, minVersion uint64) (int, []byte, http.Header) {
	var reader io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, nil
		}
		reader = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, base+path, reader)
	if err != nil {
		return 0, nil, nil
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if minVersion > 0 {
		req.Header.Set("X-Min-Version", strconv.FormatUint(minVersion, 10))
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		// Transport-level failure (refused, client timeout): counted
		// as an unexpected failure — a draining server must finish
		// accepted requests, and a healthy one must keep accepting.
		w.rep.Unexpected5++
		w.note("transport error on %s %s: %v", method, path, err)
		return 0, nil, nil
	}
	elapsed := time.Since(start)
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()

	status := resp.StatusCode
	switch {
	case status >= 200 && status < 300:
		w.rep.Succeeded++
		w.rep.latencies = append(w.rep.latencies, elapsed)
	case status == http.StatusTooManyRequests:
		w.classifyError(status, raw, resp, method, path)
	case status == http.StatusServiceUnavailable:
		w.classifyError(status, raw, resp, method, path)
	case status == http.StatusGatewayTimeout:
		w.classifyError(status, raw, resp, method, path)
	case status >= 500:
		w.rep.Unexpected5++
		w.note("unexpected %d on %s %s: %.200s", status, method, path, raw)
	default: // other 4xx
		w.classifyError(status, raw, resp, method, path)
	}
	return status, raw, resp.Header
}

// classifyError buckets an expected error status after validating the
// envelope (and, for 429/503, the Retry-After contract).
func (w *worker) classifyError(status int, raw []byte, resp *http.Response, method, path string) {
	if !validEnvelope(raw) {
		w.rep.EnvelopeViolations++
		w.note("%d on %s %s has no valid error envelope: %.200s", status, method, path, raw)
		return
	}
	switch status {
	case http.StatusTooManyRequests:
		w.rep.Shed429++
		w.rep.Expected4++
		if resp.Header.Get("Retry-After") == "" {
			w.rep.EnvelopeViolations++
			w.note("429 on %s %s missing Retry-After", method, path)
		}
	case http.StatusServiceUnavailable:
		switch envelopeCode(raw) {
		case "storage_unavailable":
			// The storage engine's write path is degraded, not the
			// request pipeline. Only acceptable when the caller said
			// the disk is being faulted on purpose.
			if !w.tolerateDegraded {
				w.rep.Unexpected5++
				w.note("503 storage_unavailable on %s %s without -tolerate-degraded", method, path)
				return
			}
			w.rep.Degraded503++
		case "replica_lagging":
			// A version-token read outran the follower's replay — the
			// documented refuse-rather-than-serve-stale outcome, but
			// only a replica soak (-read-addr) should ever see it.
			if !w.expectLagging {
				w.rep.Unexpected5++
				w.note("503 replica_lagging on %s %s outside a replica soak", method, path)
				return
			}
			w.rep.ReplicaLagging503++
		default:
			w.rep.Shed503++
		}
		if resp.Header.Get("Retry-After") == "" {
			w.rep.EnvelopeViolations++
			w.note("503 on %s %s missing Retry-After", method, path)
		}
	case http.StatusGatewayTimeout:
		w.rep.Timeout504++
	default:
		w.rep.Expected4++
	}
}

func (w *worker) note(format string, args ...interface{}) {
	if len(w.rep.violationSamples) < 3 {
		w.rep.violationSamples = append(w.rep.violationSamples, fmt.Sprintf(format, args...))
	}
}

// validEnvelope checks the structured error contract: the body must be
// {"error":{"code","message"}} with a non-empty code.
func validEnvelope(raw []byte) bool {
	return envelopeCode(raw) != ""
}

// envelopeCode extracts the machine-readable code from an error
// envelope, or "" when the body is not a valid envelope.
func envelopeCode(raw []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return ""
	}
	return env.Error.Code
}
