package main

import (
	"encoding/json"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"culinary/internal/experiments"
	"culinary/internal/httpmw"
	"culinary/internal/replica"
	"culinary/internal/server"
	"culinary/internal/storage"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("query=40,read=30,search=20,mutation=10")
	if err != nil {
		t.Fatal(err)
	}
	if mix[shapeQuery] != 40 || mix[shapeRead] != 30 || mix[shapeSearch] != 20 || mix[shapeMutation] != 10 {
		t.Fatalf("mix = %v", mix)
	}

	mix, err = parseMix("searchmut=7,recommend=3")
	if err != nil {
		t.Fatal(err)
	}
	if mix[shapeSearchMut] != 7 || mix[shapeRecommend] != 3 {
		t.Fatalf("freshness mix = %v", mix)
	}

	mix, err = parseMix("read=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix[shapeRead] != 1 || mix[shapeQuery] != 0 {
		t.Fatalf("partial mix = %v", mix)
	}

	for _, bad := range []string{"", "query", "bogus=5", "query=-1", "query=0,read=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) succeeded", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	r := &report{}
	if r.percentile(99) != 0 {
		t.Fatal("empty report percentile != 0")
	}
	for i := 1; i <= 100; i++ {
		r.latencies = append(r.latencies, time.Duration(i)*time.Millisecond)
	}
	if p := r.percentile(50); p < 49*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := r.percentile(99); p < 98*time.Millisecond || p > 100*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if p := r.percentile(100); p != 100*time.Millisecond {
		t.Fatalf("p100 = %v", p)
	}
}

func TestValidEnvelope(t *testing.T) {
	good := [][]byte{
		[]byte(`{"error":{"code":"rate_limited","message":"slow down"}}`),
		[]byte(`{"error":{"code":"overloaded","message":"x"},"extra":1}`),
	}
	for _, g := range good {
		if !validEnvelope(g) {
			t.Errorf("validEnvelope(%s) = false", g)
		}
	}
	bad := [][]byte{
		[]byte(`not json`),
		[]byte(`{}`),
		[]byte(`{"error":"string"}`),
		[]byte(`{"error":{"message":"code missing"}}`),
		[]byte(`404 page not found`),
	}
	for _, b := range bad {
		if validEnvelope(b) {
			t.Errorf("validEnvelope(%s) = true", b)
		}
	}
}

func TestBenchRowsSchema(t *testing.T) {
	r := &report{
		Duration:  2 * time.Second,
		Succeeded: 90,
		Expected4: 6,
		Shed429:   4,
		Shed503:   2,
	}
	for i := 0; i < 90; i++ {
		r.latencies = append(r.latencies, time.Duration(i+1)*time.Millisecond)
	}
	raw, err := r.benchRows("LoadSoak/mixed")
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("benchRows output is not a JSON array: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0]["name"] != "LoadSoak/mixed/p50" || rows[1]["name"] != "LoadSoak/mixed/p99" {
		t.Fatalf("row names = %v, %v", rows[0]["name"], rows[1]["name"])
	}
	for i, row := range rows {
		if row["ns_per_op"].(float64) <= 0 {
			t.Errorf("row %d ns_per_op = %v", i, row["ns_per_op"])
		}
		if row["iterations"].(float64) != 98 { // 90 + 6 + 2 (503s are not 4xx)
			t.Errorf("row %d iterations = %v", i, row["iterations"])
		}
	}
	if rows[0]["shed-rate"].(float64) <= 0 {
		t.Errorf("p50 row shed-rate = %v, want > 0", rows[0]["shed-rate"])
	}
	if rows[0]["error-rate"].(float64) != 0 {
		t.Errorf("p50 row error-rate = %v, want 0", rows[0]["error-rate"])
	}
}

// TestShortSoakAgainstRealServer runs the full closed loop for a
// couple of seconds against an in-process armored server and asserts
// the strict-mode contract holds: traffic flows, every error response
// is enveloped, and the health traffic block is captured.
func TestShortSoakAgainstRealServer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a real corpus")
	}
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Store:            env.Store,
		Analyzer:         env.Analyzer,
		NullRecipes:      500,
		Seed:             7,
		ResultCacheBytes: -1,
		Traffic: &httpmw.Config{
			// Tight enough that a 4-worker closed loop trips some 429s
			// (exercising the shed paths), loose enough that plenty of
			// traffic still succeeds.
			ReadRPS:       200,
			ReadBurst:     50,
			MutationRPS:   50,
			MutationBurst: 20,
			MaxInFlight:   32,
			RetryAfter:    time.Second,
			MaxBodyBytes:  1 << 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The default mix includes the searchmut and recommend freshness
	// probes, so this soak also asserts the derived-state contract.
	mix, err := parseMix("query=30,read=25,search=15,mutation=10,searchmut=15,recommend=5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(loadConfig{
		BaseURL:     ts.URL,
		Duration:    2 * time.Second,
		Concurrency: 4,
		Mix:         mix,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}

	if msgs := rep.violations(); len(msgs) > 0 {
		t.Fatalf("strict-mode violations: %v\nsummary:\n%s", msgs, rep.summary("test"))
	}
	if rep.Succeeded < 20 {
		t.Fatalf("only %d requests succeeded in 2s: %s", rep.Succeeded, rep.summary("test"))
	}
	if rep.percentile(99) <= 0 {
		t.Fatal("no latency distribution recorded")
	}
	if _, ok := rep.HealthTraffic["admitted"]; !ok {
		t.Fatalf("health traffic block missing admitted counter: %v", rep.HealthTraffic)
	}
	if raw, err := rep.benchRows("LoadSoak/test"); err != nil || len(raw) == 0 {
		t.Fatalf("benchRows: %v", err)
	}
}

// TestSoakToleratesDegradedStorage soaks a server whose storage write
// path is wedged by an injected disk-full fault. With
// -tolerate-degraded, mutations land in the Degraded503 bucket (with
// the envelope and Retry-After contracts still enforced) and the run
// stays violation-free; without it the same responses are contract
// violations — the mode is an explicit opt-in, not a loophole.
func TestSoakToleratesDegradedStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a real corpus")
	}
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	inj := storage.NewErrInjector()
	db, err := storage.Open(t.TempDir(), storage.Options{
		SyncEveryPut:   true,
		FaultInjection: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := storage.SaveCorpus(db, env.Store); err != nil {
		t.Fatal(err)
	}
	env.Store.SetBackend(db)
	srv, err := server.New(server.Config{
		Store:    env.Store,
		Analyzer: env.Analyzer,
		Seed:     7,
		DB:       db,
		Traffic: &httpmw.Config{
			// Generous limits: this soak is about the storage
			// degradation path, not the shed paths.
			ReadRPS:      10000,
			MutationRPS:  10000,
			MaxInFlight:  256,
			RetryAfter:   time.Second,
			MaxBodyBytes: 1 << 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wedge the write path before any load arrives.
	inj.Arm(syscall.ENOSPC, storage.FaultCreate, storage.FaultWrite, storage.FaultSync)

	// searchmut rides along: a 503-degraded upsert acks nothing, so the
	// probe must skip cleanly instead of reporting staleness.
	mix, err := parseMix("query=30,read=25,search=10,mutation=25,searchmut=10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := loadConfig{
		BaseURL:          ts.URL,
		Duration:         2 * time.Second,
		Concurrency:      4,
		Mix:              mix,
		Seed:             42,
		TolerateDegraded: true,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := rep.violations(); len(msgs) > 0 {
		t.Fatalf("tolerate-degraded violations: %v\nsummary:\n%s", msgs, rep.summary("test"))
	}
	if rep.Degraded503 == 0 {
		t.Fatalf("no mutation hit the degraded path: %s", rep.summary("test"))
	}
	if rep.Succeeded == 0 {
		t.Fatalf("reads failed to serve while degraded: %s", rep.summary("test"))
	}

	// The same traffic without the opt-in must be a contract violation.
	cfg.TolerateDegraded = false
	cfg.Duration = 500 * time.Millisecond
	rep, err = runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unexpected5 == 0 {
		t.Fatalf("storage_unavailable accepted without -tolerate-degraded: %s", rep.summary("test"))
	}
	if len(rep.violations()) == 0 {
		t.Fatal("expected strict-mode violations without -tolerate-degraded")
	}
}

// TestReplicaSoak drives the two-node read-your-writes loop fully in
// process: mutations land on a primary, every read shape — including
// the freshness probes, which carry the write ack's X-Corpus-Version
// as X-Min-Version — routes to a follower polling in the background.
// Strict mode must hold end to end: zero stale reads, with transient
// lag absorbed by the contract's single 503 replica_lagging + retry
// (counted in its own bucket, not as a violation).
func TestReplicaSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a real corpus")
	}
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := storage.SaveCorpus(db, env.Store); err != nil {
		t.Fatal(err)
	}
	env.Store.SetBackend(db)
	primary, err := server.New(server.Config{
		Store:    env.Store,
		Analyzer: env.Analyzer,
		Seed:     7,
		DB:       db,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pts := httptest.NewServer(primary.Handler())
	defer pts.Close()
	feedSrv := httptest.NewServer(replica.NewFeed(db, env.Store).Handler())
	defer feedSrv.Close()

	f, err := replica.OpenFollower(replica.FollowerConfig{
		Primary:  feedSrv.URL,
		Dir:      t.TempDir(),
		Catalog:  env.Catalog,
		Interval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	follower, err := server.New(server.Config{
		Store:      f.Corpus(),
		Analyzer:   env.Analyzer,
		Seed:       7,
		Follower:   f,
		PrimaryURL: pts.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	mix, err := parseMix("query=25,read=20,search=15,mutation=15,searchmut=25")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(loadConfig{
		BaseURL:     pts.URL,
		ReadBaseURL: fts.URL,
		Duration:    3 * time.Second,
		Concurrency: 4,
		Mix:         mix,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs := rep.violations(); len(msgs) > 0 {
		t.Fatalf("replica soak violations: %v\nsummary:\n%s", msgs, rep.summary("test"))
	}
	if rep.Succeeded < 20 {
		t.Fatalf("only %d requests succeeded: %s", rep.Succeeded, rep.summary("test"))
	}
	if rep.FreshnessViolations != 0 {
		t.Fatalf("stale reads on follower: %s", rep.summary("test"))
	}
	t.Logf("replica soak: %d ok, %d replica_lagging 503s absorbed", rep.Succeeded, rep.ReplicaLagging503)
}
