// Command experiments regenerates the paper's tables and figures from
// the synthetic corpus.
//
// Usage:
//
//	experiments [-run name[,name...]] [-scale f] [-null n] [-seed s]
//
// With no -run flag every experiment runs in paper order. Experiment
// names: table1, fig2, fig3a, fig3b, fig4, fig5, tuples, robustness,
// evolution, aliasing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"culinary/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment names (default: all)")
		scale = flag.Float64("scale", 1.0, "corpus scale factor (1.0 = full 45,772 recipes)")
		null  = flag.Int("null", 100000, "randomized recipes per null model (paper: 100,000)")
		seed  = flag.Uint64("seed", 20180416, "master seed")
		list  = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "building environment (scale=%.2f, null=%d, seed=%d)...\n",
		*scale, *null, *seed)
	env, err := experiments.NewEnv(experiments.Options{
		Scale: *scale, NullRecipes: *null, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v (%d recipes)\n",
		time.Since(t0).Round(time.Millisecond), env.Store.Len())

	runner := &experiments.Runner{Env: env, Out: os.Stdout}
	if *run == "" {
		if err := runner.RunAll(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	} else {
		for _, name := range strings.Split(*run, ",") {
			if err := runner.Run(strings.TrimSpace(name)); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(t0).Round(time.Millisecond))
}
