// Command pairing runs the food-pairing analysis for one region or all
// regions: observed flavor sharing, null-model moments, Z-scores, and
// optionally the top contributing ingredients.
//
// Usage:
//
//	pairing [-region CODE] [-model name] [-null n] [-top k] [-scale f]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"culinary/internal/experiments"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/report"
	"culinary/internal/rng"
)

func main() {
	var (
		regionCode = flag.String("region", "", "region code (e.g. ITA); empty = all 22")
		modelName  = flag.String("model", "Random", "null model: Random, Frequency, Category, Frequency+Category")
		null       = flag.Int("null", 100000, "randomized recipes per model")
		top        = flag.Int("top", 0, "also print the top-k contributing ingredients")
		scale      = flag.Float64("scale", 1.0, "corpus scale factor")
		seed       = flag.Uint64("seed", 20180416, "master seed")
		shards     = flag.Int("shards", 0, "null-model sampling shards (0 = sequential sampler; >0 fans draws across shards with split rng streams — deterministic per shard count but a different random stream than sequential)")
	)
	flag.Parse()

	model, err := parseModel(*modelName)
	if err != nil {
		fatal(err)
	}

	t0 := time.Now()
	env, err := experiments.NewEnv(experiments.Options{
		Scale: *scale, NullRecipes: *null, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v\n", time.Since(t0).Round(time.Millisecond))

	regions := recipedb.MajorRegions()
	if *regionCode != "" {
		r, err := recipedb.ParseRegion(*regionCode)
		if err != nil {
			fatal(err)
		}
		regions = []recipedb.Region{r}
	}

	t := report.NewTable(
		fmt.Sprintf("Food pairing vs %s model (%d random recipes)", model, *null),
		"Region", "N̄s", "NullMean", "NullStd", "Z")
	for _, r := range regions {
		c := env.Store.BuildCuisine(r)
		var res pairing.Result
		src := rng.New(*seed).Split(0x9000 + uint64(r))
		if *shards > 0 {
			res, err = pairing.CompareParallel(env.Analyzer, env.Store, c, model, *null, *shards, src)
		} else {
			res, err = pairing.Compare(env.Analyzer, env.Store, c, model, *null, src)
		}
		if err != nil {
			fatal(err)
		}
		t.AddRow(r.Code(), res.Observed, res.NullMean, res.NullStd,
			fmt.Sprintf("%+.1f", res.Z))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if *top > 0 {
		for _, r := range regions {
			c := env.Store.BuildCuisine(r)
			contribs := env.Analyzer.ContributionsParallel(env.Store, c, 0)
			sign := r.PairingSign()
			if sign == 0 {
				sign = 1
			}
			tc := report.NewTable(
				fmt.Sprintf("Top %d contributors for %s", *top, r.Code()),
				"Ingredient", "Freq", "ΔN̄s% on removal")
			for _, ct := range pairing.TopContributors(contribs, *top, sign) {
				tc.AddRow(ct.Name, ct.Freq, fmt.Sprintf("%+.2f", ct.DeltaPct))
			}
			fmt.Println()
			if err := tc.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
}

func parseModel(name string) (pairing.Model, error) {
	for _, m := range pairing.AllModels() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pairing:", err)
	os.Exit(1)
}
