// Command server exposes the culinary database over HTTP — the library's
// equivalent of the paper's public CulinaryDB/FlavorDB web front ends.
//
// Usage:
//
//	server [-addr :8080] [-scale f] [-seed s] [-null n] [-db DIR]
//	       [-db-shards n] [-db-sync] [-db-mmap] [-db-read-cache-bytes n]
//	       [-db-compact-interval d] [-db-compact-garbage-ratio f]
//	       [-query-result-cache-bytes n]
//	       [-classifier-rebuild-interval d] [-recommender-rebuild-interval d]
//	       [-max-body-bytes n] [-rate-limit-rps f] [-rate-limit-mutation-rps f]
//	       [-max-inflight n] [-request-timeout d] [-shutdown-grace d]
//	       [-trusted-proxies cidrs] [-replication-listen addr]
//	       [-replica-of url] [-primary-url url] [-replica-poll-interval d]
//
// Replication: with -replication-listen, a -db primary serves its
// storage log (sealed segments plus the active segment's durable
// prefix) on a dedicated listener. A second process started with
// -replica-of pointing at that listener runs as a read replica: it
// mirrors the log into its own -db directory, replays it into memory,
// serves every read endpoint, and answers mutations with 403
// not_primary (Location: -primary-url). Reads carrying X-Min-Version
// (or ?minVersion=) are version-gated: a replica that has not caught
// up to the requested corpus version answers 503 replica_lagging with
// Retry-After instead of a stale result, so clients can read their
// own writes from any replica by echoing the version token a mutation
// ack returned. -trusted-proxies lists load-balancer CIDRs whose
// X-Forwarded-For chains the rate limiter may believe for client
// keying; without it (the default) every request keys on RemoteAddr
// and forged headers are ignored.
//
// The HTTP front is armored for production traffic: per-IP token-bucket
// rate limiting with separate read/mutation budgets (X-RateLimit-*
// headers, 429 + Retry-After on rejection), request bodies capped at
// -max-body-bytes (structured 413), per-request deadlines
// (-request-timeout) propagated into query execution so slow scans
// abort, and an in-flight concurrency gate (-max-inflight) that sheds
// overload with 503 + Retry-After instead of queueing unboundedly —
// with a grace multiplier while the result cache is cold. Every
// 4xx/5xx body is the structured envelope {"error":{"code","message"}}.
// The listener runs behind read-header/idle timeouts (no slowloris),
// and SIGTERM/SIGINT drain in-flight requests for up to -shutdown-grace
// before the process exits. /api/health (exempt from limits) reports
// the stack's counters under "traffic".
//
// With -db, the corpus is loaded from (or, when absent, generated and
// saved into) a storage snapshot directory, so restarts skip corpus
// generation; the engine stays open behind /api/health's storage
// statistics, and recipe mutations (POST/DELETE /api/recipes) write
// through to it, so they survive restarts. -db-shards partitions the
// store's key directory (power of two); -db-sync turns on the
// per-write durability contract, served by the engine's group-commit
// writer. -db-mmap (on by default) maps sealed segments read-only so
// point reads skip the pread syscall, and -db-read-cache-bytes sizes a
// hot-key value cache in front of the log (0 disables it); /api/health
// reports both. -db-compact-interval runs the background incremental
// compactor at that period (0 disables it), rewriting segments whose
// garbage fraction reached -db-compact-garbage-ratio without blocking
// reads or writes. -query-result-cache-bytes bounds the CQL engine's
// result cache, keyed by (normalized statement, corpus version) so a
// mutation fences every older cached result (0 disables it).
//
// Every derived read model is version-aware. The full-text search
// index is maintained synchronously inside the mutation path, so an
// acked POST/DELETE is visible to the next /api/search. The cuisine
// classifier and the recommender rebuild in the background, debounced
// to at most one rebuild per -classifier-rebuild-interval /
// -recommender-rebuild-interval; their responses carry "modelVersion"
// (the corpus version the model was trained at) and /api/health
// reports per-model version, lag and rebuild counters under "derived".
//
// Endpoints (all JSON):
//
//	GET  /api/health
//	GET  /api/regions
//	GET  /api/regions/{code}
//	GET  /api/regions/{code}/pairing?null=N&model=frequency
//	GET  /api/recipes?region=ITA&limit=20&offset=0
//	GET  /api/recipes/{id}
//	POST /api/recipes    {"name": ..., "region": "ITA", "source": ..., "ingredients": [...], "id"?: N}
//	DELETE /api/recipes/{id}
//	GET  /api/ingredients/{name}
//	GET  /api/ingredients/{name}/pairings?limit=10
//	GET  /api/search?q=tomato+garlic&mode=all&fuzzy=1&region=ITA
//	POST /api/query      {"q": "SELECT region, count(*) FROM recipes GROUP BY region"}
//	POST /api/classify   {"ingredients": ["soy sauce", "tofu"]}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"culinary/internal/flavor"
	"culinary/internal/httpmw"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/recipedb"
	"culinary/internal/replica"
	"culinary/internal/server"
	"culinary/internal/storage"
	"culinary/internal/synth"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		scale     = flag.Float64("scale", 0.25, "corpus scale factor (1.0 = full 45,772 recipes)")
		seed      = flag.Uint64("seed", 20180416, "master seed")
		null      = flag.Int("null", 2000, "default null-model sample size for the pairing endpoint")
		dbDir     = flag.String("db", "", "storage snapshot directory (load if present, else generate and save)")
		dbShards  = flag.Int("db-shards", 64, "keydir shard count for the storage engine (rounded up to a power of two)")
		dbSync    = flag.Bool("db-sync", false, "fsync every write (group-committed; durable but slower)")
		dbMmap    = flag.Bool("db-mmap", true, "mmap sealed segments for zero-syscall point reads")
		dbCache   = flag.Int64("db-read-cache-bytes", 32<<20, "hot-key value cache byte budget (0 disables)")
		dbCompact = flag.Duration("db-compact-interval", time.Minute, "background incremental compaction period (0 disables)")
		dbGarbage = flag.Float64("db-compact-garbage-ratio", 0.5, "dead-byte fraction at which a sealed segment is compacted")
		dbScrub   = flag.Duration("db-scrub-interval", 30*time.Second, "background segment scrub pacing, one sealed segment per tick (0 disables)")
		dbProbe   = flag.Duration("db-write-probe-interval", 5*time.Second, "write-path recovery probe period while degraded (0 disables auto-recovery)")
		resCache  = flag.Int64("query-result-cache-bytes", query.DefaultResultCacheBytes, "CQL result cache byte budget, keyed by (statement, corpus version) (0 disables)")

		clsRebuild = flag.Duration("classifier-rebuild-interval", 2*time.Second, "max classifier staleness under mutation: at most one background retrain per interval")
		recRebuild = flag.Duration("recommender-rebuild-interval", 2*time.Second, "max recommender staleness under mutation: at most one background rebuild per interval")

		maxBatch = flag.Int("max-batch-items", server.DefaultMaxBatchItems, "recipe count cap for one POST /api/recipes/batch request (negative disables)")

		replListen  = flag.String("replication-listen", "", "dedicated listener address for the replication feed (primary mode; requires -db)")
		replicaOf   = flag.String("replica-of", "", "primary replication feed base URL; run as a read replica with -db as the local mirror directory")
		primaryURL  = flag.String("primary-url", "", "primary's public API base URL, advertised in not_primary redirects (replica mode)")
		replicaPoll = flag.Duration("replica-poll-interval", 250*time.Millisecond, "replication poll period in replica mode")

		trustedCIDR = flag.String("trusted-proxies", "", "comma-separated proxy CIDRs whose X-Forwarded-For chains key the rate limiter (empty: key on RemoteAddr)")

		maxBody    = flag.Int64("max-body-bytes", 1<<20, "request body size cap; oversized bodies get a structured 413 (0 disables)")
		readRPS    = flag.Float64("rate-limit-rps", 500, "per-IP rate limit for read traffic, requests/second (burst 2x; 0 disables)")
		mutRPS     = flag.Float64("rate-limit-mutation-rps", 100, "per-IP rate limit for corpus mutations, requests/second (burst 2x; 0 disables)")
		maxInf     = flag.Int("max-inflight", 256, "in-flight request bound; excess load is shed with 503 + Retry-After (0 disables)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline, propagated into query execution (0 disables)")
		grace      = flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests on SIGTERM/SIGINT")
	)
	flag.Parse()
	dbOpts := storage.Options{
		Shards:              *dbShards,
		SyncEveryPut:        *dbSync,
		Mmap:                *dbMmap,
		ReadCacheBytes:      *dbCache,
		CompactInterval:     *dbCompact,
		CompactGarbageRatio: *dbGarbage,
		ScrubInterval:       *dbScrub,
		WriteProbeInterval:  *dbProbe,
	}

	logger := log.New(os.Stderr, "server: ", log.LstdFlags)

	t0 := time.Now()
	fcfg := flavor.DefaultConfig()
	fcfg.Seed = *seed
	catalog, err := flavor.Build(fcfg)
	if err != nil {
		fatal(err)
	}
	analyzer := pairing.NewAnalyzer(catalog)

	trustedProxies, err := httpmw.ParseTrustedProxies(*trustedCIDR)
	if err != nil {
		fatal(err)
	}

	var (
		store    *recipedb.Store
		db       *storage.Store
		follower *replica.Follower
		feed     *replica.Feed
	)
	if *replicaOf != "" {
		// Read-replica mode: the corpus comes from the primary's
		// replication feed, mirrored into -db and replayed in memory.
		if *dbDir == "" {
			fatal(errors.New("-replica-of requires -db (the local mirror directory)"))
		}
		follower, err = replica.OpenFollower(replica.FollowerConfig{
			Primary:  *replicaOf,
			Dir:      *dbDir,
			Catalog:  catalog,
			Interval: *replicaPoll,
			Logger:   logger,
		})
		if err != nil {
			fatal(err)
		}
		defer follower.Close()
		follower.Start()
		store = follower.Corpus()
	} else {
		store, db, err = loadOrGenerate(logger, catalog, analyzer, *dbDir, dbOpts, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		if db != nil {
			defer db.Close()
			// Recipe mutations write through to the open engine, so they
			// survive restarts. Writes serialize behind the corpus lock;
			// batching them is a ROADMAP follow-up.
			store.SetBackend(db)
		}
	}
	logger.Printf("corpus ready: %d recipes in %v", store.Len(), time.Since(t0).Round(time.Millisecond))

	// The replication feed gets its own listener so shipping traffic
	// never competes with client requests for the API listener's
	// connection budget or the traffic stack's rate limits.
	var feedSrv *http.Server
	if *replListen != "" {
		if db == nil {
			fatal(errors.New("-replication-listen requires -db (the feed ships the storage log)"))
		}
		feed = replica.NewFeed(db, store)
		feedSrv = &http.Server{
			Addr:              *replListen,
			Handler:           feed.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		// Bind before serving: a primary that cannot offer its feed
		// (port taken, bad address) must fail loudly at startup, not
		// run on while followers can never bootstrap.
		feedLn, err := net.Listen("tcp", *replListen)
		if err != nil {
			fatal(fmt.Errorf("replication listener: %w", err))
		}
		go func() {
			if err := feedSrv.Serve(feedLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("replication listener: %v", err)
			}
		}()
		logger.Printf("replication feed on %s", *replListen)
	}

	srv, err := server.New(server.Config{
		Store:                      store,
		Analyzer:                   analyzer,
		NullRecipes:                *null,
		Seed:                       *seed,
		Logger:                     logger,
		DB:                         db,
		ResultCacheBytes:           *resCache,
		ClassifierRebuildInterval:  *clsRebuild,
		RecommenderRebuildInterval: *recRebuild,
		MaxBatchItems:              *maxBatch,
		Follower:                   follower,
		PrimaryURL:                 *primaryURL,
		Feed:                       feed,
		Traffic: &httpmw.Config{
			ReadRPS:        *readRPS,
			ReadBurst:      *readRPS * 2,
			MutationRPS:    *mutRPS,
			MutationBurst:  *mutRPS * 2,
			TrustedProxies: trustedProxies,
			MaxInFlight:    *maxInf,
			RetryAfter:     time.Second,
			MaxBodyBytes:   *maxBody,
			RequestTimeout: *reqTimeout,
		},
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	// A configured http.Server instead of bare ListenAndServe: the
	// read-header and idle timeouts close slowloris connections, and
	// Shutdown drains in-flight requests on SIGTERM so a deploy never
	// drops a response mid-flight. WriteTimeout stays generous — the
	// pairing endpoint legitimately runs for seconds; the per-request
	// deadline middleware bounds handler time far tighter.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		logger.Printf("shutdown signal received; draining for up to %v", *grace)
		drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if feedSrv != nil {
			if err := feedSrv.Shutdown(drainCtx); err != nil {
				logger.Printf("replication listener drain incomplete: %v", err)
			}
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		logger.Printf("drained cleanly")
	}
}

// loadOrGenerate restores the corpus from a snapshot directory when one
// exists there, generating (and saving, if dbDir is set) otherwise. The
// returned storage engine (nil without -db) stays open so the
// background compactor keeps running and /api/health can report it.
func loadOrGenerate(logger *log.Logger, catalog *flavor.Catalog, analyzer *pairing.Analyzer,
	dbDir string, dbOpts storage.Options, scale float64, seed uint64) (*recipedb.Store, *storage.Store, error) {
	if dbDir != "" {
		db, err := storage.Open(dbDir, dbOpts)
		if err != nil {
			return nil, nil, err
		}
		store, err := storage.LoadCorpus(db, catalog)
		if err == nil {
			logger.Printf("loaded snapshot from %s", dbDir)
			return store, db, nil
		}
		if !errors.Is(err, storage.ErrNotFound) && !errors.Is(err, storage.ErrSnapshot) {
			db.Close()
			return nil, nil, err
		}
		logger.Printf("no usable snapshot in %s (%v); generating", dbDir, err)
		store, gerr := generate(analyzer, scale, seed)
		if gerr != nil {
			db.Close()
			return nil, nil, gerr
		}
		if serr := storage.SaveCorpus(db, store); serr != nil {
			db.Close()
			return nil, nil, fmt.Errorf("saving snapshot: %w", serr)
		}
		logger.Printf("saved snapshot to %s", dbDir)
		return store, db, nil
	}
	store, err := generate(analyzer, scale, seed)
	return store, nil, err
}

func generate(analyzer *pairing.Analyzer, scale float64, seed uint64) (*recipedb.Store, error) {
	scfg := synth.DefaultConfig()
	scfg.Seed = seed
	scfg.Scale = scale
	return synth.Generate(analyzer, scfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "server:", err)
	os.Exit(1)
}
