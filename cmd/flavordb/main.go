// Command flavordb inspects the synthetic FlavorDB substrate: list
// ingredients by category, show an ingredient's flavor profile and
// taste descriptors, query pairwise shared compounds, and dump the
// molecule universe.
//
// Usage:
//
//	flavordb -list [-category NAME]
//	flavordb -show INGREDIENT
//	flavordb -pair "A,B"
//	flavordb -molecules [-limit n]
//	flavordb -network [-minshared n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"culinary/internal/flavor"
	"culinary/internal/flavornet"
	"culinary/internal/pairing"
	"culinary/internal/report"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list ingredients")
		category  = flag.String("category", "", "restrict -list to one category")
		show      = flag.String("show", "", "show one ingredient's profile")
		pair      = flag.String("pair", "", "comma-separated ingredient pair to compare")
		molecules = flag.Bool("molecules", false, "dump the molecule universe")
		network   = flag.Bool("network", false, "print flavor-network summary and top pairs")
		minShared = flag.Int("minshared", 5, "edge threshold for -network")
		limit     = flag.Int("limit", 25, "row limit for -molecules")
		seed      = flag.Uint64("seed", 20180416, "catalog seed")
	)
	flag.Parse()

	fcfg := flavor.DefaultConfig()
	fcfg.Seed = *seed
	catalog, err := flavor.Build(fcfg)
	if err != nil {
		fatal(err)
	}

	switch {
	case *list:
		runList(catalog, *category)
	case *show != "":
		runShow(catalog, *show)
	case *pair != "":
		runPair(catalog, *pair)
	case *molecules:
		runMolecules(catalog, *limit)
	case *network:
		runNetwork(catalog, *minShared)
	default:
		fmt.Fprintln(os.Stderr, "flavordb: choose one of -list, -show, -pair, -molecules, -network")
		os.Exit(2)
	}
}

func runList(catalog *flavor.Catalog, categoryName string) {
	var cats []flavor.Category
	if categoryName == "" {
		cats = flavor.AllCategories()
	} else {
		c, err := flavor.ParseCategory(categoryName)
		if err != nil {
			fatal(err)
		}
		cats = []flavor.Category{c}
	}
	t := report.NewTable("Ingredient catalog", "Ingredient", "Category", "Compound", "ProfileSize")
	for _, cat := range cats {
		for _, id := range catalog.ByCategory(cat) {
			ing := catalog.Ingredient(id)
			t.AddRow(ing.Name, cat.String(), fmt.Sprintf("%v", ing.Compound),
				catalog.Profile(id).Count())
		}
	}
	render(t)
}

func runShow(catalog *flavor.Catalog, name string) {
	id, ok := catalog.Lookup(name)
	if !ok {
		fatal(fmt.Errorf("unknown ingredient %q", name))
	}
	ing := catalog.Ingredient(id)
	fmt.Printf("%s  (category %s", ing.Name, ing.Category)
	if ing.Compound {
		parts := make([]string, len(ing.Constituents))
		for i, pid := range ing.Constituents {
			parts[i] = catalog.Ingredient(pid).Name
		}
		fmt.Printf("; compound of %s", strings.Join(parts, ", "))
	}
	fmt.Printf(")\n")
	profile := catalog.Profile(id)
	fmt.Printf("flavor profile: %d molecules\n", profile.Count())
	taste := catalog.TasteProfile([]flavor.ID{id})
	if len(taste) > 8 {
		taste = taste[:8]
	}
	fmt.Println("dominant descriptors:")
	for _, d := range taste {
		fmt.Printf("  %-14s %.1f%%\n", d.Descriptor, 100*d.Weight)
	}
}

func runPair(catalog *flavor.Catalog, spec string) {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		fatal(fmt.Errorf("-pair wants \"A,B\", got %q", spec))
	}
	a, ok := catalog.Lookup(strings.TrimSpace(parts[0]))
	if !ok {
		fatal(fmt.Errorf("unknown ingredient %q", parts[0]))
	}
	b, ok := catalog.Lookup(strings.TrimSpace(parts[1]))
	if !ok {
		fatal(fmt.Errorf("unknown ingredient %q", parts[1]))
	}
	pa, pb := catalog.Profile(a), catalog.Profile(b)
	shared := catalog.SharedCompounds(a, b)
	fmt.Printf("%s (%d molecules) + %s (%d molecules)\n",
		catalog.Ingredient(a).Name, pa.Count(),
		catalog.Ingredient(b).Name, pb.Count())
	fmt.Printf("shared compounds: %d   Jaccard: %.3f\n", shared, pa.Jaccard(pb))
}

func runMolecules(catalog *flavor.Catalog, limit int) {
	t := report.NewTable("Molecule universe", "ID", "Name", "Theme", "Descriptors")
	n := catalog.NumMolecules()
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		m := catalog.Molecule(i)
		t.AddRow(m.ID, m.Name, m.Theme, strings.Join(m.Descriptors, ", "))
	}
	render(t)
	fmt.Printf("(%d of %d molecules)\n", n, catalog.NumMolecules())
}

func runNetwork(catalog *flavor.Catalog, minShared int) {
	analyzer := pairing.NewAnalyzer(catalog)
	net := flavornet.Build(analyzer, minShared)
	fmt.Printf("flavor network: %d nodes, %d edges (≥%d shared), density %.4f, clustering %.3f\n",
		net.NumNodes(), net.NumEdges(), minShared, net.Density(), net.MeanClustering())
	fmt.Printf("disparity backbone (α=0.05): %d edges\n\n", len(net.Backbone(0.05)))
	t := report.NewTable("Strongest flavor-sharing pairs", "Pair", "Shared")
	for _, e := range net.TopPairs(15) {
		t.AddRow(catalog.Ingredient(e.A).Name+" + "+catalog.Ingredient(e.B).Name, e.Weight)
	}
	render(t)
}

func render(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flavordb:", err)
	os.Exit(1)
}
