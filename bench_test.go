// Benchmark harness: one benchmark per table and figure of the paper,
// plus the ablation benches DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks operate on a shared small-scale environment (5% corpus) so
// per-iteration costs measure algorithmic work, not setup. The full
// paper-scale regeneration path is exercised by cmd/experiments.
package culinary

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"culinary/internal/alias"
	"culinary/internal/bitset"
	"culinary/internal/experiments"
	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/stats"
	"culinary/internal/storage"
	"culinary/internal/synth"
)

var benchEnv = func() *experiments.Env {
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		panic(err)
	}
	return env
}()

// BenchmarkTable1 measures regenerating the Table 1 statistics (per
// region cuisine construction and counting).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchEnv.Table1()
		if len(rows) != recipedb.NumMajorRegions+1 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig2 measures the category-usage heatmap computation.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchEnv.Fig2()
		if len(h.Values) == 0 {
			b.Fatal("empty heatmap")
		}
	}
}

// BenchmarkFig3a measures the recipe-size distribution sweep.
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchEnv.Fig3a()
		if len(res) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig3b measures the rank-frequency popularity sweep.
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchEnv.Fig3b()
		if len(res) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig4 measures the food-pairing null-model machinery: each
// iteration draws and scores one randomized recipe for the Italian
// cuisine under each of the paper's four models.
func BenchmarkFig4(b *testing.B) {
	c := benchEnv.Store.BuildCuisine(recipedb.Italy)
	for _, m := range pairing.AllModels() {
		b.Run(m.String(), func(b *testing.B) {
			sampler, err := pairing.NewNullSampler(benchEnv.Analyzer, benchEnv.Store, c, m, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := benchEnv.Analyzer.RecipeScore(sampler.Draw()); !ok {
					b.Fatal("unscorable draw")
				}
			}
		})
	}
	// End-to-end cell: one full Compare (2,000 nulls) per iteration.
	b.Run("CompareEndToEnd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pairing.Compare(benchEnv.Analyzer, benchEnv.Store, c,
				pairing.RandomModel, 2000, rng.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5 measures the leave-one-out ingredient-contribution sweep
// for one cuisine (every ingredient, cached pair sums).
func BenchmarkFig5(b *testing.B) {
	c := benchEnv.Store.BuildCuisine(recipedb.Italy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if contribs := benchEnv.Analyzer.Contributions(benchEnv.Store, c); len(contribs) == 0 {
			b.Fatal("no contributions")
		}
	}
}

// BenchmarkExtTuples measures higher-order tuple scoring (k=3) on a
// typical nine-ingredient recipe.
func BenchmarkExtTuples(b *testing.B) {
	var recipe []flavor.ID
	benchEnv.Store.ForEachInRegion(recipedb.Italy, func(r *recipedb.Recipe) {
		if recipe == nil && r.Size() == 9 {
			recipe = r.Ingredients
		}
	})
	if recipe == nil {
		b.Skip("no size-9 recipe")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := benchEnv.Analyzer.TupleScore(recipe, 3); !ok {
			b.Fatal("unscorable")
		}
	}
}

// BenchmarkExtRobustness measures one bootstrap replicate of a cuisine's
// mean pairing score.
func BenchmarkExtRobustness(b *testing.B) {
	c := benchEnv.Store.BuildCuisine(recipedb.Italy)
	scores := make([]float64, 0, len(c.RecipeIDs))
	for _, rid := range c.RecipeIDs {
		if v, ok := benchEnv.Analyzer.RecipeScore(benchEnv.Store.Recipe(rid).Ingredients); ok {
			scores = append(scores, v)
		}
	}
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Bootstrap(scores, 10, 0.95, src, stats.MeanStat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtEvolution measures generating one 100-recipe cuisine with
// the copy-mutate evolution model.
func BenchmarkExtEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := synth.GenerateSingleRegion(benchEnv.Analyzer, recipedb.Greece,
			synth.SingleRegionConfig{Seed: uint64(i + 1), Recipes: 100, Beta: 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtAliasing measures resolving one noisy phrase through the
// full §IV.A pipeline.
func BenchmarkExtAliasing(b *testing.B) {
	al := alias.New(benchEnv.Catalog)
	ps := synth.NewPhraseSynthesizer(benchEnv.Catalog, synth.DefaultPhraseConfig())
	batch := ps.RenderBatch(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Resolve(batch[i%len(batch)].Phrase)
	}
}

// BenchmarkCorpusGeneration measures full per-recipe generation cost of
// the calibrated synthetic corpus at 5% scale.
func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := synth.TestConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := synth.Generate(benchEnv.Analyzer, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(store.Len()), "recipes")
	}
}

// BenchmarkStorageQPS tracks the sharded storage engine's serving
// throughput through the public API at 8 goroutines: concurrent point
// reads, concurrent group-committed durable writes, and reads running
// against a live durable writer. These numbers feed BENCH_storage.json
// in CI, so the perf trajectory is visible across PRs.
func BenchmarkStorageQPS(b *testing.B) {
	const keyspace = 4096
	val := bytes.Repeat([]byte("v"), 128)
	key := func(i int) string { return fmt.Sprintf("key%09d", i%keyspace) }
	open := func(b *testing.B, durable bool) *storage.Store {
		b.Helper()
		db, err := storage.Open(b.TempDir(), storage.Options{SyncEveryPut: durable})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		for i := 0; i < keyspace; i++ {
			if err := db.Put(key(i), val); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}

	b.Run("Reads", func(b *testing.B) {
		db := open(b, false)
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := db.Get(key(i * 31)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("DurableWrites", func(b *testing.B) {
		db := open(b, true)
		var seq atomic.Int64
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := db.Put(fmt.Sprintf("w%012d", seq.Add(1)), val); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("ReadsUnderWriteLoad", func(b *testing.B) {
		db := open(b, true)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.Put(fmt.Sprintf("hot%06d", i%64), val); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := db.Get(key(i * 31)); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		close(stop)
		<-done
	})
}

// BenchmarkPlanCache measures the query engine's plan cache on a hot
// dashboard statement: Run (cached Parse+bind) against re-planning the
// same statement on every call.
func BenchmarkPlanCache(b *testing.B) {
	const stmt = "SELECT name FROM recipes WHERE region = 'ITA' AND size >= 3 LIMIT 1"
	b.Run("CachedRun", func(b *testing.B) {
		engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
		if _, err := engine.Run(stmt); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(stmt); err != nil {
				b.Fatal(err)
			}
		}
		cs := engine.CacheStats()
		b.ReportMetric(float64(cs.Hits)/float64(cs.Hits+cs.Misses), "hit-rate")
	})
	b.Run("ReplanEachCall", func(b *testing.B) {
		engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, err := query.Parse(stmt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResultCacheHotQuery measures the two-tier query cache on
// the dashboard aggregate statement across its three service tiers —
// cold (parse+bind+scan), plan-hit (cached plan, full scan), and
// result-hit (cached materialized result, no scan) — plus a mixed
// workload where 10% of operations are corpus mutations, each of which
// version-fences the cached result and forces a recompute.
func BenchmarkResultCacheHotQuery(b *testing.B) {
	const stmt = "SELECT region, count(*), avg(size) FROM recipes GROUP BY region"
	// The write mix re-upserts recipe 0 with its own contents: a
	// semantic no-op (benchEnv is shared), but a version bump all the
	// same.
	rec0 := benchEnv.Store.Recipe(0)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
			if _, err := engine.Run(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planHit", func(b *testing.B) {
		engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
		if _, err := engine.Run(stmt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resultHit", func(b *testing.B) {
		engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
		engine.EnableResultCache(query.DefaultResultCacheBytes)
		if _, err := engine.Run(stmt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(stmt); err != nil {
				b.Fatal(err)
			}
		}
		rs := engine.ResultCacheStats()
		b.ReportMetric(float64(rs.Hits)/float64(rs.Hits+rs.Misses), "hit-ratio")
	})
	b.Run("writeMix10pct", func(b *testing.B) {
		engine := query.NewEngine(benchEnv.Store, benchEnv.Analyzer)
		engine.EnableResultCache(query.DefaultResultCacheBytes)
		if _, err := engine.Run(stmt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%10 == 9 {
				if _, _, _, err := benchEnv.Store.Upsert(0, rec0.Name, rec0.Region, rec0.Source, rec0.Ingredients); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if _, err := engine.Run(stmt); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		rs := engine.ResultCacheStats()
		if probes := rs.Hits + rs.Misses; probes > 0 {
			b.ReportMetric(float64(rs.Hits)/float64(probes), "hit-ratio")
		}
		b.ReportMetric(float64(rs.Invalidated), "invalidations")
	})
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationIntersection compares bitset popcount intersection
// against a map-set implementation for flavor-profile overlap — the
// justification for the bitset substrate.
func BenchmarkAblationIntersection(b *testing.B) {
	catalog := benchEnv.Catalog
	a1, _ := catalog.Lookup("tomato")
	a2, _ := catalog.Lookup("chicken stock") // large pooled profile
	p1, p2 := catalog.Profile(a1), catalog.Profile(a2)

	b.Run("Bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if p1.IntersectionCount(p2) < 0 {
				b.Fatal("impossible")
			}
		}
	})
	b.Run("MapSet", func(b *testing.B) {
		m1 := make(map[int]struct{})
		for _, v := range p1.Members() {
			m1[v] = struct{}{}
		}
		m2 := p2.Members()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, v := range m2 {
				if _, ok := m1[v]; ok {
					n++
				}
			}
			if n < 0 {
				b.Fatal("impossible")
			}
		}
	})
}

// BenchmarkAblationPairCache compares recipe scoring through the
// precomputed pair-sharing matrix against recomputing profile
// intersections on the fly — the justification for the Analyzer cache.
func BenchmarkAblationPairCache(b *testing.B) {
	var recipe []flavor.ID
	benchEnv.Store.ForEachInRegion(recipedb.Italy, func(r *recipedb.Recipe) {
		if recipe == nil && r.Size() >= 9 {
			recipe = r.Ingredients
		}
	})
	if recipe == nil {
		b.Skip("no large recipe")
	}
	catalog := benchEnv.Catalog

	b.Run("CachedMatrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := benchEnv.Analyzer.RecipeScore(recipe); !ok {
				b.Fatal("unscorable")
			}
		}
	})
	b.Run("OnTheFly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum, pairs float64
			for x := 0; x < len(recipe); x++ {
				px := catalog.Profile(recipe[x])
				for y := x + 1; y < len(recipe); y++ {
					sum += float64(px.IntersectionCount(catalog.Profile(recipe[y])))
					pairs++
				}
			}
			if pairs == 0 {
				b.Fatal("no pairs")
			}
		}
	})
}

// BenchmarkAblationWeightedSampling compares the Vose alias sampler used
// by the Frequency model against linear cumulative-scan sampling.
func BenchmarkAblationWeightedSampling(b *testing.B) {
	c := benchEnv.Store.BuildCuisine(recipedb.USA)
	weights := make([]float64, len(c.UniqueIngredients))
	var total float64
	for i, id := range c.UniqueIngredients {
		weights[i] = float64(c.IngredientFreq[id])
		total += weights[i]
	}
	b.Run("VoseAlias", func(b *testing.B) {
		w, err := rng.NewWeighted(weights)
		if err != nil {
			b.Fatal(err)
		}
		src := rng.New(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w.Sample(src) < 0 {
				b.Fatal("impossible")
			}
		}
	})
	b.Run("LinearScan", func(b *testing.B) {
		src := rng.New(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := src.Float64() * total
			idx := 0
			for j, w := range weights {
				r -= w
				if r <= 0 {
					idx = j
					break
				}
			}
			if idx < 0 {
				b.Fatal("impossible")
			}
		}
	})
}

// BenchmarkAnalyzerConstruction measures building the full pair-sharing
// triangle (676×676 profile intersections, packed upper-triangular)
// with the default GOMAXPROCS worker pool.
func BenchmarkAnalyzerConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a := pairing.NewAnalyzer(benchEnv.Catalog); a == nil {
			b.Fatal("nil analyzer")
		}
	}
}

// BenchmarkAnalyzerConstructionWorkers sweeps the construction worker
// pool, pinning the parallel-speedup curve (workers=1 is the serial
// baseline; the top sub-bench matches BenchmarkAnalyzerConstruction).
func BenchmarkAnalyzerConstructionWorkers(b *testing.B) {
	sweep := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 && p != 8 {
		sweep = append(sweep, p)
	}
	for _, workers := range sweep {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if a := pairing.NewAnalyzerParallel(benchEnv.Catalog, workers); a == nil {
					b.Fatal("nil analyzer")
				}
			}
		})
	}
}

// BenchmarkTopPartners measures the bounded-heap partial selection for
// small k against the full candidate row (the k ≪ n interactive path).
func BenchmarkTopPartners(b *testing.B) {
	id, ok := benchEnv.Catalog.Lookup("tomato")
	if !ok {
		b.Fatal("no tomato")
	}
	for _, k := range []int{5, 25, 200} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if p := benchEnv.Analyzer.TopPartners(id, k); len(p) != k {
					b.Fatal("short result")
				}
			}
		})
	}
}

// BenchmarkBitsetIntersectionSizes profiles intersection cost across
// profile sizes, documenting the word-count scaling of the bitset.
func BenchmarkBitsetIntersectionSizes(b *testing.B) {
	for _, universe := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("universe%d", universe), func(b *testing.B) {
			src := rng.New(uint64(universe))
			s1, s2 := bitset.New(universe), bitset.New(universe)
			for i := 0; i < universe/8; i++ {
				s1.Add(src.Intn(universe))
				s2.Add(src.Intn(universe))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s1.IntersectionCount(s2) < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}

// BenchmarkBitsetKernelBatch compares the row-vs-rows batched kernel
// against per-pair IntersectionCount calls across universe and batch
// sizes — the kernel-shape ablation behind the analyzer's parallel
// construction. Reported per batch, so Batched vs Pairwise lines are
// directly comparable.
func BenchmarkBitsetKernelBatch(b *testing.B) {
	for _, universe := range []int{256, 1104, 4096} {
		for _, batch := range []int{16, 256} {
			src := rng.New(uint64(universe * batch))
			row := bitset.New(universe)
			for i := 0; i < universe/8; i++ {
				row.Add(src.Intn(universe))
			}
			targets := make([]*bitset.Set, batch)
			for t := range targets {
				targets[t] = bitset.New(universe)
				for i := 0; i < universe/8; i++ {
					targets[t].Add(src.Intn(universe))
				}
			}
			out := make([]int32, batch)
			b.Run(fmt.Sprintf("universe%d/batch%d/Batched", universe, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row.IntersectionCountMany(targets, out)
				}
			})
			b.Run(fmt.Sprintf("universe%d/batch%d/Pairwise", universe, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for t := range targets {
						out[t] = int32(row.IntersectionCount(targets[t]))
					}
				}
			})
		}
	}
}
