package search

import (
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// buildFixture indexes a small hand-built corpus.
func buildFixture(t *testing.T) (*Index, *recipedb.Store) {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := recipedb.NewStore(catalog)
	ids := func(names ...string) []flavor.ID {
		out := make([]flavor.ID, len(names))
		for i, n := range names {
			id, ok := catalog.Lookup(n)
			if !ok {
				t.Fatalf("catalog lacks %q", n)
			}
			out[i] = id
		}
		return out
	}
	add := func(name string, region recipedb.Region, ings ...string) int {
		id, err := store.Add(name, region, recipedb.Epicurious, ids(ings...))
		if err != nil {
			t.Fatalf("Add(%q): %v", name, err)
		}
		return id
	}
	add("Classic Tomato Soup", recipedb.USA, "tomato", "onion", "butter", "salt")
	add("Tomato Basil Pasta", recipedb.Italy, "tomato", "basil", "garlic", "olive oil")
	add("Miso Glazed Salmon", recipedb.Japan, "salmon", "scallion", "ginger", "soy sauce")
	add("Garlic Butter Shrimp", recipedb.USA, "shrimp", "garlic", "butter", "parsley")
	return Build(store), store
}

func TestBuildStats(t *testing.T) {
	idx, store := buildFixture(t)
	if idx.DocCount() != store.Len() {
		t.Errorf("DocCount = %d, want %d", idx.DocCount(), store.Len())
	}
	if idx.Vocabulary() == 0 {
		t.Fatal("empty vocabulary")
	}
}

func TestSearchRankingPrefersTermDensity(t *testing.T) {
	idx, store := buildFixture(t)
	hits := idx.Search("tomato", Options{})
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	for _, h := range hits {
		name := store.Recipe(h.RecipeID).Name
		if name != "Classic Tomato Soup" && name != "Tomato Basil Pasta" {
			t.Errorf("unexpected hit %q", name)
		}
		if h.Score <= 0 {
			t.Errorf("non-positive score %g", h.Score)
		}
	}
	// "Classic Tomato Soup" mentions tomato twice (name + ingredient) in
	// 6 tokens vs twice in 7 for the pasta, so the soup ranks first.
	if store.Recipe(hits[0].RecipeID).Name != "Classic Tomato Soup" {
		t.Errorf("top hit = %q", store.Recipe(hits[0].RecipeID).Name)
	}
}

func TestSearchModeAll(t *testing.T) {
	idx, store := buildFixture(t)
	any := idx.Search("garlic butter", Options{Mode: ModeAny})
	all := idx.Search("garlic butter", Options{Mode: ModeAll})
	if len(all) != 1 {
		t.Fatalf("ModeAll hits = %d, want 1", len(all))
	}
	if store.Recipe(all[0].RecipeID).Name != "Garlic Butter Shrimp" {
		t.Errorf("ModeAll hit = %q", store.Recipe(all[0].RecipeID).Name)
	}
	if len(any) <= len(all) {
		t.Errorf("ModeAny (%d) should match at least as many as ModeAll (%d)", len(any), len(all))
	}
}

func TestSearchRegionFilter(t *testing.T) {
	idx, store := buildFixture(t)
	hits := idx.Search("tomato", Options{Region: recipedb.Italy, HasRegion: true})
	if len(hits) != 1 || store.Recipe(hits[0].RecipeID).Region != recipedb.Italy {
		t.Fatalf("region-filtered hits = %+v", hits)
	}
}

func TestSearchPluralAndCaseNormalization(t *testing.T) {
	idx, _ := buildFixture(t)
	// Plural, capitalized query must match the singular lowercase index.
	hits := idx.Search("TOMATOES", Options{})
	if len(hits) != 2 {
		t.Fatalf("plural query hits = %d, want 2", len(hits))
	}
}

func TestSearchFuzzy(t *testing.T) {
	idx, _ := buildFixture(t)
	if hits := idx.Search("tomatoe", Options{}); len(hits) != 2 {
		// "tomatoe" singularizes to itself; without fuzzy there may be
		// no exact posting, but Singularize may already fix it. Accept
		// either 0 (needs fuzzy) or 2 (singularizer handled it).
		if len(hits) != 0 {
			t.Fatalf("non-fuzzy hits = %d", len(hits))
		}
	}
	hits := idx.Search("tomat", Options{Fuzzy: true})
	if len(hits) != 2 {
		t.Fatalf("fuzzy hits = %d, want 2", len(hits))
	}
	// Fuzzy must not fire when the exact term exists.
	exact := idx.Search("garlic", Options{Fuzzy: true})
	for _, h := range exact {
		if h.Matched != 1 {
			t.Errorf("exact term matched %d", h.Matched)
		}
	}
}

func TestSearchLimitAndEmptyQuery(t *testing.T) {
	idx, _ := buildFixture(t)
	if hits := idx.Search("", Options{}); hits != nil {
		t.Errorf("empty query hits = %v", hits)
	}
	if hits := idx.Search("1 2 3", Options{}); hits != nil {
		t.Errorf("quantity-only query hits = %v", hits)
	}
	hits := idx.Search("tomato garlic butter", Options{Limit: 1})
	if len(hits) != 1 {
		t.Errorf("limited hits = %d", len(hits))
	}
}

func TestSearchUnknownTerm(t *testing.T) {
	idx, _ := buildFixture(t)
	if hits := idx.Search("xylophone", Options{}); len(hits) != 0 {
		t.Errorf("unknown term hits = %v", hits)
	}
}

func TestTopTerms(t *testing.T) {
	idx, _ := buildFixture(t)
	top := idx.TopTerms(3)
	if len(top) != 3 {
		t.Fatalf("TopTerms = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Docs > top[i-1].Docs {
			t.Errorf("TopTerms not sorted: %v", top)
		}
	}
	// tomato/garlic/butter each appear in 2 docs; the top entries must
	// have Docs >= 2.
	if top[0].Docs < 2 {
		t.Errorf("top term %+v too rare", top[0])
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	idx, _ := buildFixture(t)
	a := idx.Search("garlic", Options{})
	b := idx.Search("garlic", Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic hit count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic ordering: %v vs %v", a, b)
		}
	}
}
