// Package search provides full-text search over the recipe corpus: an
// inverted index with TF-IDF ranking, boolean modes and fuzzy term
// expansion. The paper's online CulinaryDB front end offers recipe
// search; this package is the equivalent capability for the Go library
// and the HTTP server.
//
// The index is live: NewLive subscribes it to the store's mutation
// feed and maintains the posting lists incrementally under the corpus
// write lock, so a recipe is searchable the moment its upsert is
// acknowledged and gone the moment its delete is. After quiescing, the
// incrementally-maintained index is byte-identical (CanonicalDump) to
// a fresh Build of the same corpus.
package search

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/textproc"
)

// Mode selects how multiple query terms combine.
type Mode int

// Query modes.
const (
	// ModeAny ranks documents matching at least one term (OR).
	ModeAny Mode = iota
	// ModeAll keeps only documents matching every term (AND).
	ModeAll
)

// posting is one document's entry in a term's posting list. Lists stay
// doc-ascending under incremental maintenance (binary insert), the
// same order a fresh Build produces.
type posting struct {
	doc int // recipe ID
	tf  int // term frequency within the document
}

// docMeta mirrors the per-slot liveness and region of the corpus, so
// query-time filtering never has to lock the store — which would
// invert the store-then-index lock order the mutation path uses.
type docMeta struct {
	live   bool
	region recipedb.Region
}

// Index is an inverted index over recipe names and ingredient names.
// Built once with Build it is a static snapshot; built with NewLive it
// tracks the store. All methods are safe for concurrent use.
type Index struct {
	catalog *flavor.Catalog

	mu       sync.RWMutex
	version  uint64 // corpus version the index state reflects
	postings map[string][]posting
	docLen   []int // tokens per document slot
	docs     []docMeta
	nDocs    int
	terms    []string // sorted vocabulary, for fuzzy expansion
}

func newIndex(catalog *flavor.Catalog) *Index {
	return &Index{
		catalog:  catalog,
		postings: make(map[string][]posting),
	}
}

// Build indexes every recipe in the store as a one-shot snapshot.
// Document text is the recipe name plus all ingredient names; tokens
// are normalized and singularized the same way the aliasing pipeline
// normalizes phrases, so "Tomatoes" matches recipes using "tomato".
func Build(store *recipedb.Store) *Index {
	idx := newIndex(store.Catalog())
	store.Read(func(v *recipedb.View) { idx.rebuildLocked(v) })
	return idx
}

// NewLive builds the index and subscribes it to the store's mutation
// feed in one atomic step: no mutation can land between the initial
// build and the first incremental application. Maintenance is
// synchronous with the mutation (inside the corpus write lock), which
// is what makes "acked upsert is searchable by the next request" a
// guarantee rather than a race.
func NewLive(store *recipedb.Store) *Index {
	idx := newIndex(store.Catalog())
	store.SubscribeBatch(
		func(v *recipedb.View) { idx.rebuildLocked(v) },
		idx.ApplyBatch,
	)
	return idx
}

// rebuildLocked replaces the whole index state from a corpus view.
// Documents are addressed by recipe slot, so a corpus with tombstoned
// (deleted) slots keeps doc IDs aligned with recipe IDs; tombstones
// contribute no postings. Callers hold no idx lock contention yet
// (construction) or must not: it takes the write lock itself.
func (idx *Index) rebuildLocked(v *recipedb.View) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	idx.postings = make(map[string][]posting)
	idx.docLen = make([]int, v.Slots())
	idx.docs = make([]docMeta, v.Slots())
	idx.nDocs = v.Len()
	idx.version = v.Version
	for docID := 0; docID < v.Slots(); docID++ {
		rec := v.Recipe(docID)
		if rec.Deleted {
			continue
		}
		idx.docs[docID] = docMeta{live: true, region: rec.Region}
		counts := make(map[string]int)
		idx.countTokens(rec, func(n int) { idx.docLen[docID] += n }, counts)
		for term, tf := range counts {
			idx.postings[term] = append(idx.postings[term], posting{doc: docID, tf: tf})
		}
	}
	idx.terms = make([]string, 0, len(idx.postings))
	for term := range idx.postings {
		idx.terms = append(idx.terms, term)
	}
	sort.Strings(idx.terms)
}

// countTokens tokenizes a recipe's document text into counts and
// reports the token total through addLen.
func (idx *Index) countTokens(rec *recipedb.Recipe, addLen func(int), counts map[string]int) {
	n := 0
	add := func(text string) {
		for _, tok := range tokenize(text) {
			counts[tok]++
			n++
		}
	}
	add(rec.Name)
	for _, ing := range rec.Ingredients {
		add(idx.catalog.Ingredient(ing).Name)
	}
	addLen(n)
}

// Apply folds one corpus mutation into the index. Mutations at or
// below the index's version (already covered by the initial build) are
// ignored.
func (idx *Index) Apply(m recipedb.Mutation) {
	idx.ApplyBatch([]recipedb.Mutation{m})
}

// ApplyBatch folds one coalesced batch of corpus mutations into the
// index under a single lock acquisition. It is the store subscriber:
// called synchronously inside the mutation critical section, batches in
// version order and mutations in version order within each batch, so
// the per-mutation version skip composes exactly as it does for
// singleton batches.
func (idx *Index) ApplyBatch(ms []recipedb.Mutation) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	for _, m := range ms {
		if m.Version <= idx.version {
			continue
		}
		if m.Old != nil {
			idx.removeDocLocked(m.Old)
		}
		if m.New != nil {
			idx.addDocLocked(m.New)
		}
		idx.version = m.Version
	}
}

// addDocLocked indexes one recipe, growing the slot tables if the
// mutation extended the corpus (intermediate gap slots stay empty,
// exactly as a fresh Build leaves tombstones).
func (idx *Index) addDocLocked(rec *recipedb.Recipe) {
	for len(idx.docLen) <= rec.ID {
		idx.docLen = append(idx.docLen, 0)
		idx.docs = append(idx.docs, docMeta{})
	}
	counts := make(map[string]int)
	idx.countTokens(rec, func(n int) { idx.docLen[rec.ID] = n }, counts)
	for term, tf := range counts {
		plist, existed := idx.postings[term]
		idx.postings[term] = insertPosting(plist, posting{doc: rec.ID, tf: tf})
		if !existed {
			idx.insertTermLocked(term)
		}
	}
	idx.docs[rec.ID] = docMeta{live: true, region: rec.Region}
	idx.nDocs++
}

// removeDocLocked unindexes one recipe by re-tokenizing its document
// text — the recipe copy in the mutation preserves exactly what was
// indexed. Terms whose posting list empties leave the vocabulary, so
// fuzzy expansion never resurrects deleted-only terms and the
// vocabulary matches a fresh Build byte for byte.
func (idx *Index) removeDocLocked(rec *recipedb.Recipe) {
	counts := make(map[string]int)
	idx.countTokens(rec, func(int) {}, counts)
	for term := range counts {
		plist := removePosting(idx.postings[term], rec.ID)
		if len(plist) == 0 {
			delete(idx.postings, term)
			idx.removeTermLocked(term)
		} else {
			idx.postings[term] = plist
		}
	}
	idx.docLen[rec.ID] = 0
	idx.docs[rec.ID] = docMeta{}
	idx.nDocs--
}

// insertTermLocked adds a term to the sorted vocabulary slice.
func (idx *Index) insertTermLocked(term string) {
	i := sort.SearchStrings(idx.terms, term)
	idx.terms = append(idx.terms, "")
	copy(idx.terms[i+1:], idx.terms[i:])
	idx.terms[i] = term
}

// removeTermLocked drops a term from the sorted vocabulary slice.
func (idx *Index) removeTermLocked(term string) {
	i := sort.SearchStrings(idx.terms, term)
	if i < len(idx.terms) && idx.terms[i] == term {
		idx.terms = append(idx.terms[:i], idx.terms[i+1:]...)
	}
}

// insertPosting keeps the list doc-ascending (replacing an existing
// entry for the same doc, which cannot happen from the mutation path
// but keeps the operation idempotent).
func insertPosting(list []posting, p posting) []posting {
	i := sort.Search(len(list), func(i int) bool { return list[i].doc >= p.doc })
	if i < len(list) && list[i].doc == p.doc {
		list[i] = p
		return list
	}
	list = append(list, posting{})
	copy(list[i+1:], list[i:])
	list[i] = p
	return list
}

// removePosting drops the entry for doc, preserving order.
func removePosting(list []posting, doc int) []posting {
	i := sort.Search(len(list), func(i int) bool { return list[i].doc >= doc })
	if i >= len(list) || list[i].doc != doc {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// tokenize normalizes free text into index terms.
func tokenize(text string) []string {
	toks := textproc.Tokenize(textproc.Normalize(text))
	out := toks[:0]
	for _, tok := range toks {
		if len(tok) < 2 || textproc.IsQuantity(tok) {
			continue
		}
		out = append(out, textproc.Singularize(tok))
	}
	return out
}

// Vocabulary returns the number of distinct terms.
func (idx *Index) Vocabulary() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.postings)
}

// DocCount returns the number of indexed recipes.
func (idx *Index) DocCount() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.nDocs
}

// Version returns the corpus version the index currently reflects.
// For a live index this equals the store version once the mutation
// that produced it has returned (maintenance is synchronous).
func (idx *Index) Version() uint64 {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.version
}

// Hit is one ranked search result.
type Hit struct {
	// RecipeID indexes the store the index was built from.
	RecipeID int
	// Score is the accumulated TF-IDF relevance (higher is better).
	Score float64
	// Matched is how many distinct query terms the document matched.
	Matched int
}

// Options tunes a search.
type Options struct {
	// Mode combines terms with OR (ModeAny, default) or AND (ModeAll).
	Mode Mode
	// Limit caps the number of hits; <= 0 means 10.
	Limit int
	// Region restricts hits to one region when HasRegion is true;
	// otherwise the whole corpus is searched. (An explicit flag because
	// the zero Region value is a real region, not a wildcard.)
	Region    recipedb.Region
	HasRegion bool
	// Fuzzy expands query terms within one edit when the exact term is
	// absent from the vocabulary ("tomatoe" → "tomato").
	Fuzzy bool
}

// Search tokenizes the query and returns ranked hits. Ties break by
// recipe ID for determinism.
func (idx *Index) Search(query string, opts Options) []Hit {
	hits, _ := idx.SearchVersion(query, opts)
	return hits
}

// SearchVersion is Search plus the corpus version the results reflect,
// for clients that fence responses against the live corpus. The whole
// ranking runs under one read epoch of the index, so the (hits,
// version) pair is consistent.
func (idx *Index) SearchVersion(query string, opts Options) ([]Hit, uint64) {
	limit := opts.Limit
	if limit <= 0 {
		limit = 10
	}
	terms := tokenize(query)
	if len(terms) == 0 {
		return nil, idx.Version()
	}
	// Deduplicate query terms.
	seen := make(map[string]struct{}, len(terms))
	uniq := terms[:0]
	for _, term := range terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		uniq = append(uniq, term)
	}
	terms = uniq

	idx.mu.RLock()
	defer idx.mu.RUnlock()

	type accum struct {
		score   float64
		matched int
	}
	scores := make(map[int]*accum)
	for _, term := range terms {
		plist := idx.postings[term]
		if len(plist) == 0 && opts.Fuzzy {
			plist = idx.fuzzyPostingsLocked(term)
		}
		if len(plist) == 0 {
			continue
		}
		idf := math.Log(float64(idx.nDocs+1) / float64(len(plist)+1))
		for _, p := range plist {
			a := scores[p.doc]
			if a == nil {
				a = &accum{}
				scores[p.doc] = a
			}
			tf := float64(p.tf) / float64(idx.docLen[p.doc])
			a.score += tf * idf
			a.matched++
		}
	}

	hits := make([]Hit, 0, len(scores))
	// Liveness and region come from the index's own per-slot metadata,
	// maintained in the same critical section as the postings — a live
	// index never ranks a deleted recipe, and it never needs to lock
	// the store at query time.
	for doc, a := range scores {
		if opts.Mode == ModeAll && a.matched < len(terms) {
			continue
		}
		meta := idx.docs[doc]
		if !meta.live {
			continue
		}
		if opts.HasRegion && opts.Region != recipedb.World && meta.region != opts.Region {
			continue
		}
		hits = append(hits, Hit{RecipeID: doc, Score: a.score, Matched: a.matched})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].RecipeID < hits[j].RecipeID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, idx.version
}

// fuzzyPostingsLocked merges the posting lists of vocabulary terms
// within one edit of term; callers hold idx.mu. A shared first letter
// is required, which keeps the candidate scan cheap and avoids absurd
// matches.
func (idx *Index) fuzzyPostingsLocked(term string) []posting {
	if len(term) == 0 {
		return nil
	}
	first := term[:1]
	start := sort.SearchStrings(idx.terms, first)
	var merged []posting
	for i := start; i < len(idx.terms); i++ {
		cand := idx.terms[i]
		if !strings.HasPrefix(cand, first) {
			break
		}
		if len(cand)-len(term) > 1 || len(term)-len(cand) > 1 {
			continue
		}
		if textproc.WithinEditBudget(term, cand, 1) {
			merged = append(merged, idx.postings[cand]...)
		}
	}
	if len(merged) == 0 {
		return nil
	}
	// Re-sort and merge duplicate documents (a doc may match several
	// fuzzy variants).
	sort.Slice(merged, func(i, j int) bool { return merged[i].doc < merged[j].doc })
	out := merged[:0]
	for _, p := range merged {
		if n := len(out); n > 0 && out[n-1].doc == p.doc {
			out[n-1].tf += p.tf
			continue
		}
		out = append(out, p)
	}
	return out
}

// CanonicalDump serializes the complete index state deterministically:
// slot tables in slot order, vocabulary in sorted-terms order, posting
// lists exactly as stored (NOT re-sorted — so the dump also witnesses
// the doc-ascending invariant incremental maintenance must preserve).
// Two indexes over the same corpus state produce identical bytes; the
// equivalence tests diff a live index against a fresh Build with it.
func (idx *Index) CanonicalDump() []byte {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "version=%d nDocs=%d slots=%d terms=%d\n",
		idx.version, idx.nDocs, len(idx.docLen), len(idx.terms))
	for i := range idx.docLen {
		m := idx.docs[i]
		fmt.Fprintf(&b, "doc %d len=%d live=%t region=%d\n", i, idx.docLen[i], m.live, int(m.region))
	}
	for _, term := range idx.terms {
		fmt.Fprintf(&b, "term %q:", term)
		for _, p := range idx.postings[term] {
			fmt.Fprintf(&b, " %d/%d", p.doc, p.tf)
		}
		b.WriteByte('\n')
	}
	// The map must agree with the sorted slice: any divergence is a
	// maintenance bug the diff should surface, so record both sizes.
	fmt.Fprintf(&b, "postings=%d\n", len(idx.postings))
	return []byte(b.String())
}

// TermStats describes one vocabulary term for diagnostics.
type TermStats struct {
	Term string
	// Docs is the document frequency.
	Docs int
	// TotalTF is the summed term frequency.
	TotalTF int
}

// TopTerms returns the k most document-frequent terms — a quick look at
// what dominates the corpus vocabulary (typically the staple
// ingredients, mirroring Fig 3b's popularity ranking).
func (idx *Index) TopTerms(k int) []TermStats {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	stats := make([]TermStats, 0, len(idx.postings))
	for term, plist := range idx.postings {
		total := 0
		for _, p := range plist {
			total += p.tf
		}
		stats = append(stats, TermStats{Term: term, Docs: len(plist), TotalTF: total})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Docs != stats[j].Docs {
			return stats[i].Docs > stats[j].Docs
		}
		return stats[i].Term < stats[j].Term
	})
	if k < len(stats) {
		stats = stats[:k]
	}
	return stats
}
