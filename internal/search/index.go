// Package search provides full-text search over the recipe corpus: an
// inverted index with TF-IDF ranking, boolean modes and fuzzy term
// expansion. The paper's online CulinaryDB front end offers recipe
// search; this package is the equivalent capability for the Go library
// and the HTTP server.
package search

import (
	"math"
	"sort"
	"strings"

	"culinary/internal/recipedb"
	"culinary/internal/textproc"
)

// Mode selects how multiple query terms combine.
type Mode int

// Query modes.
const (
	// ModeAny ranks documents matching at least one term (OR).
	ModeAny Mode = iota
	// ModeAll keeps only documents matching every term (AND).
	ModeAll
)

// posting is one document's entry in a term's posting list.
type posting struct {
	doc int // recipe ID
	tf  int // term frequency within the document
}

// Index is an immutable inverted index over recipe names and ingredient
// names. Build it once; all query methods are safe for concurrent use.
type Index struct {
	store    *recipedb.Store
	postings map[string][]posting
	docLen   []int // tokens per document
	nDocs    int
	terms    []string // sorted vocabulary, for fuzzy expansion
}

// Build indexes every recipe in the store. Document text is the recipe
// name plus all ingredient names; tokens are normalized and singularized
// the same way the aliasing pipeline normalizes phrases, so "Tomatoes"
// matches recipes using "tomato".
func Build(store *recipedb.Store) *Index {
	// Documents are addressed by recipe slot, so a corpus reloaded
	// with tombstoned (deleted) slots keeps doc IDs aligned with
	// recipe IDs; tombstones contribute no postings.
	idx := &Index{
		store:    store,
		postings: make(map[string][]posting),
		docLen:   make([]int, store.Slots()),
		nDocs:    store.Len(),
	}
	catalog := store.Catalog()
	for docID := 0; docID < store.Slots(); docID++ {
		rec := store.Recipe(docID)
		if rec.Deleted {
			continue
		}
		counts := make(map[string]int)
		add := func(text string) {
			for _, tok := range tokenize(text) {
				counts[tok]++
				idx.docLen[docID]++
			}
		}
		add(rec.Name)
		for _, ing := range rec.Ingredients {
			add(catalog.Ingredient(ing).Name)
		}
		for term, tf := range counts {
			idx.postings[term] = append(idx.postings[term], posting{doc: docID, tf: tf})
		}
	}
	idx.terms = make([]string, 0, len(idx.postings))
	for term := range idx.postings {
		idx.terms = append(idx.terms, term)
	}
	sort.Strings(idx.terms)
	return idx
}

// tokenize normalizes free text into index terms.
func tokenize(text string) []string {
	toks := textproc.Tokenize(textproc.Normalize(text))
	out := toks[:0]
	for _, tok := range toks {
		if len(tok) < 2 || textproc.IsQuantity(tok) {
			continue
		}
		out = append(out, textproc.Singularize(tok))
	}
	return out
}

// Vocabulary returns the number of distinct terms.
func (idx *Index) Vocabulary() int { return len(idx.postings) }

// DocCount returns the number of indexed recipes.
func (idx *Index) DocCount() int { return idx.nDocs }

// Hit is one ranked search result.
type Hit struct {
	// RecipeID indexes the store the index was built from.
	RecipeID int
	// Score is the accumulated TF-IDF relevance (higher is better).
	Score float64
	// Matched is how many distinct query terms the document matched.
	Matched int
}

// Options tunes a search.
type Options struct {
	// Mode combines terms with OR (ModeAny, default) or AND (ModeAll).
	Mode Mode
	// Limit caps the number of hits; <= 0 means 10.
	Limit int
	// Region restricts hits to one region when HasRegion is true;
	// otherwise the whole corpus is searched. (An explicit flag because
	// the zero Region value is a real region, not a wildcard.)
	Region    recipedb.Region
	HasRegion bool
	// Fuzzy expands query terms within one edit when the exact term is
	// absent from the vocabulary ("tomatoe" → "tomato").
	Fuzzy bool
}

// Search tokenizes the query and returns ranked hits. Ties break by
// recipe ID for determinism.
func (idx *Index) Search(query string, opts Options) []Hit {
	limit := opts.Limit
	if limit <= 0 {
		limit = 10
	}
	terms := tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	// Deduplicate query terms.
	seen := make(map[string]struct{}, len(terms))
	uniq := terms[:0]
	for _, term := range terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		uniq = append(uniq, term)
	}
	terms = uniq

	type accum struct {
		score   float64
		matched int
	}
	scores := make(map[int]*accum)
	for _, term := range terms {
		plist := idx.postings[term]
		if len(plist) == 0 && opts.Fuzzy {
			plist = idx.fuzzyPostings(term)
		}
		if len(plist) == 0 {
			continue
		}
		idf := math.Log(float64(idx.nDocs+1) / float64(len(plist)+1))
		for _, p := range plist {
			a := scores[p.doc]
			if a == nil {
				a = &accum{}
				scores[p.doc] = a
			}
			tf := float64(p.tf) / float64(idx.docLen[p.doc])
			a.score += tf * idf
			a.matched++
		}
	}

	hits := make([]Hit, 0, len(scores))
	// Region and tombstone checks read the live store (the corpus may
	// have been mutated since Build) under one read epoch; filtering
	// deleted recipes here, before the limit cut, keeps the result
	// count full when top-ranked recipes have been deleted.
	idx.store.Read(func(v *recipedb.View) {
		for doc, a := range scores {
			if opts.Mode == ModeAll && a.matched < len(terms) {
				continue
			}
			rec := v.Recipe(doc)
			if rec.Deleted {
				continue
			}
			if opts.HasRegion && opts.Region != recipedb.World && rec.Region != opts.Region {
				continue
			}
			hits = append(hits, Hit{RecipeID: doc, Score: a.score, Matched: a.matched})
		}
	})
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].RecipeID < hits[j].RecipeID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// fuzzyPostings merges the posting lists of vocabulary terms within one
// edit of term. A shared first letter is required, which keeps the
// candidate scan cheap and avoids absurd matches.
func (idx *Index) fuzzyPostings(term string) []posting {
	if len(term) == 0 {
		return nil
	}
	first := term[:1]
	start := sort.SearchStrings(idx.terms, first)
	var merged []posting
	for i := start; i < len(idx.terms); i++ {
		cand := idx.terms[i]
		if !strings.HasPrefix(cand, first) {
			break
		}
		if len(cand)-len(term) > 1 || len(term)-len(cand) > 1 {
			continue
		}
		if textproc.WithinEditBudget(term, cand, 1) {
			merged = append(merged, idx.postings[cand]...)
		}
	}
	if len(merged) == 0 {
		return nil
	}
	// Re-sort and merge duplicate documents (a doc may match several
	// fuzzy variants).
	sort.Slice(merged, func(i, j int) bool { return merged[i].doc < merged[j].doc })
	out := merged[:0]
	for _, p := range merged {
		if n := len(out); n > 0 && out[n-1].doc == p.doc {
			out[n-1].tf += p.tf
			continue
		}
		out = append(out, p)
	}
	return out
}

// TermStats describes one vocabulary term for diagnostics.
type TermStats struct {
	Term string
	// Docs is the document frequency.
	Docs int
	// TotalTF is the summed term frequency.
	TotalTF int
}

// TopTerms returns the k most document-frequent terms — a quick look at
// what dominates the corpus vocabulary (typically the staple
// ingredients, mirroring Fig 3b's popularity ranking).
func (idx *Index) TopTerms(k int) []TermStats {
	stats := make([]TermStats, 0, len(idx.postings))
	for term, plist := range idx.postings {
		total := 0
		for _, p := range plist {
			total += p.tf
		}
		stats = append(stats, TermStats{Term: term, Docs: len(plist), TotalTF: total})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Docs != stats[j].Docs {
			return stats[i].Docs > stats[j].Docs
		}
		return stats[i].Term < stats[j].Term
	})
	if k < len(stats) {
		stats = stats[:k]
	}
	return stats
}
