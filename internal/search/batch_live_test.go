package search

import (
	"bytes"
	"fmt"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// TestLiveIndexBatchEquivalence: applying a mutation script through
// ApplyBatch (one coalesced SubscribeBatch delivery per chunk) must
// leave the live index byte-identical to a fresh Build AND to the live
// index of a twin store that applied the same script one item at a
// time. This is the search-layer half of the batched-vs-sequential
// equivalence guarantee.
func TestLiveIndexBatchEquivalence(t *testing.T) {
	batchStore, batchIdx, ids := liveFixture(t)
	seqStore, seqIdx, _ := liveFixture(t)

	var script []recipedb.BatchItem
	regions := []recipedb.Region{recipedb.Italy, recipedb.France, recipedb.USA}
	for i := 0; i < 24; i++ {
		script = append(script, recipedb.BatchItem{
			ID:     -1,
			Name:   fmt.Sprintf("batch soup %d", i),
			Region: regions[i%len(regions)],
			Source: recipedb.AllRecipes,
			Ingredients: append(ids("tomato", "onion"),
				flavor.ID(10+i)),
		})
	}
	// Replacements, removes, and an in-batch re-insert of a removed slot.
	script = append(script,
		recipedb.BatchItem{ID: 3, Name: "replaced stew", Region: recipedb.France,
			Source: recipedb.AllRecipes, Ingredients: ids("butter", "cream", "garlic")},
		recipedb.BatchItem{Remove: true, ID: 7},
		recipedb.BatchItem{Remove: true, ID: 11},
		recipedb.BatchItem{ID: 11, Name: "revived salad", Region: recipedb.Italy,
			Source: recipedb.AllRecipes, Ingredients: ids("tomato", "basil", "olive oil")},
		// A validation reject mid-batch must be invisible to the index.
		recipedb.BatchItem{ID: -1, Name: "bogus", Region: recipedb.World,
			Source: recipedb.AllRecipes, Ingredients: ids("tomato", "basil")},
		recipedb.BatchItem{ID: -1, Name: "final dish", Region: recipedb.USA,
			Source: recipedb.AllRecipes, Ingredients: ids("butter", "salt")},
	)

	for _, op := range script {
		seqStore.ApplyBatch([]recipedb.BatchItem{op})
	}
	for i := 0; i < len(script); i += 6 {
		end := i + 6
		if end > len(script) {
			end = len(script)
		}
		batchStore.ApplyBatch(script[i:end])
	}

	requireEquivalent(t, batchStore, batchIdx)
	requireEquivalent(t, seqStore, seqIdx)
	if got, want := batchIdx.CanonicalDump(), seqIdx.CanonicalDump(); !bytes.Equal(got, want) {
		t.Fatalf("batched live index diverges from sequential twin:\nbatched:\n%s\nsequential:\n%s", got, want)
	}
	if batchStore.CanonicalDump() != seqStore.CanonicalDump() {
		t.Fatal("store dumps diverge between batched and sequential application")
	}

	// Freshness: a batch is searchable the moment ApplyBatch returns.
	if hits := batchIdx.Search("revived salad", Options{}); len(hits) != 1 || hits[0].RecipeID != 11 {
		t.Fatalf("revived slot not searchable: %v", hits)
	}
	if hits := batchIdx.Search("bogus", Options{}); len(hits) != 0 {
		t.Fatalf("rejected item leaked into the index: %v", hits)
	}
	if batchIdx.Version() != batchStore.Version() {
		t.Fatalf("index version %d != store version %d", batchIdx.Version(), batchStore.Version())
	}
}

// TestApplyBatchMatchesSequentialApply drives the two Index entry
// points directly with one real mutation stream captured off a store:
// ApplyBatch(ms) must land the index in the same state as Apply called
// once per mutation.
func TestApplyBatchMatchesSequentialApply(t *testing.T) {
	store, _, ids := liveFixture(t)
	for i := 0; i < 10; i++ {
		if _, err := store.Add(fmt.Sprintf("dish %d", i), recipedb.Italy, recipedb.AllRecipes,
			append(ids("tomato"), flavor.ID(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	one := Build(store)
	all := Build(store)

	var muts []recipedb.Mutation
	store.SubscribeBatch(nil, func(ms []recipedb.Mutation) {
		muts = append(muts, ms...)
	})
	res := store.ApplyBatch([]recipedb.BatchItem{
		{ID: 0, Name: "zero", Region: recipedb.France, Source: recipedb.AllRecipes,
			Ingredients: ids("butter", "cream")},
		{ID: -1, Name: "fresh", Region: recipedb.Italy, Source: recipedb.AllRecipes,
			Ingredients: ids("tomato", "basil")},
		{Remove: true, ID: 1},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if len(muts) != 3 {
		t.Fatalf("captured %d mutations, want 3", len(muts))
	}
	for _, m := range muts {
		one.Apply(m)
	}
	all.ApplyBatch(muts)
	if got, want := all.CanonicalDump(), one.CanonicalDump(); !bytes.Equal(got, want) {
		t.Fatalf("ApplyBatch diverges from per-mutation Apply:\nbatch:\n%s\nsequential:\n%s", got, want)
	}
	if got, want := all.CanonicalDump(), Build(store).CanonicalDump(); !bytes.Equal(got, want) {
		t.Fatalf("ApplyBatch diverges from fresh Build:\nbatch:\n%s\nfresh:\n%s", got, want)
	}
}
