package search

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// liveFixture returns an empty store with a live index subscribed to
// it, plus a helper that resolves ingredient names.
func liveFixture(t *testing.T) (*recipedb.Store, *Index, func(...string) []flavor.ID) {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := recipedb.NewStore(catalog)
	ids := func(names ...string) []flavor.ID {
		out := make([]flavor.ID, len(names))
		for i, n := range names {
			id, ok := catalog.Lookup(n)
			if !ok {
				t.Fatalf("catalog lacks %q", n)
			}
			out[i] = id
		}
		return out
	}
	return store, NewLive(store), ids
}

// requireEquivalent diffs the live index against a fresh Build of the
// same store — the tentpole's byte-identical equivalence guarantee.
func requireEquivalent(t *testing.T, store *recipedb.Store, live *Index) {
	t.Helper()
	fresh := Build(store)
	got, want := live.CanonicalDump(), fresh.CanonicalDump()
	if !bytes.Equal(got, want) {
		t.Fatalf("live index diverged from fresh Build at version %d:\nlive:\n%s\nfresh:\n%s",
			store.Version(), got, want)
	}
}

func TestLiveIndexUpsertVisibleImmediately(t *testing.T) {
	store, idx, ids := liveFixture(t)
	if hits := idx.Search("tomato", Options{}); len(hits) != 0 {
		t.Fatalf("empty corpus returned hits: %v", hits)
	}
	id, err := store.Add("Classic Tomato Soup", recipedb.USA, recipedb.Epicurious,
		ids("tomato", "onion", "butter", "salt"))
	if err != nil {
		t.Fatal(err)
	}
	hits := idx.Search("tomato soup", Options{})
	if len(hits) != 1 || hits[0].RecipeID != id {
		t.Fatalf("upsert not searchable immediately: %v", hits)
	}
	if idx.Version() != store.Version() {
		t.Fatalf("index version %d != store version %d", idx.Version(), store.Version())
	}
	requireEquivalent(t, store, idx)
}

func TestLiveIndexDeleteVanishesImmediately(t *testing.T) {
	store, idx, ids := liveFixture(t)
	id, err := store.Add("Tomato Basil Pasta", recipedb.Italy, recipedb.Epicurious,
		ids("tomato", "basil", "garlic", "olive oil"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Add("Garlic Butter Shrimp", recipedb.USA, recipedb.Epicurious,
		ids("shrimp", "garlic", "butter", "parsley")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Remove(id); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"tomato", "basil", "pasta"} {
		if hits := idx.Search(q, Options{Fuzzy: true}); len(hits) != 0 {
			t.Fatalf("deleted recipe still matches %q: %v", q, hits)
		}
	}
	// "garlic" survives: the other recipe still uses it.
	if hits := idx.Search("garlic", Options{}); len(hits) != 1 {
		t.Fatalf("shared term lost with the deleted recipe: %v", hits)
	}
	requireEquivalent(t, store, idx)
}

func TestLiveIndexReplaceRetokenizes(t *testing.T) {
	store, idx, ids := liveFixture(t)
	id, err := store.Add("Miso Glazed Salmon", recipedb.Japan, recipedb.Epicurious,
		ids("salmon", "scallion", "ginger", "soy sauce"))
	if err != nil {
		t.Fatal(err)
	}
	// Replace the slot with a different region and disjoint text.
	if _, _, _, err := store.Upsert(id, "Classic Tomato Soup", recipedb.USA, recipedb.AllRecipes,
		ids("tomato", "onion", "butter", "salt")); err != nil {
		t.Fatal(err)
	}
	if hits := idx.Search("salmon miso", Options{}); len(hits) != 0 {
		t.Fatalf("replaced recipe's old terms still match: %v", hits)
	}
	hits := idx.Search("tomato", Options{Region: recipedb.USA, HasRegion: true})
	if len(hits) != 1 || hits[0].RecipeID != id {
		t.Fatalf("replacement not indexed under new region: %v", hits)
	}
	if hits := idx.Search("tomato", Options{Region: recipedb.Japan, HasRegion: true}); len(hits) != 0 {
		t.Fatalf("replacement still filed under old region: %v", hits)
	}
	requireEquivalent(t, store, idx)
}

func TestLiveIndexGapSlotUpsert(t *testing.T) {
	store, idx, ids := liveFixture(t)
	// Upsert far past the end: intermediate slots are tombstones, the
	// index must grow its slot tables identically to a fresh Build.
	if _, _, _, err := store.Upsert(5, "Classic Tomato Soup", recipedb.USA, recipedb.Epicurious,
		ids("tomato", "onion", "butter", "salt")); err != nil {
		t.Fatal(err)
	}
	hits := idx.Search("tomato", Options{})
	if len(hits) != 1 || hits[0].RecipeID != 5 {
		t.Fatalf("gap-slot upsert not searchable: %v", hits)
	}
	requireEquivalent(t, store, idx)
}

// TestLiveIndexEquivalenceRandomized churns a corpus through random
// upserts, replacements and deletes and checks byte-identical
// equivalence with a fresh Build at every step.
func TestLiveIndexEquivalenceRandomized(t *testing.T) {
	store, idx, _ := liveFixture(t)
	catalog := store.Catalog()
	rng := rand.New(rand.NewSource(42))
	names := []string{
		"Tomato Soup", "Garlic Shrimp", "Miso Salmon", "Basil Pasta",
		"Onion Tart", "Butter Chicken", "Ginger Beef", "Salt Cod Stew",
	}
	randIngredients := func() []flavor.ID {
		n := 2 + rng.Intn(5)
		seen := map[flavor.ID]bool{}
		out := make([]flavor.ID, 0, n)
		for len(out) < n {
			id := flavor.ID(rng.Intn(catalog.Len()))
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out
	}
	regions := []recipedb.Region{recipedb.USA, recipedb.Italy, recipedb.Japan, recipedb.Mexico}
	const slots = 12
	for step := 0; step < 300; step++ {
		slot := rng.Intn(slots)
		if rng.Intn(4) == 0 {
			if _, err := store.Remove(slot); err != nil {
				continue // slot already empty
			}
		} else {
			name := fmt.Sprintf("%s #%d", names[rng.Intn(len(names))], step)
			if _, _, _, err := store.Upsert(slot, name, regions[rng.Intn(len(regions))],
				recipedb.Epicurious, randIngredients()); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if step%25 == 0 {
			requireEquivalent(t, store, idx)
		}
	}
	requireEquivalent(t, store, idx)
}

// TestLiveIndexConcurrentSearchDuringMutation races searches against
// mutations; run under -race it proves the index locking, and the
// quiesced state must still be byte-identical to a fresh Build.
func TestLiveIndexConcurrentSearchDuringMutation(t *testing.T) {
	store, idx, ids := liveFixture(t)
	ing := ids("tomato", "onion", "butter", "salt")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				hits, v := idx.SearchVersion("tomato", Options{Fuzzy: true})
				if v < last {
					t.Errorf("index version went backwards: %d -> %d", last, v)
					return
				}
				last = v
				for _, h := range hits {
					if h.RecipeID < 0 {
						t.Errorf("bogus hit %+v", h)
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		slot := i % 8
		if i%5 == 4 {
			store.Remove(slot) //nolint:errcheck // slot may be empty
			continue
		}
		if _, _, _, err := store.Upsert(slot, fmt.Sprintf("Tomato Soup %d", i),
			recipedb.USA, recipedb.Epicurious, ing); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	requireEquivalent(t, store, idx)
}
