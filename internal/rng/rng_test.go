package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	// Same label twice from an unadvanced parent yields the same child.
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatal("Split with same label should be deterministic")
		}
	}
	// Different labels give different sequences.
	c1 = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("children of labels 1 and 2 collided %d times", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Split(123)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split consumed parent randomness")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; bound is loose but catches
	// gross modulo bias.
	s := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 dof, p=0.001 critical value is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-squared %.2f exceeds 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(23)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(29)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f far from 1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 9, 50} {
		s := New(uint64(31 + mean))
		const draws = 50000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / draws
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%g) sample mean %.3f", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := New(1)
	if v := s.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := s.Poisson(-3); v != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	// Property: shuffling preserves the multiset.
	f := func(xs []int, seed uint64) bool {
		s := New(seed)
		orig := make(map[int]int)
		for _, x := range xs {
			orig[x]++
		}
		cp := append([]int(nil), xs...)
		s.ShuffleInts(cp)
		got := make(map[int]int)
		for _, x := range cp {
			got[x]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(53)
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}, {1000, 900},
	} {
		got := s.SampleWithoutReplacement(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("n=%d k=%d: got %d items", tc.n, tc.k, len(got))
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("n=%d k=%d: value %d out of range", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("n=%d k=%d: duplicate %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each of the 10 items should appear in a size-5 sample about half
	// the time.
	s := New(61)
	const trials = 20000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleWithoutReplacement(10, 5) {
			counts[v]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.5) > 0.02 {
			t.Fatalf("item %d selected with frequency %.3f, want ~0.5", i, frac)
		}
	}
}
