// Package rng provides deterministic pseudo-random number generation for
// the culinary analysis pipeline.
//
// Every stochastic component of the library (null models, corpus
// generation, bootstrap resampling) draws from an explicit *rng.Source so
// that experiments are exactly reproducible from a seed. The generator is
// a 64-bit permuted congruential generator (PCG-XSL-RR 128/64 reduced to
// a 64-bit state variant) with an odd stream increment, which makes
// sources cheaply splittable: deriving a child source with a distinct
// stream yields an independent sequence, allowing parallel experiment
// arms to share one master seed without correlation.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct with New or Split. Source is
// not safe for concurrent use; split one child per goroutine instead.
type Source struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// Multiplier from PCG reference implementation (Melissa O'Neill).
const pcgMult = 6364136223846793005

// defaultStream is the stream used by New; any odd constant works.
const defaultStream = 1442695040888963407

// New returns a Source seeded with seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, defaultStream>>1)
}

// NewStream returns a Source seeded with seed on the given stream.
// Distinct streams produce statistically independent sequences even for
// identical seeds.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: stream<<1 | 1}
	// Standard PCG initialization: advance once, add seed, advance again.
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

// Split derives a child Source whose stream is a function of label. The
// child is independent of the parent and of children with other labels.
// Splitting does not consume randomness from the parent, so the parent's
// sequence is unaffected.
func (s *Source) Split(label uint64) *Source {
	// Mix the parent identity and the label through SplitMix64 finalizer
	// to choose the child's seed and stream.
	mix := func(z uint64) uint64 {
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	seed := mix(s.state ^ label)
	stream := mix(s.inc + label*2 + 1)
	return NewStream(seed, stream)
}

// next advances the state and returns the previous state permuted.
func (s *Source) next() uint64 {
	old := s.state
	s.state = old*pcgMult + s.inc
	// XSL-RR output permutation on 64-bit state.
	xored := (old >> 32) ^ (old & 0xffffffff) ^ (old >> 18)
	rot := uint(old >> 59)
	return bits.RotateLeft64(xored*0x2545f4914f6cdd1d, -int(rot))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.next() }

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return uint32(s.next() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's method: multiply-high with rejection on the low word.
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			// Box-Muller polar transform.
			f := sqrt(-2 * ln(q) / q)
			return u * f
		}
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}

// Poisson returns a Poisson-distributed variate with the given mean.
// For small means it uses Knuth's product method; for large means a
// normal approximation with continuity correction, which is adequate for
// the recipe-size models in this library.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + sqrt(mean)*s.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles an int slice in place (Fisher-Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). It panics if k > n or k < 0. For small k relative to n it
// uses rejection from a set; otherwise a partial Fisher-Yates.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*4 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.Intn(n)
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
		return out
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
func exp(x float64) float64  { return math.Exp(x) }
