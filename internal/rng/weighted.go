package rng

import (
	"errors"
	"fmt"
)

// ErrNoWeight is returned when a weighted sampler is constructed from an
// empty or all-zero weight vector.
var ErrNoWeight = errors.New("rng: weight vector is empty or sums to zero")

// Weighted samples indices in proportion to a fixed weight vector in O(1)
// per draw using Vose's alias method. Construction is O(n).
//
// The null models of the food-pairing analysis draw hundreds of thousands
// of ingredients from empirical frequency distributions; the alias method
// keeps those draws constant-time regardless of catalog size.
type Weighted struct {
	prob  []float64
	alias []int
	n     int
}

// NewWeighted builds an alias sampler over weights. Negative weights are
// rejected. Zero weights are permitted (those indices are never drawn, as
// long as at least one weight is positive).
func NewWeighted(weights []float64) (*Weighted, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrNoWeight
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("rng: negative weight %g at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, ErrNoWeight
	}

	w := &Weighted{
		prob:  make([]float64, n),
		alias: make([]int, n),
		n:     n,
	}
	// Scale weights so the mean is 1.
	scaled := make([]float64, n)
	for i, v := range weights {
		scaled[i] = v * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, v := range scaled {
		if v < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		w.prob[l] = scaled[l]
		w.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Remaining entries get probability 1 (numerical residue).
	for _, g := range large {
		w.prob[g] = 1
		w.alias[g] = g
	}
	for _, l := range small {
		w.prob[l] = 1
		w.alias[l] = l
	}
	return w, nil
}

// Len returns the number of categories in the sampler.
func (w *Weighted) Len() int { return w.n }

// Sample draws one index in proportion to the weights.
func (w *Weighted) Sample(src *Source) int {
	i := src.Intn(w.n)
	if src.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}

// SampleDistinct draws k distinct indices weighted by the weight vector,
// by repeated sampling with rejection of duplicates. It panics if
// k exceeds the number of indices with positive weight, which would loop
// forever; callers must bound k appropriately.
func (w *Weighted) SampleDistinct(src *Source, k int) []int {
	if k <= 0 {
		return nil
	}
	positive := 0
	for i := 0; i < w.n; i++ {
		if w.prob[i] > 0 || w.alias[i] != i {
			positive++
		}
	}
	if k > positive {
		panic(fmt.Sprintf("rng: SampleDistinct k=%d exceeds %d positive-weight categories", k, positive))
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := w.Sample(src)
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// Reservoir maintains a uniform sample of fixed capacity over a stream of
// items (Algorithm R). It is used for drawing representative recipe
// subsets without materializing entire corpora.
type Reservoir[T any] struct {
	items []T
	cap   int
	seen  int
	src   *Source
}

// NewReservoir creates a reservoir sampler with the given capacity.
func NewReservoir[T any](capacity int, src *Source) *Reservoir[T] {
	if capacity <= 0 {
		panic("rng: reservoir capacity must be positive")
	}
	return &Reservoir[T]{cap: capacity, src: src}
}

// Offer presents one stream item to the reservoir.
func (r *Reservoir[T]) Offer(item T) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, item)
		return
	}
	j := r.src.Intn(r.seen)
	if j < r.cap {
		r.items[j] = item
	}
}

// Items returns the current sample. The slice is owned by the reservoir;
// callers must not mutate it while continuing to Offer.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int { return r.seen }
