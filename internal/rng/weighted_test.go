package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewWeightedErrors(t *testing.T) {
	if _, err := NewWeighted(nil); err == nil {
		t.Fatal("empty weights should error")
	}
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should error")
	}
	if _, err := NewWeighted([]float64{1, -1}); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestWeightedSingleCategory(t *testing.T) {
	w, err := NewWeighted([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(1)
	for i := 0; i < 100; i++ {
		if v := w.Sample(s); v != 0 {
			t.Fatalf("single-category sampler returned %d", v)
		}
	}
}

func TestWeightedDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	w, err := NewWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	s := New(7)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[w.Sample(s)]++
	}
	total := 1.0 + 2 + 3 + 4
	for i, wt := range weights {
		want := wt / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("index %d frequency %.4f want %.4f", i, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverDrawn(t *testing.T) {
	w, err := NewWeighted([]float64{0, 1, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	s := New(13)
	for i := 0; i < 50000; i++ {
		v := w.Sample(s)
		if v == 0 || v == 2 || v == 4 {
			t.Fatalf("zero-weight index %d was drawn", v)
		}
	}
}

func TestWeightedSkewed(t *testing.T) {
	// Heavily skewed distribution, like ingredient popularity: the top
	// ingredient dominates.
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = 1.0 / float64(i+1) / float64(i+1)
	}
	w, err := NewWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	s := New(17)
	const draws = 100000
	count0 := 0
	for i := 0; i < draws; i++ {
		if w.Sample(s) == 0 {
			count0++
		}
	}
	// Index 0 carries weight 1 of total ~pi^2/6 = 1.6449: expect ~60.8%.
	got := float64(count0) / draws
	if math.Abs(got-0.608) > 0.01 {
		t.Fatalf("head frequency %.4f want ~0.608", got)
	}
}

func TestWeightedPropertyDistributionPreserved(t *testing.T) {
	// Property: for random small weight vectors, empirical frequencies
	// converge to the normalized weights.
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true // skip, quick will try others
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			weights[i] = float64(r % 16)
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		w, err := NewWeighted(weights)
		if err != nil {
			return false
		}
		s := New(seed)
		const draws = 30000
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			counts[w.Sample(s)]++
		}
		for i := range weights {
			want := weights[i] / total
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	w, err := NewWeighted([]float64{5, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(19)
	for trial := 0; trial < 1000; trial++ {
		got := w.SampleDistinct(s, 3)
		if len(got) != 3 {
			t.Fatalf("want 3 distinct, got %d", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("duplicate %d in %v", v, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctZero(t *testing.T) {
	w, _ := NewWeighted([]float64{1, 1})
	if got := w.SampleDistinct(New(1), 0); got != nil {
		t.Fatalf("k=0 should return nil, got %v", got)
	}
}

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir[int](5, New(3))
	for i := 0; i < 3; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 3 {
		t.Fatalf("want 3 items before capacity, got %d", len(r.Items()))
	}
	for i := 3; i < 100; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 5 {
		t.Fatalf("want capacity 5, got %d", len(r.Items()))
	}
	if r.Seen() != 100 {
		t.Fatalf("want 100 seen, got %d", r.Seen())
	}
}

func TestReservoirUniform(t *testing.T) {
	// Each of 20 items should land in a size-5 reservoir with p=0.25.
	const trials = 20000
	counts := make([]int, 20)
	src := New(31)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](5, src)
		for i := 0; i < 20; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("item %d in reservoir with frequency %.3f, want 0.25", i, frac)
		}
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewReservoir[int](0, New(1))
}
