package classify

import (
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// FingerprintEntry is one distinctive ingredient of a region.
type FingerprintEntry struct {
	Ingredient flavor.ID
	// Prevalence is the fraction of the region's recipes using the
	// ingredient.
	Prevalence float64
	// Authenticity is prevalence minus the maximum prevalence of the
	// same ingredient in any other region (Ahn et al.'s authenticity);
	// positive values mark ingredients that characterize this cuisine.
	Authenticity float64
}

// Fingerprints computes, for each major region in the store, the k most
// authentic ingredients — the region's culinary fingerprint. Regions
// without recipes are omitted.
func Fingerprints(store *recipedb.Store, k int) map[recipedb.Region][]FingerprintEntry {
	regions := recipedb.MajorRegions()
	nItems := store.Catalog().Len()

	// prevalence[region][ingredient]
	prevalence := make(map[recipedb.Region][]float64, len(regions))
	for _, region := range regions {
		n := store.RegionLen(region)
		if n == 0 {
			continue
		}
		counts := make([]float64, nItems)
		store.ForEachInRegion(region, func(rec *recipedb.Recipe) {
			for _, id := range rec.Ingredients {
				counts[id]++
			}
		})
		for i := range counts {
			counts[i] /= float64(n)
		}
		prevalence[region] = counts
	}

	out := make(map[recipedb.Region][]FingerprintEntry, len(prevalence))
	for region, prev := range prevalence {
		entries := make([]FingerprintEntry, 0, nItems)
		for i := 0; i < nItems; i++ {
			if prev[i] == 0 {
				continue
			}
			maxOther := 0.0
			for other, oprev := range prevalence {
				if other == region {
					continue
				}
				if oprev[i] > maxOther {
					maxOther = oprev[i]
				}
			}
			entries = append(entries, FingerprintEntry{
				Ingredient:   flavor.ID(i),
				Prevalence:   prev[i],
				Authenticity: prev[i] - maxOther,
			})
		}
		sort.Slice(entries, func(a, b int) bool {
			if entries[a].Authenticity != entries[b].Authenticity {
				return entries[a].Authenticity > entries[b].Authenticity
			}
			return entries[a].Ingredient < entries[b].Ingredient
		})
		if k < len(entries) {
			entries = entries[:k]
		}
		out[region] = entries
	}
	return out
}
