// Package classify identifies the cuisine of an ingredient list — the
// operational form of the paper's 'culinary fingerprints' (§I, [8]): if
// cuisines really have non-random signature ingredient combinations, a
// classifier trained on ingredient bags should recover the region of a
// held-out recipe far above chance. The package provides a multinomial
// naive Bayes classifier, deterministic train/test splitting,
// evaluation (accuracy, confusion, per-region precision/recall/F1) and
// distinctive-ingredient fingerprint extraction.
package classify

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
)

// Training errors.
var (
	// ErrNoData marks training sets with no usable recipes.
	ErrNoData = errors.New("classify: no training data")
	// ErrUntrained is returned by Predict before Train.
	ErrUntrained = errors.New("classify: classifier is not trained")
)

// Classifier is a multinomial naive Bayes cuisine model over ingredient
// occurrences. Immutable after Train; safe for concurrent Predict.
type Classifier struct {
	// Alpha is the Laplace smoothing pseudo-count (default 1).
	Alpha float64

	regions   []recipedb.Region
	regionIdx map[recipedb.Region]int
	logPrior  []float64
	// logLik[r][i] is log P(ingredient i | region r).
	logLik  [][]float64
	nItems  int
	trained bool
}

// New returns an untrained classifier with default smoothing.
func New() *Classifier { return &Classifier{Alpha: 1} }

// Train fits the model on the given recipe IDs of the store. Every
// region present in the training set becomes a class; at least two
// classes are required (a one-region corpus has nothing to
// discriminate). Training reads the corpus under one read epoch.
func (c *Classifier) Train(store *recipedb.Store, recipeIDs []int) error {
	var err error
	store.Read(func(v *recipedb.View) { err = c.TrainView(v, recipeIDs) })
	return err
}

// TrainView is Train against an already-held corpus view — the entry
// point for background rebuilds that must pin one (version, snapshot)
// pair across the whole fit.
func (c *Classifier) TrainView(v *recipedb.View, recipeIDs []int) error {
	if c.Alpha <= 0 {
		return fmt.Errorf("classify: Alpha %g must be positive", c.Alpha)
	}
	nItems := v.Catalog().Len()
	counts := make(map[recipedb.Region][]int)
	docCount := make(map[recipedb.Region]int)
	total := 0
	for _, rid := range recipeIDs {
		rec := v.Recipe(rid)
		row := counts[rec.Region]
		if row == nil {
			row = make([]int, nItems)
			counts[rec.Region] = row
		}
		for _, id := range rec.Ingredients {
			row[id]++
		}
		docCount[rec.Region]++
		total++
	}
	if total == 0 {
		return ErrNoData
	}
	if len(counts) < 2 {
		return fmt.Errorf("%w: need >= 2 regions to discriminate, have %d", ErrNoData, len(counts))
	}

	c.regions = make([]recipedb.Region, 0, len(counts))
	for r := range counts {
		c.regions = append(c.regions, r)
	}
	sort.Slice(c.regions, func(i, j int) bool { return c.regions[i] < c.regions[j] })
	c.regionIdx = make(map[recipedb.Region]int, len(c.regions))
	c.logPrior = make([]float64, len(c.regions))
	c.logLik = make([][]float64, len(c.regions))
	c.nItems = nItems

	for ri, region := range c.regions {
		c.regionIdx[region] = ri
		c.logPrior[ri] = math.Log(float64(docCount[region]) / float64(total))
		row := counts[region]
		sum := 0
		for _, n := range row {
			sum += n
		}
		denom := float64(sum) + c.Alpha*float64(nItems)
		lik := make([]float64, nItems)
		for i, n := range row {
			lik[i] = math.Log((float64(n) + c.Alpha) / denom)
		}
		c.logLik[ri] = lik
	}
	c.trained = true
	return nil
}

// Regions returns the classes the model was trained on, sorted.
func (c *Classifier) Regions() []recipedb.Region {
	return append([]recipedb.Region(nil), c.regions...)
}

// Prediction is one region with its log-posterior (up to the shared
// evidence constant) and normalized probability.
type Prediction struct {
	Region recipedb.Region
	// LogPosterior is log P(region) + Σ log P(ingredient | region).
	LogPosterior float64
	// Probability is the softmax-normalized posterior across classes.
	Probability float64
}

// Predict scores an ingredient list against every class and returns
// predictions sorted by decreasing posterior.
func (c *Classifier) Predict(ids []flavor.ID) ([]Prediction, error) {
	if !c.trained {
		return nil, ErrUntrained
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: empty ingredient list", ErrNoData)
	}
	preds := make([]Prediction, len(c.regions))
	for ri, region := range c.regions {
		lp := c.logPrior[ri]
		for _, id := range ids {
			if int(id) < 0 || int(id) >= c.nItems {
				return nil, fmt.Errorf("classify: ingredient ID %d outside catalog", id)
			}
			lp += c.logLik[ri][id]
		}
		preds[ri] = Prediction{Region: region, LogPosterior: lp}
	}
	// Softmax with max-shift for numerical stability.
	maxLP := math.Inf(-1)
	for _, p := range preds {
		if p.LogPosterior > maxLP {
			maxLP = p.LogPosterior
		}
	}
	var z float64
	for i := range preds {
		preds[i].Probability = math.Exp(preds[i].LogPosterior - maxLP)
		z += preds[i].Probability
	}
	for i := range preds {
		preds[i].Probability /= z
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].LogPosterior != preds[j].LogPosterior {
			return preds[i].LogPosterior > preds[j].LogPosterior
		}
		return preds[i].Region < preds[j].Region
	})
	return preds, nil
}

// PredictRegion returns only the argmax region.
func (c *Classifier) PredictRegion(ids []flavor.ID) (recipedb.Region, error) {
	preds, err := c.Predict(ids)
	if err != nil {
		return 0, err
	}
	return preds[0].Region, nil
}

// Split partitions the store's major-region recipes into train and test
// ID sets with the given held-out fraction, deterministically per seed.
// The split is stratified per region so small regions keep test
// representation.
func Split(store *recipedb.Store, testFraction float64, seed uint64) (train, test []int, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("classify: test fraction %g outside (0,1)", testFraction)
	}
	src := rng.New(seed)
	for _, region := range recipedb.MajorRegions() {
		ids := append([]int(nil), store.RegionRecipes(region)...)
		if len(ids) == 0 {
			continue
		}
		src.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		cut := int(float64(len(ids)) * testFraction)
		if cut == 0 && len(ids) > 1 {
			cut = 1
		}
		test = append(test, ids[:cut]...)
		train = append(train, ids[cut:]...)
	}
	if len(train) == 0 || len(test) == 0 {
		return nil, nil, ErrNoData
	}
	sort.Ints(train)
	sort.Ints(test)
	return train, test, nil
}

// Evaluation summarizes classifier performance on a labeled test set.
type Evaluation struct {
	// Accuracy is the overall fraction of correct argmax predictions.
	Accuracy float64
	// Total is the number of evaluated recipes.
	Total int
	// Confusion[trueRegion][predictedRegion] counts outcomes.
	Confusion map[recipedb.Region]map[recipedb.Region]int
	// PerRegion holds per-class metrics, keyed by region.
	PerRegion map[recipedb.Region]ClassMetrics
	// MajorityBaseline is the accuracy of always predicting the most
	// common training class — the bar the model must clear.
	MajorityBaseline float64
}

// ClassMetrics are one-vs-rest precision/recall/F1 for a region.
type ClassMetrics struct {
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// Evaluate runs the classifier over test recipe IDs.
func Evaluate(c *Classifier, store *recipedb.Store, testIDs []int) (*Evaluation, error) {
	if !c.trained {
		return nil, ErrUntrained
	}
	ev := &Evaluation{
		Confusion: make(map[recipedb.Region]map[recipedb.Region]int),
		PerRegion: make(map[recipedb.Region]ClassMetrics),
	}
	correct := 0
	trueCount := make(map[recipedb.Region]int)
	predCount := make(map[recipedb.Region]int)
	hit := make(map[recipedb.Region]int)
	for _, rid := range testIDs {
		rec := store.Recipe(rid)
		pred, err := c.PredictRegion(rec.Ingredients)
		if err != nil {
			return nil, fmt.Errorf("classify: recipe %d: %w", rid, err)
		}
		row := ev.Confusion[rec.Region]
		if row == nil {
			row = make(map[recipedb.Region]int)
			ev.Confusion[rec.Region] = row
		}
		row[pred]++
		trueCount[rec.Region]++
		predCount[pred]++
		if pred == rec.Region {
			correct++
			hit[rec.Region]++
		}
		ev.Total++
	}
	if ev.Total == 0 {
		return nil, ErrNoData
	}
	ev.Accuracy = float64(correct) / float64(ev.Total)

	// Majority baseline from training priors: the class with the
	// largest prior, scored against the test distribution.
	best := 0
	for ri := range c.logPrior {
		if c.logPrior[ri] > c.logPrior[best] {
			best = ri
		}
	}
	ev.MajorityBaseline = float64(trueCount[c.regions[best]]) / float64(ev.Total)

	for region, support := range trueCount {
		m := ClassMetrics{Support: support}
		if predCount[region] > 0 {
			m.Precision = float64(hit[region]) / float64(predCount[region])
		}
		m.Recall = float64(hit[region]) / float64(support)
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		ev.PerRegion[region] = m
	}
	return ev, nil
}
