package classify

import (
	"errors"
	"math"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/synth"
)

// syntheticStore is a shared 5%-scale synthetic corpus (built directly
// rather than through the experiments package, which imports classify).
var syntheticStore = func() *recipedb.Store {
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	cfg := synth.TestConfig()
	store, err := synth.Generate(pairing.NewAnalyzer(catalog), cfg)
	if err != nil {
		panic(err)
	}
	return store
}()

// handStore builds a tiny corpus with extremely separable cuisines.
func handStore(t *testing.T) (*recipedb.Store, []int) {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := recipedb.NewStore(catalog)
	ids := func(names ...string) []flavor.ID {
		out := make([]flavor.ID, len(names))
		for i, n := range names {
			id, ok := catalog.Lookup(n)
			if !ok {
				t.Fatalf("catalog lacks %q", n)
			}
			out[i] = id
		}
		return out
	}
	var all []int
	add := func(region recipedb.Region, names ...string) {
		id, err := store.Add("r", region, recipedb.AllRecipes, ids(names...))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, id)
	}
	// Italy: tomato/basil/olive oil world.
	add(recipedb.Italy, "tomato", "basil", "olive oil", "garlic")
	add(recipedb.Italy, "tomato", "mozzarella", "basil")
	add(recipedb.Italy, "olive oil", "garlic", "parsley", "tomato")
	// Japan: soy/miso/seaweed world.
	add(recipedb.Japan, "soy sauce", "ginger", "scallion", "tofu")
	add(recipedb.Japan, "seaweed", "soy sauce", "sesame seed")
	add(recipedb.Japan, "tofu", "scallion", "seaweed", "soy sauce")
	return store, all
}

func TestTrainPredictSeparableCuisines(t *testing.T) {
	store, all := handStore(t)
	c := New()
	if err := c.Train(store, all); err != nil {
		t.Fatalf("Train: %v", err)
	}
	catalog := store.Catalog()
	lookup := func(n string) flavor.ID {
		id, ok := catalog.Lookup(n)
		if !ok {
			t.Fatalf("lookup %q", n)
		}
		return id
	}
	italian := []flavor.ID{lookup("tomato"), lookup("basil"), lookup("garlic")}
	japanese := []flavor.ID{lookup("soy sauce"), lookup("tofu"), lookup("ginger")}

	if r, err := c.PredictRegion(italian); err != nil || r != recipedb.Italy {
		t.Errorf("italian ingredients predicted %v (err %v)", r, err)
	}
	if r, err := c.PredictRegion(japanese); err != nil || r != recipedb.Japan {
		t.Errorf("japanese ingredients predicted %v (err %v)", r, err)
	}
}

func TestPredictProbabilitiesNormalized(t *testing.T) {
	store, all := handStore(t)
	c := New()
	if err := c.Train(store, all); err != nil {
		t.Fatal(err)
	}
	id, _ := store.Catalog().Lookup("tomato")
	preds, err := c.Predict([]flavor.ID{id})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range preds {
		if p.Probability < 0 || p.Probability > 1 {
			t.Errorf("probability %g outside [0,1]", p.Probability)
		}
		sum += p.Probability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].LogPosterior > preds[i-1].LogPosterior {
			t.Error("predictions not sorted by posterior")
		}
	}
}

func TestPredictErrors(t *testing.T) {
	c := New()
	if _, err := c.Predict([]flavor.ID{1}); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained Predict err = %v", err)
	}
	store, all := handStore(t)
	if err := c.Train(store, all); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(nil); err == nil {
		t.Error("empty Predict succeeded")
	}
	if _, err := c.Predict([]flavor.ID{flavor.ID(store.Catalog().Len() + 5)}); err == nil {
		t.Error("out-of-catalog Predict succeeded")
	}
}

func TestTrainValidation(t *testing.T) {
	store, all := handStore(t)
	c := New()
	c.Alpha = 0
	if err := c.Train(store, all); err == nil {
		t.Error("Alpha=0 Train succeeded")
	}
	c = New()
	if err := c.Train(store, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty Train err = %v", err)
	}
}

func TestSplitDeterministicAndStratified(t *testing.T) {
	store := syntheticStore
	train1, test1, err := Split(store, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	train2, test2, err := Split(store, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train1) != len(train2) || len(test1) != len(test2) {
		t.Fatal("split is not deterministic in sizes")
	}
	for i := range test1 {
		if test1[i] != test2[i] {
			t.Fatal("split is not deterministic in membership")
		}
	}
	major := 0
	for _, region := range recipedb.MajorRegions() {
		major += store.RegionLen(region)
	}
	if len(train1)+len(test1) != major {
		t.Errorf("split loses recipes: %d + %d != %d major-region recipes", len(train1), len(test1), major)
	}
	// No overlap.
	seen := make(map[int]bool, len(train1))
	for _, id := range train1 {
		seen[id] = true
	}
	for _, id := range test1 {
		if seen[id] {
			t.Fatalf("recipe %d in both splits", id)
		}
	}
	// Stratification: every major region with recipes appears in test.
	inTest := make(map[recipedb.Region]bool)
	for _, id := range test1 {
		inTest[store.Recipe(id).Region] = true
	}
	for _, region := range recipedb.MajorRegions() {
		if store.RegionLen(region) > 1 && !inTest[region] {
			t.Errorf("region %v missing from test split", region)
		}
	}
	// A different seed gives a different split.
	_, test3, err := Split(store, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := len(test3) == len(test1)
	if same {
		for i := range test1 {
			if test1[i] != test3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical splits")
	}
}

func TestSplitValidation(t *testing.T) {
	store := syntheticStore
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := Split(store, frac, 1); err == nil {
			t.Errorf("Split(frac=%g) succeeded", frac)
		}
	}
}

func TestEvaluateOnSyntheticCorpus(t *testing.T) {
	store := syntheticStore
	train, test, err := Split(store, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := c.Train(store, train); err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(c, store, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total != len(test) {
		t.Errorf("Total = %d, want %d", ev.Total, len(test))
	}
	if ev.Accuracy <= ev.MajorityBaseline {
		t.Errorf("accuracy %.3f does not beat majority baseline %.3f — no culinary fingerprint signal",
			ev.Accuracy, ev.MajorityBaseline)
	}
	// Confusion rows sum to per-region support.
	for region, row := range ev.Confusion {
		sum := 0
		for _, n := range row {
			sum += n
		}
		if sum != ev.PerRegion[region].Support {
			t.Errorf("confusion row %v sums to %d, support %d", region, sum, ev.PerRegion[region].Support)
		}
	}
	// Metrics are within [0,1].
	for region, m := range ev.PerRegion {
		for name, v := range map[string]float64{"precision": m.Precision, "recall": m.Recall, "f1": m.F1} {
			if v < 0 || v > 1 {
				t.Errorf("%v %s = %g", region, name, v)
			}
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	store, all := handStore(t)
	c := New()
	if _, err := Evaluate(c, store, all); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained Evaluate err = %v", err)
	}
	if err := c.Train(store, all); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(c, store, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty Evaluate err = %v", err)
	}
}

func TestFingerprintsAuthenticity(t *testing.T) {
	store, _ := handStore(t)
	fp := Fingerprints(store, 3)
	if len(fp) != 2 {
		t.Fatalf("fingerprinted regions = %d, want 2", len(fp))
	}
	catalog := store.Catalog()
	// Italy's top fingerprint must be an ingredient absent from Japan
	// (authenticity == prevalence).
	ita := fp[recipedb.Italy]
	if len(ita) != 3 {
		t.Fatalf("Italy fingerprint size = %d", len(ita))
	}
	top := ita[0]
	if top.Authenticity <= 0 {
		t.Errorf("Italy top authenticity = %g", top.Authenticity)
	}
	name := catalog.Ingredient(top.Ingredient).Name
	if name != "tomato" && name != "olive oil" && name != "basil" && name != "garlic" && name != "mozzarella" && name != "parsley" {
		t.Errorf("unexpected Italy fingerprint %q", name)
	}
	// Entries sorted by authenticity.
	for i := 1; i < len(ita); i++ {
		if ita[i].Authenticity > ita[i-1].Authenticity {
			t.Error("fingerprint not sorted")
		}
	}
	// Prevalences are valid fractions.
	for _, entries := range fp {
		for _, e := range entries {
			if e.Prevalence <= 0 || e.Prevalence > 1 {
				t.Errorf("prevalence %g outside (0,1]", e.Prevalence)
			}
			if e.Authenticity > e.Prevalence {
				t.Errorf("authenticity %g exceeds prevalence %g", e.Authenticity, e.Prevalence)
			}
		}
	}
}

func TestFingerprintsOnSyntheticCorpusSpiceRegions(t *testing.T) {
	// The synthetic corpus calibrates INSC as spice-heavy (Fig 2); its
	// fingerprint should be dominated by positive-authenticity entries.
	fp := Fingerprints(syntheticStore, 5)
	insc := fp[recipedb.IndianSubcontinent]
	if len(insc) == 0 {
		t.Fatal("no INSC fingerprint")
	}
	if insc[0].Authenticity <= 0 {
		t.Errorf("INSC top authenticity = %g, want positive", insc[0].Authenticity)
	}
}
