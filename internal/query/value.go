package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the runtime type of a Value.
type Kind int

// Value kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

// Value is a dynamically typed scalar flowing through the evaluator.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Convenience constructors.
func intVal(v int64) Value     { return Value{Kind: KindInt, Int: v} }
func floatVal(v float64) Value { return Value{Kind: KindFloat, Float: v} }
func stringVal(v string) Value { return Value{Kind: KindString, Str: v} }
func boolVal(v bool) Value     { return Value{Kind: KindBool, Bool: v} }

// String renders the value for result tables.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', 6, 64)
	case KindString:
		return v.Str
	case KindBool:
		return strconv.FormatBool(v.Bool)
	}
	return "?"
}

// asFloat widens numeric values; ok is false for strings/bools.
func (v Value) asFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	}
	return 0, false
}

// compare applies a comparison operator to two values. Numeric kinds
// compare numerically; strings compare case-insensitively for equality
// and lexically otherwise; "like" is case-insensitive substring match.
func compare(op string, l, r Value) (bool, error) {
	if op == "like" {
		if l.Kind != KindString || r.Kind != KindString {
			return false, fmt.Errorf("query: LIKE needs string operands, got %v and %v", l.Kind, r.Kind)
		}
		return strings.Contains(strings.ToLower(l.Str), strings.ToLower(r.Str)), nil
	}
	if lf, lok := l.asFloat(); lok {
		rf, rok := r.asFloat()
		if !rok {
			return false, fmt.Errorf("query: cannot compare number with %s", r.kindName())
		}
		switch op {
		case "=":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
		return false, fmt.Errorf("query: unknown operator %q", op)
	}
	if l.Kind == KindString && r.Kind == KindString {
		ls, rs := strings.ToLower(l.Str), strings.ToLower(r.Str)
		switch op {
		case "=":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
		return false, fmt.Errorf("query: unknown operator %q", op)
	}
	if l.Kind == KindBool && r.Kind == KindBool {
		switch op {
		case "=":
			return l.Bool == r.Bool, nil
		case "!=":
			return l.Bool != r.Bool, nil
		}
		return false, fmt.Errorf("query: operator %q not defined on booleans", op)
	}
	return false, fmt.Errorf("query: cannot compare %s with %s", l.kindName(), r.kindName())
}

func (v Value) kindName() string {
	switch v.Kind {
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "boolean"
	}
	return "unknown"
}

// less orders values for ORDER BY: numerics numerically, strings
// lexically, booleans false<true; mixed numeric kinds widen to float.
func less(l, r Value) bool {
	if lf, ok := l.asFloat(); ok {
		if rf, ok := r.asFloat(); ok {
			return lf < rf
		}
	}
	if l.Kind == KindString && r.Kind == KindString {
		return l.Str < r.Str
	}
	if l.Kind == KindBool && r.Kind == KindBool {
		return !l.Bool && r.Bool
	}
	// Incomparable kinds order by kind for determinism.
	return l.Kind < r.Kind
}
