package query

import (
	"container/list"
	"strings"
	"sync"
)

// DefaultPlanCacheCapacity bounds the engine's plan cache. Dashboards
// replay a small set of hot statements, so a few hundred entries cover
// the working set while bounding memory.
const DefaultPlanCacheCapacity = 256

// cachedPlan is one fully-front-loaded statement: the parse tree plus
// the bound expression (function arguments resolved to catalog IDs and
// score usage checked). Both are immutable after construction — the
// executor never mutates them — so one cached plan serves concurrent
// Runs.
type cachedPlan struct {
	key string
	q   *Query
	c   *compiledExpr
}

// planCache is a mutex-guarded LRU keyed by normalized statement text.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	hits    int64
	misses  int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

// get returns the cached plan for key, promoting it to most recent.
func (pc *planCache) get(key string) (*cachedPlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	pc.lru.MoveToFront(el)
	return el.Value.(*cachedPlan), true
}

// put inserts a plan, evicting the least recently used entry at
// capacity.
func (pc *planCache) put(p *cachedPlan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[p.key]; ok {
		el.Value = p
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[p.key] = pc.lru.PushFront(p)
	for pc.lru.Len() > pc.cap {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*cachedPlan).key)
	}
}

// CacheStats reports plan-cache effectiveness counters.
type CacheStats struct {
	// Hits counts Run calls that skipped Parse+bind.
	Hits int64
	// Misses counts Run calls that planned from scratch.
	Misses int64
	// Entries is the current cache population.
	Entries int
	// Capacity is the eviction bound.
	Capacity int
}

func (pc *planCache) stats() CacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return CacheStats{
		Hits:     pc.hits,
		Misses:   pc.misses,
		Entries:  pc.lru.Len(),
		Capacity: pc.cap,
	}
}

// normalizeStatement canonicalizes whitespace outside string literals
// so trivially reformatted statements share a cache slot. Quoted spans
// ('...' or "...", doubled-quote escapes included) are copied verbatim
// — collapsing whitespace inside a literal would alias semantically
// distinct statements onto one cache key. Case is preserved
// throughout: only the lexer knows which words are keywords.
func normalizeStatement(input string) string {
	var b strings.Builder
	b.Grow(len(input))
	var quote byte // nonzero while inside a literal opened by this char
	pendingSpace := false
	for i := 0; i < len(input); i++ {
		c := input[i]
		if quote != 0 {
			b.WriteByte(c)
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r', '\v', '\f':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			b.WriteByte(c)
			if c == '\'' || c == '"' {
				quote = c
			}
		}
	}
	return b.String()
}
