package query

import (
	"strings"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/synth"
)

// newMutableEngine builds a fresh corpus (never shared — tests mutate
// it) and an engine with the result cache enabled.
func newMutableEngine(t testing.TB, cacheBytes int64) (*Engine, *recipedb.Store) {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	analyzer := pairing.NewAnalyzer(catalog)
	store, err := synth.Generate(analyzer, synth.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(store, analyzer)
	e.EnableResultCache(cacheBytes)
	return e, store
}

// mutateOnce re-upserts recipe 0 with its own contents: a semantic
// no-op that still bumps the corpus version.
func mutateOnce(t testing.TB, store *recipedb.Store) {
	t.Helper()
	rec := store.Recipe(0)
	if _, _, _, err := store.Upsert(0, rec.Name, rec.Region, rec.Source, rec.Ingredients); err != nil {
		t.Fatal(err)
	}
}

func TestResultCacheHitReturnsSharedResult(t *testing.T) {
	e, _ := newMutableEngine(t, 1<<20)
	const stmt = "SELECT region, count(*) FROM recipes GROUP BY region"
	first, err := e.Run(stmt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second Run did not return the cached *Result")
	}
	st := e.ResultCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Whitespace-normalized replays share the entry.
	if _, err := e.Run("  SELECT   region, count(*)\n\tFROM recipes GROUP BY region "); err != nil {
		t.Fatal(err)
	}
	if st = e.ResultCacheStats(); st.Hits != 2 {
		t.Errorf("normalized replay missed: %+v", st)
	}
}

func TestResultCacheVersionFencing(t *testing.T) {
	e, store := newMutableEngine(t, 1<<20)
	const stmt = "SELECT count(*) FROM recipes"
	before, err := e.Run(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if before.Version != store.Version() {
		t.Fatalf("result version %d, store %d", before.Version, store.Version())
	}
	mutateOnce(t, store)
	after, err := e.Run(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("stale result served after version bump")
	}
	if after.Version != store.Version() {
		t.Errorf("recomputed result carries version %d, store %d", after.Version, store.Version())
	}
	st := e.ResultCacheStats()
	if st.Invalidated != 1 {
		t.Errorf("lazy invalidation not counted: %+v", st)
	}
	// The real invalidation test: a delete must change the answer.
	if _, err := store.Remove(1); err != nil {
		t.Fatal(err)
	}
	final, err := e.Run(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if final.Rows[0][0].Int != after.Rows[0][0].Int-1 {
		t.Errorf("count after delete = %d, want %d", final.Rows[0][0].Int, after.Rows[0][0].Int-1)
	}
}

func TestResultCacheByteBoundEvicts(t *testing.T) {
	e, _ := newMutableEngine(t, 1) // floor-less tiny budget via direct cache
	// Replace with a cache sized to hold roughly two small results.
	probe, err := e.Run("SELECT count(*) FROM recipes")
	if err != nil {
		t.Fatal(err)
	}
	one := resultBytes(normalizeStatement("SELECT count(*) FROM recipes"), probe)
	e.results = newResultCache(2*one + one/2)

	stmts := []string{
		"SELECT count(*) FROM recipes",
		"SELECT count(*) FROM recipes WHERE size > 3",
		"SELECT count(*) FROM recipes WHERE size > 4",
	}
	for _, s := range stmts {
		if _, err := e.Run(s); err != nil {
			t.Fatal(err)
		}
	}
	st := e.ResultCacheStats()
	if st.Entries > 2 {
		t.Errorf("byte bound ignored: %+v", st)
	}
	if st.Evicted == 0 {
		t.Errorf("no eviction counted: %+v", st)
	}
	if st.Bytes > st.Capacity {
		t.Errorf("bytes %d over capacity %d", st.Bytes, st.Capacity)
	}
}

func TestResultCacheRejectsOversizedResult(t *testing.T) {
	e, _ := newMutableEngine(t, 1<<20)
	e.results = newResultCache(128) // smaller than any full projection
	if _, err := e.Run("SELECT * FROM recipes LIMIT 50"); err != nil {
		t.Fatal(err)
	}
	st := e.ResultCacheStats()
	if st.Rejected != 1 || st.Entries != 0 {
		t.Errorf("oversized result not rejected: %+v", st)
	}
}

// TestResultCachePutKeepsNewerVersion pins the slow-writer guard: an
// execution that started before a mutation and finishes after a
// fresher result was cached must not clobber it (its entry could
// never be served, but the fresh one still can).
func TestResultCachePutKeepsNewerVersion(t *testing.T) {
	rc := newResultCache(1 << 20)
	newer := &Result{Version: 5}
	rc.put("k", 5, newer)
	rc.put("k", 4, &Result{Version: 4}) // slow execution finishing late
	if res, ok := rc.get("k", 5); !ok || res != newer {
		t.Fatalf("stale put clobbered fresher entry (ok=%v)", ok)
	}
	// Same-version replacement (two racing misses) still works.
	replacement := &Result{Version: 5}
	rc.put("k", 5, replacement)
	if res, ok := rc.get("k", 5); !ok || res != replacement {
		t.Fatalf("same-version put did not replace (ok=%v)", ok)
	}
}

func TestResultCacheDisabledEngineUnaffected(t *testing.T) {
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	analyzer := pairing.NewAnalyzer(catalog)
	store, err := synth.Generate(analyzer, synth.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(store, analyzer)
	if _, err := e.Run("SELECT count(*) FROM recipes"); err != nil {
		t.Fatal(err)
	}
	st := e.ResultCacheStats()
	if st.Enabled || st.Hits+st.Misses != 0 {
		t.Errorf("disabled cache reports activity: %+v", st)
	}
}

// TestResultCacheErrorsNotCached checks statements that fail stay
// uncached and do not corrupt counters.
func TestResultCacheErrorsNotCached(t *testing.T) {
	e, _ := newMutableEngine(t, 1<<20)
	if _, err := e.Run("SELECT bogus FROM recipes"); err == nil {
		t.Fatal("bad statement accepted")
	}
	st := e.ResultCacheStats()
	if st.Entries != 0 || st.Misses != 1 {
		t.Errorf("stats after failed Run: %+v", st)
	}
	if _, err := e.Run("SELECT nope FROM recipes WHERE has('no-such-ingredient-xyz')"); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("bind failure expected, got %v", err)
	}
	if st = e.ResultCacheStats(); st.Entries != 0 {
		t.Errorf("failed statement cached: %+v", st)
	}
}
