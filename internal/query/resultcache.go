package query

import (
	"container/list"
	"sync"
)

// DefaultResultCacheBytes is the byte budget commands use for the
// result cache unless a flag overrides it.
const DefaultResultCacheBytes = 16 << 20

// cachedResult is one materialized result, fenced by the corpus
// version it was computed at. The Result is shared with every hit, so
// callers must treat it as immutable (Run's contract).
type cachedResult struct {
	key     string // normalized statement
	version uint64
	res     *Result
	size    int64 // resultBytes estimate, fixed at insert
}

// resultCache is a byte-bounded LRU keyed by normalized statement
// text, version-fenced against the corpus. At most one entry per
// statement is kept — an entry computed at an older corpus version can
// never be served again, so the first probe after a version bump drops
// it (lazy invalidation) and recomputes. Entries for statements that
// stop being asked age out through the LRU bound instead of an eager
// sweep: a version bump costs O(1), not O(entries).
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used

	hits        int64
	misses      int64
	evicted     int64 // dropped by the byte bound
	invalidated int64 // stale-version entries dropped on probe
	rejected    int64 // results larger than the whole budget
}

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultResultCacheBytes
	}
	return &resultCache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// get returns the cached result for (key, version). A same-key entry
// at any other version is dead — its version can never recur — so it
// is evicted on the spot and the probe counts as a miss.
func (rc *resultCache) get(key string, version uint64) (*Result, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.entries[key]
	if !ok {
		rc.misses++
		return nil, false
	}
	e := el.Value.(*cachedResult)
	if e.version != version {
		rc.removeLocked(el, e)
		rc.invalidated++
		rc.misses++
		return nil, false
	}
	rc.hits++
	rc.lru.MoveToFront(el)
	return e.res, true
}

// put inserts a result computed at version, evicting least recently
// used entries until the byte budget holds. Oversized results are not
// cached at all.
func (rc *resultCache) put(key string, version uint64, res *Result) {
	size := resultBytes(key, res)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if size > rc.maxBytes {
		rc.rejected++
		return
	}
	if el, ok := rc.entries[key]; ok { // racing Run of the same statement
		e := el.Value.(*cachedResult)
		if e.version > version {
			// A slow execution finishing after a mutation must not
			// clobber the fresher result (versions are monotonic).
			return
		}
		rc.removeLocked(el, e)
	}
	e := &cachedResult{key: key, version: version, res: res, size: size}
	rc.entries[key] = rc.lru.PushFront(e)
	rc.bytes += size
	for rc.bytes > rc.maxBytes {
		oldest := rc.lru.Back()
		rc.removeLocked(oldest, oldest.Value.(*cachedResult))
		rc.evicted++
	}
}

// removeLocked unlinks one entry; callers hold rc.mu.
func (rc *resultCache) removeLocked(el *list.Element, e *cachedResult) {
	rc.lru.Remove(el)
	delete(rc.entries, e.key)
	rc.bytes -= e.size
}

// ResultCacheStats reports result-cache effectiveness counters.
type ResultCacheStats struct {
	// Enabled reports whether the engine has a result cache at all.
	Enabled bool
	// Hits counts Runs served without touching plan or corpus.
	Hits int64
	// Misses counts probes that had to execute (including probes that
	// found only a stale-version entry).
	Misses int64
	// Entries is the current cache population.
	Entries int
	// Bytes is the estimated memory the cached results occupy.
	Bytes int64
	// Capacity is the byte budget.
	Capacity int64
	// Evicted counts entries dropped by the byte bound.
	Evicted int64
	// Invalidated counts stale-version entries dropped lazily on probe
	// after a corpus mutation.
	Invalidated int64
	// Rejected counts results too large to cache at all.
	Rejected int64
}

func (rc *resultCache) stats() ResultCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultCacheStats{
		Enabled:     true,
		Hits:        rc.hits,
		Misses:      rc.misses,
		Entries:     rc.lru.Len(),
		Bytes:       rc.bytes,
		Capacity:    rc.maxBytes,
		Evicted:     rc.evicted,
		Invalidated: rc.invalidated,
		Rejected:    rc.rejected,
	}
}

// resultBytes estimates the resident size of one cached result: the
// key, the column headers, and per row the slice header plus each
// Value's struct and string payload. Close enough to bound memory; the
// budget is a limit on estimated, not measured, bytes.
func resultBytes(key string, res *Result) int64 {
	const (
		entryOverhead = 96 // cachedResult + map/list bookkeeping
		valueSize     = 48 // Value struct
		sliceHeader   = 24
	)
	n := int64(entryOverhead + len(key))
	for _, c := range res.Columns {
		n += sliceHeader + int64(len(c))
	}
	for _, row := range res.Rows {
		n += sliceHeader + int64(len(row))*valueSize
		for _, v := range row {
			n += int64(len(v.Str))
		}
	}
	return n
}
