package query

import (
	"strconv"
	"strings"
)

// String renders the query back to CQL text. The printed form is
// canonical: parsing it yields a query that prints identically
// (print∘parse is a fixpoint), the property FuzzParseStatement leans
// on. Keywords print uppercase, fields and functions lowercase, every
// AND/OR group fully parenthesized so precedence survives re-parsing.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Explain {
		sb.WriteString("EXPLAIN ")
	}
	sb.WriteString("SELECT ")
	for i, it := range q.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Agg == nil && it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Label())
	}
	sb.WriteString(" FROM recipes")
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		printExpr(&sb, q.Where)
	}
	if q.GroupBy != nil {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(q.GroupBy.String())
	}
	if q.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(q.OrderBy)
		if q.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(q.Limit))
	}
	return sb.String()
}

// printExpr renders one expression node.
func printExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *BinaryExpr:
		sb.WriteString("(")
		printExpr(sb, x.L)
		sb.WriteString(" ")
		sb.WriteString(strings.ToUpper(x.Op))
		sb.WriteString(" ")
		printExpr(sb, x.R)
		sb.WriteString(")")
	case *NotExpr:
		sb.WriteString("NOT ")
		printExpr(sb, x.X)
	case *CompareExpr:
		printExpr(sb, x.L)
		if x.Op == "like" {
			sb.WriteString(" LIKE ")
		} else {
			sb.WriteString(" " + x.Op + " ")
		}
		printExpr(sb, x.R)
	case *FieldExpr:
		sb.WriteString(x.Field.String())
	case *LiteralExpr:
		printValue(sb, x.Val)
	case *FuncExpr:
		sb.WriteString(x.Name)
		sb.WriteString("(")
		printString(sb, x.Arg)
		sb.WriteString(")")
	case *InExpr:
		printExpr(sb, x.X)
		if x.Negate {
			sb.WriteString(" NOT IN (")
		} else {
			sb.WriteString(" IN (")
		}
		for i, v := range x.Values {
			if i > 0 {
				sb.WriteString(", ")
			}
			printValue(sb, v)
		}
		sb.WriteString(")")
	}
}

// printValue renders a literal so the lexer reads it back as the same
// token class — except that a whole float prints as its integer form,
// which the canonical-fixpoint property absorbs (the reprint is then
// already integer).
func printValue(sb *strings.Builder, v Value) {
	switch v.Kind {
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.Int, 10))
	case KindFloat:
		// 'f' keeps the text within the lexer's digits-and-dot number
		// grammar (no exponent).
		sb.WriteString(strconv.FormatFloat(v.Float, 'f', -1, 64))
	case KindString:
		printString(sb, v.Str)
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.Bool))
	}
}

// printString quotes a string literal, escaping quotes by doubling.
func printString(sb *strings.Builder, s string) {
	sb.WriteString("'")
	sb.WriteString(strings.ReplaceAll(s, "'", "''"))
	sb.WriteString("'")
}
