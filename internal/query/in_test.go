package query

import "testing"

func TestInList(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE region IN ('ITA', 'JPN')")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	res = f.mustRun(t, "SELECT name FROM recipes WHERE region NOT IN ('ITA', 'JPN')")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "chana masala" {
		t.Fatalf("NOT IN rows = %v", res.Rows)
	}
	// Numeric IN lists.
	res = f.mustRun(t, "SELECT name FROM recipes WHERE size IN (3, 9)")
	if len(res.Rows) != 3 { // aglio (3), miso (3), chana (9)
		t.Fatalf("size IN rows = %d, want 3", len(res.Rows))
	}
	// IN composes with other predicates.
	res = f.mustRun(t, "SELECT name FROM recipes WHERE region IN ('ITA') AND has('basil')")
	if len(res.Rows) != 2 {
		t.Fatalf("composed rows = %d, want 2", len(res.Rows))
	}
	// Case-insensitive string membership, matching '=' semantics.
	res = f.mustRun(t, "SELECT name FROM recipes WHERE region IN ('ita')")
	if len(res.Rows) != 3 {
		t.Fatalf("lowercase IN rows = %d, want 3", len(res.Rows))
	}
}

func TestInListPrefixNotStillWorks(t *testing.T) {
	// Prefix NOT applied to a parenthesized IN keeps its meaning.
	f := newFixture(t)
	a := f.mustRun(t, "SELECT name FROM recipes WHERE NOT (region IN ('ITA'))")
	b := f.mustRun(t, "SELECT name FROM recipes WHERE region NOT IN ('ITA')")
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("NOT (IN) %d rows != NOT IN %d rows", len(a.Rows), len(b.Rows))
	}
}

func TestInListErrors(t *testing.T) {
	f := newFixture(t)
	cases := []string{
		"SELECT name FROM recipes WHERE region IN ()",            // empty list
		"SELECT name FROM recipes WHERE region IN ('ITA',)",      // trailing comma
		"SELECT name FROM recipes WHERE region IN 'ITA'",         // missing parens
		"SELECT name FROM recipes WHERE region IN ('ITA' 'JPN')", // missing comma
		"SELECT name FROM recipes WHERE region IN (name)",        // non-literal
		"SELECT name FROM recipes WHERE size IN ('three')",       // type mismatch at eval
	}
	for _, q := range cases {
		if _, err := f.engine.Run(q); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}
