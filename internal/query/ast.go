package query

import "strings"

// Field enumerates the recipe attributes CQL exposes.
type Field int

// Recipe fields.
const (
	FieldID Field = iota
	FieldName
	FieldRegion
	FieldSource
	FieldSize
	FieldScore
)

var fieldNames = [...]string{"id", "name", "region", "source", "size", "score"}

// String returns the lowercase field name.
func (f Field) String() string { return fieldNames[f] }

// parseField resolves an identifier to a Field.
func parseField(name string) (Field, bool) {
	for i, fn := range fieldNames {
		if strings.EqualFold(name, fn) {
			return Field(i), true
		}
	}
	return 0, false
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregates.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"count", "sum", "avg", "min", "max"}

// String returns the lowercase aggregate name.
func (a AggFunc) String() string { return aggNames[a] }

func parseAgg(name string) (AggFunc, bool) {
	for i, an := range aggNames {
		if strings.EqualFold(name, an) {
			return AggFunc(i), true
		}
	}
	return 0, false
}

// SelectItem is one output column: a plain field or an aggregate.
type SelectItem struct {
	// Agg is non-nil for aggregate columns.
	Agg *AggFunc
	// Star marks count(*) (Agg != nil) or a bare '*' expansion marker.
	Star bool
	// Field is the projected or aggregated field.
	Field Field
}

// Label renders the column header ("region", "count(*)", "avg(size)").
func (it SelectItem) Label() string {
	if it.Agg == nil {
		return it.Field.String()
	}
	arg := it.Field.String()
	if it.Star {
		arg = "*"
	}
	return it.Agg.String() + "(" + arg + ")"
}

// Expr is a boolean or scalar expression node.
type Expr interface{ exprNode() }

// BinaryExpr combines two boolean expressions with AND/OR.
type BinaryExpr struct {
	Op   string // "and" | "or"
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct{ X Expr }

// CompareExpr compares two operands ("=", "!=", "<", "<=", ">", ">=",
// "like").
type CompareExpr struct {
	Op   string
	L, R Expr
}

// FieldExpr references a recipe field.
type FieldExpr struct{ Field Field }

// LiteralExpr is a constant.
type LiteralExpr struct{ Val Value }

// FuncExpr is has('x') (boolean) or category('x') (integer count).
type FuncExpr struct {
	Name string // "has" | "category"
	Arg  string
}

// InExpr tests membership of an operand in a literal list, optionally
// negated (x NOT IN (...)).
type InExpr struct {
	X      Expr
	Values []Value
	Negate bool
}

func (*BinaryExpr) exprNode()  {}
func (*NotExpr) exprNode()     {}
func (*CompareExpr) exprNode() {}
func (*FieldExpr) exprNode()   {}
func (*LiteralExpr) exprNode() {}
func (*FuncExpr) exprNode()    {}
func (*InExpr) exprNode()      {}

// Query is a parsed CQL statement.
type Query struct {
	Items   []SelectItem
	Where   Expr // nil when absent
	GroupBy *Field
	OrderBy string // column label; empty when absent
	Desc    bool
	Limit   int // -1 when absent
	// Explain marks an EXPLAIN-prefixed statement: the engine reports
	// the scan plan instead of executing.
	Explain bool
}
