package query

import (
	"errors"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT count(*), name FROM recipes WHERE size >= 5 AND name LIKE 'pasta''s'")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "pasta's") {
		t.Errorf("escaped quote not decoded: %q", joined)
	}
	if !strings.Contains(joined, ">=") {
		t.Errorf("two-char operator split: %q", joined)
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]string{
		"a <> b": "!=",
		"a != b": "!=",
		"a <= b": "<=",
		"a >= b": ">=",
		"a < b":  "<",
		"a > b":  ">",
		"a = b":  "=",
	}
	for input, wantOp := range cases {
		toks, err := lex(input)
		if err != nil {
			t.Fatalf("lex(%q): %v", input, err)
		}
		if toks[1].kind != tokOp || toks[1].text != wantOp {
			t.Errorf("lex(%q) op = %q, want %q", input, toks[1].text, wantOp)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, input := range []string{"'unterminated", "a ! b", "1.2.3", "name @ 3"} {
		if _, err := lex(input); err == nil {
			t.Errorf("lex(%q) succeeded, want error", input)
		}
	}
}

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`SELECT region, count(*), avg(size)
		FROM recipes
		WHERE (size >= 4 AND has('garlic')) OR category('Spice') > 2
		GROUP BY region ORDER BY count(*) DESC LIMIT 5`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(q.Items))
	}
	if q.Items[0].Agg != nil || q.Items[0].Field != FieldRegion {
		t.Errorf("item 0 = %+v", q.Items[0])
	}
	if q.Items[1].Agg == nil || *q.Items[1].Agg != AggCount || !q.Items[1].Star {
		t.Errorf("item 1 = %+v", q.Items[1])
	}
	if q.Items[2].Label() != "avg(size)" {
		t.Errorf("item 2 label = %q", q.Items[2].Label())
	}
	if q.GroupBy == nil || *q.GroupBy != FieldRegion {
		t.Error("missing GROUP BY region")
	}
	if q.OrderBy != "count(*)" || !q.Desc {
		t.Errorf("order = %q desc=%v", q.OrderBy, q.Desc)
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("where root = %T %+v", q.Where, q.Where)
	}
	and, ok := or.L.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("where left = %T", or.L)
	}
}

func TestParsePrecedenceAndNot(t *testing.T) {
	// NOT binds tighter than AND, AND tighter than OR.
	q, err := Parse("SELECT id FROM recipes WHERE NOT has('salt') AND size > 3 OR size < 2")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("root = %+v", q.Where)
	}
	and, ok := or.L.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("left = %T", or.L)
	}
	if _, ok := and.L.(*NotExpr); !ok {
		t.Fatalf("not = %T", and.L)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select NAME from RECIPES where SIZE = 9 limit 1"); err != nil {
		t.Fatalf("lowercase keywords rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"SELECT",                                // truncated
		"SELECT id",                             // missing FROM
		"SELECT id FROM users",                  // unknown table
		"SELECT bogus FROM recipes",             // unknown field
		"SELECT id FROM recipes WHERE",          // missing expr
		"SELECT id FROM recipes LIMIT -1",       // negative limit (lexes as op)
		"SELECT id FROM recipes LIMIT x",        // non-integer limit
		"SELECT id FROM recipes GROUP BY 3",     // group by literal
		"SELECT id FROM recipes GROUP BY score", // continuous group key
		"SELECT sum(*) FROM recipes",            // sum(*) undefined
		"SELECT avg(name) FROM recipes",         // non-numeric avg
		"SELECT id FROM recipes WHERE has(3)",   // has needs string
		"SELECT id FROM recipes WHERE (size=1",  // unbalanced paren
		"SELECT id FROM recipes ORDER BY bogus", // unknown order column
		"SELECT id FROM recipes extra",          // trailing tokens
	}
	for _, input := range cases {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", input)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error %v is not a SyntaxError", input, err)
			}
		}
	}
}

func TestParseStarItem(t *testing.T) {
	q, err := Parse("SELECT * FROM recipes LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 1 || !q.Items[0].Star || q.Items[0].Agg != nil {
		t.Errorf("items = %+v", q.Items)
	}
}

func TestSelectItemLabels(t *testing.T) {
	count := AggCount
	avg := AggAvg
	cases := []struct {
		item SelectItem
		want string
	}{
		{SelectItem{Field: FieldRegion}, "region"},
		{SelectItem{Agg: &count, Star: true}, "count(*)"},
		{SelectItem{Agg: &avg, Field: FieldSize}, "avg(size)"},
	}
	for _, c := range cases {
		if got := c.item.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}
