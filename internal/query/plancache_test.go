package query

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

func TestPlanCacheHitsAndMisses(t *testing.T) {
	f := newFixture(t)
	stmt := "SELECT name FROM recipes WHERE region = 'ITA' ORDER BY name LIMIT 5"

	first := f.mustRun(t, stmt)
	cs := f.engine.CacheStats()
	if cs.Hits != 0 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("after first run: %+v", cs)
	}
	second := f.mustRun(t, stmt)
	cs = f.engine.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("after second run: %+v", cs)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached result differs:\nfirst  %+v\nsecond %+v", first, second)
	}
}

func TestPlanCacheNormalizesWhitespace(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, "SELECT count(*) FROM recipes")
	f.mustRun(t, "  SELECT   count(*)\n\tFROM  recipes  ")
	cs := f.engine.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Errorf("reformatted statement missed the cache: %+v", cs)
	}
}

func TestNormalizeStatementPreservesLiterals(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  name\tFROM recipes", "SELECT name FROM recipes"},
		{"  SELECT 1  ", "SELECT 1"},
		{"WHERE name = 'a  b'", "WHERE name = 'a  b'"},
		{"WHERE name = 'a  b'  AND  size > 1", "WHERE name = 'a  b' AND size > 1"},
		{`WHERE name = "x	y"`, `WHERE name = "x	y"`},
		{"WHERE name = 'it''s  ok'", "WHERE name = 'it''s  ok'"},
		{"WHERE name = 'unterminated  ", "WHERE name = 'unterminated  "},
	}
	for _, c := range cases {
		if got := normalizeStatement(c.in); got != c.want {
			t.Errorf("normalizeStatement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPlanCacheLiteralWhitespaceDistinct is the regression test for
// whitespace inside string literals: statements differing only there
// must not share a cached plan.
func TestPlanCacheLiteralWhitespaceDistinct(t *testing.T) {
	f := newFixture(t)
	a := f.mustRun(t, "SELECT count(*) FROM recipes WHERE name = 'miso soup'")
	b := f.mustRun(t, "SELECT count(*) FROM recipes WHERE name = 'miso  soup'")
	cs := f.engine.CacheStats()
	if cs.Entries != 2 || cs.Misses != 2 || cs.Hits != 0 {
		t.Fatalf("literal-whitespace statements shared a plan: %+v", cs)
	}
	if a.Rows[0][0].String() == b.Rows[0][0].String() {
		t.Errorf("'miso soup' and 'miso  soup' returned the same count %s; the second should match nothing",
			b.Rows[0][0].String())
	}
}

func TestPlanCachePreservesLiteralCase(t *testing.T) {
	// Statement comparison is case-insensitive only for keywords; the
	// cache key preserves literal case, so these are distinct entries
	// (the engine's own string compare happens to fold case — the
	// cache must not assume that).
	f := newFixture(t)
	f.mustRun(t, "SELECT count(*) FROM recipes WHERE name = 'miso soup'")
	f.mustRun(t, "SELECT count(*) FROM recipes WHERE name = 'MISO SOUP'")
	cs := f.engine.CacheStats()
	if cs.Entries != 2 || cs.Misses != 2 {
		t.Errorf("case-differing literals must cache separately: %+v", cs)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	f := newFixture(t)
	f.engine.plans = newPlanCache(2)
	stmts := []string{
		"SELECT count(*) FROM recipes",
		"SELECT name FROM recipes LIMIT 1",
		"SELECT region FROM recipes LIMIT 1",
	}
	for _, s := range stmts {
		f.mustRun(t, s)
	}
	cs := f.engine.CacheStats()
	if cs.Entries != 2 || cs.Misses != 3 {
		t.Fatalf("after filling past capacity: %+v", cs)
	}
	// Oldest statement was evicted: rerunning it misses again and
	// evicts the next-oldest.
	f.mustRun(t, stmts[0])
	cs = f.engine.CacheStats()
	if cs.Misses != 4 || cs.Hits != 0 {
		t.Errorf("evicted statement should re-plan: %+v", cs)
	}
	// Most recent statement is still cached.
	f.mustRun(t, stmts[2])
	if cs = f.engine.CacheStats(); cs.Hits != 1 {
		t.Errorf("recent statement should hit: %+v", cs)
	}
}

func TestPlanCacheSkipsFailedStatements(t *testing.T) {
	f := newFixture(t)
	if _, err := f.engine.Run("SELEC oops"); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := f.engine.Run("SELECT name FROM recipes WHERE has('no-such-ingredient')"); !errors.Is(err, ErrSemantic) {
		t.Fatalf("want semantic error, got %v", err)
	}
	cs := f.engine.CacheStats()
	if cs.Entries != 0 {
		t.Errorf("failed statements were cached: %+v", cs)
	}
	if cs.Misses != 2 {
		t.Errorf("failed statements should count as misses: %+v", cs)
	}
}

// TestPlanCacheConcurrent hammers one engine from many goroutines with
// a mix of hot and cold statements; run under -race this proves the
// cached plans are share-safe.
func TestPlanCacheConcurrent(t *testing.T) {
	f := newFixture(t)
	stmts := []string{
		"SELECT count(*) FROM recipes",
		"SELECT name FROM recipes WHERE region = 'ITA' ORDER BY name",
		"SELECT region, count(*) FROM recipes GROUP BY region",
		"SELECT name FROM recipes WHERE has('garlic') LIMIT 3",
	}
	want := make([]*Result, len(stmts))
	for i, s := range stmts {
		want[i] = f.mustRun(t, s)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				idx := (g + i) % len(stmts)
				res, err := f.engine.Run(stmts[idx])
				if err != nil {
					t.Errorf("Run(%q): %v", stmts[idx], err)
					return
				}
				if !reflect.DeepEqual(res.Rows, want[idx].Rows) {
					t.Errorf("Run(%q) rows diverged under concurrency", stmts[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	cs := f.engine.CacheStats()
	if cs.Hits < int64(8*50-len(stmts)) {
		t.Errorf("expected hot statements to hit, got %+v", cs)
	}
}
