// Package query implements CQL, a small SQL-like query language over the
// recipe corpus. It exists because the paper's artifact is an online
// *database* of world cuisines; a downstream user of this library needs
// ad-hoc slicing ("how many Italian recipes with at least two spices use
// garlic?") without writing Go. The engine supports filtering on recipe
// fields, ingredient membership, category counts and pairing scores,
// grouping with aggregates, ordering and limits, with a region-index
// scan optimization for region-equality predicates.
//
// Grammar (case-insensitive keywords):
//
//	query   := SELECT items FROM ident [WHERE expr]
//	           [GROUP BY field] [ORDER BY ident [ASC|DESC]] [LIMIT int]
//	items   := item {',' item}
//	item    := '*' | field | agg '(' (field | '*') ')'
//	agg     := COUNT | SUM | AVG | MIN | MAX
//	expr    := or
//	or      := and {OR and}
//	and     := not {AND not}
//	not     := [NOT] cmp
//	cmp     := operand [op operand] | '(' expr ')'
//	op      := '=' | '!=' | '<' | '<=' | '>' | '>=' | LIKE
//	operand := field | literal | func '(' string ')'
//	func    := HAS | CATEGORY
//	field   := ID | NAME | REGION | SOURCE | SIZE | SCORE
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokFloat
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // comparison operators
)

// token is one lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// ErrSyntax prefixes all lexical and parse failures.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lex splits input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{i, "unexpected '!'"}
			}
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			} else if i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, &SyntaxError{i, "unterminated string literal"}
				}
				if input[j] == quote {
					// Doubled quote escapes itself ('it''s').
					if j+1 < n && input[j+1] == quote {
						sb.WriteByte(quote)
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				if input[j] == '.' {
					if isFloat {
						return nil, &SyntaxError{j, "malformed number"}
					}
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// keywordIs reports whether tok is the given keyword, case-insensitively.
func keywordIs(tok token, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
