package query

import (
	"fmt"
	"testing"
	"testing/quick"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/synth"
)

// propEngine runs property tests against the 5%-scale synthetic corpus
// so predicates see realistic value distributions.
var propEngine = func() *Engine {
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	analyzer := pairing.NewAnalyzer(catalog)
	store, err := synth.Generate(analyzer, synth.TestConfig())
	if err != nil {
		panic(err)
	}
	return NewEngine(store, analyzer)
}()

// randomPredicate renders a deterministic size/region predicate from
// fuzz inputs.
func randomPredicate(sizeOp uint8, sizeVal uint8, withRegion bool, regionPick uint8) string {
	ops := []string{"<", "<=", "=", ">=", ">", "!="}
	pred := fmt.Sprintf("size %s %d", ops[int(sizeOp)%len(ops)], 3+int(sizeVal)%15)
	if withRegion {
		regions := recipedb.MajorRegions()
		r := regions[int(regionPick)%len(regions)]
		pred += fmt.Sprintf(" AND region = '%s'", r.Code())
	}
	return pred
}

// TestPropertyCountMatchesScan checks that count(*) equals the row count
// of the equivalent projection for arbitrary predicates — the aggregate
// and scan executors must agree.
func TestPropertyCountMatchesScan(t *testing.T) {
	check := func(sizeOp, sizeVal uint8, withRegion bool, regionPick uint8) bool {
		pred := randomPredicate(sizeOp, sizeVal, withRegion, regionPick)
		agg, err := propEngine.Run("SELECT count(*) FROM recipes WHERE " + pred)
		if err != nil {
			t.Logf("agg: %v", err)
			return false
		}
		scan, err := propEngine.Run("SELECT id FROM recipes WHERE " + pred)
		if err != nil {
			t.Logf("scan: %v", err)
			return false
		}
		if agg.Rows[0][0].Int != int64(len(scan.Rows)) {
			t.Logf("pred %q: count=%d scan=%d", pred, agg.Rows[0][0].Int, len(scan.Rows))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGroupCountsSumToTotal checks that GROUP BY partitions the
// matched set: per-group counts sum to the ungrouped count.
func TestPropertyGroupCountsSumToTotal(t *testing.T) {
	check := func(sizeOp, sizeVal uint8) bool {
		pred := randomPredicate(sizeOp, sizeVal, false, 0)
		grouped, err := propEngine.Run("SELECT region, count(*) FROM recipes WHERE " + pred + " GROUP BY region")
		if err != nil {
			t.Logf("grouped: %v", err)
			return false
		}
		total, err := propEngine.Run("SELECT count(*) FROM recipes WHERE " + pred)
		if err != nil {
			t.Logf("total: %v", err)
			return false
		}
		var sum int64
		for _, row := range grouped.Rows {
			sum += row[1].Int
		}
		if sum != total.Rows[0][0].Int {
			t.Logf("pred %q: groups sum %d, total %d", pred, sum, total.Rows[0][0].Int)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOrderBySorted checks ORDER BY output is monotone and that
// LIMIT is a prefix of the unlimited ordering.
func TestPropertyOrderBySorted(t *testing.T) {
	check := func(desc bool, limit uint8) bool {
		dir := "ASC"
		if desc {
			dir = "DESC"
		}
		full, err := propEngine.Run("SELECT id, size FROM recipes ORDER BY size " + dir)
		if err != nil {
			t.Logf("full: %v", err)
			return false
		}
		for i := 1; i < len(full.Rows); i++ {
			a, b := full.Rows[i-1][1].Int, full.Rows[i][1].Int
			if !desc && a > b || desc && a < b {
				t.Logf("row %d out of order: %d then %d (%s)", i, a, b, dir)
				return false
			}
		}
		k := int(limit)%20 + 1
		lim, err := propEngine.Run(fmt.Sprintf("SELECT id, size FROM recipes ORDER BY size %s LIMIT %d", dir, k))
		if err != nil {
			t.Logf("lim: %v", err)
			return false
		}
		want := k
		if want > len(full.Rows) {
			want = len(full.Rows)
		}
		if len(lim.Rows) != want {
			t.Logf("limit %d returned %d rows", k, len(lim.Rows))
			return false
		}
		for i := range lim.Rows {
			// Stable sort makes the limited result an exact prefix.
			if lim.Rows[i][0].Int != full.Rows[i][0].Int {
				t.Logf("limit row %d: id %d != full id %d", i, lim.Rows[i][0].Int, full.Rows[i][0].Int)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRegionIndexEquivalence checks the region-index fast path
// returns exactly the rows of a full scan filtered in Go.
func TestPropertyRegionIndexEquivalence(t *testing.T) {
	check := func(regionPick uint8) bool {
		regions := recipedb.MajorRegions()
		r := regions[int(regionPick)%len(regions)]
		indexed, err := propEngine.Run(fmt.Sprintf("SELECT id FROM recipes WHERE region = '%s'", r.Code()))
		if err != nil {
			t.Logf("indexed: %v", err)
			return false
		}
		// NOT (region != X) defeats the planner, forcing a full scan.
		scanned, err := propEngine.Run(fmt.Sprintf("SELECT id FROM recipes WHERE NOT (region != '%s')", r.Code()))
		if err != nil {
			t.Logf("scanned: %v", err)
			return false
		}
		if len(indexed.Rows) != len(scanned.Rows) {
			t.Logf("region %s: indexed %d rows, scanned %d", r.Code(), len(indexed.Rows), len(scanned.Rows))
			return false
		}
		for i := range indexed.Rows {
			if indexed.Rows[i][0].Int != scanned.Rows[i][0].Int {
				t.Logf("row %d differs", i)
				return false
			}
		}
		// And the fast path must actually scan fewer recipes.
		return indexed.Scanned <= scanned.Scanned
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 22}); err != nil {
		t.Fatal(err)
	}
}
