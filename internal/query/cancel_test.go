package query

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestRunContextCanceledBeforeScan asserts the deadline-propagation
// contract at its boundary: a context that is already dead when
// execution starts aborts before visiting a single recipe and
// surfaces the structured ErrCanceled (still distinguishable as a
// deadline vs an explicit cancel via errors.Is).
func TestRunContextCanceledBeforeScan(t *testing.T) {
	e, _ := newMutableEngine(t, 1<<20)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx, "SELECT count(*) FROM recipes")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should wrap context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, err = e.RunContext(dctx, "SELECT count(*) FROM recipes WHERE size > 1")
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestCanceledExecutionIsNeverCached asserts that an aborted partial
// result cannot poison the result cache: the same statement re-run
// with a live context executes for real and succeeds.
func TestCanceledExecutionIsNeverCached(t *testing.T) {
	e, _ := newMutableEngine(t, 1<<20)
	const stmt = "SELECT region, count(*) FROM recipes GROUP BY region"

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, stmt); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st := e.ResultCacheStats(); st.Entries != 0 {
		t.Fatalf("canceled execution left %d cache entries", st.Entries)
	}

	res, err := e.RunContext(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("re-run after cancellation returned no rows")
	}
	if st := e.ResultCacheStats(); st.Entries != 1 {
		t.Fatalf("successful re-run cached %d entries, want 1", st.Entries)
	}
}

// TestCancelMidScanReturnsPromptlyAndLeaksNothing races a cancel
// against in-flight executions and asserts (a) every run returns
// quickly once the context dies — the scan's periodic check fires
// instead of running the statement to completion — and (b) the
// goroutine count settles back to its starting point: execution
// spawns nothing, so a canceled query cannot leak workers.
func TestCancelMidScanReturnsPromptlyAndLeaksNothing(t *testing.T) {
	e, _ := newMutableEngine(t, 0) // no result cache: every run scans
	before := runtime.NumGoroutine()

	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			// The score aggregate is the most expensive per-row path.
			_, err := e.RunContext(ctx, "SELECT avg(score), max(score) FROM recipes WHERE size > 0")
			done <- err
		}()
		// Let the scan get going, then pull the plug.
		time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		cancel()
		select {
		case err := <-done:
			// Either the run finished before the cancel landed (fast
			// corpus) or it aborted with the structured error; both
			// are correct. What is forbidden is a hang or a bare
			// context error without the ErrCanceled wrapper.
			if err != nil && !errors.Is(err, ErrCanceled) {
				t.Fatalf("round %d: err = %v, want nil or ErrCanceled", round, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: canceled query did not return within 5s", round)
		}
	}

	// The goroutine count must settle back: canceled queries leak no
	// workers. Retry briefly — unrelated runtime goroutines may need a
	// moment to exit.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled queries", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
