package query

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// loadFuzzCorpusStatements reads the committed FuzzParseStatement seed
// corpus (testdata/fuzz/FuzzParseStatement/*): every historical fuzzer
// finding, in Go's "go test fuzz v1" file format.
func loadFuzzCorpusStatements(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzParseStatement")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	var out []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				t.Fatalf("%s: unquoting %q: %v", ent.Name(), line, err)
			}
			out = append(out, s)
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) == 0 {
		t.Fatal("seed corpus is empty")
	}
	return out
}

// generatedPropertyStatements renders the same deterministic predicate
// family the quick.Check property tests draw from, wrapped in the
// executor shapes the engine distinguishes (scan, aggregate, group-by,
// order-by, explain).
func generatedPropertyStatements() []string {
	var out []string
	for sizeOp := uint8(0); sizeOp < 6; sizeOp++ {
		for _, sizeVal := range []uint8{0, 4, 9} {
			for _, withRegion := range []bool{false, true} {
				pred := randomPredicate(sizeOp, sizeVal, withRegion, sizeVal*7)
				out = append(out,
					"SELECT id, name, size FROM recipes WHERE "+pred,
					"SELECT count(*), avg(size), min(size), max(size) FROM recipes WHERE "+pred,
					"SELECT region, count(*) FROM recipes WHERE "+pred+" GROUP BY region",
				)
			}
		}
	}
	out = append(out,
		"SELECT id, size FROM recipes ORDER BY size DESC LIMIT 17",
		"SELECT name FROM recipes WHERE has('garlic') AND NOT has('salt') LIMIT 9",
		"EXPLAIN SELECT id FROM recipes WHERE region = 'ITA' AND has('garlic')",
		"SELECT source, count(*) FROM recipes GROUP BY source ORDER BY count(*) DESC",
	)
	return out
}

// resultFingerprint serializes a Result to canonical bytes so
// "byte-identical" is literal.
func resultFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(res); err != nil {
		t.Fatalf("encoding result: %v", err)
	}
	return buf.Bytes()
}

// TestEquivalenceCachedVsUncached is the result-cache correctness
// battery: for every statement in the committed fuzz seed corpus, the
// inline fuzz seeds and the generated property statements, an engine
// with the result cache enabled must return byte-identical Results to
// a cache-disabled engine over the same corpus — across interleaved
// corpus mutations, each of which bumps the version and must fence off
// every previously cached result. Cached statements are run twice per
// round so round N's second run is served from the cache populated at
// round N's version, and round N+1's first run probes an entry that is
// now stale.
func TestEquivalenceCachedVsUncached(t *testing.T) {
	// The budget must hold the whole statement battery: if eviction
	// churns entries out between rounds, stale-version probes (the
	// Invalidated assertion below) can never happen.
	cached, store := newMutableEngine(t, 64<<20)
	plain := NewEngine(store, cached.analyzer)

	statements := append([]string{}, fuzzSeedStatements...)
	statements = append(statements, loadFuzzCorpusStatements(t)...)
	statements = append(statements, generatedPropertyStatements()...)

	garlic, ok := store.Catalog().Lookup("garlic")
	if !ok {
		t.Fatal("catalog missing garlic")
	}
	tomato, ok := store.Catalog().Lookup("tomato")
	if !ok {
		t.Fatal("catalog missing tomato")
	}
	mutations := []func() error{
		func() error { // insert
			_, _, _, err := store.Upsert(-1, "equivalence pizza", recipedb.Italy, recipedb.AllRecipes,
				[]flavor.ID{garlic, tomato})
			return err
		},
		func() error { // delete
			_, err := store.Remove(1)
			return err
		},
		func() error { // replace: move recipe 2 to another region
			rec := store.Recipe(2)
			_, _, _, err := store.Upsert(2, rec.Name+" (moved)", recipedb.France, rec.Source, rec.Ingredients)
			return err
		},
		func() error { // revive the deleted slot
			_, _, _, err := store.Upsert(1, "revived dish", recipedb.Japan, recipedb.AllRecipes,
				[]flavor.ID{garlic, tomato})
			return err
		},
	}

	countBefore := runCount(t, plain)
	for round := 0; ; round++ {
		for _, stmt := range statements {
			want, wantErr := plain.Run(stmt)
			for pass := 0; pass < 2; pass++ { // second pass = cache hit
				got, gotErr := cached.Run(stmt)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("round %d stmt %q pass %d: err %v vs %v", round, stmt, pass, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if !bytes.Equal(resultFingerprint(t, got), resultFingerprint(t, want)) {
					t.Fatalf("round %d stmt %q pass %d:\ncached   %s\nuncached %s",
						round, stmt, pass, resultFingerprint(t, got), resultFingerprint(t, want))
				}
				if got.Version != store.Version() {
					t.Fatalf("round %d stmt %q: result version %d, corpus %d",
						round, stmt, got.Version, store.Version())
				}
			}
		}
		if round == len(mutations) {
			break
		}
		v := store.Version()
		if err := mutations[round](); err != nil {
			t.Fatalf("mutation %d: %v", round, err)
		}
		if store.Version() != v+1 {
			t.Fatalf("mutation %d bumped version %d -> %d", round, v, store.Version())
		}
	}

	// The mutations must have been visible: net one insert (insert +
	// delete + replace + revive) relative to the starting corpus.
	if got := runCount(t, plain); got != countBefore+1 {
		t.Errorf("final count(*) = %d, want %d", got, countBefore+1)
	}
	st := cached.ResultCacheStats()
	if st.Invalidated == 0 {
		t.Error("interleaved mutations never triggered lazy invalidation")
	}
	if st.Hits == 0 {
		t.Error("second passes never hit the result cache")
	}
}

// runCount executes count(*) and returns the value.
func runCount(t *testing.T, e *Engine) int64 {
	t.Helper()
	res, err := e.Run("SELECT count(*) FROM recipes")
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int
}
