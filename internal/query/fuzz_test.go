package query

import "testing"

// fuzzSeedStatements are FuzzParseStatement's inline seeds. The
// equivalence property test replays every parseable one against a
// result-cached and an uncached engine, so the statements the fuzzer
// anchors on are exactly the ones the cache must never corrupt.
var fuzzSeedStatements = []string{
	"SELECT * FROM recipes",
	"select count(*) from recipes",
	"EXPLAIN SELECT id, name FROM recipes WHERE region = 'ITA' LIMIT 5",
	"SELECT region, count(*), avg(size) FROM recipes GROUP BY region ORDER BY count(*) DESC LIMIT 10",
	"SELECT name FROM recipes WHERE has('garlic') AND NOT (size < 3 OR score >= 0.5)",
	"SELECT id FROM recipes WHERE category('spice') > 2 AND name LIKE 'ragu'",
	"SELECT id FROM recipes WHERE region IN ('ITA', 'FRA') AND size NOT IN (1, 2, 3.5)",
	"SELECT name FROM recipes WHERE name = 'it''s' OR source != \"web\"",
	"SELECT size FROM recipes WHERE size <> 4 ORDER BY size ASC",
	"SELECT * FROM recipes WHERE true",
	"SELECT * FROM nowhere",
	"SELECT FROM recipes",
	"SELECT * FROM recipes WHERE (",
	"SELECT * FROM recipes LIMIT 99999999999999999999",
	"SELECT * FROM recipes WHERE name = 'unterminated",
	"\x00\xff!<",
}

// FuzzParseStatement asserts two properties over arbitrary statement
// text: the parser never panics, and for every statement it accepts,
// printing is canonical — Parse(q.String()) succeeds and reprints to
// the same text (print∘parse is a fixpoint). Together they guarantee
// the AST and its textual form cannot drift, which the plan cache's
// normalized keys and the HTTP query endpoint both depend on.
func FuzzParseStatement(f *testing.F) {
	for _, s := range fuzzSeedStatements {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input) // must never panic
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form of %q does not re-parse: %q: %v", input, printed, err)
		}
		if again := q2.String(); again != printed {
			t.Fatalf("print is not canonical for %q: %q -> %q", input, printed, again)
		}
	})
}
