package query

import (
	"strings"
	"testing"
)

func TestIngredientIndexNarrowsScan(t *testing.T) {
	f := newFixture(t)
	// Only 4 of 6 fixture recipes contain garlic; the posting-list scan
	// must visit exactly those.
	res := f.mustRun(t, "SELECT name FROM recipes WHERE has('garlic')")
	if res.Scanned != 4 {
		t.Errorf("Scanned = %d, want 4 via ingredient index", res.Scanned)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// With two has() conjuncts the planner picks the rarer posting list:
	// salt appears in 1 recipe, garlic in 4.
	res = f.mustRun(t, "SELECT name FROM recipes WHERE has('garlic') AND has('salt')")
	if res.Scanned != 1 {
		t.Errorf("Scanned = %d, want 1 (rarest posting list)", res.Scanned)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "pasta marinara" {
		t.Errorf("rows = %v", res.Rows)
	}
	// has() under NOT or OR must not plan the index (it no longer
	// implies membership).
	res = f.mustRun(t, "SELECT name FROM recipes WHERE NOT has('garlic')")
	if res.Scanned != 6 {
		t.Errorf("NOT has: Scanned = %d, want 6 (full scan)", res.Scanned)
	}
	res = f.mustRun(t, "SELECT name FROM recipes WHERE has('garlic') OR size = 3")
	if res.Scanned != 6 {
		t.Errorf("OR: Scanned = %d, want 6 (full scan)", res.Scanned)
	}
}

func TestIngredientVsRegionIndexSelectivity(t *testing.T) {
	f := newFixture(t)
	// Italy has 3 recipes; tofu appears in 2. The planner must choose
	// the tofu posting list... but tofu recipes are Japanese, so the
	// combination yields zero rows while scanning at most 2 candidates.
	res := f.mustRun(t, "SELECT name FROM recipes WHERE region = 'ITA' AND has('tofu')")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Scanned > 2 {
		t.Errorf("Scanned = %d, want <= 2", res.Scanned)
	}
	// When the region bucket is smaller than the posting list, the
	// region index wins: garlic (4 recipes) vs Japan (2 recipes).
	res = f.mustRun(t, "SELECT name FROM recipes WHERE region = 'JPN' AND has('garlic')")
	if res.Scanned != 2 {
		t.Errorf("Scanned = %d, want 2 via region index", res.Scanned)
	}
}

func TestExplain(t *testing.T) {
	f := newFixture(t)
	cases := map[string]string{
		"EXPLAIN SELECT name FROM recipes":                                        "full scan",
		"EXPLAIN SELECT name FROM recipes WHERE region = 'ITA'":                   "region index scan on ITA",
		"EXPLAIN SELECT name FROM recipes WHERE has('salt')":                      `ingredient index scan on "salt"`,
		"EXPLAIN SELECT name FROM recipes WHERE region = 'ITA' AND has('tofu')":   `ingredient index scan on "tofu"`,
		"EXPLAIN SELECT name FROM recipes WHERE region = 'JPN' AND has('garlic')": "region index scan on JPN",
		"explain select name from recipes where not has('garlic')":                "full scan",
	}
	for stmt, want := range cases {
		res := f.mustRun(t, stmt)
		if len(res.Columns) != 1 || res.Columns[0] != "plan" {
			t.Fatalf("EXPLAIN columns = %v", res.Columns)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("EXPLAIN rows = %v", res.Rows)
		}
		got := res.Rows[0][0].Str
		if !strings.Contains(got, want) {
			t.Errorf("EXPLAIN %q = %q, want contains %q", stmt, got, want)
		}
	}
	// EXPLAIN still validates: unknown ingredients fail.
	if _, err := f.engine.Run("EXPLAIN SELECT name FROM recipes WHERE has('nope')"); err == nil {
		t.Error("EXPLAIN with unknown ingredient succeeded")
	}
}

func TestIngredientIndexStoreConsistency(t *testing.T) {
	f := newFixture(t)
	// Every posting list entry must actually contain the ingredient, and
	// every containing recipe must be listed (cross-check vs full scan).
	id, ok := f.store.Catalog().Lookup("tomato")
	if !ok {
		t.Fatal("no tomato")
	}
	listed := f.store.IngredientRecipes(id)
	want := 0
	for i := 0; i < f.store.Len(); i++ {
		if f.store.Recipe(i).Contains(id) {
			want++
		}
	}
	if len(listed) != want {
		t.Fatalf("posting list %d entries, %d recipes contain tomato", len(listed), want)
	}
	for _, rid := range listed {
		if !f.store.Recipe(rid).Contains(id) {
			t.Errorf("recipe %d listed but lacks tomato", rid)
		}
	}
}
