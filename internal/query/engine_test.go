package query

import (
	"errors"
	"strings"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

// fixture builds a deterministic four-region corpus with hand-chosen
// recipes so query assertions are exact.
type fixture struct {
	store    *recipedb.Store
	analyzer *pairing.Analyzer
	engine   *Engine
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := recipedb.NewStore(catalog)
	ids := func(names ...string) []flavor.ID {
		out := make([]flavor.ID, len(names))
		for i, n := range names {
			id, ok := catalog.Lookup(n)
			if !ok {
				t.Fatalf("catalog lacks %q", n)
			}
			out[i] = id
		}
		return out
	}
	add := func(name string, region recipedb.Region, names ...string) {
		if _, err := store.Add(name, region, recipedb.AllRecipes, ids(names...)); err != nil {
			t.Fatalf("Add(%q): %v", name, err)
		}
	}
	// Italy: 3 recipes, all with garlic and tomato.
	add("pasta marinara", recipedb.Italy, "tomato", "garlic", "basil", "olive oil", "salt")
	add("bruschetta", recipedb.Italy, "tomato", "garlic", "basil", "olive oil")
	add("aglio e olio", recipedb.Italy, "garlic", "olive oil", "parsley")
	// Japan: 2 recipes, no garlic.
	add("miso soup", recipedb.Japan, "tofu", "scallion", "seaweed")
	add("cucumber sunomono", recipedb.Japan, "cucumber", "rice vinegar", "sesame seed", "soy sauce")
	// India: 1 big spicy recipe.
	add("chana masala", recipedb.IndianSubcontinent,
		"chickpea", "onion", "tomato", "garlic", "ginger", "cumin", "coriander", "turmeric", "garam masala")
	analyzer := pairing.NewAnalyzer(catalog)
	return &fixture{store: store, analyzer: analyzer, engine: NewEngine(store, analyzer)}
}

func (f *fixture) mustRun(t *testing.T, q string) *Result {
	t.Helper()
	res, err := f.engine.Run(q)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return res
}

func TestSelectStarProjection(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT * FROM recipes")
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	want := []string{"id", "name", "region", "source", "size"}
	if len(res.Columns) != len(want) {
		t.Fatalf("columns = %v", res.Columns)
	}
	for i := range want {
		if res.Columns[i] != want[i] {
			t.Errorf("column %d = %q, want %q", i, res.Columns[i], want[i])
		}
	}
	if res.Rows[0][1].Str != "pasta marinara" || res.Rows[0][4].Int != 5 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
}

func TestWhereHasIngredient(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE has('garlic')")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (3 Italian + chana masala)", len(res.Rows))
	}
	res = f.mustRun(t, "SELECT name FROM recipes WHERE NOT has('garlic')")
	if len(res.Rows) != 2 {
		t.Fatalf("NOT has rows = %d, want 2", len(res.Rows))
	}
}

func TestWhereSynonymResolvesViaCatalog(t *testing.T) {
	f := newFixture(t)
	// The catalog maps synonyms (e.g. chile/chili); unknown names fail
	// at bind time with a semantic error rather than returning nothing.
	_, err := f.engine.Run("SELECT name FROM recipes WHERE has('definitely not food')")
	if !errors.Is(err, ErrSemantic) {
		t.Fatalf("err = %v, want ErrSemantic", err)
	}
}

func TestWhereComparisonsAndLike(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE size >= 5")
	if len(res.Rows) != 2 { // marinara (5), chana masala (9)
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	res = f.mustRun(t, "SELECT name FROM recipes WHERE name LIKE 'PASTA'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "pasta marinara" {
		t.Fatalf("LIKE rows = %v", res.Rows)
	}
	res = f.mustRun(t, "SELECT name FROM recipes WHERE size != 4 AND size != 5 AND size != 9")
	if len(res.Rows) != 2 { // both size-3 recipes: aglio e olio, miso soup
		t.Fatalf("!= rows = %v", res.Rows)
	}
}

func TestWhereCategoryCount(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE category('Spice') >= 4")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "chana masala" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRegionEqualityUsesIndex(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE region = 'ITA'")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Scanned != 3 {
		t.Errorf("Scanned = %d, want 3 (region index should narrow the scan)", res.Scanned)
	}
	// Flipped operand order also plans the index.
	res = f.mustRun(t, "SELECT name FROM recipes WHERE 'JPN' = region AND size > 3")
	if res.Scanned != 2 {
		t.Errorf("Scanned = %d, want 2", res.Scanned)
	}
	// OR disables the optimization but stays correct.
	res = f.mustRun(t, "SELECT name FROM recipes WHERE region = 'ITA' OR region = 'JPN'")
	if res.Scanned != 6 {
		t.Errorf("Scanned = %d, want 6 (full scan under OR)", res.Scanned)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT count(*), avg(size), min(size), max(size), sum(size) FROM recipes")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].Int != 6 {
		t.Errorf("count = %v", row[0])
	}
	if row[2].Int != 3 || row[3].Int != 9 {
		t.Errorf("min/max = %v/%v", row[2], row[3])
	}
	wantSum := int64(5 + 4 + 3 + 3 + 4 + 9)
	if row[4].Int != wantSum {
		t.Errorf("sum = %v, want %d", row[4], wantSum)
	}
	wantAvg := float64(wantSum) / 6
	if row[1].Float != wantAvg {
		t.Errorf("avg = %v, want %g", row[1], wantAvg)
	}
}

func TestGroupByRegion(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT region, count(*), avg(size) FROM recipes GROUP BY region ORDER BY count(*) DESC")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].Str != "ITA" || res.Rows[0][1].Int != 3 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	// Ascending default order is deterministic (sorted by key).
	res = f.mustRun(t, "SELECT region, count(*) FROM recipes GROUP BY region")
	if res.Rows[0][0].Str != "INSC" {
		t.Errorf("default group order starts with %q, want INSC", res.Rows[0][0].Str)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name, size FROM recipes ORDER BY size DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str != "chana masala" || res.Rows[1][0].Str != "pasta marinara" {
		t.Errorf("rows = %v", res.Rows)
	}
	// LIMIT without ORDER BY stops the scan early.
	res = f.mustRun(t, "SELECT name FROM recipes LIMIT 1")
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestScoreFieldRequiresAnalyzer(t *testing.T) {
	f := newFixture(t)
	bare := NewEngine(f.store, nil)
	if _, err := bare.Run("SELECT name, score FROM recipes"); !errors.Is(err, ErrNoScore) {
		t.Fatalf("err = %v, want ErrNoScore", err)
	}
	// With an analyzer, scores are finite and the filter works.
	res := f.mustRun(t, "SELECT name, score FROM recipes WHERE score > 0 ORDER BY score DESC")
	if len(res.Rows) == 0 {
		t.Fatal("no scored rows")
	}
	prev := res.Rows[0][1].Float
	for _, row := range res.Rows[1:] {
		if row[1].Float > prev {
			t.Errorf("scores not descending: %v after %g", row[1], prev)
		}
		prev = row[1].Float
	}
}

func TestSemanticErrors(t *testing.T) {
	f := newFixture(t)
	cases := []string{
		"SELECT name, count(*) FROM recipes",                // mixed without GROUP BY
		"SELECT name FROM recipes GROUP BY region",          // non-key plain column
		"SELECT id FROM recipes WHERE name > 3",             // type mismatch
		"SELECT id FROM recipes WHERE size AND size",        // non-boolean AND
		"SELECT id FROM recipes WHERE NOT size",             // non-boolean NOT
		"SELECT id FROM recipes WHERE size",                 // non-boolean WHERE
		"SELECT id FROM recipes WHERE category('Nope') > 0", // unknown category
		"SELECT region FROM recipes ORDER BY size",          // order key not selected
		"SELECT id FROM recipes WHERE name LIKE 3",          // LIKE non-string
	}
	for _, q := range cases {
		if _, err := f.engine.Run(q); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestResultTableRendering(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT region, count(*) FROM recipes GROUP BY region")
	var sb strings.Builder
	if err := res.Table("per region").Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"region", "count(*)", "ITA", "JPN", "INSC"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyResultShapes(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE size > 100")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Aggregates over empty matches still emit one row of zeros.
	res = f.mustRun(t, "SELECT count(*), avg(size) FROM recipes WHERE size > 100")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 0 {
		t.Errorf("aggregate over empty = %v", res.Rows)
	}
	// GROUP BY over empty matches emits no rows.
	res = f.mustRun(t, "SELECT region, count(*) FROM recipes WHERE size > 100 GROUP BY region")
	if len(res.Rows) != 0 {
		t.Errorf("grouped over empty = %v", res.Rows)
	}
}

func TestCaseInsensitiveStringEquality(t *testing.T) {
	f := newFixture(t)
	res := f.mustRun(t, "SELECT name FROM recipes WHERE region = 'ita'")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (region codes compare case-insensitively)", len(res.Rows))
	}
}
