package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles a CQL statement into a Query AST.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{p.peek().pos, fmt.Sprintf(format, args...)}
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !keywordIs(p.peek(), kw) {
		return p.errorf("expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	p.next()
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	explain := false
	if keywordIs(p.peek(), "explain") {
		p.next()
		explain = true
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1, Explain: explain}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	q.Items = items

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table := p.next()
	if table.kind != tokIdent || !strings.EqualFold(table.text, "recipes") {
		return nil, &SyntaxError{table.pos, fmt.Sprintf("unknown table %s (only 'recipes' exists)", table)}
	}

	if keywordIs(p.peek(), "where") {
		p.next()
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}
	if keywordIs(p.peek(), "group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		tok := p.next()
		f, ok := parseField(tok.text)
		if tok.kind != tokIdent || !ok {
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("GROUP BY needs a field, got %s", tok)}
		}
		if f == FieldScore {
			return nil, &SyntaxError{tok.pos, "cannot GROUP BY score (continuous)"}
		}
		q.GroupBy = &f
	}
	if keywordIs(p.peek(), "order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		label, err := p.parseOrderKey()
		if err != nil {
			return nil, err
		}
		q.OrderBy = label
		if keywordIs(p.peek(), "desc") {
			p.next()
			q.Desc = true
		} else if keywordIs(p.peek(), "asc") {
			p.next()
		}
	}
	if keywordIs(p.peek(), "limit") {
		p.next()
		tok := p.next()
		if tok.kind != tokInt {
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("LIMIT needs an integer, got %s", tok)}
		}
		n, err := strconv.Atoi(tok.text)
		if err != nil || n < 0 {
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("bad LIMIT %q", tok.text)}
		}
		q.Limit = n
	}
	return q, nil
}

// parseOrderKey accepts either a field name or an aggregate call and
// returns its column label.
func (p *parser) parseOrderKey() (string, error) {
	tok := p.next()
	if tok.kind != tokIdent {
		return "", &SyntaxError{tok.pos, fmt.Sprintf("ORDER BY needs a column, got %s", tok)}
	}
	if agg, ok := parseAgg(tok.text); ok && p.peek().kind == tokLParen {
		item, err := p.parseAggCall(agg)
		if err != nil {
			return "", err
		}
		return item.Label(), nil
	}
	if _, ok := parseField(tok.text); !ok {
		return "", &SyntaxError{tok.pos, fmt.Sprintf("unknown column %q", tok.text)}
	}
	return strings.ToLower(tok.text), nil
}

func (p *parser) parseSelectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.peek().kind != tokComma {
			return items, nil
		}
		p.next()
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	tok := p.next()
	switch {
	case tok.kind == tokStar:
		return SelectItem{Star: true}, nil
	case tok.kind == tokIdent:
		if agg, ok := parseAgg(tok.text); ok && p.peek().kind == tokLParen {
			return p.parseAggCall(agg)
		}
		f, ok := parseField(tok.text)
		if !ok {
			return SelectItem{}, &SyntaxError{tok.pos, fmt.Sprintf("unknown field %q", tok.text)}
		}
		return SelectItem{Field: f}, nil
	default:
		return SelectItem{}, &SyntaxError{tok.pos, fmt.Sprintf("expected field or aggregate, got %s", tok)}
	}
}

// parseAggCall parses the parenthesized argument of an aggregate whose
// name has already been consumed.
func (p *parser) parseAggCall(agg AggFunc) (SelectItem, error) {
	if p.peek().kind != tokLParen {
		return SelectItem{}, p.errorf("expected ( after %s", agg)
	}
	p.next()
	item := SelectItem{Agg: &agg}
	arg := p.next()
	switch {
	case arg.kind == tokStar:
		if agg != AggCount {
			return SelectItem{}, &SyntaxError{arg.pos, fmt.Sprintf("%s(*) is not defined; only count(*)", agg)}
		}
		item.Star = true
	case arg.kind == tokIdent:
		f, ok := parseField(arg.text)
		if !ok {
			return SelectItem{}, &SyntaxError{arg.pos, fmt.Sprintf("unknown field %q", arg.text)}
		}
		if agg != AggCount && f != FieldSize && f != FieldScore && f != FieldID {
			return SelectItem{}, &SyntaxError{arg.pos, fmt.Sprintf("%s(%s) needs a numeric field", agg, f)}
		}
		item.Field = f
	default:
		return SelectItem{}, &SyntaxError{arg.pos, fmt.Sprintf("expected field or *, got %s", arg)}
	}
	if p.peek().kind != tokRParen {
		return SelectItem{}, p.errorf("expected ) to close %s(", agg)
	}
	p.next()
	return item, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for keywordIs(p.peek(), "or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for keywordIs(p.peek(), "and") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if keywordIs(p.peek(), "not") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errorf("expected )")
		}
		p.next()
		return inner, nil
	}
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	tok := p.peek()
	var op string
	switch {
	case tok.kind == tokOp:
		op = tok.text
		p.next()
	case keywordIs(tok, "like"):
		op = "like"
		p.next()
	case keywordIs(tok, "in"):
		p.next()
		return p.parseInList(l, false)
	case keywordIs(tok, "not") && keywordIs(p.toks[p.pos+1], "in"):
		p.next()
		p.next()
		return p.parseInList(l, true)
	default:
		// Bare operand: must be boolean-valued (has(...)).
		return l, nil
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &CompareExpr{Op: op, L: l, R: r}, nil
}

// parseInList parses the parenthesized literal list of an IN clause.
func (p *parser) parseInList(x Expr, negate bool) (Expr, error) {
	if p.peek().kind != tokLParen {
		return nil, p.errorf("expected ( after IN")
	}
	p.next()
	var values []Value
	for {
		tok := p.next()
		switch tok.kind {
		case tokString:
			values = append(values, stringVal(tok.text))
		case tokInt:
			n, err := strconv.ParseInt(tok.text, 10, 64)
			if err != nil {
				return nil, &SyntaxError{tok.pos, fmt.Sprintf("bad integer %q", tok.text)}
			}
			values = append(values, intVal(n))
		case tokFloat:
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, &SyntaxError{tok.pos, fmt.Sprintf("bad float %q", tok.text)}
			}
			values = append(values, floatVal(f))
		default:
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("IN list needs literals, got %s", tok)}
		}
		sep := p.next()
		if sep.kind == tokRParen {
			return &InExpr{X: x, Values: values, Negate: negate}, nil
		}
		if sep.kind != tokComma {
			return nil, &SyntaxError{sep.pos, fmt.Sprintf("expected , or ) in IN list, got %s", sep)}
		}
	}
}

func (p *parser) parseOperand() (Expr, error) {
	tok := p.next()
	switch tok.kind {
	case tokInt:
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("bad integer %q", tok.text)}
		}
		return &LiteralExpr{Val: intVal(n)}, nil
	case tokFloat:
		f, err := strconv.ParseFloat(tok.text, 64)
		if err != nil {
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("bad float %q", tok.text)}
		}
		return &LiteralExpr{Val: floatVal(f)}, nil
	case tokString:
		return &LiteralExpr{Val: stringVal(tok.text)}, nil
	case tokIdent:
		lower := strings.ToLower(tok.text)
		if lower == "has" || lower == "category" {
			if p.peek().kind != tokLParen {
				return nil, p.errorf("expected ( after %s", lower)
			}
			p.next()
			arg := p.next()
			if arg.kind != tokString {
				return nil, &SyntaxError{arg.pos, fmt.Sprintf("%s() needs a string argument, got %s", lower, arg)}
			}
			if p.peek().kind != tokRParen {
				return nil, p.errorf("expected ) to close %s(", lower)
			}
			p.next()
			return &FuncExpr{Name: lower, Arg: arg.text}, nil
		}
		if lower == "true" || lower == "false" {
			return &LiteralExpr{Val: boolVal(lower == "true")}, nil
		}
		f, ok := parseField(tok.text)
		if !ok {
			return nil, &SyntaxError{tok.pos, fmt.Sprintf("unknown identifier %q", tok.text)}
		}
		return &FieldExpr{Field: f}, nil
	default:
		return nil, &SyntaxError{tok.pos, fmt.Sprintf("expected operand, got %s", tok)}
	}
}
