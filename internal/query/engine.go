package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/report"
)

// Semantic (post-parse) errors.
var (
	// ErrSemantic wraps binding/typing failures.
	ErrSemantic = errors.New("query: semantic error")
	// ErrNoScore is returned when a query uses 'score' on an engine
	// built without a pairing analyzer.
	ErrNoScore = errors.New("query: score requires a pairing analyzer")
	// ErrCanceled wraps a context cancellation or deadline expiry
	// observed mid-execution: the scan aborted and the partial result
	// was discarded (and never cached). Callers map it to a structured
	// timeout error; errors.Is(err, context.DeadlineExceeded) still
	// distinguishes deadlines from explicit cancels.
	ErrCanceled = errors.New("query: execution canceled")
)

// cancelCheckInterval is how many visited recipes pass between context
// checks during a scan — frequent enough that a canceled query aborts
// within microseconds, rare enough to keep the per-row cost invisible.
const cancelCheckInterval = 512

// Engine executes parsed queries against a recipe corpus. It is safe
// for concurrent use; hot statements are served from an internal plan
// cache keyed by normalized statement text, and — when enabled — whole
// materialized results are served from a (statement, corpus version)
// result cache in front of execution.
type Engine struct {
	store    *recipedb.Store
	catalog  *flavor.Catalog
	analyzer *pairing.Analyzer // optional; enables the 'score' field
	plans    *planCache
	results  *resultCache // nil until EnableResultCache
}

// NewEngine builds an engine. analyzer may be nil, in which case queries
// touching the 'score' field fail with ErrNoScore. The result cache
// starts disabled; call EnableResultCache to add it.
func NewEngine(store *recipedb.Store, analyzer *pairing.Analyzer) *Engine {
	return &Engine{
		store:    store,
		catalog:  store.Catalog(),
		analyzer: analyzer,
		plans:    newPlanCache(DefaultPlanCacheCapacity),
	}
}

// EnableResultCache adds a byte-bounded result cache keyed by
// (normalized statement, corpus version) in front of execution.
// maxBytes <= 0 selects DefaultResultCacheBytes. Call before the
// engine is shared between goroutines.
func (e *Engine) EnableResultCache(maxBytes int64) {
	e.results = newResultCache(maxBytes)
}

// CacheStats reports the plan cache's hit/miss counters.
func (e *Engine) CacheStats() CacheStats {
	return e.plans.stats()
}

// ResultCacheStats reports the result cache's counters; the zero value
// (Enabled == false) when the cache was never enabled.
func (e *Engine) ResultCacheStats() ResultCacheStats {
	if e.results == nil {
		return ResultCacheStats{}
	}
	return e.results.stats()
}

// Result is a materialized query result. Results returned by Run may
// be shared with other callers through the result cache: treat every
// field as read-only.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Scanned is the number of recipes the executor visited; with the
	// region-index optimization this is less than the corpus size. A
	// result-cache hit reports the scan count of the execution that
	// populated the entry.
	Scanned int
	// Version is the corpus version the result was computed at. The
	// executor runs inside one corpus read epoch, so the result is
	// exactly the statement's answer at this version.
	Version uint64
}

// Table renders the result as an ASCII table.
func (r *Result) Table(title string) *report.Table {
	t := report.NewTable(title, r.Columns...)
	for _, row := range r.Rows {
		cells := make([]interface{}, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.AddRow(cells...)
	}
	return t
}

// Run executes a CQL statement with no deadline; see RunContext.
func (e *Engine) Run(input string) (*Result, error) {
	return e.RunContext(context.Background(), input)
}

// RunContext executes a CQL statement. A result-cache hit (same
// normalized statement, same corpus version) returns the shared
// materialized Result without planning or scanning; a plan-cache hit
// skips Parse and bind; misses plan from scratch and populate both
// caches. Statements that fail to parse or bind are never cached.
// Execution happens inside one corpus read epoch, so the returned
// Result is a consistent snapshot stamped with its corpus version.
//
// The scan checks ctx every cancelCheckInterval rows: when the context
// is canceled or its deadline passes, execution aborts promptly with
// an error wrapping ErrCanceled (and the context's cause), the read
// epoch is released, and nothing is cached. No goroutines are spawned,
// so a canceled query leaks nothing.
func (e *Engine) RunContext(ctx context.Context, input string) (*Result, error) {
	key := normalizeStatement(input)
	if e.results != nil {
		if res, ok := e.results.get(key, e.store.Version()); ok {
			return res, nil
		}
	}
	p, ok := e.plans.get(key)
	if !ok {
		q, err := Parse(input)
		if err != nil {
			return nil, err
		}
		c, err := e.bind(q)
		if err != nil {
			return nil, err
		}
		p = &cachedPlan{key: key, q: q, c: c}
		e.plans.put(p)
	}
	var res *Result
	var execErr error
	e.store.Read(func(v *recipedb.View) {
		res, execErr = e.exec(ctx, p.q, p.c, v)
	})
	if execErr != nil {
		return nil, execErr
	}
	if e.results != nil {
		e.results.put(key, res.Version, res)
	}
	return res, nil
}

// compiledExpr is an expression with has()/category() arguments bound to
// catalog IDs.
type compiledExpr struct {
	expr      Expr
	hasIDs    map[string]flavor.ID
	catIDs    map[string]flavor.Category
	usesScore bool
}

// bind resolves function arguments and detects score usage so execution
// never fails on a per-row basis for static reasons.
func (e *Engine) bind(q *Query) (*compiledExpr, error) {
	c := &compiledExpr{
		expr:   q.Where,
		hasIDs: make(map[string]flavor.ID),
		catIDs: make(map[string]flavor.Category),
	}
	for _, it := range q.Items {
		if it.Field == FieldScore && !it.Star {
			c.usesScore = true
		}
	}
	var walk func(Expr) error
	walk = func(x Expr) error {
		switch n := x.(type) {
		case nil:
			return nil
		case *BinaryExpr:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case *NotExpr:
			return walk(n.X)
		case *CompareExpr:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case *FieldExpr:
			if n.Field == FieldScore {
				c.usesScore = true
			}
			return nil
		case *InExpr:
			return walk(n.X)
		case *LiteralExpr:
			return nil
		case *FuncExpr:
			switch n.Name {
			case "has":
				id, ok := e.catalog.Lookup(n.Arg)
				if !ok {
					return fmt.Errorf("%w: has(%q): unknown ingredient", ErrSemantic, n.Arg)
				}
				c.hasIDs[n.Arg] = id
			case "category":
				cat, err := flavor.ParseCategory(n.Arg)
				if err != nil {
					return fmt.Errorf("%w: category(%q): unknown category", ErrSemantic, n.Arg)
				}
				c.catIDs[n.Arg] = cat
			default:
				return fmt.Errorf("%w: unknown function %q", ErrSemantic, n.Name)
			}
			return nil
		}
		return fmt.Errorf("%w: unhandled expression node %T", ErrSemantic, x)
	}
	if err := walk(q.Where); err != nil {
		return nil, err
	}
	if c.usesScore && e.analyzer == nil {
		return nil, ErrNoScore
	}
	return c, nil
}

// scanPlan describes how the executor will enumerate candidate recipes.
// The full WHERE clause is still evaluated per candidate — indexes only
// narrow the scan.
type scanPlan struct {
	// region != recipedb.World pins the region index.
	region recipedb.Region
	// ingredient pins the ingredient inverted index when useIngredient
	// is true.
	ingredient    flavor.ID
	useIngredient bool
}

// String renders the plan for EXPLAIN output.
func (p scanPlan) describe(e *Engine, v *recipedb.View) string {
	switch {
	case p.useIngredient && p.region != recipedb.World:
		return fmt.Sprintf("ingredient index scan on %q (%d candidates) with region filter %s",
			e.catalog.Ingredient(p.ingredient).Name, len(v.IngredientRecipes(p.ingredient)), p.region.Code())
	case p.useIngredient:
		return fmt.Sprintf("ingredient index scan on %q (%d candidates)",
			e.catalog.Ingredient(p.ingredient).Name, len(v.IngredientRecipes(p.ingredient)))
	case p.region != recipedb.World:
		return fmt.Sprintf("region index scan on %s (%d candidates)", p.region.Code(), v.RegionLen(p.region))
	default:
		return fmt.Sprintf("full scan (%d recipes)", v.Len())
	}
}

// planScan inspects the top-level AND chain for indexable conjuncts: a
// region equality and/or bare has() calls. Among available indexes the
// executor picks the most selective candidate list. Selectivity is
// judged against the view's snapshot, so a cached plan re-plans its
// scan on every execution — index choice tracks corpus mutations.
func (e *Engine) planScan(x Expr, c *compiledExpr, v *recipedb.View) scanPlan {
	plan := scanPlan{region: recipedb.World}
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *CompareExpr:
			if n.Op != "=" {
				return
			}
			fe, feOK := n.L.(*FieldExpr)
			lit, litOK := n.R.(*LiteralExpr)
			if !feOK || !litOK { // also accept 'CODE' = region
				fe, feOK = n.R.(*FieldExpr)
				lit, litOK = n.L.(*LiteralExpr)
			}
			if !feOK || !litOK || fe.Field != FieldRegion || lit.Val.Kind != KindString {
				return
			}
			if r, err := recipedb.ParseRegion(strings.ToUpper(lit.Val.Str)); err == nil {
				plan.region = r
			}
		case *FuncExpr:
			// A bare has('x') conjunct implies membership: every match
			// lies on the ingredient's posting list.
			if n.Name != "has" {
				return
			}
			id := c.hasIDs[n.Arg]
			if !plan.useIngredient ||
				len(v.IngredientRecipes(id)) < len(v.IngredientRecipes(plan.ingredient)) {
				plan.ingredient, plan.useIngredient = id, true
			}
		case *BinaryExpr:
			if n.Op != "and" {
				return
			}
			walk(n.L)
			walk(n.R)
		}
	}
	walk(x)
	// If both indexes apply, keep the ingredient index only when its
	// posting list is smaller than the region bucket; region filtering
	// still happens inside the WHERE evaluation either way.
	if plan.useIngredient && plan.region != recipedb.World {
		if v.RegionLen(plan.region) < len(v.IngredientRecipes(plan.ingredient)) {
			plan.useIngredient = false
		}
	}
	return plan
}

// fieldValue materializes one recipe field.
func (e *Engine) fieldValue(rec *recipedb.Recipe, f Field) (Value, error) {
	switch f {
	case FieldID:
		return intVal(int64(rec.ID)), nil
	case FieldName:
		return stringVal(rec.Name), nil
	case FieldRegion:
		return stringVal(rec.Region.Code()), nil
	case FieldSource:
		return stringVal(rec.Source.String()), nil
	case FieldSize:
		return intVal(int64(rec.Size())), nil
	case FieldScore:
		if e.analyzer == nil {
			return Value{}, ErrNoScore
		}
		s, ok := e.analyzer.RecipeScore(rec.Ingredients)
		if !ok {
			return floatVal(0), nil
		}
		return floatVal(s), nil
	}
	return Value{}, fmt.Errorf("%w: unknown field %d", ErrSemantic, f)
}

// eval evaluates an expression for one recipe.
func (e *Engine) eval(c *compiledExpr, x Expr, rec *recipedb.Recipe) (Value, error) {
	switch n := x.(type) {
	case *LiteralExpr:
		return n.Val, nil
	case *FieldExpr:
		return e.fieldValue(rec, n.Field)
	case *FuncExpr:
		switch n.Name {
		case "has":
			return boolVal(rec.Contains(c.hasIDs[n.Arg])), nil
		case "category":
			cat := c.catIDs[n.Arg]
			count := 0
			for _, id := range rec.Ingredients {
				if e.catalog.Ingredient(id).Category == cat {
					count++
				}
			}
			return intVal(int64(count)), nil
		}
		return Value{}, fmt.Errorf("%w: unknown function %q", ErrSemantic, n.Name)
	case *CompareExpr:
		l, err := e.eval(c, n.L, rec)
		if err != nil {
			return Value{}, err
		}
		r, err := e.eval(c, n.R, rec)
		if err != nil {
			return Value{}, err
		}
		ok, err := compare(n.Op, l, r)
		if err != nil {
			return Value{}, fmt.Errorf("%w: %v", ErrSemantic, err)
		}
		return boolVal(ok), nil
	case *InExpr:
		v, err := e.eval(c, n.X, rec)
		if err != nil {
			return Value{}, err
		}
		found := false
		for _, lit := range n.Values {
			ok, err := compare("=", v, lit)
			if err != nil {
				return Value{}, fmt.Errorf("%w: %v", ErrSemantic, err)
			}
			if ok {
				found = true
				break
			}
		}
		return boolVal(found != n.Negate), nil
	case *NotExpr:
		v, err := e.eval(c, n.X, rec)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindBool {
			return Value{}, fmt.Errorf("%w: NOT needs a boolean", ErrSemantic)
		}
		return boolVal(!v.Bool), nil
	case *BinaryExpr:
		l, err := e.eval(c, n.L, rec)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != KindBool {
			return Value{}, fmt.Errorf("%w: %s needs boolean operands", ErrSemantic, strings.ToUpper(n.Op))
		}
		// Short-circuit.
		if n.Op == "and" && !l.Bool {
			return boolVal(false), nil
		}
		if n.Op == "or" && l.Bool {
			return boolVal(true), nil
		}
		r, err := e.eval(c, n.R, rec)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KindBool {
			return Value{}, fmt.Errorf("%w: %s needs boolean operands", ErrSemantic, strings.ToUpper(n.Op))
		}
		if n.Op == "and" {
			return boolVal(l.Bool && r.Bool), nil
		}
		return boolVal(l.Bool || r.Bool), nil
	}
	return Value{}, fmt.Errorf("%w: unhandled node %T", ErrSemantic, x)
}

// matches applies the WHERE clause.
func (e *Engine) matches(c *compiledExpr, rec *recipedb.Recipe) (bool, error) {
	if c.expr == nil {
		return true, nil
	}
	v, err := e.eval(c, c.expr, rec)
	if err != nil {
		return false, err
	}
	if v.Kind != KindBool {
		return false, fmt.Errorf("%w: WHERE clause is %s, not boolean", ErrSemantic, v.kindName())
	}
	return v.Bool, nil
}

// starFields is the '*' expansion (score excluded: it is derived and
// comparatively expensive, so it must be requested explicitly).
var starFields = []Field{FieldID, FieldName, FieldRegion, FieldSource, FieldSize}

// expandItems resolves '*' markers and reports whether any aggregate is
// present.
func expandItems(items []SelectItem) (out []SelectItem, hasAgg, hasPlain bool, err error) {
	for _, it := range items {
		switch {
		case it.Agg != nil:
			hasAgg = true
			out = append(out, it)
		case it.Star:
			hasPlain = true
			for _, f := range starFields {
				out = append(out, SelectItem{Field: f})
			}
		default:
			hasPlain = true
			out = append(out, it)
		}
	}
	return out, hasAgg, hasPlain, nil
}

// Exec executes a parsed query, binding it first. Callers holding a
// statement string should prefer Run, which caches the bound plan and
// (when enabled) the materialized result.
func (e *Engine) Exec(q *Query) (*Result, error) {
	c, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	var res *Result
	var execErr error
	e.store.Read(func(v *recipedb.View) {
		res, execErr = e.exec(context.Background(), q, c, v)
	})
	return res, execErr
}

// exec executes a bound plan against one corpus view. q and c are
// treated as immutable, so cached plans execute concurrently without
// copying; v pins the (version, snapshot) pair for the whole run.
func (e *Engine) exec(ctx context.Context, q *Query, c *compiledExpr, v *recipedb.View) (*Result, error) {
	items, hasAgg, hasPlain, err := expandItems(q.Items)
	if err != nil {
		return nil, err
	}
	if hasAgg && hasPlain && q.GroupBy == nil {
		return nil, fmt.Errorf("%w: mixing aggregates with plain fields requires GROUP BY", ErrSemantic)
	}
	if q.GroupBy != nil {
		for _, it := range items {
			if it.Agg == nil && it.Field != *q.GroupBy {
				return nil, fmt.Errorf("%w: column %s is neither aggregated nor the GROUP BY key", ErrSemantic, it.Label())
			}
		}
	}

	res := &Result{Version: v.Version}
	for _, it := range items {
		res.Columns = append(res.Columns, it.Label())
	}

	plan := scanPlan{region: recipedb.World}
	if q.Where != nil {
		plan = e.planScan(q.Where, c, v)
	}
	if q.Explain {
		res.Columns = []string{"plan"}
		res.Rows = [][]Value{{stringVal(plan.describe(e, v))}}
		return res, nil
	}

	var execErr error
	switch {
	case q.GroupBy != nil:
		execErr = e.execGrouped(ctx, q, c, items, plan, res, v)
	case hasAgg:
		execErr = e.execAggregate(ctx, q, c, items, plan, res, v)
	default:
		execErr = e.execScan(ctx, q, c, items, plan, res, v)
	}
	if execErr != nil {
		return nil, execErr
	}

	if q.OrderBy != "" {
		col := -1
		for i, label := range res.Columns {
			if strings.EqualFold(label, q.OrderBy) {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("%w: ORDER BY column %q is not in the select list", ErrSemantic, q.OrderBy)
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			if q.Desc {
				return less(res.Rows[j][col], res.Rows[i][col])
			}
			return less(res.Rows[i][col], res.Rows[j][col])
		})
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// forEach visits candidate recipes, honoring the chosen index and
// checking ctx every cancelCheckInterval visits so a slow scan aborts
// promptly once its deadline passes.
func (e *Engine) forEach(ctx context.Context, plan scanPlan, res *Result, v *recipedb.View, fn func(*recipedb.Recipe) error) error {
	done := ctx.Done()
	if plan.useIngredient {
		for i, rid := range v.IngredientRecipes(plan.ingredient) {
			if done != nil && i%cancelCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("%w: %w", ErrCanceled, err)
				}
			}
			rec := v.Recipe(rid)
			if plan.region != recipedb.World && rec.Region != plan.region {
				continue // region check is free; skip before counting
			}
			res.Scanned++
			if err := fn(rec); err != nil {
				return err
			}
		}
		return nil
	}
	var visitErr error
	visited := 0
	v.ForEachInRegion(plan.region, func(rec *recipedb.Recipe) {
		if visitErr != nil {
			return
		}
		if done != nil && visited%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				visitErr = fmt.Errorf("%w: %w", ErrCanceled, err)
				return
			}
		}
		visited++
		res.Scanned++
		visitErr = fn(rec)
	})
	return visitErr
}

// execScan streams plain projections.
func (e *Engine) execScan(ctx context.Context, q *Query, c *compiledExpr, items []SelectItem, plan scanPlan, res *Result, v *recipedb.View) error {
	// Fast path: with no ORDER BY the LIMIT can stop the scan early.
	stopEarly := q.OrderBy == "" && q.Limit >= 0
	return e.forEach(ctx, plan, res, v, func(rec *recipedb.Recipe) error {
		if stopEarly && len(res.Rows) >= q.Limit {
			return nil
		}
		ok, err := e.matches(c, rec)
		if err != nil || !ok {
			return err
		}
		row := make([]Value, len(items))
		for i, it := range items {
			v, err := e.fieldValue(rec, it.Field)
			if err != nil {
				return err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		return nil
	})
}

// aggState accumulates one aggregate column.
type aggState struct {
	count int
	sum   float64
	min   float64
	max   float64
}

func (a *aggState) add(v float64) {
	if a.count == 0 || v < a.min {
		a.min = v
	}
	if a.count == 0 || v > a.max {
		a.max = v
	}
	a.count++
	a.sum += v
}

// final renders the aggregate output value.
func (a *aggState) final(fn AggFunc, field Field) Value {
	switch fn {
	case AggCount:
		return intVal(int64(a.count))
	case AggSum:
		if field == FieldScore {
			return floatVal(a.sum)
		}
		return intVal(int64(a.sum))
	case AggAvg:
		if a.count == 0 {
			return floatVal(0)
		}
		return floatVal(a.sum / float64(a.count))
	case AggMin:
		if a.count == 0 {
			return floatVal(0)
		}
		if field == FieldScore {
			return floatVal(a.min)
		}
		return intVal(int64(a.min))
	case AggMax:
		if a.count == 0 {
			return floatVal(0)
		}
		if field == FieldScore {
			return floatVal(a.max)
		}
		return intVal(int64(a.max))
	}
	return Value{}
}

// accumulate feeds one matching recipe into a row of aggregate states.
func (e *Engine) accumulate(items []SelectItem, states []aggState, rec *recipedb.Recipe) error {
	for i, it := range items {
		if it.Agg == nil {
			continue
		}
		if it.Star { // count(*)
			states[i].add(1)
			continue
		}
		v, err := e.fieldValue(rec, it.Field)
		if err != nil {
			return err
		}
		f, ok := v.asFloat()
		if !ok {
			// count(name) etc.: count non-numeric presence.
			f = 1
			if *it.Agg != AggCount {
				return fmt.Errorf("%w: %s over non-numeric field %s", ErrSemantic, it.Agg, it.Field)
			}
		}
		states[i].add(f)
	}
	return nil
}

// execAggregate computes a single aggregate row.
func (e *Engine) execAggregate(ctx context.Context, q *Query, c *compiledExpr, items []SelectItem, plan scanPlan, res *Result, v *recipedb.View) error {
	states := make([]aggState, len(items))
	err := e.forEach(ctx, plan, res, v, func(rec *recipedb.Recipe) error {
		ok, err := e.matches(c, rec)
		if err != nil || !ok {
			return err
		}
		return e.accumulate(items, states, rec)
	})
	if err != nil {
		return err
	}
	row := make([]Value, len(items))
	for i, it := range items {
		row[i] = states[i].final(*it.Agg, it.Field)
	}
	res.Rows = append(res.Rows, row)
	return nil
}

// execGrouped computes GROUP BY rows.
func (e *Engine) execGrouped(ctx context.Context, q *Query, c *compiledExpr, items []SelectItem, plan scanPlan, res *Result, v *recipedb.View) error {
	type group struct {
		key    Value
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string

	err := e.forEach(ctx, plan, res, v, func(rec *recipedb.Recipe) error {
		ok, err := e.matches(c, rec)
		if err != nil || !ok {
			return err
		}
		keyVal, err := e.fieldValue(rec, *q.GroupBy)
		if err != nil {
			return err
		}
		k := keyVal.String()
		g, ok2 := groups[k]
		if !ok2 {
			g = &group{key: keyVal, states: make([]aggState, len(items))}
			groups[k] = g
			order = append(order, k)
		}
		return e.accumulate(items, g.states, rec)
	})
	if err != nil {
		return err
	}
	sort.Strings(order) // deterministic default order
	for _, k := range order {
		g := groups[k]
		row := make([]Value, len(items))
		for i, it := range items {
			if it.Agg == nil {
				row[i] = g.key
				continue
			}
			row[i] = g.states[i].final(*it.Agg, it.Field)
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}
