package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// two tight groups far apart, for unambiguous clustering.
var testVectors = [][]float64{
	{1, 0, 0}, {0.9, 0.1, 0}, {1, 0.05, 0}, // group A
	{0, 0, 1}, {0, 0.1, 0.9}, // group B
}

func TestCosineDistance(t *testing.T) {
	if d := CosineDistance([]float64{1, 0}, []float64{1, 0}); d != 0 {
		t.Fatalf("identical distance %v", d)
	}
	if d := CosineDistance([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("orthogonal distance %v", d)
	}
	if d := CosineDistance([]float64{1, 0}, []float64{2, 0}); math.Abs(d) > 1e-12 {
		t.Fatalf("scaled distance %v, cosine should ignore magnitude", d)
	}
	if d := CosineDistance([]float64{0, 0}, []float64{1, 0}); d != 1 {
		t.Fatalf("zero-vector distance %v", d)
	}
}

func TestCosineDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	CosineDistance([]float64{1}, []float64{1, 2})
}

func TestEuclideanDistance(t *testing.T) {
	if d := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("3-4-5 distance %v", d)
	}
}

func TestHierarchicalSeparatesGroups(t *testing.T) {
	for _, linkage := range []Linkage{Complete, Single, Average} {
		root, err := Hierarchical(testVectors, CosineDistance, linkage)
		if err != nil {
			t.Fatal(err)
		}
		if root.Size != len(testVectors) {
			t.Fatalf("%s: root size %d", linkage, root.Size)
		}
		// Cutting below the top merge must yield exactly the two groups.
		groups := Cut(root, root.Height-1e-9)
		if len(groups) != 2 {
			t.Fatalf("%s: cut gave %d groups: %v", linkage, len(groups), groups)
		}
		want := map[int]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
		for gi, g := range groups {
			for _, leaf := range g {
				if got := want[leaf]; gi == 0 && got != want[g[0]] {
					t.Fatalf("%s: leaf %d misplaced: %v", linkage, leaf, groups)
				}
			}
		}
		// Group contents: {0,1,2} and {3,4}.
		if len(groups[0]) != 3 || len(groups[1]) != 2 {
			t.Fatalf("%s: group sizes %v", linkage, groups)
		}
	}
}

func TestHierarchicalEdgeCases(t *testing.T) {
	if _, err := Hierarchical(nil, CosineDistance, Complete); err == nil {
		t.Fatal("empty input accepted")
	}
	root, err := Hierarchical([][]float64{{1, 2}}, CosineDistance, Complete)
	if err != nil || !root.IsLeaf() || root.Leaf != 0 {
		t.Fatalf("single observation: %+v err %v", root, err)
	}
}

func TestHeightsMonotoneUpward(t *testing.T) {
	// Along any root-to-leaf path, heights must not increase downward
	// for complete and average linkage on these data.
	root, err := Hierarchical(testVectors, CosineDistance, Complete)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node, parent float64)
	walk = func(n *Node, parent float64) {
		if n.IsLeaf() {
			return
		}
		if n.Height > parent+1e-9 {
			t.Fatalf("child height %v above parent %v", n.Height, parent)
		}
		walk(n.Left, n.Height)
		walk(n.Right, n.Height)
	}
	walk(root, math.Inf(1))
}

func TestCutExtremes(t *testing.T) {
	root, _ := Hierarchical(testVectors, CosineDistance, Average)
	// Cutting at +inf yields one group with all leaves.
	all := Cut(root, math.Inf(1))
	if len(all) != 1 || len(all[0]) != len(testVectors) {
		t.Fatalf("cut at inf: %v", all)
	}
	// Cutting below zero yields singletons.
	singles := Cut(root, -1)
	if len(singles) != len(testVectors) {
		t.Fatalf("cut below 0: %v", singles)
	}
}

func TestLeavesCoverAllObservations(t *testing.T) {
	root, _ := Hierarchical(testVectors, EuclideanDistance, Single)
	leaves := root.Leaves()
	if len(leaves) != len(testVectors) {
		t.Fatalf("leaves %v", leaves)
	}
	seen := map[int]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Fatalf("duplicate leaf %d", l)
		}
		seen[l] = true
	}
}

func TestRender(t *testing.T) {
	root, _ := Hierarchical(testVectors, CosineDistance, Complete)
	out := Render(root, []string{"a", "b", "c", "d", "e"})
	for _, label := range []string{"a", "b", "c", "d", "e"} {
		if !strings.Contains(out, label) {
			t.Fatalf("render missing %q:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "h=") {
		t.Fatal("render missing heights")
	}
	// Missing labels fall back to indices.
	out = Render(root, nil)
	if !strings.Contains(out, "#0") {
		t.Fatal("fallback labels missing")
	}
}

func TestCopheneticDistance(t *testing.T) {
	root, _ := Hierarchical(testVectors, CosineDistance, Complete)
	// Within-group cophenetic distance < between-group.
	within, err := CopheneticDistance(root, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	between, err := CopheneticDistance(root, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if within >= between {
		t.Fatalf("within %v >= between %v", within, between)
	}
	if d, _ := CopheneticDistance(root, 2, 2); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	if _, err := CopheneticDistance(root, 0, 99); err == nil {
		t.Fatal("unknown leaf accepted")
	}
}

func TestCopheneticUltrametric(t *testing.T) {
	// Ultrametric inequality: d(i,k) <= max(d(i,j), d(j,k)).
	root, _ := Hierarchical(testVectors, CosineDistance, Average)
	n := len(testVectors)
	f := func(a, b, c uint8) bool {
		i, j, k := int(a)%n, int(b)%n, int(c)%n
		dik, _ := CopheneticDistance(root, i, k)
		dij, _ := CopheneticDistance(root, i, j)
		djk, _ := CopheneticDistance(root, j, k)
		return dik <= math.Max(dij, djk)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkageString(t *testing.T) {
	if Complete.String() != "complete" || Single.String() != "single" || Average.String() != "average" {
		t.Fatal("linkage names wrong")
	}
	if !strings.Contains(Linkage(9).String(), "Linkage(") {
		t.Fatal("invalid linkage String")
	}
}
