// Package cluster implements agglomerative hierarchical clustering of
// cuisines. The paper frames regional cuisines as analogous to
// languages and dialects; clustering regions by their category-usage
// vectors (Fig 2 rows) or pairing signatures makes that analogy
// quantitative: which cuisines are culinary dialects of one another.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Linkage selects the inter-cluster distance update rule.
type Linkage int

const (
	// Complete linkage merges on the farthest pair (compact clusters).
	Complete Linkage = iota
	// Single linkage merges on the nearest pair (chaining clusters).
	Single
	// Average linkage (UPGMA) merges on the mean pairwise distance.
	Average
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case Complete:
		return "complete"
	case Single:
		return "single"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Node is one node of the dendrogram. Leaves carry a label index;
// internal nodes carry the merge height and two children.
type Node struct {
	// Leaf is the observation index for leaves, -1 for internal nodes.
	Leaf int
	// Height is the merge distance (0 for leaves).
	Height float64
	// Left and Right are the children (nil for leaves).
	Left, Right *Node
	// Size is the number of leaves under the node.
	Size int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Leaf >= 0 }

// Leaves returns the observation indices under the node in left-to-
// right order.
func (n *Node) Leaves() []int {
	if n.IsLeaf() {
		return []int{n.Leaf}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// CosineDistance returns 1 - cosine similarity of two non-negative
// vectors; zero vectors are at distance 1 from everything (including
// each other) by convention.
func CosineDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("cluster: vector length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	sim := dot / math.Sqrt(na*nb)
	if sim > 1 {
		sim = 1 // numerical guard
	}
	return 1 - sim
}

// EuclideanDistance returns the L2 distance.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("cluster: vector length mismatch")
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Hierarchical clusters the observation vectors with the given distance
// and linkage, returning the dendrogram root. It errors on fewer than
// one observation; a single observation returns its leaf.
func Hierarchical(vectors [][]float64, dist func(a, b []float64) float64, linkage Linkage) (*Node, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no observations")
	}
	// Active cluster list.
	clusters := make([]*Node, n)
	for i := range clusters {
		clusters[i] = &Node{Leaf: i, Size: 1}
	}
	if n == 1 {
		return clusters[0], nil
	}
	// Pairwise distance matrix between current clusters; maintained as
	// clusters merge (Lance-Williams-style recomputation from members
	// for clarity — n is the number of cuisines, 22, so O(n^3) with
	// full recomputation is irrelevant).
	leafDist := make([][]float64, n)
	for i := range leafDist {
		leafDist[i] = make([]float64, n)
		for j := range leafDist[i] {
			if i != j {
				leafDist[i][j] = dist(vectors[i], vectors[j])
			}
		}
	}
	clusterDist := func(a, b *Node) float64 {
		la, lb := a.Leaves(), b.Leaves()
		var best float64
		switch linkage {
		case Complete:
			for _, x := range la {
				for _, y := range lb {
					if d := leafDist[x][y]; d > best {
						best = d
					}
				}
			}
		case Single:
			best = math.Inf(1)
			for _, x := range la {
				for _, y := range lb {
					if d := leafDist[x][y]; d < best {
						best = d
					}
				}
			}
		case Average:
			var sum float64
			for _, x := range la {
				for _, y := range lb {
					sum += leafDist[x][y]
				}
			}
			best = sum / float64(len(la)*len(lb))
		default:
			panic("cluster: unknown linkage")
		}
		return best
	}

	for len(clusters) > 1 {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := clusterDist(clusters[i], clusters[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := &Node{
			Leaf:   -1,
			Height: bd,
			Left:   clusters[bi],
			Right:  clusters[bj],
			Size:   clusters[bi].Size + clusters[bj].Size,
		}
		next := make([]*Node, 0, len(clusters)-1)
		for k, c := range clusters {
			if k != bi && k != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	return clusters[0], nil
}

// Cut returns the cluster assignment obtained by cutting the dendrogram
// at the given height: groups of observation indices, each sorted, the
// groups ordered by their smallest member.
func Cut(root *Node, height float64) [][]int {
	var groups [][]int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() || n.Height <= height {
			leaves := n.Leaves()
			sort.Ints(leaves)
			groups = append(groups, leaves)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Render draws the dendrogram as indented text with merge heights,
// using the provided labels for leaves.
func Render(root *Node, labels []string) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.IsLeaf() {
			label := fmt.Sprintf("#%d", n.Leaf)
			if n.Leaf < len(labels) {
				label = labels[n.Leaf]
			}
			fmt.Fprintf(&b, "%s%s\n", indent, label)
			return
		}
		fmt.Fprintf(&b, "%s┐ h=%.3f (%d)\n", indent, n.Height, n.Size)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(root, 0)
	return b.String()
}

// CopheneticDistance returns the height at which leaves i and j first
// share a cluster — the dendrogram's induced ultrametric.
func CopheneticDistance(root *Node, i, j int) (float64, error) {
	if i == j {
		return 0, nil
	}
	node := lca(root, i, j)
	if node == nil {
		return 0, fmt.Errorf("cluster: leaves %d and %d not under the root", i, j)
	}
	return node.Height, nil
}

func lca(n *Node, i, j int) *Node {
	if n == nil {
		return nil
	}
	hasI, hasJ := false, false
	for _, l := range n.Leaves() {
		if l == i {
			hasI = true
		}
		if l == j {
			hasJ = true
		}
	}
	if !hasI || !hasJ {
		return nil
	}
	if n.IsLeaf() {
		return n
	}
	if c := lca(n.Left, i, j); c != nil {
		return c
	}
	if c := lca(n.Right, i, j); c != nil {
		return c
	}
	return n
}
