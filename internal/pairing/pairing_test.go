package pairing

import (
	"math"
	"testing"
	"testing/quick"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
)

var (
	testCatalog  *flavor.Catalog
	testAnalyzer *Analyzer
)

func init() {
	var err error
	testCatalog, err = flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	testAnalyzer = NewAnalyzer(testCatalog)
}

func lookup(t *testing.T, name string) flavor.ID {
	t.Helper()
	id, ok := testCatalog.Lookup(name)
	if !ok {
		t.Fatalf("catalog missing %q", name)
	}
	return id
}

func ids(t *testing.T, names ...string) []flavor.ID {
	t.Helper()
	out := make([]flavor.ID, len(names))
	for i, n := range names {
		out[i] = lookup(t, n)
	}
	return out
}

func TestSharedMatchesCatalog(t *testing.T) {
	f := func(a, b uint16) bool {
		x := flavor.ID(int(a) % testCatalog.Len())
		y := flavor.ID(int(b) % testCatalog.Len())
		if x == y {
			// The diagonal is unused (recipes never repeat ingredients)
			// and intentionally left 0 in the matrix.
			return testAnalyzer.Shared(x, y) == 0
		}
		return testAnalyzer.Shared(x, y) == testCatalog.SharedCompounds(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedDiagonalIsProfileSize(t *testing.T) {
	// Shared(i,i) is 0 by construction (matrix diagonal untouched);
	// recipes never repeat ingredients so the diagonal is unused.
	for i := 0; i < 5; i++ {
		if got := testAnalyzer.Shared(flavor.ID(i), flavor.ID(i)); got != 0 {
			t.Fatalf("diagonal %d = %d", i, got)
		}
	}
}

func TestRecipeScoreTwoIngredients(t *testing.T) {
	// With exactly two ingredients, Ns = |F(a) ∩ F(b)|.
	pair := ids(t, "tomato", "basil")
	got, ok := testAnalyzer.RecipeScore(pair)
	if !ok {
		t.Fatal("two-ingredient recipe should be scorable")
	}
	want := float64(testCatalog.SharedCompounds(pair[0], pair[1]))
	if got != want {
		t.Fatalf("Ns = %v, want %v", got, want)
	}
}

func TestRecipeScoreFormula(t *testing.T) {
	// Manual check of the 2/(n(n-1)) Σ formula on three ingredients.
	r := ids(t, "tomato", "basil", "olive oil")
	s01 := float64(testAnalyzer.Shared(r[0], r[1]))
	s02 := float64(testAnalyzer.Shared(r[0], r[2]))
	s12 := float64(testAnalyzer.Shared(r[1], r[2]))
	want := 2 * (s01 + s02 + s12) / (3 * 2)
	got, ok := testAnalyzer.RecipeScore(r)
	if !ok || math.Abs(got-want) > 1e-12 {
		t.Fatalf("Ns = %v, want %v", got, want)
	}
}

func TestRecipeScorePermutationInvariant(t *testing.T) {
	r := ids(t, "tomato", "basil", "olive oil", "garlic", "salt")
	base, ok := testAnalyzer.RecipeScore(r)
	if !ok {
		t.Fatal("unscorable")
	}
	src := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		perm := append([]flavor.ID(nil), r...)
		src.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, ok := testAnalyzer.RecipeScore(perm)
		if !ok || got != base {
			t.Fatalf("permutation changed score: %v vs %v", got, base)
		}
	}
}

func TestRecipeScoreUndefined(t *testing.T) {
	if _, ok := testAnalyzer.RecipeScore(nil); ok {
		t.Fatal("empty recipe should be unscorable")
	}
	if _, ok := testAnalyzer.RecipeScore(ids(t, "tomato")); ok {
		t.Fatal("singleton recipe should be unscorable")
	}
}

func TestRecipeScoreSkipsNoProfileIngredients(t *testing.T) {
	// gelatin has no profile; adding it must not change the score.
	base, _ := testAnalyzer.RecipeScore(ids(t, "tomato", "basil", "olive oil"))
	with, ok := testAnalyzer.RecipeScore(ids(t, "tomato", "basil", "olive oil", "gelatin"))
	if !ok || with != base {
		t.Fatalf("no-profile ingredient changed score: %v vs %v", with, base)
	}
	// A recipe of only no-profile ingredients is unscorable.
	if _, ok := testAnalyzer.RecipeScore(ids(t, "gelatin", "food coloring")); ok {
		t.Fatal("profile-free recipe should be unscorable")
	}
	// One profiled + one unprofiled: still fewer than two profiled.
	if _, ok := testAnalyzer.RecipeScore(ids(t, "tomato", "gelatin")); ok {
		t.Fatal("single profiled ingredient should be unscorable")
	}
}

func TestRecipeScoreNonNegative(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 15 {
			raw = raw[:15]
		}
		seen := map[flavor.ID]bool{}
		var r []flavor.ID
		for _, v := range raw {
			id := flavor.ID(int(v) % testCatalog.Len())
			if !seen[id] {
				seen[id] = true
				r = append(r, id)
			}
		}
		if len(r) < 2 {
			return true
		}
		s, ok := testAnalyzer.RecipeScore(r)
		return !ok || s >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// buildTestStore assembles a small fixed cuisine for null-model tests.
func buildTestStore(t *testing.T) (*recipedb.Store, *recipedb.Cuisine) {
	t.Helper()
	s := recipedb.NewStore(testCatalog)
	recipes := [][]string{
		{"tomato", "basil", "olive oil", "garlic"},
		{"tomato", "mozzarella cheese", "basil"},
		{"pasta", "parmesan cheese", "olive oil", "black pepper"},
		{"tomato", "olive oil", "oregano", "garlic", "onion"},
		{"eggplant", "tomato", "parmesan cheese", "basil", "olive oil"},
		{"pasta", "tomato", "garlic", "chili pepper", "olive oil"},
		{"polenta", "parmesan cheese", "butter"},
		{"risotto rice", "onion", "white wine", "parmesan cheese", "butter"},
	}
	for i, names := range recipes {
		ing := make([]flavor.ID, 0, len(names))
		for _, n := range names {
			id, ok := testCatalog.Lookup(n)
			if !ok {
				// fall back for names not in catalog
				id, ok = testCatalog.Lookup("rice")
				if !ok {
					t.Fatal("rice missing")
				}
			}
			dup := false
			for _, e := range ing {
				if e == id {
					dup = true
				}
			}
			if !dup {
				ing = append(ing, id)
			}
		}
		if _, err := s.Add("r", recipedb.Italy, recipedb.AllRecipes, ing); err != nil {
			t.Fatalf("recipe %d: %v", i, err)
		}
	}
	return s, s.BuildCuisine(recipedb.Italy)
}

func TestCuisineScore(t *testing.T) {
	store, c := buildTestStore(t)
	mean, n := testAnalyzer.CuisineScore(store, c)
	if n != 8 {
		t.Fatalf("scored %d of 8", n)
	}
	// Must equal the arithmetic mean of individual recipe scores.
	var sum float64
	for _, rid := range c.RecipeIDs {
		v, ok := testAnalyzer.RecipeScore(store.Recipe(rid).Ingredients)
		if !ok {
			t.Fatal("unscorable recipe in fixture")
		}
		sum += v
	}
	if math.Abs(mean-sum/8) > 1e-12 {
		t.Fatalf("CuisineScore %v != manual %v", mean, sum/8)
	}
}

func TestNullSamplerErrors(t *testing.T) {
	store, c := buildTestStore(t)
	if _, err := NewNullSampler(testAnalyzer, store, c, Model(9), rng.New(1)); err == nil {
		t.Fatal("invalid model accepted")
	}
	empty := store.BuildCuisine(recipedb.Korea)
	if _, err := NewNullSampler(testAnalyzer, store, empty, RandomModel, rng.New(1)); err == nil {
		t.Fatal("empty cuisine accepted")
	}
}

func TestNullSamplerPreservesSizeDistribution(t *testing.T) {
	store, c := buildTestStore(t)
	sizes := map[int]bool{}
	for _, sz := range c.Sizes {
		sizes[sz] = true
	}
	for _, m := range AllModels() {
		s, err := NewNullSampler(testAnalyzer, store, c, m, rng.New(uint64(m)+3))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for i := 0; i < 500; i++ {
			r := s.Draw()
			if !sizes[len(r)] {
				t.Fatalf("%s: drew size %d not in cuisine size set %v", m, len(r), c.Sizes)
			}
		}
	}
}

func TestNullSamplerDrawsDistinctFromPool(t *testing.T) {
	store, c := buildTestStore(t)
	inPool := map[flavor.ID]bool{}
	for _, id := range c.UniqueIngredients {
		inPool[id] = true
	}
	for _, m := range AllModels() {
		s, err := NewNullSampler(testAnalyzer, store, c, m, rng.New(uint64(m)+11))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			r := s.Draw()
			seen := map[flavor.ID]bool{}
			for _, id := range r {
				if !inPool[id] {
					t.Fatalf("%s drew %q outside the cuisine set", m, testCatalog.Ingredient(id).Name)
				}
				if seen[id] {
					t.Fatalf("%s drew duplicate ingredient", m)
				}
				seen[id] = true
			}
		}
	}
}

func TestCategoryModelPreservesComposition(t *testing.T) {
	store, c := buildTestStore(t)
	// Build the multiset of category compositions of the cuisine.
	comp := func(r []flavor.ID) string {
		counts := make([]byte, flavor.NumCategories)
		for _, id := range r {
			counts[testCatalog.Ingredient(id).Category]++
		}
		return string(counts)
	}
	valid := map[string]bool{}
	for _, rid := range c.RecipeIDs {
		valid[comp(store.Recipe(rid).Ingredients)] = true
	}
	for _, m := range []Model{CategoryModel, FrequencyCategoryModel} {
		s, err := NewNullSampler(testAnalyzer, store, c, m, rng.New(uint64(m)+17))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			r := s.Draw()
			if !valid[comp(r)] {
				t.Fatalf("%s drew a category composition not present in the cuisine", m)
			}
		}
	}
}

func TestFrequencyModelBiasesTowardPopular(t *testing.T) {
	store, c := buildTestStore(t)
	// tomato (freq 5) should be drawn far more often than butter (freq 2)
	// under the frequency model, roughly matching the 5:2 ratio.
	tomato := lookup(t, "tomato")
	butter := lookup(t, "butter")
	s, err := NewNullSampler(testAnalyzer, store, c, FrequencyModel, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var nt, nb int
	for i := 0; i < 30000; i++ {
		for _, id := range s.Draw() {
			switch id {
			case tomato:
				nt++
			case butter:
				nb++
			}
		}
	}
	ratio := float64(nt) / float64(nb)
	// Without-replacement draws damp the ratio below 5/2=2.5; it must
	// still clearly exceed 1.5.
	if ratio < 1.5 {
		t.Fatalf("frequency model ratio tomato/butter = %.2f, want > 1.5", ratio)
	}
	// Random model should be near 1.
	s2, _ := NewNullSampler(testAnalyzer, store, c, RandomModel, rng.New(29))
	nt, nb = 0, 0
	for i := 0; i < 30000; i++ {
		for _, id := range s2.Draw() {
			switch id {
			case tomato:
				nt++
			case butter:
				nb++
			}
		}
	}
	ratio = float64(nt) / float64(nb)
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("random model ratio = %.2f, want ≈ 1", ratio)
	}
}

func TestCompareDeterministic(t *testing.T) {
	store, c := buildTestStore(t)
	a, err := Compare(testAnalyzer, store, c, RandomModel, 2000, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(testAnalyzer, store, c, RandomModel, 2000, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Compare not deterministic: %+v vs %+v", a, b)
	}
	if a.NRandom != 2000 {
		t.Fatalf("NRandom = %d", a.NRandom)
	}
	if a.Region != recipedb.Italy || a.Model != RandomModel {
		t.Fatalf("metadata wrong: %+v", a)
	}
	// Z must be consistent with the stored moments.
	wantZ := (a.Observed - a.NullMean) / (a.NullStd / math.Sqrt(float64(a.NRandom)))
	if math.Abs(a.Z-wantZ) > 1e-9 {
		t.Fatalf("Z = %v, want %v", a.Z, wantZ)
	}
}

func TestModelScore(t *testing.T) {
	store, c := buildTestStore(t)
	v, err := ModelScore(testAnalyzer, store, c, FrequencyModel, 2000, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("model score = %v", v)
	}
}

func TestModelStrings(t *testing.T) {
	if RandomModel.String() != "Random" || FrequencyCategoryModel.String() != "Frequency+Category" {
		t.Fatal("model names wrong")
	}
	if got := Model(9).String(); got != "Model(9)" {
		t.Fatalf("invalid model String = %q", got)
	}
	if len(AllModels()) != 4 {
		t.Fatal("paper defines 4 models")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Region: recipedb.Italy, Model: RandomModel, Observed: 1, NullMean: 2, NullStd: 3, Z: -4.5}
	s := r.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("Result.String = %q", s)
	}
}
