package pairing

import (
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/stats"
)

// TupleScore generalizes the pairwise food-pairing score to k-tuples,
// one of the paper's explicit open questions ("What are the patterns at
// higher order n-tuples ... triples and quadruples of ingredients?").
// For a recipe R with n profiled ingredients,
//
//	Ns_k(R) = C(n,k)^-1 * Σ_{S ⊆ R, |S|=k} |∩_{i∈S} F(i)|
//
// Ns_2 coincides with RecipeScore. The boolean result is false when the
// recipe has fewer than k profiled ingredients.
func (a *Analyzer) TupleScore(ids []flavor.ID, k int) (float64, bool) {
	if k < 2 {
		return 0, false
	}
	if k == 2 {
		return a.RecipeScore(ids)
	}
	prof := make([]flavor.ID, 0, len(ids))
	for _, id := range ids {
		if a.hasProfile[id] {
			prof = append(prof, id)
		}
	}
	n := len(prof)
	if n < k {
		return 0, false
	}
	catalog := a.catalog
	var total float64
	count := 0
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		// Intersection cardinality of the current k-subset.
		inter := catalog.Profile(prof[idx[0]]).Clone()
		for j := 1; j < k; j++ {
			inter = inter.Intersect(catalog.Profile(prof[idx[j]]))
			if inter.IsEmpty() {
				break
			}
		}
		total += float64(inter.Count())
		count++
		// Advance combination.
		j := k - 1
		for j >= 0 && idx[j] == n-k+j {
			j--
		}
		if j < 0 {
			break
		}
		idx[j]++
		for l := j + 1; l < k; l++ {
			idx[l] = idx[l-1] + 1
		}
	}
	return total / float64(count), true
}

// TupleResult reports a cuisine's k-tuple sharing against the Random
// control.
type TupleResult struct {
	Region   recipedb.Region
	K        int
	Observed float64
	NullMean float64
	NullStd  float64
	NRandom  int
	Z        float64
}

// CompareTuples runs the higher-order analogue of Compare for tuple
// order k against the Random model with nRecipes null draws.
func CompareTuples(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, k, nRecipes int, src *rng.Source) (TupleResult, error) {
	if k < 2 || k > 6 {
		return TupleResult{}, fmt.Errorf("pairing: tuple order %d outside [2,6]", k)
	}
	var obs stats.Accumulator
	for _, ings := range store.IngredientLists(c.RecipeIDs) {
		if v, ok := a.TupleScore(ings, k); ok {
			obs.Add(v)
		}
	}
	if obs.N() == 0 {
		return TupleResult{}, fmt.Errorf("pairing: no recipes of size >= %d in %s", k, c.Region.Code())
	}
	sampler, err := NewNullSampler(a, store, c, RandomModel, src)
	if err != nil {
		return TupleResult{}, err
	}
	var null stats.Accumulator
	for i := 0; i < nRecipes; i++ {
		if v, ok := a.TupleScore(sampler.Draw(), k); ok {
			null.Add(v)
		}
	}
	if null.N() == 0 {
		return TupleResult{}, fmt.Errorf("pairing: null produced no size >= %d recipes for %s", k, c.Region.Code())
	}
	return TupleResult{
		Region:   c.Region,
		K:        k,
		Observed: obs.Mean(),
		NullMean: null.Mean(),
		NullStd:  null.PopStdDev(),
		NRandom:  null.N(),
		Z:        stats.ZScore(obs.Mean(), null.Mean(), null.PopStdDev(), null.N()),
	}, nil
}
