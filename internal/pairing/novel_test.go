package pairing

import (
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

func TestNovelPairsBasics(t *testing.T) {
	store, c := buildTestStore(t)
	pairs := NovelPairs(testAnalyzer, store, c, +1, 5, 1, 0)
	if len(pairs) == 0 {
		t.Fatal("no novel pairs found")
	}
	for i, p := range pairs {
		if p.CoOccurrences != 0 {
			t.Fatalf("pair %d co-occurs %d times, want 0", i, p.CoOccurrences)
		}
		if p.A >= p.B {
			t.Fatalf("pair %d not canonical", i)
		}
		if p.Shared != testAnalyzer.Shared(p.A, p.B) {
			t.Fatalf("pair %d shared mismatch", i)
		}
		if p.SupportA < 1 || p.SupportB < 1 {
			t.Fatalf("pair %d support below minSupport", i)
		}
		if i > 0 && p.Shared > pairs[i-1].Shared {
			t.Fatal("positive sign should rank by descending overlap")
		}
	}
}

func TestNovelPairsNegativeSign(t *testing.T) {
	store, c := buildTestStore(t)
	pairs := NovelPairs(testAnalyzer, store, c, -1, 5, 1, 0)
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Shared < pairs[i-1].Shared {
			t.Fatal("negative sign should rank by ascending overlap")
		}
	}
}

func TestNovelPairsExcludesCoOccurring(t *testing.T) {
	store, c := buildTestStore(t)
	// tomato+basil co-occur in the fixture; they must not appear with
	// maxCoOccur 0.
	tomato := lookup(t, "tomato")
	basil := lookup(t, "basil")
	pairs := NovelPairs(testAnalyzer, store, c, +1, 1000, 1, 0)
	for _, p := range pairs {
		if (p.A == tomato && p.B == basil) || (p.A == basil && p.B == tomato) {
			t.Fatal("co-occurring pair proposed as novel")
		}
	}
	// With a high co-occurrence allowance they may appear.
	pairs = NovelPairs(testAnalyzer, store, c, +1, 1000, 1, 100)
	found := false
	for _, p := range pairs {
		if (p.A == tomato && p.B == basil) || (p.A == basil && p.B == tomato) {
			found = true
		}
	}
	if !found {
		t.Fatal("relaxed maxCoOccur should include existing pairs")
	}
}

func TestNovelPairsMinSupport(t *testing.T) {
	store, c := buildTestStore(t)
	// With minSupport above every frequency nothing qualifies.
	if pairs := NovelPairs(testAnalyzer, store, c, +1, 10, 1000, 0); len(pairs) != 0 {
		t.Fatalf("impossible support returned %d pairs", len(pairs))
	}
	// k <= 0 returns nil.
	if pairs := NovelPairs(testAnalyzer, store, c, +1, 0, 1, 0); pairs != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestNovelPairsSkipsUnprofiled(t *testing.T) {
	s := recipedb.NewStore(testCatalog)
	gelatin := lookup(t, "gelatin")
	tomato := lookup(t, "tomato")
	basil := lookup(t, "basil")
	if _, err := s.Add("a", recipedb.Italy, recipedb.AllRecipes, []flavor.ID{gelatin, tomato}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add("b", recipedb.Italy, recipedb.AllRecipes, []flavor.ID{gelatin, basil}); err != nil {
		t.Fatal(err)
	}
	c := s.BuildCuisine(recipedb.Italy)
	pairs := NovelPairs(testAnalyzer, s, c, +1, 100, 1, 0)
	for _, p := range pairs {
		if p.A == gelatin || p.B == gelatin {
			t.Fatal("profile-free ingredient proposed")
		}
	}
}
