package pairing

import (
	"math"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/stats"
)

// naiveContribution recomputes the leave-one-out percentage change by
// brute force, as a differential oracle for the cached implementation.
func naiveContribution(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, target flavor.ID) float64 {
	var base, removed stats.Accumulator
	for _, rid := range c.RecipeIDs {
		ings := store.Recipe(rid).Ingredients
		if v, ok := a.RecipeScore(ings); ok {
			base.Add(v)
		}
		var without []flavor.ID
		for _, id := range ings {
			if id != target {
				without = append(without, id)
			}
		}
		if v, ok := a.RecipeScore(without); ok {
			removed.Add(v)
		}
	}
	if removed.N() == 0 || base.Mean() == 0 {
		return 0
	}
	return 100 * (removed.Mean() - base.Mean()) / base.Mean()
}

func TestContributionsMatchNaive(t *testing.T) {
	store, c := buildTestStore(t)
	contribs := testAnalyzer.Contributions(store, c)
	if len(contribs) != len(c.UniqueIngredients) {
		t.Fatalf("got %d contributions for %d ingredients", len(contribs), len(c.UniqueIngredients))
	}
	byID := make(map[flavor.ID]Contribution, len(contribs))
	for _, ct := range contribs {
		byID[ct.Ingredient] = ct
	}
	for _, id := range c.UniqueIngredients {
		want := naiveContribution(testAnalyzer, store, c, id)
		got := byID[id].DeltaPct
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: cached %v, naive %v", testCatalog.Ingredient(id).Name, got, want)
		}
	}
}

func TestContributionMetadata(t *testing.T) {
	store, c := buildTestStore(t)
	contribs := testAnalyzer.Contributions(store, c)
	for _, ct := range contribs {
		if ct.Name != testCatalog.Ingredient(ct.Ingredient).Name {
			t.Fatalf("name mismatch for %d", ct.Ingredient)
		}
		if ct.Freq != c.IngredientFreq[ct.Ingredient] {
			t.Fatalf("freq mismatch for %s", ct.Name)
		}
	}
}

func TestContributionEmptyCuisine(t *testing.T) {
	s := recipedb.NewStore(testCatalog)
	c := s.BuildCuisine(recipedb.Korea)
	if got := testAnalyzer.Contributions(s, c); got != nil {
		t.Fatalf("empty cuisine should give nil, got %v", got)
	}
}

func TestTopContributorsPositiveSign(t *testing.T) {
	contribs := []Contribution{
		{Ingredient: 1, Name: "a", DeltaPct: -10},
		{Ingredient: 2, Name: "b", DeltaPct: +5},
		{Ingredient: 3, Name: "c", DeltaPct: -30},
		{Ingredient: 4, Name: "d", DeltaPct: -1},
	}
	top := TopContributors(contribs, 2, +1)
	if len(top) != 2 || top[0].Name != "c" || top[1].Name != "a" {
		t.Fatalf("positive top = %+v", top)
	}
	// Negative pairing: removal increasing N̄s most contributes most.
	top = TopContributors(contribs, 2, -1)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "d" {
		t.Fatalf("negative top = %+v", top)
	}
	// k larger than slice clamps.
	if got := TopContributors(contribs, 99, +1); len(got) != 4 {
		t.Fatalf("clamp failed: %d", len(got))
	}
	// Ties break by ingredient ID.
	ties := []Contribution{
		{Ingredient: 9, DeltaPct: -5}, {Ingredient: 2, DeltaPct: -5},
	}
	top = TopContributors(ties, 2, +1)
	if top[0].Ingredient != 2 {
		t.Fatalf("tie break wrong: %+v", top)
	}
}

func TestTopContributorsDoesNotMutateInput(t *testing.T) {
	contribs := []Contribution{
		{Ingredient: 1, DeltaPct: -1},
		{Ingredient: 2, DeltaPct: -2},
	}
	TopContributors(contribs, 1, +1)
	if contribs[0].Ingredient != 1 {
		t.Fatal("input slice was reordered")
	}
}

func TestTupleScoreOrder2MatchesRecipeScore(t *testing.T) {
	r := ids(t, "tomato", "basil", "olive oil", "garlic")
	a, okA := testAnalyzer.RecipeScore(r)
	b, okB := testAnalyzer.TupleScore(r, 2)
	if okA != okB || math.Abs(a-b) > 1e-12 {
		t.Fatalf("order-2 tuple %v vs pair %v", b, a)
	}
}

func TestTupleScoreTriple(t *testing.T) {
	// For exactly 3 ingredients and k=3 there is one subset: the triple
	// intersection cardinality.
	r := ids(t, "tomato", "basil", "olive oil")
	got, ok := testAnalyzer.TupleScore(r, 3)
	if !ok {
		t.Fatal("triple unscorable")
	}
	inter := testCatalog.Profile(r[0]).Intersect(testCatalog.Profile(r[1])).Intersect(testCatalog.Profile(r[2]))
	if got != float64(inter.Count()) {
		t.Fatalf("triple = %v, want %d", got, inter.Count())
	}
}

func TestTupleScoreMonotoneNonIncreasing(t *testing.T) {
	// Higher-order intersections can only be as large as lower-order
	// ones on the same recipe: mean over k-tuples of |∩| is bounded by
	// the pairwise mean.
	r := ids(t, "tomato", "basil", "olive oil", "garlic", "onion", "oregano")
	prev := math.Inf(1)
	for k := 2; k <= 4; k++ {
		v, ok := testAnalyzer.TupleScore(r, k)
		if !ok {
			t.Fatalf("k=%d unscorable", k)
		}
		if v > prev+1e-9 {
			t.Fatalf("tuple score increased from k-1 to k=%d: %v > %v", k, v, prev)
		}
		prev = v
	}
}

func TestTupleScoreUndefined(t *testing.T) {
	if _, ok := testAnalyzer.TupleScore(ids(t, "tomato", "basil"), 3); ok {
		t.Fatal("k above recipe size should be unscorable")
	}
	if _, ok := testAnalyzer.TupleScore(ids(t, "tomato", "basil"), 1); ok {
		t.Fatal("k < 2 should be unscorable")
	}
}

func TestCompareTuples(t *testing.T) {
	store, c := buildTestStore(t)
	res, err := CompareTuples(testAnalyzer, store, c, 3, 1500, rngNew(41))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || res.Region != recipedb.Italy {
		t.Fatalf("metadata: %+v", res)
	}
	if res.NRandom == 0 || res.NullStd < 0 {
		t.Fatalf("moments: %+v", res)
	}
	if _, err := CompareTuples(testAnalyzer, store, c, 7, 100, rngNew(1)); err == nil {
		t.Fatal("k=7 should error")
	}
	if _, err := CompareTuples(testAnalyzer, store, c, 1, 100, rngNew(1)); err == nil {
		t.Fatal("k=1 should error")
	}
}

func rngNew(seed uint64) *rng.Source { return rng.New(seed) }
