package pairing

import (
	"fmt"
	"sort"
	"strings"

	"culinary/internal/flavor"
)

// ParseModel resolves a model name ("random", "frequency", "category",
// "frequency+category"), case-insensitively.
func ParseModel(name string) (Model, error) {
	for i, n := range modelNames {
		if strings.EqualFold(name, n) {
			return Model(i), nil
		}
	}
	return 0, fmt.Errorf("pairing: unknown model %q (have %s)",
		name, strings.Join(modelNames[:], ", "))
}

// Partner is one ingredient ranked by shared flavor compounds with a
// reference ingredient.
type Partner struct {
	Partner flavor.ID
	Shared  int
}

// TopPartners returns the k ingredients sharing the most flavor
// compounds with id — the flavor-pairing suggestions the paper's intro
// motivates ("generating novel flavor pairings"). Profile-less
// ingredients and id itself are excluded; ties break by ID.
func (a *Analyzer) TopPartners(id flavor.ID, k int) []Partner {
	if k <= 0 || int(id) < 0 || int(id) >= a.n || !a.hasProfile[id] {
		return nil
	}
	out := make([]Partner, 0, a.n-1)
	row := a.shared[int(id)*a.n : (int(id)+1)*a.n]
	for j := 0; j < a.n; j++ {
		if j == int(id) || !a.hasProfile[j] {
			continue
		}
		out = append(out, Partner{Partner: flavor.ID(j), Shared: int(row[j])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shared != out[j].Shared {
			return out[i].Shared > out[j].Shared
		}
		return out[i].Partner < out[j].Partner
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
