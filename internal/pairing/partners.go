package pairing

import (
	"fmt"
	"sort"
	"strings"

	"culinary/internal/flavor"
)

// ParseModel resolves a model name ("random", "frequency", "category",
// "frequency+category"), case-insensitively.
func ParseModel(name string) (Model, error) {
	for i, n := range modelNames {
		if strings.EqualFold(name, n) {
			return Model(i), nil
		}
	}
	return 0, fmt.Errorf("pairing: unknown model %q (have %s)",
		name, strings.Join(modelNames[:], ", "))
}

// Partner is one ingredient ranked by shared flavor compounds with a
// reference ingredient.
type Partner struct {
	Partner flavor.ID
	Shared  int
}

// partnerWorse reports whether x ranks strictly below y in the
// TopPartners order (fewer shared compounds, ties broken by larger ID).
func partnerWorse(x, y Partner) bool {
	if x.Shared != y.Shared {
		return x.Shared < y.Shared
	}
	return x.Partner > y.Partner
}

// TopPartners returns the k ingredients sharing the most flavor
// compounds with id — the flavor-pairing suggestions the paper's intro
// motivates ("generating novel flavor pairings"). Profile-less
// ingredients and id itself are excluded; ties break by ID.
//
// Selection uses a bounded min-heap over the candidate row: O(n log k)
// with a k-sized footprint instead of materializing and fully sorting
// all n-1 candidates, which matters when k ≪ n (the interactive
// "suggest a few partners" path).
func (a *Analyzer) TopPartners(id flavor.ID, k int) []Partner {
	if k <= 0 || int(id) < 0 || int(id) >= a.n || !a.hasProfile[id] {
		return nil
	}
	if k > a.n-1 {
		k = a.n - 1
	}
	// heap[0] is the worst retained candidate under partnerWorse.
	heap := make([]Partner, 0, k)
	i := int(id)
	for j := 0; j < a.n; j++ {
		if j == i || !a.hasProfile[j] {
			continue
		}
		cand := Partner{Partner: flavor.ID(j), Shared: int(a.sharedSym(i, j))}
		if len(heap) < k {
			heap = append(heap, cand)
			// Sift up.
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if !partnerWorse(heap[c], heap[p]) {
					break
				}
				heap[c], heap[p] = heap[p], heap[c]
				c = p
			}
			continue
		}
		if !partnerWorse(heap[0], cand) {
			continue // candidate no better than the current worst
		}
		// Replace the root and sift down.
		heap[0] = cand
		for c := 0; ; {
			l, r := 2*c+1, 2*c+2
			worst := c
			if l < k && partnerWorse(heap[l], heap[worst]) {
				worst = l
			}
			if r < k && partnerWorse(heap[r], heap[worst]) {
				worst = r
			}
			if worst == c {
				break
			}
			heap[c], heap[worst] = heap[worst], heap[c]
			c = worst
		}
	}
	sort.Slice(heap, func(i, j int) bool { return partnerWorse(heap[j], heap[i]) })
	return heap
}
