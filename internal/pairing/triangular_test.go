package pairing

import (
	"reflect"
	"sort"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
)

// denseReference recomputes the full n×n shared-compound matrix the slow
// way, straight from profile intersections, as the oracle for the packed
// triangular storage.
func denseReference(catalog *flavor.Catalog) []int32 {
	n := catalog.Len()
	dense := make([]int32, n*n)
	for i := 0; i < n; i++ {
		pi := catalog.Profile(flavor.ID(i))
		for j := i + 1; j < n; j++ {
			s := int32(pi.IntersectionCount(catalog.Profile(flavor.ID(j))))
			dense[i*n+j] = s
			dense[j*n+i] = s
		}
	}
	return dense
}

// TestTriangularMatchesDenseReference is the property test backing the
// dense→triangular migration: across randomized catalogs (different
// seeds and universe sizes), every Shared lookup — both argument orders
// and the diagonal — must match a naive dense matrix built directly
// from profile intersections.
func TestTriangularMatchesDenseReference(t *testing.T) {
	cfgs := []flavor.Config{}
	for _, seed := range []uint64{1, 99, 20180416} {
		cfg := flavor.DefaultConfig()
		cfg.Seed = seed
		cfgs = append(cfgs, cfg)
	}
	small := flavor.DefaultConfig()
	small.Seed = 7
	small.NumMolecules = 192
	small.BackboneSize = 16
	small.MaxProfile = 96
	cfgs = append(cfgs, small)

	for _, cfg := range cfgs {
		catalog, err := flavor.Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", cfg.Seed, err)
		}
		a := NewAnalyzer(catalog)
		dense := denseReference(catalog)
		n := catalog.Len()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := a.Shared(flavor.ID(i), flavor.ID(j)), int(dense[i*n+j]); got != want {
					t.Fatalf("seed %d molecules %d: Shared(%d,%d) = %d, dense = %d",
						cfg.Seed, cfg.NumMolecules, i, j, got, want)
				}
			}
		}
	}
}

// TestParallelConstructionMatchesSerial pins the parallel row-chunk pool
// to the serial build: the packed triangle must be identical for any
// worker count.
func TestParallelConstructionMatchesSerial(t *testing.T) {
	serial := NewAnalyzerParallel(testCatalog, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewAnalyzerParallel(testCatalog, workers)
		if !reflect.DeepEqual(serial.tri, par.tri) {
			t.Fatalf("workers=%d: parallel triangle differs from serial", workers)
		}
		if !reflect.DeepEqual(serial.triRow, par.triRow) {
			t.Fatalf("workers=%d: row index differs from serial", workers)
		}
	}
}

// referenceTopPartners is the pre-heap implementation: materialize every
// candidate and fully sort. The bounded-heap version must reproduce it
// exactly, including the ties-break-by-ascending-ID contract.
func referenceTopPartners(a *Analyzer, id flavor.ID, k int) []Partner {
	if k <= 0 || int(id) < 0 || int(id) >= a.n || !a.hasProfile[id] {
		return nil
	}
	out := make([]Partner, 0, a.n-1)
	for j := 0; j < a.n; j++ {
		if j == int(id) || !a.hasProfile[j] {
			continue
		}
		out = append(out, Partner{Partner: flavor.ID(j), Shared: a.Shared(id, flavor.ID(j))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shared != out[j].Shared {
			return out[i].Shared > out[j].Shared
		}
		return out[i].Partner < out[j].Partner
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TestTopPartnersMatchesFullSortReference locks the heap-based partial
// selection to the full-sort reference across a spread of k, including
// k past the candidate count.
func TestTopPartnersMatchesFullSortReference(t *testing.T) {
	for _, name := range []string{"tomato", "basil", "butter"} {
		id := lookup(t, name)
		for _, k := range []int{1, 2, 5, 17, 100, testAnalyzer.n - 1, testAnalyzer.n + 50} {
			got := testAnalyzer.TopPartners(id, k)
			want := referenceTopPartners(testAnalyzer, id, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s k=%d: heap selection diverges from full sort\n got[:5]=%v\nwant[:5]=%v",
					name, k, head(got, 5), head(want, 5))
			}
		}
	}
}

// TestTopPartnersTiesBreakByID is the explicit regression for the
// documented tie contract: equal Shared counts must order by ascending
// ingredient ID, at every k that slices through a tie group.
func TestTopPartnersTiesBreakByID(t *testing.T) {
	id := lookup(t, "tomato")
	full := referenceTopPartners(testAnalyzer, id, testAnalyzer.n)
	// Find a tie group to slice through.
	tieAt := -1
	for i := 1; i < len(full); i++ {
		if full[i].Shared == full[i-1].Shared {
			tieAt = i
			break
		}
	}
	if tieAt < 0 {
		t.Skip("catalog produced no tied shared counts for tomato")
	}
	for _, k := range []int{tieAt, tieAt + 1} {
		got := testAnalyzer.TopPartners(id, k)
		if len(got) != k {
			t.Fatalf("k=%d: got %d partners", k, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Shared > got[i-1].Shared {
				t.Fatalf("k=%d: not sorted by shared desc at %d", k, i)
			}
			if got[i].Shared == got[i-1].Shared && got[i].Partner <= got[i-1].Partner {
				t.Fatalf("k=%d: tie at %d not broken by ascending ID: %v then %v",
					k, i, got[i-1], got[i])
			}
		}
		if !reflect.DeepEqual(got, full[:k]) {
			t.Fatalf("k=%d slices the tie group differently than the reference", k)
		}
	}
}

func head(ps []Partner, n int) []Partner {
	if len(ps) < n {
		return ps
	}
	return ps[:n]
}

// buildLargeStore synthesizes a cuisine big enough (≥256 recipes) to
// push ScoreCuisineParallel off its small-cuisine serial fallback.
func buildLargeStore(t *testing.T) (*recipedb.Store, *recipedb.Cuisine) {
	t.Helper()
	s := recipedb.NewStore(testCatalog)
	src := rng.New(31337)
	n := testCatalog.Len()
	for r := 0; r < 600; r++ {
		size := 3 + src.Intn(8)
		seen := map[flavor.ID]bool{}
		ing := make([]flavor.ID, 0, size)
		for len(ing) < size {
			id := flavor.ID(src.Intn(n))
			if !seen[id] {
				seen[id] = true
				ing = append(ing, id)
			}
		}
		if _, err := s.Add("r", recipedb.France, recipedb.AllRecipes, ing); err != nil {
			t.Fatal(err)
		}
	}
	return s, s.BuildCuisine(recipedb.France)
}

// TestScoreCuisineParallelBitIdentical verifies the parallel cuisine
// score reproduces CuisineScore bit for bit at several worker counts.
func TestScoreCuisineParallelBitIdentical(t *testing.T) {
	store, c := buildLargeStore(t)
	wantMean, wantN := testAnalyzer.CuisineScore(store, c)
	for _, workers := range []int{0, 1, 2, 7, 32} {
		mean, n := testAnalyzer.ScoreCuisineParallel(store, c, workers)
		if mean != wantMean || n != wantN {
			t.Fatalf("workers=%d: (%v, %d) != serial (%v, %d)", workers, mean, n, wantMean, wantN)
		}
	}
}

// TestContributionsParallelBitIdentical verifies the fanned-out
// leave-one-out sweep reproduces the serial Contributions exactly.
func TestContributionsParallelBitIdentical(t *testing.T) {
	store, c := buildLargeStore(t)
	want := testAnalyzer.Contributions(store, c)
	for _, workers := range []int{0, 2, 16} {
		got := testAnalyzer.ContributionsParallel(store, c, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel contributions diverge from serial", workers)
		}
	}
}

// TestNullMomentsParallelDeterministic pins the sharded sampler: for a
// fixed shard count the pooled moments must not depend on scheduling,
// and every shard must contribute (scored == nRecipes for a scorable
// cuisine).
func TestNullMomentsParallelDeterministic(t *testing.T) {
	store, c := buildLargeStore(t)
	const draws = 2000
	mean1, std1, n1, err := NullMomentsParallel(testAnalyzer, store, c, RandomModel, draws, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	mean2, std2, n2, err := NullMomentsParallel(testAnalyzer, store, c, RandomModel, draws, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if mean1 != mean2 || std1 != std2 || n1 != n2 {
		t.Fatalf("sharded moments not reproducible: (%v,%v,%d) vs (%v,%v,%d)",
			mean1, std1, n1, mean2, std2, n2)
	}
	if n1 != draws {
		t.Fatalf("scored %d of %d draws", n1, draws)
	}
	// Sanity: the sharded estimate agrees with the serial sampler's
	// distribution (same generator family, different stream).
	s, err := NewNullSampler(testAnalyzer, store, c, RandomModel, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	serialMean, _, _ := s.NullMoments(draws)
	if diff := mean1 - serialMean; diff > 1 || diff < -1 {
		t.Fatalf("sharded mean %v implausibly far from serial mean %v", mean1, serialMean)
	}
}
