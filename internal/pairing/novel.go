package pairing

import (
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// NovelPair is a candidate ingredient pairing for food design: two
// ingredients of a cuisine that match the cuisine's pairing style but
// rarely or never co-occur in its recipes — the "generating novel
// flavor pairings" application the paper's abstract motivates.
type NovelPair struct {
	A, B flavor.ID
	// Shared is the flavor-compound overlap of the pair.
	Shared int
	// CoOccurrences counts cuisine recipes containing both ingredients.
	CoOccurrences int
	// SupportA and SupportB are each ingredient's recipe counts.
	SupportA, SupportB int
}

// NovelPairs proposes up to k pairings for a cuisine. Candidates are
// pairs of profiled ingredients each used in at least minSupport
// recipes with at most maxCoOccur co-occurrences. For uniform-pairing
// cuisines (sign > 0) pairs are ranked by descending flavor overlap;
// for contrasting cuisines (sign < 0) by ascending overlap — each
// cuisine's own blending style, applied to combinations it has not
// explored.
func NovelPairs(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, sign, k, minSupport, maxCoOccur int) []NovelPair {
	if k <= 0 {
		return nil
	}
	if minSupport < 1 {
		minSupport = 1
	}
	if sign == 0 {
		sign = 1
	}
	// Count pairwise co-occurrences over the cuisine's recipes.
	co := make(map[[2]flavor.ID]int)
	for _, ings := range store.IngredientLists(c.RecipeIDs) {
		for i := 0; i < len(ings); i++ {
			for j := i + 1; j < len(ings); j++ {
				x, y := ings[i], ings[j]
				if x > y {
					x, y = y, x
				}
				co[[2]flavor.ID{x, y}]++
			}
		}
	}
	catalog := a.Catalog()
	var candidates []NovelPair
	ids := c.UniqueIngredients
	for i := 0; i < len(ids); i++ {
		x := ids[i]
		if !catalog.Ingredient(x).HasProfile || c.IngredientFreq[x] < minSupport {
			continue
		}
		for j := i + 1; j < len(ids); j++ {
			y := ids[j]
			if !catalog.Ingredient(y).HasProfile || c.IngredientFreq[y] < minSupport {
				continue
			}
			n := co[[2]flavor.ID{x, y}]
			if n > maxCoOccur {
				continue
			}
			candidates = append(candidates, NovelPair{
				A: x, B: y,
				Shared:        a.Shared(x, y),
				CoOccurrences: n,
				SupportA:      c.IngredientFreq[x],
				SupportB:      c.IngredientFreq[y],
			})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		si, sj := candidates[i].Shared, candidates[j].Shared
		if sign < 0 {
			si, sj = -si, -sj
		}
		if si != sj {
			return si > sj
		}
		if candidates[i].A != candidates[j].A {
			return candidates[i].A < candidates[j].A
		}
		return candidates[i].B < candidates[j].B
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	return candidates[:k]
}
