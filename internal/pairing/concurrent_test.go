package pairing

import (
	"fmt"
	"sync"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/storage"
)

// TestAnalyzerAndStoreConcurrent backs the two "safe for concurrent use"
// doc claims under the race detector: a post-construction Analyzer is
// hammered by concurrent readers (Shared, RecipeScore, TopPartners, the
// parallel scoring entry points, which themselves spawn goroutines)
// while a storage.Store absorbs concurrent writers and readers in the
// same process. Run with -race; without it the test is a cheap smoke.
func TestAnalyzerAndStoreConcurrent(t *testing.T) {
	kv, err := storage.Open(t.TempDir(), storage.Options{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	store, cuisine := buildLargeStore(t)
	wantMean, wantN := testAnalyzer.CuisineScore(store, cuisine)
	wantShared := testAnalyzer.Shared(0, 1)

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	const iters = 40

	// Analyzer readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if got := testAnalyzer.Shared(0, 1); got != wantShared {
					errc <- fmt.Errorf("Shared changed under readers: %d != %d", got, wantShared)
					return
				}
				id := flavor.ID((g*iters + i) % testAnalyzer.n)
				testAnalyzer.TopPartners(id, 5)
				if _, ok := testAnalyzer.RecipeScore(store.Recipe(cuisine.RecipeIDs[i%len(cuisine.RecipeIDs)]).Ingredients); !ok {
					continue
				}
			}
		}(g)
	}
	// Parallel scorers (goroutine-spawning readers).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if mean, n := testAnalyzer.ScoreCuisineParallel(store, cuisine, 3); mean != wantMean || n != wantN {
					errc <- fmt.Errorf("ScoreCuisineParallel drifted: (%v,%d) != (%v,%d)", mean, n, wantMean, wantN)
					return
				}
			}
		}()
	}
	// Store writers and readers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := kv.Put(key, []byte("v")); err != nil {
					errc <- err
					return
				}
				if _, err := kv.Get(key); err != nil {
					errc <- err
					return
				}
				if i%8 == 0 {
					if err := kv.Delete(key); err != nil {
						errc <- err
						return
					}
				}
				kv.Has(fmt.Sprintf("g%d-k%d", (g+1)%3, i/2))
				kv.Len()
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
