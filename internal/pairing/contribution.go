package pairing

import (
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// Contribution records the effect of removing one ingredient from a
// cuisine (§IV.C): the percentage change in the cuisine's mean flavor
// sharing N̄s when every occurrence of the ingredient is deleted.
type Contribution struct {
	Ingredient flavor.ID
	Name       string
	// Freq is the ingredient's recipe count in the cuisine.
	Freq int
	// DeltaPct is 100 * (N̄s_without - N̄s_with) / N̄s_with. A negative
	// value means the ingredient was pulling the cuisine's flavor
	// sharing up (it contributes to positive food pairing); a positive
	// value means it was pulling sharing down.
	DeltaPct float64
}

// Contributions computes the leave-one-out contribution of every
// ingredient used in the cuisine.
//
// The computation caches each recipe's raw pair sum and profiled member
// list so that removing ingredient i touches only the recipes containing
// i, making the full per-cuisine sweep O(Σ recipe sizes × mean size)
// instead of O(#ingredients × corpus).
func (a *Analyzer) Contributions(store *recipedb.Store, c *recipedb.Cuisine) []Contribution {
	type recipeState struct {
		sum  int64
		prof []int
	}
	states := make([]recipeState, len(c.RecipeIDs))
	// recipesOf[i] lists indices into states for recipes containing
	// profiled ingredient i.
	recipesOf := make(map[int][]int, len(c.UniqueIngredients))

	var baseSum float64
	baseN := 0
	for k, rid := range c.RecipeIDs {
		sum, prof := a.pairSum(store.Recipe(rid).Ingredients)
		states[k] = recipeState{sum: sum, prof: prof}
		if len(prof) >= 2 {
			baseSum += score(sum, len(prof))
			baseN++
		}
		for _, ing := range prof {
			recipesOf[ing] = append(recipesOf[ing], k)
		}
	}
	if baseN == 0 {
		return nil
	}
	baseMean := baseSum / float64(baseN)

	out := make([]Contribution, 0, len(c.UniqueIngredients))
	for _, id := range c.UniqueIngredients {
		ing := int(id)
		affected := recipesOf[ing]
		if len(affected) == 0 {
			// Unprofiled ingredient: removal cannot change any score.
			out = append(out, Contribution{
				Ingredient: id,
				Name:       a.catalog.Ingredient(id).Name,
				Freq:       c.IngredientFreq[id],
				DeltaPct:   0,
			})
			continue
		}
		newSum := baseSum
		newN := baseN
		for _, k := range affected {
			st := &states[k]
			n := len(st.prof)
			if n >= 2 {
				newSum -= score(st.sum, n)
				newN--
			}
			// Pair sum without ingredient ing.
			var drop int64
			row := ing * a.n
			for _, other := range st.prof {
				if other != ing {
					drop += int64(a.shared[row+other])
				}
			}
			if n-1 >= 2 {
				newSum += score(st.sum-drop, n-1)
				newN++
			}
		}
		var deltaPct float64
		if newN > 0 && baseMean != 0 {
			newMean := newSum / float64(newN)
			deltaPct = 100 * (newMean - baseMean) / baseMean
		}
		out = append(out, Contribution{
			Ingredient: id,
			Name:       a.catalog.Ingredient(id).Name,
			Freq:       c.IngredientFreq[id],
			DeltaPct:   deltaPct,
		})
	}
	return out
}

func score(sum int64, n int) float64 {
	return 2 * float64(sum) / (float64(n) * float64(n-1))
}

// TopContributors returns the k ingredients contributing most to the
// cuisine's observed pairing direction (Fig 5). For a positive-pairing
// cuisine (sign > 0) these are the ingredients whose removal most
// reduces N̄s (most negative DeltaPct); for negative pairing (sign < 0),
// those whose removal most increases it.
func TopContributors(contribs []Contribution, k int, sign int) []Contribution {
	sorted := append([]Contribution(nil), contribs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].DeltaPct, sorted[j].DeltaPct
		if sign < 0 {
			a, b = -a, -b
		}
		if a != b {
			return a < b
		}
		return sorted[i].Ingredient < sorted[j].Ingredient
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
