package pairing

import (
	"runtime"
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// Contribution records the effect of removing one ingredient from a
// cuisine (§IV.C): the percentage change in the cuisine's mean flavor
// sharing N̄s when every occurrence of the ingredient is deleted.
type Contribution struct {
	Ingredient flavor.ID
	Name       string
	// Freq is the ingredient's recipe count in the cuisine.
	Freq int
	// DeltaPct is 100 * (N̄s_without - N̄s_with) / N̄s_with. A negative
	// value means the ingredient was pulling the cuisine's flavor
	// sharing up (it contributes to positive food pairing); a positive
	// value means it was pulling sharing down.
	DeltaPct float64
}

// recipeState caches one recipe's raw pair sum and profiled member list
// for the leave-one-out sweep.
type recipeState struct {
	sum  int64
	prof []int
}

// contributionBase precomputes per-recipe pair sums, the base cuisine
// moments, and the inverted ingredient→recipes index shared by the
// serial and parallel contribution sweeps. The base mean is accumulated
// in recipe order so serial and parallel runs are bit-identical.
func (a *Analyzer) contributionBase(store *recipedb.Store, c *recipedb.Cuisine, workers int) (states []recipeState, recipesOf map[int][]int, baseSum float64, baseN int) {
	states = make([]recipeState, len(c.RecipeIDs))
	lists := store.IngredientLists(c.RecipeIDs)
	if workers > 1 {
		forEachIndexParallel(len(c.RecipeIDs), workers, func(k int) {
			sum, prof := a.pairSum(lists[k])
			states[k] = recipeState{sum: sum, prof: prof}
		})
	} else {
		for k := range lists {
			sum, prof := a.pairSum(lists[k])
			states[k] = recipeState{sum: sum, prof: prof}
		}
	}
	// recipesOf[i] lists indices into states for recipes containing
	// profiled ingredient i.
	recipesOf = make(map[int][]int, len(c.UniqueIngredients))
	for k := range states {
		st := &states[k]
		if len(st.prof) >= 2 {
			baseSum += score(st.sum, len(st.prof))
			baseN++
		}
		for _, ing := range st.prof {
			recipesOf[ing] = append(recipesOf[ing], k)
		}
	}
	return states, recipesOf, baseSum, baseN
}

// contributionOf computes one ingredient's leave-one-out delta against
// the precomputed base.
func (a *Analyzer) contributionOf(c *recipedb.Cuisine, id flavor.ID,
	states []recipeState, recipesOf map[int][]int, baseSum float64, baseN int, baseMean float64) Contribution {
	ing := int(id)
	affected := recipesOf[ing]
	if len(affected) == 0 {
		// Unprofiled ingredient: removal cannot change any score.
		return Contribution{
			Ingredient: id,
			Name:       a.catalog.Ingredient(id).Name,
			Freq:       c.IngredientFreq[id],
			DeltaPct:   0,
		}
	}
	newSum := baseSum
	newN := baseN
	for _, k := range affected {
		st := &states[k]
		n := len(st.prof)
		if n >= 2 {
			newSum -= score(st.sum, n)
			newN--
		}
		// Pair sum without ingredient ing.
		var drop int64
		for _, other := range st.prof {
			if other != ing {
				drop += int64(a.sharedSym(ing, other))
			}
		}
		if n-1 >= 2 {
			newSum += score(st.sum-drop, n-1)
			newN++
		}
	}
	var deltaPct float64
	if newN > 0 && baseMean != 0 {
		newMean := newSum / float64(newN)
		deltaPct = 100 * (newMean - baseMean) / baseMean
	}
	return Contribution{
		Ingredient: id,
		Name:       a.catalog.Ingredient(id).Name,
		Freq:       c.IngredientFreq[id],
		DeltaPct:   deltaPct,
	}
}

// Contributions computes the leave-one-out contribution of every
// ingredient used in the cuisine.
//
// The computation caches each recipe's raw pair sum and profiled member
// list so that removing ingredient i touches only the recipes containing
// i, making the full per-cuisine sweep O(Σ recipe sizes × mean size)
// instead of O(#ingredients × corpus).
func (a *Analyzer) Contributions(store *recipedb.Store, c *recipedb.Cuisine) []Contribution {
	return a.contributions(store, c, 1)
}

// ContributionsParallel is Contributions with the per-recipe pair-sum
// precompute and the per-ingredient sweep fanned out over workers
// (GOMAXPROCS when workers < 1). Every slot of the result is written by
// exactly one worker and all floating-point reductions happen in the
// same order as the serial sweep, so the output is bit-identical to
// Contributions regardless of scheduling.
func (a *Analyzer) ContributionsParallel(store *recipedb.Store, c *recipedb.Cuisine, workers int) []Contribution {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return a.contributions(store, c, workers)
}

func (a *Analyzer) contributions(store *recipedb.Store, c *recipedb.Cuisine, workers int) []Contribution {
	states, recipesOf, baseSum, baseN := a.contributionBase(store, c, workers)
	if baseN == 0 {
		return nil
	}
	baseMean := baseSum / float64(baseN)
	out := make([]Contribution, len(c.UniqueIngredients))
	if workers > 1 {
		forEachIndexParallel(len(c.UniqueIngredients), workers, func(i int) {
			out[i] = a.contributionOf(c, c.UniqueIngredients[i], states, recipesOf, baseSum, baseN, baseMean)
		})
	} else {
		for i, id := range c.UniqueIngredients {
			out[i] = a.contributionOf(c, id, states, recipesOf, baseSum, baseN, baseMean)
		}
	}
	return out
}

func score(sum int64, n int) float64 {
	return 2 * float64(sum) / (float64(n) * float64(n-1))
}

// TopContributors returns the k ingredients contributing most to the
// cuisine's observed pairing direction (Fig 5). For a positive-pairing
// cuisine (sign > 0) these are the ingredients whose removal most
// reduces N̄s (most negative DeltaPct); for negative pairing (sign < 0),
// those whose removal most increases it.
func TopContributors(contribs []Contribution, k int, sign int) []Contribution {
	sorted := append([]Contribution(nil), contribs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].DeltaPct, sorted[j].DeltaPct
		if sign < 0 {
			a, b = -a, -b
		}
		if a != b {
			return a < b
		}
		return sorted[i].Ingredient < sorted[j].Ingredient
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
