package pairing

import (
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/stats"
)

// Model selects one of the paper's four randomized-cuisine controls
// (§IV.B). Every model preserves the cuisine's exact ingredient set and
// its recipe-size distribution.
type Model int

const (
	// RandomModel chooses ingredients uniformly from the cuisine's
	// ingredient set.
	RandomModel Model = iota
	// FrequencyModel preserves the empirical frequency of use of
	// ingredients.
	FrequencyModel
	// CategoryModel preserves each template recipe's category
	// composition, choosing uniformly within each category.
	CategoryModel
	// FrequencyCategoryModel preserves category composition and draws
	// within each category proportionally to ingredient frequency.
	FrequencyCategoryModel
	numModels
)

// NumModels is the number of null models (4).
const NumModels = int(numModels)

var modelNames = [...]string{
	"Random", "Frequency", "Category", "Frequency+Category",
}

// String returns the model's display name.
func (m Model) String() string {
	if m < 0 || m >= numModels {
		return fmt.Sprintf("Model(%d)", int(m))
	}
	return modelNames[m]
}

// AllModels returns the four models in declaration order.
func AllModels() []Model {
	out := make([]Model, NumModels)
	for i := range out {
		out[i] = Model(i)
	}
	return out
}

// DefaultNullRecipes is the paper's control size: "100,000 recipes were
// generated for the random control and models."
const DefaultNullRecipes = 100000

// NullSampler draws randomized recipes for one cuisine under one model.
// Construction precomputes the per-model sampling structures; Draw is
// then allocation-light. A sampler is not safe for concurrent use (it
// owns an rng.Source); build one per goroutine.
type NullSampler struct {
	model    Model
	analyzer *Analyzer
	cuisine  *recipedb.Cuisine
	src      *rng.Source

	// ingredient pool of the cuisine
	pool []flavor.ID
	// frequency-weighted sampler over pool (FrequencyModel)
	freq *rng.Weighted
	// per-category pools and frequency samplers (category models)
	catPool [][]flavor.ID
	catFreq []*rng.Weighted
	// templates holds the cuisine recipes' ingredient lists, snapshot
	// at construction (one store lock, not one per draw): they provide
	// sizes (all models) and category compositions (category models)
	templates [][]flavor.ID
	buf       []flavor.ID
	seen      map[flavor.ID]struct{}
}

// NewNullSampler builds a sampler for the cuisine under the model. It
// returns an error for degenerate cuisines (no recipes or fewer than two
// ingredients), which cannot support any control.
func NewNullSampler(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, m Model, src *rng.Source) (*NullSampler, error) {
	if m < 0 || m >= numModels {
		return nil, fmt.Errorf("pairing: invalid model %d", int(m))
	}
	if len(c.RecipeIDs) == 0 {
		return nil, fmt.Errorf("pairing: cuisine %s has no recipes", c.Region.Code())
	}
	if len(c.UniqueIngredients) < 2 {
		return nil, fmt.Errorf("pairing: cuisine %s has %d unique ingredients, need >= 2",
			c.Region.Code(), len(c.UniqueIngredients))
	}
	s := &NullSampler{
		model:     m,
		analyzer:  a,
		cuisine:   c,
		src:       src,
		pool:      c.UniqueIngredients,
		templates: store.IngredientLists(c.RecipeIDs),
		seen:      make(map[flavor.ID]struct{}, 32),
	}
	switch m {
	case FrequencyModel:
		weights := make([]float64, len(s.pool))
		for i, id := range s.pool {
			weights[i] = float64(c.IngredientFreq[id])
		}
		w, err := rng.NewWeighted(weights)
		if err != nil {
			return nil, fmt.Errorf("pairing: frequency weights for %s: %w", c.Region.Code(), err)
		}
		s.freq = w
	case CategoryModel, FrequencyCategoryModel:
		catalog := a.Catalog()
		s.catPool = make([][]flavor.ID, flavor.NumCategories)
		for _, id := range s.pool {
			cat := catalog.Ingredient(id).Category
			s.catPool[cat] = append(s.catPool[cat], id)
		}
		if m == FrequencyCategoryModel {
			s.catFreq = make([]*rng.Weighted, flavor.NumCategories)
			for cat, ids := range s.catPool {
				if len(ids) == 0 {
					continue
				}
				weights := make([]float64, len(ids))
				for i, id := range ids {
					weights[i] = float64(c.IngredientFreq[id])
				}
				w, err := rng.NewWeighted(weights)
				if err != nil {
					return nil, fmt.Errorf("pairing: category %d weights for %s: %w",
						cat, c.Region.Code(), err)
				}
				s.catFreq[cat] = w
			}
		}
	}
	return s, nil
}

// Model returns the sampler's model.
func (s *NullSampler) Model() Model { return s.model }

// Draw generates one randomized recipe (a set of distinct ingredient
// IDs). The returned slice is reused across calls; callers must not
// retain it.
func (s *NullSampler) Draw() []flavor.ID {
	tmpl := s.templates[s.src.Intn(len(s.templates))]
	size := len(tmpl)
	s.buf = s.buf[:0]
	for k := range s.seen {
		delete(s.seen, k)
	}
	switch s.model {
	case RandomModel:
		if size >= len(s.pool) {
			// Degenerate: use the whole pool.
			s.buf = append(s.buf, s.pool...)
			return s.buf
		}
		for _, idx := range s.src.SampleWithoutReplacement(len(s.pool), size) {
			s.buf = append(s.buf, s.pool[idx])
		}
	case FrequencyModel:
		if size >= len(s.pool) {
			s.buf = append(s.buf, s.pool...)
			return s.buf
		}
		for len(s.buf) < size {
			id := s.pool[s.freq.Sample(s.src)]
			if _, dup := s.seen[id]; dup {
				continue
			}
			s.seen[id] = struct{}{}
			s.buf = append(s.buf, id)
		}
	case CategoryModel, FrequencyCategoryModel:
		// Preserve the template's category multiset; draw within each
		// slot's category. Duplicate draws retry a bounded number of
		// times, then fall back to a linear scan for an unused member;
		// if the whole category is exhausted the slot keeps the
		// template's original ingredient.
		catalog := s.analyzer.Catalog()
		for _, orig := range tmpl {
			cat := catalog.Ingredient(orig).Category
			id := s.drawFromCategory(cat, orig)
			s.seen[id] = struct{}{}
			s.buf = append(s.buf, id)
		}
	}
	return s.buf
}

func (s *NullSampler) drawFromCategory(cat flavor.Category, orig flavor.ID) flavor.ID {
	pool := s.catPool[cat]
	if len(pool) == 0 {
		return orig // template ingredient category not in cuisine pool: keep original
	}
	for attempt := 0; attempt < 16; attempt++ {
		var id flavor.ID
		if s.model == FrequencyCategoryModel && s.catFreq[cat] != nil {
			id = pool[s.catFreq[cat].Sample(s.src)]
		} else {
			id = pool[s.src.Intn(len(pool))]
		}
		if _, dup := s.seen[id]; !dup {
			return id
		}
	}
	for _, id := range pool {
		if _, dup := s.seen[id]; !dup {
			return id
		}
	}
	return orig
}

// NullMoments draws nRecipes randomized recipes and accumulates the mean
// and standard deviation of their pairing scores.
func (s *NullSampler) NullMoments(nRecipes int) (mean, std float64, scored int) {
	var acc stats.Accumulator
	for i := 0; i < nRecipes; i++ {
		if v, ok := s.analyzer.RecipeScore(s.Draw()); ok {
			acc.Add(v)
		}
	}
	return acc.Mean(), acc.PopStdDev(), acc.N()
}

// Compare runs the full §IV.B comparison for one cuisine and model:
// observed N̄s against the model's randomized moments over nRecipes
// draws, with the Z-score of the deviation.
func Compare(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, m Model, nRecipes int, src *rng.Source) (Result, error) {
	sampler, err := NewNullSampler(a, store, c, m, src)
	if err != nil {
		return Result{}, err
	}
	observed, scored := a.CuisineScore(store, c)
	if scored == 0 {
		return Result{}, fmt.Errorf("pairing: cuisine %s has no scorable recipes", c.Region.Code())
	}
	mean, std, n := sampler.NullMoments(nRecipes)
	if n == 0 {
		return Result{}, fmt.Errorf("pairing: model %s produced no scorable recipes for %s", m, c.Region.Code())
	}
	return Result{
		Region:   c.Region,
		Model:    m,
		Observed: observed,
		NullMean: mean,
		NullStd:  std,
		NRandom:  n,
		Z:        stats.ZScore(observed, mean, std, n),
	}, nil
}

// ModelScore draws nRecipes recipes from model m and returns the mean
// pairing score of the model cuisine itself. Fig 4 plots, alongside each
// real cuisine, where each model cuisine falls relative to the Random
// control; this provides the model-side observable.
func ModelScore(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, m Model, nRecipes int, src *rng.Source) (float64, error) {
	sampler, err := NewNullSampler(a, store, c, m, src)
	if err != nil {
		return 0, err
	}
	mean, _, n := sampler.NullMoments(nRecipes)
	if n == 0 {
		return 0, fmt.Errorf("pairing: model %s produced no scorable recipes for %s", m, c.Region.Code())
	}
	return mean, nil
}
