// Package pairing implements the paper's primary contribution: the
// food-pairing analysis of §IV.B-C.
//
// The food pairing score of a recipe R with n_R ingredients is
//
//	Ns(R) = 2/(n_R (n_R - 1)) * Σ_{i<j ∈ R} |F(i) ∩ F(j)|
//
// where F(i) is the flavor profile of ingredient i. A cuisine's flavor
// sharing N̄s is the mean Ns over its recipes. Each cuisine is compared
// against four randomized controls that preserve its exact ingredient
// set and recipe-size distribution (Random, Ingredient Frequency,
// Ingredient Category, Frequency+Category), and significance is
// expressed as a Z-score against the Random control. Ingredient
// contribution is the percentage change in N̄s upon removal of an
// ingredient from the cuisine.
//
// Ingredients without flavor profiles (the paper's four no-profile
// additives) are excluded from the pair sums and from n_R; a recipe with
// fewer than two profiled ingredients has no defined score and is
// skipped by cuisine averages.
package pairing

import (
	"fmt"
	"runtime"

	"culinary/internal/bitset"
	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/stats"
)

// Analyzer computes food-pairing statistics against a fixed catalog. It
// precomputes the ingredient-pair shared-compound counts once; after
// construction it is immutable and safe for concurrent use.
//
// Counts are held in packed strict-upper-triangular storage: entry
// (i, j) with i < j lives at tri[triRow[i]+j], which halves the memory
// of the previous dense n×n matrix while answering the same lookups.
// The diagonal is implicit (an ingredient shares no *pair* with itself)
// and symmetry is restored by ordering the indices at lookup time.
type Analyzer struct {
	catalog    *flavor.Catalog
	tri        []int32 // packed strict upper triangle, row-major
	triRow     []int   // triRow[i] + j == packed index of (i, j), i < j
	n          int
	hasProfile []bool
}

// constructionChunk is the number of matrix rows a worker claims per
// grab during parallel construction. Rows shrink as i grows (row i has
// n-1-i columns), so small dynamic chunks keep the pool balanced
// without a static partition that would leave early workers with most
// of the triangle.
const constructionChunk = 16

// NewAnalyzer builds an analyzer, precomputing the pairwise
// shared-compound counts (the dominant cost of naive pairing analysis;
// see the cached-vs-uncached ablation bench). Construction fans the
// triangle's rows out over GOMAXPROCS workers; the result is identical
// to a serial build regardless of scheduling because every packed entry
// is written exactly once.
func NewAnalyzer(catalog *flavor.Catalog) *Analyzer {
	return NewAnalyzerParallel(catalog, runtime.GOMAXPROCS(0))
}

// NewAnalyzerParallel is NewAnalyzer with an explicit worker count,
// exposed for benchmarks and for callers embedding construction inside
// an already-parallel pipeline. workers < 1 falls back to 1.
func NewAnalyzerParallel(catalog *flavor.Catalog, workers int) *Analyzer {
	n := catalog.Len()
	a := &Analyzer{
		catalog:    catalog,
		tri:        make([]int32, n*(n-1)/2),
		triRow:     make([]int, n),
		n:          n,
		hasProfile: make([]bool, n),
	}
	profiles := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		a.hasProfile[i] = catalog.Ingredient(flavor.ID(i)).HasProfile
		profiles[i] = catalog.Profile(flavor.ID(i))
		// Row i of the strict upper triangle starts at
		// i*(n-1) - i*(i-1)/2; subtracting i+1 folds the column offset
		// j-i-1 into a single add at lookup time.
		a.triRow[i] = i*(n-1) - i*(i-1)/2 - i - 1
	}

	fillRow := func(i int) {
		if !a.hasProfile[i] {
			// Profile-less additives have empty profiles: every
			// intersection is zero and the packed row is already
			// zeroed, so the whole row is skipped.
			return
		}
		start := a.triRow[i] + i + 1
		profiles[i].IntersectionCountMany(profiles[i+1:], a.tri[start:start+n-1-i])
	}

	if workers < 1 {
		workers = 1
	}
	// Worker pool over row chunks: workers pull chunks as they finish,
	// so the long early rows and short late rows balance out
	// dynamically. Every packed entry is written by exactly one worker.
	forEachChunkParallel(n-1, workers, constructionChunk, fillRow)
	return a
}

// Catalog returns the catalog the analyzer is bound to.
func (a *Analyzer) Catalog() *flavor.Catalog { return a.catalog }

// Shared returns |F(x) ∩ F(y)| from the precomputed triangle. The
// diagonal is 0 by construction, matching the dense matrix this storage
// replaced (an ingredient forms no pair with itself).
func (a *Analyzer) Shared(x, y flavor.ID) int {
	i, j := int(x), int(y)
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return int(a.tri[a.triRow[i]+j])
}

// sharedOrdered returns the packed count for i < j without the
// symmetry swap, for hot loops that already know the order.
func (a *Analyzer) sharedOrdered(i, j int) int32 {
	return a.tri[a.triRow[i]+j]
}

// sharedSym is the symmetric int-indexed lookup for i != j; callers
// that may see i == j must skip that case (the implicit diagonal is 0).
func (a *Analyzer) sharedSym(i, j int) int32 {
	if i < j {
		return a.sharedOrdered(i, j)
	}
	return a.sharedOrdered(j, i)
}

// RecipeScore computes Ns(R) for a list of ingredient IDs. The boolean
// result is false when fewer than two profiled ingredients are present,
// in which case the score is undefined (returned as 0).
func (a *Analyzer) RecipeScore(ids []flavor.ID) (float64, bool) {
	// Gather profiled ingredients only.
	prof := make([]int, 0, len(ids))
	for _, id := range ids {
		if a.hasProfile[id] {
			prof = append(prof, int(id))
		}
	}
	n := len(prof)
	if n < 2 {
		return 0, false
	}
	var sum int64
	for i := 0; i < n; i++ {
		x := prof[i]
		for j := i + 1; j < n; j++ {
			y := prof[j]
			if x == y {
				continue // duplicate member: the dense diagonal was 0
			}
			sum += int64(a.sharedSym(x, y))
		}
	}
	return 2 * float64(sum) / (float64(n) * float64(n-1)), true
}

// pairSum returns the raw Σ|F(i)∩F(j)| and profiled count for a recipe,
// used by the leave-one-out contribution computation.
func (a *Analyzer) pairSum(ids []flavor.ID) (sum int64, profiled []int) {
	prof := make([]int, 0, len(ids))
	for _, id := range ids {
		if a.hasProfile[id] {
			prof = append(prof, int(id))
		}
	}
	for i := 0; i < len(prof); i++ {
		x := prof[i]
		for j := i + 1; j < len(prof); j++ {
			y := prof[j]
			if x == y {
				continue
			}
			sum += int64(a.sharedSym(x, y))
		}
	}
	return sum, prof
}

// CuisineScore computes the mean flavor sharing N̄s of the cuisine,
// skipping recipes with undefined scores. The second result is the
// number of scored recipes.
func (a *Analyzer) CuisineScore(store *recipedb.Store, c *recipedb.Cuisine) (float64, int) {
	var acc stats.Accumulator
	for _, ings := range store.IngredientLists(c.RecipeIDs) {
		if s, ok := a.RecipeScore(ings); ok {
			acc.Add(s)
		}
	}
	return acc.Mean(), acc.N()
}

// Result bundles the observed cuisine score, a null model's moments, and
// the Z-score of the deviation, for one (cuisine, model) cell of Fig 4.
type Result struct {
	Region   recipedb.Region
	Model    Model
	Observed float64 // N̄s of the real cuisine (or of a model cuisine in model-vs-random comparisons)
	NullMean float64
	NullStd  float64
	NRandom  int
	Z        float64
}

// String renders a compact summary for logs and CLI output.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: observed=%.4f null=%.4f±%.4f Z=%+.1f",
		r.Region.Code(), r.Model, r.Observed, r.NullMean, r.NullStd, r.Z)
}
