// Package pairing implements the paper's primary contribution: the
// food-pairing analysis of §IV.B-C.
//
// The food pairing score of a recipe R with n_R ingredients is
//
//	Ns(R) = 2/(n_R (n_R - 1)) * Σ_{i<j ∈ R} |F(i) ∩ F(j)|
//
// where F(i) is the flavor profile of ingredient i. A cuisine's flavor
// sharing N̄s is the mean Ns over its recipes. Each cuisine is compared
// against four randomized controls that preserve its exact ingredient
// set and recipe-size distribution (Random, Ingredient Frequency,
// Ingredient Category, Frequency+Category), and significance is
// expressed as a Z-score against the Random control. Ingredient
// contribution is the percentage change in N̄s upon removal of an
// ingredient from the cuisine.
//
// Ingredients without flavor profiles (the paper's four no-profile
// additives) are excluded from the pair sums and from n_R; a recipe with
// fewer than two profiled ingredients has no defined score and is
// skipped by cuisine averages.
package pairing

import (
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/stats"
)

// Analyzer computes food-pairing statistics against a fixed catalog. It
// precomputes the ingredient-pair shared-compound matrix once; after
// construction it is immutable and safe for concurrent use.
type Analyzer struct {
	catalog    *flavor.Catalog
	shared     []int32 // row-major n×n shared-compound counts
	n          int
	hasProfile []bool
}

// NewAnalyzer builds an analyzer, precomputing the pairwise
// shared-compound matrix (the dominant cost of naive pairing analysis;
// see the cached-vs-uncached ablation bench).
func NewAnalyzer(catalog *flavor.Catalog) *Analyzer {
	n := catalog.Len()
	a := &Analyzer{
		catalog:    catalog,
		shared:     make([]int32, n*n),
		n:          n,
		hasProfile: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		a.hasProfile[i] = catalog.Ingredient(flavor.ID(i)).HasProfile
	}
	for i := 0; i < n; i++ {
		pi := catalog.Profile(flavor.ID(i))
		for j := i + 1; j < n; j++ {
			s := int32(pi.IntersectionCount(catalog.Profile(flavor.ID(j))))
			a.shared[i*n+j] = s
			a.shared[j*n+i] = s
		}
	}
	return a
}

// Catalog returns the catalog the analyzer is bound to.
func (a *Analyzer) Catalog() *flavor.Catalog { return a.catalog }

// Shared returns |F(x) ∩ F(y)| from the precomputed matrix.
func (a *Analyzer) Shared(x, y flavor.ID) int {
	return int(a.shared[int(x)*a.n+int(y)])
}

// RecipeScore computes Ns(R) for a list of ingredient IDs. The boolean
// result is false when fewer than two profiled ingredients are present,
// in which case the score is undefined (returned as 0).
func (a *Analyzer) RecipeScore(ids []flavor.ID) (float64, bool) {
	// Gather profiled ingredients only.
	prof := make([]int, 0, len(ids))
	for _, id := range ids {
		if a.hasProfile[id] {
			prof = append(prof, int(id))
		}
	}
	n := len(prof)
	if n < 2 {
		return 0, false
	}
	var sum int64
	for i := 0; i < n; i++ {
		row := prof[i] * a.n
		for j := i + 1; j < n; j++ {
			sum += int64(a.shared[row+prof[j]])
		}
	}
	return 2 * float64(sum) / (float64(n) * float64(n-1)), true
}

// pairSum returns the raw Σ|F(i)∩F(j)| and profiled count for a recipe,
// used by the leave-one-out contribution computation.
func (a *Analyzer) pairSum(ids []flavor.ID) (sum int64, profiled []int) {
	prof := make([]int, 0, len(ids))
	for _, id := range ids {
		if a.hasProfile[id] {
			prof = append(prof, int(id))
		}
	}
	for i := 0; i < len(prof); i++ {
		row := prof[i] * a.n
		for j := i + 1; j < len(prof); j++ {
			sum += int64(a.shared[row+prof[j]])
		}
	}
	return sum, prof
}

// CuisineScore computes the mean flavor sharing N̄s of the cuisine,
// skipping recipes with undefined scores. The second result is the
// number of scored recipes.
func (a *Analyzer) CuisineScore(store *recipedb.Store, c *recipedb.Cuisine) (float64, int) {
	var acc stats.Accumulator
	for _, rid := range c.RecipeIDs {
		if s, ok := a.RecipeScore(store.Recipe(rid).Ingredients); ok {
			acc.Add(s)
		}
	}
	return acc.Mean(), acc.N()
}

// Result bundles the observed cuisine score, a null model's moments, and
// the Z-score of the deviation, for one (cuisine, model) cell of Fig 4.
type Result struct {
	Region   recipedb.Region
	Model    Model
	Observed float64 // N̄s of the real cuisine (or of a model cuisine in model-vs-random comparisons)
	NullMean float64
	NullStd  float64
	NRandom  int
	Z        float64
}

// String renders a compact summary for logs and CLI output.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: observed=%.4f null=%.4f±%.4f Z=%+.1f",
		r.Region.Code(), r.Model, r.Observed, r.NullMean, r.NullStd, r.Z)
}
