package pairing

import (
	"fmt"
	"runtime"
	"sync"

	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/stats"
)

// This file holds the parallel scoring entry points. Two determinism
// regimes coexist:
//
//   - Index-addressed fan-out (ScoreCuisineParallel, the parallel
//     Contributions sweep): each work item writes its own slot and the
//     floating-point reduction runs sequentially in item order, so the
//     result is bit-identical to the serial code path no matter how
//     many workers run or how they are scheduled.
//
//   - Sharded sampling (NullMomentsParallel, CompareParallel): each
//     shard owns an independent rng.Source child (src.Split(shard), the
//     one-child-per-goroutine pattern the rng package documents), so
//     results are deterministic for a fixed shard count but follow a
//     different — equally valid — random stream than the serial
//     sampler.

// forEachChunkParallel runs fn(i) for every i in [0, n) across workers
// goroutines using a channel-fed pool of chunk-sized index ranges —
// the one worker-pool shape shared by analyzer construction and the
// scoring fan-outs. Workers pull chunks dynamically, so uneven
// per-index work balances without a static partition. fn must only
// write state owned by index i.
func forEachChunkParallel(n, workers, chunk int, fn func(i int)) {
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lo := range next {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	for lo := 0; lo < n; lo += chunk {
		next <- lo
	}
	close(next)
	wg.Wait()
}

// forEachIndexParallel is forEachChunkParallel with the scoring paths'
// default chunk size.
func forEachIndexParallel(n, workers int, fn func(i int)) {
	forEachChunkParallel(n, workers, 64, fn)
}

// ScoreCuisineParallel computes the cuisine's mean flavor sharing N̄s
// with recipe scoring fanned out over workers goroutines (GOMAXPROCS
// when workers < 1). Scores land in a per-recipe slice and the Welford
// accumulation then runs in recipe order, so the result is bit-identical
// to CuisineScore for every cuisine and worker count.
func (a *Analyzer) ScoreCuisineParallel(store *recipedb.Store, c *recipedb.Cuisine, workers int) (float64, int) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(c.RecipeIDs)
	if workers <= 1 || n < 256 {
		// Small cuisines are cheaper to score inline than to fan out.
		return a.CuisineScore(store, c)
	}
	scores := make([]float64, n)
	ok := make([]bool, n)
	// One locked snapshot up front: workers then score without touching
	// the store, so shards never contend on its reader count.
	lists := store.IngredientLists(c.RecipeIDs)
	forEachIndexParallel(n, workers, func(k int) {
		scores[k], ok[k] = a.RecipeScore(lists[k])
	})
	var acc stats.Accumulator
	for k := 0; k < n; k++ {
		if ok[k] {
			acc.Add(scores[k])
		}
	}
	return acc.Mean(), acc.N()
}

// NullMomentsParallel draws nRecipes randomized recipes under model m
// split across shards independent samplers, each seeded from
// src.Split(shard), and returns the pooled mean and population standard
// deviation of their pairing scores. Results are deterministic for a
// fixed (seed, shards) pair and independent of GOMAXPROCS: shards are
// merged in shard order. shards < 1 defaults to GOMAXPROCS.
func NullMomentsParallel(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, m Model,
	nRecipes, shards int, src *rng.Source) (mean, std float64, scored int, err error) {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > nRecipes {
		shards = nRecipes
	}
	if shards <= 1 {
		s, err := NewNullSampler(a, store, c, m, src.Split(0))
		if err != nil {
			return 0, 0, 0, err
		}
		mean, std, scored = s.NullMoments(nRecipes)
		return mean, std, scored, nil
	}
	accs := make([]stats.Accumulator, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	per := nRecipes / shards
	extra := nRecipes % shards
	for w := 0; w < shards; w++ {
		count := per
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int, child *rng.Source) {
			defer wg.Done()
			s, err := NewNullSampler(a, store, c, m, child)
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < count; i++ {
				if v, ok := a.RecipeScore(s.Draw()); ok {
					accs[w].Add(v)
				}
			}
		}(w, count, src.Split(uint64(w)))
	}
	wg.Wait()
	var merged stats.Accumulator
	for w := range accs {
		if errs[w] != nil {
			return 0, 0, 0, errs[w]
		}
		merged.Merge(&accs[w])
	}
	return merged.Mean(), merged.PopStdDev(), merged.N(), nil
}

// CompareParallel is Compare with the null sampling sharded across
// shards goroutines via NullMomentsParallel and the observed score
// computed through ScoreCuisineParallel. The observed N̄s is
// bit-identical to Compare's; the null moments follow the sharded
// random stream (deterministic for fixed shards).
func CompareParallel(a *Analyzer, store *recipedb.Store, c *recipedb.Cuisine, m Model,
	nRecipes, shards int, src *rng.Source) (Result, error) {
	// The observed score is bit-identical for any worker count, so it
	// always gets the full fan-out; shards only sizes the null sampling.
	observed, scoredRecipes := a.ScoreCuisineParallel(store, c, 0)
	if scoredRecipes == 0 {
		return Result{}, fmt.Errorf("pairing: cuisine %s has no scorable recipes", c.Region.Code())
	}
	mean, std, n, err := NullMomentsParallel(a, store, c, m, nRecipes, shards, src)
	if err != nil {
		return Result{}, err
	}
	if n == 0 {
		return Result{}, fmt.Errorf("pairing: model %s produced no scorable recipes for %s", m, c.Region.Code())
	}
	return Result{
		Region:   c.Region,
		Model:    m,
		Observed: observed,
		NullMean: mean,
		NullStd:  std,
		NRandom:  n,
		Z:        stats.ZScore(observed, mean, std, n),
	}, nil
}
