package pairing

import (
	"testing"

	"culinary/internal/flavor"
)

func partnersCatalog(t *testing.T) *flavor.Catalog {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return catalog
}

func TestParseModel(t *testing.T) {
	cases := map[string]Model{
		"random":             RandomModel,
		"Random":             RandomModel,
		"FREQUENCY":          FrequencyModel,
		"category":           CategoryModel,
		"frequency+category": FrequencyCategoryModel,
	}
	for name, want := range cases {
		got, err := ParseModel(name)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("ParseModel(bogus) succeeded")
	}
}

func TestTopPartnersRankingAndExclusions(t *testing.T) {
	catalog := partnersCatalog(t)
	a := NewAnalyzer(catalog)
	id, ok := catalog.Lookup("tomato")
	if !ok {
		t.Fatal("no tomato")
	}
	top := a.TopPartners(id, 10)
	if len(top) != 10 {
		t.Fatalf("partners = %d", len(top))
	}
	prev := top[0].Shared
	for _, p := range top {
		if p.Partner == id {
			t.Error("self included in partners")
		}
		if !catalog.Ingredient(p.Partner).HasProfile {
			t.Errorf("profile-less partner %v", p.Partner)
		}
		if p.Shared > prev {
			t.Error("partners not sorted by shared compounds")
		}
		if p.Shared != a.Shared(id, p.Partner) {
			t.Errorf("partner %v shared %d != matrix %d", p.Partner, p.Shared, a.Shared(id, p.Partner))
		}
		prev = p.Shared
	}
	// The top partner must dominate every non-listed ingredient.
	if top[0].Shared < top[len(top)-1].Shared {
		t.Error("ordering inverted")
	}
}

func TestTopPartnersEdgeCases(t *testing.T) {
	catalog := partnersCatalog(t)
	a := NewAnalyzer(catalog)
	id, _ := catalog.Lookup("tomato")
	if got := a.TopPartners(id, 0); got != nil {
		t.Errorf("k=0 -> %v", got)
	}
	if got := a.TopPartners(flavor.ID(-1), 5); got != nil {
		t.Errorf("bad id -> %v", got)
	}
	if got := a.TopPartners(flavor.ID(catalog.Len()+3), 5); got != nil {
		t.Errorf("out-of-range id -> %v", got)
	}
	// No-profile entities have no partners.
	if noProf, ok := catalog.Lookup("cooking spray"); ok {
		if got := a.TopPartners(noProf, 5); got != nil {
			t.Errorf("no-profile id -> %v", got)
		}
	}
	// k larger than the catalog clamps.
	all := a.TopPartners(id, catalog.Len()*2)
	if len(all) == 0 || len(all) >= catalog.Len() {
		t.Errorf("clamped partners = %d", len(all))
	}
}
