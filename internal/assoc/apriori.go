// Package assoc implements frequent-itemset and association-rule mining
// over recipe corpora — the classic market-basket machinery applied to
// ingredient co-occurrence. It supports the paper's higher-order
// pattern question ("instead of pairs what if one were to compute
// triples and quadruples of ingredients?") from the combinatorial side:
// which ingredient tuples actually recur in a cuisine, and which
// co-occurrences are over-represented (lift) beyond popularity.
//
// The miner is a level-wise Apriori: candidates of size k+1 are joined
// from frequent k-itemsets sharing a (k-1)-prefix, pruned by the
// downward-closure property, and counted in one pass over the recipes.
package assoc

import (
	"fmt"
	"math"
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// ItemSet is a frequent ingredient set with its support count.
type ItemSet struct {
	// Items are ingredient IDs in ascending order.
	Items []flavor.ID
	// Count is the number of recipes containing every item.
	Count int
	// Support is Count / #recipes.
	Support float64
}

// Rule is one association rule A → B with standard quality measures.
type Rule struct {
	// Antecedent and Consequent are disjoint ascending ingredient sets.
	Antecedent, Consequent []flavor.ID
	// Support is the joint support of A ∪ B.
	Support float64
	// Confidence is P(B | A).
	Confidence float64
	// Lift is Confidence / P(B); lift > 1 marks over-represented
	// co-occurrence beyond the consequent's popularity.
	Lift float64
}

// Config bounds the mining run.
type Config struct {
	// MinSupport is the minimum fraction of recipes an itemset must
	// appear in.
	MinSupport float64
	// MaxSize bounds itemset cardinality (the paper's question concerns
	// sizes up to 4).
	MaxSize int
	// MinConfidence filters rules.
	MinConfidence float64
}

// DefaultConfig mines pairs through quadruples at 2% support.
func DefaultConfig() Config {
	return Config{MinSupport: 0.02, MaxSize: 4, MinConfidence: 0.3}
}

func (cfg Config) validate() error {
	switch {
	case cfg.MinSupport <= 0 || cfg.MinSupport > 1:
		return fmt.Errorf("assoc: MinSupport %g outside (0,1]", cfg.MinSupport)
	case cfg.MaxSize < 1:
		return fmt.Errorf("assoc: MaxSize %d < 1", cfg.MaxSize)
	case cfg.MinConfidence < 0 || cfg.MinConfidence > 1:
		return fmt.Errorf("assoc: MinConfidence %g outside [0,1]", cfg.MinConfidence)
	}
	return nil
}

// Mine finds all frequent itemsets of a cuisine up to cfg.MaxSize.
// Results are grouped by size (index 0 holds singletons) and sorted by
// descending support within each size.
func Mine(store *recipedb.Store, c *recipedb.Cuisine, cfg Config) ([][]ItemSet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(c.RecipeIDs)
	if n == 0 {
		return nil, fmt.Errorf("assoc: cuisine %s has no recipes", c.Region.Code())
	}
	// Ceil, not floor: a count of ceil(s·n)-1 has support strictly below
	// s, so flooring would admit itemsets violating the threshold.
	minCount := int(math.Ceil(cfg.MinSupport * float64(n)))
	if minCount < 1 {
		minCount = 1
	}

	// Transactions as sorted ID slices.
	txs := make([][]flavor.ID, 0, n)
	for _, rid := range c.RecipeIDs {
		ings := append([]flavor.ID(nil), store.Recipe(rid).Ingredients...)
		sort.Slice(ings, func(i, j int) bool { return ings[i] < ings[j] })
		txs = append(txs, ings)
	}

	// Level 1: singletons from the cuisine frequency index.
	var level []ItemSet
	for _, id := range c.UniqueIngredients {
		if cnt := c.IngredientFreq[id]; cnt >= minCount {
			level = append(level, ItemSet{
				Items:   []flavor.ID{id},
				Count:   cnt,
				Support: float64(cnt) / float64(n),
			})
		}
	}
	sortLevel(level)
	out := [][]ItemSet{level}

	for size := 2; size <= cfg.MaxSize && len(level) > 1; size++ {
		candidates := join(level)
		if len(candidates) == 0 {
			break
		}
		counts := countCandidates(candidates, txs)
		var next []ItemSet
		for i, cand := range candidates {
			if counts[i] >= minCount {
				next = append(next, ItemSet{
					Items:   cand,
					Count:   counts[i],
					Support: float64(counts[i]) / float64(n),
				})
			}
		}
		sortLevel(next)
		if len(next) == 0 {
			break
		}
		out = append(out, next)
		level = next
	}
	return out, nil
}

func sortLevel(level []ItemSet) {
	sort.Slice(level, func(i, j int) bool {
		if level[i].Count != level[j].Count {
			return level[i].Count > level[j].Count
		}
		return lessIDs(level[i].Items, level[j].Items)
	})
}

func lessIDs(a, b []flavor.ID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// join produces size-(k+1) candidates from frequent k-itemsets sharing
// a (k-1)-prefix, with downward-closure pruning.
func join(level []ItemSet) [][]flavor.ID {
	// Index for closure pruning.
	frequent := make(map[string]bool, len(level))
	for _, is := range level {
		frequent[fingerprint(is.Items)] = true
	}
	// Sort lexically for prefix joining.
	sorted := make([][]flavor.ID, len(level))
	for i, is := range level {
		sorted[i] = is.Items
	}
	sort.Slice(sorted, func(i, j int) bool { return lessIDs(sorted[i], sorted[j]) })

	var out [][]flavor.ID
	k := len(sorted[0])
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if !samePrefix(sorted[i], sorted[j], k-1) {
				break // lexical order: once prefixes diverge, stop
			}
			cand := make([]flavor.ID, k+1)
			copy(cand, sorted[i])
			cand[k] = sorted[j][k-1]
			if cand[k-1] > cand[k] {
				cand[k-1], cand[k] = cand[k], cand[k-1]
			}
			if allSubsetsFrequent(cand, frequent) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []flavor.ID, k int) bool {
	for i := 0; i < k; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fingerprint(ids []flavor.ID) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// allSubsetsFrequent applies downward closure: every k-subset of the
// candidate must be frequent.
func allSubsetsFrequent(cand []flavor.ID, frequent map[string]bool) bool {
	if len(cand) <= 2 {
		return true // subsets are the joined singletons themselves
	}
	buf := make([]flavor.ID, 0, len(cand)-1)
	for skip := range cand {
		buf = buf[:0]
		for i, id := range cand {
			if i != skip {
				buf = append(buf, id)
			}
		}
		if !frequent[fingerprint(buf)] {
			return false
		}
	}
	return true
}

// countCandidates counts each candidate's occurrences across the
// transactions using sorted-merge containment.
func countCandidates(candidates [][]flavor.ID, txs [][]flavor.ID) []int {
	counts := make([]int, len(candidates))
	for _, tx := range txs {
		for i, cand := range candidates {
			if containsSorted(tx, cand) {
				counts[i]++
			}
		}
	}
	return counts
}

func containsSorted(tx, cand []flavor.ID) bool {
	i := 0
	for _, want := range cand {
		for i < len(tx) && tx[i] < want {
			i++
		}
		if i >= len(tx) || tx[i] != want {
			return false
		}
		i++
	}
	return true
}

// Rules derives association rules with one-item consequents from the
// mined itemsets (the standard, interpretable rule shape for
// ingredient data: "recipes with A and B also use C").
func Rules(levels [][]ItemSet, c *recipedb.Cuisine, cfg Config) []Rule {
	if len(levels) == 0 {
		return nil
	}
	n := float64(len(c.RecipeIDs))
	if n == 0 {
		return nil
	}
	// Support lookup across all levels.
	support := make(map[string]float64)
	for _, level := range levels {
		for _, is := range level {
			support[fingerprint(is.Items)] = is.Support
		}
	}
	var out []Rule
	for _, level := range levels[1:] { // rules need >= 2 items
		for _, is := range level {
			for skip, consequent := range is.Items {
				antecedent := make([]flavor.ID, 0, len(is.Items)-1)
				for i, id := range is.Items {
					if i != skip {
						antecedent = append(antecedent, id)
					}
				}
				sa, ok := support[fingerprint(antecedent)]
				if !ok || sa == 0 {
					continue
				}
				conf := is.Support / sa
				if conf < cfg.MinConfidence {
					continue
				}
				sc := float64(c.IngredientFreq[consequent]) / n
				lift := 0.0
				if sc > 0 {
					lift = conf / sc
				}
				out = append(out, Rule{
					Antecedent: antecedent,
					Consequent: []flavor.ID{consequent},
					Support:    is.Support,
					Confidence: conf,
					Lift:       lift,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if !equalIDs(out[i].Antecedent, out[j].Antecedent) {
			return lessIDs(out[i].Antecedent, out[j].Antecedent)
		}
		return lessIDs(out[i].Consequent, out[j].Consequent)
	})
	return out
}

func equalIDs(a, b []flavor.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
