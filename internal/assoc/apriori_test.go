package assoc

import (
	"math"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

var testCatalog = func() *flavor.Catalog {
	c, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return c
}()

func id(t *testing.T, name string) flavor.ID {
	t.Helper()
	v, ok := testCatalog.Lookup(name)
	if !ok {
		t.Fatalf("missing %q", name)
	}
	return v
}

// fixture builds a 10-recipe cuisine with engineered co-occurrence:
// {tomato, basil} in 6 recipes, {tomato, basil, olive oil} in 4,
// garlic independent.
func fixture(t *testing.T) (*recipedb.Store, *recipedb.Cuisine) {
	t.Helper()
	s := recipedb.NewStore(testCatalog)
	add := func(names ...string) {
		ids := make([]flavor.ID, len(names))
		for i, n := range names {
			ids[i] = id(t, n)
		}
		if _, err := s.Add("r", recipedb.Italy, recipedb.AllRecipes, ids); err != nil {
			t.Fatal(err)
		}
	}
	add("tomato", "basil", "olive oil")
	add("tomato", "basil", "olive oil")
	add("tomato", "basil", "olive oil", "garlic")
	add("tomato", "basil", "olive oil", "onion")
	add("tomato", "basil", "garlic")
	add("tomato", "basil", "onion")
	add("tomato", "garlic")
	add("basil", "garlic")
	add("onion", "garlic")
	add("pasta", "garlic")
	return s, s.BuildCuisine(recipedb.Italy)
}

func TestMineSingletons(t *testing.T) {
	store, c := fixture(t)
	levels, err := Mine(store, c, Config{MinSupport: 0.5, MaxSize: 1, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 {
		t.Fatalf("levels = %d", len(levels))
	}
	// tomato (7/10), basil (7/10), garlic (6/10) qualify at 50%.
	if len(levels[0]) != 3 {
		t.Fatalf("singletons = %+v", levels[0])
	}
	for _, is := range levels[0] {
		if is.Support < 0.5 {
			t.Fatalf("infrequent singleton: %+v", is)
		}
		if is.Count != c.IngredientFreq[is.Items[0]] {
			t.Fatalf("count mismatch: %+v", is)
		}
	}
}

func TestMinePairsAndTriples(t *testing.T) {
	store, c := fixture(t)
	levels, err := Mine(store, c, Config{MinSupport: 0.4, MaxSize: 3, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) < 2 {
		t.Fatalf("expected pairs, got %d levels", len(levels))
	}
	// {tomato, basil} appears in 6 of 10 recipes.
	tb := [2]flavor.ID{id(t, "tomato"), id(t, "basil")}
	if tb[0] > tb[1] {
		tb[0], tb[1] = tb[1], tb[0]
	}
	found := false
	for _, is := range levels[1] {
		if len(is.Items) != 2 {
			t.Fatalf("level 2 has %d-item set", len(is.Items))
		}
		if is.Items[0] == tb[0] && is.Items[1] == tb[1] {
			found = true
			if is.Count != 6 {
				t.Fatalf("tomato+basil count = %d, want 6", is.Count)
			}
			if math.Abs(is.Support-0.6) > 1e-12 {
				t.Fatalf("support = %v", is.Support)
			}
		}
	}
	if !found {
		t.Fatal("tomato+basil not mined")
	}
	// {tomato, basil, olive oil} appears in 4 recipes (support 0.4).
	if len(levels) >= 3 {
		foundTriple := false
		for _, is := range levels[2] {
			if is.Count == 4 {
				foundTriple = true
			}
		}
		if !foundTriple {
			t.Fatal("triple missing")
		}
	} else {
		t.Fatal("triples not mined at support 0.4")
	}
}

func TestMineSupportMonotone(t *testing.T) {
	// Downward closure: every k-itemset's support <= min over its
	// (k-1)-subsets.
	store, c := fixture(t)
	levels, err := Mine(store, c, Config{MinSupport: 0.1, MaxSize: 4, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	supp := map[string]float64{}
	for _, level := range levels {
		for _, is := range level {
			supp[fingerprint(is.Items)] = is.Support
		}
	}
	for _, level := range levels[1:] {
		for _, is := range level {
			buf := make([]flavor.ID, 0, len(is.Items)-1)
			for skip := range is.Items {
				buf = buf[:0]
				for i, v := range is.Items {
					if i != skip {
						buf = append(buf, v)
					}
				}
				parent, ok := supp[fingerprint(buf)]
				if !ok {
					t.Fatalf("subset of frequent set not frequent: %v ⊂ %v", buf, is.Items)
				}
				if is.Support > parent+1e-12 {
					t.Fatalf("support not monotone: %v", is)
				}
			}
		}
	}
}

func TestMineItemsSortedWithinSets(t *testing.T) {
	store, c := fixture(t)
	levels, err := Mine(store, c, Config{MinSupport: 0.2, MaxSize: 3, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range levels {
		for _, is := range level {
			for i := 1; i < len(is.Items); i++ {
				if is.Items[i-1] >= is.Items[i] {
					t.Fatalf("itemset not ascending: %v", is.Items)
				}
			}
		}
	}
}

func TestMineValidation(t *testing.T) {
	store, c := fixture(t)
	bad := []Config{
		{MinSupport: 0, MaxSize: 2, MinConfidence: 0.5},
		{MinSupport: 1.5, MaxSize: 2, MinConfidence: 0.5},
		{MinSupport: 0.1, MaxSize: 0, MinConfidence: 0.5},
		{MinSupport: 0.1, MaxSize: 2, MinConfidence: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Mine(store, c, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	empty := store.BuildCuisine(recipedb.Korea)
	if _, err := Mine(store, empty, DefaultConfig()); err == nil {
		t.Error("empty cuisine accepted")
	}
}

func TestRules(t *testing.T) {
	store, c := fixture(t)
	levels, err := Mine(store, c, Config{MinSupport: 0.3, MaxSize: 3, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	rules := Rules(levels, c, Config{MinSupport: 0.3, MaxSize: 3, MinConfidence: 0.5})
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	tomato, basil := id(t, "tomato"), id(t, "basil")
	var tb *Rule
	for i := range rules {
		r := &rules[i]
		if r.Confidence < 0.5 {
			t.Fatalf("rule below MinConfidence: %+v", r)
		}
		if r.Lift < 0 {
			t.Fatalf("negative lift: %+v", r)
		}
		if len(r.Consequent) != 1 {
			t.Fatalf("multi-item consequent: %+v", r)
		}
		if len(r.Antecedent) == 1 && r.Antecedent[0] == tomato && r.Consequent[0] == basil {
			tb = r
		}
	}
	if tb == nil {
		t.Fatal("tomato → basil rule missing")
	}
	// P(basil|tomato) = 6/7; P(basil) = 7/10; lift = (6/7)/(7/10).
	if math.Abs(tb.Confidence-6.0/7) > 1e-12 {
		t.Fatalf("confidence = %v", tb.Confidence)
	}
	if math.Abs(tb.Lift-(6.0/7)/(0.7)) > 1e-12 {
		t.Fatalf("lift = %v", tb.Lift)
	}
	// Sorted by lift descending.
	for i := 1; i < len(rules); i++ {
		if rules[i].Lift > rules[i-1].Lift+1e-12 {
			t.Fatal("rules not sorted by lift")
		}
	}
}

func TestRulesEmptyInputs(t *testing.T) {
	_, c := fixture(t)
	if got := Rules(nil, c, DefaultConfig()); got != nil {
		t.Fatal("nil levels should give nil rules")
	}
	if got := Rules([][]ItemSet{{}}, c, DefaultConfig()); got != nil {
		t.Fatal("singleton-only levels should give nil rules")
	}
}

func TestContainsSorted(t *testing.T) {
	tx := []flavor.ID{1, 3, 5, 9}
	cases := []struct {
		cand []flavor.ID
		want bool
	}{
		{[]flavor.ID{1}, true},
		{[]flavor.ID{3, 9}, true},
		{[]flavor.ID{1, 3, 5, 9}, true},
		{[]flavor.ID{2}, false},
		{[]flavor.ID{1, 4}, false},
		{[]flavor.ID{9, 10}, false},
		{nil, true},
	}
	for _, tc := range cases {
		if got := containsSorted(tx, tc.cand); got != tc.want {
			t.Errorf("containsSorted(%v) = %v", tc.cand, got)
		}
	}
}
