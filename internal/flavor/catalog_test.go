package flavor

import (
	"testing"
	"testing/quick"
)

func buildDefault(t *testing.T) *Catalog {
	t.Helper()
	c, err := Build(DefaultConfig())
	if err != nil {
		t.Fatalf("Build(DefaultConfig()): %v", err)
	}
	return c
}

func TestBuildDeterministic(t *testing.T) {
	a := buildDefault(t)
	b := buildDefault(t)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		id := ID(i)
		if a.Ingredient(id).Name != b.Ingredient(id).Name {
			t.Fatalf("ingredient %d name differs", i)
		}
		if !a.Profile(id).Equal(b.Profile(id)) {
			t.Fatalf("ingredient %d (%s) profile differs between identical builds",
				i, a.Ingredient(id).Name)
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = cfg.Seed + 1
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	differ := 0
	for i := 0; i < a.Len(); i++ {
		if !a.Profile(ID(i)).Equal(b.Profile(ID(i))) {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("different seeds produced identical profiles")
	}
}

func TestCatalogSize(t *testing.T) {
	c := buildDefault(t)
	// The embedded catalog should be substantial: several hundred basic
	// ingredients plus compounds, comparable to the per-region unique
	// ingredient counts in Table 1 (198..612).
	if c.Len() < 500 {
		t.Fatalf("catalog has only %d ingredients", c.Len())
	}
}

func TestPaperSpecificIngredients(t *testing.T) {
	c := buildDefault(t)
	// §III.B: 13 ingredients added to the FlavorDB-derived list.
	added13 := []string{
		"anise oil", "apple juice", "coconut milk", "coconut oil",
		"hops bear", "lemon juice", "brown rice", "tomato juice",
		"tomato paste", "tomato puree", "coriander seed", "pork fat",
		"cured ham",
	}
	// 4 from Ahn et al.
	ahn4 := []string{"cayenne", "yeast", "tequila", "sauerkraut"}
	// 7 manually added additives.
	additives7 := []string{
		"baking powder", "monosodium glutamate", "citric acid",
		"cooking spray", "gelatin", "food coloring", "liquid smoke",
	}
	for _, name := range append(append(added13, ahn4...), additives7...) {
		if _, ok := c.Lookup(name); !ok {
			t.Errorf("paper-required ingredient %q missing from catalog", name)
		}
	}
}

func TestNoProfileAdditives(t *testing.T) {
	c := buildDefault(t)
	// §III.B: "For the last four additives, no flavor profile was added."
	for _, name := range []string{"cooking spray", "gelatin", "food coloring", "liquid smoke"} {
		id, ok := c.Lookup(name)
		if !ok {
			t.Fatalf("%q missing", name)
		}
		ing := c.Ingredient(id)
		if ing.HasProfile {
			t.Errorf("%q should have HasProfile=false", name)
		}
		if !c.Profile(id).IsEmpty() {
			t.Errorf("%q should have an empty profile", name)
		}
	}
	// The first three additives do carry profiles.
	for _, name := range []string{"baking powder", "monosodium glutamate", "citric acid"} {
		id, _ := c.Lookup(name)
		if c.Profile(id).IsEmpty() {
			t.Errorf("%q should have a non-empty profile", name)
		}
	}
}

func TestSynonymLookups(t *testing.T) {
	c := buildDefault(t)
	cases := [][2]string{
		{"bun", "bread"},
		{"lager", "beer"},
		{"curd", "yogurt"},
		{"whisky", "whiskey"},
		{"hing", "asafoetida"},
		{"chile", "chili pepper"},
		{"aubergine", "eggplant"},
		{"garbanzo", "chickpea"},
	}
	for _, pair := range cases {
		alt, canonical := pair[0], pair[1]
		aid, ok := c.Lookup(alt)
		if !ok {
			t.Errorf("synonym %q not found", alt)
			continue
		}
		cid, ok := c.Lookup(canonical)
		if !ok {
			t.Errorf("canonical %q not found", canonical)
			continue
		}
		if aid != cid {
			t.Errorf("Lookup(%q)=%d but Lookup(%q)=%d", alt, aid, canonical, cid)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	c := buildDefault(t)
	if id, ok := c.Lookup("unobtainium"); ok || id != Invalid {
		t.Fatalf("unknown lookup returned %d, %v", id, ok)
	}
}

func TestCompoundProfilesAreUnions(t *testing.T) {
	c := buildDefault(t)
	// 'half half' = milk + cream (the paper's example).
	hh, ok := c.Lookup("half half")
	if !ok {
		t.Fatal("half half missing")
	}
	ing := c.Ingredient(hh)
	if !ing.Compound || len(ing.Constituents) != 2 {
		t.Fatalf("half half should be a 2-part compound, got %+v", ing)
	}
	milk, _ := c.Lookup("milk")
	cream, _ := c.Lookup("cream")
	want := c.Profile(milk).Union(c.Profile(cream))
	if !c.Profile(hh).Equal(want) {
		t.Fatal("half half profile is not milk ∪ cream")
	}
	// 'mayonnaise' = oil + egg + lemon juice.
	mayo, ok := c.Lookup("mayonnaise")
	if !ok {
		t.Fatal("mayonnaise missing")
	}
	m := c.Ingredient(mayo)
	if !m.Compound || len(m.Constituents) != 3 {
		t.Fatalf("mayonnaise should be a 3-part compound, got %+v", m)
	}
}

func TestNestedCompound(t *testing.T) {
	c := buildDefault(t)
	// 'wonton soup base' includes compound 'chicken stock'.
	id, ok := c.Lookup("wonton soup base")
	if !ok {
		t.Fatal("wonton soup base missing")
	}
	stock, _ := c.Lookup("chicken stock")
	// Every molecule of the stock must appear in the soup base.
	inter := c.Profile(id).IntersectionCount(c.Profile(stock))
	if inter != c.Profile(stock).Count() {
		t.Fatalf("nested compound not fully pooled: %d of %d molecules",
			inter, c.Profile(stock).Count())
	}
}

func TestProfileSizesWithinBounds(t *testing.T) {
	c := buildDefault(t)
	cfg := c.Config()
	for i := 0; i < c.Len(); i++ {
		ing := c.Ingredient(ID(i))
		n := c.Profile(ID(i)).Count()
		if !ing.HasProfile {
			if n != 0 {
				t.Errorf("%s: no-profile ingredient has %d molecules", ing.Name, n)
			}
			continue
		}
		if ing.Compound {
			continue // unions may exceed MaxProfile
		}
		if n < cfg.MinProfile || n > cfg.MaxProfile {
			t.Errorf("%s: profile size %d outside [%d,%d]",
				ing.Name, n, cfg.MinProfile, cfg.MaxProfile)
		}
	}
}

func TestWithinCategoryOverlapExceedsCross(t *testing.T) {
	// The structural property the pairing analysis depends on: mean
	// shared-compound count within a category exceeds the cross-category
	// mean.
	c := buildDefault(t)
	var within, cross float64
	var nw, nc int
	for i := 0; i < c.Len(); i++ {
		a := c.Ingredient(ID(i))
		if a.Compound || !a.HasProfile {
			continue
		}
		for j := i + 1; j < c.Len(); j += 7 { // stride to keep the test fast
			b := c.Ingredient(ID(j))
			if b.Compound || !b.HasProfile {
				continue
			}
			s := float64(c.SharedCompounds(ID(i), ID(j)))
			if a.Category == b.Category {
				within += s
				nw++
			} else {
				cross += s
				nc++
			}
		}
	}
	if nw == 0 || nc == 0 {
		t.Fatal("degenerate sample")
	}
	mw, mc := within/float64(nw), cross/float64(nc)
	if mw <= mc*1.2 {
		t.Fatalf("within-category sharing %.2f not clearly above cross-category %.2f", mw, mc)
	}
}

func TestByCategory(t *testing.T) {
	c := buildDefault(t)
	total := 0
	for _, cat := range AllCategories() {
		ids := c.ByCategory(cat)
		if len(ids) == 0 {
			t.Errorf("category %s has no ingredients", cat)
		}
		for _, id := range ids {
			if c.Ingredient(id).Category != cat {
				t.Errorf("ingredient %s indexed under wrong category", c.Ingredient(id).Name)
			}
		}
		total += len(ids)
	}
	if total != c.Len() {
		t.Fatalf("category index covers %d of %d ingredients", total, c.Len())
	}
	if c.ByCategory(Category(99)) != nil {
		t.Fatal("invalid category should return nil")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	c := buildDefault(t)
	names := c.Names()
	if len(names) != c.Len() {
		t.Fatalf("Names returned %d of %d", len(names), c.Len())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	all := c.AllNames()
	if len(all) != len(names)+len(c.SynonymNames()) {
		t.Fatal("AllNames length mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.NumMolecules = 10 },
		func(c *Config) { c.NumThemes = 0 },
		func(c *Config) { c.NumThemes = c.NumMolecules + 1 },
		func(c *Config) { c.BackboneSize = -1 },
		func(c *Config) { c.BackboneSize = c.NumMolecules },
		func(c *Config) { c.BackboneProb = -0.1 },
		func(c *Config) { c.BackboneProb = 1.1 },
		func(c *Config) { c.MinProfile = 0 },
		func(c *Config) { c.MaxProfile = 2 },
		func(c *Config) { c.MaxProfile = c.NumMolecules + 1 },
		func(c *Config) { c.ThemesPerCategory = 0 },
		func(c *Config) { c.CategoryFocus = 0 },
		func(c *Config) { c.CategoryFocus = 1.5 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if _, err := Build(cfg); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Vegetable.String() != "Vegetable" {
		t.Fatal("Vegetable name wrong")
	}
	if NutsAndSeeds.String() != "Nuts and Seeds" {
		t.Fatal("Nuts and Seeds name wrong")
	}
	if got := Category(99).String(); got != "Category(99)" {
		t.Fatalf("out-of-range String = %q", got)
	}
	if len(AllCategories()) != 21 {
		t.Fatalf("paper specifies 21 categories, got %d", len(AllCategories()))
	}
}

func TestParseCategoryRoundTrip(t *testing.T) {
	for _, cat := range AllCategories() {
		got, err := ParseCategory(cat.String())
		if err != nil || got != cat {
			t.Fatalf("ParseCategory(%q) = %v, %v", cat.String(), got, err)
		}
	}
	if _, err := ParseCategory("Unknown"); err == nil {
		t.Fatal("unknown category should error")
	}
}

func TestMoleculeNamesDistinct(t *testing.T) {
	c := buildDefault(t)
	seen := make(map[string]int)
	for i := 0; i < c.NumMolecules(); i++ {
		m := c.Molecule(i)
		if m.ID != i {
			t.Fatalf("molecule %d has ID %d", i, m.ID)
		}
		if prev, dup := seen[m.Name]; dup {
			t.Fatalf("molecules %d and %d share name %q", prev, i, m.Name)
		}
		seen[m.Name] = i
		if len(m.Descriptors) == 0 {
			t.Fatalf("molecule %d has no descriptors", i)
		}
	}
}

func TestSharedCompoundsSymmetric(t *testing.T) {
	c := buildDefault(t)
	f := func(a, b uint16) bool {
		x := ID(int(a) % c.Len())
		y := ID(int(b) % c.Len())
		return c.SharedCompounds(x, y) == c.SharedCompounds(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedCompoundsBoundedByProfileSizes(t *testing.T) {
	c := buildDefault(t)
	f := func(a, b uint16) bool {
		x := ID(int(a) % c.Len())
		y := ID(int(b) % c.Len())
		s := c.SharedCompounds(x, y)
		return s <= c.Profile(x).Count() && s <= c.Profile(y).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
