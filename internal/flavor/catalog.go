package flavor

import (
	"fmt"
	"math"
	"sort"

	"culinary/internal/bitset"
	"culinary/internal/rng"
)

// ID identifies an ingredient within a Catalog. IDs are dense indices
// [0, Catalog.Len()) so downstream packages index arrays by ID.
type ID int

// Invalid is the sentinel returned by lookups that fail.
const Invalid ID = -1

// Ingredient is one catalog entity: a basic natural ingredient or a
// compound ingredient whose profile pools its constituents' molecules.
type Ingredient struct {
	ID       ID
	Name     string
	Category Category
	// Compound marks ready-made combinations ('mayonnaise', 'half half').
	Compound bool
	// Constituents lists the component ingredients of a compound.
	Constituents []ID
	// HasProfile is false for the additive entities the paper lists as
	// carrying no flavor profile; the pairing analysis skips them.
	HasProfile bool
}

// Config controls synthetic flavor-profile generation. The zero value is
// not valid; start from DefaultConfig.
type Config struct {
	// Seed drives all profile randomness; equal seeds give equal catalogs.
	Seed uint64
	// NumMolecules is the size of the molecule universe.
	NumMolecules int
	// NumThemes is the number of latent flavor themes.
	NumThemes int
	// BackboneSize is the count of ubiquitous molecules shared broadly
	// across ingredients (Maillard products, common esters and acids in
	// the real data).
	BackboneSize int
	// BackboneProb is the probability that any profile slot draws from
	// the backbone instead of the ingredient's theme mixture.
	BackboneProb float64
	// MeanLogProfile and SigmaLogProfile parameterize the log-normal
	// profile-size distribution.
	MeanLogProfile  float64
	SigmaLogProfile float64
	// MinProfile and MaxProfile clamp profile sizes.
	MinProfile, MaxProfile int
	// ThemesPerCategory is how many preferred themes each category has.
	ThemesPerCategory int
	// CategoryFocus in (0,1] is the probability that a non-backbone slot
	// draws from the category's preferred themes rather than a uniform
	// random theme; higher focus means stronger within-category overlap.
	CategoryFocus float64
}

// DefaultConfig returns the calibration used across the repository:
// ~1100-molecule universe, heavy-tailed profile sizes with median ≈ 40
// molecules, and category-correlated theme structure.
func DefaultConfig() Config {
	return Config{
		Seed:              20180416, // ICDE 2018 conference date
		NumMolecules:      1104,     // divisible by default theme count
		NumThemes:         48,
		BackboneSize:      64,
		BackboneProb:      0.22,
		MeanLogProfile:    3.7, // exp(3.7) ≈ 40
		SigmaLogProfile:   0.75,
		MinProfile:        3,
		MaxProfile:        320,
		ThemesPerCategory: 4,
		CategoryFocus:     0.8,
	}
}

// Catalog is the ingredient catalog with generated flavor profiles. It is
// immutable after Build and safe for concurrent readers.
type Catalog struct {
	cfg         Config
	ingredients []Ingredient
	byName      map[string]ID
	synonyms    map[string]ID // alternate spellings → canonical ID
	profiles    []*bitset.Set
	molecules   []Molecule
	byCategory  [][]ID
}

// Build assembles the embedded catalog and synthesizes flavor profiles
// according to cfg.
func Build(cfg Config) (*Catalog, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	c := &Catalog{
		cfg:        cfg,
		byName:     make(map[string]ID),
		synonyms:   make(map[string]ID),
		byCategory: make([][]ID, NumCategories),
	}

	// 1. Basic ingredients.
	add := func(name string, cat Category) error {
		if _, dup := c.byName[name]; dup {
			return fmt.Errorf("flavor: duplicate ingredient %q", name)
		}
		id := ID(len(c.ingredients))
		c.ingredients = append(c.ingredients, Ingredient{
			ID:         id,
			Name:       name,
			Category:   cat,
			HasProfile: !noProfileIngredients[name],
		})
		c.byName[name] = id
		c.byCategory[cat] = append(c.byCategory[cat], id)
		return nil
	}
	for _, e := range baseIngredients {
		if err := add(e.name, e.cat); err != nil {
			return nil, err
		}
	}
	for _, e := range extraBaseIngredients {
		if err := add(e.name, e.cat); err != nil {
			return nil, err
		}
	}

	// 2. Compound ingredients, resolvable in declaration order so later
	// compounds may reference earlier ones.
	for _, spec := range compoundIngredients {
		if _, dup := c.byName[spec.name]; dup {
			return nil, fmt.Errorf("flavor: compound %q duplicates an existing name", spec.name)
		}
		ids := make([]ID, 0, len(spec.constituents))
		for _, part := range spec.constituents {
			pid, ok := c.byName[part]
			if !ok {
				return nil, fmt.Errorf("flavor: compound %q references unknown constituent %q", spec.name, part)
			}
			ids = append(ids, pid)
		}
		id := ID(len(c.ingredients))
		c.ingredients = append(c.ingredients, Ingredient{
			ID:           id,
			Name:         spec.name,
			Category:     spec.cat,
			Compound:     true,
			Constituents: ids,
			HasProfile:   true,
		})
		c.byName[spec.name] = id
		c.byCategory[spec.cat] = append(c.byCategory[spec.cat], id)
	}

	// 3. Synonyms.
	for _, pair := range synonymPairs {
		alt, canonical := pair[0], pair[1]
		target, ok := c.byName[canonical]
		if !ok {
			return nil, fmt.Errorf("flavor: synonym %q targets unknown ingredient %q", alt, canonical)
		}
		if _, clash := c.byName[alt]; clash {
			return nil, fmt.Errorf("flavor: synonym %q collides with a canonical name", alt)
		}
		if prev, dup := c.synonyms[alt]; dup && prev != target {
			return nil, fmt.Errorf("flavor: synonym %q maps to both %d and %d", alt, prev, target)
		}
		c.synonyms[alt] = target
	}

	// 4. Molecule universe and profiles.
	src := rng.New(cfg.Seed)
	c.molecules = buildMoleculeUniverse(cfg.NumMolecules, cfg.NumThemes, src.Split(1))
	if err := c.generateProfiles(src.Split(2)); err != nil {
		return nil, err
	}
	return c, nil
}

func validateConfig(cfg Config) error {
	switch {
	case cfg.NumMolecules < 64:
		return fmt.Errorf("flavor: NumMolecules %d too small", cfg.NumMolecules)
	case cfg.NumThemes < 1 || cfg.NumThemes > cfg.NumMolecules:
		return fmt.Errorf("flavor: NumThemes %d invalid for %d molecules", cfg.NumThemes, cfg.NumMolecules)
	case cfg.BackboneSize < 0 || cfg.BackboneSize >= cfg.NumMolecules:
		return fmt.Errorf("flavor: BackboneSize %d invalid", cfg.BackboneSize)
	case cfg.BackboneProb < 0 || cfg.BackboneProb > 1:
		return fmt.Errorf("flavor: BackboneProb %g outside [0,1]", cfg.BackboneProb)
	case cfg.MinProfile < 1 || cfg.MaxProfile < cfg.MinProfile:
		return fmt.Errorf("flavor: profile bounds [%d,%d] invalid", cfg.MinProfile, cfg.MaxProfile)
	case cfg.MaxProfile > cfg.NumMolecules:
		return fmt.Errorf("flavor: MaxProfile %d exceeds universe %d", cfg.MaxProfile, cfg.NumMolecules)
	case cfg.ThemesPerCategory < 1 || cfg.ThemesPerCategory > cfg.NumThemes:
		return fmt.Errorf("flavor: ThemesPerCategory %d invalid", cfg.ThemesPerCategory)
	case cfg.CategoryFocus <= 0 || cfg.CategoryFocus > 1:
		return fmt.Errorf("flavor: CategoryFocus %g outside (0,1]", cfg.CategoryFocus)
	}
	return nil
}

// generateProfiles assigns every basic ingredient a molecule set and
// pools compound profiles from constituents.
func (c *Catalog) generateProfiles(src *rng.Source) error {
	cfg := c.cfg
	n := cfg.NumMolecules

	// Backbone: the first BackboneSize molecule ids after a deterministic
	// shuffle, so backbone membership is spread over themes.
	perm := src.Split(0).Perm(n)
	backbone := perm[:cfg.BackboneSize]

	// Molecules grouped by theme for theme-directed sampling.
	byTheme := make([][]int, cfg.NumThemes)
	for _, m := range c.molecules {
		byTheme[m.Theme] = append(byTheme[m.Theme], m.ID)
	}

	// Preferred themes per category: a deterministic stride assignment
	// with overlap between adjacent categories, mimicking how e.g. herbs
	// and spices share terpene chemistry while dairy and meat share
	// lipid-derived compounds.
	catThemes := make([][]int, NumCategories)
	for cat := 0; cat < NumCategories; cat++ {
		themes := make([]int, cfg.ThemesPerCategory)
		for j := 0; j < cfg.ThemesPerCategory; j++ {
			themes[j] = (cat*2 + j*3) % cfg.NumThemes
		}
		catThemes[cat] = themes
	}

	c.profiles = make([]*bitset.Set, len(c.ingredients))
	for i := range c.ingredients {
		ing := &c.ingredients[i]
		if ing.Compound {
			continue // pooled below after all basics exist
		}
		set := bitset.New(n)
		if ing.HasProfile {
			isrc := src.Split(uint64(i) + 1)
			size := c.sampleProfileSize(isrc)
			themes := catThemes[ing.Category]
			// Each ingredient also has a private signature theme giving
			// it molecules its category-mates lack.
			private := isrc.Intn(cfg.NumThemes)
			for set.Count() < size {
				r := isrc.Float64()
				var pool []int
				switch {
				case r < cfg.BackboneProb:
					pool = backbone
				case r < cfg.BackboneProb+(1-cfg.BackboneProb)*cfg.CategoryFocus:
					// Weighted toward the category's first themes.
					t := themes[themeRank(isrc, len(themes))]
					pool = byTheme[t]
				default:
					if isrc.Float64() < 0.5 {
						pool = byTheme[private]
					} else {
						pool = byTheme[isrc.Intn(cfg.NumThemes)]
					}
				}
				if len(pool) == 0 {
					continue
				}
				set.Add(pool[isrc.Intn(len(pool))])
			}
		}
		c.profiles[i] = set
	}
	// Compound profiles: union of constituents (§III.C). Constituents are
	// guaranteed to precede the compound or be compounds declared earlier,
	// so a single in-order pass suffices.
	for i := range c.ingredients {
		ing := &c.ingredients[i]
		if !ing.Compound {
			continue
		}
		set := bitset.New(n)
		for _, pid := range ing.Constituents {
			sub := c.profiles[pid]
			if sub == nil {
				return fmt.Errorf("flavor: compound %q built before constituent %d", ing.Name, pid)
			}
			set.UnionInPlace(sub)
		}
		c.profiles[i] = set
	}
	return nil
}

// themeRank picks an index in [0, k) geometrically favoring low indices,
// so a category's first preferred theme dominates its profile chemistry.
func themeRank(src *rng.Source, k int) int {
	for i := 0; i < k-1; i++ {
		if src.Float64() < 0.5 {
			return i
		}
	}
	return k - 1
}

// sampleProfileSize draws a log-normal profile size clamped to the
// configured range.
func (c *Catalog) sampleProfileSize(src *rng.Source) int {
	cfg := c.cfg
	v := int(expf(cfg.MeanLogProfile + cfg.SigmaLogProfile*src.NormFloat64()))
	if v < cfg.MinProfile {
		v = cfg.MinProfile
	}
	if v > cfg.MaxProfile {
		v = cfg.MaxProfile
	}
	return v
}

// Len returns the number of ingredients in the catalog.
func (c *Catalog) Len() int { return len(c.ingredients) }

// NumMolecules returns the size of the molecule universe.
func (c *Catalog) NumMolecules() int { return c.cfg.NumMolecules }

// Config returns the configuration the catalog was built with.
func (c *Catalog) Config() Config { return c.cfg }

// Ingredient returns the ingredient with the given ID. It panics on an
// out-of-range ID, which always indicates a programming error.
func (c *Catalog) Ingredient(id ID) Ingredient {
	return c.ingredients[id]
}

// Lookup resolves a canonical name or registered synonym to an ID.
func (c *Catalog) Lookup(name string) (ID, bool) {
	if id, ok := c.byName[name]; ok {
		return id, true
	}
	if id, ok := c.synonyms[name]; ok {
		return id, true
	}
	return Invalid, false
}

// Profile returns the flavor profile of the ingredient. Ingredients
// without profiles return an empty set (never nil).
func (c *Catalog) Profile(id ID) *bitset.Set { return c.profiles[id] }

// SharedCompounds returns |F(a) ∩ F(b)|, the pairwise statistic at the
// heart of the food-pairing score.
func (c *Catalog) SharedCompounds(a, b ID) int {
	return c.profiles[a].IntersectionCount(c.profiles[b])
}

// Molecule returns the molecule with the given universe index.
func (c *Catalog) Molecule(i int) Molecule { return c.molecules[i] }

// ByCategory returns the IDs in the given category, in catalog order.
// The returned slice is shared; callers must not mutate it.
func (c *Catalog) ByCategory(cat Category) []ID {
	if !cat.Valid() {
		return nil
	}
	return c.byCategory[cat]
}

// Names returns every canonical ingredient name, sorted, for use by the
// aliasing pipeline's matcher.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.ingredients))
	for i, ing := range c.ingredients {
		out[i] = ing.Name
	}
	sort.Strings(out)
	return out
}

// SynonymNames returns every registered synonym, sorted.
func (c *Catalog) SynonymNames() []string {
	out := make([]string, 0, len(c.synonyms))
	for s := range c.synonyms {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AllNames returns canonical names and synonyms merged and sorted; the
// alias matcher uses this as its recognition vocabulary.
func (c *Catalog) AllNames() []string {
	out := append(c.Names(), c.SynonymNames()...)
	sort.Strings(out)
	return out
}

func expf(x float64) float64 { return math.Exp(x) }
