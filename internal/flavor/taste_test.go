package flavor

import (
	"math"
	"testing"
)

func TestTasteProfileBasics(t *testing.T) {
	c := buildDefault(t)
	tomato, _ := c.Lookup("tomato")
	basil, _ := c.Lookup("basil")
	profile := c.TasteProfile([]ID{tomato, basil})
	if len(profile) == 0 {
		t.Fatal("empty taste profile")
	}
	var sum float64
	for i, d := range profile {
		if d.Weight <= 0 || d.Weight > 1 {
			t.Fatalf("weight %v out of range", d.Weight)
		}
		if i > 0 && d.Weight > profile[i-1].Weight {
			t.Fatal("profile not sorted by weight")
		}
		sum += d.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestTasteProfileEmptyInputs(t *testing.T) {
	c := buildDefault(t)
	if got := c.TasteProfile(nil); got != nil {
		t.Fatal("nil ingredients should give nil profile")
	}
	gelatin, _ := c.Lookup("gelatin") // no profile
	if got := c.TasteProfile([]ID{gelatin}); got != nil {
		t.Fatal("profile-free ingredient should give nil profile")
	}
	// Out-of-range IDs are skipped, not panicking.
	if got := c.TasteProfile([]ID{-5, ID(c.Len() + 10)}); got != nil {
		t.Fatal("invalid ids should give nil profile")
	}
}

func TestTasteProfilePoolsMoleculesOnce(t *testing.T) {
	c := buildDefault(t)
	milk, _ := c.Lookup("milk")
	// Using the same ingredient twice must not change the profile: set
	// semantics.
	once := c.TasteProfile([]ID{milk})
	twice := c.TasteProfile([]ID{milk, milk})
	if len(once) != len(twice) {
		t.Fatal("duplicate ingredient changed the profile")
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Fatal("duplicate ingredient changed weights")
		}
	}
}

func TestTasteDistance(t *testing.T) {
	c := buildDefault(t)
	tomato, _ := c.Lookup("tomato")
	basil, _ := c.Lookup("basil")
	milk, _ := c.Lookup("milk")
	pa := c.TasteProfile([]ID{tomato})
	pb := c.TasteProfile([]ID{basil})
	pm := c.TasteProfile([]ID{milk})
	if d := TasteDistance(pa, pa); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	dab := TasteDistance(pa, pb)
	dba := TasteDistance(pb, pa)
	if math.Abs(dab-dba) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", dab, dba)
	}
	if dab < 0 || dab > 2 {
		t.Fatalf("distance %v outside [0,2]", dab)
	}
	_ = pm
}

func TestTasteDistanceDisjoint(t *testing.T) {
	a := []DescriptorWeight{{Descriptor: "x", Weight: 1}}
	b := []DescriptorWeight{{Descriptor: "y", Weight: 1}}
	if d := TasteDistance(a, b); math.Abs(d-2) > 1e-12 {
		t.Fatalf("disjoint distance %v, want 2", d)
	}
	if d := TasteDistance(nil, nil); d != 0 {
		t.Fatalf("empty distance %v", d)
	}
}

func TestPerturbDropoutEffects(t *testing.T) {
	c := buildDefault(t)
	p, err := c.Perturb(0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != c.Len() {
		t.Fatal("perturbed catalog changed size")
	}
	shrunk, grown := 0, 0
	for i := 0; i < c.Len(); i++ {
		id := ID(i)
		ing := c.Ingredient(id)
		before := c.Profile(id).Count()
		after := p.Profile(id).Count()
		if !ing.HasProfile {
			if after != 0 {
				t.Fatalf("%s gained a profile", ing.Name)
			}
			continue
		}
		if after > before {
			grown++
		}
		if after < before {
			shrunk++
		}
		if before > 0 && after == 0 {
			t.Fatalf("%s profile emptied", ing.Name)
		}
		// Perturbed profile must be a subset of the original for basic
		// ingredients.
		if !ing.Compound && p.Profile(id).IntersectionCount(c.Profile(id)) != after {
			t.Fatalf("%s gained molecules not in the original", ing.Name)
		}
	}
	if grown > 0 {
		t.Fatalf("%d profiles grew under dropout", grown)
	}
	if shrunk == 0 {
		t.Fatal("dropout 0.3 shrank nothing")
	}
}

func TestPerturbZeroDropoutIdentity(t *testing.T) {
	c := buildDefault(t)
	p, err := c.Perturb(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Len(); i++ {
		if !p.Profile(ID(i)).Equal(c.Profile(ID(i))) {
			t.Fatalf("dropout 0 changed profile %d", i)
		}
	}
}

func TestPerturbValidationAndDeterminism(t *testing.T) {
	c := buildDefault(t)
	if _, err := c.Perturb(-0.1, 1); err == nil {
		t.Fatal("negative dropout accepted")
	}
	if _, err := c.Perturb(1, 1); err == nil {
		t.Fatal("dropout 1 accepted")
	}
	a, _ := c.Perturb(0.2, 7)
	b, _ := c.Perturb(0.2, 7)
	for i := 0; i < c.Len(); i++ {
		if !a.Profile(ID(i)).Equal(b.Profile(ID(i))) {
			t.Fatal("perturb not deterministic")
		}
	}
	d, _ := c.Perturb(0.2, 8)
	same := 0
	for i := 0; i < c.Len(); i++ {
		if a.Profile(ID(i)).Equal(d.Profile(ID(i))) {
			same++
		}
	}
	if same == c.Len() {
		t.Fatal("different seeds gave identical perturbations")
	}
}

func TestPerturbSharedLookupsWork(t *testing.T) {
	c := buildDefault(t)
	p, err := c.Perturb(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Lookup and category indexes are shared and still functional.
	id, ok := p.Lookup("tomato")
	if !ok {
		t.Fatal("lookup broken on perturbed catalog")
	}
	if p.Ingredient(id).Name != "tomato" {
		t.Fatal("ingredient metadata broken")
	}
	if len(p.ByCategory(Vegetable)) == 0 {
		t.Fatal("category index broken")
	}
}
