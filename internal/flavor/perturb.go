package flavor

import (
	"fmt"

	"culinary/internal/bitset"
	"culinary/internal/rng"
)

// Perturb returns a derived catalog in which every basic ingredient's
// flavor profile independently loses each molecule with probability
// dropout — the flavor-data perturbation of the robustness question in
// §V ("How robust are the patterns to changes in ... flavor
// profiles?"). Compound profiles are re-pooled from their perturbed
// constituents. Profiles are never emptied: each retains at least one
// molecule (the first member survives when dropout would remove all).
//
// The ingredient list, categories, synonyms and molecule universe are
// shared with the original catalog; only profiles differ.
func (c *Catalog) Perturb(dropout float64, seed uint64) (*Catalog, error) {
	if dropout < 0 || dropout >= 1 {
		return nil, fmt.Errorf("flavor: dropout %g outside [0,1)", dropout)
	}
	src := rng.New(seed)
	out := &Catalog{
		cfg:         c.cfg,
		ingredients: c.ingredients,
		byName:      c.byName,
		synonyms:    c.synonyms,
		molecules:   c.molecules,
		byCategory:  c.byCategory,
		profiles:    make([]*bitset.Set, len(c.profiles)),
	}
	for i := range c.ingredients {
		ing := &c.ingredients[i]
		if ing.Compound {
			continue
		}
		if !ing.HasProfile {
			out.profiles[i] = c.profiles[i]
			continue
		}
		isrc := src.Split(uint64(i))
		set := bitset.New(c.cfg.NumMolecules)
		first := -1
		c.profiles[i].ForEach(func(m int) bool {
			if first < 0 {
				first = m
			}
			if isrc.Float64() >= dropout {
				set.Add(m)
			}
			return true
		})
		if set.IsEmpty() && first >= 0 {
			set.Add(first)
		}
		out.profiles[i] = set
	}
	for i := range c.ingredients {
		ing := &c.ingredients[i]
		if !ing.Compound {
			continue
		}
		set := bitset.New(c.cfg.NumMolecules)
		for _, pid := range ing.Constituents {
			set.UnionInPlace(out.profiles[pid])
		}
		out.profiles[i] = set
	}
	return out, nil
}
