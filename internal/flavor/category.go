// Package flavor implements the FlavorDB substrate: the ingredient
// catalog (basic and compound ingredients in the paper's 21 categories,
// with synonyms and spelling variants), the flavor-molecule universe, and
// a deterministic synthetic generator that assigns each ingredient a
// flavor profile (a set of molecules).
//
// The real FlavorDB (Garg et al., NAR 2018) aggregates empirically
// reported flavor molecules per natural ingredient. That resource is not
// redistributable here, so profiles are synthesized from a latent
// flavor-space model calibrated to the structural properties that the
// food-pairing analysis depends on: heavy-tailed profile sizes, strong
// within-category molecule sharing, weaker cross-category sharing, and a
// shared backbone of ubiquitous molecules. See DESIGN.md §2.
package flavor

import "fmt"

// Category classifies an ingredient into one of the paper's 21 classes
// (§III.B): Vegetable, Dairy, Legume, Maize, Cereal, Meat, Nuts and
// Seeds, Plant, Fish, Seafood, Spice, Bakery, Beverage Alcoholic,
// Beverage, Essential Oil, Flower, Fruit, Fungus, Herb, Additive, Dish.
type Category int

// The paper's 21 ingredient categories.
const (
	Vegetable Category = iota
	Dairy
	Legume
	Maize
	Cereal
	Meat
	NutsAndSeeds
	Plant
	Fish
	Seafood
	Spice
	Bakery
	BeverageAlcoholic
	Beverage
	EssentialOil
	Flower
	Fruit
	Fungus
	Herb
	Additive
	Dish
	numCategories // sentinel
)

// NumCategories is the number of ingredient categories (21).
const NumCategories = int(numCategories)

var categoryNames = [...]string{
	Vegetable:         "Vegetable",
	Dairy:             "Dairy",
	Legume:            "Legume",
	Maize:             "Maize",
	Cereal:            "Cereal",
	Meat:              "Meat",
	NutsAndSeeds:      "Nuts and Seeds",
	Plant:             "Plant",
	Fish:              "Fish",
	Seafood:           "Seafood",
	Spice:             "Spice",
	Bakery:            "Bakery",
	BeverageAlcoholic: "Beverage Alcoholic",
	Beverage:          "Beverage",
	EssentialOil:      "Essential Oil",
	Flower:            "Flower",
	Fruit:             "Fruit",
	Fungus:            "Fungus",
	Herb:              "Herb",
	Additive:          "Additive",
	Dish:              "Dish",
}

// String returns the category's display name as used in the paper.
func (c Category) String() string {
	if c < 0 || c >= numCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Valid reports whether c is one of the 21 defined categories.
func (c Category) Valid() bool { return c >= 0 && c < numCategories }

// AllCategories returns the 21 categories in declaration order.
func AllCategories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// ParseCategory maps a display name back to its Category.
func ParseCategory(name string) (Category, error) {
	for i, n := range categoryNames {
		if n == name {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("flavor: unknown category %q", name)
}
