package flavor

import (
	"fmt"

	"culinary/internal/rng"
)

// Molecule is one flavor compound in the synthetic molecule universe.
// Real FlavorDB molecules carry PubChem identifiers and sensory
// descriptors; the synthetic universe mirrors that shape.
type Molecule struct {
	// ID is the molecule's index in the universe [0, len(universe)).
	ID int
	// Name is a synthesized chemical-style name (e.g. "ethyl hexanoate").
	Name string
	// Theme is the latent flavor theme the molecule belongs to; profile
	// generation draws category-correlated molecules by theme.
	Theme int
	// Descriptors are sensory labels such as "fruity" or "roasted".
	Descriptors []string
}

// Chemical-style name fragments used to synthesize molecule names.
var (
	moleculePrefixes = []string{
		"methyl", "ethyl", "propyl", "butyl", "pentyl", "hexyl",
		"heptyl", "octyl", "nonyl", "decyl", "benzyl", "cinnamyl",
		"geranyl", "linalyl", "citronellyl", "phenethyl", "allyl",
		"isoamyl", "isobutyl", "furfuryl", "anisyl", "bornyl",
	}
	moleculeStems = []string{
		"acetate", "propionate", "butyrate", "valerate", "hexanoate",
		"octanoate", "benzoate", "cinnamate", "salicylate", "lactate",
		"pyrazine", "thiazole", "oxazole", "furanone", "lactone",
		"aldehyde", "ketone", "phenol", "thiol", "sulfide",
		"terpineol", "ionone", "vanillin", "eugenol", "limonene",
		"pinene", "myrcene", "linalool", "geraniol", "citral",
	}
	moleculeModifiers = []string{
		"", "2-", "3-", "4-", "alpha-", "beta-", "gamma-", "delta-",
		"cis-", "trans-", "iso-", "neo-",
	}
)

// descriptor vocabulary grouped by latent theme family. Theme t uses the
// family t % len(descriptorFamilies), so nearby themes have related but
// distinct vocabularies.
var descriptorFamilies = [][]string{
	{"fruity", "apple", "berry", "tropical", "citrus"},
	{"sweet", "caramellic", "honey", "vanilla", "sugary"},
	{"green", "grassy", "herbal", "leafy", "vegetal"},
	{"roasted", "nutty", "toasted", "coffee", "cocoa"},
	{"spicy", "pungent", "warm", "peppery", "clove"},
	{"sulfurous", "alliaceous", "onion", "garlic", "meaty"},
	{"dairy", "buttery", "creamy", "cheesy", "milky"},
	{"floral", "rose", "jasmine", "lavender", "violet"},
	{"earthy", "mushroom", "musty", "woody", "mossy"},
	{"fatty", "oily", "waxy", "tallow", "lard"},
	{"marine", "fishy", "briny", "seaweed", "oceanic"},
	{"sour", "acidic", "vinegar", "fermented", "tangy"},
	{"smoky", "burnt", "phenolic", "tar", "charred"},
	{"minty", "cooling", "camphor", "eucalyptus", "menthol"},
	{"alcoholic", "winey", "fusel", "brandy", "solvent"},
	{"bitter", "medicinal", "astringent", "metallic", "harsh"},
}

// synthesizeMoleculeName builds a deterministic chemical-style name for
// molecule id. Distinct ids always map to distinct names because the id
// is embedded when the fragment space would otherwise collide.
func synthesizeMoleculeName(id int) string {
	p := moleculePrefixes[id%len(moleculePrefixes)]
	s := moleculeStems[(id/len(moleculePrefixes))%len(moleculeStems)]
	m := moleculeModifiers[(id/(len(moleculePrefixes)*len(moleculeStems)))%len(moleculeModifiers)]
	base := fmt.Sprintf("%s%s %s", m, p, s)
	cycle := len(moleculePrefixes) * len(moleculeStems) * len(moleculeModifiers)
	if id >= cycle {
		return fmt.Sprintf("%s (%d)", base, id)
	}
	return base
}

// buildMoleculeUniverse creates n molecules spread over numThemes latent
// themes. Theme sizes are equal up to rounding; descriptor labels come
// from the theme's descriptor family.
func buildMoleculeUniverse(n, numThemes int, src *rng.Source) []Molecule {
	mols := make([]Molecule, n)
	for i := 0; i < n; i++ {
		theme := i % numThemes
		fam := descriptorFamilies[theme%len(descriptorFamilies)]
		nd := 1 + src.Intn(3)
		if nd > len(fam) {
			nd = len(fam)
		}
		descIdx := src.SampleWithoutReplacement(len(fam), nd)
		descs := make([]string, nd)
		for j, d := range descIdx {
			descs[j] = fam[d]
		}
		mols[i] = Molecule{
			ID:          i,
			Name:        synthesizeMoleculeName(i),
			Theme:       theme,
			Descriptors: descs,
		}
	}
	return mols
}
