package flavor

import "sort"

// DescriptorWeight is one sensory descriptor with its weight in a taste
// profile.
type DescriptorWeight struct {
	Descriptor string
	// Weight is the fraction of descriptor incidences (molecule ×
	// descriptor, over the pooled profile) carried by this descriptor.
	Weight float64
}

// TasteProfile enumerates the taste of a recipe — an answer to the
// paper's §V question "Could it be possible to enumerate the taste of a
// recipe?". It pools the flavor molecules of the given ingredients and
// aggregates their sensory descriptors into a normalized weight vector,
// sorted by weight (descending, ties lexical). Ingredients without
// profiles contribute nothing. Returns nil when no molecules are
// present.
func (c *Catalog) TasteProfile(ids []ID) []DescriptorWeight {
	counts := make(map[string]int)
	total := 0
	// Pool molecules across ingredients (set semantics: a molecule
	// contributed by several ingredients counts once, as in compound
	// ingredient profiles §III.C).
	seen := make(map[int]struct{})
	for _, id := range ids {
		if id < 0 || int(id) >= c.Len() {
			continue
		}
		c.profiles[id].ForEach(func(m int) bool {
			if _, dup := seen[m]; !dup {
				seen[m] = struct{}{}
				for _, d := range c.molecules[m].Descriptors {
					counts[d]++
					total++
				}
			}
			return true
		})
	}
	if total == 0 {
		return nil
	}
	out := make([]DescriptorWeight, 0, len(counts))
	for d, n := range counts {
		out = append(out, DescriptorWeight{Descriptor: d, Weight: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Descriptor < out[j].Descriptor
	})
	return out
}

// TasteDistance compares two taste profiles as the L1 distance between
// their descriptor weight vectors (0 = identical, 2 = disjoint).
func TasteDistance(a, b []DescriptorWeight) float64 {
	wa := make(map[string]float64, len(a))
	for _, d := range a {
		wa[d.Descriptor] = d.Weight
	}
	var dist float64
	seen := make(map[string]bool, len(b))
	for _, d := range b {
		seen[d.Descriptor] = true
		dist += abs(wa[d.Descriptor] - d.Weight)
	}
	for _, d := range a {
		if !seen[d.Descriptor] {
			dist += d.Weight
		}
	}
	return dist
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
