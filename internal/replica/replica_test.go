package replica

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

func testCatalog(t *testing.T) *flavor.Catalog {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatalf("building catalog: %v", err)
	}
	return catalog
}

// primary bundles a feed-serving primary: a storage-backed corpus plus
// the replication feed on an httptest listener.
type primary struct {
	t       *testing.T
	dir     string
	db      *storage.Store
	corpus  *recipedb.Store
	catalog *flavor.Catalog
	srv     *httptest.Server

	nextIng int
	nextReg int
}

var testRegions = []recipedb.Region{
	recipedb.Italy, recipedb.Japan, recipedb.IndianSubcontinent, recipedb.Mexico,
}

// newPrimary builds a primary with baseRecipes recipes snapshotted into
// storage before write-through begins, mimicking cmd/server startup.
// Small segments force frequent rotation so sealed-segment shipping is
// exercised by modest workloads.
func newPrimary(t *testing.T, inj *storage.ErrInjector, baseRecipes int) *primary {
	t.Helper()
	p := &primary{t: t, catalog: testCatalog(t)}
	p.corpus = recipedb.NewStore(p.catalog)
	for i := 0; i < baseRecipes; i++ {
		p.addRecipe(fmt.Sprintf("base recipe %03d", i))
	}
	p.dir = t.TempDir()
	db, err := storage.Open(p.dir, storage.Options{
		MaxSegmentBytes: 2048,
		FaultInjection:  inj,
	})
	if err != nil {
		t.Fatalf("opening primary store: %v", err)
	}
	if err := storage.SaveCorpus(db, p.corpus); err != nil {
		t.Fatalf("saving corpus: %v", err)
	}
	p.db = db
	p.corpus.SetBackend(db)
	p.srv = httptest.NewServer(NewFeed(db, p.corpus).Handler())
	t.Cleanup(func() {
		p.srv.Close()
		db.Close()
	})
	return p
}

func (p *primary) ingredients(n int) []flavor.ID {
	p.t.Helper()
	names := p.catalog.Names()
	ids := make([]flavor.ID, n)
	for i := range ids {
		name := names[(p.nextIng+i*11)%len(names)]
		id, ok := p.catalog.Lookup(name)
		if !ok {
			p.t.Fatalf("lookup %q failed", name)
		}
		ids[i] = id
	}
	p.nextIng += 3
	return ids
}

func (p *primary) addRecipe(name string) int {
	p.t.Helper()
	region := testRegions[p.nextReg%len(testRegions)]
	p.nextReg++
	id, err := p.corpus.Add(name, region, recipedb.AllRecipes, p.ingredients(3))
	if err != nil {
		p.t.Fatalf("Add(%q): %v", name, err)
	}
	return id
}

func (p *primary) upsert(id int, name string) {
	p.t.Helper()
	r := p.corpus.Recipe(id)
	if _, _, _, err := p.corpus.Upsert(id, name, r.Region, r.Source, r.Ingredients); err != nil {
		p.t.Fatalf("Upsert(%d): %v", id, err)
	}
}

func newFollower(t *testing.T, p *primary, dir string, chunk int64) *Follower {
	t.Helper()
	f, err := OpenFollower(FollowerConfig{
		Primary:    p.srv.URL,
		Dir:        dir,
		Catalog:    p.catalog,
		ChunkBytes: chunk,
	})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	return f
}

// syncFollower polls until the follower's corpus reaches the primary's
// current version, asserting the version token never regresses on the
// way (the monotonic read-your-writes contract).
func syncFollower(t *testing.T, f *Follower, p *primary) {
	t.Helper()
	want := p.corpus.Version()
	prev := f.Corpus().Version()
	for i := 0; i < 100; i++ {
		if err := f.Poll(); err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		if v := f.Corpus().Version(); v < prev {
			t.Fatalf("follower version regressed: %d after %d", v, prev)
		} else {
			prev = v
		}
		if prev >= want {
			if prev > want {
				t.Fatalf("follower overshot: %d, primary %d", prev, want)
			}
			return
		}
	}
	t.Fatalf("follower stuck at version %d, want %d", prev, want)
}

func assertConverged(t *testing.T, f *Follower, p *primary) {
	t.Helper()
	got, want := f.Corpus().CanonicalDump(), p.corpus.CanonicalDump()
	if got != want {
		t.Fatalf("follower state diverged from primary\nfollower:\n%s\nprimary:\n%s", got, want)
	}
}

func TestFeedStateAndSegments(t *testing.T) {
	p := newPrimary(t, nil, 5)
	c := newClient(p.srv.URL, nil)

	st, err := c.state()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if st.Version != p.corpus.Version() {
		t.Errorf("state version = %d, corpus %d", st.Version, p.corpus.Version())
	}
	if len(st.Segments) == 0 {
		t.Fatal("state lists no segments")
	}
	if _, err := parseManifest(st.Manifest); err != nil {
		t.Errorf("state manifest unparseable: %v", err)
	}

	chain := st.chainSegments()
	if len(chain) == 0 {
		t.Fatal("no chain segments listed")
	}
	data, err := c.segment(chain[0].ID, 0, 10)
	if err != nil {
		t.Fatalf("segment fetch: %v", err)
	}
	if len(data) == 0 || len(data) > 10 {
		t.Errorf("segment chunk = %d bytes, want 1..10", len(data))
	}

	// A segment the store never allocated is a typed miss, the
	// follower's cue to re-sync rather than retry.
	if _, err := c.segment(999999, 0, 10); !errors.Is(err, storage.ErrSegmentGone) {
		t.Errorf("unknown segment error = %v, want ErrSegmentGone", err)
	}

	// Parameter and method errors stay enveloped.
	resp, err := http.Get(p.srv.URL + SegmentPath + "?id=abc")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(p.srv.URL+StatePath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST state: status %d, want 405", resp.StatusCode)
	}
}

// TestFollowerBootstrapAndTail covers the happy path end to end:
// bootstrap from the committed snapshot, then incremental tailing of
// adds, replacements and deletes through rotation, with a chunk size
// smaller than one record so the tail-buffering path (fetch chunks
// buffer in memory until a whole record decodes) is exercised hard.
func TestFollowerBootstrapAndTail(t *testing.T) {
	p := newPrimary(t, nil, 8)
	f := newFollower(t, p, t.TempDir(), 57)
	defer f.Close()

	if got := f.Corpus().Version(); got != p.corpus.Version() {
		t.Fatalf("bootstrap version = %d, primary %d", got, p.corpus.Version())
	}
	assertConverged(t, f, p)

	// Enough adds to rotate the active segment several times.
	var ids []int
	for i := 0; i < 25; i++ {
		ids = append(ids, p.addRecipe(fmt.Sprintf("tail recipe %03d", i)))
	}
	syncFollower(t, f, p)
	assertConverged(t, f, p)

	p.upsert(ids[0], "renamed after shipping")
	if _, err := p.corpus.Remove(ids[1]); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	syncFollower(t, f, p)
	assertConverged(t, f, p)

	st := f.Stats()
	if st.Lag != 0 || st.BytesFetched == 0 || st.PrimaryVersion != p.corpus.Version() {
		t.Errorf("stats after catch-up: %+v", st)
	}
}

// TestFollowerCompactionBetweenPolls mutates heavily and compacts the
// primary entirely between two polls: victims vanish, ranked outputs
// appear, and some segments may have lived and died without the
// follower ever listing them. Whatever path the follower takes
// (incremental adoption or reconcile), the contract is byte-identical
// convergence.
func TestFollowerCompactionBetweenPolls(t *testing.T) {
	p := newPrimary(t, nil, 24)
	f := newFollower(t, p, t.TempDir(), 0)
	defer f.Close()
	syncFollower(t, f, p)
	assertConverged(t, f, p)

	// Kill half the base corpus (dead bytes in sealed segments), bury
	// the tombstones under fresh adds, and compact — all unobserved.
	for i := 0; i < 12; i++ {
		if _, err := p.corpus.Remove(i); err != nil {
			t.Fatalf("Remove(%d): %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		p.addRecipe(fmt.Sprintf("post-compaction recipe %03d", i))
	}
	if err := p.db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	syncFollower(t, f, p)
	assertConverged(t, f, p)

	// And again with the follower caught up first, so the victims are
	// fully decoded locally: the cheap cleanup path must also converge.
	for i := 12; i < 18; i++ {
		if _, err := p.corpus.Remove(i); err != nil {
			t.Fatalf("Remove(%d): %v", i, err)
		}
	}
	syncFollower(t, f, p)
	for i := 0; i < 10; i++ {
		p.addRecipe(fmt.Sprintf("second wave %03d", i))
	}
	if err := p.db.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	syncFollower(t, f, p)
	assertConverged(t, f, p)
}

// sealedChainMax returns the highest sealed, healthy chain segment id.
func sealedChainMax(t *testing.T, p *primary) (uint64, int64) {
	t.Helper()
	_, segs, err := p.db.ReplicationState()
	if err != nil {
		t.Fatalf("ReplicationState: %v", err)
	}
	var id uint64
	var size int64
	for _, seg := range segs {
		if seg.Sealed && !seg.Quarantined && seg.Rank == seg.ID && seg.ID > id {
			id, size = seg.ID, seg.Size
		}
	}
	if id == 0 {
		t.Fatal("no sealed chain segment found")
	}
	return id, size
}

// TestScrubDuringShip is the regression test for satellite 2: a sealed
// segment is corrupted and quarantined after the follower bootstraps
// but before it tails the segment's records. While the segment sits
// quarantined (salvage wedged by an injected disk fault) the follower
// must back off with a typed gap error — not wedge, not serve the
// version it cannot reach — and a direct fetch answers the typed
// segment-gone miss. Once salvage lands and the snapshot re-homes the
// records, the follower reconciles and converges byte-identically.
func TestScrubDuringShip(t *testing.T) {
	inj := storage.NewErrInjector()
	p := newPrimary(t, inj, 6)
	f := newFollower(t, p, t.TempDir(), 0)
	defer f.Close()
	assertConverged(t, f, p)

	// New records the follower has not shipped yet; enough to seal at
	// least one fresh segment.
	var ids []int
	for i := 0; i < 30; i++ {
		ids = append(ids, p.addRecipe(fmt.Sprintf("unshipped recipe %03d", i)))
	}
	if err := p.db.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	seg, _ := sealedChainMax(t, p)

	// Corrupt the final record of the newest sealed segment, then wedge
	// salvage so the quarantine window stays open.
	path := filepath.Join(p.dir, storage.SegmentFileName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing corruption: %v", err)
	}
	inj.Arm(syscall.ENOSPC, storage.FaultCreate)
	if err := p.db.Scrub(); err == nil {
		t.Fatal("Scrub succeeded with salvage writes wedged")
	}

	_, segs, err := p.db.ReplicationState()
	if err != nil {
		t.Fatalf("ReplicationState: %v", err)
	}
	quarantined := false
	for _, s := range segs {
		if s.ID == seg && s.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("segment %d not listed quarantined", seg)
	}

	// The follower backs off with the typed gap error instead of
	// wedging or publishing a version it has not replayed.
	before := f.Corpus().Version()
	if err := f.Poll(); !errors.Is(err, errQuarantineGap) {
		t.Fatalf("poll during quarantine = %v, want errQuarantineGap", err)
	}
	if v := f.Corpus().Version(); v != before {
		t.Fatalf("version moved to %d during quarantine backoff", v)
	}
	// Fetch-by-id of the quarantined segment is a typed miss.
	if _, err := f.client.segment(seg, 0, 64); !errors.Is(err, storage.ErrSegmentGone) {
		t.Fatalf("quarantined fetch error = %v, want ErrSegmentGone", err)
	}

	// Salvage lands: the corrupt record's key is dropped from storage;
	// re-upserting every unshipped recipe restores the lost slot (and
	// rewrites the rest in place) so corpus and log agree again.
	inj.Clear()
	if err := p.db.Scrub(); err != nil {
		t.Fatalf("Scrub after clearing fault: %v", err)
	}
	for _, id := range ids {
		r := p.corpus.Recipe(id)
		if _, _, _, err := p.corpus.Upsert(id, r.Name, r.Region, r.Source, r.Ingredients); err != nil {
			t.Fatalf("repair upsert(%d): %v", id, err)
		}
	}

	syncFollower(t, f, p)
	assertConverged(t, f, p)
	if f.Stats().Reconciles == 0 {
		t.Error("salvaged segment adopted without a reconcile")
	}
}

// TestFollowerRestartMatrix is the satellite-4 catch-up matrix: after
// every applied delta the follower is killed and reopened, and the
// replayed state must be byte-identical to the primary's corpus at the
// corresponding version — resuming from the committed mirror, never
// re-bootstrapping.
func TestFollowerRestartMatrix(t *testing.T) {
	p := newPrimary(t, nil, 6)
	dir := t.TempDir()
	f := newFollower(t, p, dir, 64)
	syncFollower(t, f, p)

	var added []int
	for step := 0; step < 12; step++ {
		switch step % 3 {
		case 0:
			added = append(added, p.addRecipe(fmt.Sprintf("matrix add %02d", step)))
		case 1:
			p.upsert(added[len(added)-1], fmt.Sprintf("matrix rename %02d", step))
		case 2:
			if _, err := p.corpus.Remove(added[0]); err != nil {
				t.Fatalf("step %d Remove: %v", step, err)
			}
			added = added[1:]
		}
		syncFollower(t, f, p)
		assertConverged(t, f, p)

		if err := f.Close(); err != nil {
			t.Fatalf("step %d: close: %v", step, err)
		}
		f = newFollower(t, p, dir, 64)
		if fetched := f.Stats().BytesFetched; fetched != 0 {
			t.Fatalf("step %d: reopen re-bootstrapped (%d bytes fetched)", step, fetched)
		}
		if got := f.Corpus().Version(); got != p.corpus.Version() {
			t.Fatalf("step %d: reopened at version %d, primary %d", step, got, p.corpus.Version())
		}
		assertConverged(t, f, p)
	}
	f.Close()
}

// TestFeedServesLastGoodUnderSyncFault pins the feed's undershoot
// contract: when the primary's fsync fails, the published version
// falls back to the last successfully covered one — the follower keeps
// polling without error and never publishes a version whose bytes the
// durable watermark might not hold.
func TestFeedServesLastGoodUnderSyncFault(t *testing.T) {
	inj := storage.NewErrInjector()
	p := newPrimary(t, inj, 4)
	f := newFollower(t, p, t.TempDir(), 0)
	defer f.Close()
	v0 := f.Corpus().Version()

	p.addRecipe("written but not yet durable")
	inj.Arm(syscall.EIO, storage.FaultSync)
	if err := f.Poll(); err != nil {
		t.Fatalf("poll under sync fault: %v", err)
	}
	if got := f.Corpus().Version(); got != v0 {
		t.Fatalf("follower advanced to %d under sync fault, want %d", got, v0)
	}

	inj.Clear()
	p.db.TryRecoverWrites() // clear any write-path poisoning from the faulted sync
	syncFollower(t, f, p)
	assertConverged(t, f, p)
}
