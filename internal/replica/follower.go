package replica

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

// FollowerConfig configures a replica follower.
type FollowerConfig struct {
	// Primary is the primary's replication base URL (the dedicated
	// listener from -replication-listen), e.g. "http://10.0.0.1:7071".
	Primary string
	// Dir is the local mirror directory. The follower owns it
	// completely: on an unrecoverable inconsistency it wipes the
	// directory and bootstraps afresh.
	Dir string
	// Catalog must be built from the same flavor config (same seed) as
	// the primary's; LoadCorpus enforces this against the snapshot's
	// recorded config.
	Catalog *flavor.Catalog
	// Interval is the poll period for Start's background loop.
	// Defaults to 250ms.
	Interval time.Duration
	// ChunkBytes is the per-request segment fetch size. Defaults to
	// DefaultChunkBytes, capped at MaxChunkBytes.
	ChunkBytes int64
	// HTTPClient overrides the feed client (nil: http.DefaultClient).
	HTTPClient *http.Client
	// Logger receives poll errors and lifecycle notes; nil discards.
	Logger *log.Logger
}

// Follower tails a primary's replication feed into a local mirror
// directory and an in-memory corpus serving the full read API. See the
// package comment for the protocol; the crash-consistency rules live
// on mirror.
type Follower struct {
	cfg    FollowerConfig
	client *client
	corpus *recipedb.Store

	// mu serializes polls (and Close) — all mirror/tail state below is
	// touched only under it.
	mu     sync.Mutex
	mirror *mirror
	// tails holds, per chain segment, fetched bytes not yet forming a
	// whole record. Only whole decoded records are written to the
	// mirror, so mirror files always end on record boundaries.
	tails map[uint64][]byte
	// forceReconcile requests a reconcile on the next poll after an
	// apply anomaly (a record the corpus rejected) or a reconcile that
	// failed partway; it clears only when a reconcile succeeds.
	forceReconcile bool
	// maxSeen is the highest segment id any processed snapshot (or the
	// restored mirror) has listed. Segment ids come from one primary
	// sequence, so a snapshot whose id range skips past maxSeen with a
	// hole names segments created and retired entirely between polls —
	// records the incremental path can never decode.
	maxSeen uint64
	// chainSeen tracks chain segments listed by snapshots this
	// incarnation, including ones no byte has been fetched from yet;
	// one of them vanishing before it is fully decoded forces a
	// reconcile even though the mirror holds no trace of it.
	chainSeen map[uint64]bool

	primaryVersion atomic.Uint64
	polls          atomic.Uint64
	pollErrors     atomic.Uint64
	reconciles     atomic.Uint64
	bytesFetched   atomic.Uint64

	errMu   sync.Mutex
	lastErr string

	stopOnce sync.Once
	started  atomic.Bool
	stop     chan struct{}
	done     chan struct{}
}

// errQuarantineGap is the backoff signal: the primary quarantined a
// segment whose bytes the follower has not fully mirrored, so the gap
// cannot be fetched until the primary's salvage re-homes the records
// into a ranked output listed by a later snapshot.
var errQuarantineGap = errors.New("replica: quarantined segment not fully mirrored; waiting for salvage")

// OpenFollower opens (or bootstraps) a follower. An existing mirror
// directory resumes from its committed REPLICA_STATE: the mirror is
// repaired, opened read-only, replayed into a corpus stamped with the
// recorded version, and polling resumes from the recorded fetch
// positions. Any failure on that path — or an empty directory — falls
// back to wiping the mirror and bootstrapping a full copy from the
// primary's current snapshot.
func OpenFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.ChunkBytes > MaxChunkBytes {
		cfg.ChunkBytes = MaxChunkBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	f := &Follower{
		cfg:       cfg,
		client:    newClient(cfg.Primary, cfg.HTTPClient),
		tails:     make(map[uint64][]byte),
		chainSeen: make(map[uint64]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if err := f.openExisting(); err != nil {
		f.logf("follower: local mirror unusable (%v); bootstrapping from primary", err)
		if err := f.bootstrap(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// openExisting resumes from a committed mirror. Tails start empty and
// fetch cursors equal the mirrored sizes: LoadCorpus replayed every
// mirrored byte, so the corpus already covers them.
func (f *Follower) openExisting() error {
	m, err := openMirror(f.cfg.Dir)
	if err != nil {
		return err
	}
	if len(m.written) == 0 {
		m.close()
		return errors.New("replica: empty mirror")
	}
	db, err := storage.Open(f.cfg.Dir, storage.Options{ReadOnly: true})
	if err != nil {
		m.close()
		return err
	}
	corpus, err := storage.LoadCorpus(db, f.cfg.Catalog)
	db.Close()
	if err != nil {
		m.close()
		return err
	}
	corpus.SyncVersion(m.version)
	corpus.SyncSlots(m.slots)
	f.mirror = m
	f.corpus = corpus
	// Track only what the mirror proves: ids it holds bytes or staging
	// for. A segment listed-but-unfetched before the restart left no
	// trace; if the primary retired it while we were down, it now sits
	// in the id gap above maxSeen and the first poll reconciles.
	f.maxSeen = 0
	f.chainSeen = make(map[uint64]bool)
	for id := range m.written {
		if id > f.maxSeen {
			f.maxSeen = id
		}
	}
	for id := range m.staged {
		if id > f.maxSeen {
			f.maxSeen = id
		}
	}
	if man, err := parseManifest(m.manifest); err == nil {
		for id := range m.written {
			if man.rankOf(id) == id {
				f.chainSeen[id] = true
			}
		}
	}
	f.logf("follower: resumed mirror %s at version %d (%d segments)", f.cfg.Dir, m.version, len(m.written))
	return nil
}

// bootstrap wipes the mirror directory and copies the primary's
// current snapshot in full, then replays it into a fresh corpus.
func (f *Follower) bootstrap() error {
	if f.mirror != nil {
		f.mirror.close()
		f.mirror = nil
	}
	if err := os.RemoveAll(f.cfg.Dir); err != nil {
		return fmt.Errorf("replica: wiping mirror dir: %w", err)
	}
	m, err := openMirror(f.cfg.Dir)
	if err != nil {
		return err
	}
	f.mirror = m
	f.tails = make(map[uint64][]byte)
	f.maxSeen = 0
	f.chainSeen = make(map[uint64]bool)
	st, err := f.client.state()
	if err != nil {
		return err
	}
	f.primaryVersion.Store(st.Version)
	f.noteSnapshot(st)
	if err := f.mirrorSync(st); err != nil {
		return err
	}
	m.slots = st.Slots
	if err := m.commitState(st.Version); err != nil {
		return err
	}
	db, err := storage.Open(f.cfg.Dir, storage.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	corpus, err := storage.LoadCorpus(db, f.cfg.Catalog)
	db.Close()
	if err != nil {
		return err
	}
	corpus.SyncVersion(st.Version)
	corpus.SyncSlots(st.Slots)
	f.corpus = corpus
	f.logf("follower: bootstrapped %s at version %d (%d recipes)", f.cfg.Dir, st.Version, corpus.Len())
	return nil
}

// Corpus returns the follower's live read corpus. Its Version() is the
// read-your-writes token the server's gating compares against.
func (f *Follower) Corpus() *recipedb.Store { return f.corpus }

// Start runs the poll loop until Close.
func (f *Follower) Start() {
	f.started.Store(true)
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				if err := f.Poll(); err != nil {
					f.pollErrors.Add(1)
					f.setErr(err)
					if !errors.Is(err, errQuarantineGap) {
						f.logf("follower: poll: %v", err)
					}
				}
			}
		}
	}()
}

// Close stops the poll loop (when Start ran) and releases the mirror.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	if f.started.Load() {
		<-f.done
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mirror != nil {
		return f.mirror.close()
	}
	return nil
}

// Poll performs one replication round: fetch the primary's state,
// mirror new bytes, apply new chain records, true the version up, and
// commit progress. Exported so tests and the serve loop can drive
// deterministic catch-up; safe to call concurrently with the Start
// loop (rounds serialize).
func (f *Follower) Poll() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.polls.Add(1)

	st, err := f.client.state()
	if err != nil {
		return err
	}
	f.primaryVersion.Store(st.Version)

	if f.forceReconcile {
		return f.runReconcile(st)
	}

	listed := make(map[uint64]storage.SegmentInfo, len(st.Segments))
	for _, seg := range st.Segments {
		listed[seg.ID] = seg
	}

	// A quarantined segment cannot be fetched; if we do not already
	// hold its full prefix, the missing records are unreachable until
	// the primary's salvage lands in a later snapshot. Back off.
	for _, seg := range st.Segments {
		if seg.Quarantined && f.mirror.written[seg.ID] != seg.Size {
			return fmt.Errorf("%w (segment %d: have %d of %d bytes)",
				errQuarantineGap, seg.ID, f.mirror.written[seg.ID], seg.Size)
		}
	}

	localMan, err := parseManifest(f.mirror.manifest)
	if err != nil {
		return f.resync()
	}

	// Invisible segments: ids are allocated from one primary sequence,
	// so an id between maxSeen and the snapshot's maximum that the
	// snapshot does not list names a segment created and retired
	// (compacted or salvaged) entirely between polls. Its records
	// survive only inside ranked outputs the incremental path never
	// decodes, so adopting this snapshot incrementally would publish a
	// version the corpus does not actually cover.
	newMax := f.maxSeen
	for _, seg := range st.Segments {
		if seg.ID > newMax {
			newMax = seg.ID
		}
	}
	for id := f.maxSeen + 1; id <= newMax; id++ {
		if _, ok := listed[id]; !ok {
			return f.runReconcile(st)
		}
	}

	// A tracked segment that vanished from the snapshot before we fully
	// decoded it had its remaining records re-homed the same way. Fully
	// decoded chain segments (done) and promoted ranked outputs (whose
	// content was already applied when their victims were, by
	// induction) need mere cleanup. The sweep covers segments we hold
	// bytes for, tails holding less than one record, and chain segments
	// listed earlier that we never fetched from at all.
	vanished := func(id uint64) bool {
		if _, ok := listed[id]; ok {
			return false
		}
		if f.mirror.isDone(id) {
			return false
		}
		return localMan.rankOf(id) == id || f.mirror.written[id] == 0
	}
	for id := range f.mirror.written {
		if vanished(id) {
			return f.runReconcile(st)
		}
	}
	for id := range f.tails {
		if vanished(id) {
			return f.runReconcile(st)
		}
	}
	for id := range f.chainSeen {
		if vanished(id) {
			return f.runReconcile(st)
		}
	}
	f.noteSnapshot(st)

	if err := f.mirrorRanked(st); err != nil {
		return err
	}
	if err := f.mirror.mirrorManifest(st.Manifest); err != nil {
		return err
	}
	if err := f.mirror.promoteStaged(); err != nil {
		return err
	}

	applied, complete, err := f.tailChain(st)
	if err != nil {
		return err
	}
	if complete && st.Version > f.corpus.Version() {
		// Every listed position is mirrored and applied; the state's
		// directional guarantee says that covers version st.Version.
		f.corpus.SyncVersion(st.Version)
		applied = true
	}
	if complete {
		// Adopt the slot bound too: a trailing tombstone whose creating
		// record was compacted away leaves no replayable trace.
		f.corpus.SyncSlots(st.Slots)
	}
	if applied || f.corpus.Version() != f.mirror.version || f.corpus.Slots() != f.mirror.slots {
		f.mirror.slots = f.corpus.Slots()
		if err := f.mirror.commitState(f.corpus.Version()); err != nil {
			return err
		}
	}
	return f.cleanup(listed)
}

// noteSnapshot records the snapshot's id coverage for the next poll's
// invisible-segment and vanished-segment sweeps. Called only once a
// snapshot has passed those sweeps (or is being reconciled, where the
// full mirror replay covers every listed record regardless).
func (f *Follower) noteSnapshot(st *State) {
	for _, seg := range st.Segments {
		if seg.ID > f.maxSeen {
			f.maxSeen = seg.ID
		}
	}
	for _, seg := range st.chainSegments() {
		f.chainSeen[seg.ID] = true
	}
}

// runReconcile wraps reconcile with retry bookkeeping: the
// forceReconcile latch stays set until a reconcile completes, so a
// round that fails partway (network, disk) is retried from the top of
// the next poll instead of silently falling back to the incremental
// path with half-reconciled state.
func (f *Follower) runReconcile(st *State) error {
	f.forceReconcile = true
	if err := f.reconcile(st); err != nil {
		return err
	}
	f.forceReconcile = false
	f.noteSnapshot(st)
	return nil
}

// mirrorRanked stages any listed ranked segment (compaction/salvage
// output) not yet held, fsyncs the staging files and durably records
// their sizes. Ranked bytes must not appear under final names before
// the manifest that ranks them is mirrored — see mirror.
func (f *Follower) mirrorRanked(st *State) error {
	for _, seg := range st.Segments {
		if seg.Rank == seg.ID || seg.Quarantined {
			continue
		}
		have, ok := f.mirror.written[seg.ID]
		if ok {
			if have != seg.Size {
				// A promoted ranked file is complete by construction; a
				// size mismatch means local state we cannot trust.
				return f.resync()
			}
			continue
		}
		for off := f.mirror.stagedSize(seg.ID); off < seg.Size; {
			chunk, err := f.fetchChunk(seg.ID, off, seg.Size-off)
			if err != nil {
				return err
			}
			if len(chunk) == 0 {
				return fmt.Errorf("replica: ranked segment %d short at %d of %d", seg.ID, off, seg.Size)
			}
			if err := f.mirror.stageWriteAt(seg.ID, off, chunk); err != nil {
				return err
			}
			off += int64(len(chunk))
		}
	}
	// Seal whenever anything is staged — including leftovers from an
	// errored earlier round that were fully fetched but never sealed.
	// Promoting an unsealed staging file would let a crash delete it
	// after the manifest that ranks it is already mirrored.
	return f.mirror.sealStaged()
}

// tailChain fetches and applies each chain segment's new records.
// Fetched bytes buffer in the segment's tail; only whole decoded
// records are written to the mirror and applied to the corpus, so the
// mirror stays record-aligned. Returns whether anything was applied
// and whether every listed chain position was reached.
func (f *Follower) tailChain(st *State) (applied, complete bool, err error) {
	complete = true
	for _, seg := range st.chainSegments() {
		if seg.Quarantined {
			continue // full prefix already held (checked in Poll)
		}
		id := seg.ID
		cursor := f.mirror.written[id] + int64(len(f.tails[id]))
		for cursor < seg.Size {
			chunk, err := f.fetchChunk(id, cursor, seg.Size-cursor)
			if err != nil {
				return applied, false, err
			}
			if len(chunk) == 0 {
				complete = false // watermark answer raced; next poll resumes
				break
			}
			cursor += int64(len(chunk))
			tail := append(f.tails[id], chunk...)
			recs, consumed, derr := storage.DecodeRecords(tail)
			if derr != nil {
				// Bytes that fail CRC on a healthy primary should not
				// exist; drop the in-memory tail and refetch next poll.
				// Persistent corruption stalls here until the primary's
				// scrubber quarantines the segment (handled above).
				delete(f.tails, id)
				return applied, false, fmt.Errorf("replica: segment %d at %d: %w", id, f.mirror.written[id], derr)
			}
			if consumed > 0 {
				if err := f.mirror.writeAt(id, f.mirror.written[id], tail[:consumed]); err != nil {
					return applied, false, err
				}
				if err := f.applyRecords(recs); err != nil {
					return applied, false, err
				}
				applied = true
			}
			f.tails[id] = append([]byte(nil), tail[consumed:]...)
			if len(f.tails[id]) == 0 {
				delete(f.tails, id)
			}
		}
		if f.mirror.written[id] != seg.Size || len(f.tails[id]) != 0 {
			complete = false
		} else if seg.Sealed {
			f.mirror.markDone(id)
		}
	}
	return applied, complete, nil
}

// applyRecords folds decoded chain records into the live corpus.
// Tombstones for slots the corpus never saw are skipped (the create
// they cancel was itself collapsed away); any other rejection means
// divergence and schedules a reconcile.
func (f *Follower) applyRecords(recs []storage.ReplicaRecord) error {
	items := make([]recipedb.BatchItem, 0, len(recs))
	for _, rec := range recs {
		id, ok := parseRecipeKey(rec.Key)
		if !ok {
			continue // snapshot metadata under meta/, mirrored not applied
		}
		if rec.Tombstone {
			items = append(items, recipedb.BatchItem{Remove: true, ID: id})
			continue
		}
		name, region, source, ings, err := recipedb.DecodeRecipe(rec.Value)
		if err != nil {
			f.forceReconcile = true
			return fmt.Errorf("replica: undecodable recipe record %q: %w", rec.Key, err)
		}
		items = append(items, recipedb.BatchItem{ID: id, Name: name, Region: region, Source: source, Ingredients: ings})
	}
	if len(items) == 0 {
		return nil
	}
	for i, res := range f.corpus.ApplyBatch(items) {
		if res.Err != nil && !(items[i].Remove && errors.Is(res.Err, recipedb.ErrNoRecipe)) {
			f.forceReconcile = true
			return fmt.Errorf("replica: corpus rejected replicated record (slot %d): %w", items[i].ID, res.Err)
		}
	}
	return nil
}

// fetchChunk reads up to f.cfg.ChunkBytes (capped at want) of segment
// id at off and counts the bytes.
func (f *Follower) fetchChunk(id uint64, off, want int64) ([]byte, error) {
	limit := f.cfg.ChunkBytes
	if want < limit {
		limit = want
	}
	chunk, err := f.client.segment(id, off, limit)
	if err != nil {
		return nil, err
	}
	f.bytesFetched.Add(uint64(len(chunk)))
	return chunk, nil
}

// mirrorSync copies everything the snapshot lists into the mirror
// without applying records: ranked segments staged-then-promoted
// around the manifest mirror, chain segments fetched raw to their
// listed sizes (a listed size is always a record boundary, so the
// mirror stays record-aligned). Used by bootstrap and reconcile, where
// the corpus is rebuilt by storage replay rather than incremental
// apply. Progress commits after each completed segment so a crashed
// bootstrap resumes instead of starting over.
func (f *Follower) mirrorSync(st *State) error {
	if err := f.mirrorRanked(st); err != nil {
		return err
	}
	if err := f.mirror.mirrorManifest(st.Manifest); err != nil {
		return err
	}
	if err := f.mirror.promoteStaged(); err != nil {
		return err
	}
	for _, seg := range st.chainSegments() {
		if seg.Quarantined {
			if f.mirror.written[seg.ID] != seg.Size {
				return fmt.Errorf("%w (segment %d)", errQuarantineGap, seg.ID)
			}
			continue
		}
		start := f.mirror.written[seg.ID]
		for off := start; off < seg.Size; {
			chunk, err := f.fetchChunk(seg.ID, off, seg.Size-off)
			if err != nil {
				return err
			}
			if len(chunk) == 0 {
				break
			}
			if err := f.mirror.writeAt(seg.ID, off, chunk); err != nil {
				return err
			}
			off += int64(len(chunk))
		}
		if f.mirror.written[seg.ID] == seg.Size && seg.Sealed {
			f.mirror.markDone(seg.ID)
		}
		if f.mirror.written[seg.ID] != start {
			if err := f.mirror.commitState(f.mirror.version); err != nil {
				return err
			}
		}
	}
	return nil
}

// reconcile handles records that moved beyond the follower's reach —
// re-homed into ranked outputs it never decodes. It completes a full
// mirror sync of the fresh snapshot, replays the mirror into a
// temporary corpus via the storage engine (which performs the ranked
// merge), then applies the per-slot difference to the live corpus so
// readers never lose the store: the live corpus converges without
// being swapped out.
func (f *Follower) reconcile(st *State) error {
	f.reconciles.Add(1)
	f.logf("follower: reconciling against primary snapshot at version %d", st.Version)
	f.tails = make(map[uint64][]byte)
	if err := f.mirrorSync(st); err != nil {
		return err
	}
	if err := f.mirror.commitState(f.mirror.version); err != nil {
		return err
	}
	listed := make(map[uint64]storage.SegmentInfo, len(st.Segments))
	for _, seg := range st.Segments {
		listed[seg.ID] = seg
	}
	if err := f.cleanup(listed); err != nil {
		return err
	}
	// The mirror now holds exactly the snapshot; closing handles lets
	// the temporary storage replay own the files for a moment.
	if err := f.mirror.close(); err != nil {
		return err
	}
	db, err := storage.Open(f.cfg.Dir, storage.Options{ReadOnly: true})
	if err != nil {
		return f.resync()
	}
	target, err := storage.LoadCorpus(db, f.cfg.Catalog)
	db.Close()
	if err != nil {
		return f.resync()
	}
	items := diffItems(f.corpus, target)
	if len(items) > 0 {
		for i, res := range f.corpus.ApplyBatch(items) {
			if res.Err != nil && !(items[i].Remove && errors.Is(res.Err, recipedb.ErrNoRecipe)) {
				return f.resync()
			}
		}
	}
	f.corpus.SyncVersion(st.Version)
	f.corpus.SyncSlots(st.Slots)
	f.mirror.slots = f.corpus.Slots()
	return f.mirror.commitState(f.corpus.Version())
}

// resync is the last-resort recovery: wipe the mirror and bootstrap
// from scratch. The live corpus keeps serving throughout; bootstrap
// builds a fresh target and reconciling it in happens via diff.
func (f *Follower) resync() error {
	f.logf("follower: local state inconsistent; full resync")
	old := f.corpus
	if err := f.bootstrap(); err != nil {
		f.corpus = old
		return err
	}
	if old != nil {
		// bootstrap replaced f.corpus with a fresh store, but the server
		// holds the old pointer; fold the fresh state into it instead.
		target := f.corpus
		f.corpus = old
		items := diffItems(old, target)
		if len(items) > 0 {
			for i, res := range old.ApplyBatch(items) {
				if res.Err != nil && !(items[i].Remove && errors.Is(res.Err, recipedb.ErrNoRecipe)) {
					return fmt.Errorf("replica: resync apply failed (slot %d): %w", items[i].ID, res.Err)
				}
			}
		}
		old.SyncVersion(target.Version())
		old.SyncSlots(target.Slots())
		f.mirror.slots = old.Slots()
		if err := f.mirror.commitState(old.Version()); err != nil {
			return err
		}
	}
	return nil
}

// cleanup removes local segments (and orphaned staging files) the
// snapshot no longer lists. Runs last in a round: every record such a
// segment held is covered by a ranked output fetched earlier, so any
// crash mid-cleanup leaves only harmless stale victims that replay
// before — and are overridden by — their replacement outputs.
func (f *Follower) cleanup(listed map[uint64]storage.SegmentInfo) error {
	for id := range f.mirror.written {
		if _, ok := listed[id]; ok {
			continue
		}
		if err := f.mirror.removeSegment(id); err != nil {
			return err
		}
		delete(f.tails, id)
	}
	for id := range f.mirror.staged {
		if _, ok := listed[id]; ok {
			continue
		}
		if err := f.mirror.dropStaged(id); err != nil {
			return err
		}
	}
	for id := range f.chainSeen {
		if _, ok := listed[id]; !ok {
			delete(f.chainSeen, id)
		}
	}
	return nil
}

// diffItems computes the batch that mutates live's state into
// target's, slot by slot.
func diffItems(live, target *recipedb.Store) []recipedb.BatchItem {
	var items []recipedb.BatchItem
	target.Read(func(tv *recipedb.View) {
		live.Read(func(lv *recipedb.View) {
			slots := tv.Slots()
			if lv.Slots() > slots {
				slots = lv.Slots()
			}
			for id := 0; id < slots; id++ {
				var t, l *recipedb.Recipe
				if id < tv.Slots() {
					t = tv.Recipe(id)
				}
				if id < lv.Slots() {
					l = lv.Recipe(id)
				}
				tLive := t != nil && !t.Deleted
				lLive := l != nil && !l.Deleted
				switch {
				case !tLive && !lLive:
				case !tLive && lLive:
					items = append(items, recipedb.BatchItem{Remove: true, ID: id})
				case tLive && (!lLive || !sameRecipe(t, l)):
					items = append(items, recipedb.BatchItem{
						ID: id, Name: t.Name, Region: t.Region, Source: t.Source,
						Ingredients: append([]flavor.ID(nil), t.Ingredients...),
					})
				}
			}
		})
	})
	return items
}

func sameRecipe(a, b *recipedb.Recipe) bool {
	if a.Name != b.Name || a.Region != b.Region || a.Source != b.Source || len(a.Ingredients) != len(b.Ingredients) {
		return false
	}
	for i := range a.Ingredients {
		if a.Ingredients[i] != b.Ingredients[i] {
			return false
		}
	}
	return true
}

func (f *Follower) setErr(err error) {
	f.errMu.Lock()
	f.lastErr = err.Error()
	f.errMu.Unlock()
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logger != nil {
		f.cfg.Logger.Printf(format, args...)
	}
}

// FollowerStats is a follower health snapshot for /api/health.
type FollowerStats struct {
	Primary        string `json:"primary"`
	PrimaryVersion uint64 `json:"primaryVersion"`
	Version        uint64 `json:"version"`
	Lag            uint64 `json:"lag"`
	Polls          uint64 `json:"polls"`
	PollErrors     uint64 `json:"pollErrors"`
	Reconciles     uint64 `json:"reconciles"`
	BytesFetched   uint64 `json:"bytesFetched"`
	LastError      string `json:"lastError,omitempty"`
}

// Stats returns the follower counters. Lag is the version distance to
// the last primary state seen (0 when caught up).
func (f *Follower) Stats() FollowerStats {
	f.errMu.Lock()
	lastErr := f.lastErr
	f.errMu.Unlock()
	pv := f.primaryVersion.Load()
	v := f.corpus.Version()
	var lag uint64
	if pv > v {
		lag = pv - v
	}
	return FollowerStats{
		Primary:        f.cfg.Primary,
		PrimaryVersion: pv,
		Version:        v,
		Lag:            lag,
		Polls:          f.polls.Load(),
		PollErrors:     f.pollErrors.Load(),
		Reconciles:     f.reconciles.Load(),
		BytesFetched:   f.bytesFetched.Load(),
		LastError:      lastErr,
	}
}
