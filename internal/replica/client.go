package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"culinary/internal/httpmw"
	"culinary/internal/storage"
)

// client fetches feed state and segment bytes from a primary.
type client struct {
	base string // primary replication base URL, no trailing slash
	hc   *http.Client
}

func newClient(base string, hc *http.Client) *client {
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &client{base: base, hc: hc}
}

// state fetches the primary's replication snapshot.
func (c *client) state() (*State, error) {
	resp, err := c.hc.Get(c.base + StatePath)
	if err != nil {
		return nil, fmt.Errorf("replica: fetching state: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, envelopeError(resp)
	}
	var st State
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("replica: decoding state: %w", err)
	}
	return &st, nil
}

// segment fetches up to limit bytes of segment id at off. A shorter or
// empty slice means the primary's watermark has not advanced further.
// A primary that no longer serves the segment yields an error wrapping
// storage.ErrSegmentGone.
func (c *client) segment(id uint64, off, limit int64) ([]byte, error) {
	u := c.base + SegmentPath + "?" + url.Values{
		"id":    {strconv.FormatUint(id, 10)},
		"off":   {strconv.FormatInt(off, 10)},
		"limit": {strconv.FormatInt(limit, 10)},
	}.Encode()
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("replica: fetching segment %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, envelopeError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxChunkBytes+1))
	if err != nil {
		return nil, fmt.Errorf("replica: reading segment %d: %w", id, err)
	}
	if int64(len(data)) > MaxChunkBytes {
		return nil, fmt.Errorf("replica: segment %d response exceeds %d bytes", id, int64(MaxChunkBytes))
	}
	return data, nil
}

// envelopeError converts a non-200 feed response into a typed error:
// the segment_gone code maps onto storage.ErrSegmentGone so the
// follower's reconcile logic can errors.Is on it across the wire.
func envelopeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var env httpmw.Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		if env.Error.Code == httpmw.CodeSegmentGone {
			return fmt.Errorf("replica: feed: %s: %w", env.Error.Message, storage.ErrSegmentGone)
		}
		return fmt.Errorf("replica: feed %d %s: %s", resp.StatusCode, env.Error.Code, env.Error.Message)
	}
	return fmt.Errorf("replica: feed status %d", resp.StatusCode)
}
