package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"culinary/internal/storage"
)

// mirror manages the follower's on-disk copy of the primary's store
// directory: segment files under their primary names, the MANIFEST
// verbatim, and a REPLICA_STATE progress file. The invariant it
// maintains across crashes is that after openMirror's repair pass the
// directory is byte-consistent with some committed REPLICA_STATE — a
// read-only storage.Open of it replays to a corpus state at or beyond
// the recorded version, never a corrupt or regressed one.
//
// Two write disciplines make that hold:
//
//   - Chain segments (rank == id) append in place. Progress is
//     recorded (sizes fsynced, then REPLICA_STATE renamed in) only
//     after the data fsync, so a torn fetch leaves bytes past the
//     recorded size — truncated away at the next openMirror, exactly
//     like the engine's own tail repair.
//   - Ranked segments (compaction/salvage outputs) must appear
//     atomically WITH the manifest that ranks them: an unranked copy
//     would replay at its high raw id and let stale records win. They
//     stage as *.seg.tmp, their staged sizes are committed to
//     REPLICA_STATE, the manifest is mirrored, and only then are they
//     renamed in — every crash window either rolls the staged file
//     forward (its recorded size proves it complete) or discards it.
type mirror struct {
	dir     string
	version uint64
	// slots mirrors the corpus slot bound at version; the follower sets
	// it before each commitState (see replicaState.Slots).
	slots int
	// written tracks final segment file sizes; staged tracks *.seg.tmp
	// sizes mid-protocol; done marks segments known fully fetched (a
	// sealed segment mirrored to its full primary size) — persisted so
	// a restart can tell a harmless drop of a fully-replayed segment
	// from one whose unfetched suffix was re-homed into ranked outputs
	// the follower never decodes (which forces a reconcile).
	written  map[uint64]int64
	staged   map[uint64]int64
	done     map[uint64]bool
	files    map[uint64]*os.File
	tmpFiles map[uint64]*os.File
	dirty    map[uint64]bool
	manifest []byte
}

// stateFileName is the follower's durable progress marker.
const stateFileName = "REPLICA_STATE"

// replicaState is the REPLICA_STATE wire format.
type replicaState struct {
	Version uint64 `json:"version"`
	// Slots is the corpus slot bound at Version. LoadCorpus cannot
	// recover trailing tombstoned slots (only live recipes have keys),
	// so reopen restores the bound from here via SyncSlots.
	Slots    int        `json:"slots,omitempty"`
	Segments []savedSeg `json:"segments,omitempty"`
	Staged   []savedSeg `json:"staged,omitempty"`
}

type savedSeg struct {
	ID   uint64 `json:"id"`
	Size int64  `json:"size"`
	Done bool   `json:"done,omitempty"`
}

// openMirror opens (creating if necessary) a mirror directory and
// repairs it to the last committed REPLICA_STATE: final files truncate
// to their recorded sizes (or are deleted when unrecorded), staged
// files roll forward only when their recorded staged size proves them
// complete and the mirrored manifest ranks them, and everything else
// from a torn poll is discarded for refetch.
func openMirror(dir string) (*mirror, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: creating mirror dir: %w", err)
	}
	m := &mirror{
		dir:      dir,
		written:  make(map[uint64]int64),
		staged:   make(map[uint64]int64),
		done:     make(map[uint64]bool),
		files:    make(map[uint64]*os.File),
		tmpFiles: make(map[uint64]*os.File),
		dirty:    make(map[uint64]bool),
	}
	var st replicaState
	raw, err := os.ReadFile(filepath.Join(dir, stateFileName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh mirror (or one that never completed a poll).
	case err != nil:
		return nil, fmt.Errorf("replica: reading %s: %w", stateFileName, err)
	default:
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, fmt.Errorf("replica: parsing %s: %w", stateFileName, err)
		}
	}
	m.version = st.Version
	m.slots = st.Slots
	recorded := make(map[uint64]int64, len(st.Segments))
	recordedDone := make(map[uint64]bool, len(st.Segments))
	for _, s := range st.Segments {
		recorded[s.ID] = s.Size
		recordedDone[s.ID] = s.Done
	}
	stagedRec := make(map[uint64]int64, len(st.Staged))
	for _, s := range st.Staged {
		stagedRec[s.ID] = s.Size
	}

	if m.manifest, err = os.ReadFile(filepath.Join(dir, storage.ManifestFileName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("replica: reading mirrored manifest: %w", err)
	}
	man, err := parseManifest(m.manifest)
	if err != nil {
		return nil, err
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("replica: scanning mirror dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".seg.tmp"):
			id, ok := parseSegName(strings.TrimSuffix(name, ".tmp"))
			if !ok {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return nil, err
			}
			// Roll forward only a provably complete staged file the
			// mirrored manifest already ranks; anything else is a torn
			// stage, discarded for refetch.
			if _, ranked := man.Ranks[id]; ranked && stagedRec[id] == info.Size() && info.Size() > 0 {
				if err := os.Rename(path, filepath.Join(dir, storage.SegmentFileName(id))); err != nil {
					return nil, fmt.Errorf("replica: rolling staged segment forward: %w", err)
				}
				recorded[id] = info.Size()
				recordedDone[id] = true // staged fetches are all-or-nothing
				continue
			}
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		case strings.HasSuffix(name, ".seg"):
			id, ok := parseSegName(name)
			if !ok {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return nil, err
			}
			want, ok := recorded[id]
			if !ok {
				// A promoted staged file whose final REPLICA_STATE commit
				// never landed is proven complete by its staged record;
				// any other unrecorded file is a torn bootstrap fetch.
				if stagedRec[id] == info.Size() && info.Size() > 0 {
					recorded[id] = info.Size()
					recordedDone[id] = true
					continue
				}
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				continue
			}
			switch {
			case info.Size() > want:
				if err := os.Truncate(path, want); err != nil {
					return nil, fmt.Errorf("replica: trimming torn fetch: %w", err)
				}
			case info.Size() < want:
				// Data shorter than a committed record claims durable:
				// the file cannot be trusted at any prefix; refetch.
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				delete(recorded, id)
			}
		}
	}
	// Drop records whose files vanished (a cleanup interrupted
	// mid-delete): the segment was superseded, refetching is the worst
	// case.
	for id, size := range recorded {
		if info, err := os.Stat(filepath.Join(dir, storage.SegmentFileName(id))); err != nil || info.Size() != size {
			delete(recorded, id)
			continue
		}
		m.written[id] = size
		if recordedDone[id] {
			m.done[id] = true
		}
	}
	return m, nil
}

func parseSegName(name string) (uint64, bool) {
	base := strings.TrimSuffix(name, ".seg")
	if len(base) != 8 {
		return 0, false
	}
	id, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// segFile returns (opening or creating as needed) the append handle
// for a final segment file.
func (m *mirror) segFile(id uint64) (*os.File, error) {
	if f, ok := m.files[id]; ok {
		return f, nil
	}
	f, err := os.OpenFile(filepath.Join(m.dir, storage.SegmentFileName(id)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: opening mirror segment: %w", err)
	}
	m.files[id] = f
	return f, nil
}

// writeAt appends fetched chain-segment bytes at their primary offset.
func (m *mirror) writeAt(id uint64, off int64, data []byte) error {
	f, err := m.segFile(id)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		return fmt.Errorf("replica: writing mirror segment %d: %w", id, err)
	}
	if end := off + int64(len(data)); end > m.written[id] {
		m.written[id] = end
	}
	m.dirty[id] = true
	return nil
}

// stageWriteAt appends fetched ranked-segment bytes into the staging
// file (*.seg.tmp).
func (m *mirror) stageWriteAt(id uint64, off int64, data []byte) error {
	f, ok := m.tmpFiles[id]
	if !ok {
		var err error
		f, err = os.OpenFile(filepath.Join(m.dir, storage.SegmentFileName(id)+".tmp"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("replica: opening staging segment: %w", err)
		}
		m.tmpFiles[id] = f
	}
	if _, err := f.WriteAt(data, off); err != nil {
		return fmt.Errorf("replica: staging segment %d: %w", id, err)
	}
	if end := off + int64(len(data)); end > m.staged[id] {
		m.staged[id] = end
	}
	return nil
}

// stagedSize reports how far a staged fetch has progressed.
func (m *mirror) stagedSize(id uint64) int64 { return m.staged[id] }

// markDone records that segment id is fully fetched (a sealed segment
// mirrored to its complete primary size); isDone reports it. The bit
// is persisted by commitState.
func (m *mirror) markDone(id uint64)    { m.done[id] = true }
func (m *mirror) isDone(id uint64) bool { return m.done[id] }

// sealStaged fsyncs every staging file and durably records the staged
// sizes, so a later crash can prove them complete. Must run before the
// manifest that ranks them is mirrored.
func (m *mirror) sealStaged() error {
	if len(m.staged) == 0 {
		return nil
	}
	for id, f := range m.tmpFiles {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("replica: syncing staged segment %d: %w", id, err)
		}
	}
	return m.commitState(m.version)
}

// dropStaged discards a staging file (its segment vanished from the
// snapshot before the fetch completed).
func (m *mirror) dropStaged(id uint64) error {
	if f, ok := m.tmpFiles[id]; ok {
		f.Close()
		delete(m.tmpFiles, id)
	}
	delete(m.staged, id)
	err := os.Remove(filepath.Join(m.dir, storage.SegmentFileName(id)+".tmp"))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// promoteStaged renames every staged file to its final name. Must run
// after the ranking manifest is mirrored; the rename makes the ranked
// copy visible to replay under the rank the manifest assigns it.
func (m *mirror) promoteStaged() error {
	if len(m.tmpFiles) == 0 {
		return nil
	}
	for id, f := range m.tmpFiles {
		if err := f.Close(); err != nil {
			return err
		}
		delete(m.tmpFiles, id)
		tmp := filepath.Join(m.dir, storage.SegmentFileName(id)+".tmp")
		if err := os.Rename(tmp, filepath.Join(m.dir, storage.SegmentFileName(id))); err != nil {
			return fmt.Errorf("replica: promoting staged segment %d: %w", id, err)
		}
		m.written[id] = m.staged[id]
		m.done[id] = true
		delete(m.staged, id)
	}
	return syncDir(m.dir)
}

// mirrorManifest atomically replaces the local MANIFEST with the
// primary's bytes (temp file, fsync, rename, directory fsync) when
// they changed.
func (m *mirror) mirrorManifest(data []byte) error {
	if len(data) == 0 || string(data) == string(m.manifest) {
		return nil
	}
	path := filepath.Join(m.dir, storage.ManifestFileName)
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("replica: mirroring manifest: %w", err)
	}
	m.manifest = append([]byte(nil), data...)
	return nil
}

// removeSegment deletes a superseded local segment (cleanup after the
// snapshot stopped listing it). Safe at any crash point: the records
// it held are covered by ranked outputs fetched before cleanup runs.
func (m *mirror) removeSegment(id uint64) error {
	if f, ok := m.files[id]; ok {
		f.Close()
		delete(m.files, id)
	}
	delete(m.written, id)
	delete(m.done, id)
	delete(m.dirty, id)
	err := os.Remove(filepath.Join(m.dir, storage.SegmentFileName(id)))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// commitState makes all fetch progress durable: fsync every dirty
// final file, then atomically replace REPLICA_STATE. The data fsync
// strictly precedes the state commit, so a recorded size never claims
// bytes the disk might not hold.
func (m *mirror) commitState(version uint64) error {
	for id := range m.dirty {
		f, ok := m.files[id]
		if !ok {
			continue
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("replica: syncing mirror segment %d: %w", id, err)
		}
		delete(m.dirty, id)
	}
	st := replicaState{Version: version, Slots: m.slots}
	for id, size := range m.written {
		st.Segments = append(st.Segments, savedSeg{ID: id, Size: size, Done: m.done[id]})
	}
	for id, size := range m.staged {
		st.Staged = append(st.Staged, savedSeg{ID: id, Size: size})
	}
	sort.Slice(st.Segments, func(i, j int) bool { return st.Segments[i].ID < st.Segments[j].ID })
	sort.Slice(st.Staged, func(i, j int) bool { return st.Staged[i].ID < st.Staged[j].ID })
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(m.dir, stateFileName), data); err != nil {
		return fmt.Errorf("replica: committing %s: %w", stateFileName, err)
	}
	m.version = version
	return nil
}

// close releases every open file handle (without further fsync: state
// not committed is state to refetch).
func (m *mirror) close() error {
	var firstErr error
	for _, f := range m.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range m.tmpFiles {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.files = map[uint64]*os.File{}
	m.tmpFiles = map[uint64]*os.File{}
	return firstErr
}

// atomicWrite replaces path via temp file, fsync, rename and directory
// fsync — the same commit discipline the storage engine uses for its
// manifest.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
