package replica

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"culinary/internal/httpmw"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

// Feed is the primary-side replication endpoint pair, designed to be
// served from a dedicated listener (cmd/server -replication-listen) so
// replication traffic never competes with client requests for the API
// listener's connection and rate budgets.
type Feed struct {
	db     *storage.Store
	corpus *recipedb.Store

	// lastGood is the newest (version, slot bound) a successful sample
	// published. When a sample's fsync fails (write path degraded), the
	// feed keeps serving segment positions — reads and shipping stay up
	// while writes are down — but must not claim a version the
	// un-fsynced positions might not cover, so it falls back to these
	// values (undershooting is always safe; see State).
	mu            sync.Mutex
	lastGood      uint64
	lastGoodSlots int

	stateReqs   atomic.Uint64
	segmentReqs atomic.Uint64
	bytesServed atomic.Uint64
}

// NewFeed builds a replication feed over an open primary store pair.
func NewFeed(db *storage.Store, corpus *recipedb.Store) *Feed {
	return &Feed{db: db, corpus: corpus}
}

// Handler returns the feed's HTTP handler, routing StatePath and
// SegmentPath. Errors use the structured envelope so follower clients
// and humans share one decoding path.
func (f *Feed) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(StatePath, f.handleState)
	mux.HandleFunc(SegmentPath, f.handleSegment)
	return mux
}

// handleState samples and serves a replication snapshot. Ordering is
// the correctness core: the corpus version is read FIRST, then the log
// is fsynced, then segment positions are sampled. Any mutation counted
// by the version was persisted (write-through) before the version was
// published, so the fsync covers its bytes and the sampled positions
// include them — replaying to these positions can only land at or
// beyond the published version, never behind it.
func (f *Feed) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpmw.WriteError(w, http.StatusMethodNotAllowed, httpmw.CodeMethod, "GET only")
		return
	}
	f.stateReqs.Add(1)

	var version uint64
	var slots int
	f.corpus.Read(func(v *recipedb.View) {
		version, slots = v.Version, v.Slots()
	})
	if err := f.db.Sync(); err != nil {
		// Write path degraded: the durable watermark cannot be advanced,
		// so fall back to the last version a successful sample covered.
		// Fresh positions are still served — they only ever undershoot.
		f.mu.Lock()
		version, slots = f.lastGood, f.lastGoodSlots
		f.mu.Unlock()
	} else {
		f.mu.Lock()
		if version > f.lastGood {
			f.lastGood, f.lastGoodSlots = version, slots
		} else {
			version, slots = f.lastGood, f.lastGoodSlots
		}
		f.mu.Unlock()
	}

	manifest, segs, err := f.db.ReplicationState()
	if err != nil {
		httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeStorageUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(State{Version: version, Slots: slots, Manifest: manifest, Segments: segs})
}

// handleSegment streams raw segment bytes: ?id=N&off=N&limit=N. The
// response may be shorter than limit (watermark reached) or empty (no
// new bytes past off). A segment the store no longer serves answers
// 404 segment_gone — the follower's cue to re-fetch the state and
// reconcile rather than retry.
func (f *Feed) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpmw.WriteError(w, http.StatusMethodNotAllowed, httpmw.CodeMethod, "GET only")
		return
	}
	f.segmentReqs.Add(1)
	q := r.URL.Query()
	id, err := strconv.ParseUint(q.Get("id"), 10, 64)
	if err != nil {
		httpmw.WriteError(w, http.StatusBadRequest, httpmw.CodeBadRequest, "bad segment id")
		return
	}
	off, err := strconv.ParseInt(q.Get("off"), 10, 64)
	if err != nil || off < 0 {
		httpmw.WriteError(w, http.StatusBadRequest, httpmw.CodeBadRequest, "bad offset")
		return
	}
	limit := int64(DefaultChunkBytes)
	if s := q.Get("limit"); s != "" {
		limit, err = strconv.ParseInt(s, 10, 64)
		if err != nil || limit <= 0 {
			httpmw.WriteError(w, http.StatusBadRequest, httpmw.CodeBadRequest, "bad limit")
			return
		}
	}
	if limit > MaxChunkBytes {
		limit = MaxChunkBytes
	}
	data, err := f.db.ReadSegmentAt(id, off, limit)
	switch {
	case errors.Is(err, storage.ErrSegmentGone):
		httpmw.WriteError(w, http.StatusNotFound, httpmw.CodeSegmentGone, err.Error())
		return
	case err != nil:
		httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeStorageUnavailable, err.Error())
		return
	}
	f.bytesServed.Add(uint64(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// FeedStats is a snapshot of feed-side counters for /api/health.
type FeedStats struct {
	StateRequests   uint64 `json:"stateRequests"`
	SegmentRequests uint64 `json:"segmentRequests"`
	BytesServed     uint64 `json:"bytesServed"`
	LastVersion     uint64 `json:"lastVersion"`
}

// Stats returns the feed counters.
func (f *Feed) Stats() FeedStats {
	f.mu.Lock()
	last := f.lastGood
	f.mu.Unlock()
	return FeedStats{
		StateRequests:   f.stateReqs.Load(),
		SegmentRequests: f.segmentReqs.Load(),
		BytesServed:     f.bytesServed.Load(),
		LastVersion:     last,
	}
}
