// Package replica implements primary→follower replication by sealed-
// segment shipping. The storage engine was built from invariants that
// make replication almost free, and this package assembles them into a
// protocol:
//
//   - Sealed segments are immutable, so their bytes can be copied at
//     any moment without coordination.
//   - The active segment is shipped only up to its durable watermark
//     (syncedSize), which always lies on a whole-record boundary and
//     never regresses — bytes past it may still be torn or re-homed by
//     write recovery, bytes at or below it are acknowledged forever.
//   - The MANIFEST's (rank, id) replay order makes a mirrored
//     directory replay to exactly the primary's state, including
//     through compactions: a compaction output (rank ≠ id) is a copy
//     of old records, so a follower mirrors its bytes but never
//     decodes them, while segments with rank == id form the mutation
//     chain the follower tails record by record.
//   - Every corpus mutation bumps a version the primary publishes with
//     each feed state, so a follower can stamp its replayed state with
//     the exact version token the read-your-writes contract routes on.
//
// The primary side is Feed: two HTTP endpoints (state + segment bytes)
// served from a dedicated listener. The follower side is Follower: it
// bootstraps a local mirror directory from the committed manifest,
// opens it read-only to load the corpus, then tails the feed — writing
// fetched bytes into the mirror (crash-durable, resumable) and
// applying chain records to its in-memory corpus as they arrive. A
// fetch that hits a segment the primary quarantined or compacted away
// mid-ship gets a typed miss and re-syncs from a fresh state snapshot
// instead of wedging.
package replica

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

// Protocol paths served by Feed.Handler. The segment endpoint takes
// ?id=&off=&limit= and streams raw bytes; the state endpoint returns a
// State document.
const (
	StatePath   = "/replica/state"
	SegmentPath = "/replica/segment"
)

// DefaultChunkBytes is the fetch chunk a follower requests per segment
// read; MaxChunkBytes is the cap the feed enforces on ?limit=.
const (
	DefaultChunkBytes = 1 << 20
	MaxChunkBytes     = 8 << 20
)

// State is the feed's replication snapshot: the corpus version the
// listed positions are guaranteed to cover, the committed MANIFEST
// verbatim, and the shippable segment set. The guarantee is
// directional: replaying every listed segment to its listed size
// yields a corpus state at version >= Version (never an earlier one),
// because the feed samples Version before fsyncing and listing
// positions.
type State struct {
	Version uint64 `json:"version"`
	// Slots is the corpus slot bound at Version. Replaying segments
	// recovers only live recipes, so a corpus whose highest slots were
	// all tombstoned would otherwise reload short of the bound and
	// disagree with the primary on Slots() and the next free slot.
	Slots    int                   `json:"slots"`
	Manifest json.RawMessage       `json:"manifest"`
	Segments []storage.SegmentInfo `json:"segments"`
}

// chainSegments returns the mutation-chain segments (rank == id) in
// ascending id order — the only segments a follower decodes; the rest
// are compaction/salvage copies, mirrored byte-for-byte but never
// replayed record by record.
func (st *State) chainSegments() []storage.SegmentInfo {
	var chain []storage.SegmentInfo
	for _, seg := range st.Segments {
		if seg.Rank == seg.ID {
			chain = append(chain, seg)
		}
	}
	sortSegments(chain)
	return chain
}

func sortSegments(segs []storage.SegmentInfo) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].ID < segs[j-1].ID; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// parseRecipeKey extracts the slot ID from a corpus record key,
// reporting false for non-recipe keys (the snapshot metadata under
// "meta/", which the follower mirrors but does not apply).
func parseRecipeKey(key string) (int, bool) {
	if !strings.HasPrefix(key, recipedb.RecipePrefix) {
		return 0, false
	}
	id, err := strconv.Atoi(strings.TrimPrefix(key, recipedb.RecipePrefix))
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// manifestDoc mirrors the storage MANIFEST wire format for the fields
// the follower needs (replay ranks and the drop list); the bytes
// themselves are mirrored verbatim so the follower's storage replay
// sees exactly what the primary committed.
type manifestDoc struct {
	Ranks map[uint64]uint64 `json:"ranks"`
	Drop  []uint64          `json:"drop"`
}

// rankOf mirrors the storage engine's rule: a segment absent from
// Ranks replays at its own ID.
func (m manifestDoc) rankOf(id uint64) uint64 {
	if r, ok := m.Ranks[id]; ok {
		return r
	}
	return id
}

func parseManifest(data []byte) (manifestDoc, error) {
	var m manifestDoc
	if len(data) == 0 {
		return m, nil
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("replica: parsing manifest: %w", err)
	}
	return m, nil
}
