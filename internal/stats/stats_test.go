package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if !almostEqual(a.PopStdDev(), 2, 1e-12) {
		t.Fatalf("PopStdDev = %v", a.PopStdDev())
	}
	if !almostEqual(a.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator should be all zero")
	}
	a.Add(42)
	if a.Mean() != 42 || a.Variance() != 0 {
		t.Fatalf("single observation: mean=%v var=%v", a.Mean(), a.Variance())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var whole, left, right Accumulator
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d", left.N())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-12) {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged var %v vs %v", left.Variance(), whole.Variance())
	}
	if left.Min() != 1 || left.Max() != 10 {
		t.Fatalf("merged min/max %v/%v", left.Min(), left.Max())
	}
}

func TestAccumulatorMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	b.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty: N=%d mean=%v", a.N(), a.Mean())
	}
	var c Accumulator
	a.Merge(&c)
	if a.N() != 2 {
		t.Fatal("merging an empty accumulator changed N")
	}
}

func TestMeanStdDevErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatal("Mean(nil) should return ErrEmpty")
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Fatal("StdDev(nil) should return ErrEmpty")
	}
}

func TestZScore(t *testing.T) {
	// observed 10, null mean 8, std 4, n 10000 -> se 0.04 -> z 50.
	if z := ZScore(10, 8, 4, 10000); !almostEqual(z, 50, 1e-9) {
		t.Fatalf("ZScore = %v", z)
	}
	if z := ZScore(8, 8, 0, 100); z != 0 {
		t.Fatalf("identical with zero std should be 0, got %v", z)
	}
	if z := ZScore(9, 8, 0, 100); !math.IsInf(z, 1) {
		t.Fatalf("positive diff with zero std should be +Inf, got %v", z)
	}
	if z := ZScore(7, 8, 0, 100); !math.IsInf(z, -1) {
		t.Fatalf("negative diff with zero std should be -Inf, got %v", z)
	}
	if z := ZScore(1, 1, 1, 0); !math.IsNaN(z) {
		t.Fatalf("nRandom=0 should be NaN, got %v", z)
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	med, err := Median(xs)
	if err != nil || med != 35 {
		t.Fatalf("median = %v err %v", med, err)
	}
	p, err := Percentile(xs, 0)
	if err != nil || p != 15 {
		t.Fatalf("p0 = %v", p)
	}
	p, _ = Percentile(xs, 100)
	if p != 50 {
		t.Fatalf("p100 = %v", p)
	}
	p, _ = Percentile(xs, 25)
	if p != 20 {
		t.Fatalf("p25 = %v", p)
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("out-of-range percentile should error")
	}
	one, _ := Percentile([]float64{7}, 90)
	if one != 7 {
		t.Fatalf("singleton percentile = %v", one)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{3, 3, 5, 9, 3, 5} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(3) != 3 || h.Count(5) != 2 || h.Count(9) != 1 || h.Count(99) != 0 {
		t.Fatal("counts wrong")
	}
	sup := h.Support()
	if len(sup) != 3 || sup[0] != 3 || sup[1] != 5 || sup[2] != 9 {
		t.Fatalf("Support = %v", sup)
	}
	vals, probs := h.PMF()
	if vals[0] != 3 || !almostEqual(probs[0], 0.5, 1e-12) {
		t.Fatalf("PMF = %v %v", vals, probs)
	}
	_, cum := h.CDF()
	if !almostEqual(cum[len(cum)-1], 1, 1e-12) {
		t.Fatalf("CDF does not reach 1: %v", cum)
	}
	if !almostEqual(h.Mean(), (3*3+5*2+9)/6.0, 1e-12) {
		t.Fatalf("Mean = %v", h.Mean())
	}
	mode, ok := h.Mode()
	if !ok || mode != 3 {
		t.Fatalf("Mode = %v %v", mode, ok)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	if _, ok := h.Mode(); ok {
		t.Fatal("empty mode should report !ok")
	}
	if h.Support() != nil && len(h.Support()) != 0 {
		t.Fatal("empty support should be empty")
	}
}

func TestRankFrequency(t *testing.T) {
	got := RankFrequency([]int{10, 50, 20})
	want := []float64{1, 0.4, 0.2}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("RankFrequency = %v", got)
		}
	}
	if RankFrequency(nil) != nil {
		t.Fatal("nil input should return nil")
	}
	zeros := RankFrequency([]int{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Fatalf("all-zero input: %v", zeros)
	}
}

func TestCumulativeShare(t *testing.T) {
	got := CumulativeShare([]int{1, 3, 1})
	// sorted desc: 3,1,1; total 5 -> 0.6, 0.8, 1.0
	want := []float64{0.6, 0.8, 1.0}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("CumulativeShare = %v", got)
		}
	}
	if CumulativeShare(nil) != nil {
		t.Fatal("nil input should return nil")
	}
	z := CumulativeShare([]int{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero total: %v", z)
	}
}

func TestGini(t *testing.T) {
	// Perfect equality -> 0.
	if g := Gini([]int{5, 5, 5, 5}); !almostEqual(g, 0, 1e-12) {
		t.Fatalf("equal Gini = %v", g)
	}
	// Total concentration in one of n entries -> (n-1)/n.
	if g := Gini([]int{0, 0, 0, 10}); !almostEqual(g, 0.75, 1e-12) {
		t.Fatalf("concentrated Gini = %v", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
	if g := Gini([]int{0, 0}); g != 0 {
		t.Fatalf("all-zero Gini = %v", g)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect correlation r = %v err %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation r = %v", r)
	}
	if _, err := Pearson(xs, ys[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Fatal("too-short input should be ErrEmpty")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance should error")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear: Spearman should be exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	r, err := SpearmanRank(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v err %v", r, err)
	}
	// Reversed -> -1.
	rev := []float64{25, 16, 9, 4, 1}
	r, _ = SpearmanRank(xs, rev)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Spearman reversed = %v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks; correlation of a vector with itself is 1.
	xs := []float64{1, 2, 2, 3}
	r, err := SpearmanRank(xs, xs)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("self Spearman with ties = %v err %v", r, err)
	}
}

func TestPropertyAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		var acc Accumulator
		var sum float64
		for _, x := range xs {
			acc.Add(x)
			sum += x
		}
		batchMean := sum / float64(len(xs))
		return almostEqual(acc.Mean(), batchMean, 1e-6*(1+math.Abs(batchMean)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGiniRange(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, r := range raw {
			counts[i] = int(r)
		}
		g := Gini(counts)
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRankFrequencyMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int, len(raw))
		for i, r := range raw {
			counts[i] = int(r)
		}
		rf := RankFrequency(counts)
		for i := 1; i < len(rf); i++ {
			if rf[i] > rf[i-1] {
				return false
			}
		}
		if len(rf) > 0 && len(counts) > 0 {
			max := 0
			for _, c := range counts {
				if c > max {
					max = c
				}
			}
			if max > 0 && rf[0] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
