package stats

import (
	"math"
	"testing"

	"culinary/internal/rng"
)

func TestBootstrapMean(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.NormFloat64()*2 + 10
	}
	res, err := Bootstrap(xs, 1000, 0.95, rng.New(11), MeanStat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Point-10) > 0.5 {
		t.Fatalf("point estimate %v far from 10", res.Point)
	}
	if res.Lo > res.Point || res.Hi < res.Point {
		t.Fatalf("CI [%v, %v] does not bracket point %v", res.Lo, res.Hi, res.Point)
	}
	// Theoretical standard error of the mean: 2/sqrt(500) = 0.089.
	if math.Abs(res.StdErr-0.089) > 0.03 {
		t.Fatalf("bootstrap stderr %v far from 0.089", res.StdErr)
	}
	if res.Replicates != 1000 {
		t.Fatalf("Replicates = %d", res.Replicates)
	}
}

func TestBootstrapDeterminism(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := Bootstrap(xs, 200, 0.9, rng.New(5), MeanStat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(xs, 200, 0.9, rng.New(5), MeanStat)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("bootstrap not deterministic: %+v vs %+v", a, b)
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := Bootstrap(nil, 100, 0.95, rng.New(1), MeanStat); err != ErrEmpty {
		t.Fatal("empty sample should return ErrEmpty")
	}
	xs := []float64{1, 2}
	if _, err := Bootstrap(xs, 1, 0.95, rng.New(1), MeanStat); err == nil {
		t.Fatal("replicates < 2 should error")
	}
	if _, err := Bootstrap(xs, 10, 0, rng.New(1), MeanStat); err == nil {
		t.Fatal("confidence 0 should error")
	}
	if _, err := Bootstrap(xs, 10, 1, rng.New(1), MeanStat); err == nil {
		t.Fatal("confidence 1 should error")
	}
}

func TestBootstrapCoverage(t *testing.T) {
	// Rough coverage check: the 90% CI for the mean of a known
	// distribution should contain the true mean most of the time.
	const trials = 60
	contained := 0
	master := rng.New(99)
	for trial := 0; trial < trials; trial++ {
		gen := master.Split(uint64(trial))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = gen.NormFloat64() + 5
		}
		res, err := Bootstrap(xs, 400, 0.9, gen.Split(1), MeanStat)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lo <= 5 && 5 <= res.Hi {
			contained++
		}
	}
	// Expect ~54 of 60; allow generous slack.
	if contained < 45 {
		t.Fatalf("90%% CI contained true mean only %d/%d times", contained, trials)
	}
}
