// Package stats provides the descriptive and inferential statistics used
// throughout the culinary analysis: running moments, Z-scores, histograms
// and CDFs for the recipe-size and popularity figures, rank-frequency
// transforms, bootstrap confidence intervals for the robustness
// experiments, and rank correlation for comparing null models.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Accumulator gathers streaming first and second moments using Welford's
// numerically stable online algorithm. The null models accumulate food
// pairing scores over 100,000 generated recipes without storing them.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (n-1 denominator), or 0
// when fewer than two observations have been added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// PopVariance returns the population variance (n denominator).
func (a *Accumulator) PopVariance() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// PopStdDev returns the population standard deviation.
func (a *Accumulator) PopStdDev() float64 { return math.Sqrt(a.PopVariance()) }

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// Merge combines another accumulator into this one (parallel Welford).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean(), nil
}

// StdDev returns the unbiased standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.StdDev(), nil
}

// ZScore computes the paper's significance statistic
//
//	Z = (observed - nullMean) / (nullStd / sqrt(nRandom))
//
// i.e. the deviation of the real cuisine's mean pairing score from the
// randomized cuisine's mean, in units of the standard error of the null
// mean over nRandom generated recipes (§IV.B). A zero or negative null
// standard deviation yields Z = 0 when the means agree, +/-Inf otherwise.
func ZScore(observed, nullMean, nullStd float64, nRandom int) float64 {
	if nRandom <= 0 {
		return math.NaN()
	}
	se := nullStd / math.Sqrt(float64(nRandom))
	diff := observed - nullMean
	if se == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(sign(diff))
	}
	return diff / se
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Histogram is a discrete integer-valued histogram with unit bins,
// suitable for the recipe-size distribution (Fig 3a).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add increments the bin for value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Support returns the observed values in ascending order.
func (h *Histogram) Support() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// PMF returns P(X = v) for each value in Support order.
func (h *Histogram) PMF() (values []int, probs []float64) {
	values = h.Support()
	probs = make([]float64, len(values))
	for i, v := range values {
		probs[i] = float64(h.counts[v]) / float64(h.total)
	}
	return values, probs
}

// CDF returns P(X <= v) for each value in Support order — the cumulative
// inset curves of Fig 3.
func (h *Histogram) CDF() (values []int, cum []float64) {
	values, probs := h.PMF()
	cum = make([]float64, len(probs))
	running := 0.0
	for i, p := range probs {
		running += p
		cum[i] = running
	}
	return values, cum
}

// Mean returns the histogram mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Mode returns the most frequent value; ties break toward the smaller
// value for determinism. Returns 0, false when empty.
func (h *Histogram) Mode() (int, bool) {
	if h.total == 0 {
		return 0, false
	}
	best, bestC := 0, -1
	for _, v := range h.Support() {
		if c := h.counts[v]; c > bestC {
			best, bestC = v, c
		}
	}
	return best, true
}

// RankFrequency sorts counts in descending order and normalizes by the
// largest count — the transform behind Fig 3b (ingredient popularity
// ranked and normalized by the most popular ingredient). Returns nil for
// empty input.
func RankFrequency(counts []int) []float64 {
	if len(counts) == 0 {
		return nil
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if sorted[0] == 0 {
		out := make([]float64, len(sorted))
		return out
	}
	out := make([]float64, len(sorted))
	top := float64(sorted[0])
	for i, c := range sorted {
		out[i] = float64(c) / top
	}
	return out
}

// CumulativeShare returns, for descending-sorted counts, the fraction of
// total mass covered by the top k entries for every k — the cumulative
// popularity inset of Fig 3b.
func CumulativeShare(counts []int) []float64 {
	if len(counts) == 0 {
		return nil
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, c := range sorted {
		total += c
	}
	out := make([]float64, len(sorted))
	if total == 0 {
		return out
	}
	running := 0
	for i, c := range sorted {
		running += c
		out[i] = float64(running) / float64(total)
	}
	return out
}

// Gini computes the Gini coefficient of the count vector, a scalar
// summary of popularity concentration used when comparing cuisines'
// rank-frequency curves. Returns 0 for empty or all-zero input.
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	var cum, total float64
	for _, c := range sorted {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var weighted float64
	for i, c := range sorted {
		cum += float64(c)
		_ = i
		weighted += cum
	}
	// G = (n + 1 - 2 * sum(cumshare) ) / n
	return (float64(n) + 1 - 2*weighted/total) / float64(n)
}

// SpearmanRank computes Spearman's rank correlation between two paired
// samples, used to quantify how well a null model's per-cuisine Z-scores
// track the real cuisines'. Ties receive average ranks.
func SpearmanRank(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	rx := averageRanks(xs)
	ry := averageRanks(ys)
	return Pearson(rx, ry)
}

// Pearson computes the Pearson correlation coefficient.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	var ax, ay Accumulator
	for i := range xs {
		ax.Add(xs[i])
		ay.Add(ys[i])
	}
	mx, my := ax.Mean(), ay.Mean()
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

func averageRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg + 1 // 1-based ranks
		}
		i = j + 1
	}
	return ranks
}
