package stats

import (
	"errors"
	"sort"

	"culinary/internal/rng"
)

// BootstrapResult summarizes a nonparametric bootstrap of a statistic.
type BootstrapResult struct {
	// Point is the statistic evaluated on the original sample.
	Point float64
	// Mean is the mean of the bootstrap replicates.
	Mean float64
	// StdErr is the standard deviation of the replicates.
	StdErr float64
	// Lo and Hi bound the central percentile confidence interval.
	Lo, Hi float64
	// Replicates is the number of bootstrap resamples performed.
	Replicates int
}

// Bootstrap resamples xs with replacement `replicates` times, applies
// stat to each resample, and returns a percentile confidence interval at
// the given confidence level (e.g. 0.95). It is used by the robustness
// extension experiment to test whether a cuisine's food-pairing sign
// survives recipe resampling.
func Bootstrap(xs []float64, replicates int, confidence float64, src *rng.Source, stat func([]float64) float64) (BootstrapResult, error) {
	if len(xs) == 0 {
		return BootstrapResult{}, ErrEmpty
	}
	if replicates < 2 {
		return BootstrapResult{}, errors.New("stats: need at least 2 bootstrap replicates")
	}
	if confidence <= 0 || confidence >= 1 {
		return BootstrapResult{}, errors.New("stats: confidence must be in (0,1)")
	}
	res := BootstrapResult{
		Point:      stat(xs),
		Replicates: replicates,
	}
	reps := make([]float64, replicates)
	buf := make([]float64, len(xs))
	var acc Accumulator
	for r := 0; r < replicates; r++ {
		for i := range buf {
			buf[i] = xs[src.Intn(len(xs))]
		}
		v := stat(buf)
		reps[r] = v
		acc.Add(v)
	}
	res.Mean = acc.Mean()
	res.StdErr = acc.StdDev()
	sort.Float64s(reps)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(replicates))
	hiIdx := int((1 - alpha) * float64(replicates))
	if hiIdx >= replicates {
		hiIdx = replicates - 1
	}
	res.Lo = reps[loIdx]
	res.Hi = reps[hiIdx]
	return res, nil
}

// MeanStat is a convenience statistic for Bootstrap: the sample mean.
func MeanStat(xs []float64) float64 {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean()
}
