// Package flavornet builds the flavor network underlying the paper's
// analysis framework: the weighted graph whose nodes are ingredients
// and whose edge weights are shared flavor-compound counts (Ahn et al.,
// "Flavor network and the principles of food pairing", Sci. Rep. 2011 —
// reference [6] of the paper). The network view supports the
// prevalence/authenticity analyses that accompany food-pairing studies
// and the backbone extraction used to visualize them.
package flavornet

import (
	"fmt"
	"math"
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

// Edge is one weighted ingredient-ingredient link.
type Edge struct {
	A, B flavor.ID
	// Weight is |F(A) ∩ F(B)|, the shared flavor-compound count.
	Weight int
}

// Network is the flavor network over a catalog. Nodes are profiled
// ingredients; edges connect pairs sharing at least MinShared
// compounds. Immutable after Build.
type Network struct {
	catalog *flavor.Catalog
	// adj[id] lists neighbors with weights, sorted by neighbor ID.
	adj map[flavor.ID][]Edge
	// nodes are the profiled ingredient IDs, ascending.
	nodes     []flavor.ID
	edgeCount int
	minShared int
}

// Build constructs the flavor network from the analyzer's pair-sharing
// matrix, keeping edges with weight >= minShared (minShared < 1 is
// treated as 1: zero-weight pairs are non-edges by definition).
func Build(a *pairing.Analyzer, minShared int) *Network {
	if minShared < 1 {
		minShared = 1
	}
	catalog := a.Catalog()
	n := &Network{
		catalog:   catalog,
		adj:       make(map[flavor.ID][]Edge),
		minShared: minShared,
	}
	for i := 0; i < catalog.Len(); i++ {
		id := flavor.ID(i)
		if catalog.Ingredient(id).HasProfile {
			n.nodes = append(n.nodes, id)
		}
	}
	for i, a1 := range n.nodes {
		for _, b := range n.nodes[i+1:] {
			w := a.Shared(a1, b)
			if w >= minShared {
				n.adj[a1] = append(n.adj[a1], Edge{A: a1, B: b, Weight: w})
				n.adj[b] = append(n.adj[b], Edge{A: b, B: a1, Weight: w})
				n.edgeCount++
			}
		}
	}
	return n
}

// NumNodes returns the number of profiled ingredients.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the number of undirected edges.
func (n *Network) NumEdges() int { return n.edgeCount }

// MinShared returns the edge threshold the network was built with.
func (n *Network) MinShared() int { return n.minShared }

// Degree returns the number of neighbors of id.
func (n *Network) Degree(id flavor.ID) int { return len(n.adj[id]) }

// Strength returns the summed edge weight at id.
func (n *Network) Strength(id flavor.ID) int {
	s := 0
	for _, e := range n.adj[id] {
		s += e.Weight
	}
	return s
}

// Neighbors returns id's edges. The slice is shared; do not mutate.
func (n *Network) Neighbors(id flavor.ID) []Edge { return n.adj[id] }

// Nodes returns the profiled ingredient IDs, ascending. Shared slice.
func (n *Network) Nodes() []flavor.ID { return n.nodes }

// DegreeDistribution returns the degree histogram as parallel slices
// (degrees ascending, counts).
func (n *Network) DegreeDistribution() (degrees, counts []int) {
	hist := make(map[int]int)
	for _, id := range n.nodes {
		hist[n.Degree(id)]++
	}
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// Density returns 2E / (N(N-1)).
func (n *Network) Density() float64 {
	nn := len(n.nodes)
	if nn < 2 {
		return 0
	}
	return 2 * float64(n.edgeCount) / (float64(nn) * float64(nn-1))
}

// ClusteringCoefficient returns the local clustering coefficient of id:
// the fraction of neighbor pairs that are themselves connected.
func (n *Network) ClusteringCoefficient(id flavor.ID) float64 {
	neigh := n.adj[id]
	k := len(neigh)
	if k < 2 {
		return 0
	}
	// Neighbor set for O(1) membership.
	set := make(map[flavor.ID]struct{}, k)
	for _, e := range neigh {
		set[e.B] = struct{}{}
	}
	links := 0
	for _, e := range neigh {
		for _, e2 := range n.adj[e.B] {
			if e2.B > e.B { // count each pair once
				if _, ok := set[e2.B]; ok {
					links++
				}
			}
		}
	}
	return 2 * float64(links) / (float64(k) * float64(k-1))
}

// MeanClustering averages the clustering coefficient over nodes with
// degree >= 2.
func (n *Network) MeanClustering() float64 {
	var sum float64
	count := 0
	for _, id := range n.nodes {
		if n.Degree(id) >= 2 {
			sum += n.ClusteringCoefficient(id)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Backbone extracts the multiscale backbone of the network (Serrano et
// al. disparity filter, the method Ahn et al. used for the flavor
// network figure): an edge survives if its weight is statistically
// significant at level alpha against a uniform null for at least one of
// its endpoints.
func (n *Network) Backbone(alpha float64) []Edge {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	keep := make(map[[2]flavor.ID]Edge)
	canonical := func(e Edge) Edge {
		k := key(e)
		return Edge{A: k[0], B: k[1], Weight: e.Weight}
	}
	for _, id := range n.nodes {
		edges := n.adj[id]
		k := len(edges)
		if k < 2 {
			// Degree-1 nodes keep their only edge (standard convention).
			for _, e := range edges {
				keep[key(e)] = canonical(e)
			}
			continue
		}
		s := float64(n.Strength(id))
		for _, e := range edges {
			p := float64(e.Weight) / s
			// P-value of the disparity filter: (1-p)^(k-1).
			pval := math.Pow(1-p, float64(k-1))
			if pval < alpha {
				keep[key(e)] = canonical(e)
			}
		}
	}
	out := make([]Edge, 0, len(keep))
	for _, e := range keep {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func key(e Edge) [2]flavor.ID {
	if e.A < e.B {
		return [2]flavor.ID{e.A, e.B}
	}
	return [2]flavor.ID{e.B, e.A}
}

// TopPairs returns the k heaviest edges in the network — the strongest
// flavor-sharing ingredient pairs (the "novel flavor pairings" seed
// list the paper's applications section motivates).
func (n *Network) TopPairs(k int) []Edge {
	all := make([]Edge, 0, n.edgeCount)
	seen := make(map[[2]flavor.ID]bool, n.edgeCount)
	for _, id := range n.nodes {
		for _, e := range n.adj[id] {
			kk := key(e)
			if !seen[kk] {
				seen[kk] = true
				all = append(all, Edge{A: kk[0], B: kk[1], Weight: e.Weight})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Weight != all[j].Weight {
			return all[i].Weight > all[j].Weight
		}
		if all[i].A != all[j].A {
			return all[i].A < all[j].A
		}
		return all[i].B < all[j].B
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Prevalence computes the fraction of a cuisine's recipes containing
// each ingredient (Ahn et al.'s prevalence P_i^c).
func Prevalence(store *recipedb.Store, c *recipedb.Cuisine) map[flavor.ID]float64 {
	out := make(map[flavor.ID]float64, len(c.UniqueIngredients))
	total := float64(c.NumRecipes())
	if total == 0 {
		return out
	}
	for id, freq := range c.IngredientFreq {
		out[id] = float64(freq) / total
	}
	return out
}

// Authenticity scores how characteristic each of a cuisine's
// ingredients is relative to the world: prevalence in the cuisine minus
// mean prevalence across the other major regions (Ahn et al.'s relative
// prevalence ΔP_i^c).
func Authenticity(store *recipedb.Store, region recipedb.Region) ([]flavor.ID, []float64, error) {
	if !region.Major() {
		return nil, nil, fmt.Errorf("flavornet: authenticity needs a major region, got %s", region.Code())
	}
	own := Prevalence(store, store.BuildCuisine(region))
	others := make([]map[flavor.ID]float64, 0, recipedb.NumMajorRegions-1)
	for _, r := range recipedb.MajorRegions() {
		if r == region {
			continue
		}
		others = append(others, Prevalence(store, store.BuildCuisine(r)))
	}
	ids := make([]flavor.ID, 0, len(own))
	for id := range own {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	scores := make([]float64, len(ids))
	for i, id := range ids {
		var mean float64
		for _, o := range others {
			mean += o[id]
		}
		mean /= float64(len(others))
		scores[i] = own[id] - mean
	}
	return ids, scores, nil
}

// TopAuthentic returns the k most authentic ingredients of a region in
// descending score order.
func TopAuthentic(store *recipedb.Store, region recipedb.Region, k int) ([]flavor.ID, []float64, error) {
	ids, scores, err := Authenticity(store, region)
	if err != nil {
		return nil, nil, err
	}
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return ids[idx[a]] < ids[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	outIDs := make([]flavor.ID, k)
	outScores := make([]float64, k)
	for i := 0; i < k; i++ {
		outIDs[i] = ids[idx[i]]
		outScores[i] = scores[idx[i]]
	}
	return outIDs, outScores, nil
}
