package flavornet

import (
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
)

func communityNetwork(t *testing.T, minShared int) *Network {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Build(pairing.NewAnalyzer(catalog), minShared)
}

func TestCommunitiesPartitionNodes(t *testing.T) {
	n := communityNetwork(t, 20)
	comms := n.Communities(0)
	if len(comms) == 0 {
		t.Fatal("no communities")
	}
	seen := make(map[flavor.ID]bool)
	total := 0
	for i, c := range comms {
		if c.Size() == 0 {
			t.Errorf("community %d is empty", i)
		}
		for _, id := range c.Members {
			if seen[id] {
				t.Fatalf("ingredient %d in two communities", id)
			}
			seen[id] = true
		}
		total += c.Size()
		// Sorted-by-size order.
		if i > 0 && c.Size() > comms[i-1].Size() {
			t.Error("communities not sorted by size")
		}
	}
	if total != n.NumNodes() {
		t.Errorf("partition covers %d of %d nodes", total, n.NumNodes())
	}
}

func TestCommunitiesDeterministic(t *testing.T) {
	n := communityNetwork(t, 20)
	a := n.Communities(16)
	b := n.Communities(16)
	if len(a) != len(b) {
		t.Fatal("nondeterministic community count")
	}
	for i := range a {
		if len(a[i].Members) != len(b[i].Members) {
			t.Fatalf("community %d size differs", i)
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				t.Fatalf("community %d member %d differs", i, j)
			}
		}
	}
}

func TestCommunitiesFindStructureAtHighThreshold(t *testing.T) {
	// At a strict shared-compound threshold the network decomposes into
	// more than one community (theme structure becomes visible).
	n := communityNetwork(t, 60)
	comms := n.Communities(0)
	if len(comms) < 2 {
		t.Skipf("network too dense for multiple communities (%d)", len(comms))
	}
	q := n.Modularity(comms)
	if q < 0 {
		t.Errorf("modularity %g negative for detected partition", q)
	}
}

func TestModularityBaselines(t *testing.T) {
	n := communityNetwork(t, 20)
	// The all-in-one partition has modularity exactly 0... minus the
	// squared strength fraction of the single community (=1), so Q = 0.
	all := Community{Members: n.Nodes()}
	q := n.Modularity([]Community{all})
	if q > 1e-9 || q < -1e-9 {
		t.Errorf("single-community modularity = %g, want 0", q)
	}
	// Singleton partition is strictly worse than detected communities.
	var singletons []Community
	for _, id := range n.Nodes() {
		singletons = append(singletons, Community{Members: []flavor.ID{id}})
	}
	qSingle := n.Modularity(singletons)
	detected := n.Communities(0)
	qDetected := n.Modularity(detected)
	if qDetected < qSingle {
		t.Errorf("detected partition Q=%g worse than singletons Q=%g", qDetected, qSingle)
	}
}

func TestCommunitiesEmptyNetwork(t *testing.T) {
	// A threshold beyond any pair's sharing yields a network with zero
	// edges; every node is its own community.
	n := communityNetwork(t, 1<<20)
	comms := n.Communities(4)
	if len(comms) != n.NumNodes() {
		t.Errorf("edgeless network: %d communities, want %d", len(comms), n.NumNodes())
	}
	if q := n.Modularity(comms); q != 0 {
		t.Errorf("edgeless modularity = %g", q)
	}
}
