package flavornet

import (
	"math"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

var (
	testCatalog  *flavor.Catalog
	testAnalyzer *pairing.Analyzer
	testNet      *Network
)

func init() {
	var err error
	testCatalog, err = flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	testAnalyzer = pairing.NewAnalyzer(testCatalog)
	testNet = Build(testAnalyzer, 5)
}

func TestBuildBasics(t *testing.T) {
	if testNet.NumNodes() == 0 || testNet.NumEdges() == 0 {
		t.Fatalf("degenerate network: %d nodes %d edges", testNet.NumNodes(), testNet.NumEdges())
	}
	// Only profiled ingredients are nodes.
	for _, id := range testNet.Nodes() {
		if !testCatalog.Ingredient(id).HasProfile {
			t.Fatalf("no-profile ingredient %q is a node", testCatalog.Ingredient(id).Name)
		}
	}
	if testNet.MinShared() != 5 {
		t.Fatal("threshold not recorded")
	}
	// minShared < 1 clamps to 1.
	n0 := Build(testAnalyzer, 0)
	if n0.MinShared() != 1 {
		t.Fatal("minShared clamp failed")
	}
}

func TestEdgesRespectThreshold(t *testing.T) {
	for _, id := range testNet.Nodes()[:50] {
		for _, e := range testNet.Neighbors(id) {
			if e.Weight < 5 {
				t.Fatalf("edge %v below threshold", e)
			}
			if got := testAnalyzer.Shared(e.A, e.B); got != e.Weight {
				t.Fatalf("edge weight %d != shared %d", e.Weight, got)
			}
		}
	}
}

func TestDegreeAndStrengthSymmetric(t *testing.T) {
	// Sum of degrees = 2E.
	total := 0
	for _, id := range testNet.Nodes() {
		total += testNet.Degree(id)
	}
	if total != 2*testNet.NumEdges() {
		t.Fatalf("degree sum %d != 2E %d", total, 2*testNet.NumEdges())
	}
	// Strength is positive wherever degree is.
	for _, id := range testNet.Nodes()[:50] {
		if testNet.Degree(id) > 0 && testNet.Strength(id) < testNet.Degree(id)*5 {
			t.Fatalf("strength below degree × threshold for %d", id)
		}
	}
}

func TestDegreeDistribution(t *testing.T) {
	degrees, counts := testNet.DegreeDistribution()
	if len(degrees) != len(counts) || len(degrees) == 0 {
		t.Fatal("bad distribution shape")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != testNet.NumNodes() {
		t.Fatalf("distribution covers %d of %d nodes", total, testNet.NumNodes())
	}
	for i := 1; i < len(degrees); i++ {
		if degrees[i-1] >= degrees[i] {
			t.Fatal("degrees not ascending")
		}
	}
}

func TestDensityRange(t *testing.T) {
	d := testNet.Density()
	if d <= 0 || d > 1 {
		t.Fatalf("density %v", d)
	}
	// Raising the threshold can only lower the density.
	sparse := Build(testAnalyzer, 25)
	if sparse.Density() > d {
		t.Fatal("higher threshold increased density")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	var any bool
	for _, id := range testNet.Nodes()[:80] {
		c := testNet.ClusteringCoefficient(id)
		if c < 0 || c > 1 {
			t.Fatalf("clustering %v outside [0,1]", c)
		}
		if c > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no clustering anywhere — implausible for a flavor network")
	}
	mc := testNet.MeanClustering()
	if mc <= 0 || mc > 1 {
		t.Fatalf("mean clustering %v", mc)
	}
}

func TestBackbone(t *testing.T) {
	bb := testNet.Backbone(0.05)
	if len(bb) == 0 {
		t.Fatal("empty backbone")
	}
	if len(bb) >= testNet.NumEdges() {
		t.Fatalf("backbone (%d) did not prune the network (%d)", len(bb), testNet.NumEdges())
	}
	// Sorted, deduplicated, canonical A < B.
	for i, e := range bb {
		if e.A >= e.B {
			t.Fatalf("edge %v not canonical", e)
		}
		if i > 0 && (bb[i-1].A > e.A || (bb[i-1].A == e.A && bb[i-1].B >= e.B)) {
			t.Fatal("backbone not sorted")
		}
	}
	// Tighter alpha prunes at least as much.
	tight := testNet.Backbone(0.005)
	if len(tight) > len(bb) {
		t.Fatal("tighter alpha kept more edges")
	}
	// Invalid alpha falls back to default rather than exploding.
	if len(testNet.Backbone(-1)) == 0 {
		t.Fatal("alpha fallback broken")
	}
}

func TestTopPairs(t *testing.T) {
	top := testNet.TopPairs(10)
	if len(top) != 10 {
		t.Fatalf("got %d pairs", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Fatal("pairs not descending by weight")
		}
	}
	// No duplicates in canonical form.
	seen := map[[2]flavor.ID]bool{}
	for _, e := range top {
		k := [2]flavor.ID{e.A, e.B}
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
	// Clamp beyond edge count.
	all := testNet.TopPairs(1 << 30)
	if len(all) != testNet.NumEdges() {
		t.Fatalf("TopPairs clamp: %d vs %d", len(all), testNet.NumEdges())
	}
}

func buildCorpus(t *testing.T) *recipedb.Store {
	t.Helper()
	s := recipedb.NewStore(testCatalog)
	add := func(region recipedb.Region, names ...string) {
		ids := make([]flavor.ID, len(names))
		for i, n := range names {
			id, ok := testCatalog.Lookup(n)
			if !ok {
				t.Fatalf("missing %q", n)
			}
			ids[i] = id
		}
		if _, err := s.Add("r", region, recipedb.AllRecipes, ids); err != nil {
			t.Fatal(err)
		}
	}
	// Make garam masala exclusively Indian; tomato global.
	add(recipedb.IndianSubcontinent, "garam masala", "tomato", "onion")
	add(recipedb.IndianSubcontinent, "garam masala", "lentil", "ghee")
	add(recipedb.Italy, "tomato", "basil")
	add(recipedb.France, "tomato", "butter")
	return s
}

func TestPrevalence(t *testing.T) {
	s := buildCorpus(t)
	c := s.BuildCuisine(recipedb.IndianSubcontinent)
	prev := Prevalence(s, c)
	gm, _ := testCatalog.Lookup("garam masala")
	tomato, _ := testCatalog.Lookup("tomato")
	if prev[gm] != 1.0 {
		t.Fatalf("garam masala prevalence %v, want 1", prev[gm])
	}
	if prev[tomato] != 0.5 {
		t.Fatalf("tomato prevalence %v, want 0.5", prev[tomato])
	}
	// Empty cuisine yields empty map.
	if got := Prevalence(s, s.BuildCuisine(recipedb.Korea)); len(got) != 0 {
		t.Fatal("empty cuisine should give empty prevalence")
	}
}

func TestAuthenticity(t *testing.T) {
	s := buildCorpus(t)
	ids, scores, err := Authenticity(s, recipedb.IndianSubcontinent)
	if err != nil {
		t.Fatal(err)
	}
	scoreOf := map[flavor.ID]float64{}
	for i, id := range ids {
		scoreOf[id] = scores[i]
	}
	gm, _ := testCatalog.Lookup("garam masala")
	tomato, _ := testCatalog.Lookup("tomato")
	// garam masala: 1.0 here, 0 elsewhere -> score 1.0.
	if math.Abs(scoreOf[gm]-1.0) > 1e-9 {
		t.Fatalf("garam masala authenticity %v", scoreOf[gm])
	}
	// tomato appears in two other regions too, so its score is lower.
	if scoreOf[tomato] >= scoreOf[gm] {
		t.Fatalf("tomato (%v) should be less authentic than garam masala (%v)",
			scoreOf[tomato], scoreOf[gm])
	}
	if _, _, err := Authenticity(s, recipedb.World); err == nil {
		t.Fatal("World should be rejected")
	}
}

func TestTopAuthentic(t *testing.T) {
	s := buildCorpus(t)
	ids, scores, err := TopAuthentic(s, recipedb.IndianSubcontinent, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || len(scores) != 2 {
		t.Fatalf("got %d/%d", len(ids), len(scores))
	}
	if scores[0] < scores[1] {
		t.Fatal("not descending")
	}
	gm, _ := testCatalog.Lookup("garam masala")
	found := ids[0] == gm || ids[1] == gm
	if !found {
		t.Fatal("garam masala should rank among top authentic ingredients")
	}
	// k beyond length clamps.
	all, _, err := TopAuthentic(s, recipedb.IndianSubcontinent, 1000)
	if err != nil || len(all) == 0 {
		t.Fatal("clamp failed")
	}
}
