package flavornet

import (
	"sort"

	"culinary/internal/flavor"
)

// Community is one group of ingredients detected in the flavor network.
type Community struct {
	// Members are the ingredient IDs, sorted.
	Members []flavor.ID
}

// Size returns the number of member ingredients.
func (c Community) Size() int { return len(c.Members) }

// Communities partitions the network with deterministic weighted label
// propagation: every node starts in its own community; in each round
// nodes (visited in ID order) adopt the label with the greatest total
// edge weight among their neighbors, ties broken by the smallest label.
// The process stops when a round changes nothing or after maxRounds.
// Communities of ubiquitous backbone molecules mirror the flavor-theme
// structure of the catalog; Ahn et al. report analogous modules
// (fruits/dairy vs meat clusters) in the empirical network.
func (n *Network) Communities(maxRounds int) []Community {
	if maxRounds <= 0 {
		maxRounds = 32
	}
	label := make(map[flavor.ID]int, len(n.nodes))
	order := append([]flavor.ID(nil), n.nodes...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i, id := range order {
		label[id] = i
	}

	weight := make(map[int]int) // label -> accumulated edge weight, reused per node
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, id := range order {
			if len(n.adj[id]) == 0 {
				continue
			}
			for k := range weight {
				delete(weight, k)
			}
			for _, e := range n.adj[id] {
				other := e.A
				if other == id {
					other = e.B
				}
				weight[label[other]] += e.Weight
			}
			best, bestW := label[id], -1
			// Deterministic choice: highest weight, then smallest label.
			labels := make([]int, 0, len(weight))
			for l := range weight {
				labels = append(labels, l)
			}
			sort.Ints(labels)
			for _, l := range labels {
				if weight[l] > bestW {
					best, bestW = l, weight[l]
				}
			}
			if best != label[id] {
				label[id] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	groups := make(map[int][]flavor.ID)
	for _, id := range order {
		groups[label[id]] = append(groups[label[id]], id)
	}
	keys := make([]int, 0, len(groups))
	for l := range groups {
		keys = append(keys, l)
	}
	// Largest first; ties by label for determinism.
	sort.Slice(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})
	out := make([]Community, len(keys))
	for i, l := range keys {
		out[i] = Community{Members: groups[l]}
	}
	return out
}

// Modularity computes the weighted Newman modularity Q of a partition —
// the standard quality measure for community structure. Q near 0 means
// the partition is no better than random; dense-module networks score
// higher.
func (n *Network) Modularity(communities []Community) float64 {
	commOf := make(map[flavor.ID]int, len(n.nodes))
	for ci, c := range communities {
		for _, id := range c.Members {
			commOf[id] = ci
		}
	}
	var total float64 // 2m: twice the total edge weight
	strength := make(map[flavor.ID]float64, len(n.nodes))
	for _, id := range n.nodes {
		for _, e := range n.adj[id] {
			strength[id] += float64(e.Weight)
		}
		total += strength[id]
	}
	if total == 0 {
		return 0
	}
	var q float64
	for _, id := range n.nodes {
		for _, e := range n.adj[id] {
			other := e.A
			if other == id {
				other = e.B
			}
			if commOf[id] == commOf[other] {
				q += float64(e.Weight)
			}
		}
	}
	q /= total
	var expected float64
	sumPerComm := make(map[int]float64)
	for id, s := range strength {
		sumPerComm[commOf[id]] += s
	}
	for _, s := range sumPerComm {
		expected += (s / total) * (s / total)
	}
	return q - expected
}
