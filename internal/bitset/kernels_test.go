package bitset

import (
	"testing"

	"culinary/internal/rng"
)

func randomSet(universe int, fill int, src *rng.Source) *Set {
	s := New(universe)
	for i := 0; i < fill; i++ {
		s.Add(src.Intn(universe))
	}
	return s
}

// TestIntersectionCountManyMatchesPairwise checks the batched kernel
// against the scalar IntersectionCount across universes that exercise
// the unrolled body (multiples of 4 words), the remainder loop, and the
// single-word case.
func TestIntersectionCountManyMatchesPairwise(t *testing.T) {
	src := rng.New(42)
	for _, universe := range []int{1, 63, 64, 65, 256, 300, 1024, 1104} {
		s := randomSet(universe, universe/3+1, src)
		targets := make([]*Set, 37)
		for i := range targets {
			targets[i] = randomSet(universe, src.Intn(universe)+1, src)
		}
		out := make([]int32, len(targets))
		s.IntersectionCountMany(targets, out)
		for i, tg := range targets {
			if want := s.IntersectionCount(tg); int(out[i]) != want {
				t.Fatalf("universe %d target %d: batched %d != pairwise %d",
					universe, i, out[i], want)
			}
		}
	}
}

// TestIntersectionCountManyNaiveReference cross-checks the unrolled word
// loop against a naive membership count.
func TestIntersectionCountManyNaiveReference(t *testing.T) {
	src := rng.New(7)
	const universe = 517
	s := randomSet(universe, 120, src)
	tg := randomSet(universe, 200, src)
	naive := 0
	for i := 0; i < universe; i++ {
		if s.Contains(i) && tg.Contains(i) {
			naive++
		}
	}
	var out [1]int32
	s.IntersectionCountMany([]*Set{tg}, out[:])
	if int(out[0]) != naive {
		t.Fatalf("kernel %d != naive %d", out[0], naive)
	}
}

func TestIntersectionCountManyEmptyTargets(t *testing.T) {
	New(128).IntersectionCountMany(nil, nil) // must not panic
}

func TestIntersectionCountManyUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	New(64).IntersectionCountMany([]*Set{New(128)}, make([]int32, 1))
}

func TestIntersectionCountManyShortOutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short out slice")
		}
	}()
	New(64).IntersectionCountMany([]*Set{New(64), New(64)}, make([]int32, 1))
}
