// Package bitset implements fixed-universe packed bitsets.
//
// Flavor profiles are sets of molecule identifiers drawn from a universe
// of a few thousand molecules. The food-pairing score is dominated by
// pairwise intersection cardinalities |F(i) ∩ F(j)| computed across
// hundreds of thousands of randomized recipes, so profiles are stored as
// packed uint64 words and intersections are popcounted word-wise.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a bitset over a fixed universe [0, Universe). The zero value is
// an empty set over an empty universe; construct with New.
type Set struct {
	words    []uint64
	universe int
}

// New creates an empty set over the universe [0, universe).
func New(universe int) *Set {
	if universe < 0 {
		panic("bitset: negative universe")
	}
	return &Set{
		words:    make([]uint64, (universe+63)/64),
		universe: universe,
	}
}

// FromMembers creates a set over the given universe containing the listed
// members. Members outside the universe cause a panic, surfacing indexing
// bugs early rather than silently truncating profiles.
func FromMembers(universe int, members []int) *Set {
	s := New(universe)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Universe returns the size of the set's universe.
func (s *Set) Universe() int { return s.universe }

// Add inserts element i. It panics if i is outside the universe.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Remove deletes element i. It panics if i is outside the universe.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Contains reports whether element i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.universe {
		return false
	}
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.universe {
		panic(fmt.Sprintf("bitset: element %d outside universe [0,%d)", i, s.universe))
	}
}

// Count returns the cardinality of the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IntersectionCount returns |s ∩ t| without allocating. The sets must
// share a universe size; mismatched universes panic because they indicate
// profiles built against different molecule catalogs.
func (s *Set) IntersectionCount(t *Set) int {
	if s.universe != t.universe {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
	}
	return intersectionCountWords(s.words, t.words)
}

// UnionCount returns |s ∪ t| without allocating.
func (s *Set) UnionCount(t *Set) int {
	if s.universe != t.universe {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
	}
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w | t.words[i])
	}
	return n
}

// Jaccard returns |s∩t| / |s∪t|, or 0 when both sets are empty.
func (s *Set) Jaccard(t *Set) float64 {
	u := s.UnionCount(t)
	if u == 0 {
		return 0
	}
	return float64(s.IntersectionCount(t)) / float64(u)
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	if s.universe != t.universe {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
	}
	out := New(s.universe)
	for i := range s.words {
		out.words[i] = s.words[i] | t.words[i]
	}
	return out
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	if s.universe != t.universe {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
	}
	out := New(s.universe)
	for i := range s.words {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

// Difference returns a new set s \ t.
func (s *Set) Difference(t *Set) *Set {
	if s.universe != t.universe {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
	}
	out := New(s.universe)
	for i := range s.words {
		out.words[i] = s.words[i] &^ t.words[i]
	}
	return out
}

// UnionInPlace adds every member of t to s.
func (s *Set) UnionInPlace(t *Set) {
	if s.universe != t.universe {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := New(s.universe)
	copy(out.words, s.words)
	return out
}

// Equal reports whether s and t have the same universe and members.
func (s *Set) Equal(t *Set) bool {
	if s.universe != t.universe {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the set has no members.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Members returns the elements of the set in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every member in ascending order. Iteration stops
// if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
