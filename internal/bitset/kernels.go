package bitset

import (
	"fmt"
	"math/bits"
)

// This file holds the batched intersection kernels behind the pairing
// analyzer's shared-compound matrix. The row-vs-rows shape matters: one
// profile's words stay hot in cache while the kernel streams the other
// rows past them, and the popcount loop is unrolled four words at a time
// so the compiler keeps the accumulators in registers instead of
// round-tripping a single counter through a loop-carried dependency.

// intersectionCountWords returns the popcount of a ∩ b for two word
// slices of equal length.
func intersectionCountWords(a, b []uint64) int {
	var c0, c1, c2, c3 int
	i := 0
	// The bounds hint lets the compiler elide per-element checks in the
	// unrolled body.
	if len(a) == len(b) {
		for ; i+4 <= len(a); i += 4 {
			c0 += bits.OnesCount64(a[i] & b[i])
			c1 += bits.OnesCount64(a[i+1] & b[i+1])
			c2 += bits.OnesCount64(a[i+2] & b[i+2])
			c3 += bits.OnesCount64(a[i+3] & b[i+3])
		}
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i] & b[i])
	}
	return c0 + c1 + c2 + c3
}

// IntersectionCountMany computes |s ∩ t| for every t in targets and
// writes the counts into out, which must be at least len(targets) long.
// It is the batched row-vs-rows form of IntersectionCount: s's words are
// loaded once and streamed against each target, which is substantially
// faster than len(targets) independent IntersectionCount calls when
// building all pairings of one profile against a block of others.
//
// Universe mismatches panic exactly as IntersectionCount does; a nil
// target panics (nil sets never occur in a built catalog).
func (s *Set) IntersectionCountMany(targets []*Set, out []int32) {
	if len(out) < len(targets) {
		panic(fmt.Sprintf("bitset: out length %d < %d targets", len(out), len(targets)))
	}
	words := s.words
	for k, t := range targets {
		if t.universe != s.universe {
			panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.universe, t.universe))
		}
		out[k] = int32(intersectionCountWords(words, t.words))
	}
}
