package bitset

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestContainsOutsideUniverse(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Fatal("Contains should be false outside the universe")
	}
}

func TestAddPanicsOutsideUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add outside universe should panic")
		}
	}()
	New(10).Add(10)
}

func TestNewPanicsNegativeUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative universe should panic")
		}
	}()
	New(-1)
}

func TestFromMembersAndMembersRoundTrip(t *testing.T) {
	members := []int{5, 3, 99, 64, 0}
	s := FromMembers(100, members)
	got := s.Members()
	want := append([]int(nil), members...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestIntersectionCount(t *testing.T) {
	a := FromMembers(200, []int{1, 2, 3, 100, 150})
	b := FromMembers(200, []int{2, 3, 4, 150, 199})
	if got := a.IntersectionCount(b); got != 3 {
		t.Fatalf("IntersectionCount = %d, want 3", got)
	}
	if got := b.IntersectionCount(a); got != 3 {
		t.Fatalf("IntersectionCount not symmetric: %d", got)
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("universe mismatch should panic")
		}
	}()
	New(10).IntersectionCount(New(11))
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromMembers(70, []int{1, 2, 3, 65})
	b := FromMembers(70, []int{3, 4, 65, 69})
	u := a.Union(b)
	i := a.Intersect(b)
	d := a.Difference(b)
	if got := u.Members(); len(got) != 6 {
		t.Fatalf("union %v", got)
	}
	wantI := []int{3, 65}
	gotI := i.Members()
	if len(gotI) != 2 || gotI[0] != wantI[0] || gotI[1] != wantI[1] {
		t.Fatalf("intersect %v want %v", gotI, wantI)
	}
	wantD := []int{1, 2}
	gotD := d.Members()
	if len(gotD) != 2 || gotD[0] != wantD[0] || gotD[1] != wantD[1] {
		t.Fatalf("difference %v want %v", gotD, wantD)
	}
}

func TestJaccard(t *testing.T) {
	a := FromMembers(10, []int{1, 2})
	b := FromMembers(10, []int{2, 3})
	if got := a.Jaccard(b); got != 1.0/3 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	empty := New(10)
	if got := empty.Jaccard(New(10)); got != 0 {
		t.Fatalf("Jaccard of empties = %v, want 0", got)
	}
}

func TestUnionInPlaceAndClone(t *testing.T) {
	a := FromMembers(100, []int{1, 2})
	c := a.Clone()
	b := FromMembers(100, []int{50, 99})
	a.UnionInPlace(b)
	if a.Count() != 4 {
		t.Fatalf("after UnionInPlace count = %d", a.Count())
	}
	if c.Count() != 2 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqualAndIsEmpty(t *testing.T) {
	a := FromMembers(100, []int{10, 20})
	b := FromMembers(100, []int{10, 20})
	if !a.Equal(b) {
		t.Fatal("equal sets not Equal")
	}
	b.Add(30)
	if a.Equal(b) {
		t.Fatal("unequal sets Equal")
	}
	if !New(100).IsEmpty() {
		t.Fatal("fresh set not empty")
	}
	if a.IsEmpty() {
		t.Fatal("populated set reported empty")
	}
	if a.Equal(FromMembers(101, []int{10, 20})) {
		t.Fatal("sets with different universes should not be Equal")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromMembers(100, []int{1, 2, 3, 4, 5})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Fatalf("early stop failed, saw %v", seen)
	}
}

func TestString(t *testing.T) {
	s := FromMembers(10, []int{1, 3})
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// normalize maps arbitrary int8 test vectors into valid members of a
// universe of size 256.
func normalize(xs []uint8) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

func TestPropertyIntersectionBounds(t *testing.T) {
	// |a∩b| <= min(|a|,|b|) and |a∪b| = |a|+|b|-|a∩b|.
	f := func(xs, ys []uint8) bool {
		a := FromMembers(256, normalize(xs))
		b := FromMembers(256, normalize(ys))
		inter := a.IntersectionCount(b)
		union := a.UnionCount(b)
		ca, cb := a.Count(), b.Count()
		if inter > ca || inter > cb {
			return false
		}
		return union == ca+cb-inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionCommutesAndIdempotent(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := FromMembers(256, normalize(xs))
		b := FromMembers(256, normalize(ys))
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		return a.Union(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	// a \ (b ∪ c) == (a \ b) ∩ (a \ c)
	f := func(xs, ys, zs []uint8) bool {
		a := FromMembers(256, normalize(xs))
		b := FromMembers(256, normalize(ys))
		c := FromMembers(256, normalize(zs))
		left := a.Difference(b.Union(c))
		right := a.Difference(b).Intersect(a.Difference(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMembersRoundTrip(t *testing.T) {
	f := func(xs []uint8) bool {
		a := FromMembers(256, normalize(xs))
		b := FromMembers(256, a.Members())
		return a.Equal(b) && a.Count() == len(a.Members())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
