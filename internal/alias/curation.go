package alias

import (
	"sort"
	"strings"

	"culinary/internal/textproc"
)

// CurationEntry is one recurring unmatched n-gram surfaced for manual
// review.
type CurationEntry struct {
	NGram string
	Count int
}

// CurationReport aggregates the partial and unrecognized residue of a
// batch of phrases, implementing §IV.A's curation loop: "N-grams (up to
// 6-grams) were created on the basis of partial and unrecognized
// ingredients to identify commonly occurring ingredients which were
// either not present in the database or were variations of existing
// entities."
type CurationReport struct {
	// TotalPhrases is the number of phrases examined.
	TotalPhrases int
	// Matched, Partial, Unrecognized count phrase outcomes.
	Matched, Partial, Unrecognized int
	// Fuzzy counts matches that required edit-distance correction.
	Fuzzy int
	// Candidates lists recurring unmatched n-grams in descending count
	// order (ties lexical).
	Candidates []CurationEntry
}

// MatchRate returns the fraction of phrases fully or partially matched.
func (r *CurationReport) MatchRate() float64 {
	if r.TotalPhrases == 0 {
		return 0
	}
	return float64(r.Matched+r.Partial) / float64(r.TotalPhrases)
}

// Curate builds a curation report from a batch of matches. minCount
// filters candidate n-grams that occur fewer times.
func Curate(matches []Match, minCount int) *CurationReport {
	rep := &CurationReport{TotalPhrases: len(matches)}
	counts := make(map[string]int)
	for _, m := range matches {
		switch m.Status {
		case Matched:
			rep.Matched++
		case Partial:
			rep.Partial++
		case Unrecognized:
			rep.Unrecognized++
		}
		if m.Fuzzy {
			rep.Fuzzy++
		}
		if m.Status == Matched || len(m.Residual) == 0 {
			continue
		}
		for _, gram := range textproc.NGrams(m.Residual, 1, 6) {
			if len(gram) < 3 {
				continue
			}
			if isAllGeneric(gram) {
				continue
			}
			counts[gram]++
		}
	}
	for gram, c := range counts {
		if c >= minCount {
			rep.Candidates = append(rep.Candidates, CurationEntry{NGram: gram, Count: c})
		}
	}
	sort.Slice(rep.Candidates, func(i, j int) bool {
		a, b := rep.Candidates[i], rep.Candidates[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.NGram < b.NGram
	})
	return rep
}

func isAllGeneric(gram string) bool {
	for _, tok := range strings.Fields(gram) {
		if !textproc.IsGenericFoodWord(tok) {
			return false
		}
	}
	return true
}
