package alias

import (
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/synth"
	"culinary/internal/textproc"
)

var testCatalog = func() *flavor.Catalog {
	c, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return c
}()

func lookup(t *testing.T, name string) flavor.ID {
	t.Helper()
	id, ok := testCatalog.Lookup(name)
	if !ok {
		t.Fatalf("catalog missing %q", name)
	}
	return id
}

func TestResolvePaperExample(t *testing.T) {
	a := New(testCatalog)
	// The phrase the paper uses as its worked example.
	m := a.Resolve("2 jalapeno peppers, roasted and slit")
	if m.Status != Matched {
		t.Fatalf("status = %s, residual %v", m.Status, m.Residual)
	}
	if m.Ingredient != lookup(t, "jalapeno") {
		t.Fatalf("matched %q", testCatalog.Ingredient(m.Ingredient).Name)
	}
}

func TestResolveExactMultiword(t *testing.T) {
	a := New(testCatalog)
	cases := []struct{ phrase, want string }{
		{"1/2 cup extra virgin olive oil", "olive oil"},
		{"2 tablespoons soy sauce", "soy sauce"},
		{"1 cup freshly grated parmesan cheese", "parmesan cheese"},
		{"3 cloves garlic, minced", "garlic"},
		{"1 pound fresh tomatoes, diced", "tomato"},
		{"2 cups chopped red onions", "red onion"},
		{"a pinch of saffron", "saffron"},
		{"1 teaspoon garam masala", "garam masala"},
		{"monosodium glutamate to taste", "monosodium glutamate"},
	}
	for _, tc := range cases {
		m := a.Resolve(tc.phrase)
		if m.Status == Unrecognized {
			t.Errorf("%q unrecognized", tc.phrase)
			continue
		}
		if m.Ingredient != lookup(t, tc.want) {
			t.Errorf("%q matched %q, want %q", tc.phrase,
				testCatalog.Ingredient(m.Ingredient).Name, tc.want)
		}
	}
}

func TestResolveSynonyms(t *testing.T) {
	a := New(testCatalog)
	cases := []struct{ phrase, want string }{
		{"2 aubergines, sliced", "eggplant"},
		{"1 cup garbanzo beans", "chickpea"},
		{"3 spring onions", "scallion"},
		{"100 ml double cream", "heavy cream"},
		{"1 tsp hing", "asafoetida"},
		{"2 shots of whisky", "whiskey"},
	}
	for _, tc := range cases {
		m := a.Resolve(tc.phrase)
		if m.Status == Unrecognized {
			t.Errorf("%q unrecognized", tc.phrase)
			continue
		}
		if m.Ingredient != lookup(t, tc.want) {
			t.Errorf("%q matched %q, want %q", tc.phrase,
				testCatalog.Ingredient(m.Ingredient).Name, tc.want)
		}
	}
}

func TestResolveFuzzySpelling(t *testing.T) {
	a := New(testCatalog)
	// One-edit misspellings should be absorbed.
	cases := []struct{ phrase, want string }{
		{"2 cups brocoli", "broccoli"},
		{"1 tsp tumeric", "turmeric"},
		{"fresh cilantr", "cilantro"},
	}
	for _, tc := range cases {
		m := a.Resolve(tc.phrase)
		if m.Status == Unrecognized {
			t.Errorf("%q unrecognized", tc.phrase)
			continue
		}
		if m.Ingredient != lookup(t, tc.want) {
			t.Errorf("%q matched %q, want %q", tc.phrase,
				testCatalog.Ingredient(m.Ingredient).Name, tc.want)
		}
		if !m.Fuzzy {
			t.Errorf("%q should be flagged fuzzy", tc.phrase)
		}
	}
}

func TestFuzzyDisabled(t *testing.T) {
	a := New(testCatalog, WithEditBudget(0))
	m := a.Resolve("2 cups brocoli")
	if m.Status != Unrecognized {
		t.Fatalf("fuzzy disabled but status = %s", m.Status)
	}
}

func TestResolvePartial(t *testing.T) {
	a := New(testCatalog)
	// "jalapeno" matches; "wontons" is residue (not in catalog).
	m := a.Resolve("2 jalapeno wontons")
	if m.Status != Partial {
		t.Fatalf("status = %s (%+v)", m.Status, m)
	}
	if m.Ingredient != lookup(t, "jalapeno") {
		t.Fatalf("matched %q", testCatalog.Ingredient(m.Ingredient).Name)
	}
	if len(m.Residual) == 0 {
		t.Fatal("partial match should carry residual tokens")
	}
}

func TestResolveUnrecognized(t *testing.T) {
	a := New(testCatalog)
	for _, phrase := range []string{
		"2 cups xyzzy frobnitz",
		"",
		"1/2 3/4",
		"finely chopped",
	} {
		m := a.Resolve(phrase)
		if m.Status != Unrecognized {
			t.Errorf("%q: status = %s, matched %v", phrase, m.Status, m.MatchedText)
		}
		if m.Ingredient != flavor.Invalid {
			t.Errorf("%q: ingredient should be Invalid", phrase)
		}
	}
}

func TestGenericWordAloneRejected(t *testing.T) {
	a := New(testCatalog)
	// "juice" alone is generic (§III.B removed generic entities); it must
	// not match anything even though "lemon juice" etc. exist.
	m := a.Resolve("1 cup juice")
	if m.Status == Matched {
		t.Fatalf("lone generic word matched %q", testCatalog.Ingredient(m.Ingredient).Name)
	}
	// But the full name still matches.
	m = a.Resolve("1 cup lemon juice")
	if m.Status != Matched || m.Ingredient != lookup(t, "lemon juice") {
		t.Fatalf("lemon juice failed: %+v", m)
	}
}

func TestLongestMatchWins(t *testing.T) {
	a := New(testCatalog)
	// "sesame oil" must beat "sesame seed"-style unigram fallbacks and
	// plain "oil" (generic).
	m := a.Resolve("2 tsp toasted sesame oil")
	if m.Status == Unrecognized {
		t.Fatal("unrecognized")
	}
	if m.Ingredient != lookup(t, "sesame oil") {
		t.Fatalf("matched %q, want sesame oil", testCatalog.Ingredient(m.Ingredient).Name)
	}
	// "chicken stock" (compound) vs "chicken".
	m = a.Resolve("4 cups chicken stock")
	if m.Ingredient != lookup(t, "chicken stock") {
		t.Fatalf("matched %q, want chicken stock", testCatalog.Ingredient(m.Ingredient).Name)
	}
}

func TestResolveAllAndVocabulary(t *testing.T) {
	a := New(testCatalog)
	if a.VocabularySize() < testCatalog.Len()/2 {
		t.Fatalf("vocabulary suspiciously small: %d", a.VocabularySize())
	}
	ms := a.ResolveAll([]string{"2 cups milk", "1 egg"})
	if len(ms) != 2 || ms[0].Status == Unrecognized || ms[1].Status == Unrecognized {
		t.Fatalf("ResolveAll = %+v", ms)
	}
}

func TestStatusString(t *testing.T) {
	if Matched.String() != "matched" || Partial.String() != "partial" ||
		Unrecognized.String() != "unrecognized" || Status(9).String() != "invalid" {
		t.Fatal("status names wrong")
	}
}

func TestEndToEndAccuracyOnSynthesizedPhrases(t *testing.T) {
	// The §IV.A pipeline must recover the true entity from realistic
	// noisy phrases with high accuracy.
	a := New(testCatalog)
	ps := synth.NewPhraseSynthesizer(testCatalog, synth.DefaultPhraseConfig())
	batch := ps.RenderBatch(2000)
	correct, resolved := 0, 0
	for _, lp := range batch {
		m := a.Resolve(lp.Phrase)
		if m.Status == Unrecognized {
			continue
		}
		resolved++
		if m.Ingredient == lp.Truth {
			correct++
		}
	}
	resolveRate := float64(resolved) / float64(len(batch))
	if resolveRate < 0.9 {
		t.Fatalf("resolve rate %.3f < 0.9", resolveRate)
	}
	precision := float64(correct) / float64(resolved)
	if precision < 0.9 {
		t.Fatalf("precision %.3f < 0.9", precision)
	}
	t.Logf("resolve rate %.3f, precision %.3f", resolveRate, precision)
}

func TestCurate(t *testing.T) {
	a := New(testCatalog)
	phrases := []string{
		"2 cups milk",
		"1 xyzzy foo",
		"2 xyzzy foo",
		"3 xyzzy foo",
		"1 cup miso",
	}
	rep := Curate(a.ResolveAll(phrases), 2)
	if rep.TotalPhrases != 5 {
		t.Fatalf("TotalPhrases = %d", rep.TotalPhrases)
	}
	if rep.Matched < 2 {
		t.Fatalf("Matched = %d", rep.Matched)
	}
	if rep.Unrecognized != 3 {
		t.Fatalf("Unrecognized = %d (%+v)", rep.Unrecognized, rep)
	}
	// "xyzzy foo" recurs 3 times and must surface as a candidate.
	found := false
	for _, c := range rep.Candidates {
		if c.NGram == "xyzzy foo" && c.Count == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("recurring n-gram not surfaced: %+v", rep.Candidates)
	}
	if rep.MatchRate() <= 0 || rep.MatchRate() > 1 {
		t.Fatalf("MatchRate = %v", rep.MatchRate())
	}
}

func TestCurateEmpty(t *testing.T) {
	rep := Curate(nil, 1)
	if rep.TotalPhrases != 0 || rep.MatchRate() != 0 || len(rep.Candidates) != 0 {
		t.Fatalf("empty curation: %+v", rep)
	}
}

func TestCurateCandidatesSorted(t *testing.T) {
	a := New(testCatalog)
	phrases := []string{
		"1 zzz aaa", "2 zzz aaa", "1 yyy bbb", "2 yyy bbb", "3 yyy bbb",
	}
	rep := Curate(a.ResolveAll(phrases), 2)
	for i := 1; i < len(rep.Candidates); i++ {
		prev, cur := rep.Candidates[i-1], rep.Candidates[i]
		if prev.Count < cur.Count {
			t.Fatalf("candidates not sorted by count: %+v", rep.Candidates)
		}
		if prev.Count == cur.Count && prev.NGram > cur.NGram {
			t.Fatalf("ties not lexical: %+v", rep.Candidates)
		}
	}
}

func TestWithStopwords(t *testing.T) {
	custom := textproc.NewStopwordSet([]string{"zzz"})
	a := New(testCatalog, WithStopwords(custom))
	// With the custom set, "fresh" is no longer a stopword and becomes
	// residual; the match should be Partial rather than clean.
	m := a.Resolve("fresh basil")
	if m.Status != Partial {
		t.Fatalf("custom stopwords: status = %s", m.Status)
	}
}
