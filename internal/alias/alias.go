// Package alias implements the ingredient aliasing protocol of §IV.A:
// mapping free-text ingredient phrases ("2 jalapeno peppers, roasted and
// slit") onto catalog entities with their flavor profiles.
//
// The pipeline mirrors the paper's multi-step protocol:
//
//  1. lower-case, strip punctuation / special characters;
//  2. remove general and culinary stopwords and quantities;
//  3. singularize every token;
//  4. attempt exact match of the longest n-grams (n ≤ 6) against the
//     catalog vocabulary (canonical names and synonyms);
//  5. fall back to a small-edit-distance fuzzy match to absorb spelling
//     variations;
//  6. label leftovers as Partial (some tokens matched) or Unrecognized
//     (nothing matched) for manual curation, and feed their n-grams into
//     a curation report that surfaces frequently recurring unmatched
//     phrases — the mechanism the paper used to grow its synonym list.
package alias

import (
	"sort"
	"strings"

	"culinary/internal/flavor"
	"culinary/internal/textproc"
)

// Status classifies the outcome of aliasing one phrase.
type Status int

const (
	// Matched means the phrase resolved to exactly one catalog entity.
	Matched Status = iota
	// Partial means some tokens matched an entity but others remain; the
	// match is usable but flagged for curation (§IV.A "partial matches
	// ... were explicitly labeled for manual curation").
	Partial
	// Unrecognized means no catalog entity could be found.
	Unrecognized
)

// String returns the status display name.
func (s Status) String() string {
	switch s {
	case Matched:
		return "matched"
	case Partial:
		return "partial"
	case Unrecognized:
		return "unrecognized"
	default:
		return "invalid"
	}
}

// Match is the result of aliasing one ingredient phrase.
type Match struct {
	// Phrase is the raw input.
	Phrase string
	// Status classifies the outcome.
	Status Status
	// Ingredient is the resolved catalog ID (Invalid when Unrecognized).
	Ingredient flavor.ID
	// MatchedText is the normalized n-gram that matched.
	MatchedText string
	// Residual holds tokens left over after the match (Partial only).
	Residual []string
	// Fuzzy marks matches that needed edit-distance correction.
	Fuzzy bool
}

// Aliaser maps ingredient phrases to catalog entities.
type Aliaser struct {
	catalog *flavor.Catalog
	stop    *textproc.StopwordSet
	// vocab maps every recognizable normalized name to an ID.
	vocab map[string]flavor.ID
	// byLength holds vocabulary names grouped by token count for fuzzy
	// matching.
	byLength map[int][]string
	// maxTokens is the longest vocabulary name in tokens (≤ 6).
	maxTokens int
	// editBudget is the maximum edit distance for fuzzy matches.
	editBudget int
}

// Option customizes an Aliaser.
type Option func(*Aliaser)

// WithEditBudget sets the fuzzy-match edit budget (default 1; 0 disables
// fuzzy matching).
func WithEditBudget(budget int) Option {
	return func(a *Aliaser) { a.editBudget = budget }
}

// WithStopwords replaces the default stopword set.
func WithStopwords(s *textproc.StopwordSet) Option {
	return func(a *Aliaser) { a.stop = s }
}

// New builds an Aliaser over the catalog's vocabulary (canonical names
// plus synonyms).
func New(catalog *flavor.Catalog, opts ...Option) *Aliaser {
	a := &Aliaser{
		catalog:    catalog,
		stop:       textproc.DefaultStopwords(),
		vocab:      make(map[string]flavor.ID),
		byLength:   make(map[int][]string),
		editBudget: 1,
	}
	for _, opt := range opts {
		opt(a)
	}
	register := func(name string) {
		id, ok := catalog.Lookup(name)
		if !ok {
			return
		}
		norm := strings.Join(textproc.SingularizeTokens(textproc.Tokenize(name)), " ")
		if norm == "" {
			return
		}
		if _, dup := a.vocab[norm]; !dup {
			a.vocab[norm] = id
			n := len(strings.Fields(norm))
			a.byLength[n] = append(a.byLength[n], norm)
			if n > a.maxTokens {
				a.maxTokens = n
			}
		}
	}
	for _, name := range catalog.AllNames() {
		register(name)
	}
	if a.maxTokens > 6 {
		a.maxTokens = 6 // §IV.A: n-grams up to 6
	}
	for n := range a.byLength {
		sort.Strings(a.byLength[n])
	}
	return a
}

// VocabularySize returns the number of recognizable normalized names.
func (a *Aliaser) VocabularySize() int { return len(a.vocab) }

// Resolve aliases a single ingredient phrase.
func (a *Aliaser) Resolve(phrase string) Match {
	m := Match{Phrase: phrase, Ingredient: flavor.Invalid, Status: Unrecognized}
	tokens := textproc.SingularizeTokens(
		textproc.StripTokens(textproc.Tokenize(phrase), a.stop))
	if len(tokens) == 0 {
		return m
	}

	// Longest-n-gram-first exact matching.
	maxN := a.maxTokens
	if maxN > len(tokens) {
		maxN = len(tokens)
	}
	for n := maxN; n >= 1; n-- {
		for i := 0; i+n <= len(tokens); i++ {
			gram := strings.Join(tokens[i:i+n], " ")
			if n == 1 && textproc.IsGenericFoodWord(gram) {
				continue // a lone generic word is not a match (§III.B)
			}
			if id, ok := a.vocab[gram]; ok {
				m.Ingredient = id
				m.MatchedText = gram
				m.Residual = residual(tokens, i, n)
				if len(m.Residual) == 0 {
					m.Status = Matched
				} else {
					m.Status = Partial
				}
				return m
			}
		}
	}

	// Fuzzy fallback on the full token span and individual tokens.
	if a.editBudget > 0 {
		if id, text, ok := a.fuzzyLookup(strings.Join(tokens, " "), len(tokens)); ok {
			m.Ingredient = id
			m.MatchedText = text
			m.Status = Matched
			m.Fuzzy = true
			return m
		}
		for i, tok := range tokens {
			if textproc.IsGenericFoodWord(tok) || len(tok) < 4 {
				continue
			}
			if id, text, ok := a.fuzzyLookup(tok, 1); ok {
				m.Ingredient = id
				m.MatchedText = text
				m.Residual = residual(tokens, i, 1)
				m.Fuzzy = true
				if len(m.Residual) == 0 {
					m.Status = Matched
				} else {
					m.Status = Partial
				}
				return m
			}
		}
	}
	m.Residual = tokens
	return m
}

// fuzzyLookup scans vocabulary names with the same token count for one
// within the edit budget; the closest (then lexically first) wins.
func (a *Aliaser) fuzzyLookup(s string, ntokens int) (flavor.ID, string, bool) {
	best := ""
	bestDist := a.editBudget + 1
	for _, name := range a.byLength[ntokens] {
		if !textproc.WithinEditBudget(s, name, a.editBudget) {
			continue
		}
		d := textproc.Levenshtein(s, name)
		if d < bestDist {
			bestDist = d
			best = name
			if d == 0 {
				break
			}
		}
	}
	if best == "" {
		return flavor.Invalid, "", false
	}
	return a.vocab[best], best, true
}

// residual returns the tokens outside the matched span, dropping lone
// generic food words ("peppers" after "jalapeno" has matched): they name
// the same entity, not a second one, so they must not demote a clean
// match to Partial.
func residual(tokens []string, i, n int) []string {
	var out []string
	for k, tok := range tokens {
		if k >= i && k < i+n {
			continue
		}
		if textproc.IsGenericFoodWord(tok) {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// ResolveAll aliases a batch of phrases.
func (a *Aliaser) ResolveAll(phrases []string) []Match {
	out := make([]Match, len(phrases))
	for i, p := range phrases {
		out[i] = a.Resolve(p)
	}
	return out
}
