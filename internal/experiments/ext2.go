package experiments

import (
	"fmt"

	"culinary/internal/flavornet"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/report"
)

// PerturbationRow reports one region's pairing-sign stability under
// flavor-profile dropout.
type PerturbationRow struct {
	Region recipedb.Region
	// ZBase is the Z-score on the unperturbed catalog; ZPerturbed on the
	// dropout catalog.
	ZBase, ZPerturbed float64
	// Dropout is the molecule-dropout probability applied.
	Dropout float64
	// SignStable reports whether both Z-scores share a sign.
	SignStable bool
}

// ExtPerturbation answers the flavor-data half of the paper's
// robustness question: drop each profile molecule with probability
// dropout, rebuild the pair-sharing matrix, and re-measure each
// region's pairing Z against the Random control. The corpus is held
// fixed; only the flavor data changes.
func (e *Env) ExtPerturbation(regions []recipedb.Region, dropout float64, nullRecipes int) ([]PerturbationRow, error) {
	if regions == nil {
		regions = recipedb.MajorRegions()
	}
	if dropout <= 0 {
		dropout = 0.2
	}
	if nullRecipes <= 0 {
		nullRecipes = e.NullRecipes / 10
	}
	perturbed, err := e.Catalog.Perturb(dropout, e.Seed+1234)
	if err != nil {
		return nil, fmt.Errorf("experiments: perturbing catalog: %w", err)
	}
	pAnalyzer := pairing.NewAnalyzer(perturbed)
	var out []PerturbationRow
	for _, r := range regions {
		c := e.Store.BuildCuisine(r)
		base, err := pairing.Compare(e.Analyzer, e.Store, c, pairing.RandomModel,
			nullRecipes, e.src(0x900+uint64(r)))
		if err != nil {
			return nil, err
		}
		pert, err := pairing.Compare(pAnalyzer, e.Store, c, pairing.RandomModel,
			nullRecipes, e.src(0xA00+uint64(r)))
		if err != nil {
			return nil, err
		}
		out = append(out, PerturbationRow{
			Region:     r,
			ZBase:      base.Z,
			ZPerturbed: pert.Z,
			Dropout:    dropout,
			SignStable: (base.Z > 0) == (pert.Z > 0),
		})
	}
	return out, nil
}

// ExtPerturbationReport renders the perturbation table.
func ExtPerturbationReport(rows []PerturbationRow) *report.Table {
	t := report.NewTable(
		"Ext-5. Pairing-sign stability under flavor-profile dropout",
		"Region", "Dropout", "Z(base)", "Z(perturbed)", "SignStable")
	for _, r := range rows {
		t.AddRow(r.Region.Code(), r.Dropout,
			fmt.Sprintf("%+.1f", r.ZBase),
			fmt.Sprintf("%+.1f", r.ZPerturbed),
			fmt.Sprintf("%v", r.SignStable))
	}
	return t
}

// NetworkSummary captures whole-network statistics of the flavor
// network (the Ahn et al. substrate the paper builds on).
type NetworkSummary struct {
	MinShared      int
	Nodes, Edges   int
	Density        float64
	MeanClustering float64
	BackboneEdges  int
	TopPairs       []flavornet.Edge
	// Communities is the weighted label-propagation partition (sizes,
	// largest first) and Modularity its Newman Q.
	Communities []int
	Modularity  float64
}

// ExtNetwork builds the flavor network at the given edge threshold and
// summarizes its topology and backbone.
func (e *Env) ExtNetwork(minShared, topK int) NetworkSummary {
	if minShared < 1 {
		minShared = 5
	}
	if topK <= 0 {
		topK = 10
	}
	net := flavornet.Build(e.Analyzer, minShared)
	comms := net.Communities(0)
	sizes := make([]int, 0, len(comms))
	for _, c := range comms {
		sizes = append(sizes, c.Size())
	}
	return NetworkSummary{
		MinShared:      minShared,
		Nodes:          net.NumNodes(),
		Edges:          net.NumEdges(),
		Density:        net.Density(),
		MeanClustering: net.MeanClustering(),
		BackboneEdges:  len(net.Backbone(0.05)),
		TopPairs:       net.TopPairs(topK),
		Communities:    sizes,
		Modularity:     net.Modularity(comms),
	}
}

// ExtNetworkReport renders the network summary.
func (e *Env) ExtNetworkReport(s NetworkSummary) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ext-6. Flavor network (edges: ≥%d shared compounds): %d nodes, %d edges, density %.3f, clustering %.3f, backbone %d edges, %d communities (Q=%.3f)",
			s.MinShared, s.Nodes, s.Edges, s.Density, s.MeanClustering, s.BackboneEdges, len(s.Communities), s.Modularity),
		"Pair", "SharedCompounds")
	for _, p := range s.TopPairs {
		t.AddRow(
			e.Catalog.Ingredient(p.A).Name+" + "+e.Catalog.Ingredient(p.B).Name,
			p.Weight)
	}
	return t
}

// AuthenticityReport lists each region's most authentic ingredients
// (highest prevalence relative to the rest of the world).
func (e *Env) AuthenticityReport(k int) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Ext-7. Top %d authentic ingredients per region (prevalence above world mean)", k),
		"Region", "Ingredients (ΔPrevalence)")
	for _, r := range recipedb.MajorRegions() {
		ids, scores, err := flavornet.TopAuthentic(e.Store, r, k)
		if err != nil {
			return nil, err
		}
		var cells []string
		for i, id := range ids {
			cells = append(cells, fmt.Sprintf("%s(%+.2f)", e.Catalog.Ingredient(id).Name, scores[i]))
		}
		t.AddRow(r.Code(), joinComma(cells))
	}
	return t, nil
}
