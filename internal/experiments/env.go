// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the extension experiments DESIGN.md lists
// (higher-order tuples, robustness, evolution-model sweep, aliasing
// accuracy). Each driver returns structured results and can render the
// same rows/series the paper reports.
package experiments

import (
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/synth"
)

// Env bundles the catalog, analyzer and corpus every experiment runs
// against, together with the null-model sample size.
type Env struct {
	Catalog  *flavor.Catalog
	Analyzer *pairing.Analyzer
	Store    *recipedb.Store
	// NullRecipes is the per-model randomized sample size; the paper
	// uses 100,000.
	NullRecipes int
	// Seed drives experiment-level randomness (null draws, bootstraps).
	Seed uint64
}

// Options configures environment construction.
type Options struct {
	// Scale is the corpus scale factor (1.0 = full 45,772 recipes).
	Scale float64
	// NullRecipes is the randomized-cuisine sample size per model.
	NullRecipes int
	// Seed drives both corpus generation and experiment randomness.
	Seed uint64
}

// DefaultOptions reproduces the paper's configuration.
func DefaultOptions() Options {
	return Options{Scale: 1.0, NullRecipes: pairing.DefaultNullRecipes, Seed: 20180416}
}

// TestOptions returns a fast configuration for tests.
func TestOptions() Options {
	return Options{Scale: 0.05, NullRecipes: 2000, Seed: 20180416}
}

// NewEnv builds the catalog, pairing analyzer and synthetic corpus.
func NewEnv(opts Options) (*Env, error) {
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("experiments: scale %g must be positive", opts.Scale)
	}
	if opts.NullRecipes < 100 {
		return nil, fmt.Errorf("experiments: NullRecipes %d too small for stable moments", opts.NullRecipes)
	}
	fcfg := flavor.DefaultConfig()
	fcfg.Seed = opts.Seed
	catalog, err := flavor.Build(fcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building catalog: %w", err)
	}
	analyzer := pairing.NewAnalyzer(catalog)
	scfg := synth.DefaultConfig()
	scfg.Seed = opts.Seed
	scfg.Scale = opts.Scale
	store, err := synth.Generate(analyzer, scfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating corpus: %w", err)
	}
	return &Env{
		Catalog:     catalog,
		Analyzer:    analyzer,
		Store:       store,
		NullRecipes: opts.NullRecipes,
		Seed:        opts.Seed,
	}, nil
}

// src derives a deterministic stream for one experiment arm.
func (e *Env) src(label uint64) *rng.Source {
	return rng.New(e.Seed).Split(label)
}
