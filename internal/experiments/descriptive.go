package experiments

import (
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/report"
	"culinary/internal/stats"
)

// Table1Row is one region's corpus statistics (Table 1 of the paper).
type Table1Row struct {
	Region      recipedb.Region
	Recipes     int
	Ingredients int
}

// Table1 computes recipes and unique ingredients per major region plus
// the WORLD total, mirroring Table 1.
func (e *Env) Table1() []Table1Row {
	rows := make([]Table1Row, 0, recipedb.NumMajorRegions+1)
	for _, r := range recipedb.MajorRegions() {
		c := e.Store.BuildCuisine(r)
		rows = append(rows, Table1Row{
			Region:      r,
			Recipes:     c.NumRecipes(),
			Ingredients: c.NumUniqueIngredients(),
		})
	}
	world := e.Store.BuildCuisine(recipedb.World)
	rows = append(rows, Table1Row{
		Region:      recipedb.World,
		Recipes:     world.NumRecipes(),
		Ingredients: world.NumUniqueIngredients(),
	})
	return rows
}

// Table1Report renders Table 1 with paper-vs-measured columns.
func (e *Env) Table1Report() *report.Table {
	t := report.NewTable(
		"Table 1. Statistics of recipes and ingredients across world cuisines",
		"Region", "Code", "Recipes", "Recipes(paper)", "Ingredients", "Ingredients(paper)")
	for _, row := range e.Table1() {
		paperIng := fmt.Sprintf("%d", row.Region.PaperIngredientCount())
		if row.Region == recipedb.World {
			paperIng = "-"
		}
		t.AddRow(row.Region.Name(), row.Region.Code(), row.Recipes,
			row.Region.PaperRecipeCount(), row.Ingredients, paperIng)
	}
	return t
}

// Fig2 computes the category-usage fractions per region (+WORLD): the
// Fig 2 heatmap. Rows follow Table 1 order with WORLD last; columns are
// the 21 categories.
func (e *Env) Fig2() *report.Heatmap {
	regions := append(recipedb.MajorRegions(), recipedb.World)
	h := &report.Heatmap{
		Title: "Fig 2. Compositions of recipes in terms of ingredient categories",
	}
	for _, cat := range flavor.AllCategories() {
		h.ColLabels = append(h.ColLabels, cat.String())
	}
	for _, r := range regions {
		h.RowLabels = append(h.RowLabels, r.Code())
		h.Values = append(h.Values, e.Store.CategoryUsage(r))
	}
	return h
}

// Fig2Table renders the same matrix as a CSV-friendly table.
func (e *Env) Fig2Table() *report.Table {
	headers := []string{"Region"}
	for _, cat := range flavor.AllCategories() {
		headers = append(headers, cat.String())
	}
	t := report.NewTable("Fig 2 data: category usage fraction per region", headers...)
	regions := append(recipedb.MajorRegions(), recipedb.World)
	for _, r := range regions {
		usage := e.Store.CategoryUsage(r)
		cells := make([]interface{}, 0, len(usage)+1)
		cells = append(cells, r.Code())
		for _, u := range usage {
			cells = append(cells, u)
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig3aResult carries the recipe-size distribution of one region.
type Fig3aResult struct {
	Region recipedb.Region
	Mean   float64
	Mode   int
	Max    int
	// Sizes and PMF are the distribution support and probabilities;
	// CDF is cumulative (the paper's inset).
	Sizes []int
	PMF   []float64
	CDF   []float64
}

// Fig3a computes recipe-size distributions for every major region and
// WORLD (Fig 3a and its cumulative inset).
func (e *Env) Fig3a() []Fig3aResult {
	regions := append(recipedb.MajorRegions(), recipedb.World)
	out := make([]Fig3aResult, 0, len(regions))
	for _, r := range regions {
		h := e.Store.BuildCuisine(r).SizeHistogram()
		sizes, pmf := h.PMF()
		_, cdf := h.CDF()
		mode, _ := h.Mode()
		max := 0
		if len(sizes) > 0 {
			max = sizes[len(sizes)-1]
		}
		out = append(out, Fig3aResult{
			Region: r, Mean: h.Mean(), Mode: mode, Max: max,
			Sizes: sizes, PMF: pmf, CDF: cdf,
		})
	}
	return out
}

// Fig3aReport summarizes the size distributions (one row per region)
// and appends the WORLD PMF series.
func (e *Env) Fig3aReport() *report.Table {
	t := report.NewTable(
		"Fig 3a. Recipe size distribution (mean/mode/max per region; paper: bounded, thin-tailed, mean ≈ 9)",
		"Region", "MeanSize", "Mode", "Max", "P(size<=5)", "P(size<=10)", "P(size<=15)")
	for _, res := range e.Fig3a() {
		cdfAt := func(v int) float64 {
			last := 0.0
			for i, s := range res.Sizes {
				if s > v {
					break
				}
				last = res.CDF[i]
			}
			return last
		}
		t.AddRow(res.Region.Code(), res.Mean, res.Mode, res.Max,
			cdfAt(5), cdfAt(10), cdfAt(15))
	}
	return t
}

// Fig3bResult carries one region's normalized rank-frequency series.
type Fig3bResult struct {
	Region recipedb.Region
	// RankFreq[r] is frequency of rank r+1 normalized by rank 1.
	RankFreq []float64
	// CumShare[r] is the cumulative fraction of ingredient use covered
	// by the top r+1 ingredients (the paper's inset).
	CumShare []float64
	// Gini summarizes popularity concentration.
	Gini float64
}

// Fig3b computes ingredient rank-frequency curves per region (Fig 3b).
func (e *Env) Fig3b() []Fig3bResult {
	regions := append(recipedb.MajorRegions(), recipedb.World)
	out := make([]Fig3bResult, 0, len(regions))
	for _, r := range regions {
		freq := e.Store.BuildCuisine(r).FrequencyVector()
		out = append(out, Fig3bResult{
			Region:   r,
			RankFreq: stats.RankFrequency(freq),
			CumShare: stats.CumulativeShare(freq),
			Gini:     stats.Gini(freq),
		})
	}
	return out
}

// Fig3bReport samples the normalized rank-frequency curve at fixed
// ranks, one row per region, exposing the cross-cuisine scaling
// consistency the paper highlights.
func (e *Env) Fig3bReport() *report.Table {
	ranks := []int{1, 2, 5, 10, 20, 50, 100}
	headers := []string{"Region", "Gini"}
	for _, rk := range ranks {
		headers = append(headers, fmt.Sprintf("f(rank %d)", rk))
	}
	t := report.NewTable(
		"Fig 3b. Ingredient popularity rank-frequency, normalized by the most popular ingredient",
		headers...)
	for _, res := range e.Fig3b() {
		cells := []interface{}{res.Region.Code(), res.Gini}
		for _, rk := range ranks {
			if rk-1 < len(res.RankFreq) {
				cells = append(cells, res.RankFreq[rk-1])
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// TopIngredientsReport lists each region's most used ingredients, a
// companion view to Fig 3b's head.
func (e *Env) TopIngredientsReport(k int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Top %d ingredients per region by frequency of use", k),
		"Region", "Ingredients")
	for _, r := range recipedb.MajorRegions() {
		c := e.Store.BuildCuisine(r)
		top := c.TopIngredients(k)
		names := make([]string, len(top))
		for i, id := range top {
			names[i] = fmt.Sprintf("%s(%d)", e.Catalog.Ingredient(id).Name, c.IngredientFreq[id])
		}
		t.AddRow(r.Code(), joinComma(names))
	}
	return t
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
