package experiments

import (
	"fmt"
	"strings"

	"culinary/internal/assoc"
	"culinary/internal/cluster"
	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/report"
)

// ClusterResult is the cuisine-similarity analysis: regions clustered by
// the cosine distance of their ingredient-prevalence vectors. Cuisines
// are 'dialects' (§II.A's language analogy); the dendrogram shows which
// dialects are close.
type ClusterResult struct {
	// Regions indexes the leaves of Root.
	Regions []recipedb.Region
	// Root is the average-linkage dendrogram.
	Root *cluster.Node
	// Groups is the partition cut at half the root height, each group a
	// set of region indexes into Regions.
	Groups [][]int
}

// ExtCluster clusters the major regions by ingredient-prevalence
// cosine similarity.
func (e *Env) ExtCluster() (*ClusterResult, error) {
	regions := recipedb.MajorRegions()
	vectors := make([][]float64, 0, len(regions))
	used := make([]recipedb.Region, 0, len(regions))
	n := e.Catalog.Len()
	for _, r := range regions {
		c := e.Store.BuildCuisine(r)
		if c.NumRecipes() == 0 {
			continue
		}
		vec := make([]float64, n)
		for id, freq := range c.IngredientFreq {
			vec[id] = float64(freq) / float64(c.NumRecipes())
		}
		vectors = append(vectors, vec)
		used = append(used, r)
	}
	root, err := cluster.Hierarchical(vectors, cluster.CosineDistance, cluster.Average)
	if err != nil {
		return nil, fmt.Errorf("experiments: clustering cuisines: %w", err)
	}
	return &ClusterResult{
		Regions: used,
		Root:    root,
		Groups:  cluster.Cut(root, root.Height/2),
	}, nil
}

// ExtClusterReport renders the dendrogram and the half-height cut.
func (e *Env) ExtClusterReport(res *ClusterResult) *report.Table {
	labels := make([]string, len(res.Regions))
	for i, r := range res.Regions {
		labels[i] = r.Code()
	}
	t := report.NewTable(
		fmt.Sprintf("Ext-9. Cuisine similarity (ingredient prevalence, cosine, average linkage): %d groups at half height",
			len(res.Groups)),
		"Group", "Regions")
	for gi, group := range res.Groups {
		codes := make([]string, len(group))
		for i, leaf := range group {
			codes[i] = labels[leaf]
		}
		t.AddRow(fmt.Sprintf("G%d", gi+1), strings.Join(codes, " "))
	}
	return t
}

// ClusterDendrogram renders the full tree as text.
func (e *Env) ClusterDendrogram(res *ClusterResult) string {
	labels := make([]string, len(res.Regions))
	for i, r := range res.Regions {
		labels[i] = r.Code()
	}
	return cluster.Render(res.Root, labels)
}

// RulesResult holds the association-rule mining of one cuisine — the
// paper's higher-order n-tuple question approached with the standard
// data-mining machinery (frequent itemsets up to quadruples).
type RulesResult struct {
	Region recipedb.Region
	Config assoc.Config
	// Levels[k] holds the frequent itemsets of size k+1.
	Levels [][]assoc.ItemSet
	// Rules are the confident rules, sorted by descending lift.
	Rules []assoc.Rule
}

// ExtRules mines frequent ingredient combinations and association rules
// for one region (default Italy, the largest non-US cuisine).
func (e *Env) ExtRules(region recipedb.Region, cfg assoc.Config) (*RulesResult, error) {
	if cfg == (assoc.Config{}) {
		cfg = assoc.DefaultConfig()
	}
	c := e.Store.BuildCuisine(region)
	levels, err := assoc.Mine(e.Store, c, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining %s: %w", region.Code(), err)
	}
	return &RulesResult{
		Region: region,
		Config: cfg,
		Levels: levels,
		Rules:  assoc.Rules(levels, c, cfg),
	}, nil
}

// ExtRulesReport renders itemset counts per size and the top rules.
func (e *Env) ExtRulesReport(res *RulesResult, topK int) (*report.Table, *report.Table) {
	counts := report.NewTable(
		fmt.Sprintf("Ext-10. Frequent ingredient itemsets in %s (support >= %.0f%%)",
			res.Region.Code(), res.Config.MinSupport*100),
		"Size", "Itemsets", "TopSet", "Support")
	for i, level := range res.Levels {
		if len(level) == 0 {
			continue
		}
		top := level[0]
		counts.AddRow(i+1, len(level), e.itemNames(top.Items), fmt.Sprintf("%.3f", top.Support))
	}
	rules := report.NewTable(
		fmt.Sprintf("Top association rules in %s (confidence >= %.0f%%, by lift)",
			res.Region.Code(), res.Config.MinConfidence*100),
		"Rule", "Support", "Confidence", "Lift")
	if topK <= 0 {
		topK = 10
	}
	for i, r := range res.Rules {
		if i >= topK {
			break
		}
		rules.AddRow(
			e.itemNames(r.Antecedent)+" => "+e.itemNames(r.Consequent),
			fmt.Sprintf("%.3f", r.Support),
			fmt.Sprintf("%.2f", r.Confidence),
			fmt.Sprintf("%.2f", r.Lift))
	}
	return counts, rules
}

// itemNames renders an ingredient-ID set as comma-joined names.
func (e *Env) itemNames(ids []flavor.ID) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = e.Catalog.Ingredient(id).Name
	}
	return strings.Join(names, ", ")
}
