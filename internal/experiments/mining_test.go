package experiments

import (
	"bytes"
	"strings"
	"testing"

	"culinary/internal/assoc"
	"culinary/internal/cluster"
	"culinary/internal/recipedb"
)

func TestExtClusterCoversAllRegions(t *testing.T) {
	res, err := testEnv.ExtCluster()
	if err != nil {
		t.Fatalf("ExtCluster: %v", err)
	}
	if len(res.Regions) != recipedb.NumMajorRegions {
		t.Fatalf("clustered %d regions", len(res.Regions))
	}
	if res.Root.Size != len(res.Regions) {
		t.Errorf("dendrogram covers %d leaves, want %d", res.Root.Size, len(res.Regions))
	}
	// The cut partitions all leaves exactly once.
	seen := make(map[int]bool)
	for _, group := range res.Groups {
		for _, leaf := range group {
			if seen[leaf] {
				t.Fatalf("leaf %d in two groups", leaf)
			}
			seen[leaf] = true
		}
	}
	if len(seen) != len(res.Regions) {
		t.Errorf("cut covers %d of %d leaves", len(seen), len(res.Regions))
	}
	// Dendrogram text mentions every region code.
	tree := testEnv.ClusterDendrogram(res)
	for _, r := range res.Regions {
		if !strings.Contains(tree, r.Code()) {
			t.Errorf("dendrogram missing %s", r.Code())
		}
	}
}

func TestExtClusterSpiceCuisinesAreClose(t *testing.T) {
	// The calibrated spice-heavy cuisines (Fig 2: INSC, AFR) should sit
	// closer to each other than INSC sits to Scandinavia.
	res, err := testEnv.ExtCluster()
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[recipedb.Region]int, len(res.Regions))
	for i, r := range res.Regions {
		idx[r] = i
	}
	dClose, err := copheneticOf(res, idx[recipedb.IndianSubcontinent], idx[recipedb.Africa])
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := copheneticOf(res, idx[recipedb.IndianSubcontinent], idx[recipedb.Scandinavia])
	if err != nil {
		t.Fatal(err)
	}
	if dClose >= dFar {
		t.Errorf("INSC-AFR cophenetic %.3f not below INSC-SCND %.3f", dClose, dFar)
	}
}

func copheneticOf(res *ClusterResult, i, j int) (float64, error) {
	return cluster.CopheneticDistance(res.Root, i, j)
}

func TestExtRulesInvariants(t *testing.T) {
	res, err := testEnv.ExtRules(recipedb.Italy, assoc.Config{})
	if err != nil {
		t.Fatalf("ExtRules: %v", err)
	}
	if len(res.Levels) == 0 || len(res.Levels[0]) == 0 {
		t.Fatal("no frequent singletons")
	}
	// Apriori anti-monotonicity: the top support per level never grows
	// with size.
	prevTop := res.Levels[0][0].Support
	for k := 1; k < len(res.Levels); k++ {
		if len(res.Levels[k]) == 0 {
			continue
		}
		if res.Levels[k][0].Support > prevTop {
			t.Errorf("level %d top support %.3f exceeds level %d's %.3f",
				k+1, res.Levels[k][0].Support, k, prevTop)
		}
		prevTop = res.Levels[k][0].Support
	}
	for _, r := range res.Rules {
		if r.Confidence < res.Config.MinConfidence {
			t.Errorf("rule below confidence floor: %+v", r)
		}
		if r.Support < res.Config.MinSupport {
			t.Errorf("rule below support floor: %+v", r)
		}
		if r.Lift <= 0 {
			t.Errorf("non-positive lift: %+v", r)
		}
	}
	// Rules sorted by descending lift.
	for i := 1; i < len(res.Rules); i++ {
		if res.Rules[i].Lift > res.Rules[i-1].Lift {
			t.Error("rules not sorted by lift")
			break
		}
	}
}

func TestMiningRunnersRender(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Env: testEnv, Out: &buf}
	for _, name := range []string{"clusters", "rules"} {
		if err := r.Run(name); err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Cuisine similarity", "Frequent ingredient itemsets", "association rules"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
