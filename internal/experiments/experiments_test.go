package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

// testEnv is shared across tests; built once at a small scale.
var testEnv = func() *Env {
	e, err := NewEnv(TestOptions())
	if err != nil {
		panic(err)
	}
	return e
}()

func TestNewEnvValidation(t *testing.T) {
	bad := TestOptions()
	bad.Scale = 0
	if _, err := NewEnv(bad); err == nil {
		t.Fatal("scale 0 accepted")
	}
	bad = TestOptions()
	bad.NullRecipes = 10
	if _, err := NewEnv(bad); err == nil {
		t.Fatal("tiny null sample accepted")
	}
}

func TestTable1(t *testing.T) {
	rows := testEnv.Table1()
	if len(rows) != recipedb.NumMajorRegions+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	var total int
	for _, row := range rows[:recipedb.NumMajorRegions] {
		if row.Recipes <= 0 {
			t.Errorf("%s has no recipes", row.Region.Code())
		}
		if row.Ingredients <= 0 {
			t.Errorf("%s has no ingredients", row.Region.Code())
		}
		// Scaled counts must be proportional to Table 1.
		want := int(math.Round(float64(row.Region.PaperRecipeCount()) * 0.05))
		if want < 4 {
			want = 4
		}
		if row.Recipes != want {
			t.Errorf("%s recipes = %d, want %d", row.Region.Code(), row.Recipes, want)
		}
		total += row.Recipes
	}
	world := rows[len(rows)-1]
	if world.Region != recipedb.World {
		t.Fatal("last row should be World")
	}
	if world.Recipes < total {
		t.Fatalf("world %d < major sum %d", world.Recipes, total)
	}
	out := testEnv.Table1Report().String()
	if !strings.Contains(out, "45772") || !strings.Contains(out, "INSC") {
		t.Fatalf("report missing content:\n%s", out)
	}
}

func TestFig2(t *testing.T) {
	h := testEnv.Fig2()
	if len(h.Values) != recipedb.NumMajorRegions+1 {
		t.Fatalf("heatmap rows = %d", len(h.Values))
	}
	if len(h.ColLabels) != flavor.NumCategories {
		t.Fatalf("heatmap cols = %d", len(h.ColLabels))
	}
	for i, row := range h.Values {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %s sums to %v", h.RowLabels[i], sum)
		}
	}
	tbl := testEnv.Fig2Table()
	if len(tbl.Rows) != recipedb.NumMajorRegions+1 {
		t.Fatal("fig2 table rows wrong")
	}
}

func TestFig3a(t *testing.T) {
	results := testEnv.Fig3a()
	if len(results) != recipedb.NumMajorRegions+1 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if res.Mean < 5 || res.Mean > 13 {
			t.Errorf("%s mean size %.1f implausible", res.Region.Code(), res.Mean)
		}
		if res.Max > 28 {
			t.Errorf("%s max size %d above generator bound", res.Region.Code(), res.Max)
		}
		last := res.CDF[len(res.CDF)-1]
		if math.Abs(last-1) > 1e-9 {
			t.Errorf("%s CDF ends at %v", res.Region.Code(), last)
		}
	}
	out := testEnv.Fig3aReport().String()
	if !strings.Contains(out, "WORLD") {
		t.Fatal("fig3a report missing WORLD")
	}
}

func TestFig3b(t *testing.T) {
	results := testEnv.Fig3b()
	for _, res := range results {
		if len(res.RankFreq) == 0 {
			t.Fatalf("%s empty rank-frequency", res.Region.Code())
		}
		if res.RankFreq[0] != 1 {
			t.Errorf("%s top rank not normalized to 1", res.Region.Code())
		}
		for i := 1; i < len(res.RankFreq); i++ {
			if res.RankFreq[i] > res.RankFreq[i-1] {
				t.Errorf("%s rank-frequency not monotone", res.Region.Code())
				break
			}
		}
		if res.Gini <= 0 || res.Gini >= 1 {
			t.Errorf("%s Gini %v outside (0,1)", res.Region.Code(), res.Gini)
		}
	}
	out := testEnv.Fig3bReport().String()
	if !strings.Contains(out, "f(rank 10)") {
		t.Fatal("fig3b report missing rank columns")
	}
}

func TestFig4SingleRegion(t *testing.T) {
	row, err := testEnv.Fig4Region(recipedb.Italy)
	if err != nil {
		t.Fatal(err)
	}
	if row.ZCuisine <= 0 {
		t.Errorf("Italy Z = %.1f, paper reports positive pairing", row.ZCuisine)
	}
	// Frequency model must land closer to the cuisine than the category
	// model does (the paper's central model finding).
	gapFreq := math.Abs(row.Observed - row.ModelMean[pairing.FrequencyModel])
	gapCat := math.Abs(row.Observed - row.ModelMean[pairing.CategoryModel])
	if gapFreq >= gapCat {
		t.Errorf("frequency gap %.2f not below category gap %.2f", gapFreq, gapCat)
	}
	if row.ZModel[pairing.RandomModel] != 0 {
		t.Error("random model Z must be 0 by construction")
	}
}

func TestFig4NegativeRegion(t *testing.T) {
	row, err := testEnv.Fig4Region(recipedb.Scandinavia)
	if err != nil {
		t.Fatal(err)
	}
	if row.ZCuisine >= 0 {
		t.Errorf("Scandinavia Z = %.1f, paper reports negative pairing", row.ZCuisine)
	}
	if row.ZModel[pairing.FrequencyModel] >= 0 {
		t.Errorf("frequency model should track the negative cuisine, Z = %.1f",
			row.ZModel[pairing.FrequencyModel])
	}
}

func TestFig5(t *testing.T) {
	fig4 := []Fig4Row{
		{Region: recipedb.Italy, ZCuisine: 100},
		{Region: recipedb.Scandinavia, ZCuisine: -50},
	}
	rows := testEnv.Fig5(3, fig4)
	if len(rows) != recipedb.NumMajorRegions {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Top) == 0 || len(row.Top) > 3 {
			t.Errorf("%s top = %d contributors", row.Region.Code(), len(row.Top))
		}
		switch row.Region {
		case recipedb.Italy:
			if row.Sign != 1 {
				t.Error("Italy sign should come from fig4 rows")
			}
			// For a positive cuisine the top contributor's removal should
			// reduce N̄s.
			if row.Top[0].DeltaPct > 0 {
				t.Errorf("Italy top contributor has positive ΔN̄s%%: %+v", row.Top[0])
			}
		case recipedb.Scandinavia:
			if row.Sign != -1 {
				t.Error("Scandinavia sign should come from fig4 rows")
			}
		}
	}
	pos, neg := testEnv.Fig5Report(rows)
	if len(pos.Rows)+len(neg.Rows) != recipedb.NumMajorRegions {
		t.Fatal("fig5 report row split wrong")
	}
}

func TestExtTuples(t *testing.T) {
	res, err := testEnv.ExtTuples([]recipedb.Region{recipedb.Greece}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 { // k = 2, 3, 4
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.K != i+2 {
			t.Errorf("result %d has k=%d", i, r.K)
		}
		if r.Observed < 0 || r.NullMean < 0 {
			t.Errorf("negative tuple scores: %+v", r)
		}
	}
	out := ExtTuplesReport(res).String()
	if !strings.Contains(out, "GRC") {
		t.Fatal("tuples report missing region")
	}
}

func TestExtRobustness(t *testing.T) {
	rows, err := testEnv.ExtRobustness([]recipedb.Region{recipedb.Italy, recipedb.Japan}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Lo > r.Observed || r.Hi < r.Observed {
			t.Errorf("%s CI [%v,%v] excludes point %v", r.Region.Code(), r.Lo, r.Hi, r.Observed)
		}
		if !r.SignStable {
			t.Errorf("%s pairing sign not bootstrap-stable", r.Region.Code())
		}
	}
}

func TestExtEvolution(t *testing.T) {
	points, err := testEnv.ExtEvolution([]float64{-1.0, 0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Z must increase with β across the sweep endpoints, and the
	// endpoints must straddle a wide range.
	if points[0].Z >= points[2].Z {
		t.Errorf("Z not increasing in β: %+v", points)
	}
	if points[0].Z > 0 {
		t.Errorf("β=-1 should give negative pairing, Z=%+.1f", points[0].Z)
	}
	if points[2].Z < 0 {
		t.Errorf("β=+1 should give positive pairing, Z=%+.1f", points[2].Z)
	}
}

func TestExtAliasing(t *testing.T) {
	res := testEnv.ExtAliasing(1500)
	if res.Phrases != 1500 {
		t.Fatalf("phrases = %d", res.Phrases)
	}
	if res.ResolveRate < 0.9 {
		t.Errorf("resolve rate %.3f", res.ResolveRate)
	}
	if res.Precision < 0.9 {
		t.Errorf("precision %.3f", res.Precision)
	}
	if res.Matched+res.Partial+res.Unrecognized != res.Phrases {
		t.Error("status counts do not partition phrases")
	}
	out := ExtAliasingReport(res).String()
	if !strings.Contains(out, "Precision") {
		t.Fatal("aliasing report missing header")
	}
}

func TestExtPerturbation(t *testing.T) {
	rows, err := testEnv.ExtPerturbation([]recipedb.Region{recipedb.Italy, recipedb.Scandinavia}, 0.15, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.SignStable {
			t.Errorf("%s: pairing sign flipped under 15%% dropout (base %+.1f, perturbed %+.1f)",
				r.Region.Code(), r.ZBase, r.ZPerturbed)
		}
		if r.Dropout != 0.15 {
			t.Errorf("dropout not recorded: %v", r.Dropout)
		}
	}
	out := ExtPerturbationReport(rows).String()
	if !strings.Contains(out, "SignStable") {
		t.Fatal("report missing header")
	}
}

func TestExtNetwork(t *testing.T) {
	s := testEnv.ExtNetwork(5, 7)
	if s.Nodes == 0 || s.Edges == 0 {
		t.Fatalf("degenerate network summary: %+v", s)
	}
	if s.Density <= 0 || s.Density > 1 {
		t.Fatalf("density %v", s.Density)
	}
	if s.BackboneEdges <= 0 || s.BackboneEdges >= s.Edges {
		t.Fatalf("backbone %d of %d edges", s.BackboneEdges, s.Edges)
	}
	if len(s.TopPairs) != 7 {
		t.Fatalf("top pairs = %d", len(s.TopPairs))
	}
	out := testEnv.ExtNetworkReport(s).String()
	if !strings.Contains(out, "SharedCompounds") {
		t.Fatal("network report missing header")
	}
}

func TestAuthenticityReport(t *testing.T) {
	tbl, err := testEnv.AuthenticityReport(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != recipedb.NumMajorRegions {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRunnerUnknownName(t *testing.T) {
	r := &Runner{Env: testEnv, Out: &bytes.Buffer{}}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunnerNames(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("names = %v", names)
	}
	for _, want := range []string{"table1", "fig2", "fig3a", "fig3b", "fig4", "fig5", "tuples", "robustness", "evolution", "aliasing", "perturbation", "network", "classify"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestRunnerLightExperiments(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Env: testEnv, Out: &buf}
	for _, name := range []string{"table1", "fig2", "fig3a", "fig3b", "aliasing"} {
		if err := r.Run(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, marker := range []string{"== table1 ==", "== fig2 ==", "Fig 3a", "Fig 3b", "Precision"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q", marker)
		}
	}
}

func TestRunnerFig4CacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	r := &Runner{Env: testEnv, Out: &buf}
	if err := r.Run("fig4"); err != nil {
		t.Fatal(err)
	}
	cached := r.fig4Cache
	if cached == nil {
		t.Fatal("fig4 cache not populated")
	}
	if err := r.Run("fig5"); err != nil {
		t.Fatal(err)
	}
	if &r.fig4Cache[0] != &cached[0] {
		t.Fatal("fig5 recomputed fig4")
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 5(a)") || !strings.Contains(out, "Fig 5(b)") {
		t.Fatalf("fig5 output missing tables")
	}
}
