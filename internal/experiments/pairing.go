package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/report"
	"culinary/internal/stats"
)

// Fig4Row is one cuisine's food-pairing comparison: the real cuisine and
// each randomized model expressed as Z-scores against the Random
// control (Fig 4).
type Fig4Row struct {
	Region recipedb.Region
	// Observed is the cuisine's mean flavor sharing N̄s.
	Observed float64
	// RandomMean and RandomStd are the Random control's moments.
	RandomMean, RandomStd float64
	// ZCuisine is the real cuisine's Z against the Random control.
	ZCuisine float64
	// ZModel[m] is model m's mean score expressed as a Z against the
	// Random control (ZModel[RandomModel] ≈ 0 by construction).
	ZModel [pairing.NumModels]float64
	// ModelMean[m] is model m's mean pairing score.
	ModelMean [pairing.NumModels]float64
	// PaperSign is the direction the paper reports for this cuisine.
	PaperSign int
}

// Fig4 runs the full food-pairing analysis: for every major region, the
// real cuisine and the four randomized models, each sampled with
// e.NullRecipes recipes, all referenced to the Random control. Regions
// are independent — each draws from its own stream keyed by region ID —
// so the sweep fans out across CPUs with results identical to a
// sequential run regardless of scheduling.
func (e *Env) Fig4() ([]Fig4Row, error) {
	regions := recipedb.MajorRegions()
	rows := make([]Fig4Row, len(regions))
	errs := make([]error, len(regions))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(regions) {
		workers = len(regions)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// The region pool already saturates the CPUs, so
				// per-region scoring stays serial (scoreWorkers=1)
				// rather than oversubscribing with a nested fan-out.
				rows[i], errs[i] = e.fig4Region(regions[i], 1)
			}
		}()
	}
	for i := range regions {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig4Region runs the Fig 4 analysis for a single region. Unlike the
// pooled Fig4 sweep, a lone region gets the full scoring fan-out.
func (e *Env) Fig4Region(r recipedb.Region) (Fig4Row, error) {
	return e.fig4Region(r, 0)
}

// fig4Region computes one region's row; scoreWorkers sizes the
// observed-score fan-out (ScoreCuisineParallel is bit-identical to
// CuisineScore for any worker count, so Fig 4 output is unchanged
// either way).
func (e *Env) fig4Region(r recipedb.Region, scoreWorkers int) (Fig4Row, error) {
	c := e.Store.BuildCuisine(r)
	src := e.src(0x40 + uint64(r))
	observed, scored := e.Analyzer.ScoreCuisineParallel(e.Store, c, scoreWorkers)
	if scored == 0 {
		return Fig4Row{}, fmt.Errorf("experiments: region %s has no scorable recipes", r.Code())
	}
	// Random control moments.
	rs, err := pairing.NewNullSampler(e.Analyzer, e.Store, c, pairing.RandomModel, src.Split(0))
	if err != nil {
		return Fig4Row{}, err
	}
	rMean, rStd, rN := rs.NullMoments(e.NullRecipes)
	row := Fig4Row{
		Region:     r,
		Observed:   observed,
		RandomMean: rMean,
		RandomStd:  rStd,
		ZCuisine:   stats.ZScore(observed, rMean, rStd, rN),
		PaperSign:  r.PairingSign(),
	}
	row.ModelMean[pairing.RandomModel] = rMean
	row.ZModel[pairing.RandomModel] = 0
	for _, m := range []pairing.Model{pairing.FrequencyModel, pairing.CategoryModel, pairing.FrequencyCategoryModel} {
		mMean, err := pairing.ModelScore(e.Analyzer, e.Store, c, m, e.NullRecipes, src.Split(uint64(m)+1))
		if err != nil {
			return Fig4Row{}, err
		}
		row.ModelMean[m] = mMean
		row.ZModel[m] = stats.ZScore(mMean, rMean, rStd, rN)
	}
	return row, nil
}

// Fig4Report renders the per-cuisine Z table.
func (e *Env) Fig4Report(rows []Fig4Row) *report.Table {
	t := report.NewTable(
		"Fig 4. Food pairing Z-scores vs the Random control (paper: 16 positive, 6 negative cuisines; Frequency model reproduces the pattern, Category model does not)",
		"Region", "N̄s", "RandMean", "Z(cuisine)", "Z(Frequency)", "Z(Category)", "Z(Freq+Cat)", "Sign", "PaperSign")
	for _, row := range rows {
		sign := "0"
		if row.ZCuisine > 0 {
			sign = "+"
		} else if row.ZCuisine < 0 {
			sign = "-"
		}
		paperSign := "+"
		if row.PaperSign < 0 {
			paperSign = "-"
		}
		t.AddRow(row.Region.Code(), row.Observed, row.RandomMean,
			fmt.Sprintf("%+.1f", row.ZCuisine),
			fmt.Sprintf("%+.1f", row.ZModel[pairing.FrequencyModel]),
			fmt.Sprintf("%+.1f", row.ZModel[pairing.CategoryModel]),
			fmt.Sprintf("%+.1f", row.ZModel[pairing.FrequencyCategoryModel]),
			sign, paperSign)
	}
	return t
}

// Fig4Chart renders the cuisines' Z-scores as a bar chart around zero.
func (e *Env) Fig4Chart(rows []Fig4Row) *report.BarChart {
	chart := &report.BarChart{
		Title: "Fig 4. Food pairing Z-score per cuisine (vs Random control)",
		Width: 30,
	}
	for _, row := range rows {
		chart.Labels = append(chart.Labels, row.Region.Code())
		chart.Values = append(chart.Values, row.ZCuisine)
	}
	return chart
}

// Fig5Row lists one cuisine's top contributing ingredients (Fig 5).
type Fig5Row struct {
	Region recipedb.Region
	Sign   int
	Top    []pairing.Contribution
}

// Fig5 computes the top-k contributing ingredients for every major
// region, split by the cuisine's observed pairing direction. zSigns maps
// each region to the sign of its Fig 4 Z-score (pass the Fig4 output);
// if a region is missing its paper sign is used.
func (e *Env) Fig5(k int, fig4 []Fig4Row) []Fig5Row {
	signOf := make(map[recipedb.Region]int, len(fig4))
	for _, row := range fig4 {
		s := 0
		if row.ZCuisine > 0 {
			s = 1
		} else if row.ZCuisine < 0 {
			s = -1
		}
		signOf[row.Region] = s
	}
	out := make([]Fig5Row, 0, recipedb.NumMajorRegions)
	for _, r := range recipedb.MajorRegions() {
		sign, ok := signOf[r]
		if !ok || sign == 0 {
			sign = r.PairingSign()
		}
		c := e.Store.BuildCuisine(r)
		// Bit-identical to the serial sweep; see ContributionsParallel.
		contribs := e.Analyzer.ContributionsParallel(e.Store, c, 0)
		out = append(out, Fig5Row{
			Region: r,
			Sign:   sign,
			Top:    pairing.TopContributors(contribs, k, sign),
		})
	}
	return out
}

// Fig5Report renders the positive-pairing (a) and negative-pairing (b)
// contributor tables.
func (e *Env) Fig5Report(rows []Fig5Row) (positive, negative *report.Table) {
	positive = report.NewTable(
		"Fig 5(a). Top ingredients contributing to positive food pairing",
		"Region", "Ingredients (ΔN̄s% on removal)")
	negative = report.NewTable(
		"Fig 5(b). Top ingredients contributing to negative food pairing",
		"Region", "Ingredients (ΔN̄s% on removal)")
	for _, row := range rows {
		var cells []string
		for _, c := range row.Top {
			cells = append(cells, fmt.Sprintf("%s(%+.1f%%)", c.Name, c.DeltaPct))
		}
		line := joinComma(cells)
		if row.Sign >= 0 {
			positive.AddRow(row.Region.Code(), line)
		} else {
			negative.AddRow(row.Region.Code(), line)
		}
	}
	return positive, negative
}
