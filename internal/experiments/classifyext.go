package experiments

import (
	"fmt"
	"sort"

	"culinary/internal/classify"
	"culinary/internal/recipedb"
	"culinary/internal/report"
)

// ClassifyResult summarizes the culinary-fingerprint classification
// extension: if cuisines carry non-random signature combinations (§I),
// a naive Bayes model over ingredient bags must recover the region of
// held-out recipes far above the majority-class baseline.
type ClassifyResult struct {
	// TestFraction is the held-out share (stratified per region).
	TestFraction float64
	// Evaluation is the full confusion/metric record.
	Evaluation *classify.Evaluation
	// Fingerprints holds each region's top-k authentic ingredients.
	Fingerprints map[recipedb.Region][]classify.FingerprintEntry
}

// ExtClassify trains on a deterministic 80/20 stratified split and
// evaluates held-out accuracy, then extracts per-region fingerprints.
func (e *Env) ExtClassify(testFraction float64, fingerprintK int) (*ClassifyResult, error) {
	if testFraction <= 0 || testFraction >= 1 {
		testFraction = 0.2
	}
	if fingerprintK <= 0 {
		fingerprintK = 3
	}
	train, test, err := classify.Split(e.Store, testFraction, e.Seed+0xC1A5)
	if err != nil {
		return nil, fmt.Errorf("experiments: classify split: %w", err)
	}
	c := classify.New()
	if err := c.Train(e.Store, train); err != nil {
		return nil, fmt.Errorf("experiments: classify train: %w", err)
	}
	ev, err := classify.Evaluate(c, e.Store, test)
	if err != nil {
		return nil, fmt.Errorf("experiments: classify evaluate: %w", err)
	}
	return &ClassifyResult{
		TestFraction: testFraction,
		Evaluation:   ev,
		Fingerprints: classify.Fingerprints(e.Store, fingerprintK),
	}, nil
}

// ExtClassifyReport renders accuracy and per-region metrics.
func (e *Env) ExtClassifyReport(res *ClassifyResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Cuisine classification (naive Bayes, %.0f%% held out): accuracy %.3f vs majority baseline %.3f over %d recipes",
			res.TestFraction*100, res.Evaluation.Accuracy, res.Evaluation.MajorityBaseline, res.Evaluation.Total),
		"Region", "Support", "Precision", "Recall", "F1")
	regions := make([]recipedb.Region, 0, len(res.Evaluation.PerRegion))
	for r := range res.Evaluation.PerRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		m := res.Evaluation.PerRegion[r]
		t.AddRow(r.Code(), m.Support,
			fmt.Sprintf("%.3f", m.Precision),
			fmt.Sprintf("%.3f", m.Recall),
			fmt.Sprintf("%.3f", m.F1))
	}
	return t
}

// FingerprintReport renders each region's most authentic ingredients.
func (e *Env) FingerprintReport(res *ClassifyResult) *report.Table {
	t := report.NewTable("Culinary fingerprints: most authentic ingredients per region",
		"Region", "Ingredient", "Prevalence", "Authenticity")
	regions := make([]recipedb.Region, 0, len(res.Fingerprints))
	for r := range res.Fingerprints {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		for _, fe := range res.Fingerprints[r] {
			t.AddRow(r.Code(), e.Catalog.Ingredient(fe.Ingredient).Name,
				fmt.Sprintf("%.3f", fe.Prevalence),
				fmt.Sprintf("%+.3f", fe.Authenticity))
		}
	}
	return t
}
