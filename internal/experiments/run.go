package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"culinary/internal/assoc"
	"culinary/internal/recipedb"
)

// Runner executes named experiments and writes rendered output.
type Runner struct {
	Env *Env
	// Out receives rendered tables and charts.
	Out io.Writer

	// fig4Cache memoizes the expensive Fig 4 sweep so that fig5 (which
	// needs the per-cuisine signs) does not recompute it.
	fig4Cache []Fig4Row
}

// fig4 returns cached Fig 4 rows, computing them on first use.
func (r *Runner) fig4() ([]Fig4Row, error) {
	if r.fig4Cache != nil {
		return r.fig4Cache, nil
	}
	rows, err := r.Env.Fig4()
	if err != nil {
		return nil, err
	}
	r.fig4Cache = rows
	return rows, nil
}

// experimentFn runs one named experiment.
type experimentFn func(*Runner) error

var registry = map[string]experimentFn{
	"table1": func(r *Runner) error {
		return r.Env.Table1Report().Render(r.Out)
	},
	"fig2": func(r *Runner) error {
		if err := r.Env.Fig2().Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		return r.Env.Fig2Table().Render(r.Out)
	},
	"fig3a": func(r *Runner) error {
		return r.Env.Fig3aReport().Render(r.Out)
	},
	"fig3b": func(r *Runner) error {
		if err := r.Env.Fig3bReport().Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		return r.Env.TopIngredientsReport(5).Render(r.Out)
	},
	"fig4": func(r *Runner) error {
		rows, err := r.fig4()
		if err != nil {
			return err
		}
		if err := r.Env.Fig4Chart(rows).Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		return r.Env.Fig4Report(rows).Render(r.Out)
	},
	"fig5": func(r *Runner) error {
		fig4, err := r.fig4()
		if err != nil {
			return err
		}
		rows := r.Env.Fig5(3, fig4)
		pos, neg := r.Env.Fig5Report(rows)
		if err := pos.Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		return neg.Render(r.Out)
	},
	"tuples": func(r *Runner) error {
		res, err := r.Env.ExtTuples(nil, 0)
		if err != nil {
			return err
		}
		return ExtTuplesReport(res).Render(r.Out)
	},
	"robustness": func(r *Runner) error {
		rows, err := r.Env.ExtRobustness(nil, 0)
		if err != nil {
			return err
		}
		return ExtRobustnessReport(rows).Render(r.Out)
	},
	"evolution": func(r *Runner) error {
		points, err := r.Env.ExtEvolution(nil)
		if err != nil {
			return err
		}
		return ExtEvolutionReport(points).Render(r.Out)
	},
	"aliasing": func(r *Runner) error {
		return ExtAliasingReport(r.Env.ExtAliasing(0)).Render(r.Out)
	},
	"perturbation": func(r *Runner) error {
		rows, err := r.Env.ExtPerturbation(nil, 0.2, 0)
		if err != nil {
			return err
		}
		return ExtPerturbationReport(rows).Render(r.Out)
	},
	"classify": func(r *Runner) error {
		res, err := r.Env.ExtClassify(0.2, 3)
		if err != nil {
			return err
		}
		if err := r.Env.ExtClassifyReport(res).Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		return r.Env.FingerprintReport(res).Render(r.Out)
	},
	"clusters": func(r *Runner) error {
		res, err := r.Env.ExtCluster()
		if err != nil {
			return err
		}
		if err := r.Env.ExtClusterReport(res).Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		_, err = fmt.Fprintln(r.Out, r.Env.ClusterDendrogram(res))
		return err
	},
	"rules": func(r *Runner) error {
		res, err := r.Env.ExtRules(recipedb.Italy, assoc.Config{})
		if err != nil {
			return err
		}
		counts, rules := r.Env.ExtRulesReport(res, 10)
		if err := counts.Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		return rules.Render(r.Out)
	},
	"network": func(r *Runner) error {
		if err := r.Env.ExtNetworkReport(r.Env.ExtNetwork(5, 10)).Render(r.Out); err != nil {
			return err
		}
		fmt.Fprintln(r.Out)
		tbl, err := r.Env.AuthenticityReport(3)
		if err != nil {
			return err
		}
		return tbl.Render(r.Out)
	},
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func (r *Runner) Run(name string) error {
	fn, ok := registry[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	fmt.Fprintf(r.Out, "== %s ==\n", strings.ToLower(name))
	if err := fn(r); err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	fmt.Fprintln(r.Out)
	return nil
}

// RunAll executes every registered experiment in a fixed order.
func (r *Runner) RunAll() error {
	order := []string{
		"table1", "fig2", "fig3a", "fig3b", "fig4", "fig5",
		"tuples", "robustness", "evolution", "aliasing",
		"perturbation", "network", "classify", "clusters", "rules",
	}
	for _, name := range order {
		if err := r.Run(name); err != nil {
			return err
		}
	}
	return nil
}
