package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtClassifyBeatsBaseline(t *testing.T) {
	res, err := testEnv.ExtClassify(0.2, 3)
	if err != nil {
		t.Fatalf("ExtClassify: %v", err)
	}
	ev := res.Evaluation
	if ev.Total == 0 {
		t.Fatal("empty evaluation")
	}
	if ev.Accuracy <= ev.MajorityBaseline {
		t.Errorf("accuracy %.3f <= baseline %.3f: no fingerprint signal in the synthetic corpus",
			ev.Accuracy, ev.MajorityBaseline)
	}
	if len(res.Fingerprints) == 0 {
		t.Error("no fingerprints")
	}
	for region, entries := range res.Fingerprints {
		if len(entries) == 0 || len(entries) > 3 {
			t.Errorf("region %v fingerprint size %d", region, len(entries))
		}
	}
}

func TestExtClassifyDefaultsAndDeterminism(t *testing.T) {
	// Out-of-range arguments fall back to defaults rather than failing.
	a, err := testEnv.ExtClassify(-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.TestFraction != 0.2 {
		t.Errorf("TestFraction = %g", a.TestFraction)
	}
	b, err := testEnv.ExtClassify(0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluation.Accuracy != b.Evaluation.Accuracy {
		t.Errorf("nondeterministic accuracy: %g vs %g", a.Evaluation.Accuracy, b.Evaluation.Accuracy)
	}
}

func TestClassifyRunnerRenders(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Env: testEnv, Out: &buf}
	if err := r.Run("classify"); err != nil {
		t.Fatalf("Run(classify): %v", err)
	}
	out := buf.String()
	for _, want := range []string{"accuracy", "Precision", "fingerprints", "Authenticity"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
