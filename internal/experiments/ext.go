package experiments

import (
	"fmt"

	"culinary/internal/alias"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/report"
	"culinary/internal/stats"
	"culinary/internal/synth"
)

// ExtTuples answers the paper's open question on higher-order patterns:
// k-tuple flavor sharing vs the Random control for k = 2, 3, 4, over the
// given regions (all major regions when regions is nil). The null sample
// is reduced relative to Fig 4 because tuple enumeration is
// combinatorial.
func (e *Env) ExtTuples(regions []recipedb.Region, nullRecipes int) ([]pairing.TupleResult, error) {
	if regions == nil {
		regions = recipedb.MajorRegions()
	}
	if nullRecipes <= 0 {
		nullRecipes = e.NullRecipes / 10
	}
	var out []pairing.TupleResult
	for _, r := range regions {
		c := e.Store.BuildCuisine(r)
		for k := 2; k <= 4; k++ {
			res, err := pairing.CompareTuples(e.Analyzer, e.Store, c, k, nullRecipes, e.src(0x500+uint64(r)*8+uint64(k)))
			if err != nil {
				return nil, fmt.Errorf("experiments: tuples %s k=%d: %w", r.Code(), k, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// ExtTuplesReport renders the tuple analysis.
func ExtTuplesReport(results []pairing.TupleResult) *report.Table {
	t := report.NewTable(
		"Ext-1. Higher-order (k-tuple) flavor sharing vs Random control",
		"Region", "k", "Observed", "NullMean", "Z")
	for _, res := range results {
		t.AddRow(res.Region.Code(), res.K, res.Observed, res.NullMean,
			fmt.Sprintf("%+.1f", res.Z))
	}
	return t
}

// RobustnessRow reports one region's sign stability under recipe
// bootstrap resampling.
type RobustnessRow struct {
	Region recipedb.Region
	// Observed is the full-cuisine N̄s; Lo/Hi bound its bootstrap CI.
	Observed, Lo, Hi float64
	// NullMean is the Random control mean; SignStable reports whether
	// the CI stays on one side of it.
	NullMean   float64
	SignStable bool
}

// ExtRobustness bootstrap-resamples each region's recipes and checks
// whether the food-pairing direction (N̄s vs Random-control mean)
// survives resampling — the paper's "how robust are the patterns to
// changes in recipes data" question.
func (e *Env) ExtRobustness(regions []recipedb.Region, replicates int) ([]RobustnessRow, error) {
	if regions == nil {
		regions = recipedb.MajorRegions()
	}
	if replicates <= 0 {
		replicates = 500
	}
	var out []RobustnessRow
	for _, r := range regions {
		c := e.Store.BuildCuisine(r)
		scores := make([]float64, 0, len(c.RecipeIDs))
		for _, rid := range c.RecipeIDs {
			if v, ok := e.Analyzer.RecipeScore(e.Store.Recipe(rid).Ingredients); ok {
				scores = append(scores, v)
			}
		}
		if len(scores) == 0 {
			return nil, fmt.Errorf("experiments: region %s has no scorable recipes", r.Code())
		}
		boot, err := stats.Bootstrap(scores, replicates, 0.95, e.src(0x600+uint64(r)), stats.MeanStat)
		if err != nil {
			return nil, fmt.Errorf("experiments: bootstrap %s: %w", r.Code(), err)
		}
		sampler, err := pairing.NewNullSampler(e.Analyzer, e.Store, c, pairing.RandomModel, e.src(0x700+uint64(r)))
		if err != nil {
			return nil, err
		}
		nullMean, _, _ := sampler.NullMoments(e.NullRecipes / 10)
		stable := (boot.Lo > nullMean && boot.Hi > nullMean) ||
			(boot.Lo < nullMean && boot.Hi < nullMean)
		out = append(out, RobustnessRow{
			Region: r, Observed: boot.Point, Lo: boot.Lo, Hi: boot.Hi,
			NullMean: nullMean, SignStable: stable,
		})
	}
	return out, nil
}

// ExtRobustnessReport renders the robustness table.
func ExtRobustnessReport(rows []RobustnessRow) *report.Table {
	t := report.NewTable(
		"Ext-2. Bootstrap robustness of the food-pairing direction (95% CI of N̄s vs Random mean)",
		"Region", "N̄s", "CI lo", "CI hi", "RandMean", "SignStable")
	for _, r := range rows {
		t.AddRow(r.Region.Code(), r.Observed, r.Lo, r.Hi, r.NullMean,
			fmt.Sprintf("%v", r.SignStable))
	}
	return t
}

// EvolutionPoint is one β setting of the copy-mutate sweep.
type EvolutionPoint struct {
	Beta float64
	Z    float64
}

// ExtEvolution sweeps the copy-mutate model's flavor-affinity bias β and
// measures the resulting pairing Z, demonstrating that the evolution
// model spans the full uniform-to-contrasting spectrum ([10] of the
// paper). The sweep generates a single mid-size cuisine per point.
func (e *Env) ExtEvolution(betas []float64) ([]EvolutionPoint, error) {
	if betas == nil {
		betas = []float64{-1.5, -1.0, -0.5, 0, 0.5, 1.0, 1.5}
	}
	out := make([]EvolutionPoint, 0, len(betas))
	for i, beta := range betas {
		store, err := synth.GenerateSingleRegion(e.Analyzer, recipedb.Greece, synth.SingleRegionConfig{
			Seed:    e.Seed + uint64(i)*31 + 1,
			Recipes: 600,
			Beta:    beta,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: evolution β=%g: %w", beta, err)
		}
		c := store.BuildCuisine(recipedb.Greece)
		res, err := pairing.Compare(e.Analyzer, store, c, pairing.RandomModel,
			e.NullRecipes/10, e.src(0x800+uint64(i)))
		if err != nil {
			return nil, err
		}
		out = append(out, EvolutionPoint{Beta: beta, Z: res.Z})
	}
	return out, nil
}

// ExtEvolutionReport renders the β sweep.
func ExtEvolutionReport(points []EvolutionPoint) *report.Table {
	t := report.NewTable(
		"Ext-3. Copy-mutate evolution model: pairing Z as a function of flavor-affinity bias β",
		"Beta", "Z")
	for _, p := range points {
		t.AddRow(p.Beta, fmt.Sprintf("%+.1f", p.Z))
	}
	return t
}

// AliasingResult summarizes the §IV.A pipeline's accuracy on synthesized
// noisy phrases with known ground truth.
type AliasingResult struct {
	Phrases      int
	Matched      int
	Partial      int
	Unrecognized int
	Fuzzy        int
	// Correct counts resolved phrases whose entity equals the ground
	// truth; Precision = Correct / (Matched + Partial).
	Correct   int
	Precision float64
	// ResolveRate = (Matched + Partial) / Phrases.
	ResolveRate float64
}

// ExtAliasing renders n noisy phrases and measures the aliasing
// pipeline's resolve rate and precision.
func (e *Env) ExtAliasing(n int) AliasingResult {
	if n <= 0 {
		n = 5000
	}
	pcfg := synth.DefaultPhraseConfig()
	pcfg.Seed = e.Seed + 77
	ps := synth.NewPhraseSynthesizer(e.Catalog, pcfg)
	batch := ps.RenderBatch(n)
	al := alias.New(e.Catalog)
	res := AliasingResult{Phrases: n}
	for _, lp := range batch {
		m := al.Resolve(lp.Phrase)
		switch m.Status {
		case alias.Matched:
			res.Matched++
		case alias.Partial:
			res.Partial++
		default:
			res.Unrecognized++
		}
		if m.Fuzzy {
			res.Fuzzy++
		}
		if m.Status != alias.Unrecognized && m.Ingredient == lp.Truth {
			res.Correct++
		}
	}
	resolved := res.Matched + res.Partial
	if resolved > 0 {
		res.Precision = float64(res.Correct) / float64(resolved)
	}
	res.ResolveRate = float64(resolved) / float64(n)
	return res
}

// ExtAliasingReport renders the aliasing evaluation.
func ExtAliasingReport(r AliasingResult) *report.Table {
	t := report.NewTable(
		"Ext-4. Ingredient aliasing pipeline accuracy on synthesized noisy phrases",
		"Phrases", "Matched", "Partial", "Unrecognized", "Fuzzy", "ResolveRate", "Precision")
	t.AddRow(r.Phrases, r.Matched, r.Partial, r.Unrecognized, r.Fuzzy,
		r.ResolveRate, r.Precision)
	return t
}
