package experiments

import (
	"bytes"
	"math"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
)

// TestIntegrationCSVRoundTripPreservesAnalysis exercises the full
// pipeline across packages: generate corpus → export CSV → reload →
// rerun the pairing analysis → identical results. This guards the
// contract that exports are lossless for analysis purposes.
func TestIntegrationCSVRoundTripPreservesAnalysis(t *testing.T) {
	var buf bytes.Buffer
	if err := testEnv.Store.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := recipedb.ReadCSV(&buf, testEnv.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != testEnv.Store.Len() {
		t.Fatalf("reloaded %d of %d recipes", reloaded.Len(), testEnv.Store.Len())
	}
	for _, region := range []recipedb.Region{recipedb.Italy, recipedb.Japan} {
		orig := testEnv.Store.BuildCuisine(region)
		got := reloaded.BuildCuisine(region)
		so, no := testEnv.Analyzer.CuisineScore(testEnv.Store, orig)
		sg, ng := testEnv.Analyzer.CuisineScore(reloaded, got)
		if no != ng || math.Abs(so-sg) > 1e-12 {
			t.Fatalf("%s: score %v/%d after reload vs %v/%d before",
				region.Code(), sg, ng, so, no)
		}
		// Null model moments are identical for identical seeds.
		a, err := pairing.Compare(testEnv.Analyzer, testEnv.Store, orig,
			pairing.FrequencyModel, 1000, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := pairing.Compare(testEnv.Analyzer, reloaded, got,
			pairing.FrequencyModel, 1000, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if a.NullMean != b.NullMean || a.Z != b.Z {
			t.Fatalf("%s: null moments differ after reload", region.Code())
		}
	}
}

// TestIntegrationJSONRoundTripPreservesAnalysis mirrors the CSV check
// for the JSON codec.
func TestIntegrationJSONRoundTripPreservesAnalysis(t *testing.T) {
	var buf bytes.Buffer
	if err := testEnv.Store.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := recipedb.ReadJSON(&buf, testEnv.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	orig := testEnv.Store.BuildCuisine(recipedb.World)
	got := reloaded.BuildCuisine(recipedb.World)
	if orig.NumRecipes() != got.NumRecipes() ||
		orig.NumUniqueIngredients() != got.NumUniqueIngredients() {
		t.Fatal("world cuisine differs after JSON reload")
	}
}

// TestIntegrationEnvDeterminism asserts that two environments built
// from the same options produce identical headline numbers.
func TestIntegrationEnvDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	other, err := NewEnv(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := testEnv.Fig4Region(recipedb.Greece)
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Fig4Region(recipedb.Greece)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical options, different Fig4 rows:\n%+v\n%+v", a, b)
	}
}

// TestIntegrationContributionConsistency: removing the top positive
// contributor from a positive cuisine must lower the measured cuisine
// score (cross-package sanity between contribution analysis and
// scoring).
func TestIntegrationContributionConsistency(t *testing.T) {
	c := testEnv.Store.BuildCuisine(recipedb.Italy)
	contribs := testEnv.Analyzer.Contributions(testEnv.Store, c)
	top := pairing.TopContributors(contribs, 1, +1)[0]
	if top.DeltaPct >= 0 {
		t.Skip("no negative-delta contributor in tiny corpus")
	}
	base, _ := testEnv.Analyzer.CuisineScore(testEnv.Store, c)
	// Rescore every recipe with the ingredient deleted and compare the
	// resulting mean against the contribution's prediction.
	var sum float64
	n := 0
	testEnv.Store.ForEachInRegion(recipedb.Italy, func(r *recipedb.Recipe) {
		ids := make([]flavor.ID, 0, len(r.Ingredients))
		for _, id := range r.Ingredients {
			if id != top.Ingredient {
				ids = append(ids, id)
			}
		}
		if v, ok := testEnv.Analyzer.RecipeScore(ids); ok {
			sum += v
			n++
		}
	})
	if n == 0 {
		t.Fatal("no scorable recipes after removal")
	}
	removedMean := sum / float64(n)
	if removedMean >= base {
		t.Fatalf("removing top positive contributor %q did not lower N̄s: %.3f -> %.3f",
			top.Name, base, removedMean)
	}
	predicted := base * (1 + top.DeltaPct/100)
	if math.Abs(predicted-removedMean) > 1e-9*math.Max(1, math.Abs(removedMean)) {
		t.Fatalf("contribution predicts %.6f, manual recomputation gives %.6f",
			predicted, removedMean)
	}
}
