package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"syscall"
	"testing"
	"time"

	"culinary/internal/experiments"
	"culinary/internal/httpmw"
	"culinary/internal/storage"
)

// degradedEnv builds a server whose recipedb store writes through to a
// real storage engine opened with a fault injector, so tests can wedge
// the write path under live HTTP traffic.
func degradedEnv(t *testing.T) (http.Handler, *storage.Store, *storage.ErrInjector, *experiments.Env) {
	t.Helper()
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	inj := storage.NewErrInjector()
	db, err := storage.Open(t.TempDir(), storage.Options{
		SyncEveryPut:   true,
		FaultInjection: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := storage.SaveCorpus(db, env.Store); err != nil {
		t.Fatal(err)
	}
	env.Store.SetBackend(db)
	srv, err := New(Config{
		Store:    env.Store,
		Analyzer: env.Analyzer,
		Seed:     3,
		DB:       db,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler(), db, inj, env
}

// upsertBody builds a valid upsert request against the test catalog.
func upsertBody(env *experiments.Env, slot int, name string) map[string]interface{} {
	rec := env.Store.Recipe(slot)
	ings := make([]string, 0, 2)
	for _, id := range rec.Ingredients[:2] {
		ings = append(ings, env.Store.Catalog().Ingredient(id).Name)
	}
	return map[string]interface{}{
		"id":          slot,
		"name":        name,
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": ings,
	}
}

// TestHealthStorageHealthBlock pins the /api/health storage.health
// shape: operators and the load generator key on these field names, so
// renaming any of them is a breaking change this test makes loud.
func TestHealthStorageHealthBlock(t *testing.T) {
	h, _, _, _ := degradedEnv(t)
	code, body := do(t, h, "GET", "/api/health", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	st, ok := body["storage"].(map[string]interface{})
	if !ok {
		t.Fatalf("health lacks storage block: %v", body)
	}
	hb, ok := st["health"].(map[string]interface{})
	if !ok {
		t.Fatalf("storage block lacks health: %v", st)
	}
	for _, key := range []string{
		"state", "lastWriteError", "degradations", "recoveries",
		"salvagedRecords", "quarantinedSegments", "scrub",
	} {
		if _, ok := hb[key]; !ok {
			t.Errorf("storage.health missing %q: %v", key, hb)
		}
	}
	if hb["state"] != "healthy" {
		t.Errorf("state = %v, want healthy", hb["state"])
	}
	scrub, ok := hb["scrub"].(map[string]interface{})
	if !ok {
		t.Fatalf("storage.health lacks scrub: %v", hb)
	}
	for _, key := range []string{
		"running", "runs", "segmentsVerified", "bytesVerified",
		"corruptionsFound", "recordsSalvaged", "recordsLost", "lastError",
	} {
		if _, ok := scrub[key]; !ok {
			t.Errorf("storage.health.scrub missing %q: %v", key, scrub)
		}
	}
}

// TestMutationsDegradeTo503 drives the full degradation loop over
// HTTP: a write fault wedges the storage engine, after which mutations
// return a structured 503 storage_unavailable with a Retry-After hint
// (not a leaky 500), reads keep serving, /api/health reports the
// degraded state, and once the fault clears recovery restores
// mutations.
func TestMutationsDegradeTo503(t *testing.T) {
	h, db, inj, env := degradedEnv(t)

	// Sanity: mutations work while healthy.
	code, body := do(t, h, "POST", "/api/recipes", upsertBody(env, 1, "healthy dish"))
	if code != http.StatusOK && code != http.StatusCreated {
		t.Fatalf("healthy upsert: %d %v", code, body)
	}

	// Wedge the write path: every subsequent segment write fails as if
	// the disk filled up.
	inj.Arm(syscall.ENOSPC, storage.FaultCreate, storage.FaultWrite, storage.FaultSync)
	code, body = do(t, h, "POST", "/api/recipes", upsertBody(env, 2, "doomed dish"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded upsert: %d %v, want 503", code, body)
	}
	errObj, ok := body["error"].(map[string]interface{})
	if !ok {
		t.Fatalf("503 lacks envelope: %v", body)
	}
	if errObj["code"] != httpmw.CodeStorageUnavailable {
		t.Errorf("code = %v, want %s", errObj["code"], httpmw.CodeStorageUnavailable)
	}

	// Retry-After must be an integer >= 1 (the envelope decode above
	// used do(); re-issue raw to read headers).
	raw := httptest.NewRecorder()
	encoded, _ := json.Marshal(upsertBody(env, 3, "still doomed"))
	req := httptest.NewRequest("POST", "/api/recipes", bytes.NewReader(encoded))
	h.ServeHTTP(raw, req)
	if raw.Code != http.StatusServiceUnavailable {
		t.Fatalf("second degraded upsert: %d", raw.Code)
	}
	secs, err := strconv.Atoi(raw.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", raw.Header().Get("Retry-After"))
	}

	// Deletes degrade the same way.
	delRec := httptest.NewRecorder()
	h.ServeHTTP(delRec, httptest.NewRequest("DELETE", "/api/recipes/1", nil))
	if delRec.Code != http.StatusServiceUnavailable {
		t.Errorf("degraded delete: %d, want 503", delRec.Code)
	}

	// Reads keep serving while degraded.
	if code, _ := do(t, h, "GET", "/api/recipes/1", nil); code != http.StatusOK {
		t.Errorf("degraded read: %d, want 200", code)
	}
	if code, _ := do(t, h, "POST", "/api/query",
		map[string]string{"q": "SELECT count(*) FROM recipes"}); code != http.StatusOK {
		t.Errorf("degraded query: %d, want 200", code)
	}

	// Health reports the degradation.
	_, hbody := do(t, h, "GET", "/api/health", nil)
	hb := hbody["storage"].(map[string]interface{})["health"].(map[string]interface{})
	if hb["state"] != "readOnly" {
		t.Errorf("state = %v, want readOnly", hb["state"])
	}
	if hb["lastWriteError"] == "" {
		t.Error("lastWriteError empty while degraded")
	}

	// Fault clears; recovery restores mutations.
	inj.Clear()
	if err := db.TryRecoverWrites(); err != nil {
		t.Fatalf("TryRecoverWrites: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = do(t, h, "POST", "/api/recipes", upsertBody(env, 4, "recovered dish"))
		if code == http.StatusOK || code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered upsert: %d %v", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, hbody = do(t, h, "GET", "/api/health", nil)
	hb = hbody["storage"].(map[string]interface{})["health"].(map[string]interface{})
	if hb["state"] != "healthy" {
		t.Errorf("post-recovery state = %v, want healthy", hb["state"])
	}
	if hb["degradations"].(float64) < 1 || hb["recoveries"].(float64) < 1 {
		t.Errorf("transition counters not recorded: %v", hb)
	}
}
