package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"culinary/internal/experiments"
	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/replica"
	"culinary/internal/storage"
)

// doHdr issues one request with optional headers and returns the
// recorder, for tests that assert on response headers.
func doHdr(t *testing.T, h http.Handler, method, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(""))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestVersionGate pins the read-your-writes contract on a primary: a
// freshness floor at or below the corpus version passes (and every
// response is stamped with X-Corpus-Version), a floor ahead of it
// answers 503 replica_lagging with a Retry-After hint, and a malformed
// floor is a 400.
func TestVersionGate(t *testing.T) {
	h := testHandler(t)

	rr := doHdr(t, h, "GET", "/api/regions", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("ungated read: %d", rr.Code)
	}
	stamp := rr.Header().Get("X-Corpus-Version")
	cur, err := strconv.ParseUint(stamp, 10, 64)
	if err != nil {
		t.Fatalf("X-Corpus-Version %q: %v", stamp, err)
	}

	// Floor satisfied: header and query-parameter forms both pass.
	rr = doHdr(t, h, "GET", "/api/regions", map[string]string{"X-Min-Version": stamp})
	if rr.Code != http.StatusOK {
		t.Errorf("satisfied floor: %d", rr.Code)
	}
	rr = doHdr(t, h, "GET", "/api/regions?minVersion="+stamp, nil)
	if rr.Code != http.StatusOK {
		t.Errorf("satisfied ?minVersion floor: %d", rr.Code)
	}

	// Floor ahead of the corpus: typed 503 with a retry hint.
	ahead := strconv.FormatUint(cur+1000, 10)
	rr = doHdr(t, h, "GET", "/api/regions", map[string]string{"X-Min-Version": ahead})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("unsatisfied floor: %d", rr.Code)
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != "replica_lagging" {
		t.Errorf("code = %q, want replica_lagging", code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("replica_lagging without Retry-After")
	}
	rr = doHdr(t, h, "GET", "/api/regions?minVersion="+ahead, nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("unsatisfied ?minVersion floor: %d", rr.Code)
	}

	// Malformed floor: a client bug, not a lag condition.
	rr = doHdr(t, h, "GET", "/api/regions", map[string]string{"X-Min-Version": "not-a-number"})
	if rr.Code != http.StatusBadRequest {
		t.Errorf("malformed floor: %d", rr.Code)
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != "bad_request" {
		t.Errorf("malformed floor code = %q, want bad_request", code)
	}
}

// followerFixture wires a full primary→follower pair: a storage-backed
// corpus serving a replication feed, and a follower-mode Server over
// the replica's corpus.
type followerFixture struct {
	corpus   *recipedb.Store // primary corpus (mutate to create lag)
	follower *replica.Follower
	handler  http.Handler
}

func newFollowerFixture(t *testing.T) *followerFixture {
	t.Helper()
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatalf("building env: %v", err)
	}
	corpus := recipedb.NewStore(env.Catalog)
	names := env.Catalog.Names()
	for i := 0; i < 8; i++ {
		id1, _ := env.Catalog.Lookup(names[(i*7)%len(names)])
		id2, _ := env.Catalog.Lookup(names[(i*7+3)%len(names)])
		if _, err := corpus.Add(fmt.Sprintf("primary recipe %d", i), recipedb.Italy, recipedb.AllRecipes,
			[]flavor.ID{id1, id2}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	if err := storage.SaveCorpus(db, corpus); err != nil {
		t.Fatalf("SaveCorpus: %v", err)
	}
	corpus.SetBackend(db)
	feedSrv := httptest.NewServer(replica.NewFeed(db, corpus).Handler())
	t.Cleanup(feedSrv.Close)

	f, err := replica.OpenFollower(replica.FollowerConfig{
		Primary: feedSrv.URL,
		Dir:     t.TempDir(),
		Catalog: env.Catalog,
	})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	t.Cleanup(func() { f.Close() })

	srv, err := New(Config{
		Store:      f.Corpus(),
		Analyzer:   env.Analyzer,
		Follower:   f,
		PrimaryURL: "http://primary.example:8080/",
	})
	if err != nil {
		t.Fatalf("building follower server: %v", err)
	}
	t.Cleanup(srv.Close)
	return &followerFixture{corpus: corpus, follower: f, handler: srv.Handler()}
}

// TestFollowerRejectsMutations pins replica mode: every mutation
// endpoint answers 403 not_primary with a Location redirect at the
// primary, while reads keep serving.
func TestFollowerRejectsMutations(t *testing.T) {
	fx := newFollowerFixture(t)
	for _, tc := range []struct{ method, path string }{
		{"POST", "/api/recipes"},
		{"POST", "/api/recipes/batch"},
		{"DELETE", "/api/recipes/0"},
	} {
		rr := doHdr(t, fx.handler, tc.method, tc.path, nil)
		if rr.Code != http.StatusForbidden {
			t.Fatalf("%s %s: %d, want 403", tc.method, tc.path, rr.Code)
		}
		if code := envelopeCode(t, rr.Body.Bytes()); code != "not_primary" {
			t.Errorf("%s %s code = %q, want not_primary", tc.method, tc.path, code)
		}
		want := "http://primary.example:8080" + tc.path
		if loc := rr.Header().Get("Location"); loc != want {
			t.Errorf("%s %s Location = %q, want %q", tc.method, tc.path, loc, want)
		}
	}
	if rr := doHdr(t, fx.handler, "GET", "/api/recipes/0", nil); rr.Code != http.StatusOK {
		t.Errorf("read on follower: %d", rr.Code)
	}
}

// TestFollowerVersionToken walks the full read-your-writes loop: a
// primary write produces version V, a follower read with floor V lags
// with a typed 503 until one replication poll lands it, after which
// the same read serves and stamps a version >= V.
func TestFollowerVersionToken(t *testing.T) {
	fx := newFollowerFixture(t)
	names := fx.corpus.Catalog().Names()
	ing1, _ := fx.corpus.Catalog().Lookup(names[0])
	ing2, _ := fx.corpus.Catalog().Lookup(names[1])
	id, v, _, err := fx.corpus.Upsert(-1, "written on primary", recipedb.Japan, recipedb.AllRecipes, []flavor.ID{ing1, ing2})
	if err != nil {
		t.Fatalf("primary write: %v", err)
	}
	token := strconv.FormatUint(v, 10)
	path := fmt.Sprintf("/api/recipes/%d", id)

	rr := doHdr(t, fx.handler, "GET", path, map[string]string{"X-Min-Version": token})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("lagging read: %d, want 503", rr.Code)
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != "replica_lagging" {
		t.Errorf("lagging code = %q", code)
	}

	if err := fx.follower.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	rr = doHdr(t, fx.handler, "GET", path, map[string]string{"X-Min-Version": token})
	if rr.Code != http.StatusOK {
		t.Fatalf("caught-up read: %d (%s)", rr.Code, rr.Body.String())
	}
	got, _ := strconv.ParseUint(rr.Header().Get("X-Corpus-Version"), 10, 64)
	if got < v {
		t.Errorf("stamped version %d below floor %d", got, v)
	}
}

// TestFollowerHealthReplicationBlock asserts /api/health reports the
// follower role and its replication counters.
func TestFollowerHealthReplicationBlock(t *testing.T) {
	fx := newFollowerFixture(t)
	rr := doHdr(t, fx.handler, "GET", "/api/health", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("health: %d", rr.Code)
	}
	var body struct {
		Replication struct {
			Role     string                 `json:"role"`
			Follower map[string]interface{} `json:"follower"`
		} `json:"replication"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("health body: %v", err)
	}
	if body.Replication.Role != "follower" {
		t.Errorf("role = %q, want follower", body.Replication.Role)
	}
	if body.Replication.Follower == nil {
		t.Error("health missing follower stats")
	}
}
