package server

import (
	"fmt"
	"net/http"
	"testing"

	"culinary/internal/experiments"
)

// mutableServer builds a private server instance (the shared srvOnce
// corpus must stay immutable for the other endpoint tests).
func mutableServer(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Store:            env.Store,
		Analyzer:         env.Analyzer,
		NullRecipes:      200,
		Seed:             3,
		ResultCacheBytes: 1 << 20,
		// Negative: no background rebuild loops — tests that need the
		// models current after a mutation call RebuildDerived, keeping
		// freshness deterministic instead of timing-dependent.
		ClassifierRebuildInterval:  -1,
		RecommenderRebuildInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, s.Handler()
}

func TestUpsertRecipeEndpoint(t *testing.T) {
	s, h := mutableServer(t)
	before := s.cfg.Store.Len()
	v0 := s.cfg.Store.Version()

	// Insert (no id).
	code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"name":        "posted pasta",
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": []string{"tomato", "garlic", "olive oil"},
	})
	if code != http.StatusCreated {
		t.Fatalf("insert: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	if id != before { // new slot appended at the end
		t.Errorf("insert id = %d, want %d", id, before)
	}
	if uint64(body["version"].(float64)) != v0+1 {
		t.Errorf("version = %v, want %d", body["version"], v0+1)
	}

	// The new recipe is immediately queryable.
	code, body = do(t, h, "POST", "/api/query",
		map[string]string{"q": "SELECT name FROM recipes WHERE has('tomato') AND has('garlic') AND has('olive oil')"})
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}

	// Replace in place.
	code, body = do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"id":          id,
		"name":        "posted pasta v2",
		"region":      "FRA",
		"source":      "Epicurious",
		"ingredients": []string{"butter", "cream"},
	})
	if code != http.StatusOK {
		t.Fatalf("replace: %d %v", code, body)
	}
	if rec := s.cfg.Store.Recipe(id); rec.Name != "posted pasta v2" {
		t.Errorf("replace did not land: %+v", rec)
	}

	// Validation errors surface as 422.
	for _, bad := range []map[string]interface{}{
		{"name": "x", "region": "NOPE", "source": "Epicurious", "ingredients": []string{"tomato", "garlic"}},
		{"name": "x", "region": "ITA", "source": "bad site", "ingredients": []string{"tomato", "garlic"}},
		{"name": "x", "region": "ITA", "source": "Epicurious", "ingredients": []string{"unobtainium", "garlic"}},
		{"name": "x", "region": "ITA", "source": "Epicurious", "ingredients": []string{"garlic"}},
	} {
		if code, body = do(t, h, "POST", "/api/recipes", bad); code != http.StatusUnprocessableEntity {
			t.Errorf("bad payload %v: %d %v", bad, code, body)
		}
	}
	// Out-of-range explicit IDs are 404, not corpus growth.
	code, body = do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"id": 1 << 30, "name": "x", "region": "ITA", "source": "Epicurious",
		"ingredients": []string{"tomato", "garlic"},
	})
	if code != http.StatusNotFound {
		t.Errorf("huge id: %d %v", code, body)
	}
}

// TestUpsertEmptyIngredients422 pins the regression: an empty (or
// absent) ingredients list must be an explicit structured 422, not
// whatever the store's generic validation happens to say.
func TestUpsertEmptyIngredients422(t *testing.T) {
	_, h := mutableServer(t)
	for _, body := range []map[string]interface{}{
		{"name": "x", "region": "ITA", "source": "Epicurious", "ingredients": []string{}},
		{"name": "x", "region": "ITA", "source": "Epicurious"},
	} {
		code, resp := do(t, h, "POST", "/api/recipes", body)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("empty ingredients %v: %d %v", body, code, resp)
		}
		errObj := resp["error"].(map[string]interface{})
		if errObj["code"] != "unprocessable" {
			t.Errorf("error code = %v, want unprocessable", errObj["code"])
		}
		if msg := errObj["message"].(string); msg != "ingredients list is empty" {
			t.Errorf("message = %q", msg)
		}
	}
}

// TestUpsertDeduplicatesIngredients pins the regression: duplicates —
// case variants of one spelling, or spellings resolving to the same
// catalog entity — collapse silently instead of failing the upsert.
func TestUpsertDeduplicatesIngredients(t *testing.T) {
	s, h := mutableServer(t)
	code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"name":        "deduped pasta",
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": []string{"tomato", "Tomato", "TOMATO", "garlic", " tomato ", "olive oil", "garlic"},
	})
	if code != http.StatusCreated {
		t.Fatalf("deduped upsert rejected: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	rec := s.cfg.Store.Recipe(id)
	if len(rec.Ingredients) != 3 {
		t.Fatalf("stored %d ingredients, want 3 (tomato, garlic, olive oil): %v", len(rec.Ingredients), rec.Ingredients)
	}
}

func TestDeleteRecipeEndpoint(t *testing.T) {
	s, h := mutableServer(t)
	before := s.cfg.Store.Len()

	code, body := do(t, h, "DELETE", "/api/recipes/0", nil)
	if code != http.StatusOK {
		t.Fatalf("delete: %d %v", code, body)
	}
	if s.cfg.Store.Len() != before-1 {
		t.Errorf("Len = %d, want %d", s.cfg.Store.Len(), before-1)
	}
	// Deleted recipes 404 on read and on double delete.
	if code, _ = do(t, h, "GET", "/api/recipes/0", nil); code != http.StatusNotFound {
		t.Errorf("read deleted: %d", code)
	}
	if code, _ = do(t, h, "DELETE", "/api/recipes/0", nil); code != http.StatusNotFound {
		t.Errorf("double delete: %d", code)
	}
	if code, _ = do(t, h, "DELETE", fmt.Sprintf("/api/recipes/%d", 1<<30), nil); code != http.StatusNotFound {
		t.Errorf("out of range delete: %d", code)
	}
	if code, _ = do(t, h, "DELETE", "/api/recipes/xyz", nil); code != http.StatusBadRequest {
		t.Errorf("non-numeric delete: %d", code)
	}

	// A count(*) through the cached query path reflects the deletion.
	code, body = do(t, h, "POST", "/api/query", map[string]string{"q": "SELECT count(*) FROM recipes"})
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}
	rows := body["rows"].([]interface{})
	got := rows[0].([]interface{})[0].(string)
	if want := fmt.Sprintf("%d", before-1); got != want {
		t.Errorf("count(*) = %s, want %s", got, want)
	}
}
