package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"culinary/internal/experiments"
	"culinary/internal/httpmw"
)

// trafficEnv is a second shared corpus for armored servers: the
// package fixture (testHandler) runs without the traffic stack, and
// these tests need servers with deliberately hostile limits.
var (
	trafficEnvOnce sync.Once
	trafficEnv     *experiments.Env
	trafficEnvErr  error
)

func armoredServer(t *testing.T, tc httpmw.Config, resultCacheBytes int64) *Server {
	t.Helper()
	trafficEnvOnce.Do(func() {
		trafficEnv, trafficEnvErr = experiments.NewEnv(experiments.TestOptions())
	})
	if trafficEnvErr != nil {
		t.Fatalf("building env: %v", trafficEnvErr)
	}
	s, err := New(Config{
		Store:            trafficEnv.Store,
		Analyzer:         trafficEnv.Analyzer,
		NullRecipes:      500,
		Seed:             7,
		ResultCacheBytes: resultCacheBytes,
		Traffic:          &tc,
	})
	if err != nil {
		t.Fatalf("building armored server: %v", err)
	}
	return s
}

// doFrom issues a request with an explicit client address so each
// test draws from its own per-IP rate-limit bucket.
func doFrom(t *testing.T, h http.Handler, ip, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	req.RemoteAddr = ip + ":55555"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// envelopeCode decodes the structured error envelope and returns its
// code, failing the test if the body is not envelope-shaped.
func envelopeCode(t *testing.T, body []byte) string {
	t.Helper()
	var env httpmw.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("body %q is not the error envelope: %v", body, err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope %+v missing code or message", env)
	}
	return env.Error.Code
}

// healthTraffic fetches /api/health (exempt from all limits) and
// returns the traffic counters block.
func healthTraffic(t *testing.T, h http.Handler) map[string]interface{} {
	t.Helper()
	rr := doFrom(t, h, "203.0.113.200", "GET", "/api/health", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("health status = %d", rr.Code)
	}
	var body map[string]interface{}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	traffic, ok := body["traffic"].(map[string]interface{})
	if !ok {
		t.Fatalf("health lacks the traffic block: %v", body)
	}
	return traffic
}

// armoredConfig is the shared tight-limits config: read budget of 2
// requests (for the 429 test), roomy mutation budget, 1 KiB body cap
// (for the 413 test). Each test isolates itself via a distinct IP.
func armoredConfig() httpmw.Config {
	return httpmw.Config{
		ReadRPS:       1,
		ReadBurst:     2,
		MutationRPS:   100,
		MutationBurst: 100,
		MaxInFlight:   64,
		RetryAfter:    time.Second,
		MaxBodyBytes:  1 << 10,
	}
}

var (
	armoredOnce sync.Once
	armoredSrv  *Server
)

func armoredHandler(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	armoredOnce.Do(func() {
		armoredSrv = armoredServer(t, armoredConfig(), -1)
	})
	if armoredSrv == nil {
		t.Fatal("armored server failed to build in an earlier test")
	}
	return armoredSrv, armoredSrv.Handler()
}

// TestTraffic413OversizedPost posts a body past the cap at the real
// upsert endpoint and asserts the structured 413 plus its counter.
func TestTraffic413OversizedPost(t *testing.T) {
	srv, h := armoredHandler(t)

	// Build a syntactically valid upsert that exceeds the 1 KiB cap.
	big, err := json.Marshal(upsertRequest{
		Name:        strings.Repeat("pad", 600),
		Region:      "ITA",
		Source:      "Epicurious",
		Ingredients: []string{"tomato", "garlic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := doFrom(t, h, "203.0.113.1", "POST", "/api/recipes", big)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", rr.Code, rr.Body.String())
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != httpmw.CodeTooLarge {
		t.Fatalf("envelope code = %q, want %q", code, httpmw.CodeTooLarge)
	}
	if n := srv.Traffic().Stats().Rejected413; n < 1 {
		t.Fatalf("Rejected413 = %d, want >= 1", n)
	}

	// A small body on the same route still works: the cap rejects
	// size, not the endpoint.
	small, _ := json.Marshal(upsertRequest{
		Name:        "traffic test dish",
		Region:      "ITA",
		Source:      "Epicurious",
		Ingredients: []string{"tomato", "garlic"},
	})
	rr = doFrom(t, h, "203.0.113.1", "POST", "/api/recipes", small)
	if rr.Code != http.StatusOK && rr.Code != http.StatusCreated {
		t.Fatalf("small upsert status = %d (%s)", rr.Code, rr.Body.String())
	}
}

// TestTraffic429ThroughHandlers exhausts the read budget through the
// full server chain and asserts the header contract plus counters.
func TestTraffic429ThroughHandlers(t *testing.T) {
	srv, h := armoredHandler(t)
	const ip = "203.0.113.2"

	admitted := 0
	var limited *httptest.ResponseRecorder
	for i := 0; i < 5; i++ {
		rr := doFrom(t, h, ip, "GET", "/api/regions", nil)
		switch rr.Code {
		case http.StatusOK:
			admitted++
			if rr.Header().Get("X-RateLimit-Limit") == "" ||
				rr.Header().Get("X-RateLimit-Remaining") == "" {
				t.Fatalf("admitted response missing X-RateLimit-* headers")
			}
		case http.StatusTooManyRequests:
			if limited == nil {
				limited = rr
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, rr.Code)
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d reads, want exactly the burst 2", admitted)
	}
	if limited == nil {
		t.Fatal("budget exhausted but no 429 observed")
	}
	if ra, err := strconv.Atoi(limited.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", limited.Header().Get("Retry-After"))
	}
	if code := envelopeCode(t, limited.Body.Bytes()); code != httpmw.CodeRateLimited {
		t.Fatalf("envelope code = %q, want %q", code, httpmw.CodeRateLimited)
	}
	if n := srv.Traffic().Stats().Rejected429; n < 3 {
		t.Fatalf("Rejected429 = %d, want >= 3", n)
	}

	// Health stays reachable from the throttled IP: probes are exempt.
	if rr := doFrom(t, h, ip, "GET", "/api/health", nil); rr.Code != http.StatusOK {
		t.Fatalf("exempt health probe throttled: %d", rr.Code)
	}
}

// TestTrafficHealthBlock asserts the /api/health traffic block carries
// every advertised counter, including both limiter sub-blocks.
func TestTrafficHealthBlock(t *testing.T) {
	_, h := armoredHandler(t)
	// Generate at least one admitted request so counters are live.
	doFrom(t, h, "203.0.113.3", "GET", "/api/regions", nil)

	traffic := healthTraffic(t, h)
	for _, key := range []string{
		"inFlight", "inFlightLimit", "effectiveLimit", "peakInFlight",
		"admitted", "rejected413", "rejected429", "shed503", "timeouts",
	} {
		if _, ok := traffic[key]; !ok {
			t.Errorf("traffic block missing %q: %v", key, traffic)
		}
	}
	if traffic["admitted"].(float64) < 1 {
		t.Errorf("admitted = %v, want >= 1", traffic["admitted"])
	}
	for _, limiter := range []string{"readLimiter", "mutationLimiter"} {
		sub, ok := traffic[limiter].(map[string]interface{})
		if !ok {
			t.Fatalf("traffic block missing %q: %v", limiter, traffic)
		}
		for _, key := range []string{"rps", "burst", "tokens", "keys", "denied"} {
			if _, ok := sub[key]; !ok {
				t.Errorf("%s missing %q: %v", limiter, key, sub)
			}
		}
	}
}

// TestTrafficDeadline504 arms an expired per-request deadline and
// asserts the query endpoint surfaces the structured timeout instead
// of scanning to completion. Result cache disabled: a cache hit would
// return before the scan's cancellation check could fire.
func TestTrafficDeadline504(t *testing.T) {
	tc := httpmw.Config{
		ReadRPS:        1000,
		MutationRPS:    1000,
		MaxInFlight:    64,
		RetryAfter:     time.Second,
		MaxBodyBytes:   1 << 20,
		RequestTimeout: time.Nanosecond,
	}
	srv := armoredServer(t, tc, 0)
	h := srv.Handler()

	stmt, _ := json.Marshal(map[string]string{"q": "SELECT avg(score) FROM recipes WHERE size > 0"})
	rr := doFrom(t, h, "203.0.113.4", "POST", "/api/query", stmt)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rr.Code, rr.Body.String())
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != httpmw.CodeTimeout {
		t.Fatalf("envelope code = %q, want %q", code, httpmw.CodeTimeout)
	}
	if n := srv.Traffic().Stats().Timeouts; n < 1 {
		t.Fatalf("Timeouts = %d, want >= 1", n)
	}
}

// TestTrafficMuxErrorsAreEnveloped asserts that even router-generated
// 404/405 responses conform to the envelope when the stack is armed.
func TestTrafficMuxErrorsAreEnveloped(t *testing.T) {
	_, h := armoredHandler(t)

	rr := doFrom(t, h, "203.0.113.5", "GET", "/api/nope", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rr.Code)
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != httpmw.CodeNotFound {
		t.Fatalf("404 envelope code = %q", code)
	}

	rr = doFrom(t, h, "203.0.113.5", "DELETE", "/api/regions", nil)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rr.Code)
	}
	if code := envelopeCode(t, rr.Body.Bytes()); code != httpmw.CodeMethod {
		t.Fatalf("405 envelope code = %q", code)
	}
}
