package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"culinary/internal/experiments"
)

// testServer builds one server over the shared 5%-scale corpus.
var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	srvOnce.Do(func() {
		env, err := experiments.NewEnv(experiments.TestOptions())
		if err != nil {
			srvErr = err
			return
		}
		srv, srvErr = New(Config{
			Store:       env.Store,
			Analyzer:    env.Analyzer,
			NullRecipes: 500,
			Seed:        7,
		})
	})
	if srvErr != nil {
		t.Fatalf("building server: %v", srvErr)
	}
	return srv.Handler()
}

// do issues one request and decodes the JSON response.
func do(t *testing.T, h http.Handler, method, path string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(raw)
	} else {
		reader = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, reader)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var decoded map[string]interface{}
	if rr.Body.Len() > 0 {
		raw := rr.Body.Bytes()
		if err := json.Unmarshal(raw, &decoded); err != nil {
			// Some endpoints return arrays; the mux's own 404/405
			// responses are plain text. Wrap both.
			var arr []interface{}
			if err2 := json.Unmarshal(raw, &arr); err2 != nil {
				decoded = map[string]interface{}{"_raw": string(raw)}
			} else {
				decoded = map[string]interface{}{"_array": arr}
			}
		}
	}
	return rr.Code, decoded
}

func TestHealth(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/health", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
	if body["recipes"].(float64) <= 0 || body["ingredients"].(float64) <= 0 {
		t.Errorf("counts missing: %v", body)
	}
	qc, ok := body["queryCache"].(map[string]interface{})
	if !ok {
		t.Fatalf("health lacks queryCache stats: %v", body)
	}
	for _, key := range []string{"hits", "misses", "entries"} {
		if _, ok := qc[key]; !ok {
			t.Errorf("queryCache missing %q: %v", key, qc)
		}
	}
}

// TestQueryCacheCounters checks the plan cache wired through the HTTP
// layer: repeating one statement must raise the health hit counter.
func TestQueryCacheCounters(t *testing.T) {
	h := testHandler(t)
	stmt := map[string]string{"q": "SELECT count(*) FROM recipes"}
	for i := 0; i < 3; i++ {
		if code, _ := do(t, h, "POST", "/api/query", stmt); code != http.StatusOK {
			t.Fatalf("query status = %d", code)
		}
	}
	_, body := do(t, h, "GET", "/api/health", nil)
	qc := body["queryCache"].(map[string]interface{})
	if hits := qc["hits"].(float64); hits < 2 {
		t.Errorf("hits = %v after 3 identical queries, want >= 2", hits)
	}
}

func TestRegionsList(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/regions", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	arr := body["_array"].([]interface{})
	if len(arr) != 22 {
		t.Fatalf("regions = %d, want 22", len(arr))
	}
	first := arr[0].(map[string]interface{})
	for _, key := range []string{"code", "name", "recipes", "ingredients"} {
		if _, ok := first[key]; !ok {
			t.Errorf("region summary missing %q: %v", key, first)
		}
	}
}

func TestRegionDetail(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/regions/ita", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	if body["code"] != "ITA" {
		t.Errorf("code = %v", body["code"])
	}
	if body["meanRecipeSize"].(float64) <= 0 {
		t.Errorf("meanRecipeSize = %v", body["meanRecipeSize"])
	}
	top := body["topIngredients"].([]interface{})
	if len(top) == 0 {
		t.Error("no top ingredients")
	}
	usage := body["categoryUsage"].(map[string]interface{})
	if len(usage) == 0 {
		t.Error("no category usage")
	}

	code, body = do(t, h, "GET", "/api/regions/NOPE", nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown region status = %d (%v)", code, body)
	}
}

func TestPairingEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/regions/ita/pairing?null=200", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	if body["region"] != "ITA" || body["model"] != "Random" {
		t.Errorf("body = %v", body)
	}
	z := body["z"].(float64)
	if z == 0 {
		t.Error("z-score exactly zero is vanishingly unlikely")
	}
	dir := body["pairing"].(string)
	if z > 0 && !strings.HasPrefix(dir, "uniform") || z < 0 && !strings.HasPrefix(dir, "contrasting") {
		t.Errorf("direction %q inconsistent with z=%g", dir, z)
	}
	// Model selection.
	code, body = do(t, h, "GET", "/api/regions/ita/pairing?null=200&model=frequency", nil)
	if code != http.StatusOK || body["model"] != "Frequency" {
		t.Errorf("frequency model: %d %v", code, body)
	}
	// Bad parameters.
	if code, _ := do(t, h, "GET", "/api/regions/ita/pairing?null=5", nil); code != http.StatusBadRequest {
		t.Errorf("null=5 status = %d", code)
	}
	if code, _ := do(t, h, "GET", "/api/regions/ita/pairing?model=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bogus model status = %d", code)
	}
}

func TestRecipesPagination(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/recipes?region=ITA&limit=5", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	recipes := body["recipes"].([]interface{})
	if len(recipes) != 5 {
		t.Fatalf("page size = %d", len(recipes))
	}
	total := int(body["total"].(float64))
	if total <= 5 {
		t.Fatalf("total = %d", total)
	}
	firstID := recipes[0].(map[string]interface{})["id"].(float64)

	_, body2 := do(t, h, "GET", "/api/recipes?region=ITA&limit=5&offset=5", nil)
	recipes2 := body2["recipes"].([]interface{})
	if recipes2[0].(map[string]interface{})["id"].(float64) == firstID {
		t.Error("offset did not advance the page")
	}

	for _, bad := range []string{"limit=0", "limit=abc", "offset=-1", "region=XX"} {
		if code, _ := do(t, h, "GET", "/api/recipes?"+bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, code)
		}
	}
}

func TestRecipeByID(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/recipes/0", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	rec := body["recipe"].(map[string]interface{})
	if rec["name"] == "" || len(rec["ingredients"].([]interface{})) < 2 {
		t.Errorf("recipe = %v", rec)
	}
	if _, ok := body["pairingScore"]; !ok {
		t.Error("missing pairingScore")
	}
	if code, _ := do(t, h, "GET", "/api/recipes/99999999", nil); code != http.StatusNotFound {
		t.Errorf("big id status = %d", code)
	}
	if code, _ := do(t, h, "GET", "/api/recipes/abc", nil); code != http.StatusNotFound {
		t.Errorf("non-numeric id status = %d", code)
	}
}

func TestIngredientEndpoints(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/ingredients/tomato", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["name"] != "tomato" || body["category"] != "Vegetable" {
		t.Errorf("body = %v", body)
	}
	if body["profileSize"].(float64) <= 0 {
		t.Errorf("profileSize = %v", body["profileSize"])
	}

	code, body = do(t, h, "GET", "/api/ingredients/tomato/pairings?limit=5", nil)
	if code != http.StatusOK {
		t.Fatalf("pairings status = %d", code)
	}
	pairings := body["pairings"].([]interface{})
	if len(pairings) != 5 {
		t.Fatalf("pairings = %d", len(pairings))
	}
	prev := pairings[0].(map[string]interface{})["sharedCompounds"].(float64)
	for _, p := range pairings[1:] {
		cur := p.(map[string]interface{})["sharedCompounds"].(float64)
		if cur > prev {
			t.Error("pairings not sorted by shared compounds")
		}
		prev = cur
	}

	if code, _ := do(t, h, "GET", "/api/ingredients/unobtainium", nil); code != http.StatusNotFound {
		t.Errorf("unknown ingredient status = %d", code)
	}
	// A no-profile additive cannot rank partners.
	code, _ = do(t, h, "GET", "/api/ingredients/cooking%20spray/pairings", nil)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("no-profile pairings status = %d", code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/search?q=tomato+garlic&limit=5", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	hits := body["hits"].([]interface{})
	if len(hits) == 0 || len(hits) > 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	if code, _ := do(t, h, "GET", "/api/search", nil); code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", code)
	}
	if code, _ := do(t, h, "GET", "/api/search?q=tomato&region=ZZ", nil); code != http.StatusBadRequest {
		t.Errorf("bad region status = %d", code)
	}
	// Region-restricted results only contain that region.
	_, body = do(t, h, "GET", "/api/search?q=tomato&region=JPN&limit=10", nil)
	for _, hRaw := range body["hits"].([]interface{}) {
		rec := hRaw.(map[string]interface{})["recipe"].(map[string]interface{})
		if rec["region"] != "JPN" {
			t.Errorf("hit outside region: %v", rec["region"])
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "POST", "/api/query",
		queryRequest{Q: "SELECT region, count(*) FROM recipes GROUP BY region ORDER BY count(*) DESC LIMIT 3"})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	cols := body["columns"].([]interface{})
	if len(cols) != 2 || cols[0] != "region" {
		t.Errorf("columns = %v", cols)
	}
	rows := body["rows"].([]interface{})
	if len(rows) != 3 {
		t.Errorf("rows = %d", len(rows))
	}
	// Semantic failure maps to 422.
	code, body = do(t, h, "POST", "/api/query", queryRequest{Q: "SELECT bogus FROM recipes"})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad query status = %d (%v)", code, body)
	}
	if code, _ := do(t, h, "POST", "/api/query", queryRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty query status = %d", code)
	}
	req := httptest.NewRequest("POST", "/api/query", strings.NewReader("{not json"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", rr.Code)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "POST", "/api/classify",
		classifyRequest{Ingredients: []string{"soy sauce", "tofu", "seaweed", "rice", "not-a-food"}})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	preds := body["predictions"].([]interface{})
	if len(preds) == 0 || len(preds) > 5 {
		t.Fatalf("predictions = %d", len(preds))
	}
	first := preds[0].(map[string]interface{})
	if first["probability"].(float64) <= 0 {
		t.Errorf("prediction = %v", first)
	}
	unknown := body["unknownIngredients"].([]interface{})
	if len(unknown) != 1 || unknown[0] != "not-a-food" {
		t.Errorf("unknown = %v", unknown)
	}

	if code, _ := do(t, h, "POST", "/api/classify", classifyRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty body status = %d", code)
	}
	code, _ = do(t, h, "POST", "/api/classify", classifyRequest{Ingredients: []string{"nope1", "nope2"}})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("all-unknown status = %d", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testHandler(t)
	if code, _ := do(t, h, "DELETE", "/api/regions", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d", code)
	}
	if code, _ := do(t, h, "GET", "/api/query", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET query status = %d", code)
	}
}

func TestUnknownPath(t *testing.T) {
	h := testHandler(t)
	if code, _ := do(t, h, "GET", "/api/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", code)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with empty config succeeded")
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := testHandler(t)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{
				"/api/health",
				"/api/regions",
				fmt.Sprintf("/api/recipes/%d", i),
				"/api/search?q=garlic",
			}
			for _, p := range paths {
				req := httptest.NewRequest("GET", p, nil)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code != http.StatusOK {
					errs <- fmt.Sprintf("%s -> %d", p, rr.Code)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
