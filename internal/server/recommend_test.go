package server

import (
	"net/http"
	"testing"
)

func TestCompleteEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "POST", "/api/complete",
		completeRequest{Region: "ITA", Ingredients: []string{"tomato", "garlic", "mystery-dust"}, K: 5})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	sugs := body["suggestions"].([]interface{})
	if len(sugs) != 5 {
		t.Fatalf("suggestions = %d", len(sugs))
	}
	first := sugs[0].(map[string]interface{})
	for _, key := range []string{"ingredient", "category", "score", "flavorFit", "popularity"} {
		if _, ok := first[key]; !ok {
			t.Errorf("suggestion missing %q: %v", key, first)
		}
	}
	unknown := body["unknownIngredients"].([]interface{})
	if len(unknown) != 1 || unknown[0] != "mystery-dust" {
		t.Errorf("unknown = %v", unknown)
	}

	// Error paths.
	if code, _ := do(t, h, "POST", "/api/complete", completeRequest{Region: "XX", Ingredients: []string{"tomato"}}); code != http.StatusBadRequest {
		t.Errorf("bad region status = %d", code)
	}
	if code, _ := do(t, h, "POST", "/api/complete", completeRequest{Region: "ITA"}); code != http.StatusUnprocessableEntity {
		t.Errorf("no ingredients status = %d", code)
	}
	code, _ = do(t, h, "POST", "/api/complete", completeRequest{Region: "ITA", Ingredients: []string{"nope"}})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("all-unknown status = %d", code)
	}
}

func TestTasteEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "POST", "/api/taste",
		tasteRequest{Ingredients: []string{"tomato", "basil", "garlic"}, K: 5})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	taste := body["taste"].([]interface{})
	if len(taste) == 0 || len(taste) > 5 {
		t.Fatalf("taste entries = %d", len(taste))
	}
	prev := taste[0].(map[string]interface{})["weight"].(float64)
	var sum float64
	for _, raw := range taste {
		e := raw.(map[string]interface{})
		w := e["weight"].(float64)
		if w > prev {
			t.Error("taste not sorted by weight")
		}
		if e["descriptor"] == "" {
			t.Error("empty descriptor")
		}
		sum += w
		prev = w
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Errorf("top-5 weights sum to %g", sum)
	}
	if code, _ := do(t, h, "POST", "/api/taste", tasteRequest{}); code != http.StatusUnprocessableEntity {
		t.Errorf("empty taste status = %d", code)
	}
	if code, _ := do(t, h, "POST", "/api/taste", tasteRequest{Ingredients: []string{"nope"}}); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown taste status = %d", code)
	}
}

func TestSubstituteEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := do(t, h, "GET", "/api/ingredients/basil/substitutes?limit=5", nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	subs := body["substitutes"].([]interface{})
	if len(subs) != 5 {
		t.Fatalf("substitutes = %d", len(subs))
	}
	prev := subs[0].(map[string]interface{})["similarity"].(float64)
	for _, raw := range subs {
		sub := raw.(map[string]interface{})
		if sub["sameCategory"] != true {
			t.Errorf("default search crossed category: %v", sub)
		}
		cur := sub["similarity"].(float64)
		if cur > prev {
			t.Error("substitutes not sorted")
		}
		prev = cur
	}
	// Cross-category search is opt-in.
	code, _ = do(t, h, "GET", "/api/ingredients/basil/substitutes?anycategory=1", nil)
	if code != http.StatusOK {
		t.Errorf("anycategory status = %d", code)
	}
	// Error paths.
	if code, _ := do(t, h, "GET", "/api/ingredients/unobtainium/substitutes", nil); code != http.StatusNotFound {
		t.Errorf("unknown ingredient status = %d", code)
	}
	if code, _ := do(t, h, "GET", "/api/ingredients/basil/substitutes?limit=0", nil); code != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", code)
	}
	code, _ = do(t, h, "GET", "/api/ingredients/cooking%20spray/substitutes", nil)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("no-profile status = %d", code)
	}
}
