package server

import (
	"fmt"
	"net/http"
	"strings"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
	"culinary/internal/recommend"
)

// completeRequest is the POST /api/complete body.
type completeRequest struct {
	Region      string   `json:"region"`
	Ingredients []string `json:"ingredients"`
	K           int      `json:"k"`
}

// completeEntry is one suggestion on the wire.
type completeEntry struct {
	Ingredient string  `json:"ingredient"`
	Category   string  `json:"category"`
	Score      float64 `json:"score"`
	FlavorFit  float64 `json:"flavorFit"`
	Popularity float64 `json:"popularity"`
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !s.decodeJSON(w, r, &req, "body must be JSON {\"region\": \"ITA\", \"ingredients\": [...]}") {
		return
	}
	region, err := recipedb.ParseRegion(req.Region)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ids, unknown, err := s.resolveIngredients(req.Ingredients)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	k := req.K
	if k <= 0 {
		k = 5
	}
	if k > 50 {
		k = 50
	}
	model, modelVersion, err := s.recommender.Get()
	if err != nil {
		s.writeModelUnavailable(w, err)
		return
	}
	sugs, err := model.Complete(region, ids, recommend.CompleteOptions{K: k})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	out := make([]completeEntry, len(sugs))
	for i, sg := range sugs {
		ing := s.catalog.Ingredient(sg.Ingredient)
		out[i] = completeEntry{
			Ingredient: ing.Name,
			Category:   ing.Category.String(),
			Score:      sg.Score,
			FlavorFit:  sg.FlavorFit,
			Popularity: sg.Popularity,
		}
	}
	resp := map[string]interface{}{
		"region":      region.Code(),
		"suggestions": out,
		// modelVersion is the corpus version the recommender's cuisine
		// snapshots were built at.
		"modelVersion": modelVersion,
	}
	if len(unknown) > 0 {
		resp["unknownIngredients"] = unknown
	}
	writeJSON(w, resp)
}

// substituteEntry is one replacement candidate on the wire.
type substituteEntry struct {
	Ingredient   string  `json:"ingredient"`
	Category     string  `json:"category"`
	Similarity   float64 `json:"similarity"`
	SameCategory bool    `json:"sameCategory"`
}

func (s *Server) handleSubstitute(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, ok := s.catalog.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no ingredient %q", name))
		return
	}
	opts := recommend.SubstituteOptions{K: 5, RequireSameCategory: true}
	if raw := r.URL.Query().Get("limit"); raw != "" {
		var v int
		if _, err := fmt.Sscanf(raw, "%d", &v); err != nil || v < 1 || v > 50 {
			writeError(w, http.StatusBadRequest, "limit must be in [1,50]")
			return
		}
		opts.K = v
	}
	if raw := r.URL.Query().Get("anycategory"); raw == "1" || strings.EqualFold(raw, "true") {
		opts.RequireSameCategory = false
	}
	model, modelVersion, err := s.recommender.Get()
	if err != nil {
		s.writeModelUnavailable(w, err)
		return
	}
	subs, err := model.Substitutes(id, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	out := make([]substituteEntry, len(subs))
	for i, sub := range subs {
		ing := s.catalog.Ingredient(sub.Ingredient)
		out[i] = substituteEntry{
			Ingredient:   ing.Name,
			Category:     ing.Category.String(),
			Similarity:   sub.Similarity,
			SameCategory: sub.SameCategory,
		}
	}
	writeJSON(w, map[string]interface{}{
		"ingredient":   name,
		"substitutes":  out,
		"modelVersion": modelVersion,
	})
}

// tasteRequest is the POST /api/taste body.
type tasteRequest struct {
	Ingredients []string `json:"ingredients"`
	K           int      `json:"k"`
}

// handleTaste enumerates the taste of an ingredient list — the paper's
// §V question "Could it be possible to enumerate the taste of a
// recipe?" — as a normalized descriptor-weight vector.
func (s *Server) handleTaste(w http.ResponseWriter, r *http.Request) {
	var req tasteRequest
	if !s.decodeJSON(w, r, &req, "body must be JSON {\"ingredients\": [...]}") {
		return
	}
	ids, unknown, err := s.resolveIngredients(req.Ingredients)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	profile := s.catalog.TasteProfile(ids)
	if profile == nil {
		writeError(w, http.StatusUnprocessableEntity, "no flavor molecules in the given ingredients")
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k < len(profile) {
		profile = profile[:k]
	}
	type entry struct {
		Descriptor string  `json:"descriptor"`
		Weight     float64 `json:"weight"`
	}
	out := make([]entry, len(profile))
	for i, dw := range profile {
		out[i] = entry{Descriptor: dw.Descriptor, Weight: dw.Weight}
	}
	resp := map[string]interface{}{
		"taste": out,
	}
	if len(unknown) > 0 {
		resp["unknownIngredients"] = unknown
	}
	writeJSON(w, resp)
}

// resolveIngredients maps names to catalog IDs, collecting unknowns.
// It fails only when nothing resolves.
func (s *Server) resolveIngredients(names []string) (ids []flavor.ID, unknown []string, err error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("ingredients list is empty")
	}
	for _, name := range names {
		if id, ok := s.catalog.Lookup(name); ok {
			ids = append(ids, id)
		} else {
			unknown = append(unknown, name)
		}
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("none of the ingredients are known: %s", strings.Join(unknown, ", "))
	}
	return ids, unknown, nil
}
