// Package server exposes the culinary database over HTTP — the
// equivalent of the paper's public CulinaryDB/FlavorDB web front ends
// (http://cosylab.iiitd.edu.in/culinarydb), implemented with net/http
// only. The API serves region statistics, recipes, ingredient flavor
// data, pairing analyses, full-text search, CQL queries and cuisine
// classification as JSON.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"culinary/internal/classify"
	"culinary/internal/derived"
	"culinary/internal/flavor"
	"culinary/internal/httpmw"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/recipedb"
	"culinary/internal/recommend"
	"culinary/internal/replica"
	"culinary/internal/rng"
	"culinary/internal/search"
	"culinary/internal/storage"
)

// Config assembles the dependencies of a Server.
type Config struct {
	Store    *recipedb.Store
	Analyzer *pairing.Analyzer
	// NullRecipes is the default null-model sample size for the
	// pairing endpoint; requests may lower (never raise) it. Defaults
	// to 2000.
	NullRecipes int
	// Seed drives the pairing endpoint's null draws.
	Seed uint64
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// DB is the optional storage engine backing the corpus snapshot;
	// when set, /api/health reports its segment and background
	// compaction statistics.
	DB *storage.Store
	// ResultCacheBytes bounds the query engine's result cache (keyed
	// by normalized statement and corpus version). 0 disables it;
	// negative selects query.DefaultResultCacheBytes.
	ResultCacheBytes int64
	// Traffic, when non-nil, arms the httpmw production-traffic stack
	// (rate limiting, body caps, per-request deadlines, load
	// shedding) around every handler. Nil callbacks get server-aware
	// defaults: IsMutation classifies POST/DELETE /api/recipes as
	// mutations, Exempt passes /api/health, and Grace widens the
	// in-flight gate while the result cache is cold. /api/health
	// reports the stack's counters under "traffic".
	Traffic *httpmw.Config
	// ClassifierRebuildInterval debounces the classifier's background
	// rebuilds: at most one per interval while the corpus is mutating.
	// 0 selects derived.DefaultInterval; negative disables the
	// background loop (rebuilds then happen only via explicit Rebuild
	// calls — the deterministic mode tests use).
	ClassifierRebuildInterval time.Duration
	// RecommenderRebuildInterval is the recommender's counterpart.
	RecommenderRebuildInterval time.Duration
	// MaxBatchItems caps the number of recipes one POST
	// /api/recipes/batch request may carry. 0 selects
	// DefaultMaxBatchItems; negative disables the cap.
	MaxBatchItems int
	// Follower switches the server into read-replica mode: Store must
	// be the follower's corpus, mutation endpoints answer 403
	// not_primary (with a Location redirect when PrimaryURL is set),
	// and /api/health gains a replication block with the follower's
	// lag and poll counters. Read endpoints are unchanged — including
	// the version gate, which is what makes replica reads safe under
	// the read-your-writes contract (see replica.go).
	Follower *replica.Follower
	// PrimaryURL is the primary's public API base URL, advertised in
	// not_primary rejections so clients can self-correct.
	PrimaryURL string
	// Feed, on a primary serving a replication listener, adds the
	// feed's counters to /api/health's replication block.
	Feed *replica.Feed
}

// DefaultMaxBatchItems bounds a bulk-ingest request when
// Config.MaxBatchItems is zero. A batch holds the fan-in token for its
// whole plan/persist/apply cycle, so the cap is what keeps one huge
// ingest from stalling interactive mutations behind it.
const DefaultMaxBatchItems = 256

// DefaultColdGraceMultiplier widens the load-shed gate while the
// result cache is cold: cold-cache queries run ~600× longer than
// cached ones, so in-flight counts spike on exactly the traffic that
// will warm the cache. Once the hit ratio crosses
// coldCacheHitRatio the bound snaps back to the configured limit.
const (
	DefaultColdGraceMultiplier = 4.0
	coldCacheHitRatio          = 0.5
	coldCacheMinSamples        = 100
)

// Server routes API requests to the analysis stack. Every derived
// read model is version-aware: the full-text search index is
// maintained incrementally inside the mutation critical section (an
// acked upsert is searchable by the next request), while the
// classifier and recommender rebuild in the background, debounced by
// corpus version, and stamp responses with the corpus version they
// were built at. Construction still indexes the whole corpus, so
// creating a Server is not free; reuse one instance and Close it when
// done to stop the rebuild loops.
type Server struct {
	cfg         Config
	catalog     *flavor.Catalog
	index       *search.Index
	engine      *query.Engine
	classifier  *derived.Rebuilder[*classify.Classifier]
	recommender *derived.Rebuilder[*recommend.Recommender]
	traffic     *httpmw.Traffic
	mux         *http.ServeMux
	// storage503 counts storage_unavailable responses (one per queued
	// mutation or whole batch request), reported under
	// traffic.storageUnavailable503 in /api/health.
	storage503 atomic.Int64
}

// New builds a Server and its derived indexes. A corpus that cannot
// train a model (empty, or only one region) is not an error: the
// affected endpoints serve structured 503 model_unavailable until the
// corpus supports the model, and the rebuild loop keeps trying as the
// corpus changes.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil || cfg.Analyzer == nil {
		return nil, errors.New("server: Config needs Store and Analyzer")
	}
	if cfg.NullRecipes <= 0 {
		cfg.NullRecipes = 2000
	}
	s := &Server{
		cfg:     cfg,
		catalog: cfg.Store.Catalog(),
		index:   search.NewLive(cfg.Store),
		engine:  query.NewEngine(cfg.Store, cfg.Analyzer),
	}
	if cfg.ResultCacheBytes != 0 {
		s.engine.EnableResultCache(cfg.ResultCacheBytes)
	}
	s.classifier = derived.New("classifier", cfg.Store, cfg.ClassifierRebuildInterval,
		func(v *recipedb.View) (*classify.Classifier, error) {
			c := classify.New()
			if err := c.TrainView(v, v.LiveIDs()); err != nil {
				return nil, err
			}
			return c, nil
		})
	s.recommender = derived.New("recommender", cfg.Store, cfg.RecommenderRebuildInterval,
		func(v *recipedb.View) (*recommend.Recommender, error) {
			if v.Len() == 0 {
				return nil, errors.New("recommend: empty corpus")
			}
			return recommend.NewFromView(cfg.Analyzer, v), nil
		})
	if cfg.Traffic != nil {
		tc := *cfg.Traffic
		if tc.IsMutation == nil {
			tc.IsMutation = isMutationRequest
		}
		if tc.Exempt == nil {
			tc.Exempt = isExemptRequest
		}
		if tc.Grace == nil {
			tc.Grace = s.coldCacheGrace
		}
		s.traffic = httpmw.NewTraffic(tc)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// isMutationRequest splits the rate-limit budgets: only requests that
// mutate the corpus draw from the (smaller) mutation budget; read-only
// POST endpoints (query, classify, complete, taste) are cheap reads.
func isMutationRequest(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return false
	case http.MethodDelete:
		return true
	}
	return strings.HasPrefix(r.URL.Path, "/api/recipes")
}

// isExemptRequest passes health probes around the limiter and the
// load-shed gate: monitoring must answer precisely when the server is
// saturated, and the soak harness asserts on its counters mid-storm.
func isExemptRequest(r *http.Request) bool {
	return r.URL.Path == "/api/health"
}

// coldCacheGrace is the default load-shed grace hook (see
// DefaultColdGraceMultiplier). With the result cache disabled every
// query pays full price all the time, so there is no warmup window to
// be graceful about and the bound stays fixed.
func (s *Server) coldCacheGrace() float64 {
	rcs := s.engine.ResultCacheStats()
	if !rcs.Enabled {
		return 1
	}
	total := rcs.Hits + rcs.Misses
	if total < coldCacheMinSamples || float64(rcs.Hits)/float64(total) < coldCacheHitRatio {
		return DefaultColdGraceMultiplier
	}
	return 1
}

// Traffic exposes the armor stack's counters (nil when Config.Traffic
// was nil); the load/soak harness asserts against these via
// /api/health.
func (s *Server) Traffic() *httpmw.Traffic { return s.traffic }

// Close stops the background model-rebuild loops. Handlers keep
// serving the last built epoch afterwards.
func (s *Server) Close() {
	s.classifier.Close()
	s.recommender.Close()
}

// RebuildDerived synchronously brings the classifier and recommender
// up to the current corpus version — the quiesce hook tests and
// drain paths use instead of waiting out the debounce interval.
func (s *Server) RebuildDerived() {
	s.classifier.Rebuild()
	s.recommender.Rebuild()
}

// Index exposes the live search index (for equivalence checks).
func (s *Server) Index() *search.Index { return s.index }

// modelRetryAfterSeconds is the Retry-After hint on model_unavailable
// responses: the rebuild loop retries as soon as the corpus version
// moves, so a short client backoff suffices.
const modelRetryAfterSeconds = 1

// writeModelUnavailable maps a derived-model miss onto the structured
// envelope: 503 model_unavailable with Retry-After. The build error
// (e.g. "need >= 2 regions") is safe to surface — it describes corpus
// shape, not internals.
func (s *Server) writeModelUnavailable(w http.ResponseWriter, err error) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("derived model unavailable: %v", err)
	}
	w.Header().Set("Retry-After", strconv.Itoa(modelRetryAfterSeconds))
	httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeModelUnavailable,
		err.Error())
}

// routes registers every endpoint.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/regions", s.handleRegions)
	s.mux.HandleFunc("GET /api/regions/{code}", s.handleRegion)
	s.mux.HandleFunc("GET /api/regions/{code}/pairing", s.handlePairing)
	s.mux.HandleFunc("GET /api/recipes", s.handleRecipes)
	s.mux.HandleFunc("GET /api/recipes/{id}", s.handleRecipe)
	if s.cfg.Follower != nil {
		// Read-replica mode: the corpus mutates only via replication
		// replay, never via the API. Intercepting here (rather than
		// relying on the missing backend) keeps the in-memory corpus
		// from silently diverging from the primary's log.
		s.mux.HandleFunc("POST /api/recipes", s.handleNotPrimary)
		s.mux.HandleFunc("POST /api/recipes/batch", s.handleNotPrimary)
		s.mux.HandleFunc("DELETE /api/recipes/{id}", s.handleNotPrimary)
	} else {
		s.mux.HandleFunc("POST /api/recipes", s.handleUpsertRecipe)
		s.mux.HandleFunc("POST /api/recipes/batch", s.handleBatchUpsert)
		s.mux.HandleFunc("DELETE /api/recipes/{id}", s.handleDeleteRecipe)
	}
	s.mux.HandleFunc("GET /api/ingredients/{name}", s.handleIngredient)
	s.mux.HandleFunc("GET /api/ingredients/{name}/pairings", s.handleIngredientPairings)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("POST /api/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/classify", s.handleClassify)
	s.mux.HandleFunc("POST /api/complete", s.handleComplete)
	s.mux.HandleFunc("GET /api/ingredients/{name}/substitutes", s.handleSubstitute)
	s.mux.HandleFunc("POST /api/taste", s.handleTaste)
}

// Handler returns the root handler. Chain, outermost first: panic
// recovery → request log → [rate limit → load-shed gate → body cap →
// deadline, when Config.Traffic is set] → envelope fallback → mux.
// Rejections happen cheapest-first (a 429 costs one map probe; a 503
// costs one atomic add) so overload never reaches the handlers, and
// the envelope fallback guarantees even the mux's own 404/405 pages
// honor the structured error contract.
func (s *Server) Handler() http.Handler {
	// The version gate sits just outside the mux: freshness floors are
	// checked (and responses version-stamped) for every endpoint, after
	// the traffic stack has already shed what it will shed.
	var h http.Handler = s.versionGate(s.mux)
	if s.traffic != nil {
		h = s.traffic.Wrap(h) // includes the envelope fallback
	} else {
		h = httpmw.EnvelopeFallback(h)
	}
	return s.recoverWrap(s.logWrap(h))
}

// logWrap logs one line per request when a logger is configured.
func (s *Server) logWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s", r.Method, r.URL.Path)
		}
		next.ServeHTTP(w, r)
	})
}

// recoverWrap converts handler panics into 500 responses so one bad
// request cannot take the server down.
func (s *Server) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if s.cfg.Logger != nil {
					s.cfg.Logger.Printf("panic serving %s: %v", r.URL.Path, rec)
				}
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// writeError emits the structured error envelope
// {"error":{"code","message"}} with the code derived from the status;
// handlers needing a specific code call httpmw.WriteError directly.
func writeError(w http.ResponseWriter, status int, msg string) {
	httpmw.WriteError(w, status, "", msg)
}

// decodeJSON decodes a JSON request body, answering 413 (structured,
// counted) when the httpmw body cap tripped and 400 with the
// endpoint's usage string on malformed JSON. Returns false when a
// response was already written.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}, usage string) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	if httpmw.IsMaxBytesError(err) {
		if s.traffic != nil {
			s.traffic.Note413()
		}
		httpmw.WriteError(w, http.StatusRequestEntityTooLarge, httpmw.CodeTooLarge,
			"request body exceeds the configured size limit")
		return false
	}
	writeError(w, http.StatusBadRequest, usage)
	return false
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	cs := s.engine.CacheStats()
	rcs := s.engine.ResultCacheStats()
	body := map[string]interface{}{
		"status":        "ok",
		"recipes":       s.cfg.Store.Len(),
		"corpusVersion": s.cfg.Store.Version(),
		"ingredients":   s.catalog.Len(),
		"molecules":     s.catalog.NumMolecules(),
		"vocabulary":    s.index.Vocabulary(),
		"queryCache": map[string]int64{
			"hits":    cs.Hits,
			"misses":  cs.Misses,
			"entries": int64(cs.Entries),
		},
		"resultCache": map[string]interface{}{
			"enabled":     rcs.Enabled,
			"hits":        rcs.Hits,
			"misses":      rcs.Misses,
			"entries":     rcs.Entries,
			"bytes":       rcs.Bytes,
			"capacity":    rcs.Capacity,
			"evicted":     rcs.Evicted,
			"invalidated": rcs.Invalidated,
		},
	}
	corpusVersion := s.cfg.Store.Version()
	body["derived"] = map[string]interface{}{
		// The search index is maintained synchronously inside the
		// mutation critical section, so its lag is zero by
		// construction; the version is reported so monitoring can
		// cross-check the invariant.
		"search": map[string]interface{}{
			"mode":    "synchronous",
			"version": s.index.Version(),
			"lag":     lagBehind(corpusVersion, s.index.Version()),
		},
		"classifier":  derivedModelHealth(s.classifier.Stats(), corpusVersion),
		"recommender": derivedModelHealth(s.recommender.Stats(), corpusVersion),
	}
	// The traffic block always carries the mutation fan-in's coalescing
	// telemetry and the storage_unavailable response count; the
	// rate-limit/shed counters join it when the traffic stack is armed.
	bs := s.cfg.Store.BatchStats()
	mutationBatches := map[string]interface{}{
		"batches":   bs.Batches,
		"ops":       bs.Ops,
		"coalesced": bs.Coalesced,
		"p50":       bs.P50Batch,
		"max":       bs.MaxBatch,
	}
	if s.traffic != nil {
		body["traffic"] = struct {
			httpmw.TrafficStats
			MutationBatches interface{} `json:"mutationBatches"`
			Storage503      int64       `json:"storageUnavailable503"`
		}{s.traffic.Stats(), mutationBatches, s.storage503.Load()}
	} else {
		body["traffic"] = map[string]interface{}{
			"mutationBatches":       mutationBatches,
			"storageUnavailable503": s.storage503.Load(),
		}
	}
	switch {
	case s.cfg.Follower != nil:
		body["replication"] = map[string]interface{}{
			"role":     "follower",
			"follower": s.cfg.Follower.Stats(),
		}
	case s.cfg.Feed != nil:
		body["replication"] = map[string]interface{}{
			"role": "primary",
			"feed": s.cfg.Feed.Stats(),
		}
	}
	if s.cfg.DB != nil {
		st := s.cfg.DB.Stats()
		comp := s.cfg.DB.CompactionStats()
		rs := s.cfg.DB.ReadStats()
		hs := s.cfg.DB.HealthStats()
		body["storage"] = map[string]interface{}{
			"keys":      st.Keys,
			"segments":  st.Segments,
			"liveBytes": st.LiveBytes,
			"deadBytes": st.DeadBytes,
			"readPath": map[string]interface{}{
				"mmapSegments": rs.MmapSegments,
				"mmapReads":    rs.MmapReads,
				"preadReads":   rs.PreadReads,
			},
			"readCache": map[string]interface{}{
				"hits":     rs.CacheHits,
				"misses":   rs.CacheMisses,
				"entries":  rs.CacheEntries,
				"bytes":    rs.CacheBytes,
				"capacity": rs.CacheCapacity,
			},
			"compaction": map[string]interface{}{
				"running":           comp.Running,
				"runs":              comp.Runs,
				"segmentsCompacted": comp.SegmentsCompacted,
				"bytesReclaimed":    comp.BytesReclaimed,
				"wedged":            comp.Wedged,
				"lastError":         comp.LastError,
			},
			"health": map[string]interface{}{
				"state":               hs.State,
				"lastWriteError":      hs.LastWriteError,
				"degradations":        hs.Degradations,
				"recoveries":          hs.Recoveries,
				"salvagedRecords":     hs.SalvagedRecords,
				"quarantinedSegments": hs.QuarantinedSegments,
				"scrub": map[string]interface{}{
					"running":          hs.Scrub.Running,
					"runs":             hs.Scrub.Runs,
					"segmentsVerified": hs.Scrub.SegmentsVerified,
					"bytesVerified":    hs.Scrub.BytesVerified,
					"corruptionsFound": hs.Scrub.CorruptionsFound,
					"recordsSalvaged":  hs.Scrub.RecordsSalvaged,
					"recordsLost":      hs.Scrub.RecordsLost,
					"lastError":        hs.Scrub.LastError,
				},
			},
		}
	}
	writeJSON(w, body)
}

// lagBehind is a saturating corpus-version delta: a model built at a
// newer version than the sampled corpus version (a mutation raced the
// health probe) reads as zero lag, never as underflow.
func lagBehind(corpus, model uint64) uint64 {
	if model >= corpus {
		return 0
	}
	return corpus - model
}

// derivedModelHealth shapes one rebuilder's stats for /api/health.
func derivedModelHealth(st derived.Stats, corpusVersion uint64) map[string]interface{} {
	return map[string]interface{}{
		"available":    st.Available,
		"version":      st.Version,
		"lag":          lagBehind(corpusVersion, st.Version),
		"rebuilds":     st.Rebuilds,
		"failures":     st.Failures,
		"lastError":    st.LastError,
		"lastBuildNs":  st.LastBuild.Nanoseconds(),
		"totalBuildNs": st.TotalBuild.Nanoseconds(),
		"intervalMs":   st.Interval.Milliseconds(),
	}
}

// regionSummary is one row of GET /api/regions.
type regionSummary struct {
	Code        string `json:"code"`
	Name        string `json:"name"`
	Recipes     int    `json:"recipes"`
	Ingredients int    `json:"ingredients"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	var out []regionSummary
	for _, region := range recipedb.MajorRegions() {
		c := s.cfg.Store.BuildCuisine(region)
		out = append(out, regionSummary{
			Code:        region.Code(),
			Name:        region.Name(),
			Recipes:     c.NumRecipes(),
			Ingredients: c.NumUniqueIngredients(),
		})
	}
	writeJSON(w, out)
}

// parseRegion resolves the {code} path segment (ParseRegion is
// case-insensitive, so no normalization happens here).
func parseRegionParam(r *http.Request) (recipedb.Region, error) {
	return recipedb.ParseRegion(r.PathValue("code"))
}

func (s *Server) handleRegion(w http.ResponseWriter, r *http.Request) {
	region, err := parseRegionParam(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	c := s.cfg.Store.BuildCuisine(region)
	top := c.TopIngredients(10)
	topNames := make([]string, len(top))
	for i, id := range top {
		topNames[i] = s.catalog.Ingredient(id).Name
	}
	usage := s.cfg.Store.CategoryUsage(region)
	categories := make(map[string]float64, len(usage))
	for cat, frac := range usage {
		if frac > 0 {
			categories[flavor.Category(cat).String()] = frac
		}
	}
	writeJSON(w, map[string]interface{}{
		"code":           region.Code(),
		"name":           region.Name(),
		"recipes":        c.NumRecipes(),
		"ingredients":    c.NumUniqueIngredients(),
		"meanRecipeSize": c.SizeHistogram().Mean(),
		"topIngredients": topNames,
		"categoryUsage":  categories,
	})
}

func (s *Server) handlePairing(w http.ResponseWriter, r *http.Request) {
	region, err := parseRegionParam(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	n := s.cfg.NullRecipes
	if raw := r.URL.Query().Get("null"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 100 {
			writeError(w, http.StatusBadRequest, "null must be an integer >= 100")
			return
		}
		if v < n {
			n = v
		}
	}
	model := pairing.RandomModel
	if raw := r.URL.Query().Get("model"); raw != "" {
		m, err := pairing.ParseModel(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		model = m
	}
	c := s.cfg.Store.BuildCuisine(region)
	res, err := pairing.Compare(s.cfg.Analyzer, s.cfg.Store, c, model, n, rng.New(s.cfg.Seed).Split(uint64(region)))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, map[string]interface{}{
		"region":   region.Code(),
		"model":    model.String(),
		"observed": res.Observed,
		"nullMean": res.NullMean,
		"nullStd":  res.NullStd,
		"nRandom":  res.NRandom,
		"z":        res.Z,
		"pairing":  pairingDirection(res.Z),
	})
}

// pairingDirection names the sign of a Z-score the way the paper does.
func pairingDirection(z float64) string {
	switch {
	case z > 0:
		return "uniform (positive)"
	case z < 0:
		return "contrasting (negative)"
	default:
		return "indistinguishable"
	}
}

// recipeJSON is the wire form of one recipe.
type recipeJSON struct {
	ID          int      `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Source      string   `json:"source"`
	Ingredients []string `json:"ingredients"`
}

func (s *Server) recipeJSON(rec recipedb.Recipe) recipeJSON {
	names := make([]string, len(rec.Ingredients))
	for i, id := range rec.Ingredients {
		names[i] = s.catalog.Ingredient(id).Name
	}
	return recipeJSON{
		ID:          rec.ID,
		Name:        rec.Name,
		Region:      rec.Region.Code(),
		Source:      rec.Source.String(),
		Ingredients: names,
	}
}

func (s *Server) handleRecipes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 20
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 500 {
			writeError(w, http.StatusBadRequest, "limit must be in [1,500]")
			return
		}
		limit = v
	}
	offset := 0
	if raw := q.Get("offset"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "offset must be >= 0")
			return
		}
		offset = v
	}
	region := recipedb.World
	if raw := q.Get("region"); raw != "" {
		reg, err := recipedb.ParseRegion(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		region = reg
	}
	var out []recipeJSON
	skipped := 0
	s.cfg.Store.ForEachInRegion(region, func(rec *recipedb.Recipe) {
		if skipped < offset {
			skipped++
			return
		}
		if len(out) < limit {
			out = append(out, s.recipeJSON(*rec))
		}
	})
	writeJSON(w, map[string]interface{}{
		"total":   s.cfg.Store.RegionLen(region),
		"offset":  offset,
		"recipes": out,
	})
}

func (s *Server) handleRecipe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= s.cfg.Store.Slots() {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no recipe %q", r.PathValue("id")))
		return
	}
	rec := s.cfg.Store.Recipe(id)
	if rec.Deleted {
		writeError(w, http.StatusNotFound, fmt.Sprintf("recipe %d was deleted", id))
		return
	}
	body := s.recipeJSON(rec)
	resp := map[string]interface{}{
		"recipe": body,
	}
	if score, ok := s.cfg.Analyzer.RecipeScore(rec.Ingredients); ok {
		resp["pairingScore"] = score
	}
	writeJSON(w, resp)
}

func (s *Server) handleIngredient(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, ok := s.catalog.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no ingredient %q", name))
		return
	}
	ing := s.catalog.Ingredient(id)
	resp := map[string]interface{}{
		"id":         int(ing.ID),
		"name":       ing.Name,
		"category":   ing.Category.String(),
		"compound":   ing.Compound,
		"hasProfile": ing.HasProfile,
	}
	if ing.HasProfile {
		resp["profileSize"] = s.catalog.Profile(id).Count()
	}
	if len(ing.Constituents) > 0 {
		names := make([]string, len(ing.Constituents))
		for i, cid := range ing.Constituents {
			names[i] = s.catalog.Ingredient(cid).Name
		}
		resp["constituents"] = names
	}
	writeJSON(w, resp)
}

// pairingEntry is one row of the ingredient-pairings response.
type pairingEntry struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Shared   int    `json:"sharedCompounds"`
}

func (s *Server) handleIngredientPairings(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, ok := s.catalog.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no ingredient %q", name))
		return
	}
	if !s.catalog.Ingredient(id).HasProfile {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("ingredient %q carries no flavor profile", name))
		return
	}
	limit := 10
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 100 {
			writeError(w, http.StatusBadRequest, "limit must be in [1,100]")
			return
		}
		limit = v
	}
	top := s.cfg.Analyzer.TopPartners(id, limit)
	out := make([]pairingEntry, len(top))
	for i, p := range top {
		ing := s.catalog.Ingredient(p.Partner)
		out[i] = pairingEntry{Name: ing.Name, Category: ing.Category.String(), Shared: p.Shared}
	}
	writeJSON(w, map[string]interface{}{
		"ingredient": name,
		"pairings":   out,
	})
}

// searchHit is the wire form of one search result.
type searchHit struct {
	Recipe recipeJSON `json:"recipe"`
	Score  float64    `json:"score"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	text := q.Get("q")
	if strings.TrimSpace(text) == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	opts := search.Options{Fuzzy: q.Get("fuzzy") == "1" || strings.EqualFold(q.Get("fuzzy"), "true")}
	if strings.EqualFold(q.Get("mode"), "all") {
		opts.Mode = search.ModeAll
	}
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 100 {
			writeError(w, http.StatusBadRequest, "limit must be in [1,100]")
			return
		}
		opts.Limit = v
	}
	if raw := q.Get("region"); raw != "" {
		region, err := recipedb.ParseRegion(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts.Region, opts.HasRegion = region, true
	}
	// The index is maintained inside the mutation critical section, so
	// these hits reflect every acked mutation; version is the corpus
	// version the ranking observed.
	hits, version := s.index.SearchVersion(text, opts)
	out := make([]searchHit, len(hits))
	for i, h := range hits {
		out[i] = searchHit{Recipe: s.recipeJSON(s.cfg.Store.Recipe(h.RecipeID)), Score: h.Score}
	}
	writeJSON(w, map[string]interface{}{
		"query":   text,
		"hits":    out,
		"version": version,
	})
}

// queryRequest is the POST /api/query body.
type queryRequest struct {
	Q string `json:"q"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req, "body must be JSON {\"q\": \"SELECT ...\"}") {
		return
	}
	if strings.TrimSpace(req.Q) == "" {
		writeError(w, http.StatusBadRequest, "empty query")
		return
	}
	// The request context carries the per-request deadline installed
	// by the middleware chain; the engine checks it mid-scan, so a
	// slow query aborts here instead of piling up behind the corpus
	// read lock.
	res, err := s.engine.RunContext(r.Context(), req.Q)
	if err != nil {
		if errors.Is(err, query.ErrCanceled) {
			if s.traffic != nil {
				s.traffic.NoteTimeout()
			}
			httpmw.WriteError(w, http.StatusGatewayTimeout, httpmw.CodeTimeout, err.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	rows := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		rows[i] = cells
	}
	writeJSON(w, map[string]interface{}{
		"columns": res.Columns,
		"rows":    rows,
		"scanned": res.Scanned,
		"version": res.Version,
	})
}

// classifyRequest is the POST /api/classify body.
type classifyRequest struct {
	Ingredients []string `json:"ingredients"`
}

// classifyResponseEntry is one class posterior.
type classifyResponseEntry struct {
	Region      string  `json:"region"`
	Name        string  `json:"name"`
	Probability float64 `json:"probability"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !s.decodeJSON(w, r, &req, "body must be JSON {\"ingredients\": [...]}") {
		return
	}
	if len(req.Ingredients) == 0 {
		writeError(w, http.StatusBadRequest, "ingredients list is empty")
		return
	}
	ids, unknown, err := s.resolveIngredients(req.Ingredients)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	model, modelVersion, err := s.classifier.Get()
	if err != nil {
		s.writeModelUnavailable(w, err)
		return
	}
	preds, err := model.Predict(ids)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if len(preds) > 5 {
		preds = preds[:5]
	}
	out := make([]classifyResponseEntry, len(preds))
	for i, p := range preds {
		out[i] = classifyResponseEntry{
			Region:      p.Region.Code(),
			Name:        p.Region.Name(),
			Probability: p.Probability,
		}
	}
	resp := map[string]interface{}{
		"predictions": out,
		// modelVersion is the corpus version the model was trained at —
		// the staleness fence clients compare against query/search
		// responses' "version".
		"modelVersion": modelVersion,
	}
	if len(unknown) > 0 {
		resp["unknownIngredients"] = unknown
	}
	writeJSON(w, resp)
}
