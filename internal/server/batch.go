package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"culinary/internal/httpmw"
	"culinary/internal/recipedb"
)

// POST /api/recipes/batch — bulk ingest. The request's recipes are
// resolved (parsing, ingredient canonicalization) outside any lock,
// then applied through the store's writer fan-in as one coalesced
// group: one corpus critical section, one version publication, one
// storage group commit. Items are all-or-nothing individually, not
// collectively: an invalid item is rejected in place with the same
// code the single endpoint would have used while its neighbors apply,
// exactly as if the items had been POSTed sequentially. A storage-level
// failure is the one collective outcome — the whole request answers
// one 503 storage_unavailable envelope (see writePersistenceError).

// batchRequest is the POST /api/recipes/batch body.
type batchRequest struct {
	Recipes []upsertRequest `json:"recipes"`
}

// batchItemResult is one element of the response's "results" array,
// aligned with the request's recipes.
type batchItemResult struct {
	Index  int    `json:"index"`
	Status string `json:"status"` // created | replaced | kept | rejected
	// Applied/kept items carry the slot and the corpus version the
	// item produced (kept: the version it was verified against).
	ID      *int   `json:"id,omitempty"`
	Version uint64 `json:"version,omitempty"`
	// Rejected items carry the envelope code and message the single
	// endpoint would have answered with.
	Code    string `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

func (s *Server) handleBatchUpsert(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeJSON(w, r, &req,
		"body must be JSON {\"recipes\": [{\"name\", \"region\", \"source\", \"ingredients\": [...], \"id\"?}, ...]}") {
		return
	}
	if len(req.Recipes) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "batch is empty")
		return
	}
	max := s.cfg.MaxBatchItems
	if max == 0 {
		max = DefaultMaxBatchItems
	}
	if max > 0 && len(req.Recipes) > max {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("batch holds %d recipes, limit is %d", len(req.Recipes), max))
		return
	}

	// Resolve every item up front; wire-level rejects never reach the
	// store. itemIdx maps the surviving items back to request indexes.
	results := make([]batchItemResult, len(req.Recipes))
	items := make([]recipedb.BatchItem, 0, len(req.Recipes))
	itemIdx := make([]int, 0, len(req.Recipes))
	for i, rec := range req.Recipes {
		results[i].Index = i
		item, ierr := s.resolveUpsertItem(rec)
		if ierr != nil {
			results[i].Status = "rejected"
			results[i].Code = httpmw.CodeForStatus(ierr.status)
			results[i].Message = ierr.message
			continue
		}
		items = append(items, item)
		itemIdx = append(itemIdx, i)
	}

	applied := 0
	var version uint64
	for j, res := range s.cfg.Store.ApplyBatch(items) {
		i := itemIdx[j]
		if res.Err != nil {
			if errors.Is(res.Err, recipedb.ErrValidation) || errors.Is(res.Err, recipedb.ErrNoRecipe) {
				results[i].Status = "rejected"
				results[i].Code = httpmw.CodeUnprocessable
				results[i].Message = res.Err.Error()
				continue
			}
			// A persistence fault. The storage engine degrades on any
			// commit-path I/O failure, so every queued item of this
			// group failed with it: answer the whole request with one
			// retryable storage_unavailable envelope rather than a
			// partial per-item scatter the client cannot safely replay.
			s.writePersistenceError(w, res.Err)
			return
		}
		id := res.ID
		results[i].Status = res.Outcome.String()
		results[i].ID = &id
		results[i].Version = res.Version
		if res.Outcome != recipedb.OutcomeKept {
			applied++
		}
		if res.Version > version {
			version = res.Version
		}
	}
	if version > 0 {
		// Re-stamp with the newest version the batch produced (the gate
		// stamped the pre-mutation version) so clients can chain the
		// header into X-Min-Version without parsing the body.
		w.Header().Set(CorpusVersionHeader, strconv.FormatUint(version, 10))
	}
	writeJSON(w, map[string]interface{}{
		"version": version,
		"applied": applied,
		"results": results,
	})
}
