package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"syscall"

	"culinary/internal/flavor"
	"culinary/internal/httpmw"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

// Corpus mutation endpoints. Upserts and deletes flow through the
// recipedb store, which persists each mutation to the attached storage
// backend (when one is bound) before updating the in-memory indexes,
// bumping the corpus version — the version fence the query engine's
// result cache keys against — and notifying the mutation subscribers:
// the search index applies the change synchronously inside the same
// critical section (so an acked mutation is visible to the next
// search), and the classifier/recommender rebuilders schedule a
// debounced background rebuild. See internal/server/README.md for the
// per-endpoint freshness contract.

// upsertRequest is the POST /api/recipes body. ID is optional: absent
// (or null) inserts a new recipe; an existing slot ID replaces that
// recipe in place (reviving a deleted slot is allowed).
type upsertRequest struct {
	ID          *int     `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Source      string   `json:"source"`
	Ingredients []string `json:"ingredients"`
}

func (s *Server) handleUpsertRecipe(w http.ResponseWriter, r *http.Request) {
	var req upsertRequest
	if !s.decodeJSON(w, r, &req,
		"body must be JSON {\"name\", \"region\", \"source\", \"ingredients\": [...], \"id\"?}") {
		return
	}
	if strings.TrimSpace(req.Name) == "" {
		writeError(w, http.StatusBadRequest, "missing recipe name")
		return
	}
	region, err := recipedb.ParseRegion(strings.ToUpper(req.Region))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	source, err := recipedb.ParseSource(req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if len(req.Ingredients) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "ingredients list is empty")
		return
	}
	// Duplicates — same spelling in any case, or different spellings
	// resolving to the same catalog entity — collapse silently to the
	// first occurrence instead of bouncing off the store's duplicate
	// check.
	ids := make([]flavor.ID, 0, len(req.Ingredients))
	seenName := make(map[string]bool, len(req.Ingredients))
	seenID := make(map[flavor.ID]bool, len(req.Ingredients))
	for _, name := range req.Ingredients {
		if key := strings.ToLower(strings.TrimSpace(name)); seenName[key] {
			continue
		} else {
			seenName[key] = true
		}
		id, ok := s.catalog.Lookup(name)
		if !ok {
			writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("unknown ingredient %q", name))
			return
		}
		if seenID[id] {
			continue
		}
		seenID[id] = true
		ids = append(ids, id)
	}
	id := -1
	if req.ID != nil {
		// Explicit IDs must address an existing slot: clients cannot
		// grow the ID space at arbitrary offsets over HTTP.
		if *req.ID < 0 || *req.ID >= s.cfg.Store.Slots() {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no recipe slot %d", *req.ID))
			return
		}
		id = *req.ID
	}
	id, version, created, err := s.cfg.Store.Upsert(id, req.Name, region, source, ids)
	if err != nil {
		if errors.Is(err, recipedb.ErrValidation) {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		s.writePersistenceError(w, err)
		return
	}
	if created {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, map[string]interface{}{
		"id":      id,
		"version": version,
	})
}

// storageRetryAfterSeconds is the Retry-After hint on storage_unavailable
// responses. The store's background probe retries recovery on a much
// shorter period, so by the time a well-behaved client comes back the
// write path is up again if the fault has cleared.
const storageRetryAfterSeconds = 1

// writePersistenceError maps a recipedb persistence failure onto the
// structured envelope. Degraded-storage conditions — the store's write
// path wedged by an I/O fault, a full or quota-limited disk, a wedged
// compactor — are a retryable 503 with code storage_unavailable and a
// Retry-After hint: reads still serve and the store heals itself once
// the fault clears, so clients should back off and retry rather than
// treat the corpus as broken. Anything else is an opaque 500; the
// underlying error text stays in the server log instead of leaking
// filesystem paths and internal state to clients.
func (s *Server) writePersistenceError(w http.ResponseWriter, err error) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("persistence failure: %v", err)
	}
	if errors.Is(err, storage.ErrWriteWedged) ||
		errors.Is(err, storage.ErrCompactorWedged) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT) {
		w.Header().Set("Retry-After", strconv.Itoa(storageRetryAfterSeconds))
		httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeStorageUnavailable,
			"storage is temporarily unavailable for writes; retry after the Retry-After interval")
		return
	}
	httpmw.WriteError(w, http.StatusInternalServerError, httpmw.CodeInternal,
		"persisting the mutation failed")
}

func (s *Server) handleDeleteRecipe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad recipe id %q", r.PathValue("id")))
		return
	}
	version, err := s.cfg.Store.Remove(id)
	if err != nil {
		if errors.Is(err, recipedb.ErrNoRecipe) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		s.writePersistenceError(w, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"id":      id,
		"version": version,
	})
}
