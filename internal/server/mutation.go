package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// Corpus mutation endpoints. Upserts and deletes flow through the
// recipedb store, which persists each mutation to the attached storage
// backend (when one is bound) before updating the in-memory indexes
// and bumping the corpus version — the version fence the query
// engine's result cache keys against, so mutations invalidate cached
// results without any explicit sweep.
//
// The derived read models built at server construction (full-text
// search index, cuisine classifier, recommender, pairing analyzer
// snapshots) are NOT rebuilt per mutation: they describe the corpus as
// of startup, which is the documented trade-off until online index
// maintenance lands. The CQL engine, recipe listings and per-region
// statistics always reflect the live corpus.

// upsertRequest is the POST /api/recipes body. ID is optional: absent
// (or null) inserts a new recipe; an existing slot ID replaces that
// recipe in place (reviving a deleted slot is allowed).
type upsertRequest struct {
	ID          *int     `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Source      string   `json:"source"`
	Ingredients []string `json:"ingredients"`
}

func (s *Server) handleUpsertRecipe(w http.ResponseWriter, r *http.Request) {
	var req upsertRequest
	if !s.decodeJSON(w, r, &req,
		"body must be JSON {\"name\", \"region\", \"source\", \"ingredients\": [...], \"id\"?}") {
		return
	}
	if strings.TrimSpace(req.Name) == "" {
		writeError(w, http.StatusBadRequest, "missing recipe name")
		return
	}
	region, err := recipedb.ParseRegion(strings.ToUpper(req.Region))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	source, err := recipedb.ParseSource(req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	ids := make([]flavor.ID, 0, len(req.Ingredients))
	for _, name := range req.Ingredients {
		id, ok := s.catalog.Lookup(name)
		if !ok {
			writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("unknown ingredient %q", name))
			return
		}
		ids = append(ids, id)
	}
	id := -1
	if req.ID != nil {
		// Explicit IDs must address an existing slot: clients cannot
		// grow the ID space at arbitrary offsets over HTTP.
		if *req.ID < 0 || *req.ID >= s.cfg.Store.Slots() {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no recipe slot %d", *req.ID))
			return
		}
		id = *req.ID
	}
	id, version, created, err := s.cfg.Store.Upsert(id, req.Name, region, source, ids)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if !errors.Is(err, recipedb.ErrValidation) {
			status = http.StatusInternalServerError // persistence failure
		}
		writeError(w, status, err.Error())
		return
	}
	if created {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, map[string]interface{}{
		"id":      id,
		"version": version,
	})
}

func (s *Server) handleDeleteRecipe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad recipe id %q", r.PathValue("id")))
		return
	}
	version, err := s.cfg.Store.Remove(id)
	if err != nil {
		status := http.StatusInternalServerError // persistence failure
		if errors.Is(err, recipedb.ErrNoRecipe) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, map[string]interface{}{
		"id":      id,
		"version": version,
	})
}
