package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"syscall"

	"culinary/internal/flavor"
	"culinary/internal/httpmw"
	"culinary/internal/recipedb"
	"culinary/internal/storage"
)

// Corpus mutation endpoints. Upserts and deletes flow through the
// recipedb store, which persists each mutation to the attached storage
// backend (when one is bound) before updating the in-memory indexes,
// bumping the corpus version — the version fence the query engine's
// result cache keys against — and notifying the mutation subscribers:
// the search index applies the change synchronously inside the same
// critical section (so an acked mutation is visible to the next
// search), and the classifier/recommender rebuilders schedule a
// debounced background rebuild. See internal/server/README.md for the
// per-endpoint freshness contract.

// upsertRequest is the POST /api/recipes body. ID is optional: absent
// (or null) inserts a new recipe; an existing slot ID replaces that
// recipe in place (reviving a deleted slot is allowed).
type upsertRequest struct {
	ID          *int     `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Source      string   `json:"source"`
	Ingredients []string `json:"ingredients"`
}

// itemError is a wire-level rejection of one upsert item: the single
// endpoint turns it into that HTTP status, the batch endpoint into a
// per-item "rejected" result carrying the status's envelope code.
type itemError struct {
	status  int
	message string
}

// resolveUpsertItem maps one wire upsert onto a store batch item:
// region/source parsing, ingredient canonicalization (case and entity
// duplicates collapse silently to the first occurrence instead of
// bouncing off the store's duplicate check), and the explicit-ID slot
// bound — IDs must address an existing slot, clients cannot grow the ID
// space at arbitrary offsets over HTTP. All of this runs before the
// store's fan-in, so none of it holds the corpus write lock.
func (s *Server) resolveUpsertItem(req upsertRequest) (recipedb.BatchItem, *itemError) {
	var item recipedb.BatchItem
	if strings.TrimSpace(req.Name) == "" {
		return item, &itemError{http.StatusBadRequest, "missing recipe name"}
	}
	region, err := recipedb.ParseRegion(strings.ToUpper(req.Region))
	if err != nil {
		return item, &itemError{http.StatusUnprocessableEntity, err.Error()}
	}
	source, err := recipedb.ParseSource(req.Source)
	if err != nil {
		return item, &itemError{http.StatusUnprocessableEntity, err.Error()}
	}
	if len(req.Ingredients) == 0 {
		return item, &itemError{http.StatusUnprocessableEntity, "ingredients list is empty"}
	}
	ids := make([]flavor.ID, 0, len(req.Ingredients))
	seenName := make(map[string]bool, len(req.Ingredients))
	seenID := make(map[flavor.ID]bool, len(req.Ingredients))
	for _, name := range req.Ingredients {
		if key := strings.ToLower(strings.TrimSpace(name)); seenName[key] {
			continue
		} else {
			seenName[key] = true
		}
		id, ok := s.catalog.Lookup(name)
		if !ok {
			return item, &itemError{http.StatusUnprocessableEntity, fmt.Sprintf("unknown ingredient %q", name)}
		}
		if seenID[id] {
			continue
		}
		seenID[id] = true
		ids = append(ids, id)
	}
	item = recipedb.BatchItem{
		ID: -1, Name: req.Name, Region: region, Source: source, Ingredients: ids,
	}
	if req.ID != nil {
		if *req.ID < 0 || *req.ID >= s.cfg.Store.Slots() {
			return item, &itemError{http.StatusNotFound, fmt.Sprintf("no recipe slot %d", *req.ID)}
		}
		item.ID = *req.ID
	}
	return item, nil
}

func (s *Server) handleUpsertRecipe(w http.ResponseWriter, r *http.Request) {
	var req upsertRequest
	if !s.decodeJSON(w, r, &req,
		"body must be JSON {\"name\", \"region\", \"source\", \"ingredients\": [...], \"id\"?}") {
		return
	}
	item, ierr := s.resolveUpsertItem(req)
	if ierr != nil {
		writeError(w, ierr.status, ierr.message)
		return
	}
	id, version, created, err := s.cfg.Store.Upsert(item.ID, item.Name, item.Region, item.Source, item.Ingredients)
	if err != nil {
		if errors.Is(err, recipedb.ErrValidation) {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		s.writePersistenceError(w, err)
		return
	}
	// Re-stamp with the version this write produced: the gate stamped
	// the pre-mutation version, and the whole point of the header is
	// that a client can chain it into X-Min-Version without parsing
	// the body.
	w.Header().Set(CorpusVersionHeader, strconv.FormatUint(version, 10))
	if created {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, map[string]interface{}{
		"id":      id,
		"version": version,
	})
}

// storageRetryAfterSeconds is the Retry-After hint on storage_unavailable
// responses. The store's background probe retries recovery on a much
// shorter period, so by the time a well-behaved client comes back the
// write path is up again if the fault has cleared.
const storageRetryAfterSeconds = 1

// writePersistenceError maps a recipedb persistence failure onto the
// structured envelope. Degraded-storage conditions — the store's write
// path wedged by an I/O fault, a full or quota-limited disk, a wedged
// compactor — are a retryable 503 with code storage_unavailable and a
// Retry-After hint: reads still serve and the store heals itself once
// the fault clears, so clients should back off and retry rather than
// treat the corpus as broken. Anything else is an opaque 500; the
// underlying error text stays in the server log instead of leaking
// filesystem paths and internal state to clients.
//
// Batch awareness: when one group-commit fault fails a whole coalesced
// write group, only the ops queued *behind* the fault carry a
// recognizable ErrWriteWedged — the op that hit the fault carries the
// raw I/O error. Any I/O failure on the commit path also degrades the
// engine, so consulting its health state here maps every queued item of
// the batch to the same retryable 503 instead of a scatter of generic
// 500s.
func (s *Server) writePersistenceError(w http.ResponseWriter, err error) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("persistence failure: %v", err)
	}
	degraded := errors.Is(err, storage.ErrWriteWedged) ||
		errors.Is(err, storage.ErrCompactorWedged) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT)
	if !degraded && s.cfg.DB != nil {
		degraded = s.cfg.DB.Health() != storage.HealthHealthy
	}
	if degraded {
		s.storage503.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(storageRetryAfterSeconds))
		httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeStorageUnavailable,
			"storage is temporarily unavailable for writes; retry after the Retry-After interval")
		return
	}
	httpmw.WriteError(w, http.StatusInternalServerError, httpmw.CodeInternal,
		"persisting the mutation failed")
}

func (s *Server) handleDeleteRecipe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad recipe id %q", r.PathValue("id")))
		return
	}
	version, err := s.cfg.Store.Remove(id)
	if err != nil {
		if errors.Is(err, recipedb.ErrNoRecipe) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		s.writePersistenceError(w, err)
		return
	}
	w.Header().Set(CorpusVersionHeader, strconv.FormatUint(version, 10))
	writeJSON(w, map[string]interface{}{
		"id":      id,
		"version": version,
	})
}
