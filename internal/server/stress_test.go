package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"culinary/internal/experiments"
	"culinary/internal/search"
	"culinary/internal/storage"
)

// TestMutationStressRace is the corpus-mutation race battery the
// result cache's coherence argument rests on: writer goroutines
// upsert/delete recipes through the HTTP mutation endpoints (writing
// through to a real storage engine) while reader goroutines hammer a
// fixed query mix through POST /api/query with the result cache on.
// It asserts
//
//   - zero stale reads: every response's embedded corpus version is >=
//     the version observed just before the request was issued,
//   - monotonic version observation per reader, and
//   - the cache counters reconcile: every query probed the result
//     cache exactly once, the plan cache exactly on result misses, and
//     every resident/evicted/invalidated entry traces back to a miss.
//
// Run under -race (CI does), the test also proves the store's epoch
// locking: readers never observe a half-applied mutation.
func TestMutationStressRace(t *testing.T) {
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Seed the backend with the full corpus so the post-stress "backend
	// == live corpus" audit covers unmutated recipes too.
	if err := storage.SaveCorpus(db, env.Store); err != nil {
		t.Fatal(err)
	}
	env.Store.SetBackend(db)

	srv, err := New(Config{
		Store:            env.Store,
		Analyzer:         env.Analyzer,
		NullRecipes:      200,
		Seed:             11,
		DB:               db,
		ResultCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	const (
		writers      = 4
		writesPerGo  = 120
		readers      = 4
		queriesPerGo = 250
		initialSlots = 64 // writers mutate only this low slot range
	)
	if env.Store.Len() < initialSlots*2 {
		t.Fatalf("corpus too small: %d", env.Store.Len())
	}
	regions := []string{"ITA", "FRA", "JPN", "INSC"}
	ingredients := make([]string, 0, 8)
	for i := 0; i < env.Store.Catalog().Len() && len(ingredients) < 8; i++ {
		ingredients = append(ingredients, env.Store.Catalog().Ingredient(env.Store.Recipe(i).Ingredients[0]).Name)
	}
	queryMix := []string{
		"SELECT region, count(*), avg(size) FROM recipes GROUP BY region",
		"SELECT count(*) FROM recipes",
		"SELECT name, size FROM recipes WHERE region = 'ITA' ORDER BY size DESC LIMIT 5",
		"SELECT count(*) FROM recipes WHERE size >= 6",
		"SELECT source, count(*) FROM recipes GROUP BY source",
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	post := func(path string, body interface{}) (int, map[string]interface{}) {
		raw, _ := json.Marshal(body)
		req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		var decoded map[string]interface{}
		json.Unmarshal(rr.Body.Bytes(), &decoded)
		return rr.Code, decoded
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerGo; i++ {
				slot := (w*writesPerGo + i*7) % initialSlots
				switch i % 3 {
				case 0, 1: // upsert an existing (or previously deleted) slot
					code, body := post("/api/recipes", map[string]interface{}{
						"id":          slot,
						"name":        fmt.Sprintf("stress dish w%d i%d", w, i),
						"region":      regions[(w+i)%len(regions)],
						"source":      "Epicurious",
						"ingredients": ingredients[:2+(i%3)],
					})
					if code != http.StatusOK && code != http.StatusCreated {
						errs <- fmt.Errorf("writer %d: upsert slot %d: %d %v", w, slot, code, body)
						return
					}
				case 2: // delete; racing deletes may 404, which is fine
					req := httptest.NewRequest("DELETE", fmt.Sprintf("/api/recipes/%d", slot), nil)
					rr := httptest.NewRecorder()
					h.ServeHTTP(rr, req)
					if rr.Code != http.StatusOK && rr.Code != http.StatusNotFound {
						errs <- fmt.Errorf("writer %d: delete slot %d: %d %s", w, slot, rr.Code, rr.Body)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastSeen uint64
			for i := 0; i < queriesPerGo; i++ {
				start := env.Store.Version()
				code, body := post("/api/query", map[string]string{"q": queryMix[(r+i)%len(queryMix)]})
				if code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: query %d: status %d: %v", r, i, code, body)
					return
				}
				raw, ok := body["version"].(float64)
				if !ok {
					errs <- fmt.Errorf("reader %d: response lacks version: %v", r, body)
					return
				}
				got := uint64(raw)
				if got < start {
					errs <- fmt.Errorf("reader %d: STALE READ: version %d < %d at request start", r, got, start)
					return
				}
				if got < lastSeen {
					errs <- fmt.Errorf("reader %d: version went backwards: %d after %d", r, got, lastSeen)
					return
				}
				lastSeen = got
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Counter reconciliation. Readers are the only Run callers, so:
	// every query probed the result cache exactly once; the plan cache
	// was probed exactly on result misses; and every entry that is
	// resident, was evicted by the byte bound, or was dropped stale
	// traces back to a miss that populated it (concurrent same-
	// statement misses may replace each other, hence <=).
	rcs := srv.engine.ResultCacheStats()
	pcs := srv.engine.CacheStats()
	totalQueries := int64(readers * queriesPerGo)
	if rcs.Hits+rcs.Misses != totalQueries {
		t.Errorf("result cache probes %d+%d != %d queries", rcs.Hits, rcs.Misses, totalQueries)
	}
	if pcs.Hits+pcs.Misses != rcs.Misses {
		t.Errorf("plan cache probes %d+%d != %d result misses", pcs.Hits, pcs.Misses, rcs.Misses)
	}
	if resident := int64(rcs.Entries) + rcs.Evicted + rcs.Invalidated; resident > rcs.Misses {
		t.Errorf("entries %d + evicted %d + invalidated %d exceed misses %d",
			rcs.Entries, rcs.Evicted, rcs.Invalidated, rcs.Misses)
	}
	if rcs.Hits == 0 {
		t.Error("stress run never hit the result cache")
	}

	// Deterministic invalidation check (the concurrent phase may or may
	// not interleave a mutation between a put and the next probe):
	// cache a result, mutate, probe again — the stale entry must be
	// dropped and the recomputed result must carry the new version.
	if code, _ := post("/api/query", map[string]string{"q": queryMix[0]}); code != http.StatusOK {
		t.Fatalf("pre-invalidation query: %d", code)
	}
	invBefore := srv.engine.ResultCacheStats().Invalidated
	if code, body := post("/api/recipes", map[string]interface{}{
		"id": 0, "name": "final invalidation probe", "region": "ITA",
		"source": "Epicurious", "ingredients": ingredients[:2],
	}); code != http.StatusOK && code != http.StatusCreated {
		t.Fatalf("final upsert: %d %v", code, body)
	}
	code, body := post("/api/query", map[string]string{"q": queryMix[0]})
	if code != http.StatusOK {
		t.Fatalf("post-invalidation query: %d", code)
	}
	if got := uint64(body["version"].(float64)); got != env.Store.Version() {
		t.Errorf("post-mutation query version %d, store %d", got, env.Store.Version())
	}
	if after := srv.engine.ResultCacheStats().Invalidated; after != invBefore+1 {
		t.Errorf("invalidations %d -> %d, want exactly one lazy drop", invBefore, after)
	}

	// The write-through backend must hold exactly the live corpus.
	liveKeys := len(db.KeysWithPrefix("recipe/"))
	if liveKeys != env.Store.Len() {
		t.Errorf("backend holds %d recipe keys, corpus has %d live recipes", liveKeys, env.Store.Len())
	}

	// And the health endpoint reports the final corpus version.
	req := httptest.NewRequest("GET", "/api/health", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var health map[string]interface{}
	if err := json.Unmarshal(rr.Body.Bytes(), &health); err != nil {
		t.Fatalf("health: %v", err)
	}
	if v := uint64(health["corpusVersion"].(float64)); v != env.Store.Version() {
		t.Errorf("health corpusVersion %d, store %d", v, env.Store.Version())
	}
	if _, ok := health["resultCache"].(map[string]interface{}); !ok {
		t.Errorf("health lacks resultCache block: %v", health)
	}
}

// TestDerivedStressRace is the derived-state counterpart of
// TestMutationStressRace: writer goroutines churn the corpus through
// the HTTP mutation endpoints while readers hammer the three derived
// read models — full-text search (maintained synchronously inside the
// mutation critical section), the classifier, and the recommender
// (both rebuilding in the background on a short debounce). It asserts
//
//   - search freshness: every /api/search response's version is >= the
//     corpus version sampled just before the request, and per-reader
//     monotonic — the synchronous index never serves a stale epoch,
//   - model-version monotonicity: /api/classify and /api/complete
//     responses never report a modelVersion going backwards within a
//     reader — background rebuilds install epochs in order, and
//   - quiesced equivalence: after the storm (and a final explicit
//     rebuild) the incrementally-maintained index is byte-identical to
//     a fresh search.Build over the same corpus, and both models sit
//     at exactly the corpus head with zero reported lag.
//
// Run under -race (CI does), it also proves the subscriber/rebuilder
// plumbing adds no data races to the mutation path.
func TestDerivedStressRace(t *testing.T) {
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:       env.Store,
		Analyzer:    env.Analyzer,
		NullRecipes: 200,
		Seed:        13,
		// Short debounce so background rebuilds actually interleave
		// with the mutation storm instead of waiting it out.
		ClassifierRebuildInterval:  2 * time.Millisecond,
		RecommenderRebuildInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	const (
		writers      = 4
		writesPerGo  = 80
		readers      = 4
		readsPerGo   = 120
		initialSlots = 64
	)
	if env.Store.Len() < initialSlots*2 {
		t.Fatalf("corpus too small: %d", env.Store.Len())
	}
	regions := []string{"ITA", "FRA", "JPN", "INSC"}
	ingredients := make([]string, 0, 8)
	for i := 0; i < env.Store.Catalog().Len() && len(ingredients) < 8; i++ {
		ingredients = append(ingredients, env.Store.Catalog().Ingredient(env.Store.Recipe(i).Ingredients[0]).Name)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	post := func(path string, body interface{}) (int, map[string]interface{}) {
		raw, _ := json.Marshal(body)
		req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		var decoded map[string]interface{}
		json.Unmarshal(rr.Body.Bytes(), &decoded)
		return rr.Code, decoded
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerGo; i++ {
				slot := (w*writesPerGo + i*7) % initialSlots
				switch i % 3 {
				case 0, 1:
					code, body := post("/api/recipes", map[string]interface{}{
						"id":          slot,
						"name":        fmt.Sprintf("derived stress w%d i%d", w, i),
						"region":      regions[(w+i)%len(regions)],
						"source":      "Epicurious",
						"ingredients": ingredients[:2+(i%3)],
					})
					if code != http.StatusOK && code != http.StatusCreated {
						errs <- fmt.Errorf("writer %d: upsert slot %d: %d %v", w, slot, code, body)
						return
					}
				case 2: // racing deletes may 404, which is fine
					req := httptest.NewRequest("DELETE", fmt.Sprintf("/api/recipes/%d", slot), nil)
					rr := httptest.NewRecorder()
					h.ServeHTTP(rr, req)
					if rr.Code != http.StatusOK && rr.Code != http.StatusNotFound {
						errs <- fmt.Errorf("writer %d: delete slot %d: %d %s", w, slot, rr.Code, rr.Body)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastSearch, lastClassify, lastComplete uint64
			for i := 0; i < readsPerGo; i++ {
				switch i % 3 {
				case 0: // search: synchronous, so >= the pre-request corpus version
					start := env.Store.Version()
					req := httptest.NewRequest("GET", "/api/search?q="+url.QueryEscape(ingredients[(r+i)%len(ingredients)]), nil)
					rr := httptest.NewRecorder()
					h.ServeHTTP(rr, req)
					if rr.Code != http.StatusOK {
						errs <- fmt.Errorf("reader %d: search %d: %d %s", r, i, rr.Code, rr.Body)
						return
					}
					var body map[string]interface{}
					json.Unmarshal(rr.Body.Bytes(), &body)
					got := uint64(body["version"].(float64))
					if got < start {
						errs <- fmt.Errorf("reader %d: STALE SEARCH: version %d < %d at request start", r, got, start)
						return
					}
					if got < lastSearch {
						errs <- fmt.Errorf("reader %d: search version went backwards: %d after %d", r, got, lastSearch)
						return
					}
					lastSearch = got
				case 1: // classify: background model, version must never regress
					code, body := post("/api/classify", map[string]interface{}{
						"ingredients": ingredients[:2+(i%3)],
					})
					if code != http.StatusOK {
						errs <- fmt.Errorf("reader %d: classify %d: %d %v", r, i, code, body)
						return
					}
					got := uint64(body["modelVersion"].(float64))
					if got < lastClassify {
						errs <- fmt.Errorf("reader %d: classifier version went backwards: %d after %d", r, got, lastClassify)
						return
					}
					lastClassify = got
				case 2: // complete: a region can transiently empty out mid-storm (422)
					code, body := post("/api/complete", map[string]interface{}{
						"region":      regions[(r+i)%len(regions)],
						"ingredients": ingredients[:2],
					})
					if code != http.StatusOK && code != http.StatusUnprocessableEntity {
						errs <- fmt.Errorf("reader %d: complete %d: %d %v", r, i, code, body)
						return
					}
					if code != http.StatusOK {
						continue
					}
					got := uint64(body["modelVersion"].(float64))
					if got < lastComplete {
						errs <- fmt.Errorf("reader %d: recommender version went backwards: %d after %d", r, got, lastComplete)
						return
					}
					lastComplete = got
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced equivalence: the incrementally-maintained index must be
	// byte-identical to a fresh Build over the mutated corpus.
	fresh := search.Build(env.Store)
	if got, want := srv.Index().CanonicalDump(), fresh.CanonicalDump(); !bytes.Equal(got, want) {
		t.Errorf("live index diverged from fresh Build after stress:\nlive:\n%s\nfresh:\n%s", got, want)
	}

	// After an explicit rebuild both models sit at the corpus head and
	// health reports zero lag everywhere.
	srv.RebuildDerived()
	req := httptest.NewRequest("GET", "/api/health", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var health map[string]interface{}
	if err := json.Unmarshal(rr.Body.Bytes(), &health); err != nil {
		t.Fatalf("health: %v", err)
	}
	derivedBlock := health["derived"].(map[string]interface{})
	for _, model := range []string{"search", "classifier", "recommender"} {
		block := derivedBlock[model].(map[string]interface{})
		if v := uint64(block["version"].(float64)); v != env.Store.Version() {
			t.Errorf("%s version %d != corpus head %d after quiesce", model, v, env.Store.Version())
		}
		if lag := block["lag"].(float64); lag != 0 {
			t.Errorf("%s lag %v after quiesce", model, lag)
		}
	}
}
