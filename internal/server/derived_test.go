package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"culinary/internal/experiments"
	"culinary/internal/recipedb"
)

// ingredientNames harvests n resolvable ingredient names from a
// populated corpus (the catalog is shared between stores, so the names
// work against any server built from the same catalog).
func ingredientNames(t *testing.T, store *recipedb.Store, n int) []string {
	t.Helper()
	names := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < store.Len() && len(names) < n; i++ {
		for _, id := range store.Recipe(i).Ingredients {
			name := store.Catalog().Ingredient(id).Name
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
			if len(names) == n {
				break
			}
		}
	}
	if len(names) < n {
		t.Fatalf("corpus yielded only %d ingredient names, need %d", len(names), n)
	}
	return names
}

// searchIDs runs GET /api/search and returns the hit recipe IDs plus
// the index version stamped on the response.
func searchIDs(t *testing.T, h http.Handler, query string) ([]int, uint64) {
	t.Helper()
	code, body := do(t, h, "GET", "/api/search?q="+query, nil)
	if code != http.StatusOK {
		t.Fatalf("search %q: %d %v", query, code, body)
	}
	hits := body["hits"].([]interface{})
	ids := make([]int, len(hits))
	for i, raw := range hits {
		rec := raw.(map[string]interface{})["recipe"].(map[string]interface{})
		ids[i] = int(rec["id"].(float64))
	}
	return ids, uint64(body["version"].(float64))
}

// TestUpsertSearchableNextRequest pins the tentpole's synchronous
// freshness contract: a 2xx-acked upsert is visible to the very next
// /api/search request — no rebuild, no sleep, no retry loop.
func TestUpsertSearchableNextRequest(t *testing.T) {
	s, h := mutableServer(t)
	ings := ingredientNames(t, s.cfg.Store, 3)

	// The name carries a token that appears nowhere else in the corpus
	// (purely alphabetic so the tokenizer keeps it).
	code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"name":        "brambleflux stew",
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": ings,
	})
	if code != http.StatusCreated {
		t.Fatalf("upsert: %d %v", code, body)
	}
	ackID := int(body["id"].(float64))
	ackVersion := uint64(body["version"].(float64))

	ids, version := searchIDs(t, h, "brambleflux")
	if len(ids) != 1 || ids[0] != ackID {
		t.Fatalf("search after ack returned %v, want [%d]", ids, ackID)
	}
	if version < ackVersion {
		t.Fatalf("search version %d < acked mutation version %d (stale index)", version, ackVersion)
	}

	// Replacing the recipe re-tokenizes: the old token vanishes, the
	// new one hits — again on the immediately following request.
	code, body = do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"id":          ackID,
		"name":        "quibbleworth stew",
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": ings,
	})
	if code != http.StatusOK {
		t.Fatalf("replace: %d %v", code, body)
	}
	if ids, _ := searchIDs(t, h, "brambleflux"); len(ids) != 0 {
		t.Fatalf("old token still matches %v after replace", ids)
	}
	if ids, _ := searchIDs(t, h, "quibbleworth"); len(ids) != 1 || ids[0] != ackID {
		t.Fatalf("new token matches %v, want [%d]", ids, ackID)
	}
}

// TestDeleteVanishesFromDerived pins the other half of the freshness
// contract: an acked delete is gone from search on the next request,
// and gone from the classifier and recommender after the (debounced in
// production, explicit here) rebuild — with the response-stamped
// modelVersion proving the models postdate the delete.
func TestDeleteVanishesFromDerived(t *testing.T) {
	s, h := mutableServer(t)
	ings := ingredientNames(t, s.cfg.Store, 3)

	code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"name":        "snickerdoodlefjord pie",
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": ings,
	})
	if code != http.StatusCreated {
		t.Fatalf("upsert: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	if ids, _ := searchIDs(t, h, "snickerdoodlefjord"); len(ids) != 1 {
		t.Fatalf("seed recipe not searchable: %v", ids)
	}

	code, body = do(t, h, "DELETE", "/api/recipes/"+itoa(id), nil)
	if code != http.StatusOK {
		t.Fatalf("delete: %d %v", code, body)
	}
	deleteVersion := uint64(body["version"].(float64))

	// Search: gone on the next request.
	if ids, version := searchIDs(t, h, "snickerdoodlefjord"); len(ids) != 0 {
		t.Fatalf("deleted recipe still searchable: %v", ids)
	} else if version < deleteVersion {
		t.Fatalf("search version %d < delete version %d", version, deleteVersion)
	}

	// Classifier and recommender: gone after the rebuild, and the
	// stamped modelVersion proves the models were trained at (or
	// after) the delete — bounded staleness made visible.
	s.RebuildDerived()
	code, body = do(t, h, "POST", "/api/classify",
		map[string]interface{}{"ingredients": ings})
	if code != http.StatusOK {
		t.Fatalf("classify: %d %v", code, body)
	}
	if mv := uint64(body["modelVersion"].(float64)); mv < deleteVersion {
		t.Errorf("classifier modelVersion %d predates delete version %d", mv, deleteVersion)
	}
	code, body = do(t, h, "POST", "/api/complete",
		map[string]interface{}{"region": "ITA", "ingredients": ings[:2]})
	if code != http.StatusOK {
		t.Fatalf("complete: %d %v", code, body)
	}
	if mv := uint64(body["modelVersion"].(float64)); mv < deleteVersion {
		t.Errorf("recommender modelVersion %d predates delete version %d", mv, deleteVersion)
	}
}

// TestHealthDerivedBlock asserts the monitoring surface: /api/health
// carries a "derived" block with per-model version, saturating lag,
// and rebuild counters.
func TestHealthDerivedBlock(t *testing.T) {
	s, h := mutableServer(t)
	s.RebuildDerived()

	code, body := do(t, h, "GET", "/api/health", nil)
	if code != http.StatusOK {
		t.Fatalf("health: %d %v", code, body)
	}
	corpusVersion := uint64(body["corpusVersion"].(float64))
	derivedBlock, ok := body["derived"].(map[string]interface{})
	if !ok {
		t.Fatalf("health lacks derived block: %v", body)
	}

	searchBlock := derivedBlock["search"].(map[string]interface{})
	if searchBlock["mode"] != "synchronous" {
		t.Errorf("search mode = %v", searchBlock["mode"])
	}
	if v := uint64(searchBlock["version"].(float64)); v != corpusVersion {
		t.Errorf("search version %d != corpus version %d", v, corpusVersion)
	}
	if lag := searchBlock["lag"].(float64); lag != 0 {
		t.Errorf("synchronous index reports lag %v", lag)
	}

	for _, model := range []string{"classifier", "recommender"} {
		block, ok := derivedBlock[model].(map[string]interface{})
		if !ok {
			t.Fatalf("derived block lacks %s: %v", model, derivedBlock)
		}
		if block["available"] != true {
			t.Errorf("%s unavailable after RebuildDerived: %v", model, block)
		}
		if v := uint64(block["version"].(float64)); v != corpusVersion {
			t.Errorf("%s version %d != corpus version %d", model, v, corpusVersion)
		}
		if lag := block["lag"].(float64); lag != 0 {
			t.Errorf("%s lag %v after quiesce", model, lag)
		}
		if rebuilds := block["rebuilds"].(float64); rebuilds < 1 {
			t.Errorf("%s rebuilds = %v, want >= 1", model, rebuilds)
		}
		for _, key := range []string{"failures", "lastError", "lastBuildNs", "totalBuildNs", "intervalMs"} {
			if _, ok := block[key]; !ok {
				t.Errorf("%s block lacks %q: %v", model, key, block)
			}
		}
	}

	// A mutation without a rebuild shows up as lag on the async models
	// and zero lag on the synchronous index.
	ings := ingredientNames(t, s.cfg.Store, 2)
	if code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"name": "lag probe dish", "region": "FRA", "source": "Epicurious",
		"ingredients": ings,
	}); code != http.StatusCreated {
		t.Fatalf("lag-probe upsert: %d %v", code, body)
	}
	_, body = do(t, h, "GET", "/api/health", nil)
	derivedBlock = body["derived"].(map[string]interface{})
	if lag := derivedBlock["search"].(map[string]interface{})["lag"].(float64); lag != 0 {
		t.Errorf("search lag %v after mutation (must stay synchronous)", lag)
	}
	if lag := derivedBlock["classifier"].(map[string]interface{})["lag"].(float64); lag != 1 {
		t.Errorf("classifier lag = %v after one unrebuild mutation, want 1", lag)
	}
	s.RebuildDerived()
	_, body = do(t, h, "GET", "/api/health", nil)
	derivedBlock = body["derived"].(map[string]interface{})
	if lag := derivedBlock["classifier"].(map[string]interface{})["lag"].(float64); lag != 0 {
		t.Errorf("classifier lag = %v after RebuildDerived, want 0", lag)
	}
}

// TestModelUnavailable503 pins the degradation satellite: a corpus
// that cannot train a model (empty, then single-region) must not abort
// server construction; the affected endpoints answer a structured 503
// model_unavailable with a Retry-After hint, and the rebuild path
// recovers the moment the corpus supports the model again.
func TestModelUnavailable503(t *testing.T) {
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	empty := recipedb.NewStore(env.Store.Catalog())
	s, err := New(Config{
		Store:                      empty,
		Analyzer:                   env.Analyzer,
		NullRecipes:                200,
		Seed:                       5,
		ClassifierRebuildInterval:  -1,
		RecommenderRebuildInterval: -1,
	})
	if err != nil {
		t.Fatalf("construction over empty corpus must succeed, got %v", err)
	}
	t.Cleanup(s.Close)
	h := s.Handler()
	ings := ingredientNames(t, env.Store, 4)

	assert503 := func(path string, body interface{}) {
		t.Helper()
		code, resp := do(t, h, "POST", path, body)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s over untrained model: %d %v", path, code, resp)
		}
		errObj := resp["error"].(map[string]interface{})
		if errObj["code"] != "model_unavailable" {
			t.Errorf("%s error code = %v, want model_unavailable", path, errObj["code"])
		}
	}
	assert503("/api/classify", map[string]interface{}{"ingredients": ings[:2]})
	assert503("/api/complete", map[string]interface{}{"region": "ITA", "ingredients": ings[:2]})

	// The Retry-After hint must ride along on the 503.
	raw, _ := json.Marshal(map[string]interface{}{"ingredients": ings[:2]})
	req := httptest.NewRequest("POST", "/api/classify", bytes.NewReader(raw))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("classify: %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("model_unavailable response lacks Retry-After header")
	}

	// One region is still not classifiable (nothing to discriminate),
	// but the recommender only needs a non-empty corpus.
	for i, name := range []string{"uno pasta", "due pasta"} {
		if code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
			"name": name, "region": "ITA", "source": "Epicurious",
			"ingredients": ings[:2+i%2],
		}); code != http.StatusCreated {
			t.Fatalf("seed upsert: %d %v", code, body)
		}
	}
	s.RebuildDerived()
	assert503("/api/classify", map[string]interface{}{"ingredients": ings[:2]})
	if code, body := do(t, h, "POST", "/api/complete",
		map[string]interface{}{"region": "ITA", "ingredients": ings[:2]}); code != http.StatusOK {
		t.Fatalf("complete after non-empty rebuild: %d %v", code, body)
	}

	// A second region unlocks the classifier; its modelVersion matches
	// the corpus version it was rebuilt at.
	if code, body := do(t, h, "POST", "/api/recipes", map[string]interface{}{
		"name": "trois tarte", "region": "FRA", "source": "Epicurious",
		"ingredients": ings[1:3],
	}); code != http.StatusCreated {
		t.Fatalf("second-region upsert: %d %v", code, body)
	}
	s.RebuildDerived()
	code, body := do(t, h, "POST", "/api/classify", map[string]interface{}{"ingredients": ings[:2]})
	if code != http.StatusOK {
		t.Fatalf("classify after two-region rebuild: %d %v", code, body)
	}
	if mv := uint64(body["modelVersion"].(float64)); mv != empty.Version() {
		t.Errorf("classify modelVersion %d != corpus version %d", mv, empty.Version())
	}
}

// itoa avoids importing strconv just for test paths.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
