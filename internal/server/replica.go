package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"culinary/internal/httpmw"
)

// Read-your-writes routing. Every mutation ack carries the corpus
// version it produced; a client that wants to read its own write from
// a replica repeats that token on the read as an X-Min-Version header
// (or ?minVersion= query parameter). A server whose corpus has not yet
// replayed to that version answers 503 replica_lagging with a
// Retry-After hint instead of serving a stale result — after at most
// one retry interval a healthy follower has caught up. The primary
// honors the same contract (trivially: it is never behind itself), so
// clients can send the token unconditionally and route reads anywhere.

// MinVersionHeader is the request header carrying a read's freshness
// floor; MinVersionParam is its query-parameter equivalent (the header
// wins when both are present).
const (
	MinVersionHeader = "X-Min-Version"
	MinVersionParam  = "minVersion"
	// CorpusVersionHeader stamps every response with the serving
	// corpus version, so clients can chain freshness floors without
	// parsing bodies.
	CorpusVersionHeader = "X-Corpus-Version"
)

// replicaRetryAfterSeconds is the Retry-After hint on replica_lagging
// responses; followers poll sub-second, so one second always spans at
// least one full replication round.
const replicaRetryAfterSeconds = 1

// minVersion extracts the freshness floor from a request. ok reports
// whether one was supplied; a malformed value is reported as an error.
func minVersion(r *http.Request) (v uint64, ok bool, err error) {
	raw := r.Header.Get(MinVersionHeader)
	if raw == "" {
		raw = r.URL.Query().Get(MinVersionParam)
	}
	if raw == "" {
		return 0, false, nil
	}
	v, err = strconv.ParseUint(strings.TrimSpace(raw), 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s: %q", MinVersionHeader, raw)
	}
	return v, true, nil
}

// versionGate enforces the freshness floor and stamps every response
// with the serving corpus version. One atomic load per request when no
// floor is supplied.
func (s *Server) versionGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := s.cfg.Store.Version()
		min, ok, err := minVersion(r)
		if err != nil {
			httpmw.WriteError(w, http.StatusBadRequest, httpmw.CodeBadRequest, err.Error())
			return
		}
		if ok && cur < min {
			w.Header().Set("Retry-After", strconv.Itoa(replicaRetryAfterSeconds))
			httpmw.WriteError(w, http.StatusServiceUnavailable, httpmw.CodeReplicaLagging,
				fmt.Sprintf("corpus at version %d, request requires %d", cur, min))
			return
		}
		w.Header().Set(CorpusVersionHeader, strconv.FormatUint(cur, 10))
		next.ServeHTTP(w, r)
	})
}

// handleNotPrimary rejects mutations on a read replica: 403
// not_primary with a Location header pointing the client at the
// primary's equivalent endpoint (when the primary's public URL is
// configured).
func (s *Server) handleNotPrimary(w http.ResponseWriter, r *http.Request) {
	if s.cfg.PrimaryURL != "" {
		w.Header().Set("Location", strings.TrimRight(s.cfg.PrimaryURL, "/")+r.URL.Path)
	}
	httpmw.WriteError(w, http.StatusForbidden, httpmw.CodeNotPrimary,
		"this server is a read replica; send mutations to the primary")
}
