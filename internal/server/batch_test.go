package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"

	"culinary/internal/experiments"
	"culinary/internal/httpmw"
	"culinary/internal/storage"
)

// doRaw issues one JSON request and returns the raw recorder, for
// assertions on headers alongside the body.
func doRaw(t *testing.T, h http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func decodeBody(rr *httptest.ResponseRecorder, into interface{}) error {
	return json.Unmarshal(rr.Body.Bytes(), into)
}

// freshMutableEnv builds an isolated in-memory server (no storage
// backend) for tests that mutate the corpus over HTTP.
func freshMutableEnv(t *testing.T, maxBatch int) (http.Handler, *experiments.Env) {
	t.Helper()
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:         env.Store,
		Analyzer:      env.Analyzer,
		Seed:          11,
		MaxBatchItems: maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler(), env
}

func batchItem(name string, ings ...string) map[string]interface{} {
	return map[string]interface{}{
		"name":        name,
		"region":      "ITA",
		"source":      "Epicurious",
		"ingredients": ings,
	}
}

func results(t *testing.T, body map[string]interface{}) []map[string]interface{} {
	t.Helper()
	raw, ok := body["results"].([]interface{})
	if !ok {
		t.Fatalf("response lacks results array: %v", body)
	}
	out := make([]map[string]interface{}, len(raw))
	for i, r := range raw {
		out[i], ok = r.(map[string]interface{})
		if !ok {
			t.Fatalf("result %d is not an object: %v", i, r)
		}
	}
	return out
}

func TestBatchEndpointShape(t *testing.T) {
	h, env := freshMutableEnv(t, 0)
	baseVersion := env.Store.Version()

	code, body := do(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{
			batchItem("batch dish one", "tomato", "basil"),
			map[string]interface{}{
				"id": 0, "name": "batch replaced zero", "region": "FRA",
				"source": "AllRecipes", "ingredients": []string{"butter", "cream"},
			},
			batchItem("batch rejected", "tomato", "unobtainium"),
		},
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d body = %v", code, body)
	}
	res := results(t, body)
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	if res[0]["status"] != "created" || res[0]["id"] == nil || res[0]["version"] == nil {
		t.Fatalf("item 0 = %v", res[0])
	}
	if res[1]["status"] != "replaced" || int(res[1]["id"].(float64)) != 0 {
		t.Fatalf("item 1 = %v", res[1])
	}
	if res[2]["status"] != "rejected" || res[2]["code"] != httpmw.CodeUnprocessable {
		t.Fatalf("item 2 = %v", res[2])
	}
	if _, hasID := res[2]["id"]; hasID {
		t.Fatalf("rejected item carries an id: %v", res[2])
	}
	if body["applied"].(float64) != 2 {
		t.Fatalf("applied = %v", body["applied"])
	}
	if uint64(body["version"].(float64)) != baseVersion+2 {
		t.Fatalf("version = %v, want %d", body["version"], baseVersion+2)
	}

	// Re-ingesting item 0 byte-identically (now slot-addressed) keeps it:
	// no version bump, status "kept" at the corpus version the content
	// was verified against.
	createdID := int(res[0]["id"].(float64))
	again := batchItem("batch dish one", "tomato", "basil")
	again["id"] = createdID
	code, body = do(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{again},
	})
	if code != http.StatusOK {
		t.Fatalf("re-ingest status = %d body = %v", code, body)
	}
	res = results(t, body)
	if res[0]["status"] != "kept" || uint64(res[0]["version"].(float64)) != baseVersion+2 {
		t.Fatalf("re-ingest = %v, want kept at version %d", res[0], baseVersion+2)
	}
	if body["applied"].(float64) != 0 {
		t.Fatalf("kept counted as applied: %v", body["applied"])
	}
	if env.Store.Version() != baseVersion+2 {
		t.Fatalf("kept re-ingest bumped corpus version to %d", env.Store.Version())
	}
}

func TestBatchEndpointPerItemCodes(t *testing.T) {
	h, env := freshMutableEnv(t, 0)
	code, body := do(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{
			map[string]interface{}{ // missing name -> bad_request
				"region": "ITA", "source": "Epicurious", "ingredients": []string{"tomato", "basil"},
			},
			map[string]interface{}{ // slot out of range -> not_found
				"id": env.Store.Slots() + 10, "name": "x", "region": "ITA",
				"source": "Epicurious", "ingredients": []string{"tomato", "basil"},
			},
			batchItem("ok neighbor", "tomato", "basil"),
		},
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d body = %v", code, body)
	}
	res := results(t, body)
	if res[0]["status"] != "rejected" || res[0]["code"] != httpmw.CodeBadRequest {
		t.Fatalf("item 0 = %v", res[0])
	}
	if res[1]["status"] != "rejected" || res[1]["code"] != httpmw.CodeNotFound {
		t.Fatalf("item 1 = %v", res[1])
	}
	if res[2]["status"] != "created" {
		t.Fatalf("valid neighbor rejected: %v", res[2])
	}
}

func TestBatchEndpointRequestLimits(t *testing.T) {
	h, _ := freshMutableEnv(t, 2)
	code, body := do(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{},
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("empty batch: status = %d body = %v", code, body)
	}
	code, body = do(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{
			batchItem("a", "tomato", "basil"),
			batchItem("b", "tomato", "basil"),
			batchItem("c", "tomato", "basil"),
		},
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized batch: status = %d body = %v", code, body)
	}
}

// TestBatchWedgedStorageSingle503: when the storage engine wedges
// mid-request, the whole batch answers ONE retryable 503
// storage_unavailable envelope with a Retry-After hint — never a
// scatter of per-item generic 500s — and /api/health accounts for it.
func TestBatchWedgedStorageSingle503(t *testing.T) {
	h, db, inj, _ := degradedEnv(t)
	inj.Arm(syscall.EIO, storage.FaultSync, storage.FaultWrite)
	defer inj.Clear()

	rr := doRaw(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{
			batchItem("wedged a", "tomato", "basil"),
			batchItem("wedged b", "butter", "cream"),
			batchItem("wedged c", "tomato", "garlic"),
		},
	})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body = %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
	var env httpmw.Envelope
	if err := decodeBody(rr, &env); err != nil {
		t.Fatalf("non-envelope 503 body: %s", rr.Body.String())
	}
	if env.Error.Code != httpmw.CodeStorageUnavailable {
		t.Fatalf("code = %q, want %q", env.Error.Code, httpmw.CodeStorageUnavailable)
	}
	if db.Health() == storage.HealthHealthy {
		t.Fatal("engine still healthy after injected batch fault")
	}

	code, body := do(t, h, "GET", "/api/health", nil)
	if code != http.StatusOK {
		t.Fatalf("health status = %d", code)
	}
	traffic, ok := body["traffic"].(map[string]interface{})
	if !ok {
		t.Fatalf("health lacks traffic block: %v", body)
	}
	if n, _ := traffic["storageUnavailable503"].(float64); n < 1 {
		t.Fatalf("storageUnavailable503 = %v, want >= 1", traffic["storageUnavailable503"])
	}
}

// TestHealthMutationBatchesBlock pins the health schema the load
// generator and the CI soak gate read: traffic.mutationBatches with the
// coalescing counters, present whether or not traffic accounting is
// armed.
func TestHealthMutationBatchesBlock(t *testing.T) {
	h, _ := freshMutableEnv(t, 0)
	if code, _ := do(t, h, "POST", "/api/recipes/batch", map[string]interface{}{
		"recipes": []interface{}{
			batchItem("stats a", "tomato", "basil"),
			batchItem("stats b", "butter", "cream"),
		},
	}); code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	code, body := do(t, h, "GET", "/api/health", nil)
	if code != http.StatusOK {
		t.Fatalf("health status = %d", code)
	}
	traffic, ok := body["traffic"].(map[string]interface{})
	if !ok {
		t.Fatalf("health lacks traffic block: %v", body)
	}
	mb, ok := traffic["mutationBatches"].(map[string]interface{})
	if !ok {
		t.Fatalf("traffic lacks mutationBatches: %v", traffic)
	}
	for _, key := range []string{"batches", "ops", "coalesced", "p50", "max"} {
		if _, ok := mb[key]; !ok {
			t.Errorf("mutationBatches missing %q: %v", key, mb)
		}
	}
	if mb["batches"].(float64) < 1 || mb["ops"].(float64) < 2 || mb["max"].(float64) < 2 {
		t.Fatalf("implausible mutationBatches: %v", mb)
	}
	if _, ok := traffic["storageUnavailable503"]; !ok {
		t.Fatalf("traffic lacks storageUnavailable503: %v", traffic)
	}
}
