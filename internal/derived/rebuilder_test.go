package derived

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"culinary/internal/classify"
	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

func testStore(t *testing.T) (*recipedb.Store, func(slot int, region recipedb.Region)) {
	t.Helper()
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := recipedb.NewStore(catalog)
	ings := make([]flavor.ID, 0, 3)
	for _, n := range []string{"tomato", "onion", "garlic"} {
		id, ok := catalog.Lookup(n)
		if !ok {
			t.Fatalf("catalog lacks %q", n)
		}
		ings = append(ings, id)
	}
	upsert := func(slot int, region recipedb.Region) {
		if _, _, _, err := store.Upsert(slot, fmt.Sprintf("Recipe %d %s", slot, region),
			region, recipedb.Epicurious, ings); err != nil {
			t.Fatalf("Upsert(%d, %s): %v", slot, region, err)
		}
	}
	return store, upsert
}

// countModel is a trivial derived model: the live recipe count.
func countModel(v *recipedb.View) (int, error) {
	if v.Len() == 0 {
		return 0, errors.New("empty corpus")
	}
	return v.Len(), nil
}

func TestRebuilderInitialBuildAndVersion(t *testing.T) {
	store, upsert := testStore(t)
	upsert(0, recipedb.USA)
	upsert(1, recipedb.Italy)
	r := New("count", store, -1, countModel)
	defer r.Close()
	n, v, err := r.Get()
	if err != nil || n != 2 || v != store.Version() {
		t.Fatalf("Get() = (%d, %d, %v), want (2, %d, nil)", n, v, err, store.Version())
	}
}

func TestRebuilderUnavailableOnEmptyCorpusThenRecovers(t *testing.T) {
	store, upsert := testStore(t)
	r := New("count", store, -1, countModel)
	defer r.Close()
	if _, _, err := r.Get(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("empty corpus: err = %v, want ErrUnavailable", err)
	}
	if s := r.Stats(); s.Available || s.Failures != 1 {
		t.Fatalf("stats after failed init: %+v", s)
	}
	upsert(0, recipedb.USA)
	if !r.Rebuild() {
		t.Fatal("Rebuild reported no work despite corpus change")
	}
	n, v, err := r.Get()
	if err != nil || n != 1 || v != store.Version() {
		t.Fatalf("after recovery: (%d, %d, %v)", n, v, err)
	}
}

func TestRebuilderFailureDropsModel(t *testing.T) {
	store, upsert := testStore(t)
	upsert(0, recipedb.USA)
	r := New("count", store, -1, countModel)
	defer r.Close()
	if _, err := store.Remove(0); err != nil {
		t.Fatal(err)
	}
	r.Rebuild()
	if _, _, err := r.Get(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("after corpus emptied: err = %v, want ErrUnavailable", err)
	}
	s := r.Stats()
	if s.Available || s.Version != 0 || s.LastError == "" {
		t.Fatalf("stats after drop: %+v", s)
	}
}

func TestRebuilderSkipsWhenCorpusUnchanged(t *testing.T) {
	store, upsert := testStore(t)
	upsert(0, recipedb.USA)
	r := New("count", store, -1, countModel)
	defer r.Close()
	if r.Rebuild() {
		t.Fatal("Rebuild ran with an unchanged corpus")
	}
	// A failed attempt must not retry until the version moves, either.
	if _, err := store.Remove(0); err != nil {
		t.Fatal(err)
	}
	r.Rebuild()
	fails := r.Stats().Failures
	if r.Rebuild() {
		t.Fatal("Rebuild retried a failed build with an unchanged corpus")
	}
	if got := r.Stats().Failures; got != fails {
		t.Fatalf("failure count moved without a corpus change: %d -> %d", fails, got)
	}
}

func TestRebuilderBackgroundLoopConverges(t *testing.T) {
	store, upsert := testStore(t)
	upsert(0, recipedb.USA)
	r := New("count", store, 10*time.Millisecond, countModel)
	defer r.Close()
	upsert(1, recipedb.Italy)
	upsert(2, recipedb.Japan)
	want := store.Version()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, v, err := r.Get(); err == nil && v == want {
			break
		}
		if time.Now().After(deadline) {
			n, v, err := r.Get()
			t.Fatalf("loop never converged: (%d, %d, %v), want version %d", n, v, err, want)
		}
		time.Sleep(time.Millisecond)
	}
	if n, _, _ := r.Get(); n != 3 {
		t.Fatalf("converged model = %d, want 3", n)
	}
}

// TestRebuilderClassifier exercises the real classifier build: one
// region is not enough, two are.
func TestRebuilderClassifier(t *testing.T) {
	store, upsert := testStore(t)
	upsert(0, recipedb.USA)
	build := func(v *recipedb.View) (*classify.Classifier, error) {
		c := classify.New()
		if err := c.TrainView(v, v.LiveIDs()); err != nil {
			return nil, err
		}
		return c, nil
	}
	r := New("classifier", store, -1, build)
	defer r.Close()
	if _, _, err := r.Get(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("one-region corpus: err = %v, want ErrUnavailable", err)
	}
	if r.Stats().LastError == "" {
		t.Fatal("LastError not recorded")
	}
	upsert(1, recipedb.Italy)
	r.Rebuild()
	c, v, err := r.Get()
	if err != nil || c == nil || v != store.Version() {
		t.Fatalf("two-region corpus: (%v, %d, %v)", c, v, err)
	}
	if got := len(c.Regions()); got != 2 {
		t.Fatalf("classifier trained on %d regions, want 2", got)
	}
}
