// Package derived maintains version-aware derived read models (the
// Bayes classifier, the pairing recommender) over the mutable recipe
// corpus. A Rebuilder owns one model: it builds it at construction
// atomically with subscribing to the corpus mutation feed, then
// rebuilds in the background whenever the corpus version moves,
// debounced to at most one rebuild per interval. Every model carries
// the corpus version it was built at, so serving layers can stamp
// responses and report staleness — the same (statement,
// corpus-version) fencing the query result cache uses.
//
// Rebuild failure is a first-class state, not a crash: a corpus that
// temporarily cannot support a model (zero recipes, one region) makes
// the model unavailable until the corpus changes again, and the
// rebuild loop keeps running. The search index does not live here — it
// is maintained synchronously inside the mutation critical section
// (see search.NewLive), because "acked upsert is searchable" is a
// guarantee, while model freshness is a bounded lag.
package derived

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"culinary/internal/recipedb"
)

// ErrUnavailable is returned by Get while the model has no successful
// build for the current corpus shape. It wraps the build error, so
// errors.Is(err, ErrUnavailable) selects the degraded-serving path and
// the cause stays inspectable.
var ErrUnavailable = errors.New("derived: model unavailable")

// DefaultInterval is the rebuild debounce when none is configured: at
// most one background rebuild per 2s window.
const DefaultInterval = 2 * time.Second

// Build produces one model instance from a pinned corpus view.
type Build[T any] func(v *recipedb.View) (T, error)

// Stats is a point-in-time snapshot of a rebuilder's counters for
// health reporting.
type Stats struct {
	Name      string
	Available bool
	// Version is the corpus version the served model was built from
	// (0 when unavailable).
	Version uint64
	// BuiltVersion is the corpus version of the last build attempt,
	// successful or not.
	BuiltVersion uint64
	Rebuilds     uint64
	Failures     uint64
	LastError    string
	LastBuild    time.Duration
	TotalBuild   time.Duration
	Interval     time.Duration
}

// Rebuilder keeps one derived model fresh against the corpus.
type Rebuilder[T any] struct {
	name     string
	store    *recipedb.Store
	build    Build[T]
	interval time.Duration

	mu           sync.Mutex
	cur          T
	available    bool
	version      uint64 // corpus version of the served model
	builtVersion uint64 // corpus version of the last attempt
	lastErr      error
	rebuilds     uint64
	failures     uint64
	lastDur      time.Duration
	totalDur     time.Duration

	nudge    chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New constructs the rebuilder, runs the initial build, and subscribes
// to the corpus — all atomically under the corpus write lock, so no
// mutation can slip between the initial snapshot and the first nudge.
// An initial build failure leaves the model unavailable (it is not an
// error: the corpus may legitimately be empty at startup). interval
// <= 0 selects DefaultInterval; pass a negative interval to disable
// the background loop entirely (tests drive Rebuild explicitly).
func New[T any](name string, store *recipedb.Store, interval time.Duration, build Build[T]) *Rebuilder[T] {
	background := interval >= 0
	if interval <= 0 {
		interval = DefaultInterval
	}
	r := &Rebuilder[T]{
		name:     name,
		store:    store,
		build:    build,
		interval: interval,
		nudge:    make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	store.SubscribeBatch(
		func(v *recipedb.View) { r.rebuildFromView(v) },
		func([]recipedb.Mutation) {
			// One nudge per coalesced batch, non-blocking: one pending
			// nudge is enough, the loop re-reads the live version when
			// it wakes.
			select {
			case r.nudge <- struct{}{}:
			default:
			}
		},
	)
	if background {
		go r.loop()
	} else {
		close(r.done)
	}
	return r
}

// rebuildFromView runs one build attempt against a pinned view and
// installs the outcome.
func (r *Rebuilder[T]) rebuildFromView(v *recipedb.View) {
	start := time.Now()
	model, err := r.build(v)
	dur := time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	if v.Version < r.builtVersion {
		// A concurrent Rebuild raced ahead with a newer snapshot;
		// installing this one would move the served version backwards.
		return
	}
	r.builtVersion = v.Version
	r.lastDur = dur
	r.totalDur += dur
	if err != nil {
		// The corpus shape no longer supports the model; serving the
		// previous epoch would resurrect deleted data, so the model
		// goes unavailable until a later corpus version builds clean.
		var zero T
		r.cur = zero
		r.available = false
		r.version = 0
		r.lastErr = err
		r.failures++
		return
	}
	r.cur = model
	r.available = true
	r.version = v.Version
	r.lastErr = nil
	r.rebuilds++
}

// Rebuild synchronously rebuilds the model against the current corpus
// if the served epoch is stale, and reports whether a build ran. Tests
// use it to quiesce; the background loop funnels through it too.
func (r *Rebuilder[T]) Rebuild() bool {
	r.mu.Lock()
	stale := r.builtVersion != r.store.Version()
	r.mu.Unlock()
	if !stale {
		return false
	}
	r.store.Read(func(v *recipedb.View) { r.rebuildFromView(v) })
	return true
}

// loop is the background rebuild driver: wake on nudge or tick, skip
// if the corpus has not moved past the last attempt, and sleep one
// full interval after every rebuild so a mutation storm costs at most
// one build per interval.
func (r *Rebuilder[T]) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.nudge:
		case <-ticker.C:
		}
		if r.Rebuild() {
			// Debounce: drain the pending nudge (its mutation is
			// covered by the build that just ran) and wait a tick.
			select {
			case <-r.nudge:
			default:
			}
			select {
			case <-r.stop:
				return
			case <-ticker.C:
			}
		}
	}
}

// Get returns the served model and the corpus version it was built at.
// While unavailable it returns ErrUnavailable wrapping the build error.
func (r *Rebuilder[T]) Get() (T, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.available {
		var zero T
		if r.lastErr != nil {
			return zero, 0, fmt.Errorf("%w (%s): %w", ErrUnavailable, r.name, r.lastErr)
		}
		return zero, 0, fmt.Errorf("%w (%s)", ErrUnavailable, r.name)
	}
	return r.cur, r.version, nil
}

// Version returns the corpus version of the served model (0 when
// unavailable).
func (r *Rebuilder[T]) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Stats snapshots the counters for /api/health.
func (r *Rebuilder[T]) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Name:         r.name,
		Available:    r.available,
		Version:      r.version,
		BuiltVersion: r.builtVersion,
		Rebuilds:     r.rebuilds,
		Failures:     r.failures,
		LastBuild:    r.lastDur,
		TotalBuild:   r.totalDur,
		Interval:     r.interval,
	}
	if r.lastErr != nil {
		s.LastError = r.lastErr.Error()
	}
	return s
}

// Close stops the background loop and waits for it to exit. The model
// remains readable (Get keeps serving the last epoch).
func (r *Rebuilder[T]) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}
