package httpmw

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// MaxBytes caps request body size with http.MaxBytesReader. The cap
// surfaces when a handler reads the body: the read fails with
// *http.MaxBytesError (detect with IsMaxBytesError) and the handler
// answers with a structured 413. n <= 0 disables the cap.
func MaxBytes(next http.Handler, n int64) http.Handler {
	if n <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, n)
		}
		next.ServeHTTP(w, r)
	})
}

// IsMaxBytesError reports whether a body-read (or JSON decode) error
// was caused by the MaxBytes cap.
func IsMaxBytesError(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// WithDeadline attaches a per-request deadline to the request context
// so downstream work (query scans, body reads) aborts instead of
// piling up behind slow requests. d <= 0 disables it. The handler is
// responsible for mapping the resulting context error to a structured
// 504 — the middleware deliberately does not buffer responses the way
// http.TimeoutHandler does, so streaming handlers stay zero-copy.
func WithDeadline(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Chain applies middlewares around h: Chain(h, a, b) serves a(b(h)),
// i.e. the first middleware listed is outermost.
func Chain(h http.Handler, mw ...func(http.Handler) http.Handler) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Config assembles the full traffic-armor stack.
type Config struct {
	// ReadRPS/ReadBurst budget cheap requests (GET/HEAD and read-only
	// POST queries); MutationRPS/MutationBurst budget corpus
	// mutations. Rate <= 0 disables that limiter.
	ReadRPS, ReadBurst         float64
	MutationRPS, MutationBurst float64
	// IsMutation classifies requests for the limiter split; nil
	// treats every non-GET/HEAD request as a mutation.
	IsMutation func(*http.Request) bool
	// TrustedProxies lists proxy networks whose X-Forwarded-For chains
	// the limiter may believe (see ClientIPTrusted). Empty means no
	// proxy is trusted and every request keys on its RemoteAddr.
	TrustedProxies []*net.IPNet
	// MaxInFlight bounds concurrent admitted requests; <= 0 disables
	// the gate.
	MaxInFlight int
	// Grace scales MaxInFlight dynamically (see Gate.grace); nil
	// pins the bound.
	Grace func() float64
	// RetryAfter is the hint returned with 503 sheds.
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies; <= 0 disables.
	MaxBodyBytes int64
	// RequestTimeout is the per-request deadline; <= 0 disables.
	RequestTimeout time.Duration
	// Exempt requests bypass the limiter and the gate (NOT the body
	// cap or deadline); nil exempts nothing. Health endpoints belong
	// here.
	Exempt func(*http.Request) bool
}

// Traffic is the composed armor stack plus its counters.
type Traffic struct {
	cfg      Config
	read     *Limiter
	mutation *Limiter
	gate     *Gate
	too413   atomic.Int64
	timeouts atomic.Int64
}

// NewTraffic builds the stack; disabled layers (zero limits) become
// pass-throughs.
func NewTraffic(cfg Config) *Traffic {
	t := &Traffic{cfg: cfg}
	if cfg.ReadRPS > 0 {
		t.read = NewLimiter(cfg.ReadRPS, cfg.ReadBurst)
	}
	if cfg.MutationRPS > 0 {
		t.mutation = NewLimiter(cfg.MutationRPS, cfg.MutationBurst)
	}
	if cfg.MaxInFlight > 0 {
		t.gate = NewGate(cfg.MaxInFlight, cfg.RetryAfter, cfg.Grace)
	}
	return t
}

// Wrap layers the stack around next, outermost first: rate limit
// (cheapest rejection) → load-shed gate → body cap → deadline →
// envelope fallback → next.
func (t *Traffic) Wrap(next http.Handler) http.Handler {
	h := EnvelopeFallback(next)
	h = WithDeadline(h, t.cfg.RequestTimeout)
	h = MaxBytes(h, t.cfg.MaxBodyBytes)
	if t.gate != nil {
		h = LoadShed(h, t.gate, t.cfg.Exempt)
	}
	if t.read != nil || t.mutation != nil {
		var key func(*http.Request) string
		if len(t.cfg.TrustedProxies) > 0 {
			trusted := t.cfg.TrustedProxies
			key = func(r *http.Request) string { return ClientIPTrusted(r, trusted) }
		}
		h = RateLimit(h, t.read, t.mutation, t.cfg.IsMutation, t.cfg.Exempt, key)
	}
	return h
}

// Note413 counts one structured 413; called by the server's decode
// helper when a body read trips the MaxBytes cap.
func (t *Traffic) Note413() { t.too413.Add(1) }

// NoteTimeout counts one request aborted by its deadline.
func (t *Traffic) NoteTimeout() { t.timeouts.Add(1) }

// TrafficStats is the /api/health "traffic" block.
type TrafficStats struct {
	InFlight       int64         `json:"inFlight"`
	InFlightLimit  int64         `json:"inFlightLimit"`
	EffectiveLimit int64         `json:"effectiveLimit"`
	PeakInFlight   int64         `json:"peakInFlight"`
	Admitted       int64         `json:"admitted"`
	Rejected413    int64         `json:"rejected413"`
	Rejected429    int64         `json:"rejected429"`
	Shed503        int64         `json:"shed503"`
	Timeouts       int64         `json:"timeouts"`
	Read           *LimiterStats `json:"readLimiter,omitempty"`
	Mutation       *LimiterStats `json:"mutationLimiter,omitempty"`
}

// Stats snapshots every layer's counters.
func (t *Traffic) Stats() TrafficStats {
	s := TrafficStats{
		Rejected413: t.too413.Load(),
		Timeouts:    t.timeouts.Load(),
	}
	if t.gate != nil {
		gs := t.gate.Stats()
		s.InFlight = gs.InFlight
		s.InFlightLimit = gs.Limit
		s.EffectiveLimit = gs.EffectiveLimit
		s.PeakInFlight = gs.Peak
		s.Admitted = gs.Admitted
		s.Shed503 = gs.Shed
	}
	if t.read != nil {
		ls := t.read.Stats()
		s.Read = &ls
		s.Rejected429 += ls.Denied
	}
	if t.mutation != nil {
		ls := t.mutation.Stats()
		s.Mutation = &ls
		s.Rejected429 += ls.Denied
	}
	return s
}
