// Package httpmw is the production-traffic armor in front of the API:
// a composable middleware stack providing per-IP token-bucket rate
// limiting with separate read/mutation budgets, request body size
// caps, per-request deadlines, an in-flight concurrency gate that
// sheds load with 503 + Retry-After instead of queueing unboundedly,
// and a uniform structured JSON error envelope for every 4xx/5xx.
//
// The layers are independent http.Handler wrappers so tests can
// exercise each alone; Traffic composes them in the documented order
// and aggregates their counters for /api/health. See
// internal/server/README.md for the chain order and tuning guidance.
package httpmw

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Stable machine-readable error codes carried by the envelope. Clients
// dispatch on Code; Message is human-oriented and may change freely.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeMethod        = "method_not_allowed"
	CodeTooLarge      = "payload_too_large"
	CodeUnprocessable = "unprocessable"
	CodeRateLimited   = "rate_limited"
	CodeInternal      = "internal"
	CodeOverloaded    = "overloaded"
	CodeTimeout       = "timeout"
	// CodeStorageUnavailable marks a 503 caused by the storage engine's
	// write path being degraded by an I/O fault (disk full, write
	// error). Reads keep serving; mutations should be retried after the
	// Retry-After interval — the store recovers itself once the fault
	// clears.
	CodeStorageUnavailable = "storage_unavailable"
	// CodeModelUnavailable marks a 503 caused by a derived model
	// (classifier, recommender) having no successful build for the
	// current corpus shape — e.g. an empty or one-region corpus. Reads
	// and search still serve; the model returns once the corpus
	// supports it again, so clients should honor Retry-After.
	CodeModelUnavailable = "model_unavailable"
	// CodeReplicaLagging marks a 503 from a read replica that has not
	// yet replayed up to the version the request demanded via
	// X-Min-Version (or ?minVersion=). The state requested exists on
	// the primary and is in flight; clients should retry this replica
	// after Retry-After or route the read to the primary.
	CodeReplicaLagging = "replica_lagging"
	// CodeNotPrimary marks a 403 from a read replica refusing a
	// mutation: followers are read-only by construction, and the
	// response's Location header names the primary that accepts writes.
	CodeNotPrimary = "not_primary"
	// CodeSegmentGone marks a 404 from the replication feed for a
	// segment the primary no longer serves (compacted, salvaged or
	// quarantined). Followers re-fetch the replication state and
	// reconcile instead of retrying the fetch.
	CodeSegmentGone = "segment_gone"
)

// ErrorDetail is the inner object of the error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Envelope is the uniform JSON error body: {"error":{"code","message"}}.
type Envelope struct {
	Error ErrorDetail `json:"error"`
}

// CodeForStatus maps an HTTP status to the default envelope code, so
// call sites that only know the status still emit a stable code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethod
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusServiceUnavailable:
		return CodeOverloaded
	case http.StatusGatewayTimeout:
		return CodeTimeout
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeBadRequest
}

// WriteError emits the structured envelope. An empty code falls back
// to CodeForStatus.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	if code == "" {
		code = CodeForStatus(status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(Envelope{Error: ErrorDetail{Code: code, Message: message}})
}

// EnvelopeFallback guarantees the envelope contract for error
// responses produced below it that are not already JSON — primarily
// the ServeMux's own plain-text 404/405 pages. A 4xx/5xx WriteHeader
// with a non-JSON Content-Type is rewritten into the envelope (headers
// such as Allow survive; the plain-text body is swallowed). JSON error
// responses from handlers pass through untouched.
func EnvelopeFallback(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercepted bool
}

// Unwrap supports http.ResponseController pass-through.
func (ew *envelopeWriter) Unwrap() http.ResponseWriter { return ew.ResponseWriter }

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wroteHeader {
		return
	}
	ew.wroteHeader = true
	ct := ew.Header().Get("Content-Type")
	if status >= 400 && !strings.HasPrefix(ct, "application/json") {
		ew.intercepted = true
		ew.Header().Set("Content-Type", "application/json")
		ew.Header().Del("Content-Length")
		ew.Header().Del("X-Content-Type-Options")
		ew.ResponseWriter.WriteHeader(status)
		body, _ := json.Marshal(Envelope{Error: ErrorDetail{
			Code:    CodeForStatus(status),
			Message: http.StatusText(status),
		}})
		ew.ResponseWriter.Write(append(body, '\n'))
		return
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(p []byte) (int, error) {
	if !ew.wroteHeader {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.intercepted {
		// The replacement body was already written; report success so
		// the inner handler completes normally.
		return len(p), nil
	}
	return ew.ResponseWriter.Write(p)
}
