package httpmw

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateShedsAndRecovers fills the gate, asserts the 503 contract
// (Retry-After + envelope code overloaded), then drains and asserts
// full recovery — shedding is stateless, not a breaker that latches.
func TestGateShedsAndRecovers(t *testing.T) {
	g := NewGate(2, 3*time.Second, nil)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	h := LoadShed(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), g, nil)

	type result struct{ rr *httptest.ResponseRecorder }
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/slow", nil))
			results <- result{rr}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight requests never started")
		}
	}

	// Gate is full: the next request is shed, not queued.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/slow", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	if ra, err := strconv.Atoi(rr.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", rr.Header().Get("Retry-After"))
	}
	if code := decodeEnvelope(t, rr.Body.Bytes()); code != CodeOverloaded {
		t.Fatalf("envelope code = %q, want %q", code, CodeOverloaded)
	}
	if st := g.Stats(); st.Shed != 1 || st.InFlight != 2 {
		t.Fatalf("stats = %+v, want Shed=1 InFlight=2", st)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.rr.Code != http.StatusOK {
			t.Fatalf("admitted request finished with %d", r.rr.Code)
		}
	}

	// Recovery: slots freed (and release closed), the next request
	// sails through.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/slow", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", rr.Code)
	}
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", st.InFlight)
	}
}

// TestGateNeverOverAdmits races many requests through a small gate
// and asserts the observed concurrency inside the handler never
// exceeds the bound — the shed check must be atomic with the
// in-flight increment.
func TestGateNeverOverAdmits(t *testing.T) {
	const limit = 4
	g := NewGate(limit, time.Second, nil)
	var inHandler, maxSeen atomic.Int64
	h := LoadShed(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inHandler.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inHandler.Add(-1)
		w.WriteHeader(http.StatusOK)
	}), g, nil)

	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
				switch rr.Code {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d", rr.Code)
				}
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > limit {
		t.Fatalf("observed %d concurrent handlers, bound is %d", maxSeen.Load(), limit)
	}
	if ok.Load()+shed.Load() != 32*50 {
		t.Fatalf("ok %d + shed %d != issued %d", ok.Load(), shed.Load(), 32*50)
	}
	st := g.Stats()
	if st.Admitted != ok.Load() || st.Shed != shed.Load() {
		t.Fatalf("gate stats %+v disagree with observed ok=%d shed=%d", st, ok.Load(), shed.Load())
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after the storm, want 0", st.InFlight)
	}
}

// TestGateColdCacheGrace asserts the grace hook widens the gate while
// active and the bound snaps back once it clears.
func TestGateColdCacheGrace(t *testing.T) {
	var cold atomic.Bool
	cold.Store(true)
	g := NewGate(2, time.Second, func() float64 {
		if cold.Load() {
			return 2.0
		}
		return 1.0
	})

	claim := func() int {
		n := 0
		for g.Enter() {
			n++
			if n > 100 {
				t.Fatal("gate never closed")
			}
		}
		return n
	}

	if got := claim(); got != 4 {
		t.Fatalf("cold gate admitted %d, want limit×grace = 4", got)
	}
	for i := 0; i < 4; i++ {
		g.Exit()
	}

	cold.Store(false)
	if got := claim(); got != 2 {
		t.Fatalf("warm gate admitted %d, want base limit 2", got)
	}
	for i := 0; i < 2; i++ {
		g.Exit()
	}
}

// TestGateExemptBypass asserts exempt requests (health probes) pass a
// saturated gate.
func TestGateExemptBypass(t *testing.T) {
	g := NewGate(1, time.Second, nil)
	if !g.Enter() { // saturate
		t.Fatal("could not claim the only slot")
	}
	h := LoadShed(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), g, func(r *http.Request) bool { return r.URL.Path == "/api/health" })

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/api/query", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("non-exempt request: status %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/api/health", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("health probe blocked by a saturated gate: status %d", rr.Code)
	}
	g.Exit()
}
