package httpmw

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// decodeEnvelope asserts a response body is the structured envelope
// and returns the code.
func decodeEnvelope(t *testing.T, body []byte) string {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("body %q is not the error envelope: %v", body, err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope %+v missing code or message", env)
	}
	return env.Error.Code
}

// TestLimiterNeverOverAdmits hammers one bucket from many goroutines
// with a frozen clock: admissions must equal the burst capacity
// exactly — the token ledger is atomic under contention, so racing
// requests cannot mint extra tokens.
func TestLimiterNeverOverAdmits(t *testing.T) {
	const burst = 50
	l := NewLimiter(10, burst)
	frozen := time.Now()
	l.now = func() time.Time { return frozen }

	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Allow("10.0.0.1").OK {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != burst {
		t.Fatalf("admitted %d of 1600 requests, want exactly the burst %d", got, burst)
	}
	st := l.Stats()
	if st.Denied != 1600-burst {
		t.Fatalf("denied = %d, want %d", st.Denied, 1600-burst)
	}
}

// TestLimiterRefills advances the injected clock and asserts tokens
// return at the configured rate, capped at burst.
func TestLimiterRefills(t *testing.T) {
	l := NewLimiter(10, 5) // 10 tokens/s, burst 5
	now := time.Now()
	l.now = func() time.Time { return now }

	for i := 0; i < 5; i++ {
		if d := l.Allow("k"); !d.OK {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	if d := l.Allow("k"); d.OK {
		t.Fatal("6th request admitted from an empty bucket")
	} else if d.RetryAfter <= 0 {
		t.Fatal("rejection carries no RetryAfter")
	}

	now = now.Add(200 * time.Millisecond) // refills 2 tokens
	for i := 0; i < 2; i++ {
		if d := l.Allow("k"); !d.OK {
			t.Fatalf("request %d after refill rejected", i)
		}
	}
	if d := l.Allow("k"); d.OK {
		t.Fatal("admitted beyond the refilled amount")
	}

	now = now.Add(time.Hour) // cap at burst, not rate*dt
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Allow("k").OK {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("after a long idle, admitted %d, want the burst cap 5", admitted)
	}
}

// TestLimiterKeysAreIndependent asserts one client's storm cannot
// starve another's bucket.
func TestLimiterKeysAreIndependent(t *testing.T) {
	l := NewLimiter(1, 2)
	frozen := time.Now()
	l.now = func() time.Time { return frozen }
	for i := 0; i < 10; i++ {
		l.Allow("attacker")
	}
	if !l.Allow("victim").OK {
		t.Fatal("victim's fresh bucket was rejected")
	}
}

// TestRateLimitHeaderContract drives the middleware over HTTP shape:
// every limited response carries X-RateLimit-*, and the 429 adds
// Retry-After plus the structured envelope with code rate_limited.
func TestRateLimitHeaderContract(t *testing.T) {
	read := NewLimiter(1, 2)
	frozen := time.Now()
	read.now = func() time.Time { return frozen }
	h := RateLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), read, nil, func(*http.Request) bool { return false }, nil, nil)

	get := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/api/recipes", nil)
		req.RemoteAddr = "192.0.2.7:1234"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	for i := 0; i < 2; i++ {
		rr := get()
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rr.Code)
		}
		if rr.Header().Get("X-RateLimit-Limit") != "2" {
			t.Fatalf("X-RateLimit-Limit = %q, want 2", rr.Header().Get("X-RateLimit-Limit"))
		}
		want := strconv.Itoa(1 - i)
		if rr.Header().Get("X-RateLimit-Remaining") != want {
			t.Fatalf("request %d: X-RateLimit-Remaining = %q, want %s", i, rr.Header().Get("X-RateLimit-Remaining"), want)
		}
		if rr.Header().Get("X-RateLimit-Reset") == "" {
			t.Fatal("missing X-RateLimit-Reset")
		}
	}

	rr := get()
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	ra, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", rr.Header().Get("Retry-After"))
	}
	if code := decodeEnvelope(t, rr.Body.Bytes()); code != CodeRateLimited {
		t.Fatalf("envelope code = %q, want %q", code, CodeRateLimited)
	}
}

// TestRateLimitBudgetSplit asserts mutations draw from their own
// bucket: exhausting the mutation budget leaves reads flowing.
func TestRateLimitBudgetSplit(t *testing.T) {
	frozen := time.Now()
	read := NewLimiter(100, 100)
	read.now = func() time.Time { return frozen }
	mutation := NewLimiter(1, 1)
	mutation.now = func() time.Time { return frozen }
	h := RateLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), read, mutation, nil, nil, nil)

	do := func(method string) int {
		req := httptest.NewRequest(method, "/api/recipes", nil)
		req.RemoteAddr = "192.0.2.9:999"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr.Code
	}
	if do("POST") != http.StatusOK {
		t.Fatal("first mutation rejected")
	}
	if do("POST") != http.StatusTooManyRequests {
		t.Fatal("second mutation admitted past the budget")
	}
	for i := 0; i < 10; i++ {
		if do("GET") != http.StatusOK {
			t.Fatalf("read %d throttled by the exhausted mutation budget", i)
		}
	}
}

// TestRateLimitConcurrentContract floods the middleware with -race on
// and checks global accounting: admitted + denied == issued, and
// admitted never exceeds the burst (frozen clock).
func TestRateLimitConcurrentContract(t *testing.T) {
	const burst = 64
	l := NewLimiter(1, burst)
	frozen := time.Now()
	l.now = func() time.Time { return frozen }
	var served atomic.Int64
	h := RateLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}), l, l, nil, nil, nil)

	const goroutines, per = 8, 50
	var denied atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := httptest.NewRequest("GET", fmt.Sprintf("/x/%d", i), nil)
				req.RemoteAddr = "198.51.100.3:42"
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code == http.StatusTooManyRequests {
					denied.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if served.Load() != burst {
		t.Fatalf("served %d, want exactly burst %d", served.Load(), burst)
	}
	if served.Load()+denied.Load() != goroutines*per {
		t.Fatalf("served %d + denied %d != issued %d", served.Load(), denied.Load(), goroutines*per)
	}
}
