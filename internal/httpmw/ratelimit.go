package httpmw

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxBuckets bounds the per-IP bucket map; when exceeded, the next
// Allow sweeps buckets that have been idle long enough to have fully
// refilled (forgetting them loses no admission state).
const maxBuckets = 65536

// Limiter is a keyed token-bucket rate limiter: each key (client IP)
// owns a bucket of capacity burst refilled at rate tokens/second. It
// is safe for concurrent use and never over-admits: a token is
// consumed atomically under the lock or the request is rejected.
type Limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket

	denied atomic.Int64

	// now is injectable for tests; defaults to time.Now.
	now func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter admitting rate requests/second with the
// given burst capacity per key. burst < 1 is raised to max(1, rate) so
// a nonzero rate always admits single requests.
func NewLimiter(rate, burst float64) *Limiter {
	if burst < 1 {
		burst = math.Max(1, rate)
	}
	return &Limiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Decision is the outcome of one admission attempt.
type Decision struct {
	OK bool
	// Limit is the bucket capacity (X-RateLimit-Limit).
	Limit int
	// Remaining is the whole tokens left after this request
	// (X-RateLimit-Remaining).
	Remaining int
	// Reset is the time until the bucket is full again
	// (X-RateLimit-Reset, rounded up to seconds on the wire).
	Reset time.Duration
	// RetryAfter is how long until one token is available; zero when
	// OK. Rounded up to seconds for the Retry-After header.
	RetryAfter time.Duration
}

// Allow consumes one token from key's bucket if available.
func (l *Limiter) Allow(key string) Decision {
	now := l.now()
	l.mu.Lock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
			b.last = now
		}
	}
	d := Decision{Limit: int(l.burst)}
	if b.tokens >= 1 {
		b.tokens--
		d.OK = true
	} else if l.rate > 0 {
		d.RetryAfter = secondsDur((1 - b.tokens) / l.rate)
	} else {
		d.RetryAfter = time.Hour // rate 0: effectively never
	}
	d.Remaining = int(b.tokens)
	if l.rate > 0 {
		d.Reset = secondsDur((l.burst - b.tokens) / l.rate)
	}
	l.mu.Unlock()
	if !d.OK {
		l.denied.Add(1)
	}
	return d
}

func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// sweepLocked drops buckets idle long enough to have refilled
// completely; callers hold l.mu.
func (l *Limiter) sweepLocked(now time.Time) {
	idle := time.Hour
	if l.rate > 0 {
		idle = secondsDur(l.burst/l.rate) + time.Minute
	}
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}

// LimiterStats is a point-in-time limiter snapshot for /api/health.
type LimiterStats struct {
	Rate   float64 `json:"rps"`
	Burst  float64 `json:"burst"`
	Tokens float64 `json:"tokens"` // available tokens summed over buckets
	Keys   int     `json:"keys"`
	Denied int64   `json:"denied"`
}

// Stats snapshots the limiter. Tokens is computed at the stored refill
// marks (a lower bound; buckets also refill lazily on access).
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LimiterStats{Rate: l.rate, Burst: l.burst, Keys: len(l.buckets), Denied: l.denied.Load()}
	for _, b := range l.buckets {
		s.Tokens += b.tokens
	}
	return s
}

// ClientIP extracts the bucket key for a request: the host part of
// RemoteAddr. Proxy headers (X-Forwarded-For) are deliberately not
// trusted on this path — an untrusted peer could mint a fresh bucket
// per request and starve real clients. Deployments that sit behind a
// load balancer use ClientIPTrusted with an explicit proxy allowlist.
func ClientIP(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		if ip := net.ParseIP(host); ip != nil {
			return ip.String()
		}
		return host
	}
	return r.RemoteAddr
}

// ParseTrustedProxies parses a comma-separated list of CIDR blocks
// (bare IPs are accepted as /32, or /128 for IPv6). The result feeds
// ClientIPTrusted / Config.TrustedProxies.
func ParseTrustedProxies(list string) ([]*net.IPNet, error) {
	var nets []*net.IPNet
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "/") {
			ip := net.ParseIP(part)
			if ip == nil {
				return nil, fmt.Errorf("httpmw: bad trusted proxy %q", part)
			}
			bits := 32
			if ip.To4() == nil {
				bits = 128
			}
			part = fmt.Sprintf("%s/%d", ip.String(), bits)
		}
		_, n, err := net.ParseCIDR(part)
		if err != nil {
			return nil, fmt.Errorf("httpmw: bad trusted proxy %q: %w", part, err)
		}
		nets = append(nets, n)
	}
	return nets, nil
}

func ipTrusted(ip net.IP, trusted []*net.IPNet) bool {
	if ip == nil {
		return false
	}
	for _, n := range trusted {
		if n.Contains(ip) {
			return true
		}
	}
	return false
}

// ClientIPTrusted resolves the rate-limit key for a request arriving
// through known proxies. The X-Forwarded-For chain is honored only
// when the direct peer is on the trusted list; the chain is then
// walked right to left past every trusted hop, and the first address
// NOT on the list is the client. A request whose direct peer is
// untrusted keys on RemoteAddr no matter what headers it carries — a
// spoofer cannot mint buckets — and a malformed chain entry also
// falls back to RemoteAddr rather than keying on attacker-controlled
// bytes. When every hop is trusted (internal traffic), the leftmost
// entry keys the bucket.
func ClientIPTrusted(r *http.Request, trusted []*net.IPNet) string {
	peer := ClientIP(r)
	if len(trusted) == 0 || !ipTrusted(net.ParseIP(peer), trusted) {
		return peer
	}
	var chain []string
	for _, h := range r.Header.Values("X-Forwarded-For") {
		for _, e := range strings.Split(h, ",") {
			if e = strings.TrimSpace(e); e != "" {
				chain = append(chain, e)
			}
		}
	}
	leftmost := peer
	for i := len(chain) - 1; i >= 0; i-- {
		ip := net.ParseIP(chain[i])
		if ip == nil {
			return peer
		}
		if !ipTrusted(ip, trusted) {
			return ip.String()
		}
		leftmost = ip.String()
	}
	return leftmost
}

// RateLimit enforces read and mutation budgets per client key.
// isMutation classifies requests (nil means every non-GET/HEAD
// request is a mutation); exempt requests (nil = none) bypass both
// budgets; clientKey picks the bucket key (nil = ClientIP, which
// ignores proxy headers). Every limited response carries the
// X-RateLimit-* headers; a rejection is a structured 429 with
// Retry-After.
func RateLimit(next http.Handler, read, mutation *Limiter,
	isMutation, exempt func(*http.Request) bool,
	clientKey func(*http.Request) string) http.Handler {
	if isMutation == nil {
		isMutation = func(r *http.Request) bool {
			return r.Method != http.MethodGet && r.Method != http.MethodHead
		}
	}
	if clientKey == nil {
		clientKey = ClientIP
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt != nil && exempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		l := read
		if isMutation(r) {
			l = mutation
		}
		if l == nil {
			next.ServeHTTP(w, r)
			return
		}
		d := l.Allow(clientKey(r))
		h := w.Header()
		h.Set("X-RateLimit-Limit", strconv.Itoa(d.Limit))
		h.Set("X-RateLimit-Remaining", strconv.Itoa(d.Remaining))
		h.Set("X-RateLimit-Reset", strconv.Itoa(ceilSeconds(d.Reset)))
		if !d.OK {
			h.Set("Retry-After", strconv.Itoa(ceilSeconds(d.RetryAfter)))
			WriteError(w, http.StatusTooManyRequests, CodeRateLimited,
				"rate limit exceeded; retry after the Retry-After interval")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ceilSeconds renders a duration as whole seconds, rounding up so a
// client honoring the header never retries early; minimum 1 for any
// positive duration.
func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	s := int(d / time.Second)
	if d%time.Second != 0 || s == 0 {
		s++
	}
	return s
}
