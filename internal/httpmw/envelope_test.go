package httpmw

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestEnvelopeFallbackWrapsMuxErrors asserts the fallback converts the
// ServeMux's plain-text 404/405 pages into the structured envelope
// while preserving protocol headers (Allow on 405).
func TestEnvelopeFallbackWrapsMuxErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/only-get", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := EnvelopeFallback(mux)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	if code := decodeEnvelope(t, rr.Body.Bytes()); code != CodeNotFound {
		t.Fatalf("code = %q, want %q", code, CodeNotFound)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/api/only-get", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rr.Code)
	}
	if rr.Header().Get("Allow") == "" {
		t.Fatal("405 lost its Allow header")
	}
	if code := decodeEnvelope(t, rr.Body.Bytes()); code != CodeMethod {
		t.Fatalf("code = %q, want %q", code, CodeMethod)
	}
}

// TestEnvelopeFallbackPassesJSONThrough asserts handler-authored JSON
// errors and success bodies are untouched.
func TestEnvelopeFallbackPassesJSONThrough(t *testing.T) {
	h := EnvelopeFallback(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/err" {
			WriteError(w, http.StatusUnprocessableEntity, CodeUnprocessable, "custom detail")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/err", nil))
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", rr.Code)
	}
	var env Envelope
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Message != "custom detail" {
		t.Fatalf("handler's own envelope was rewritten: %+v", env)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/ok", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != `{"ok":true}` {
		t.Fatalf("success body mangled: %d %q", rr.Code, rr.Body.String())
	}
}

// TestWriteErrorDefaultsCode asserts the status→code fallback.
func TestWriteErrorDefaultsCode(t *testing.T) {
	cases := map[int]string{
		http.StatusBadRequest:            CodeBadRequest,
		http.StatusNotFound:              CodeNotFound,
		http.StatusRequestEntityTooLarge: CodeTooLarge,
		http.StatusUnprocessableEntity:   CodeUnprocessable,
		http.StatusTooManyRequests:       CodeRateLimited,
		http.StatusInternalServerError:   CodeInternal,
		http.StatusServiceUnavailable:    CodeOverloaded,
		http.StatusGatewayTimeout:        CodeTimeout,
	}
	for status, want := range cases {
		rr := httptest.NewRecorder()
		WriteError(rr, status, "", "msg")
		if rr.Code != status {
			t.Fatalf("status %d: wrote %d", status, rr.Code)
		}
		if code := decodeEnvelope(t, rr.Body.Bytes()); code != want {
			t.Fatalf("status %d: code %q, want %q", status, code, want)
		}
	}
}
