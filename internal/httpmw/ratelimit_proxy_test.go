package httpmw

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func mustProxies(t *testing.T, list string) []*net.IPNet {
	t.Helper()
	nets, err := ParseTrustedProxies(list)
	if err != nil {
		t.Fatalf("ParseTrustedProxies(%q): %v", list, err)
	}
	return nets
}

func TestParseTrustedProxies(t *testing.T) {
	nets, err := ParseTrustedProxies(" 10.0.0.0/8, 192.0.2.1 , 2001:db8::/32,fe80::1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 4 {
		t.Fatalf("parsed %d nets, want 4", len(nets))
	}
	for _, bad := range []string{"not-an-ip", "10.0.0.0/33", "10.0.0.256"} {
		if _, err := ParseTrustedProxies(bad); err == nil {
			t.Fatalf("ParseTrustedProxies(%q) accepted", bad)
		}
	}
	if nets, err := ParseTrustedProxies(""); err != nil || len(nets) != 0 {
		t.Fatalf("empty list: %v, %d nets", err, len(nets))
	}
}

func proxyReq(remote string, xff ...string) *http.Request {
	r := httptest.NewRequest("GET", "/api/recipes", nil)
	r.RemoteAddr = remote
	for _, v := range xff {
		r.Header.Add("X-Forwarded-For", v)
	}
	return r
}

func TestClientIPTrusted(t *testing.T) {
	trusted := mustProxies(t, "10.0.0.0/8,2001:db8::/32")
	cases := []struct {
		name string
		req  *http.Request
		want string
	}{
		// The bug this battery pins down: an untrusted peer forging
		// X-Forwarded-For must NOT mint a bucket per spoofed value.
		{"spoof from untrusted peer", proxyReq("198.51.100.9:4000", "203.0.113.77"), "198.51.100.9"},
		{"untrusted peer, no header", proxyReq("198.51.100.9:4000"), "198.51.100.9"},
		{"trusted peer, single hop", proxyReq("10.1.2.3:4000", "203.0.113.77"), "203.0.113.77"},
		// Multi-hop: client → trusted A → trusted B → server; both
		// proxy addresses are walked past, right to left.
		{"multi-hop trusted chain", proxyReq("10.1.2.3:4000", "203.0.113.77, 10.9.9.9"), "203.0.113.77"},
		{"multi-hop split headers", proxyReq("10.1.2.3:4000", "203.0.113.77", "10.9.9.9"), "203.0.113.77"},
		// An untrusted hop stops the walk: everything left of it is
		// attacker-controllable and must be ignored.
		{"spoofed prefix behind trusted hop", proxyReq("10.1.2.3:4000", "1.1.1.1, 203.0.113.77"), "203.0.113.77"},
		// IPv6 peers and clients, including canonicalization.
		{"ipv6 client via trusted v4 proxy", proxyReq("10.1.2.3:4000", "2001:4860:4860:0:0:0:0:8888"), "2001:4860:4860::8888"},
		{"ipv6 trusted proxy", proxyReq("[2001:db8::5]:4000", "203.0.113.77"), "203.0.113.77"},
		{"ipv6 untrusted peer spoofing", proxyReq("[2001:4860::1]:4000", "203.0.113.77"), "2001:4860::1"},
		// Garbage in the chain from a trusted peer: fall back to the
		// peer rather than keying on attacker bytes.
		{"malformed chain entry", proxyReq("10.1.2.3:4000", "garbage, 10.9.9.9"), "10.1.2.3"},
		// All hops trusted (internal traffic): leftmost entry keys.
		{"fully trusted chain", proxyReq("10.1.2.3:4000", "10.0.0.1, 10.9.9.9"), "10.0.0.1"},
		{"trusted peer, empty header", proxyReq("10.1.2.3:4000"), "10.1.2.3"},
	}
	for _, tc := range cases {
		if got := ClientIPTrusted(tc.req, trusted); got != tc.want {
			t.Errorf("%s: key = %q, want %q", tc.name, got, tc.want)
		}
	}
	if got := ClientIPTrusted(proxyReq("10.1.2.3:4000", "203.0.113.77"), nil); got != "10.1.2.3" {
		t.Errorf("nil trusted list: key = %q, want peer", got)
	}
}

// TestRateLimitSpoofedForwardedFor drives the full middleware: with a
// trusted-proxy key function, one spoofing client rotating forged
// X-Forwarded-For values from an untrusted address exhausts ONE
// bucket, while a genuine client behind the trusted proxy keeps its
// own budget.
func TestRateLimitSpoofedForwardedFor(t *testing.T) {
	trusted := mustProxies(t, "10.0.0.0/8")
	read := NewLimiter(1, 2)
	frozen := time.Now()
	read.now = func() time.Time { return frozen }
	h := RateLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), read, nil, func(*http.Request) bool { return false }, nil,
		func(r *http.Request) string { return ClientIPTrusted(r, trusted) })

	do := func(remote, xff string) int {
		req := proxyReq(remote)
		if xff != "" {
			req.Header.Set("X-Forwarded-For", xff)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr.Code
	}

	// Attacker at an untrusted address forges a fresh client per
	// request; all of them must land in the attacker's own bucket.
	admitted := 0
	for i := 0; i < 10; i++ {
		if do("198.51.100.9:4000", fmt.Sprintf("203.0.113.%d", i)) == http.StatusOK {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("spoofer admitted %d times, want burst of 2", admitted)
	}
	// A real client arriving via the trusted proxy still has tokens.
	if code := do("10.1.2.3:4000", "203.0.113.200"); code != http.StatusOK {
		t.Fatalf("legitimate proxied client rejected: %d", code)
	}
}
