package httpmw

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Gate is the concurrency-limit/load-shed valve: it admits at most
// limit×grace() requests in flight and rejects the excess with
// 503 + Retry-After instead of queueing them. Shedding keeps the
// server's latency bounded under overload — queued work would all
// time out together; shed work retries against a server that is
// still making progress.
type Gate struct {
	limit      int64
	retryAfter time.Duration

	// grace scales the limit dynamically; nil pins it at 1.0. The
	// server wires this to the result cache's temperature: while the
	// cache is cold every query executes for real (~600× slower than a
	// cache hit), so in-flight counts spike on exactly the traffic
	// that will warm the cache. The grace multiplier widens the gate
	// during that window instead of 503ing the warmup herd; once the
	// cache is hot the limit reverts to the tight base bound.
	grace func() float64

	inFlight atomic.Int64
	peak     atomic.Int64
	shed     atomic.Int64
	admitted atomic.Int64
}

// NewGate builds a gate admitting limit concurrent requests (scaled by
// grace, which may be nil). retryAfter <= 0 defaults to 1s.
func NewGate(limit int, retryAfter time.Duration, grace func() float64) *Gate {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &Gate{limit: int64(limit), retryAfter: retryAfter, grace: grace}
}

// EffectiveLimit is the current admission bound: limit×grace(),
// floored at the base limit so a misbehaving grace hook can widen but
// never strangle the gate.
func (g *Gate) EffectiveLimit() int64 {
	lim := g.limit
	if g.grace != nil {
		if m := g.grace(); m > 1 {
			lim = int64(float64(g.limit) * m)
		}
	}
	return lim
}

// Enter tries to claim an in-flight slot; callers must Exit() iff it
// returns true. The count is incremented before the bound check so two
// racing requests cannot both squeeze through the last slot.
func (g *Gate) Enter() bool {
	n := g.inFlight.Add(1)
	if n > g.EffectiveLimit() {
		g.inFlight.Add(-1)
		g.shed.Add(1)
		return false
	}
	g.admitted.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return true
		}
	}
}

// Exit releases a slot claimed by Enter.
func (g *Gate) Exit() { g.inFlight.Add(-1) }

// GateStats is a point-in-time gate snapshot for /api/health.
type GateStats struct {
	InFlight       int64 `json:"inFlight"`
	Limit          int64 `json:"limit"`
	EffectiveLimit int64 `json:"effectiveLimit"`
	Peak           int64 `json:"peak"`
	Admitted       int64 `json:"admitted"`
	Shed           int64 `json:"shed"`
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		InFlight:       g.inFlight.Load(),
		Limit:          g.limit,
		EffectiveLimit: g.EffectiveLimit(),
		Peak:           g.peak.Load(),
		Admitted:       g.admitted.Load(),
		Shed:           g.shed.Load(),
	}
}

// LoadShed gates next behind g. Exempt requests (nil = none) bypass
// the gate entirely — health probes must answer precisely when the
// server is saturated.
func LoadShed(next http.Handler, g *Gate, exempt func(*http.Request) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt != nil && exempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		if !g.Enter() {
			w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(g.retryAfter)))
			WriteError(w, http.StatusServiceUnavailable, CodeOverloaded,
				"server is at its concurrency limit; retry after the Retry-After interval")
			return
		}
		defer g.Exit()
		next.ServeHTTP(w, r)
	})
}
