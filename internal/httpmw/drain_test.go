package httpmw

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestShutdownDrainsInFlight runs the full middleware chain under a
// real http.Server, parks a request inside the handler, triggers
// Shutdown, and asserts (a) the in-flight request completes with its
// full body — graceful drain, not a slammed connection — and (b)
// Shutdown returns once the handler exits, well within the grace
// window.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	tr := NewTraffic(Config{
		ReadRPS:      1000,
		MutationRPS:  1000,
		MaxInFlight:  8,
		RetryAfter:   time.Second,
		MaxBodyBytes: 1 << 20,
	})
	h := tr.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.Write([]byte(`{"drained":true}`))
	}))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Park one request inside the handler.
	type resp struct {
		body []byte
		code int
		err  error
	}
	got := make(chan resp, 1)
	go func() {
		r, err := http.Get("http://" + ln.Addr().String() + "/api/recipes")
		if err != nil {
			got <- resp{err: err}
			return
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		got <- resp{body: b, code: r.StatusCode, err: err}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	// Begin the graceful drain while the request is still in flight.
	shutdownDone := make(chan error, 1)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(drainCtx) }()

	// Shutdown must wait for the handler, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(200 * time.Millisecond):
	}

	close(release)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK || string(r.body) != `{"drained":true}` {
		t.Fatalf("in-flight request got %d %q, want 200 with full body", r.code, r.body)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the handler finished")
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if st := tr.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", st.InFlight)
	}
}
