package recipedb

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"culinary/internal/flavor"
)

// Writer fan-in. Mutations no longer run their whole lifecycle under
// the corpus write lock: a writer packages its operations into writeOps
// and races for the write token. Whoever wins becomes the leader for
// every op queued at that moment — it validates, assigns slots and
// encodes records against a read snapshot (no exclusive lock), persists
// the whole group through one backend batch (one storage group commit
// when the backend supports it), then takes the write lock once to
// apply all slot and posting-list updates, publish one version bump,
// and deliver one subscriber notification batch. Writers that arrive
// while a group is in flight pile into the next group, so the exclusive
// lock and the backend fsync amortize across concurrent callers.
//
// Coherence argument: only the token holder mutates corpus state, so
// the read snapshot the leader plans against is exactly the state its
// exclusive-lock apply phase will observe — no other writer can
// interleave between plan and apply. Ops within a group are planned
// against an overlay that layers earlier in-group ops over that
// snapshot, which makes a batch byte-equivalent to applying the same
// ops sequentially: same slot assignment, same version sequence, same
// posting lists, same persisted keys.

// BatchBackend is an optional Backend extension: a backend that can
// persist several mutations through one group-commit round. The
// returned slice aligns with the inputs; a mid-batch storage fault
// yields per-record errors (the durable prefix nil, the rest failed).
// *storage.Store satisfies it via WriteBatch.
type BatchBackend interface {
	Backend
	WriteBatch(keys []string, values [][]byte, tombstones []bool) []error
}

// Outcome classifies what a batch item did to the corpus.
type Outcome uint8

const (
	// OutcomeRejected: the item failed validation (or a persistence
	// fault); the corpus is untouched by it.
	OutcomeRejected Outcome = iota
	// OutcomeCreated: a new live recipe occupies the slot.
	OutcomeCreated
	// OutcomeReplaced: the slot's previous live recipe was displaced.
	OutcomeReplaced
	// OutcomeKept: the item was byte-identical to the slot's live
	// recipe; nothing was written (batch ingest only).
	OutcomeKept
	// OutcomeRemoved: the slot was tombstoned.
	OutcomeRemoved
)

// String returns the wire spelling used by the batch endpoint.
func (o Outcome) String() string {
	switch o {
	case OutcomeCreated:
		return "created"
	case OutcomeReplaced:
		return "replaced"
	case OutcomeKept:
		return "kept"
	case OutcomeRemoved:
		return "removed"
	default:
		return "rejected"
	}
}

// BatchItem is one operation of an ApplyBatch call.
type BatchItem struct {
	// Remove tombstones slot ID instead of upserting.
	Remove bool
	// ID addresses a slot; for upserts, -1 assigns the next free one.
	ID int

	Name        string
	Region      Region
	Source      Source
	Ingredients []flavor.ID
}

// BatchResult reports one item's outcome. Err is nil exactly when the
// item was applied (or kept); validation failures wrap ErrValidation
// or ErrNoRecipe, persistence failures wrap the backend error.
type BatchResult struct {
	// ID is the slot the item resolved to (upserts with ID -1 learn
	// their assignment here).
	ID int
	// Version is the corpus version the item produced; a kept item
	// reports the version it was verified against.
	Version uint64
	Outcome Outcome
	Err     error
}

// ApplyBatch applies the items as one coalesced group: one write
// critical section, one version publication, one subscriber batch, one
// backend group commit. Items apply in order with all-or-nothing
// semantics per item — an invalid item is rejected in place while its
// neighbors proceed, exactly as if the items had been applied
// sequentially. Upsert items that are byte-identical to the slot's
// current live recipe are skipped as OutcomeKept. The returned slice
// aligns with items.
func (s *Store) ApplyBatch(items []BatchItem) []BatchResult {
	if len(items) == 0 {
		return nil
	}
	ops := make([]*writeOp, len(items))
	for i, it := range items {
		ops[i] = &writeOp{
			remove: it.Remove,
			id:     it.ID,
			name:   it.Name,
			region: it.Region,
			source: it.Source,
			// Copy: the caller may reuse its slice after we return.
			ingredients: append([]flavor.ID(nil), it.Ingredients...),
			dedupe:      true,
		}
	}
	s.submitOps(ops)
	out := make([]BatchResult, len(items))
	for i, op := range ops {
		out[i] = BatchResult{ID: op.outID, Version: op.version, Outcome: op.outcome, Err: op.err}
	}
	return out
}

// writeOp is one mutation inside a write group.
type writeOp struct {
	remove      bool
	id          int
	name        string
	region      Region
	source      Source
	ingredients []flavor.ID // writer's private copy
	// dedupe skips byte-identical upserts (OutcomeKept). Batch-ingest
	// items opt in; single Upsert keeps its always-write semantics.
	dedupe bool

	// Leader planning state.
	rec        Recipe // the recipe to install (upserts)
	persistIdx int    // index into the group's backend arrays; -1 none
	// keptAfter, for a kept op, is the in-group predecessor whose write
	// produced the state the op was deduplicated against; if that write
	// fails to persist the dedup premise is gone and the op fails too.
	keptAfter *writeOp

	// Outcome.
	outID   int
	version uint64
	outcome Outcome
	err     error
}

// writeGroup is a batch of ops applied by one leader.
type writeGroup struct {
	ops  []*writeOp
	done chan struct{}
}

// submitOps drives ops through the fan-in and returns once some leader
// (possibly this goroutine) has applied the group containing them. The
// protocol mirrors the storage engine's group commit (storage/commit.go
// submit): leader fast path with an adaptive yield so writers made
// runnable by the previous apply can join this group, follower path
// that queues and races for the token in case the current leader's
// group detached before these ops joined.
func (s *Store) submitOps(ops []*writeOp) {
	select {
	case s.wtok <- struct{}{}:
		if s.wgrouping {
			runtime.Gosched()
		}
		s.wpendMu.Lock()
		g := s.wpending
		s.wpending = nil
		if g == nil {
			g = &writeGroup{} // solo group: nobody to signal
		}
		g.ops = append(g.ops, ops...)
		s.wpendMu.Unlock()
		s.wgrouping = len(g.ops) > len(ops)
		s.applyGroup(g)
		if g.done != nil {
			close(g.done)
		}
		<-s.wtok
		return
	default:
	}

	s.wpendMu.Lock()
	g := s.wpending
	if g == nil {
		g = &writeGroup{done: make(chan struct{})}
		s.wpending = g
	}
	g.ops = append(g.ops, ops...)
	s.wpendMu.Unlock()

	select {
	case s.wtok <- struct{}{}:
		s.applyNext()
		<-s.wtok
	case <-g.done:
	}
	<-g.done
}

// applyNext detaches the pending group and applies it. Caller holds
// the write token; reaching this path means the token was contended,
// so future leaders should pause for company.
func (s *Store) applyNext() {
	s.wgrouping = true
	s.wpendMu.Lock()
	g := s.wpending
	s.wpending = nil
	s.wpendMu.Unlock()
	if g == nil {
		return
	}
	s.applyGroup(g)
	close(g.done)
}

// applyGroup runs one group through plan → persist → commit. Caller
// holds the write token, so this is the only goroutine mutating corpus
// state — the invariant the three-phase split relies on.
func (s *Store) applyGroup(g *writeGroup) {
	keys, values, tombs := s.planGroup(g)
	s.persistGroup(g, keys, values, tombs)
	s.commitGroup(g)
	s.bstats.note(len(g.ops))
}

// planGroup validates every op, assigns slots, detects kept items and
// encodes the backend records, all against a read snapshot layered with
// the effects of earlier in-group ops. Returns the backend write set.
func (s *Store) planGroup(g *writeGroup) (keys []string, values [][]byte, tombs []bool) {
	s.mu.RLock()
	slots := len(s.recipes)
	// overlay maps slots touched by earlier in-group ops to their
	// post-op content (nil = tombstoned); lastWriter tracks which op
	// produced that content, for kept-dependency accounting.
	overlay := make(map[int]*Recipe)
	lastWriter := make(map[int]*writeOp)
	curLive := func(id int) *Recipe {
		if r, touched := overlay[id]; touched {
			return r
		}
		if id >= 0 && id < len(s.recipes) && !s.recipes[id].Deleted {
			return &s.recipes[id]
		}
		return nil
	}
	for _, op := range g.ops {
		op.persistIdx = -1
		if op.remove {
			if op.id < 0 || op.id >= slots || curLive(op.id) == nil {
				op.err = fmt.Errorf("%w: id %d", ErrNoRecipe, op.id)
				continue
			}
			op.outID = op.id
			op.outcome = OutcomeRemoved
			overlay[op.id] = nil
			lastWriter[op.id] = op
			if s.persist != nil {
				keys = append(keys, RecipeKey(op.id))
				values = append(values, nil)
				tombs = append(tombs, true)
				op.persistIdx = len(keys) - 1
			}
			continue
		}
		if err := s.validate(op.name, op.region, op.source, op.ingredients); err != nil {
			op.err = err
			continue
		}
		id := op.id
		if id < 0 {
			id = slots // next free slot, counting in-group extensions
		}
		if id >= slots {
			slots = id + 1
		}
		op.outID = id
		rec := Recipe{
			ID: id, Name: op.name, Region: op.region, Source: op.source,
			Ingredients: op.ingredients,
		}
		cur := curLive(id)
		if op.dedupe && cur != nil && recipeEqual(cur, &rec) {
			op.outcome = OutcomeKept
			op.keptAfter = lastWriter[id]
			continue
		}
		op.rec = rec
		if cur == nil {
			op.outcome = OutcomeCreated
		} else {
			op.outcome = OutcomeReplaced
		}
		overlay[id] = &op.rec
		lastWriter[id] = op
		if s.persist != nil {
			keys = append(keys, RecipeKey(id))
			values = append(values, EncodeRecipe(&rec))
			tombs = append(tombs, false)
			op.persistIdx = len(keys) - 1
		}
	}
	s.mu.RUnlock()
	return keys, values, tombs
}

// persistGroup writes the group's records through the backend before
// any in-memory state changes (write-through: a failed write leaves the
// corpus untouched for exactly the ops it failed). One BatchBackend
// round when available, else per-op writes.
func (s *Store) persistGroup(g *writeGroup, keys []string, values [][]byte, tombs []bool) {
	if s.persist == nil || len(keys) == 0 {
		return
	}
	if bb, ok := s.persist.(BatchBackend); ok {
		errs := bb.WriteBatch(keys, values, tombs)
		for _, op := range g.ops {
			if op.persistIdx >= 0 && errs[op.persistIdx] != nil {
				op.err = wrapPersistError(op, errs[op.persistIdx])
			}
		}
	} else {
		for _, op := range g.ops {
			if op.persistIdx < 0 {
				continue
			}
			var err error
			if tombs[op.persistIdx] {
				err = s.persist.Delete(keys[op.persistIdx])
			} else {
				err = s.persist.Put(keys[op.persistIdx], values[op.persistIdx])
			}
			if err != nil {
				op.err = wrapPersistError(op, err)
			}
		}
	}
	// A kept op deduplicated against an in-group write that failed: its
	// premise ("the slot already holds these bytes") is gone, so it
	// fails with the same cause rather than acking silently.
	for _, op := range g.ops {
		if op.err == nil && op.outcome == OutcomeKept && op.keptAfter != nil && op.keptAfter.err != nil {
			op.err = op.keptAfter.err
			op.outcome = OutcomeRejected
		}
	}
}

// wrapPersistError keeps the per-op error spelling of the old
// write-through path, so callers' errors.Is chains (ErrWriteWedged,
// ENOSPC, ...) keep resolving through the wrap.
func wrapPersistError(op *writeOp, err error) error {
	if op.remove {
		return fmt.Errorf("recipedb: deleting recipe %d: %w", op.outID, err)
	}
	return fmt.Errorf("recipedb: persisting recipe %d: %w", op.outID, err)
}

// commitGroup takes the write lock once and applies every surviving op
// in order: slot and posting-list updates, per-mutation versions, one
// atomic version publication, one subscriber notification batch. The
// live corpus is authoritative here — an op whose in-group predecessor
// failed to persist re-fails its precondition check instead of applying
// against state that never materialized.
func (s *Store) commitGroup(g *writeGroup) {
	s.mu.Lock()
	base := s.version.Load()
	v := base
	var muts []Mutation
	for _, op := range g.ops {
		if op.err != nil {
			op.outcome = OutcomeRejected
			continue
		}
		if op.outcome == OutcomeKept {
			op.version = v
			continue
		}
		if op.remove {
			if op.outID >= len(s.recipes) || s.recipes[op.outID].Deleted {
				op.err = fmt.Errorf("%w: id %d", ErrNoRecipe, op.outID)
				op.outcome = OutcomeRejected
				continue
			}
			oldCopy := s.recipes[op.outID]
			s.unindexLocked(&s.recipes[op.outID])
			s.recipes[op.outID] = Recipe{ID: op.outID, Deleted: true}
			s.live--
			v++
			op.version = v
			muts = append(muts, Mutation{Version: v, ID: op.outID, Old: &oldCopy})
			continue
		}
		id := op.outID
		for len(s.recipes) < id { // gap slots stay tombstoned
			s.recipes = append(s.recipes, Recipe{ID: len(s.recipes), Deleted: true})
		}
		var displaced *Recipe
		op.outcome = OutcomeCreated
		if id == len(s.recipes) {
			s.recipes = append(s.recipes, op.rec)
			s.live++
		} else {
			if old := &s.recipes[id]; !old.Deleted {
				oldCopy := *old
				displaced = &oldCopy
				s.unindexLocked(old)
				op.outcome = OutcomeReplaced
			} else {
				s.live++
			}
			s.recipes[id] = op.rec
		}
		s.indexLocked(&s.recipes[id])
		v++
		op.version = v
		newCopy := s.recipes[id]
		muts = append(muts, Mutation{Version: v, ID: id, Old: displaced, New: &newCopy})
	}
	// Subscribers run before the atomic version is published: the
	// lock-free version is a fence ("state at version v is observable"),
	// so anything keyed on it — a replica's version gate admitting a
	// read the live search index must already cover — may only see v
	// once every subscriber has processed the batch. Readers under
	// Read() are excluded by the lock either way; only lock-free
	// Version() observers need this ordering.
	s.notifyLocked(muts)
	if v != base {
		s.version.Store(v)
	}
	s.mu.Unlock()
}

// recipeEqual reports content equality (everything but the slot ID,
// which both sides already share when this is called).
func recipeEqual(a, b *Recipe) bool {
	if a.Name != b.Name || a.Region != b.Region || a.Source != b.Source ||
		a.Deleted != b.Deleted || len(a.Ingredients) != len(b.Ingredients) {
		return false
	}
	for i := range a.Ingredients {
		if a.Ingredients[i] != b.Ingredients[i] {
			return false
		}
	}
	return true
}

// batchStats tracks write-group coalescing for /api/health: group
// count, op count, the max group size, and a ring of recent sizes for
// the p50.
type batchStats struct {
	mu      sync.Mutex
	batches uint64
	ops     uint64
	// coalesced counts groups that carried more than one op — the
	// number the fan-in exists to make nonzero under concurrency.
	coalesced uint64
	max       int
	recent    [256]int
	recentN   int // total notes, for ring occupancy
}

func (b *batchStats) note(n int) {
	b.mu.Lock()
	b.batches++
	b.ops += uint64(n)
	if n > 1 {
		b.coalesced++
	}
	if n > b.max {
		b.max = n
	}
	b.recent[b.recentN%len(b.recent)] = n
	b.recentN++
	b.mu.Unlock()
}

// BatchStats is a snapshot of write-group coalescing.
type BatchStats struct {
	// Batches is the number of write groups applied (each cost one
	// critical section, one version publication, one group commit).
	Batches uint64
	// Ops is the number of mutations those groups carried.
	Ops uint64
	// Coalesced is the number of groups carrying more than one op.
	Coalesced uint64
	// MaxBatch is the largest group seen; P50Batch the median size of
	// the most recent groups (up to 256).
	MaxBatch int
	P50Batch int
}

// BatchStats returns the fan-in coalescing counters.
func (s *Store) BatchStats() BatchStats {
	b := &s.bstats
	b.mu.Lock()
	defer b.mu.Unlock()
	out := BatchStats{
		Batches:   b.batches,
		Ops:       b.ops,
		Coalesced: b.coalesced,
		MaxBatch:  b.max,
	}
	n := b.recentN
	if n > len(b.recent) {
		n = len(b.recent)
	}
	if n > 0 {
		sizes := append([]int(nil), b.recent[:n]...)
		sort.Ints(sizes)
		out.P50Batch = sizes[n/2]
	}
	return out
}

// CanonicalDump serializes the complete corpus state — version, slot
// layout, per-slot content, and both posting-list families — in a
// deterministic text form, so equivalence tests can assert that a
// batched application is byte-identical to a sequential one.
func (s *Store) CanonicalDump() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "version=%d live=%d slots=%d\n", s.version.Load(), s.live, len(s.recipes))
	for i := range s.recipes {
		r := &s.recipes[i]
		if r.Deleted {
			fmt.Fprintf(&b, "slot %d: tombstone\n", i)
			continue
		}
		fmt.Fprintf(&b, "slot %d: %q region=%d source=%d ingredients=%v\n",
			i, r.Name, r.Region, r.Source, r.Ingredients)
	}
	regions := make([]Region, 0, len(s.byRegion))
	for r := range s.byRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		if len(s.byRegion[r]) > 0 {
			fmt.Fprintf(&b, "region %d: %v\n", r, s.byRegion[r])
		}
	}
	ings := make([]flavor.ID, 0, len(s.byIngredient))
	for id := range s.byIngredient {
		ings = append(ings, id)
	}
	sort.Slice(ings, func(i, j int) bool { return ings[i] < ings[j] })
	for _, id := range ings {
		if len(s.byIngredient[id]) > 0 {
			fmt.Fprintf(&b, "ingredient %d: %v\n", id, s.byIngredient[id])
		}
	}
	return b.String()
}
