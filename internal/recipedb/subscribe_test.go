package recipedb

import (
	"strings"
	"testing"

	"culinary/internal/flavor"
)

func TestSubscribeObservesUpsertAndRemove(t *testing.T) {
	s := NewStore(testCatalog)
	id0 := addRecipe(t, s, "tomato salad", Italy, "tomato", "basil", "olive oil")

	var got []Mutation
	var initLen int
	var initVersion uint64
	s.Subscribe(func(v *View) {
		initLen = v.Len()
		initVersion = v.Version
	}, func(m Mutation) { got = append(got, m) })
	if initLen != 1 || initVersion != s.Version() {
		t.Fatalf("init saw (%d, %d), want (1, %d)", initLen, initVersion, s.Version())
	}

	id1 := addRecipe(t, s, "pesto pasta", Italy, "basil", "garlic", "olive oil")
	if len(got) != 1 {
		t.Fatalf("after insert: %d mutations", len(got))
	}
	m := got[0]
	if m.ID != id1 || m.Old != nil || m.New == nil || m.New.Name != "pesto pasta" || m.Version != s.Version() {
		t.Fatalf("insert mutation = %+v", m)
	}

	// Replace: Old carries the displaced recipe, New the replacement.
	ings := []flavor.ID{mustID(t, "tomato"), mustID(t, "onion")}
	if _, _, created, err := s.Upsert(id0, "tomato soup", USA, Epicurious, ings); err != nil || created {
		t.Fatalf("replace: created=%t err=%v", created, err)
	}
	m = got[1]
	if m.ID != id0 || m.Old == nil || m.Old.Name != "tomato salad" || m.Old.Region != Italy ||
		m.New == nil || m.New.Name != "tomato soup" || m.New.Region != USA {
		t.Fatalf("replace mutation = %+v", m)
	}

	// Remove: New is nil, Old is the tombstoned recipe.
	if _, err := s.Remove(id1); err != nil {
		t.Fatal(err)
	}
	m = got[2]
	if m.ID != id1 || m.New != nil || m.Old == nil || m.Old.Name != "pesto pasta" {
		t.Fatalf("remove mutation = %+v", m)
	}

	// Versions must be strictly increasing and end at the live version.
	for i := 1; i < len(got); i++ {
		if got[i].Version <= got[i-1].Version {
			t.Fatalf("versions not increasing: %d then %d", got[i-1].Version, got[i].Version)
		}
	}
	if got[len(got)-1].Version != s.Version() {
		t.Fatalf("last mutation version %d != store version %d", got[len(got)-1].Version, s.Version())
	}
}

func TestSubscribeFailedMutationsDoNotNotify(t *testing.T) {
	s := NewStore(testCatalog)
	n := 0
	s.Subscribe(nil, func(Mutation) { n++ })
	if _, err := s.Add("bad", Italy, AllRecipes, []flavor.ID{mustID(t, "tomato")}); err == nil {
		t.Fatal("single-ingredient recipe validated")
	}
	if _, err := s.Remove(0); err == nil {
		t.Fatal("Remove on empty store succeeded")
	}
	if n != 0 {
		t.Fatalf("failed mutations notified %d times", n)
	}
}

func TestViewAccessors(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "tomato salad", Italy, "tomato", "basil", "olive oil")
	addRecipe(t, s, "miso soup", Japan, "tofu", "scallion", "garlic")
	s.Read(func(v *View) {
		if v.Catalog() != testCatalog {
			t.Error("View.Catalog mismatch")
		}
		if ids := v.LiveIDs(); len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
			t.Errorf("LiveIDs = %v", ids)
		}
		regions := v.Regions()
		if len(regions) != 2 || regions[0] != Italy || regions[1] != Japan {
			t.Errorf("Regions = %v", regions)
		}
		c := v.BuildCuisine(Italy)
		if c.NumRecipes() != 1 || c.Region != Italy {
			t.Errorf("BuildCuisine(Italy) = %+v", c)
		}
	})
}

// TestParseRegionCaseInsensitive is the satellite's round-trip battery:
// every canonical code survives parse → String → parse in any casing.
func TestParseRegionCaseInsensitive(t *testing.T) {
	all := append(AllRegions(), World)
	for _, region := range all {
		code := region.Code()
		for _, variant := range []string{code, strings.ToLower(code), strings.ToUpper(code), strings.Title(strings.ToLower(code))} {
			got, err := ParseRegion(variant)
			if err != nil {
				t.Fatalf("ParseRegion(%q): %v", variant, err)
			}
			if got != region {
				t.Fatalf("ParseRegion(%q) = %v, want %v", variant, got, region)
			}
			// Round trip: the canonical String() must re-parse to itself.
			again, err := ParseRegion(got.String())
			if err != nil || again != region {
				t.Fatalf("round trip %q -> %q -> (%v, %v)", variant, got.String(), again, err)
			}
		}
	}
	if _, err := ParseRegion("NOPE"); err == nil {
		t.Fatal("unknown code parsed")
	}
}
