package recipedb

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"culinary/internal/flavor"
)

var testCatalog = func() *flavor.Catalog {
	c, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return c
}()

func mustID(t *testing.T, name string) flavor.ID {
	t.Helper()
	id, ok := testCatalog.Lookup(name)
	if !ok {
		t.Fatalf("catalog missing %q", name)
	}
	return id
}

func addRecipe(t *testing.T, s *Store, name string, r Region, names ...string) int {
	t.Helper()
	ids := make([]flavor.ID, len(names))
	for i, n := range names {
		ids[i] = mustID(t, n)
	}
	id, err := s.Add(name, r, AllRecipes, ids)
	if err != nil {
		t.Fatalf("Add(%q): %v", name, err)
	}
	return id
}

func TestStoreAddAndQuery(t *testing.T) {
	s := NewStore(testCatalog)
	id0 := addRecipe(t, s, "tomato salad", Italy, "tomato", "basil", "olive oil", "salt")
	id1 := addRecipe(t, s, "dal", IndianSubcontinent, "lentil", "turmeric", "cumin", "onion", "ghee")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	r := s.Recipe(id0)
	if r.Name != "tomato salad" || r.Region != Italy || r.Size() != 4 {
		t.Fatalf("recipe 0 wrong: %+v", r)
	}
	if !r.Contains(mustID(t, "basil")) || r.Contains(mustID(t, "cumin")) {
		t.Fatal("Contains wrong")
	}
	if s.RegionLen(Italy) != 1 || s.RegionLen(IndianSubcontinent) != 1 || s.RegionLen(France) != 0 {
		t.Fatal("RegionLen wrong")
	}
	if s.RegionLen(World) != 2 {
		t.Fatal("World should count everything")
	}
	_ = id1
	regions := s.Regions()
	if len(regions) != 2 || regions[0] != IndianSubcontinent || regions[1] != Italy {
		t.Fatalf("Regions = %v", regions)
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore(testCatalog)
	tomato := mustID(t, "tomato")
	basil := mustID(t, "basil")
	cases := []struct {
		name   string
		region Region
		source Source
		ings   []flavor.ID
	}{
		{"bad region", World, AllRecipes, []flavor.ID{tomato, basil}},
		{"invalid region", Region(99), AllRecipes, []flavor.ID{tomato, basil}},
		{"bad source", Italy, Source(9), []flavor.ID{tomato, basil}},
		{"too few", Italy, AllRecipes, []flavor.ID{tomato}},
		{"dup ingredient", Italy, AllRecipes, []flavor.ID{tomato, tomato}},
		{"out of range", Italy, AllRecipes, []flavor.ID{tomato, flavor.ID(99999)}},
		{"negative id", Italy, AllRecipes, []flavor.ID{tomato, flavor.ID(-1)}},
	}
	for _, tc := range cases {
		if _, err := s.Add(tc.name, tc.region, tc.source, tc.ings); !errors.Is(err, ErrValidation) {
			t.Errorf("%s: err = %v, want ErrValidation", tc.name, err)
		}
	}
	if s.Len() != 0 {
		t.Fatal("failed adds should not persist")
	}
}

func TestForEachInRegion(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "a", Italy, "tomato", "basil")
	addRecipe(t, s, "b", France, "butter", "cream")
	addRecipe(t, s, "c", Italy, "pasta", "parmesan cheese")
	var italian []string
	s.ForEachInRegion(Italy, func(r *Recipe) { italian = append(italian, r.Name) })
	if len(italian) != 2 || italian[0] != "a" || italian[1] != "c" {
		t.Fatalf("italian = %v", italian)
	}
	count := 0
	s.ForEachInRegion(World, func(r *Recipe) { count++ })
	if count != 3 {
		t.Fatalf("World iteration saw %d", count)
	}
}

func TestBuildCuisine(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "a", Italy, "tomato", "basil", "olive oil")
	addRecipe(t, s, "b", Italy, "tomato", "mozzarella cheese")
	addRecipe(t, s, "c", France, "butter", "cream")
	c := s.BuildCuisine(Italy)
	if c.NumRecipes() != 2 {
		t.Fatalf("NumRecipes = %d", c.NumRecipes())
	}
	if c.NumUniqueIngredients() != 4 {
		t.Fatalf("unique = %d", c.NumUniqueIngredients())
	}
	if got := c.IngredientFreq[mustID(t, "tomato")]; got != 2 {
		t.Fatalf("tomato freq = %d", got)
	}
	if got := c.Sizes; len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("Sizes = %v", got)
	}
	h := c.SizeHistogram()
	if h.Total() != 2 || h.Count(3) != 1 {
		t.Fatal("size histogram wrong")
	}
	top := c.TopIngredients(1)
	if len(top) != 1 || top[0] != mustID(t, "tomato") {
		t.Fatalf("TopIngredients = %v", top)
	}
	fv := c.FrequencyVector()
	if len(fv) != 4 {
		t.Fatalf("FrequencyVector = %v", fv)
	}
	// World cuisine pools everything.
	w := s.BuildCuisine(World)
	if w.NumRecipes() != 3 {
		t.Fatalf("World NumRecipes = %d", w.NumRecipes())
	}
}

func TestTopIngredientsDeterministicTies(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "a", Italy, "tomato", "basil")
	c := s.BuildCuisine(Italy)
	// Both have frequency 1; tie breaks by ID.
	top := c.TopIngredients(2)
	if len(top) != 2 || top[0] > top[1] {
		t.Fatalf("tie-break not by ID: %v", top)
	}
	// k larger than available clamps.
	if got := c.TopIngredients(10); len(got) != 2 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestCategoryUsage(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "a", Italy, "tomato", "basil", "milk", "butter")
	usage := s.CategoryUsage(Italy)
	if len(usage) != flavor.NumCategories {
		t.Fatalf("usage has %d entries", len(usage))
	}
	var total float64
	for _, u := range usage {
		total += u
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("usage sums to %v", total)
	}
	if usage[flavor.Dairy] != 0.5 {
		t.Fatalf("dairy usage = %v, want 0.5", usage[flavor.Dairy])
	}
	if usage[flavor.Vegetable] != 0.25 || usage[flavor.Herb] != 0.25 {
		t.Fatalf("vegetable/herb usage = %v/%v", usage[flavor.Vegetable], usage[flavor.Herb])
	}
	// Empty region: all zeros.
	empty := s.CategoryUsage(Korea)
	for _, u := range empty {
		if u != 0 {
			t.Fatal("empty region should have zero usage")
		}
	}
}

func TestRegionMetadata(t *testing.T) {
	if len(MajorRegions()) != 22 {
		t.Fatalf("paper analyzes 22 regions, got %d", len(MajorRegions()))
	}
	if len(AllRegions()) != 26 {
		t.Fatalf("26 total regions, got %d", len(AllRegions()))
	}
	// Table 1 totals: 45,565 major + 207 minor = 45,772.
	major, minor := 0, 0
	for _, r := range AllRegions() {
		if r.Major() {
			major += r.PaperRecipeCount()
		} else {
			minor += r.PaperRecipeCount()
		}
	}
	if major != 45565 {
		t.Errorf("major recipe total = %d, want 45565", major)
	}
	if minor != 207 {
		t.Errorf("minor recipe total = %d, want 207 (§III.A)", minor)
	}
	if World.PaperRecipeCount() != 45772 {
		t.Errorf("world total = %d", World.PaperRecipeCount())
	}
	// Fig 4: 16 positive, 6 negative.
	pos, neg := 0, 0
	for _, r := range MajorRegions() {
		switch r.PairingSign() {
		case +1:
			pos++
		case -1:
			neg++
		default:
			t.Errorf("major region %s has no pairing sign", r)
		}
		if float64(r.PairingSign())*r.PairingBias() <= 0 {
			t.Errorf("region %s bias %v inconsistent with sign %d", r, r.PairingBias(), r.PairingSign())
		}
	}
	if pos != 16 || neg != 6 {
		t.Errorf("pairing signs: %d positive, %d negative; want 16/6", pos, neg)
	}
	// Specific values from Table 1.
	if Korea.PaperRecipeCount() != 301 || USA.PaperRecipeCount() != 16118 {
		t.Error("Korea/USA counts wrong")
	}
	if USA.PaperIngredientCount() != 612 || Korea.PaperIngredientCount() != 198 {
		t.Error("Korea/USA ingredient counts wrong")
	}
	// Negative regions are exactly the paper's six.
	negSet := map[Region]bool{}
	for _, r := range MajorRegions() {
		if r.PairingSign() < 0 {
			negSet[r] = true
		}
	}
	for _, want := range []Region{Scandinavia, Japan, DACH, BritishIsles, Korea, EasternEurope} {
		if !negSet[want] {
			t.Errorf("region %s should be negative-pairing", want)
		}
	}
}

func TestParseRegionAndSource(t *testing.T) {
	r, err := ParseRegion("INSC")
	if err != nil || r != IndianSubcontinent {
		t.Fatalf("ParseRegion(INSC) = %v, %v", r, err)
	}
	if _, err := ParseRegion("XX"); err == nil {
		t.Fatal("unknown region should error")
	}
	src, err := ParseSource("TarlaDalal")
	if err != nil || src != TarlaDalal {
		t.Fatalf("ParseSource = %v, %v", src, err)
	}
	if _, err := ParseSource("nope"); err == nil {
		t.Fatal("unknown source should error")
	}
	if got := Region(99).Code(); !strings.HasPrefix(got, "Region(") {
		t.Fatalf("invalid region Code = %q", got)
	}
	if got := Source(99).String(); !strings.HasPrefix(got, "Source(") {
		t.Fatalf("invalid source String = %q", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "caprese", Italy, "tomato", "mozzarella cheese", "basil", "olive oil")
	addRecipe(t, s, "dal tadka", IndianSubcontinent, "lentil", "cumin", "ghee", "turmeric", "onion")
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost recipes: %d vs %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		a, b := s.Recipe(i), got.Recipe(i)
		if a.Name != b.Name || a.Region != b.Region || a.Source != b.Source {
			t.Fatalf("recipe %d metadata differs", i)
		}
		if len(a.Ingredients) != len(b.Ingredients) {
			t.Fatalf("recipe %d ingredients differ", i)
		}
		for j := range a.Ingredients {
			if a.Ingredients[j] != b.Ingredients[j] {
				t.Fatalf("recipe %d ingredient %d differs", i, j)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "caprese", Italy, "tomato", "mozzarella cheese", "basil")
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Recipe(0).Name != "caprese" {
		t.Fatalf("JSON round trip failed: %+v", got.Recipe(0))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, data string }{
		{"bad header", "a,b,c,d,e\n"},
		{"bad region", "id,name,region,source,ingredients\n0,x,NOPE,AllRecipes,tomato;basil\n"},
		{"bad source", "id,name,region,source,ingredients\n0,x,ITA,Nope,tomato;basil\n"},
		{"bad ingredient", "id,name,region,source,ingredients\n0,x,ITA,AllRecipes,unobtainium;basil\n"},
		{"too few ingredients", "id,name,region,source,ingredients\n0,x,ITA,AllRecipes,tomato\n"},
		{"wrong field count", "id,name,region,source,ingredients\n0,x,ITA\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.data), testCatalog); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct{ name, data string }{
		{"malformed", "{"},
		{"bad region", `{"recipes":[{"id":0,"name":"x","region":"NOPE","source":"AllRecipes","ingredients":["tomato","basil"]}]}`},
		{"bad ingredient", `{"recipes":[{"id":0,"name":"x","region":"ITA","source":"AllRecipes","ingredients":["unobtainium","basil"]}]}`},
		{"bad source", `{"recipes":[{"id":0,"name":"x","region":"ITA","source":"Nope","ingredients":["tomato","basil"]}]}`},
	}
	for _, tc := range cases {
		if _, err := ReadJSON(strings.NewReader(tc.data), testCatalog); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSourceCounts(t *testing.T) {
	s := NewStore(testCatalog)
	tomato, basil := mustID(t, "tomato"), mustID(t, "basil")
	if _, err := s.Add("a", Italy, AllRecipes, []flavor.ID{tomato, basil}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add("b", Italy, Epicurious, []flavor.ID{tomato, basil}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add("c", Italy, Epicurious, []flavor.ID{tomato, basil}); err != nil {
		t.Fatal(err)
	}
	counts := s.SourceCounts()
	if counts[AllRecipes] != 1 || counts[Epicurious] != 2 {
		t.Fatalf("SourceCounts = %v", counts)
	}
}
