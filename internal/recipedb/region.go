// Package recipedb implements the CulinaryDB substrate: the recipe
// corpus grouped into the paper's 22 geo-cultural regions, recipe
// storage with per-region indexes, per-region statistics (recipe size
// distributions, ingredient frequencies, category usage), and CSV/JSON
// codecs for export and reload.
package recipedb

import (
	"fmt"
	"strings"
)

// Region is one of the paper's 22 geo-cultural regions, the four minor
// regions folded into only the aggregate analysis, or the WORLD
// aggregate.
type Region int

// The paper's regions (Table 1 order), the minor regions (§III.A:
// Portugal, Belgium, Central America, Netherlands — 207 recipes used
// only in aggregate), and World.
const (
	Africa Region = iota
	AustraliaNZ
	BritishIsles
	Canada
	Caribbean
	China
	DACH
	EasternEurope
	France
	Greece
	IndianSubcontinent
	Italy
	Japan
	Korea
	Mexico
	MiddleEast
	Scandinavia
	SouthAmerica
	SouthEastAsia
	Spain
	Thailand
	USA
	Portugal
	Belgium
	CentralAmerica
	Netherlands
	World
	numRegions
)

// NumMajorRegions is the number of independently analyzed regions (22).
const NumMajorRegions = 22

// NumAllRegions counts major + minor regions (no World).
const NumAllRegions = 26

// regionInfo carries the paper's Table 1 metadata plus the food-pairing
// direction read off Fig 4 and a qualitative magnitude used to calibrate
// the synthetic corpus generator.
type regionInfo struct {
	code        string
	name        string
	recipes     int     // Table 1 recipe count
	ingredients int     // Table 1 unique ingredient count
	pairingSign int     // +1 uniform pairing, -1 contrasting (Fig 4); 0 for minor/World
	pairingBias float64 // generator affinity weight (sign-consistent with pairingSign)
}

// regionTable is ground truth from Table 1 and Fig 4/5 of the paper.
// Pairing signs: 16 positive regions (ITA, AFR, CBN, GRC, ESP, USA,
// INSC, ME, MEX, ANZ, SAM, FRA, THA, CHN, SEA, CAN) and 6 negative
// (SCND, JPN, DACH, BRI, KOR, EE). Bias magnitudes are qualitative,
// ordered by the paper's narrative (Italy/Africa strongest positive;
// Scandinavia/Japan strongest negative).
var regionTable = [numRegions]regionInfo{
	Africa:             {"AFR", "Africa", 651, 303, +1, 1.5},
	AustraliaNZ:        {"ANZ", "Australia & NZ", 494, 294, +1, 0.9},
	BritishIsles:       {"BRI", "British Isles", 1075, 340, -1, -1.0},
	Canada:             {"CAN", "Canada", 1112, 368, +1, 0.5},
	Caribbean:          {"CBN", "Caribbean", 1103, 340, +1, 1.4},
	China:              {"CHN", "China", 941, 302, +1, 0.6},
	DACH:               {"DACH", "DACH Countries", 487, 260, -1, -1.2},
	EasternEurope:      {"EE", "Eastern Europe", 565, 255, -1, -0.7},
	France:             {"FRA", "France", 2703, 424, +1, 0.7},
	Greece:             {"GRC", "Greece", 934, 280, +1, 1.3},
	IndianSubcontinent: {"INSC", "Indian Subcontinent", 4058, 378, +1, 1.1},
	Italy:              {"ITA", "Italy", 7504, 452, +1, 1.6},
	Japan:              {"JPN", "Japan", 580, 283, -1, -1.3},
	Korea:              {"KOR", "Korea", 301, 198, -1, -0.9},
	Mexico:             {"MEX", "Mexico", 3138, 376, +1, 1.0},
	MiddleEast:         {"ME", "Middle East", 993, 313, +1, 1.1},
	Scandinavia:        {"SCND", "Scandinavia", 404, 245, -1, -1.5},
	SouthAmerica:       {"SAM", "South America", 310, 221, +1, 0.8},
	SouthEastAsia:      {"SEA", "South East Asia", 611, 266, +1, 0.55},
	Spain:              {"ESP", "Spain", 816, 312, +1, 1.25},
	Thailand:           {"THA", "Thailand", 667, 265, +1, 0.65},
	USA:                {"USA", "USA", 16118, 612, +1, 1.2},
	Portugal:           {"PRT", "Portugal", 60, 120, 0, 0.3},
	Belgium:            {"BEL", "Belgium", 49, 110, 0, 0.1},
	CentralAmerica:     {"CAM", "Central America", 55, 115, 0, 0.4},
	Netherlands:        {"NLD", "Netherlands", 43, 100, 0, -0.2},
	World:              {"WORLD", "World", 45772, 0, 0, 0},
}

// Code returns the paper's short code for the region (e.g. "INSC").
func (r Region) Code() string {
	if !r.Valid() {
		return fmt.Sprintf("Region(%d)", int(r))
	}
	return regionTable[r].code
}

// Name returns the display name used in Table 1.
func (r Region) Name() string {
	if !r.Valid() {
		return fmt.Sprintf("Region(%d)", int(r))
	}
	return regionTable[r].name
}

// String implements fmt.Stringer with the region code.
func (r Region) String() string { return r.Code() }

// Valid reports whether r is a defined region (including minor and
// World).
func (r Region) Valid() bool { return r >= 0 && r < numRegions }

// Major reports whether r is one of the 22 independently analyzed
// regions.
func (r Region) Major() bool { return r >= Africa && r <= USA }

// Minor reports whether r is one of the four under-represented regions
// folded into the WORLD aggregate only.
func (r Region) Minor() bool { return r >= Portugal && r <= Netherlands }

// PaperRecipeCount returns the Table 1 recipe count for the region (the
// minor-region counts are the paper's 207 aggregate split plausibly).
func (r Region) PaperRecipeCount() int {
	if !r.Valid() {
		return 0
	}
	return regionTable[r].recipes
}

// PaperIngredientCount returns the Table 1 unique-ingredient count.
func (r Region) PaperIngredientCount() int {
	if !r.Valid() {
		return 0
	}
	return regionTable[r].ingredients
}

// PairingSign returns +1 for regions the paper reports as uniform
// (positive) food pairing, -1 for contrasting, and 0 for minor regions
// and World.
func (r Region) PairingSign() int {
	if !r.Valid() {
		return 0
	}
	return regionTable[r].pairingSign
}

// PairingBias returns the generator's flavor-affinity weight for the
// region; its sign matches PairingSign.
func (r Region) PairingBias() float64 {
	if !r.Valid() {
		return 0
	}
	return regionTable[r].pairingBias
}

// MajorRegions returns the 22 regions in Table 1 order.
func MajorRegions() []Region {
	out := make([]Region, 0, NumMajorRegions)
	for r := Africa; r <= USA; r++ {
		out = append(out, r)
	}
	return out
}

// AllRegions returns major followed by minor regions (no World).
func AllRegions() []Region {
	out := make([]Region, 0, NumAllRegions)
	for r := Africa; r <= Netherlands; r++ {
		out = append(out, r)
	}
	return out
}

// ParseRegion resolves a region code (e.g. "INSC") to its Region.
// Matching is case-insensitive so every caller — HTTP handlers, CQL,
// CSV reload — accepts the same spellings without normalizing first.
func ParseRegion(code string) (Region, error) {
	for r := Region(0); r < numRegions; r++ {
		if strings.EqualFold(regionTable[r].code, code) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("recipedb: unknown region code %q", code)
}

// Source identifies where a recipe was collected from (§III.A).
type Source int

// The paper's four recipe sources.
const (
	AllRecipes Source = iota
	FoodNetwork
	Epicurious
	TarlaDalal
	numSources
)

var sourceNames = [...]string{"AllRecipes", "Food Network", "Epicurious", "TarlaDalal"}

// String returns the source's display name.
func (s Source) String() string {
	if s < 0 || s >= numSources {
		return fmt.Sprintf("Source(%d)", int(s))
	}
	return sourceNames[s]
}

// Valid reports whether s is a defined source.
func (s Source) Valid() bool { return s >= 0 && s < numSources }

// ParseSource resolves a source display name.
func ParseSource(name string) (Source, error) {
	for i, n := range sourceNames {
		if n == name {
			return Source(i), nil
		}
	}
	return 0, fmt.Errorf("recipedb: unknown source %q", name)
}

// NumSources is the number of recipe sources (4).
const NumSources = int(numSources)
