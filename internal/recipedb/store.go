package recipedb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"culinary/internal/flavor"
	"culinary/internal/stats"
)

// Recipe is one traditional recipe reduced, as in §III.A, to an
// unordered list of catalog ingredient IDs plus provenance metadata.
type Recipe struct {
	// ID is the recipe's dense index within its Store.
	ID int
	// Name is the recipe title.
	Name string
	// Region is the geo-cultural region the recipe is annotated with.
	Region Region
	// Source records which recipe site the recipe came from.
	Source Source
	// Ingredients are catalog IDs; duplicates are not permitted.
	Ingredients []flavor.ID
	// Deleted marks a tombstoned slot: the recipe was removed but its
	// ID stays reserved so the corpus keeps dense, stable IDs. Deleted
	// recipes are absent from every index and skipped by iteration.
	Deleted bool
}

// Size returns the number of ingredients in the recipe.
func (r Recipe) Size() int { return len(r.Ingredients) }

// Contains reports whether the recipe uses the ingredient.
func (r Recipe) Contains(id flavor.ID) bool {
	for _, ing := range r.Ingredients {
		if ing == id {
			return true
		}
	}
	return false
}

// Store errors.
var (
	// ErrValidation wraps recipe validation failures.
	ErrValidation = errors.New("recipedb: invalid recipe")
	// ErrNoRecipe is returned by mutations addressing an absent slot.
	ErrNoRecipe = errors.New("recipedb: no such recipe")
)

// Backend persists individual recipe mutations. *storage.Store
// satisfies it; the interface lives here so recipedb does not import
// the storage engine (which imports recipedb for the snapshot codec).
type Backend interface {
	Put(key string, value []byte) error
	Delete(key string) error
}

// Mutation describes one applied corpus change, delivered to
// subscribers synchronously under the write lock. Old is the live
// recipe the mutation displaced (nil on insert), New the recipe now in
// the slot (nil on delete). Both are value copies whose Ingredients
// slices the store never writes again, so they may be read after
// delivery — but not mutated, since Old shares its slice with copies
// readers may hold.
type Mutation struct {
	// Version is the corpus version this mutation produced.
	Version uint64
	// ID is the slot the mutation addressed.
	ID  int
	Old *Recipe
	New *Recipe
}

// Subscribe registers fn to observe every subsequent mutation. Both
// init and the registration happen atomically under the write lock:
// init sees a consistent corpus snapshot and no mutation between that
// snapshot and the first fn delivery can be missed — the gap a
// derived index would otherwise have to re-scan for. Subscribers run
// synchronously inside the mutation critical section, so fn must be
// fast, must not call back into the Store, and must do its own locking
// against the subscriber's readers. init may be nil.
//
// When a write batch coalesces several mutations, fn is called once
// per mutation in version order; subscribers that can amortize
// per-batch work (one lock acquisition, one rebuild nudge) should use
// SubscribeBatch instead.
func (s *Store) Subscribe(init func(v *View), fn func(Mutation)) {
	s.SubscribeBatch(init, func(ms []Mutation) {
		for _, m := range ms {
			fn(m)
		}
	})
}

// SubscribeBatch is Subscribe for batch-aware consumers: fn receives
// every mutation of one coalesced write batch in a single call, still
// synchronously inside the mutation critical section and in version
// order (ms is sorted by Version, and successive calls never overlap
// or reorder). A single-item write delivers a one-element batch.
func (s *Store) SubscribeBatch(init func(v *View), fn func(ms []Mutation)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if init != nil {
		init(&View{s: s, Version: s.version.Load()})
	}
	s.subs = append(s.subs, fn)
}

// notifyLocked delivers one batch of mutations to every subscriber.
// Callers hold s.mu exclusively and publish the atomic version only
// AFTER this returns, so lock-free Version() observers never see a
// version whose mutations a subscriber has not yet processed.
func (s *Store) notifyLocked(ms []Mutation) {
	if len(ms) == 0 {
		return
	}
	for _, fn := range s.subs {
		fn(ms)
	}
}

// Store is an in-memory recipe corpus with region and ingredient
// indexes. It is safe for concurrent use: reads take a shared lock,
// mutations (Add, Upsert, Remove) serialize behind an exclusive lock
// and bump an atomically-published corpus version. Multi-call readers
// that need one consistent (version, snapshot) pair — e.g. a full
// query execution — run inside Read.
type Store struct {
	mu      sync.RWMutex
	version atomic.Uint64

	catalog      *flavor.Catalog
	recipes      []Recipe
	live         int // slots minus tombstones
	byRegion     map[Region][]int
	byIngredient map[flavor.ID][]int

	// persist, when set, receives every mutation before the in-memory
	// state changes (write-through): a failed write leaves the corpus
	// untouched.
	persist Backend

	// subs are mutation subscribers, notified synchronously under the
	// write lock so derived state observes mutations in version order
	// and is current before the mutation is acknowledged. Each receives
	// one call per coalesced write batch.
	subs []func([]Mutation)

	// Writer fan-in (batch.go): writers queue ops into wpending and
	// race for wtok; the winner plans, persists and applies the whole
	// group. wgrouping is leader-private state (serialized by the
	// token), bstats is the coalescing telemetry for /api/health.
	wtok      chan struct{}
	wpendMu   sync.Mutex
	wpending  *writeGroup
	wgrouping bool
	bstats    batchStats
}

// NewStore creates an empty store bound to an ingredient catalog.
func NewStore(catalog *flavor.Catalog) *Store {
	return &Store{
		catalog:      catalog,
		byRegion:     make(map[Region][]int),
		byIngredient: make(map[flavor.ID][]int),
		wtok:         make(chan struct{}, 1),
	}
}

// SetBackend attaches a persistence backend. Subsequent mutations
// write through to it before updating the in-memory corpus. Writers
// that arrive concurrently coalesce into one backend batch (see
// batch.go); a Backend that also implements BatchBackend persists the
// whole group through one storage group commit.
func (s *Store) SetBackend(b Backend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = b
}

// Catalog returns the ingredient catalog the store is bound to. The
// catalog is immutable, so no locking applies.
func (s *Store) Catalog() *flavor.Catalog { return s.catalog }

// Version returns the corpus version: a counter bumped by every
// successful mutation. It is safe to read without any lock, so cache
// layers can fence entries against it cheaply.
func (s *Store) Version() uint64 { return s.version.Load() }

// SyncVersion raises the corpus version to at least v without changing
// any recipe. Replica followers use it to reconcile version accounting
// with the primary: some primary version bumps leave no replayable
// record (redundant-tombstone no-ops, and version numbering consumed
// by records a later compaction folded away), so after applying every
// shipped record up to the primary's published version V the follower
// calls SyncVersion(V) to land exactly on V. Subscribers receive one
// content-free Mutation{Version: v} (nil Old and New) so derived state
// that fences on the corpus version — the search index, the rebuild
// debouncers — advances its version stamp with it. Lower or equal v is
// a no-op.
func (s *Store) SyncVersion(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v <= s.version.Load() {
		return
	}
	s.notifyLocked([]Mutation{{Version: v}})
	s.version.Store(v)
}

// SyncSlots extends the slot table to at least n slots with tombstones,
// changing no live recipe and no version. The snapshot-reload path
// (storage.LoadCorpus) carries only live recipes, so a corpus whose
// highest slots were all tombstoned reloads short of the original slot
// bound; replica followers persist the bound alongside the version and
// restore it here so Slots(), Add's next-free-slot choice and
// CanonicalDump agree with the primary byte for byte. Lower or equal n
// is a no-op.
func (s *Store) SyncSlots(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.recipes) < n {
		s.recipes = append(s.recipes, Recipe{ID: len(s.recipes), Deleted: true})
	}
}

// View is a lock-free window onto the corpus, valid only inside the
// Read callback that produced it. Its accessors mirror the Store read
// API without re-locking, so a reader holding the view sees one
// consistent (Version, snapshot) pair for its whole critical section.
// Pointers obtained through a View must not escape the callback.
type View struct {
	s *Store
	// Version is the corpus version this view observes.
	Version uint64
}

// Read runs fn against a consistent snapshot of the corpus. The shared
// lock is held for the duration, so mutations observed by Version are
// fully excluded — fn sees the exact corpus state version v describes.
func (s *Store) Read(fn func(v *View)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(&View{s: s, Version: s.version.Load()})
}

// Len returns the number of live recipes.
func (v *View) Len() int { return v.s.live }

// Slots returns the recipe ID bound (live + tombstoned slots).
func (v *View) Slots() int { return len(v.s.recipes) }

// Recipe returns the recipe in slot id. The pointer is valid only
// inside the enclosing Read callback.
func (v *View) Recipe(id int) *Recipe { return &v.s.recipes[id] }

// IngredientRecipes returns the posting list of the ingredient in
// ascending-ID order. Do not mutate or retain past the callback.
func (v *View) IngredientRecipes(id flavor.ID) []int { return v.s.byIngredient[id] }

// RegionLen returns the number of live recipes in the region; World
// counts every live recipe.
func (v *View) RegionLen(r Region) int {
	if r == World {
		return v.s.live
	}
	return len(v.s.byRegion[r])
}

// ForEachInRegion calls fn for every live recipe in the region (every
// live recipe when r == World), in ascending-ID order.
func (v *View) ForEachInRegion(r Region, fn func(*Recipe)) {
	v.s.forEachInRegionLocked(r, fn)
}

// Catalog returns the (immutable) ingredient catalog.
func (v *View) Catalog() *flavor.Catalog { return v.s.catalog }

// LiveIDs returns the IDs of every live recipe, ascending.
func (v *View) LiveIDs() []int { return v.s.liveIDsLocked() }

// Regions returns the regions with at least one live recipe, sorted.
func (v *View) Regions() []Region { return v.s.regionsLocked() }

// BuildCuisine assembles the region's analytical view against this
// snapshot; World pools every recipe. The result is self-contained and
// safe to retain past the callback.
func (v *View) BuildCuisine(r Region) *Cuisine { return v.s.buildCuisineLocked(r) }

// forEachInRegionLocked iterates live recipes; callers hold s.mu.
func (s *Store) forEachInRegionLocked(r Region, fn func(*Recipe)) {
	if r == World {
		for i := range s.recipes {
			if !s.recipes[i].Deleted {
				fn(&s.recipes[i])
			}
		}
		return
	}
	for _, id := range s.byRegion[r] {
		fn(&s.recipes[id])
	}
}

// validate enforces the corpus invariants: a known region and source,
// at least two ingredients (a pairing analysis needs pairs), no
// duplicate ingredients, and every ingredient ID within the catalog.
func (s *Store) validate(name string, region Region, source Source, ingredients []flavor.ID) error {
	if !region.Valid() || region == World {
		return fmt.Errorf("%w: bad region %d", ErrValidation, region)
	}
	if !source.Valid() {
		return fmt.Errorf("%w: bad source %d", ErrValidation, source)
	}
	if len(ingredients) < 2 {
		return fmt.Errorf("%w: recipe %q has %d ingredients, need >= 2", ErrValidation, name, len(ingredients))
	}
	seen := make(map[flavor.ID]struct{}, len(ingredients))
	for _, id := range ingredients {
		if id < 0 || int(id) >= s.catalog.Len() {
			return fmt.Errorf("%w: recipe %q ingredient %d outside catalog", ErrValidation, name, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: recipe %q repeats ingredient %q", ErrValidation, name, s.catalog.Ingredient(id).Name)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// Add validates and appends a recipe, returning its assigned ID.
func (s *Store) Add(name string, region Region, source Source, ingredients []flavor.ID) (int, error) {
	id, _, _, err := s.Upsert(-1, name, region, source, ingredients)
	return id, err
}

// Upsert inserts or replaces one recipe and returns its ID, the new
// corpus version, and whether a new live recipe was created (false
// means a live recipe was replaced; the flag is decided inside the
// write critical section, so it is race-free). id < 0 assigns the next
// free slot; id < Slots() replaces that slot (reviving it if
// tombstoned); id >= Slots() extends the corpus, tombstoning any
// intermediate slots — the sparse-snapshot reload path. When a Backend
// is attached the mutation is persisted first; a persistence error
// leaves the in-memory corpus unchanged. Concurrent callers coalesce
// through the writer fan-in (batch.go) into one critical section and
// one backend group commit.
func (s *Store) Upsert(id int, name string, region Region, source Source, ingredients []flavor.ID) (int, uint64, bool, error) {
	op := &writeOp{
		id: id, name: name, region: region, source: source,
		ingredients: append([]flavor.ID(nil), ingredients...),
	}
	s.submitOps([]*writeOp{op})
	if op.err != nil {
		return 0, 0, false, op.err
	}
	return op.outID, op.version, op.outcome == OutcomeCreated, nil
}

// Remove tombstones the recipe in slot id and returns the new corpus
// version. The slot stays reserved so later recipe IDs keep their
// meaning. Persistence, when attached, happens first. Like Upsert,
// concurrent Removes coalesce through the writer fan-in.
func (s *Store) Remove(id int) (uint64, error) {
	op := &writeOp{remove: true, id: id}
	s.submitOps([]*writeOp{op})
	if op.err != nil {
		return 0, op.err
	}
	return op.version, nil
}

// indexLocked adds rec's ID to the region and ingredient posting
// lists. Lists are copy-on-write: readers that fetched a list under
// the shared lock keep a consistent (if stale) array.
func (s *Store) indexLocked(rec *Recipe) {
	s.byRegion[rec.Region] = insertSorted(s.byRegion[rec.Region], rec.ID)
	for _, ing := range rec.Ingredients {
		s.byIngredient[ing] = insertSorted(s.byIngredient[ing], rec.ID)
	}
}

// unindexLocked removes rec's ID from every posting list it is on.
func (s *Store) unindexLocked(rec *Recipe) {
	s.byRegion[rec.Region] = removeSorted(s.byRegion[rec.Region], rec.ID)
	for _, ing := range rec.Ingredients {
		s.byIngredient[ing] = removeSorted(s.byIngredient[ing], rec.ID)
	}
}

// insertSorted returns an ascending list with id added (idempotent).
// Appending past the tail may reuse spare capacity: that slot is beyond
// every published length, so concurrent readers of older headers never
// see it. Mid-list inserts copy, and removeSorted always copies, so an
// array a reader holds is never rewritten below its length.
func insertSorted(list []int, id int) []int {
	if len(list) == 0 || id > list[len(list)-1] {
		return append(list, id) // corpus build: IDs arrive ascending
	}
	i := sort.SearchInts(list, id)
	if i < len(list) && list[i] == id {
		return list
	}
	out := make([]int, 0, len(list)+1)
	out = append(out, list[:i]...)
	out = append(out, id)
	return append(out, list[i:]...)
}

// removeSorted returns a fresh list with id removed (idempotent).
func removeSorted(list []int, id int) []int {
	i := sort.SearchInts(list, id)
	if i >= len(list) || list[i] != id {
		return list
	}
	out := make([]int, 0, len(list)-1)
	out = append(out, list[:i]...)
	return append(out, list[i+1:]...)
}

// IngredientRecipes returns the IDs of live recipes containing the
// ingredient, in ascending-ID order. The slice is copy-on-write under
// mutation; do not mutate it.
func (s *Store) IngredientRecipes(id flavor.ID) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byIngredient[id]
}

// Len returns the number of live recipes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// Slots returns the recipe ID bound: live recipes plus tombstoned
// slots. Recipe accepts any id in [0, Slots()).
func (s *Store) Slots() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recipes)
}

// Recipe returns a copy of the recipe in slot id (check Deleted when
// the corpus may have been mutated). The copy's Ingredients slice is
// never written again by the store, so it is safe to read after the
// call returns.
func (s *Store) Recipe(id int) Recipe {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recipes[id]
}

// IngredientLists returns the ingredient lists of the given recipes
// under one shared-lock acquisition — the bulk accessor for analysis
// loops that would otherwise lock per recipe. The inner slices are the
// store's own: mutations never write them in place (Upsert installs
// fresh slices), so they are safe to read after the call, but must not
// be mutated. They describe the corpus as of this call.
func (s *Store) IngredientLists(ids []int) [][]flavor.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]flavor.ID, len(ids))
	for i, id := range ids {
		out[i] = s.recipes[id].Ingredients
	}
	return out
}

// LiveIDs returns the IDs of every live recipe, ascending.
func (s *Store) LiveIDs() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveIDsLocked()
}

func (s *Store) liveIDsLocked() []int {
	out := make([]int, 0, s.live)
	for i := range s.recipes {
		if !s.recipes[i].Deleted {
			out = append(out, i)
		}
	}
	return out
}

// RegionLen returns the number of live recipes in the region; World
// counts every live recipe.
func (s *Store) RegionLen(r Region) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r == World {
		return s.live
	}
	return len(s.byRegion[r])
}

// Regions returns the regions present in the store, sorted.
func (s *Store) Regions() []Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.regionsLocked()
}

func (s *Store) regionsLocked() []Region {
	out := make([]Region, 0, len(s.byRegion))
	for r := range s.byRegion {
		if len(s.byRegion[r]) > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachInRegion calls fn for every live recipe in the region (every
// live recipe when r == World), in ascending-ID order. The shared lock
// is held across the iteration: fn must not call mutating methods, and
// the *Recipe must not be retained past the callback.
func (s *Store) ForEachInRegion(r Region, fn func(*Recipe)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.forEachInRegionLocked(r, fn)
}

// RegionRecipes returns the live recipe IDs of a region. The slice is
// copy-on-write under mutation; do not mutate it. World returns nil
// (iterate instead).
func (s *Store) RegionRecipes(r Region) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r == World {
		return nil
	}
	return s.byRegion[r]
}

// Cuisine is the per-region analytical view used by the pairing package
// and the experiment drivers: the recipes of one region plus cached
// statistics.
type Cuisine struct {
	Region Region
	// RecipeIDs indexes into the parent store.
	RecipeIDs []int
	// Sizes[i] is the ingredient count of recipe RecipeIDs[i].
	Sizes []int
	// IngredientFreq maps each used ingredient to its recipe count.
	IngredientFreq map[flavor.ID]int
	// UniqueIngredients is the sorted set of ingredients used.
	UniqueIngredients []flavor.ID
}

// BuildCuisine assembles the analytical view of a region; World pools
// every recipe. The view is a self-contained snapshot: later store
// mutations do not alter it (though its RecipeIDs then describe the
// corpus as of the build).
func (s *Store) BuildCuisine(r Region) *Cuisine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.buildCuisineLocked(r)
}

func (s *Store) buildCuisineLocked(r Region) *Cuisine {
	c := &Cuisine{
		Region:         r,
		IngredientFreq: make(map[flavor.ID]int),
	}
	s.forEachInRegionLocked(r, func(rec *Recipe) {
		c.RecipeIDs = append(c.RecipeIDs, rec.ID)
		c.Sizes = append(c.Sizes, rec.Size())
		for _, id := range rec.Ingredients {
			c.IngredientFreq[id]++
		}
	})
	c.UniqueIngredients = make([]flavor.ID, 0, len(c.IngredientFreq))
	for id := range c.IngredientFreq {
		c.UniqueIngredients = append(c.UniqueIngredients, id)
	}
	sort.Slice(c.UniqueIngredients, func(i, j int) bool {
		return c.UniqueIngredients[i] < c.UniqueIngredients[j]
	})
	return c
}

// NumRecipes returns the cuisine's recipe count.
func (c *Cuisine) NumRecipes() int { return len(c.RecipeIDs) }

// NumUniqueIngredients returns the count of distinct ingredients used.
func (c *Cuisine) NumUniqueIngredients() int { return len(c.UniqueIngredients) }

// SizeHistogram returns the recipe-size distribution (Fig 3a input).
func (c *Cuisine) SizeHistogram() *stats.Histogram {
	h := stats.NewHistogram()
	for _, sz := range c.Sizes {
		h.Add(sz)
	}
	return h
}

// FrequencyVector returns ingredient use counts aligned with
// UniqueIngredients order.
func (c *Cuisine) FrequencyVector() []int {
	out := make([]int, len(c.UniqueIngredients))
	for i, id := range c.UniqueIngredients {
		out[i] = c.IngredientFreq[id]
	}
	return out
}

// TopIngredients returns the k most frequently used ingredients in
// descending frequency order (ties break by ID for determinism).
func (c *Cuisine) TopIngredients(k int) []flavor.ID {
	ids := append([]flavor.ID(nil), c.UniqueIngredients...)
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := c.IngredientFreq[ids[i]], c.IngredientFreq[ids[j]]
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// CategoryUsage computes, for each of the 21 categories, the fraction of
// ingredient slots (recipe-ingredient incidences) in the cuisine that
// fall in the category — the rows of the Fig 2 heatmap.
func (s *Store) CategoryUsage(r Region) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	counts := make([]int, flavor.NumCategories)
	total := 0
	s.forEachInRegionLocked(r, func(rec *Recipe) {
		for _, id := range rec.Ingredients {
			counts[s.catalog.Ingredient(id).Category]++
			total++
		}
	})
	out := make([]float64, flavor.NumCategories)
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// SourceCounts tallies live recipes per source across the whole store.
func (s *Store) SourceCounts() map[Source]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Source]int, NumSources)
	for i := range s.recipes {
		if !s.recipes[i].Deleted {
			out[s.recipes[i].Source]++
		}
	}
	return out
}
