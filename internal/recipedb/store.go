package recipedb

import (
	"errors"
	"fmt"
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/stats"
)

// Recipe is one traditional recipe reduced, as in §III.A, to an
// unordered list of catalog ingredient IDs plus provenance metadata.
type Recipe struct {
	// ID is the recipe's dense index within its Store.
	ID int
	// Name is the recipe title.
	Name string
	// Region is the geo-cultural region the recipe is annotated with.
	Region Region
	// Source records which recipe site the recipe came from.
	Source Source
	// Ingredients are catalog IDs; duplicates are not permitted.
	Ingredients []flavor.ID
}

// Size returns the number of ingredients in the recipe.
func (r *Recipe) Size() int { return len(r.Ingredients) }

// Contains reports whether the recipe uses the ingredient.
func (r *Recipe) Contains(id flavor.ID) bool {
	for _, ing := range r.Ingredients {
		if ing == id {
			return true
		}
	}
	return false
}

// ErrValidation wraps recipe validation failures.
var ErrValidation = errors.New("recipedb: invalid recipe")

// Store is an in-memory recipe corpus with region indexes. Append-only:
// build it once, then query concurrently.
type Store struct {
	catalog      *flavor.Catalog
	recipes      []Recipe
	byRegion     map[Region][]int
	byIngredient map[flavor.ID][]int
}

// NewStore creates an empty store bound to an ingredient catalog.
func NewStore(catalog *flavor.Catalog) *Store {
	return &Store{
		catalog:      catalog,
		byRegion:     make(map[Region][]int),
		byIngredient: make(map[flavor.ID][]int),
	}
}

// Catalog returns the ingredient catalog the store is bound to.
func (s *Store) Catalog() *flavor.Catalog { return s.catalog }

// Add validates and appends a recipe, returning its assigned ID.
// Validation enforces: a known region and source, at least two
// ingredients (a pairing analysis needs pairs), no duplicate
// ingredients, and every ingredient ID within the catalog.
func (s *Store) Add(name string, region Region, source Source, ingredients []flavor.ID) (int, error) {
	if !region.Valid() || region == World {
		return 0, fmt.Errorf("%w: bad region %d", ErrValidation, region)
	}
	if !source.Valid() {
		return 0, fmt.Errorf("%w: bad source %d", ErrValidation, source)
	}
	if len(ingredients) < 2 {
		return 0, fmt.Errorf("%w: recipe %q has %d ingredients, need >= 2", ErrValidation, name, len(ingredients))
	}
	seen := make(map[flavor.ID]struct{}, len(ingredients))
	for _, id := range ingredients {
		if id < 0 || int(id) >= s.catalog.Len() {
			return 0, fmt.Errorf("%w: recipe %q ingredient %d outside catalog", ErrValidation, name, id)
		}
		if _, dup := seen[id]; dup {
			return 0, fmt.Errorf("%w: recipe %q repeats ingredient %q", ErrValidation, name, s.catalog.Ingredient(id).Name)
		}
		seen[id] = struct{}{}
	}
	rid := len(s.recipes)
	ings := append([]flavor.ID(nil), ingredients...)
	s.recipes = append(s.recipes, Recipe{
		ID: rid, Name: name, Region: region, Source: source, Ingredients: ings,
	})
	s.byRegion[region] = append(s.byRegion[region], rid)
	for _, id := range ings {
		s.byIngredient[id] = append(s.byIngredient[id], rid)
	}
	return rid, nil
}

// IngredientRecipes returns the IDs of recipes containing the
// ingredient, in insertion (ascending-ID) order. The slice is shared;
// do not mutate.
func (s *Store) IngredientRecipes(id flavor.ID) []int {
	return s.byIngredient[id]
}

// Len returns the total number of recipes.
func (s *Store) Len() int { return len(s.recipes) }

// Recipe returns the recipe with the given ID.
func (s *Store) Recipe(id int) *Recipe { return &s.recipes[id] }

// RegionLen returns the number of recipes in the region; World counts
// every recipe.
func (s *Store) RegionLen(r Region) int {
	if r == World {
		return len(s.recipes)
	}
	return len(s.byRegion[r])
}

// Regions returns the regions present in the store, sorted.
func (s *Store) Regions() []Region {
	out := make([]Region, 0, len(s.byRegion))
	for r := range s.byRegion {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachInRegion calls fn for every recipe in the region (every recipe
// when r == World). Iteration order is insertion order.
func (s *Store) ForEachInRegion(r Region, fn func(*Recipe)) {
	if r == World {
		for i := range s.recipes {
			fn(&s.recipes[i])
		}
		return
	}
	for _, id := range s.byRegion[r] {
		fn(&s.recipes[id])
	}
}

// RegionRecipes returns the recipe IDs of a region. The slice is shared;
// do not mutate. World returns nil (iterate instead).
func (s *Store) RegionRecipes(r Region) []int {
	if r == World {
		return nil
	}
	return s.byRegion[r]
}

// Cuisine is the per-region analytical view used by the pairing package
// and the experiment drivers: the recipes of one region plus cached
// statistics.
type Cuisine struct {
	Region Region
	// RecipeIDs indexes into the parent store.
	RecipeIDs []int
	// Sizes[i] is the ingredient count of recipe RecipeIDs[i].
	Sizes []int
	// IngredientFreq maps each used ingredient to its recipe count.
	IngredientFreq map[flavor.ID]int
	// UniqueIngredients is the sorted set of ingredients used.
	UniqueIngredients []flavor.ID
}

// BuildCuisine assembles the analytical view of a region; World pools
// every recipe.
func (s *Store) BuildCuisine(r Region) *Cuisine {
	c := &Cuisine{
		Region:         r,
		IngredientFreq: make(map[flavor.ID]int),
	}
	s.ForEachInRegion(r, func(rec *Recipe) {
		c.RecipeIDs = append(c.RecipeIDs, rec.ID)
		c.Sizes = append(c.Sizes, rec.Size())
		for _, id := range rec.Ingredients {
			c.IngredientFreq[id]++
		}
	})
	c.UniqueIngredients = make([]flavor.ID, 0, len(c.IngredientFreq))
	for id := range c.IngredientFreq {
		c.UniqueIngredients = append(c.UniqueIngredients, id)
	}
	sort.Slice(c.UniqueIngredients, func(i, j int) bool {
		return c.UniqueIngredients[i] < c.UniqueIngredients[j]
	})
	return c
}

// NumRecipes returns the cuisine's recipe count.
func (c *Cuisine) NumRecipes() int { return len(c.RecipeIDs) }

// NumUniqueIngredients returns the count of distinct ingredients used.
func (c *Cuisine) NumUniqueIngredients() int { return len(c.UniqueIngredients) }

// SizeHistogram returns the recipe-size distribution (Fig 3a input).
func (c *Cuisine) SizeHistogram() *stats.Histogram {
	h := stats.NewHistogram()
	for _, sz := range c.Sizes {
		h.Add(sz)
	}
	return h
}

// FrequencyVector returns ingredient use counts aligned with
// UniqueIngredients order.
func (c *Cuisine) FrequencyVector() []int {
	out := make([]int, len(c.UniqueIngredients))
	for i, id := range c.UniqueIngredients {
		out[i] = c.IngredientFreq[id]
	}
	return out
}

// TopIngredients returns the k most frequently used ingredients in
// descending frequency order (ties break by ID for determinism).
func (c *Cuisine) TopIngredients(k int) []flavor.ID {
	ids := append([]flavor.ID(nil), c.UniqueIngredients...)
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := c.IngredientFreq[ids[i]], c.IngredientFreq[ids[j]]
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// CategoryUsage computes, for each of the 21 categories, the fraction of
// ingredient slots (recipe-ingredient incidences) in the cuisine that
// fall in the category — the rows of the Fig 2 heatmap.
func (s *Store) CategoryUsage(r Region) []float64 {
	counts := make([]int, flavor.NumCategories)
	total := 0
	s.ForEachInRegion(r, func(rec *Recipe) {
		for _, id := range rec.Ingredients {
			counts[s.catalog.Ingredient(id).Category]++
			total++
		}
	})
	out := make([]float64, flavor.NumCategories)
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// SourceCounts tallies recipes per source across the whole store.
func (s *Store) SourceCounts() map[Source]int {
	out := make(map[Source]int, NumSources)
	for i := range s.recipes {
		out[s.recipes[i].Source]++
	}
	return out
}
