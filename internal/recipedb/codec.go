package recipedb

import (
	"bytes"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"culinary/internal/flavor"
)

// ErrCodec wraps binary recipe decoding failures.
var ErrCodec = errors.New("recipedb: bad recipe encoding")

// RecipePrefix namespaces per-recipe keys in a persistence backend.
const RecipePrefix = "recipe/"

// RecipeKey renders the backend key for one recipe ID. Zero-padding
// keeps lexicographic key order equal to ID order, so sorted key scans
// reload recipes in ID order.
func RecipeKey(id int) string { return fmt.Sprintf("%s%08d", RecipePrefix, id) }

// EncodeRecipe serializes one recipe for a persistence backend:
//
//	region  uvarint
//	source  uvarint
//	name    uvarint length + bytes
//	nIngr   uvarint
//	ids     nIngr plain uvarints, original order preserved
func EncodeRecipe(r *Recipe) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putUvarint(uint64(r.Region))
	putUvarint(uint64(r.Source))
	putUvarint(uint64(len(r.Name)))
	buf = append(buf, r.Name...)
	putUvarint(uint64(len(r.Ingredients)))
	for _, id := range r.Ingredients {
		putUvarint(uint64(id))
	}
	return buf
}

// DecodeRecipe parses an EncodeRecipe body.
func DecodeRecipe(data []byte) (name string, region Region, source Source, ids []flavor.ID, err error) {
	r := bytes.NewReader(data)
	read := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(r)
		return v
	}
	region = Region(read())
	source = Source(read())
	nameLen := read()
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if nameLen > uint64(r.Len()) {
		return "", 0, 0, nil, fmt.Errorf("%w: name length %d exceeds remaining %d", ErrCodec, nameLen, r.Len())
	}
	nameBuf := make([]byte, nameLen)
	if _, rerr := r.Read(nameBuf); rerr != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrCodec, rerr)
	}
	name = string(nameBuf)
	n := read()
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if n > uint64(r.Len()) { // each ID takes >= 1 byte
		return "", 0, 0, nil, fmt.Errorf("%w: ingredient count %d exceeds remaining bytes", ErrCodec, n)
	}
	ids = make([]flavor.ID, n)
	for i := range ids {
		ids[i] = flavor.ID(read())
	}
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if r.Len() != 0 {
		return "", 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, r.Len())
	}
	return name, region, source, ids, nil
}

// The CSV schema is one row per recipe:
//
//	id,name,region,source,ingredients
//
// where ingredients is a semicolon-separated list of canonical
// ingredient names. Names (not numeric IDs) keep exports stable across
// catalog rebuilds.

var csvHeader = []string{"id", "name", "region", "source", "ingredients"}

// WriteCSV exports every live recipe in the store.
func (s *Store) WriteCSV(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("recipedb: writing header: %w", err)
	}
	for i := range s.recipes {
		r := &s.recipes[i]
		if r.Deleted {
			continue
		}
		names := make([]string, len(r.Ingredients))
		for j, id := range r.Ingredients {
			names[j] = s.catalog.Ingredient(id).Name
		}
		row := []string{
			fmt.Sprintf("%d", r.ID),
			r.Name,
			r.Region.Code(),
			r.Source.String(),
			strings.Join(names, ";"),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("recipedb: writing recipe %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads recipes from the CSV schema into a fresh store bound to
// catalog. Unknown ingredient names, regions, or sources are errors:
// corpus files must round-trip losslessly.
func ReadCSV(r io.Reader, catalog *flavor.Catalog) (*Store, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("recipedb: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("recipedb: bad header column %d: %q, want %q", i, header[i], h)
		}
	}
	store := NewStore(catalog)
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		line++
		region, err := ParseRegion(row[2])
		if err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		source, err := ParseSource(row[3])
		if err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
		parts := strings.Split(row[4], ";")
		ids := make([]flavor.ID, 0, len(parts))
		for _, p := range parts {
			id, ok := catalog.Lookup(p)
			if !ok {
				return nil, fmt.Errorf("recipedb: line %d: unknown ingredient %q", line, p)
			}
			ids = append(ids, id)
		}
		if _, err := store.Add(row[1], region, source, ids); err != nil {
			return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
		}
	}
	return store, nil
}

// recipeJSON is the JSON wire form of one recipe.
type recipeJSON struct {
	ID          int      `json:"id"`
	Name        string   `json:"name"`
	Region      string   `json:"region"`
	Source      string   `json:"source"`
	Ingredients []string `json:"ingredients"`
}

// corpusJSON is the JSON wire form of a whole corpus.
type corpusJSON struct {
	Recipes []recipeJSON `json:"recipes"`
}

// WriteJSON exports the live recipes as a single JSON document.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc := corpusJSON{Recipes: make([]recipeJSON, 0, len(s.recipes))}
	for i := range s.recipes {
		r := &s.recipes[i]
		if r.Deleted {
			continue
		}
		names := make([]string, len(r.Ingredients))
		for j, id := range r.Ingredients {
			names[j] = s.catalog.Ingredient(id).Name
		}
		doc.Recipes = append(doc.Recipes, recipeJSON{
			ID: r.ID, Name: r.Name, Region: r.Region.Code(),
			Source: r.Source.String(), Ingredients: names,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadJSON loads a corpus JSON document into a fresh store.
func ReadJSON(r io.Reader, catalog *flavor.Catalog) (*Store, error) {
	var doc corpusJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("recipedb: decoding JSON: %w", err)
	}
	store := NewStore(catalog)
	for i, rj := range doc.Recipes {
		region, err := ParseRegion(rj.Region)
		if err != nil {
			return nil, fmt.Errorf("recipedb: recipe %d: %w", i, err)
		}
		source, err := ParseSource(rj.Source)
		if err != nil {
			return nil, fmt.Errorf("recipedb: recipe %d: %w", i, err)
		}
		ids := make([]flavor.ID, 0, len(rj.Ingredients))
		for _, name := range rj.Ingredients {
			id, ok := catalog.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("recipedb: recipe %d: unknown ingredient %q", i, name)
			}
			ids = append(ids, id)
		}
		if _, err := store.Add(rj.Name, region, source, ids); err != nil {
			return nil, fmt.Errorf("recipedb: recipe %d: %w", i, err)
		}
	}
	return store, nil
}
