package recipedb

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"culinary/internal/flavor"
)

func ids(t *testing.T, names ...string) []flavor.ID {
	t.Helper()
	out := make([]flavor.ID, len(names))
	for i, n := range names {
		out[i] = mustID(t, n)
	}
	return out
}

func TestVersionBumpsOnEveryMutation(t *testing.T) {
	s := NewStore(testCatalog)
	if s.Version() != 0 {
		t.Fatalf("fresh store version = %d", s.Version())
	}
	addRecipe(t, s, "a", Italy, "tomato", "basil")
	if s.Version() != 1 {
		t.Fatalf("after Add version = %d", s.Version())
	}
	if _, v, created, err := s.Upsert(0, "a2", France, AllRecipes, ids(t, "butter", "cream")); err != nil || v != 2 || created {
		t.Fatalf("Upsert: v=%d err=%v", v, err)
	}
	if v, err := s.Remove(0); err != nil || v != 3 {
		t.Fatalf("Remove: v=%d err=%v", v, err)
	}
	// Failed mutations must not bump the version.
	if _, _, _, err := s.Upsert(-1, "bad", World, AllRecipes, ids(t, "tomato", "basil")); err == nil {
		t.Fatal("World region accepted")
	}
	if _, err := s.Remove(0); !errors.Is(err, ErrNoRecipe) {
		t.Fatalf("double Remove: %v", err)
	}
	if s.Version() != 3 {
		t.Fatalf("failed mutations moved version to %d", s.Version())
	}
}

func TestUpsertRewritesIndexes(t *testing.T) {
	s := NewStore(testCatalog)
	a := addRecipe(t, s, "a", Italy, "tomato", "basil")
	b := addRecipe(t, s, "b", Italy, "tomato", "mozzarella cheese")
	c := addRecipe(t, s, "c", France, "butter", "cream")

	// Move recipe a from Italy/tomato-basil to France/butter-garlic.
	if _, _, created, err := s.Upsert(a, "a", France, AllRecipes, ids(t, "butter", "garlic")); err != nil || created {
		t.Fatalf("Upsert: %v", err)
	}
	if got := s.RegionRecipes(Italy); !reflect.DeepEqual(got, []int{b}) {
		t.Errorf("Italy = %v, want [%d]", got, b)
	}
	if got := s.RegionRecipes(France); !reflect.DeepEqual(got, []int{a, c}) {
		t.Errorf("France = %v, want sorted [%d %d]", got, a, c)
	}
	if got := s.IngredientRecipes(mustID(t, "tomato")); !reflect.DeepEqual(got, []int{b}) {
		t.Errorf("tomato postings = %v, want [%d]", got, b)
	}
	if got := s.IngredientRecipes(mustID(t, "butter")); !reflect.DeepEqual(got, []int{a, c}) {
		t.Errorf("butter postings = %v, want sorted [%d %d]", got, a, c)
	}
	if got := s.IngredientRecipes(mustID(t, "basil")); len(got) != 0 {
		t.Errorf("basil postings = %v, want empty", got)
	}
}

func TestRemoveTombstonesSlot(t *testing.T) {
	s := NewStore(testCatalog)
	a := addRecipe(t, s, "a", Italy, "tomato", "basil")
	b := addRecipe(t, s, "b", France, "butter", "cream")
	if _, err := s.Remove(a); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if s.Len() != 1 || s.Slots() != 2 {
		t.Fatalf("Len/Slots = %d/%d, want 1/2", s.Len(), s.Slots())
	}
	if !s.Recipe(a).Deleted {
		t.Error("slot not tombstoned")
	}
	if got := s.LiveIDs(); !reflect.DeepEqual(got, []int{b}) {
		t.Errorf("LiveIDs = %v", got)
	}
	if s.RegionLen(World) != 1 || s.RegionLen(Italy) != 0 {
		t.Errorf("RegionLen World/Italy = %d/%d", s.RegionLen(World), s.RegionLen(Italy))
	}
	seen := 0
	s.ForEachInRegion(World, func(r *Recipe) { seen++ })
	if seen != 1 {
		t.Errorf("World iteration visited %d recipes", seen)
	}
	// New inserts claim fresh slots, never the tombstoned one.
	c := addRecipe(t, s, "c", Italy, "pasta", "parmesan cheese")
	if c != 2 {
		t.Errorf("insert reused slot: id %d", c)
	}
	// Upserting the tombstoned slot explicitly revives it.
	if _, _, created, err := s.Upsert(a, "a2", Italy, AllRecipes, ids(t, "tomato", "garlic")); err != nil || !created {
		t.Fatalf("revive: %v", err)
	}
	if s.Len() != 3 || s.Recipe(a).Deleted {
		t.Errorf("revive failed: len=%d deleted=%v", s.Len(), s.Recipe(a).Deleted)
	}
}

func TestUpsertBeyondSlotsTombstonesGaps(t *testing.T) {
	s := NewStore(testCatalog)
	if _, _, created, err := s.Upsert(3, "sparse", Italy, AllRecipes, ids(t, "tomato", "basil")); err != nil || !created {
		t.Fatalf("Upsert(3): %v", err)
	}
	if s.Slots() != 4 || s.Len() != 1 {
		t.Fatalf("Slots/Len = %d/%d, want 4/1", s.Slots(), s.Len())
	}
	for i := 0; i < 3; i++ {
		if !s.Recipe(i).Deleted {
			t.Errorf("gap slot %d not tombstoned", i)
		}
	}
	if s.Recipe(3).Name != "sparse" {
		t.Errorf("slot 3 = %+v", s.Recipe(3))
	}
}

// recordingBackend captures write-through operations and can be armed
// to fail.
type recordingBackend struct {
	puts    map[string][]byte
	deletes []string
	fail    error
}

func (b *recordingBackend) Put(key string, val []byte) error {
	if b.fail != nil {
		return b.fail
	}
	if b.puts == nil {
		b.puts = make(map[string][]byte)
	}
	b.puts[key] = append([]byte(nil), val...)
	return nil
}

func (b *recordingBackend) Delete(key string) error {
	if b.fail != nil {
		return b.fail
	}
	b.deletes = append(b.deletes, key)
	return nil
}

func TestBackendWriteThrough(t *testing.T) {
	s := NewStore(testCatalog)
	backend := &recordingBackend{}
	s.SetBackend(backend)

	id := addRecipe(t, s, "a", Italy, "tomato", "basil")
	raw, ok := backend.puts[RecipeKey(id)]
	if !ok {
		t.Fatalf("Add did not write through; puts = %v", backend.puts)
	}
	name, region, source, ingr, err := DecodeRecipe(raw)
	if err != nil || name != "a" || region != Italy || source != AllRecipes || len(ingr) != 2 {
		t.Fatalf("persisted bytes decode to %q/%v/%v/%v (err %v)", name, region, source, ingr, err)
	}
	if _, err := s.Remove(id); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if len(backend.deletes) != 1 || backend.deletes[0] != RecipeKey(id) {
		t.Fatalf("deletes = %v", backend.deletes)
	}

	// A failing backend must leave the in-memory corpus and version
	// untouched.
	v := s.Version()
	backend.fail = fmt.Errorf("disk full")
	if _, _, _, err := s.Upsert(-1, "b", France, AllRecipes, ids(t, "butter", "cream")); err == nil {
		t.Fatal("Upsert succeeded with failing backend")
	}
	if s.Version() != v || s.Len() != 0 {
		t.Errorf("failed write mutated corpus: version %d->%d, len %d", v, s.Version(), s.Len())
	}
}

// TestReadViewConsistency checks that a Read callback observes one
// (version, snapshot) pair even while writers mutate.
func TestReadViewConsistency(t *testing.T) {
	s := NewStore(testCatalog)
	addRecipe(t, s, "a", Italy, "tomato", "basil")
	addRecipe(t, s, "b", France, "butter", "cream")
	s.Read(func(v *View) {
		if v.Version != s.Version() {
			t.Errorf("view version %d != store version %d", v.Version, s.Version())
		}
		if v.Len() != 2 || v.Slots() != 2 {
			t.Errorf("view Len/Slots = %d/%d", v.Len(), v.Slots())
		}
		n := 0
		v.ForEachInRegion(World, func(r *Recipe) { n++ })
		if n != v.Len() {
			t.Errorf("view iteration saw %d, Len %d", n, v.Len())
		}
	})
}
