package recipedb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"culinary/internal/flavor"
)

// tombMark is how the test backends record a tombstone in their
// key-state map, so two stores' durable states can be compared as maps.
const tombMark = "\x00tombstone"

// stateBackend is a thread-safe map Backend (per-op Put/Delete path).
type stateBackend struct {
	mu    sync.Mutex
	state map[string]string
	puts  int
	fail  map[string]error
	delay time.Duration // simulated commit latency, to provoke coalescing
}

func (b *stateBackend) Put(key string, val []byte) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.fail[key]; err != nil {
		return err
	}
	if b.state == nil {
		b.state = make(map[string]string)
	}
	b.state[key] = string(val)
	b.puts++
	return nil
}

func (b *stateBackend) Delete(key string) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.fail[key]; err != nil {
		return err
	}
	if b.state == nil {
		b.state = make(map[string]string)
	}
	b.state[key] = tombMark
	return nil
}

func (b *stateBackend) snapshot() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string, len(b.state))
	for k, v := range b.state {
		out[k] = v
	}
	return out
}

func (b *stateBackend) putCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.puts
}

// batchStateBackend adds the WriteBatch extension, exercising the
// group-commit persist path of persistGroup.
type batchStateBackend struct{ *stateBackend }

func (b batchStateBackend) WriteBatch(keys []string, values [][]byte, tombstones []bool) []error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	errs := make([]error, len(keys))
	if b.state == nil {
		b.state = make(map[string]string)
	}
	for i, k := range keys {
		if err := b.fail[k]; err != nil {
			errs[i] = err
			continue
		}
		if tombstones[i] {
			b.state[k] = tombMark
		} else {
			b.state[k] = string(values[i])
			b.puts++
		}
	}
	return errs
}

// genMutationScript produces a deterministic randomized op sequence —
// inserts, addressed replaces (including slot extension), byte-identical
// kept candidates, removes of live and bogus slots, and validation
// failures — by simulating sequential application against a shadow
// model. Both stores of an equivalence test replay the same script.
func genMutationScript(rng *rand.Rand, n int) []BatchItem {
	type srec struct {
		name   string
		region Region
		source Source
		ing    []flavor.ID
	}
	live := make(map[int]srec)
	slots := 0
	regions := []Region{Italy, France, IndianSubcontinent}
	pool := testCatalog.Len()
	if pool > 64 {
		pool = 64
	}
	randIng := func(k int) []flavor.ID {
		perm := rng.Perm(pool)
		out := make([]flavor.ID, k)
		for i := range out {
			out[i] = flavor.ID(perm[i])
		}
		return out
	}
	liveSlots := func() []int {
		out := make([]int, 0, len(live))
		for id := range live {
			out = append(out, id)
		}
		sort.Ints(out)
		return out
	}
	var ops []BatchItem
	for len(ops) < n {
		switch k := rng.Intn(10); {
		case k < 3: // fresh insert
			r := srec{
				name:   fmt.Sprintf("gen insert %d", len(ops)),
				region: regions[rng.Intn(len(regions))],
				source: AllRecipes,
				ing:    randIng(2 + rng.Intn(4)),
			}
			ops = append(ops, BatchItem{ID: -1, Name: r.name, Region: r.region, Source: r.source, Ingredients: r.ing})
			live[slots] = r
			slots++
		case k < 5: // addressed upsert: replace, revive, or extend
			id := rng.Intn(slots + 2)
			r := srec{
				name:   fmt.Sprintf("gen upsert %d", len(ops)),
				region: regions[rng.Intn(len(regions))],
				source: AllRecipes,
				ing:    randIng(2 + rng.Intn(4)),
			}
			ops = append(ops, BatchItem{ID: id, Name: r.name, Region: r.region, Source: r.source, Ingredients: r.ing})
			if id >= slots {
				slots = id + 1
			}
			live[id] = r
		case k == 5: // byte-identical kept candidate
			ls := liveSlots()
			if len(ls) == 0 {
				continue
			}
			id := ls[rng.Intn(len(ls))]
			r := live[id]
			ops = append(ops, BatchItem{
				ID: id, Name: r.name, Region: r.region, Source: r.source,
				Ingredients: append([]flavor.ID(nil), r.ing...),
			})
		case k == 6: // remove a live slot
			ls := liveSlots()
			if len(ls) == 0 {
				continue
			}
			id := ls[rng.Intn(len(ls))]
			ops = append(ops, BatchItem{Remove: true, ID: id})
			delete(live, id)
		case k == 7: // remove a slot that does not exist -> ErrNoRecipe
			ops = append(ops, BatchItem{Remove: true, ID: slots + 3})
		case k == 8: // validation failure: single ingredient
			ops = append(ops, BatchItem{
				ID: -1, Name: fmt.Sprintf("bad %d", len(ops)), Region: Italy,
				Source: AllRecipes, Ingredients: randIng(1),
			})
		default: // validation failure: World is not a mutable region
			ops = append(ops, BatchItem{
				ID: -1, Name: fmt.Sprintf("bad %d", len(ops)), Region: World,
				Source: AllRecipes, Ingredients: randIng(2),
			})
		}
	}
	return ops
}

func sameResult(a, b BatchResult) bool {
	if a.ID != b.ID || a.Version != b.Version || a.Outcome != b.Outcome {
		return false
	}
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	return a.Err == nil || a.Err.Error() == b.Err.Error()
}

// TestApplyBatchEquivalenceRandomized is the core correctness claim of
// the writer fan-in: chopping a mutation script into arbitrary batches
// leaves the corpus — dump, version, per-item results, and the durable
// backend state through BOTH persist paths (per-op and group commit) —
// byte-identical to applying the same script one item at a time.
func TestApplyBatchEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := genMutationScript(rng, 120)

		seq := NewStore(testCatalog)
		seqBE := &stateBackend{}
		seq.SetBackend(seqBE) // plain Backend: per-op persist path
		var seqResults []BatchResult
		for _, op := range script {
			seqResults = append(seqResults, seq.ApplyBatch([]BatchItem{op})...)
		}

		bat := NewStore(testCatalog)
		batBE := &stateBackend{}
		bat.SetBackend(batchStateBackend{batBE}) // group-commit persist path
		var batResults []BatchResult
		for i := 0; i < len(script); {
			n := 1 + rng.Intn(8)
			if i+n > len(script) {
				n = len(script) - i
			}
			batResults = append(batResults, bat.ApplyBatch(script[i:i+n])...)
			i += n
		}

		for i := range script {
			if !sameResult(seqResults[i], batResults[i]) {
				t.Fatalf("seed %d op %d (%+v):\n  sequential %+v\n  batched    %+v",
					seed, i, script[i], seqResults[i], batResults[i])
			}
		}
		if sd, bd := seq.CanonicalDump(), bat.CanonicalDump(); sd != bd {
			t.Fatalf("seed %d corpus dumps diverge:\n--- sequential ---\n%s--- batched ---\n%s", seed, sd, bd)
		}
		if seq.Version() != bat.Version() {
			t.Fatalf("seed %d versions diverge: %d vs %d", seed, seq.Version(), bat.Version())
		}
		ss, bs := seqBE.snapshot(), batBE.snapshot()
		if len(ss) != len(bs) {
			t.Fatalf("seed %d backend key counts diverge: %d vs %d", seed, len(ss), len(bs))
		}
		for k, v := range ss {
			if bs[k] != v {
				t.Fatalf("seed %d backend key %q diverges: %q vs %q", seed, k, v, bs[k])
			}
		}
	}
}

// TestApplyBatchDuplicateIDsInOneBatch pins in-batch overlay semantics:
// later items see the effects of earlier ones exactly as sequential
// application would.
func TestApplyBatchDuplicateIDsInOneBatch(t *testing.T) {
	s := NewStore(testCatalog)
	res := s.ApplyBatch([]BatchItem{
		{ID: -1, Name: "a", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "tomato", "basil")},
		{ID: 0, Name: "a2", Region: France, Source: AllRecipes, Ingredients: ids(t, "butter", "cream")},
		{Remove: true, ID: 0},
		{ID: 0, Name: "a3", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "pasta", "garlic")},
		{ID: -1, Name: "b", Region: France, Source: AllRecipes, Ingredients: ids(t, "butter", "garlic")},
		{ID: -1, Name: "c", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "tomato", "garlic")},
	})
	wantOutcomes := []Outcome{OutcomeCreated, OutcomeReplaced, OutcomeRemoved, OutcomeCreated, OutcomeCreated, OutcomeCreated}
	wantIDs := []int{0, 0, 0, 0, 1, 2}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Outcome != wantOutcomes[i] || r.ID != wantIDs[i] {
			t.Fatalf("item %d = outcome %v id %d, want %v id %d", i, r.Outcome, r.ID, wantOutcomes[i], wantIDs[i])
		}
		if r.Version != uint64(i+1) {
			t.Fatalf("item %d version = %d, want %d", i, r.Version, i+1)
		}
	}
	if s.Version() != 6 || s.Len() != 3 || s.Slots() != 3 {
		t.Fatalf("final version/len/slots = %d/%d/%d", s.Version(), s.Len(), s.Slots())
	}
	if got := s.Recipe(0); got.Name != "a3" || got.Region != Italy {
		t.Fatalf("slot 0 = %+v", got)
	}
}

// TestApplyBatchMidBatchRejects: invalid items bounce in place with the
// same sentinel errors the single-item API uses, without disturbing
// their neighbors or consuming versions.
func TestApplyBatchMidBatchRejects(t *testing.T) {
	s := NewStore(testCatalog)
	res := s.ApplyBatch([]BatchItem{
		{ID: -1, Name: "ok1", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "tomato", "basil")},
		{ID: -1, Name: "short", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "tomato")},
		{Remove: true, ID: 99},
		{ID: -1, Name: "ok2", Region: France, Source: AllRecipes, Ingredients: ids(t, "butter", "cream")},
	})
	if res[0].Err != nil || res[0].Outcome != OutcomeCreated || res[0].Version != 1 {
		t.Fatalf("item 0 = %+v", res[0])
	}
	if !errors.Is(res[1].Err, ErrValidation) || res[1].Outcome != OutcomeRejected {
		t.Fatalf("item 1 = %+v", res[1])
	}
	if !errors.Is(res[2].Err, ErrNoRecipe) || res[2].Outcome != OutcomeRejected {
		t.Fatalf("item 2 = %+v", res[2])
	}
	if res[3].Err != nil || res[3].Outcome != OutcomeCreated || res[3].Version != 2 || res[3].ID != 1 {
		t.Fatalf("item 3 = %+v", res[3])
	}
	if s.Version() != 2 || s.Len() != 2 {
		t.Fatalf("version/len = %d/%d", s.Version(), s.Len())
	}
}

// TestApplyBatchKeptSemantics: byte-identical batch items are skipped
// without a write or version bump, both across batches and within one
// batch, while the single-item Upsert keeps its always-write contract.
func TestApplyBatchKeptSemantics(t *testing.T) {
	s := NewStore(testCatalog)
	be := &stateBackend{}
	s.SetBackend(batchStateBackend{be})

	item := BatchItem{ID: -1, Name: "a", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "tomato", "basil")}
	r1 := s.ApplyBatch([]BatchItem{item})[0]
	if r1.Err != nil || r1.Outcome != OutcomeCreated {
		t.Fatalf("seed item = %+v", r1)
	}
	putsBefore := be.putCount()

	same := item
	same.ID = r1.ID
	r2 := s.ApplyBatch([]BatchItem{same})[0]
	if r2.Err != nil || r2.Outcome != OutcomeKept || r2.Version != r1.Version {
		t.Fatalf("identical re-ingest = %+v, want kept at version %d", r2, r1.Version)
	}
	if s.Version() != r1.Version {
		t.Fatalf("kept item bumped version to %d", s.Version())
	}
	if be.putCount() != putsBefore {
		t.Fatal("kept item reached the backend")
	}

	// In-batch kept: the duplicate dedupes against its in-group
	// predecessor and reports the predecessor's version.
	res := s.ApplyBatch([]BatchItem{
		{ID: 5, Name: "x", Region: France, Source: AllRecipes, Ingredients: ids(t, "butter", "cream")},
		{ID: 5, Name: "x", Region: France, Source: AllRecipes, Ingredients: ids(t, "butter", "cream")},
	})
	if res[0].Outcome != OutcomeCreated || res[1].Outcome != OutcomeKept {
		t.Fatalf("in-batch kept = %+v / %+v", res[0], res[1])
	}
	if res[1].Version != res[0].Version {
		t.Fatalf("kept version %d != predecessor version %d", res[1].Version, res[0].Version)
	}

	// Single Upsert with identical content still writes (always-write).
	v := s.Version()
	if _, nv, created, err := s.Upsert(r1.ID, item.Name, item.Region, item.Source, item.Ingredients); err != nil || created || nv != v+1 {
		t.Fatalf("Upsert identical: v=%d created=%v err=%v, want replace at v=%d", nv, created, err, v+1)
	}
}

// TestApplyBatchKeptAfterFailedPersist: a kept item whose in-group
// predecessor failed to persist loses its premise and fails with the
// predecessor's error instead of acking a write that never happened.
func TestApplyBatchKeptAfterFailedPersist(t *testing.T) {
	s := NewStore(testCatalog)
	be := &stateBackend{fail: map[string]error{}}
	s.SetBackend(batchStateBackend{be})
	if r := s.ApplyBatch([]BatchItem{{ID: -1, Name: "seed", Region: Italy, Source: AllRecipes, Ingredients: ids(t, "tomato", "basil")}})[0]; r.Err != nil {
		t.Fatal(r.Err)
	}
	v := s.Version()
	boom := errors.New("boom")
	be.mu.Lock()
	be.fail[RecipeKey(1)] = boom
	be.mu.Unlock()

	item := BatchItem{ID: 1, Name: "x", Region: France, Source: AllRecipes, Ingredients: ids(t, "butter", "cream")}
	res := s.ApplyBatch([]BatchItem{item, item})
	for i, r := range res {
		if !errors.Is(r.Err, boom) || r.Outcome != OutcomeRejected {
			t.Fatalf("item %d = %+v, want rejected with the persist error", i, r)
		}
	}
	if s.Version() != v || s.Slots() != 1 {
		t.Fatalf("failed batch mutated corpus: version %d slots %d", s.Version(), s.Slots())
	}
}

// TestBatchFanInStressRace hammers the fan-in with concurrent
// single-item and batch writers over a slow backend (forcing groups to
// pile up), then audits the full acked history: every version distinct
// and contiguous, and a version-ordered replay of the acked mutations
// into a fresh store reproduces the exact corpus dump — zero lost
// updates. Run under -race in CI.
func TestBatchFanInStressRace(t *testing.T) {
	s := NewStore(testCatalog)
	be := &stateBackend{delay: 200 * time.Microsecond}
	s.SetBackend(batchStateBackend{be})

	type acked struct {
		remove  bool
		id      int
		name    string
		region  Region
		ing     []flavor.ID
		version uint64
	}
	var mu sync.Mutex
	var history []acked
	record := func(a acked) {
		mu.Lock()
		history = append(history, a)
		mu.Unlock()
	}
	regions := []Region{Italy, France, IndianSubcontinent}

	const (
		soloWriters  = 6
		soloOps      = 60
		batchWriters = 2
		batchesPer   = 25
		perBatch     = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < soloWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := regions[w%len(regions)]
			var mine []int
			for i := 0; i < soloOps; i++ {
				if i%7 == 3 && len(mine) > 0 {
					id := mine[0]
					mine = mine[1:]
					v, err := s.Remove(id)
					if err != nil {
						t.Errorf("solo %d remove: %v", w, err)
						return
					}
					record(acked{remove: true, id: id, version: v})
					continue
				}
				name := fmt.Sprintf("solo %d %d", w, i)
				ing := []flavor.ID{flavor.ID(w), flavor.ID(10 + i%20)}
				id, v, _, err := s.Upsert(-1, name, region, AllRecipes, ing)
				if err != nil {
					t.Errorf("solo %d upsert: %v", w, err)
					return
				}
				mine = append(mine, id)
				record(acked{id: id, name: name, region: region, ing: ing, version: v})
			}
		}(w)
	}
	for w := 0; w < batchWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := regions[w%len(regions)]
			for i := 0; i < batchesPer; i++ {
				items := make([]BatchItem, perBatch)
				for j := range items {
					items[j] = BatchItem{
						ID: -1, Name: fmt.Sprintf("bulk %d %d %d", w, i, j),
						Region: region, Source: AllRecipes,
						Ingredients: []flavor.ID{flavor.ID(30 + j), flavor.ID(40 + i%20)},
					}
				}
				for j, r := range s.ApplyBatch(items) {
					if r.Err != nil {
						t.Errorf("bulk %d item %d: %v", w, j, r.Err)
						return
					}
					record(acked{id: r.ID, name: items[j].Name, region: region, ing: items[j].Ingredients, version: r.Version})
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	sort.Slice(history, func(i, j int) bool { return history[i].version < history[j].version })
	for i, a := range history {
		if a.version != uint64(i+1) {
			t.Fatalf("acked versions not contiguous at %d: got %d", i, a.version)
		}
	}
	if got := s.Version(); got != uint64(len(history)) {
		t.Fatalf("store version %d != %d acked mutations", got, len(history))
	}

	replay := NewStore(testCatalog)
	for _, a := range history {
		var r BatchResult
		if a.remove {
			r = replay.ApplyBatch([]BatchItem{{Remove: true, ID: a.id}})[0]
		} else {
			r = replay.ApplyBatch([]BatchItem{{ID: a.id, Name: a.name, Region: a.region, Source: AllRecipes, Ingredients: a.ing}})[0]
		}
		if r.Err != nil {
			t.Fatalf("replaying version %d: %v", a.version, r.Err)
		}
	}
	if rd, sd := replay.CanonicalDump(), s.CanonicalDump(); rd != sd {
		t.Fatalf("replayed corpus diverges from live corpus:\n--- replay ---\n%s--- live ---\n%s", rd, sd)
	}

	bs := s.BatchStats()
	wantOps := uint64(soloWriters*soloOps + batchWriters*batchesPer*perBatch)
	if bs.Ops != wantOps {
		t.Fatalf("BatchStats.Ops = %d, want %d", bs.Ops, wantOps)
	}
	if bs.Coalesced == 0 {
		t.Fatal("no write group coalesced despite concurrent writers over a slow backend")
	}
	if bs.Batches == 0 || bs.MaxBatch < perBatch || bs.P50Batch < 1 {
		t.Fatalf("implausible stats: %+v", bs)
	}
}
